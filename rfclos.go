// Package rfclos is the public API of this repository: a library for
// building, routing, analysing and simulating Random Folded Clos (RFC)
// datacenter networks — the topology proposed in "Random Folded Clos
// Topologies for Datacenter Networks" (Camarero, Martínez, Beivide, HPCA
// 2017) — together with the baselines the paper compares against
// (commodity fat-trees, orthogonal fat-trees, k-ary l-trees and
// Jellyfish-style random regular networks).
//
// The package is a facade over the implementation packages in internal/;
// everything a downstream user needs is exported here:
//
//   - Topology construction: NewRFC, NewCFT, NewOFT, NewKaryTree, NewRRN.
//   - Theorem 4.2 threshold math: ThresholdRadix, MaxLeaves, MaxTerminals,
//     XParam, SuccessProbability.
//   - Deadlock-free up/down ECMP routing: NewRouter and the Router type.
//   - Incremental expansion (§5): Expand.
//   - Cycle-level simulation (§6, Table 2): Simulate and SimConfig.
//   - Paper experiments (Figures 5-12, Table 3): the Fig*/Table*/...
//     functions returning printable Reports.
package rfclos

import (
	"rfclos/internal/analysis"
	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Clos is a folded Clos network: levels of switches with down- and
// up-links, leaf switches carrying compute nodes.
type Clos = topology.Clos

// RRN is a Jellyfish-style random regular network.
type RRN = topology.RRN

// Params identifies a radix-regular RFC: radix R, level count l and leaf
// switch count N1; terminals T = N1·R/2.
type Params = core.Params

// Router is the up/down equal-cost multi-path routing state of a folded
// Clos network (Theorem 4.2's common-ancestor routing).
type Router = routing.UpDown

// SimConfig carries the Table 2 simulation parameters.
type SimConfig = simnet.Config

// SimResult reports a simulation run: accepted load, latency statistics
// and conservation counters.
type SimResult = simnet.Result

// TrafficPattern generates packet destinations (uniform, random-pairing,
// fixed-random).
type TrafficPattern = traffic.Pattern

// Report is a printable experiment result (call Format).
type Report = analysis.Report

// Scale selects experiment sizing: ScaleSmall is the laptop-friendly
// radix-16 analogue, ScalePaper the paper's exact radix-36 scenarios.
const (
	ScaleSmall = analysis.ScaleSmall
	ScalePaper = analysis.ScalePaper
)

// NewRFC generates a random folded Clos network with up/down routing,
// retrying generation as Theorem 4.2 prescribes (success probability 1/e at
// the threshold). It returns the network and its router.
func NewRFC(p Params, seed uint64) (*Clos, *Router, error) {
	c, ud, _, err := core.GenerateRoutable(p, 50, rng.New(seed))
	return c, ud, err
}

// NewRFCUnchecked generates a random folded Clos without requiring the
// common-ancestor property — useful for studying the threshold itself.
func NewRFCUnchecked(p Params, seed uint64) (*Clos, error) {
	return core.Generate(p, rng.New(seed))
}

// NewCFT builds the R-commodity fat-tree (2(R/2)^l terminals).
func NewCFT(radix, levels int) (*Clos, error) { return topology.NewCFT(radix, levels) }

// NewCFTWithTerminals builds a CFT wiring with only termsPerLeaf <= R/2
// compute nodes per leaf (a partially populated fat-tree).
func NewCFTWithTerminals(radix, levels, termsPerLeaf int) (*Clos, error) {
	return topology.NewCFTWithTerminals(radix, levels, termsPerLeaf)
}

// NewOFT builds the l-level orthogonal fat-tree of prime-power order q.
func NewOFT(q, levels int) (*Clos, error) { return topology.NewOFT(q, levels) }

// NewKaryTree builds the k-ary l-tree.
func NewKaryTree(k, levels int) (*Clos, error) { return topology.NewKaryTree(k, levels) }

// NewRRN builds a Jellyfish-style random regular network with n switches of
// network degree d and t terminals per switch.
func NewRRN(n, d, t int, seed uint64) (*RRN, error) {
	return topology.NewRRN(n, d, t, rng.New(seed))
}

// NewRouter computes up/down routing state for any folded Clos network.
// Call (*Router).Rebuild after removing links.
func NewRouter(c *Clos) *Router { return routing.New(c) }

// ParamsForTerminals sizes an RFC of the given radix and level count to at
// least t terminals.
func ParamsForTerminals(radix, levels, t int) Params {
	return core.ParamsForTerminals(radix, levels, t)
}

// ThresholdRadix returns Theorem 4.2's sharp threshold radix
// 2(N1 ln N1)^(1/(2(l-1))) for up/down routability.
func ThresholdRadix(n1, levels int) float64 { return core.ThresholdRadix(n1, levels) }

// MaxLeaves returns the largest leaf count realizable with up/down routing
// at the given radix and level count.
func MaxLeaves(radix, levels int) int { return core.MaxLeaves(radix, levels) }

// MaxTerminals is MaxLeaves expressed in compute nodes.
func MaxTerminals(radix, levels int) int { return core.MaxTerminals(radix, levels) }

// XParam returns the Theorem 4.2 offset x implied by a radix choice;
// SuccessProbability(x) = exp(-exp(-x)) is the limiting routability
// probability.
func XParam(radix, n1, levels int) float64 { return core.XParam(radix, n1, levels) }

// SuccessProbability returns exp(-exp(-x)).
func SuccessProbability(x float64) float64 { return core.SuccessProbability(x) }

// Expand applies n minimal strong expansions to an RFC (§5): each adds two
// switches per non-top level, one top switch and R terminals, rewiring
// (l-1)·R existing links. Returns the expanded network and the rewired
// link count; the input is not mutated.
func Expand(c *Clos, n int, seed uint64) (*Clos, int, error) {
	return core.Expand(c, n, rng.New(seed))
}

// NewTraffic constructs a §6 traffic pattern by name ("uniform",
// "random-pairing", "fixed-random") over t terminals.
func NewTraffic(name string, t int, seed uint64) (TrafficPattern, error) {
	return traffic.New(name, t, rng.New(seed))
}

// TrafficNames lists the §6 pattern names.
func TrafficNames() []string { return traffic.Names() }

// Simulate runs one virtual cut-through simulation of the network under the
// pattern at the given offered load (phits per terminal per cycle).
func Simulate(c *Clos, r *Router, pat TrafficPattern, load float64, cfg SimConfig) SimResult {
	return simnet.New(c, r, pat, cfg).Run(load)
}

// DefaultSimConfig returns the Table 2 parameters.
func DefaultSimConfig() SimConfig { return simnet.DefaultConfig() }

// Fig5Diameter regenerates Figure 5 (diameter evolution) for a radix.
func Fig5Diameter(radix int) *Report { return analysis.Fig5Diameter(radix) }

// Fig6Scalability regenerates Figure 6 (terminals vs radix, levels 2-4).
func Fig6Scalability(radices []int) *Report { return analysis.Fig6Scalability(radices) }

// Fig7Expandability regenerates Figure 7 (cost vs terminals under
// expansion).
func Fig7Expandability(radix, maxTerminals, points int) *Report {
	return analysis.Fig7Expandability(radix, maxTerminals, points)
}

// Costs regenerates the §5 cost comparison table.
func Costs() *Report { return analysis.Costs() }

// Thm42 runs the Theorem 4.2 Monte-Carlo validation with its trials fanned
// out on a worker pool (workers <= 0 means one per CPU). The report is
// byte-identical for any worker count.
func Thm42(n1, trials, workers int, seed uint64) (*Report, error) {
	return analysis.Thm42(n1, trials, workers, seed)
}

// ScenarioSweep runs the Figure 8/9/10 latency-throughput sweep for one of
// the §6 scenarios (index 0..2) at the given scale.
func ScenarioSweep(scale analysis.Scale, scenario int, opts analysis.SimOptions) (*Report, error) {
	scs := analysis.Scenarios(scale)
	if scenario < 0 || scenario >= len(scs) {
		scenario = 0
	}
	return analysis.ScenarioSweep(scs[scenario], opts)
}

// SimOptions configures ScenarioSweep (loads, repetitions, Table 2
// parameters).
type SimOptions = analysis.SimOptions

// Fig11UpDownFaults regenerates Figure 11 (up/down fault tolerance).
func Fig11UpDownFaults(opts analysis.Fig11Options) (*Report, error) {
	return analysis.Fig11UpDownFaults(opts)
}

// Fig11Options configures Fig11UpDownFaults.
type Fig11Options = analysis.Fig11Options

// Fig12FaultThroughput regenerates Figure 12 (throughput under faults).
func Fig12FaultThroughput(opts analysis.Fig12Options) (*Report, error) {
	return analysis.Fig12FaultThroughput(opts)
}

// Fig12Options configures Fig12FaultThroughput.
type Fig12Options = analysis.Fig12Options

// Table3Disconnect regenerates Table 3 (links removed to disconnect).
func Table3Disconnect(opts analysis.Table3Options) (*Report, error) {
	return analysis.Table3Disconnect(opts)
}

// Table3Options configures Table3Disconnect.
type Table3Options = analysis.Table3Options

// Ablations quantifies the simulator design knobs (virtual channels,
// buffer depth, request refresh) on the equal-resources RFC.
func Ablations(opts analysis.AblationOptions) (*Report, error) {
	return analysis.Ablations(opts)
}

// AblationOptions configures Ablations.
type AblationOptions = analysis.AblationOptions

// Structure compares diameter-4 networks on diameter, mean distance,
// bisection and path diversity (§4.2/§7 side metrics).
func Structure(opts analysis.StructureOptions) (*Report, error) { return analysis.Structure(opts) }

// StructureOptions configures Structure.
type StructureOptions = analysis.StructureOptions

// Adversarial drives the equal-resources CFT and RFC with the shift
// permutation at full load (the §4.2 adversarial-traffic discussion).
func Adversarial(opts analysis.AdversarialOptions) (*Report, error) {
	return analysis.Adversarial(opts)
}

// AdversarialOptions configures Adversarial.
type AdversarialOptions = analysis.AdversarialOptions

// TablesReport compares forwarding-state sizes (explicit ECMP tables,
// router bitsets, estimated Jellyfish k-shortest state).
func TablesReport(scale analysis.Scale, kPaths int, seed uint64) (*Report, error) {
	return analysis.TablesReport(scale, kPaths, seed)
}

// Jellyfish runs the RFC-vs-RRN simulated comparison the paper declines to
// perform, using the direct-network simulator with hop-indexed VCs.
func Jellyfish(opts analysis.JellyfishOptions) (*Report, error) { return analysis.Jellyfish(opts) }

// JellyfishOptions configures Jellyfish.
type JellyfishOptions = analysis.JellyfishOptions

// RRNFaults extends the Figure 12 fault methodology to the random baseline:
// RFC vs equal-T RRN throughput under growing link faults, for uniform and
// adversarial shift traffic, both on the unified cycle engine.
func RRNFaults(opts analysis.RRNFaultsOptions) (*Report, error) { return analysis.RRNFaults(opts) }

// RRNFaultsOptions configures RRNFaults.
type RRNFaultsOptions = analysis.RRNFaultsOptions

// GeneralParams describes an arbitrary (non-radix-regular) folded Clos
// shape per Definition 4.1.
type GeneralParams = core.GeneralParams

// NewGeneralRFC generates a random folded Clos with arbitrary level sizes
// and degrees (Definition 4.1).
func NewGeneralRFC(p GeneralParams, seed uint64) (*Clos, error) {
	return core.GenerateGeneral(p, rng.New(seed))
}

// NewHashnetParams returns the equal-level-size shape of Fahlman's Hashnet.
func NewHashnetParams(n, levels, d, termsPerLeaf int) GeneralParams {
	return core.NewHashnetParams(n, levels, d, termsPerLeaf)
}

// ExpansionStep is one row of a PlanExpansion schedule.
type ExpansionStep = core.ExpansionStep

// PlanExpansion computes the §5 expansion schedule from fromTerminals to
// toTerminals at the given radix and level count.
func PlanExpansion(radix, levels, fromTerminals, toTerminals, maxRows int) ([]ExpansionStep, error) {
	return core.PlanExpansion(radix, levels, fromTerminals, toTerminals, maxRows)
}
