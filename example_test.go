package rfclos_test

import (
	"fmt"

	"rfclos"
)

// ExampleNewRFC builds the paper's equal-resources RFC (radix 36, 3 levels,
// 648 leaf switches — the Figure 8 network) and verifies the Theorem 4.2
// common-ancestor property.
func ExampleNewRFC() {
	p := rfclos.Params{Radix: 36, Levels: 3, Leaves: 648}
	net, router, err := rfclos.NewRFC(p, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("terminals:", net.Terminals())
	fmt.Println("switches:", net.NumSwitches())
	fmt.Println("routable:", router.Routable())
	// Output:
	// terminals: 11664
	// switches: 1620
	// routable: true
}

// ExampleThresholdRadix shows the §4.2 sizing example: at radix 36 and
// diameter 4 (3 levels), an RFC scales to ≈200K terminals where the CFT of
// the same radix and diameter caps at 11,664.
func ExampleThresholdRadix() {
	fmt.Printf("threshold radix for 11254 leaves: %.1f\n", rfclos.ThresholdRadix(11254, 3))
	fmt.Println("max RFC terminals:", rfclos.MaxTerminals(36, 3))
	cft, _ := rfclos.NewCFT(36, 3)
	fmt.Println("CFT terminals:", cft.Terminals())
	// Output:
	// threshold radix for 11254 leaves: 36.0
	// max RFC terminals: 202536
	// CFT terminals: 11664
}

// ExamplePlanExpansion prints the start of the §5 expansion schedule: every
// increment adds R = 36 servers and rewires (l-1)·R = 72 links.
func ExamplePlanExpansion() {
	steps, err := rfclos.PlanExpansion(36, 3, 11664, 11664+5*36, 10)
	if err != nil {
		panic(err)
	}
	for _, s := range steps[:3] {
		fmt.Printf("inc %d: %d terminals, %d rewired\n", s.Increment, s.Terminals, s.RewiredLinks)
	}
	// Output:
	// inc 0: 11664 terminals, 0 rewired
	// inc 1: 11700 terminals, 72 rewired
	// inc 2: 11736 terminals, 72 rewired
}

// ExampleNewOFT builds the Figure 2 network: the 2-level orthogonal
// fat-tree of order 3.
func ExampleNewOFT() {
	oft, err := rfclos.NewOFT(3, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(oft)
	// Output:
	// folded Clos: R=8 levels=2 sizes=[26 13] terminals=104 wires=104
}

// ExampleSimulate runs a short uniform-traffic simulation on a small CFT
// with the Table 2 parameters.
func ExampleSimulate() {
	net, err := rfclos.NewCFT(8, 2)
	if err != nil {
		panic(err)
	}
	router := rfclos.NewRouter(net)
	pat, _ := rfclos.NewTraffic("uniform", net.Terminals(), 3)
	cfg := rfclos.DefaultSimConfig()
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 1000
	res := rfclos.Simulate(net, router, pat, 0.3, cfg)
	fmt.Printf("accepted within 5%% of offered: %v\n", res.AcceptedLoad > 0.285 && res.AcceptedLoad < 0.315)
	fmt.Println("conserved:", res.TotalGenerated == res.TotalDelivered+res.TotalDropped+res.InFlightAtEnd)
	// Output:
	// accepted within 5% of offered: true
	// conserved: true
}
