package rfclos

// One benchmark per paper exhibit (Figures 5-12, Table 3, Theorem 4.2),
// plus micro-benchmarks of the core operations. The benchmarks run reduced
// workloads so `go test -bench=.` finishes on a laptop; cmd/rfcpaper runs
// the full versions and EXPERIMENTS.md records paper-vs-measured numbers.

import (
	"testing"

	"rfclos/internal/analysis"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

func BenchmarkFig5Diameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := Fig5Diameter(36); len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig6Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := Fig6Scalability(nil); len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig7Expandability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := Fig7Expandability(36, 0, 40); len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// benchSweep runs a reduced sweep of one §6 scenario on a worker pool of
// the given size (0 = one worker per CPU). Serial and parallel variants
// produce identical reports; only wall-clock differs.
func benchSweep(b *testing.B, scenario, workers int) {
	b.Helper()
	opts := SimOptions{
		Loads:   []float64{0.4, 0.6},
		Reps:    2,
		Sim:     simnet.Config{WarmupCycles: 200, MeasureCycles: 600},
		Seed:    uint64(scenario + 1),
		Workers: workers,
	}
	opts.Patterns = []string{"uniform"}
	for i := 0; i < b.N; i++ {
		rep, err := ScenarioSweep(ScaleSmall, scenario, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig8Scenario11K(b *testing.B)          { benchSweep(b, 0, 1) }
func BenchmarkFig8Scenario11KParallel(b *testing.B)  { benchSweep(b, 0, 0) }
func BenchmarkFig9Scenario100K(b *testing.B)         { benchSweep(b, 1, 1) }
func BenchmarkFig9Scenario100KParallel(b *testing.B) { benchSweep(b, 1, 0) }
func BenchmarkFig10Scenario200K(b *testing.B)        { benchSweep(b, 2, 1) }

func BenchmarkFig11UpDownFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Fig11UpDownFaults(Fig11Options{Radix: 8, Trials: 2, MaxLeavesCap: 80, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig12FaultThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Fig12FaultThroughput(Fig12Options{
			Scale:      ScaleSmall,
			FaultSteps: 2,
			Reps:       1,
			Sim:        simnet.Config{WarmupCycles: 150, MeasureCycles: 400},
			Seed:       5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable3Disconnect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Table3Disconnect(Table3Options{Targets: []int{512, 1024}, Trials: 10, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkThm42MonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Thm42(120, 20, 0, 9)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Ablations(AblationOptions{
			Scale: ScaleSmall,
			Reps:  1,
			Sim:   simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
			Seed:  11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkJellyfishComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Jellyfish(JellyfishOptions{
			Loads: []float64{0.5},
			Reps:  1,
			Sim:   simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
			Seed:  13,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- micro-benchmarks of the core operations ---

func BenchmarkGenerateRFC648(b *testing.B) {
	p := Params{Radix: 36, Levels: 3, Leaves: 648}
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewRFCUnchecked(p, r.Uint64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouterRebuild11K(b *testing.B) {
	c, err := topology.NewCFT(36, 3)
	if err != nil {
		b.Fatal(err)
	}
	ud := routing.New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ud.Rebuild()
	}
}

func BenchmarkUpDownPathLookup(b *testing.B) {
	c, err := topology.NewCFT(16, 3)
	if err != nil {
		b.Fatal(err)
	}
	ud := routing.New(c)
	r := rng.New(2)
	n1 := c.LevelSize(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := r.Intn(n1), r.Intn(n1)
		if p := ud.Path(src, dst, r); p == nil {
			b.Fatal("no path")
		}
	}
}

func BenchmarkSimulatedCycle1K(b *testing.B) {
	// Cost of one simulated cycle on the scaled 1K-terminal CFT at 60%
	// load, reported as ns per cycle.
	c, err := topology.NewCFT(16, 3)
	if err != nil {
		b.Fatal(err)
	}
	ud := routing.New(c)
	cfg := simnet.Config{WarmupCycles: 100, MeasureCycles: 900, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simnet.New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0.6)
	}
}

func BenchmarkFaultsToDisconnect(b *testing.B) {
	c, err := topology.NewCFT(16, 3)
	if err != nil {
		b.Fatal(err)
	}
	g := c.SwitchGraph()
	r := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.FaultsToDisconnect(g, r)
	}
}
