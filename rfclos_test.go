package rfclos

import (
	"strings"
	"testing"
)

// These are end-to-end integration tests of the public facade: build →
// route → expand → simulate, the full life of an RFC deployment.

func TestPublicAPIEndToEnd(t *testing.T) {
	p := ParamsForTerminals(8, 3, 60)
	if p.Terminals() < 60 {
		t.Fatalf("sizing failed: %v", p)
	}
	c, router, err := NewRFC(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !router.Routable() {
		t.Fatal("NewRFC returned unroutable network")
	}

	// Expand by two increments and re-route.
	bigger, rewired, err := Expand(c, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Terminals() != c.Terminals()+2*p.Radix {
		t.Errorf("expansion terminals: %d -> %d", c.Terminals(), bigger.Terminals())
	}
	if rewired != 2*(p.Levels-1)*p.Radix {
		t.Errorf("rewired = %d", rewired)
	}
	router2 := NewRouter(bigger)
	_ = router2.Routable() // probabilistic; just exercise it

	// Simulate all three traffic patterns briefly.
	cfg := DefaultSimConfig()
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 800
	for _, name := range TrafficNames() {
		pat, err := NewTraffic(name, c.Terminals(), 7)
		if err != nil {
			t.Fatal(err)
		}
		res := Simulate(c, router, pat, 0.4, cfg)
		if res.Delivered == 0 {
			t.Errorf("%s: nothing delivered", name)
		}
		if res.TotalGenerated != res.TotalDelivered+res.TotalDropped+res.InFlightAtEnd {
			t.Errorf("%s: conservation violated", name)
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	cft, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cft.Terminals() != 128 {
		t.Errorf("CFT terminals = %d, want 128", cft.Terminals())
	}
	oft, err := NewOFT(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if oft.Terminals() != 104 {
		t.Errorf("OFT terminals = %d, want 2(q+1)(q²+q+1) = 104", oft.Terminals())
	}
	kary, err := NewKaryTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kary.Terminals() != 16 {
		t.Errorf("k-ary tree terminals = %d, want 16", kary.Terminals())
	}
	rrn, err := NewRRN(32, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rrn.Terminals() != 64 {
		t.Errorf("RRN terminals = %d, want 64", rrn.Terminals())
	}
	partial, err := NewCFTWithTerminals(8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Terminals() != 64 {
		t.Errorf("partial CFT terminals = %d, want 64", partial.Terminals())
	}
}

func TestPublicThresholds(t *testing.T) {
	if MaxTerminals(36, 3) < 200000 {
		t.Error("MaxTerminals(36,3) should be ≈202K")
	}
	if ThresholdRadix(648, 3) >= 36 {
		t.Error("radix 36 should be above threshold for 648 leaves")
	}
	x := XParam(36, 648, 3)
	if SuccessProbability(x) < 0.99 {
		t.Error("11K scenario should be far above threshold")
	}
}

func TestPublicReports(t *testing.T) {
	if rep := Fig5Diameter(36); len(rep.Rows) == 0 {
		t.Error("Fig5 empty")
	}
	if rep := Fig6Scalability(nil); len(rep.Rows) == 0 {
		t.Error("Fig6 empty")
	}
	if rep := Fig7Expandability(16, 5000, 10); len(rep.Rows) == 0 {
		t.Error("Fig7 empty")
	}
	rep := Costs()
	if !strings.Contains(rep.Format(), "RFC") {
		t.Error("Costs missing RFC rows")
	}
}
