package rfclos

import (
	"testing"
)

// TestFacadeSmoke exercises every report-producing wrapper of the public
// API once, at minimal sizes, so a downstream user can rely on each entry
// point compiling and running.
func TestFacadeSmoke(t *testing.T) {
	quick := SimConfig{WarmupCycles: 100, MeasureCycles: 300}

	if _, err := NewRFCUnchecked(Params{Radix: 8, Levels: 2, Leaves: 8}, 1); err != nil {
		t.Errorf("NewRFCUnchecked: %v", err)
	}
	if _, err := NewGeneralRFC(NewHashnetParams(8, 3, 4, 4), 1); err != nil {
		t.Errorf("NewGeneralRFC: %v", err)
	}
	if rep, err := Thm42(60, 10, 0, 1); err != nil || len(rep.Rows) == 0 {
		t.Errorf("Thm42: %v", err)
	}
	if rep, err := Table3Disconnect(Table3Options{Targets: []int{256}, Trials: 5, Seed: 1}); err != nil || len(rep.Rows) != 1 {
		t.Errorf("Table3Disconnect: %v", err)
	}
	if rep, err := Fig11UpDownFaults(Fig11Options{Radix: 8, Trials: 1, MaxLeavesCap: 40, Seed: 1}); err != nil || len(rep.Rows) == 0 {
		t.Errorf("Fig11UpDownFaults: %v", err)
	}
	if rep, err := Fig12FaultThroughput(Fig12Options{FaultSteps: 1, Reps: 1, Sim: quick, Seed: 1}); err != nil || len(rep.Rows) == 0 {
		t.Errorf("Fig12FaultThroughput: %v", err)
	}
	opts := SimOptions{Loads: []float64{0.3}, Reps: 1, Sim: quick, Patterns: []string{"uniform"}, Seed: 1}
	if rep, err := ScenarioSweep(ScaleSmall, 0, opts); err != nil || len(rep.Rows) == 0 {
		t.Errorf("ScenarioSweep: %v", err)
	}
	if rep, err := Ablations(AblationOptions{Reps: 1, Sim: quick, Seed: 1}); err != nil || len(rep.Rows) == 0 {
		t.Errorf("Ablations: %v", err)
	}
	if rep, err := Structure(StructureOptions{Target: 128, PairSamples: 16, Seed: 1}); err != nil || len(rep.Rows) == 0 {
		t.Errorf("Structure: %v", err)
	}
	if rep, err := Adversarial(AdversarialOptions{Reps: 1, Sim: quick, Seed: 1}); err != nil || len(rep.Rows) == 0 {
		t.Errorf("Adversarial: %v", err)
	}
	if rep, err := TablesReport(ScaleSmall, 2, 1); err != nil || len(rep.Rows) == 0 {
		t.Errorf("TablesReport: %v", err)
	}
	if rep, err := Jellyfish(JellyfishOptions{Loads: []float64{0.3}, Reps: 1, Sim: quick, Seed: 1}); err != nil || len(rep.Rows) == 0 {
		t.Errorf("Jellyfish: %v", err)
	}
	if steps, err := PlanExpansion(16, 3, 1024, 2048, 5); err != nil || len(steps) == 0 {
		t.Errorf("PlanExpansion: %v", err)
	}
}

func TestFacadeReportFormat(t *testing.T) {
	rep := Costs()
	out := rep.Format()
	if len(out) < 100 {
		t.Errorf("Format produced suspiciously short output: %q", out)
	}
}
