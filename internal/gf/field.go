// Package gf implements finite fields GF(p^k) of small order and the
// projective planes PG(2, q) built from them. The orthogonal fat-tree (OFT)
// baseline of the paper is defined from the projective plane of order q, so
// this package is the substrate for every OFT construction and experiment.
package gf

import "fmt"

// Field is a finite field GF(q) with q = p^k <= 256, represented by dense
// operation tables. Elements are the integers 0..q-1; 0 and 1 are the
// additive and multiplicative identities.
type Field struct {
	P, K, Q int
	add     [][]uint8
	mul     [][]uint8
	neg     []uint8
	inv     []uint8 // inv[0] unused
}

// NewField constructs GF(q). It returns an error when q is not a prime power
// or exceeds 256.
func NewField(q int) (*Field, error) {
	if q < 2 || q > 256 {
		return nil, fmt.Errorf("gf: order %d out of supported range [2,256]", q)
	}
	p, k, ok := primePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	f := &Field{P: p, K: k, Q: q}
	if k == 1 {
		f.buildPrimeTables()
	} else {
		poly, err := findIrreducible(p, k)
		if err != nil {
			return nil, err
		}
		f.buildExtensionTables(poly)
	}
	f.buildInverses()
	return f, nil
}

// primePower factors q as p^k for prime p, reporting ok=false otherwise.
func primePower(q int) (p, k int, ok bool) {
	for p = 2; p*p <= q; p++ {
		if q%p == 0 {
			k = 0
			for n := q; n > 1; n /= p {
				if n%p != 0 {
					return 0, 0, false
				}
				k++
			}
			return p, k, true
		}
	}
	return q, 1, true // q itself is prime
}

func (f *Field) allocTables() {
	f.add = make([][]uint8, f.Q)
	f.mul = make([][]uint8, f.Q)
	for i := range f.add {
		f.add[i] = make([]uint8, f.Q)
		f.mul[i] = make([]uint8, f.Q)
	}
	f.neg = make([]uint8, f.Q)
	f.inv = make([]uint8, f.Q)
}

func (f *Field) buildPrimeTables() {
	f.allocTables()
	for a := 0; a < f.Q; a++ {
		for b := 0; b < f.Q; b++ {
			f.add[a][b] = uint8((a + b) % f.Q)
			f.mul[a][b] = uint8((a * b) % f.Q)
		}
		f.neg[a] = uint8((f.Q - a) % f.Q)
	}
}

// buildExtensionTables represents elements as polynomials over GF(p) in
// base-p digits: element e = sum e_i x^i with e_i = (e / p^i) mod p.
// Multiplication reduces modulo the supplied irreducible polynomial, given
// as coefficient slice poly[0..k] with poly[k] == 1.
func (f *Field) buildExtensionTables(poly []int) {
	f.allocTables()
	p, k := f.P, f.K
	digits := func(e int) []int {
		d := make([]int, k)
		for i := 0; i < k; i++ {
			d[i] = e % p
			e /= p
		}
		return d
	}
	undigits := func(d []int) int {
		e := 0
		for i := k - 1; i >= 0; i-- {
			e = e*p + d[i]
		}
		return e
	}
	for a := 0; a < f.Q; a++ {
		da := digits(a)
		nd := make([]int, k)
		for i := 0; i < k; i++ {
			nd[i] = (p - da[i]) % p
		}
		f.neg[a] = uint8(undigits(nd))
		for b := 0; b < f.Q; b++ {
			db := digits(b)
			s := make([]int, k)
			for i := 0; i < k; i++ {
				s[i] = (da[i] + db[i]) % p
			}
			f.add[a][b] = uint8(undigits(s))
			// Polynomial product then reduction mod poly.
			prod := make([]int, 2*k-1)
			for i := 0; i < k; i++ {
				if da[i] == 0 {
					continue
				}
				for j := 0; j < k; j++ {
					prod[i+j] = (prod[i+j] + da[i]*db[j]) % p
				}
			}
			for deg := 2*k - 2; deg >= k; deg-- {
				c := prod[deg]
				if c == 0 {
					continue
				}
				prod[deg] = 0
				// x^deg = -poly[0..k-1] * x^(deg-k) (since poly monic).
				for j := 0; j < k; j++ {
					prod[deg-k+j] = (prod[deg-k+j] + c*(p-poly[j])) % p
				}
			}
			f.mul[a][b] = uint8(undigits(prod[:k]))
		}
	}
}

func (f *Field) buildInverses() {
	for a := 1; a < f.Q; a++ {
		for b := 1; b < f.Q; b++ {
			if f.mul[a][b] == 1 {
				f.inv[a] = uint8(b)
				break
			}
		}
	}
}

// findIrreducible searches for a monic irreducible polynomial of degree k
// over GF(p), returned as coefficients c[0..k] with c[k] = 1. Existence is
// guaranteed; the search space is tiny for the orders used here.
func findIrreducible(p, k int) ([]int, error) {
	total := 1
	for i := 0; i < k; i++ {
		total *= p
	}
	coeffs := make([]int, k+1)
	coeffs[k] = 1
	for enc := 0; enc < total; enc++ {
		e := enc
		for i := 0; i < k; i++ {
			coeffs[i] = e % p
			e /= p
		}
		if isIrreducible(coeffs, p, k) {
			out := make([]int, k+1)
			copy(out, coeffs)
			return out, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", k, p)
}

// isIrreducible performs trial division by every monic polynomial of degree
// 1..k/2 over GF(p). Adequate for the tiny degrees used here (k <= 4).
func isIrreducible(poly []int, p, k int) bool {
	if poly[0] == 0 {
		return false // divisible by x
	}
	for d := 1; d <= k/2; d++ {
		total := 1
		for i := 0; i < d; i++ {
			total *= p
		}
		div := make([]int, d+1)
		div[d] = 1
		for enc := 0; enc < total; enc++ {
			e := enc
			for i := 0; i < d; i++ {
				div[i] = e % p
				e /= p
			}
			if polyDivides(div, poly, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether monic divisor d divides poly over GF(p).
func polyDivides(d, poly []int, p int) bool {
	rem := append([]int(nil), poly...)
	dd := len(d) - 1
	for deg := len(rem) - 1; deg >= dd; deg-- {
		c := rem[deg]
		if c == 0 {
			continue
		}
		for j := 0; j <= dd; j++ {
			rem[deg-dd+j] = ((rem[deg-dd+j]-c*d[j])%p + p*p) % p
		}
	}
	for _, c := range rem[:dd] {
		if c != 0 {
			return false
		}
	}
	return true
}

// Add returns a + b in the field.
func (f *Field) Add(a, b int) int { return int(f.add[a][b]) }

// Sub returns a - b in the field.
func (f *Field) Sub(a, b int) int { return int(f.add[a][f.neg[b]]) }

// Mul returns a * b in the field.
func (f *Field) Mul(a, b int) int { return int(f.mul[a][b]) }

// Neg returns -a in the field.
func (f *Field) Neg(a int) int { return int(f.neg[a]) }

// Inv returns the multiplicative inverse of a. It panics for a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return int(f.inv[a])
}

// IsPrimePower reports whether q is a prime power (and hence a valid OFT
// order).
func IsPrimePower(q int) bool {
	if q < 2 {
		return false
	}
	_, _, ok := primePower(q)
	return ok
}
