package gf

import "testing"

func TestPlaneLineDuality(t *testing.T) {
	// The dual axiom: any two distinct lines meet in exactly one point.
	for _, q := range []int{2, 3, 4, 5} {
		pl, err := NewPlane(q)
		if err != nil {
			t.Fatal(err)
		}
		onPoint := make([]map[int32]bool, pl.N)
		for l := 0; l < pl.N; l++ {
			onPoint[l] = make(map[int32]bool, q+1)
			for _, p := range pl.LinePoints[l] {
				onPoint[l][p] = true
			}
		}
		for l1 := 0; l1 < pl.N; l1++ {
			for l2 := l1 + 1; l2 < pl.N; l2++ {
				shared := 0
				for _, p := range pl.LinePoints[l1] {
					if onPoint[l2][p] {
						shared++
					}
				}
				if shared != 1 {
					t.Fatalf("q=%d: lines %d,%d share %d points, want 1", q, l1, l2, shared)
				}
			}
		}
	}
}

func TestFieldCharacteristic(t *testing.T) {
	// Adding 1 to itself p times gives 0 (characteristic p).
	for _, q := range []int{4, 8, 9, 25} {
		f, err := NewField(q)
		if err != nil {
			t.Fatal(err)
		}
		acc := 0
		for i := 0; i < f.P; i++ {
			acc = f.Add(acc, 1)
		}
		if acc != 0 {
			t.Errorf("GF(%d): 1 added %d times = %d, want 0", q, f.P, acc)
		}
	}
}

func TestFrobeniusFixedField(t *testing.T) {
	// x -> x^p is an automorphism; its fixed points form the prime
	// subfield, so exactly p elements satisfy x^p = x.
	for _, q := range []int{4, 9, 8, 27} {
		f, err := NewField(q)
		if err != nil {
			t.Fatal(err)
		}
		fixed := 0
		for a := 0; a < q; a++ {
			x := a
			for i := 1; i < f.P; i++ {
				x = f.Mul(x, a)
			}
			if x == a {
				fixed++
			}
		}
		if fixed != f.P {
			t.Errorf("GF(%d): %d Frobenius fixed points, want %d", q, fixed, f.P)
		}
	}
}
