package gf

import "testing"

func TestPrimePower(t *testing.T) {
	cases := []struct {
		q, p, k int
		ok      bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true}, {5, 5, 1, true},
		{6, 0, 0, false}, {7, 7, 1, true}, {8, 2, 3, true}, {9, 3, 2, true},
		{10, 0, 0, false}, {12, 0, 0, false}, {16, 2, 4, true},
		{25, 5, 2, true}, {27, 3, 3, true}, {49, 7, 2, true},
		{100, 0, 0, false},
	}
	for _, c := range cases {
		p, k, ok := primePower(c.q)
		if ok != c.ok || (ok && (p != c.p || k != c.k)) {
			t.Errorf("primePower(%d) = (%d,%d,%v), want (%d,%d,%v)", c.q, p, k, ok, c.p, c.k, c.ok)
		}
		if IsPrimePower(c.q) != c.ok {
			t.Errorf("IsPrimePower(%d) = %v, want %v", c.q, !c.ok, c.ok)
		}
	}
	if IsPrimePower(1) || IsPrimePower(0) {
		t.Error("0 and 1 are not prime powers")
	}
}

// checkFieldAxioms exhaustively verifies the field axioms for GF(q).
func checkFieldAxioms(t *testing.T, q int) {
	t.Helper()
	f, err := NewField(q)
	if err != nil {
		t.Fatalf("NewField(%d): %v", q, err)
	}
	for a := 0; a < q; a++ {
		if f.Add(a, 0) != a || f.Mul(a, 1) != a {
			t.Fatalf("GF(%d): identity laws fail at %d", q, a)
		}
		if f.Add(a, f.Neg(a)) != 0 {
			t.Fatalf("GF(%d): additive inverse fails at %d", q, a)
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("GF(%d): multiplicative inverse fails at %d", q, a)
		}
		for b := 0; b < q; b++ {
			if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("GF(%d): commutativity fails at (%d,%d)", q, a, b)
			}
			if f.Sub(a, b) != f.Add(a, f.Neg(b)) {
				t.Fatalf("GF(%d): Sub inconsistent at (%d,%d)", q, a, b)
			}
			for c := 0; c < q; c++ {
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("GF(%d): add associativity fails", q)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("GF(%d): mul associativity fails", q)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("GF(%d): distributivity fails", q)
				}
			}
		}
	}
	// No zero divisors.
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.Mul(a, b) == 0 {
				t.Fatalf("GF(%d): zero divisor %d*%d", q, a, b)
			}
		}
	}
}

func TestFieldAxiomsPrime(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7, 11, 13} {
		checkFieldAxioms(t, q)
	}
}

func TestFieldAxiomsExtension(t *testing.T) {
	for _, q := range []int{4, 8, 9, 16, 25, 27} {
		checkFieldAxioms(t, q)
	}
}

func TestNewFieldErrors(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 300} {
		if _, err := NewField(q); err == nil {
			t.Errorf("NewField(%d) should fail", q)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f, _ := NewField(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestPlaneSmallOrders(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		pl, err := NewPlane(q)
		if err != nil {
			t.Fatalf("NewPlane(%d): %v", q, err)
		}
		if err := pl.Validate(); err != nil {
			t.Errorf("plane order %d: %v", q, err)
		}
	}
}

func TestPlaneFano(t *testing.T) {
	// PG(2,2) is the Fano plane: 7 points, 7 lines of 3 points each.
	pl, err := NewPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.N != 7 {
		t.Fatalf("Fano plane has %d points, want 7", pl.N)
	}
	for _, pts := range pl.LinePoints {
		if len(pts) != 3 {
			t.Errorf("Fano line has %d points, want 3", len(pts))
		}
	}
}

func TestPlaneInvalidOrder(t *testing.T) {
	if _, err := NewPlane(6); err == nil {
		t.Error("NewPlane(6) should fail (6 is not a prime power)")
	}
}

func BenchmarkNewPlane9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewPlane(9); err != nil {
			b.Fatal(err)
		}
	}
}
