package gf

import "fmt"

// Plane is the projective plane PG(2, q): N = q²+q+1 points and N lines,
// each line containing q+1 points and each point lying on q+1 lines, such
// that any two distinct points share exactly one line and any two distinct
// lines meet in exactly one point. The OFT of order q wires its switch
// levels by this incidence.
type Plane struct {
	Q, N int
	// PointLines[p] lists the q+1 lines through point p.
	PointLines [][]int32
	// LinePoints[l] lists the q+1 points on line l.
	LinePoints [][]int32
}

// NewPlane builds PG(2, q) for a prime power q.
func NewPlane(q int) (*Plane, error) {
	f, err := NewField(q)
	if err != nil {
		return nil, fmt.Errorf("gf: plane of order %d: %w", q, err)
	}
	n := q*q + q + 1
	// Canonical homogeneous coordinates: (1, a, b), (0, 1, a), (0, 0, 1).
	points := make([][3]int, 0, n)
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			points = append(points, [3]int{1, a, b})
		}
	}
	for a := 0; a < q; a++ {
		points = append(points, [3]int{0, 1, a})
	}
	points = append(points, [3]int{0, 0, 1})

	pl := &Plane{
		Q:          q,
		N:          n,
		PointLines: make([][]int32, n),
		LinePoints: make([][]int32, n),
	}
	// Lines use the same canonical coordinates; point p is on line l iff
	// the dot product of their coordinate vectors is zero.
	for l := 0; l < n; l++ {
		lc := points[l]
		for p := 0; p < n; p++ {
			pc := points[p]
			dot := f.Add(f.Add(f.Mul(lc[0], pc[0]), f.Mul(lc[1], pc[1])), f.Mul(lc[2], pc[2]))
			if dot == 0 {
				pl.LinePoints[l] = append(pl.LinePoints[l], int32(p))
				pl.PointLines[p] = append(pl.PointLines[p], int32(l))
			}
		}
	}
	return pl, nil
}

// Validate checks the projective plane axioms. It is used by tests and by
// callers that construct planes of new orders.
func (pl *Plane) Validate() error {
	q, n := pl.Q, pl.N
	if n != q*q+q+1 {
		return fmt.Errorf("gf: plane size %d != q²+q+1", n)
	}
	for l, pts := range pl.LinePoints {
		if len(pts) != q+1 {
			return fmt.Errorf("gf: line %d has %d points, want %d", l, len(pts), q+1)
		}
	}
	for p, ls := range pl.PointLines {
		if len(ls) != q+1 {
			return fmt.Errorf("gf: point %d lies on %d lines, want %d", p, len(ls), q+1)
		}
	}
	// Any two distinct points share exactly one line.
	onLine := make([]map[int32]bool, n)
	for p := range onLine {
		onLine[p] = make(map[int32]bool, q+1)
		for _, l := range pl.PointLines[p] {
			onLine[p][l] = true
		}
	}
	for p1 := 0; p1 < n; p1++ {
		for p2 := p1 + 1; p2 < n; p2++ {
			shared := 0
			for _, l := range pl.PointLines[p1] {
				if onLine[p2][l] {
					shared++
				}
			}
			if shared != 1 {
				return fmt.Errorf("gf: points %d,%d share %d lines, want 1", p1, p2, shared)
			}
		}
	}
	return nil
}
