package graph

import (
	"testing"

	"rfclos/internal/rng"
)

func TestShortestPath(t *testing.T) {
	g := pathGraph(5)
	p := g.ShortestPath(0, 4)
	if len(p) != 5 {
		t.Fatalf("path length %d, want 5", len(p))
	}
	for i, v := range p {
		if v != int32(i) {
			t.Errorf("p[%d] = %d, want %d", i, v, i)
		}
	}
	if p := g.ShortestPath(2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("trivial path = %v", p)
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	if g2.ShortestPath(0, 2) != nil {
		t.Error("expected nil path to unreachable vertex")
	}
}

func TestKShortestPathsCycle(t *testing.T) {
	// On C6, 0→3 has exactly two shortest paths of length 3 (both ways
	// around), and no other loopless paths besides those.
	g := cycleGraph(6)
	paths := g.KShortestPaths(0, 3, 5)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Errorf("path %v has %d hops, want 3", p, len(p)-1)
		}
		if !g.IsPath(p) {
			t.Errorf("%v is not a valid simple path", p)
		}
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	//    1
	//  / | \
	// 0  |  3 -- 4
	//  \ | /
	//    2
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	paths := g.KShortestPaths(0, 4, 10)
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want >= 2", len(paths))
	}
	// Orderings: lengths must be non-decreasing.
	for i := 1; i < len(paths); i++ {
		if len(paths[i]) < len(paths[i-1]) {
			t.Errorf("path %d shorter than path %d", i, i-1)
		}
	}
	// First two paths have 3 hops (via 1 or via 2).
	if len(paths[0]) != 4 || len(paths[1]) != 4 {
		t.Errorf("two shortest paths should have 3 hops: %v", paths[:2])
	}
	// All paths valid and distinct.
	seen := map[string]bool{}
	for _, p := range paths {
		if !g.IsPath(p) {
			t.Errorf("invalid path %v", p)
		}
		key := ""
		for _, v := range p {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Errorf("duplicate path %v", p)
		}
		seen[key] = true
		if p[0] != 0 || p[len(p)-1] != 4 {
			t.Errorf("path endpoints wrong: %v", p)
		}
	}
}

func TestKShortestOnRandomRegular(t *testing.T) {
	r := rng.New(21)
	g, err := RandomRegular(40, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	paths := g.KShortestPaths(0, 20, 8)
	if len(paths) == 0 {
		t.Fatal("no paths found in connected graph")
	}
	for i, p := range paths {
		if !g.IsPath(p) {
			t.Errorf("path %d invalid: %v", i, p)
		}
		if i > 0 && len(p) < len(paths[i-1]) {
			t.Errorf("paths not sorted by length at %d", i)
		}
	}
	// First path must be a true shortest path.
	d := g.BFS(0, nil)
	if int(d[20]) != len(paths[0])-1 {
		t.Errorf("first path length %d != BFS distance %d", len(paths[0])-1, d[20])
	}
}

func TestIsPathRejects(t *testing.T) {
	g := cycleGraph(4)
	if g.IsPath([]int32{0, 2}) {
		t.Error("non-adjacent hop accepted")
	}
	if g.IsPath([]int32{0, 1, 0}) {
		t.Error("repeated vertex accepted")
	}
	if g.IsPath(nil) {
		t.Error("empty path accepted")
	}
}
