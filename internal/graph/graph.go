// Package graph provides the graph substrate the topology constructions and
// resiliency experiments are built on: a compact undirected graph type,
// traversal and distance algorithms, the paper's random regular and random
// bipartite generators (Appendix Listings 1 and 2), k-shortest paths,
// unit-capacity max-flow and a bisection heuristic.
package graph

import (
	"fmt"
	"iter"
	"slices"
)

// Graph is an undirected simple graph over vertices 0..N-1 stored as
// adjacency lists. Vertex ids are int32 internally to halve memory on the
// multi-hundred-thousand-node instances used in the expansion experiments.
type Graph struct {
	adj [][]int32
	m   int // number of edges
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// AddEdge inserts the undirected edge {u, v}. It does not check for
// duplicates; use HasEdge first when simplicity must be preserved.
func (g *Graph) AddEdge(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	a, b := g.adj[u], g.adj[v]
	if len(b) < len(a) {
		a, b = b, a
		u, v = v, u
	}
	for _, w := range a {
		if w == int32(v) {
			return true
		}
	}
	return false
}

// RemoveEdge deletes one copy of the undirected edge {u, v}. It reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !removeOne(&g.adj[u], int32(v)) {
		return false
	}
	if !removeOne(&g.adj[v], int32(u)) {
		// Restore symmetry before reporting corruption.
		g.adj[u] = append(g.adj[u], int32(v))
		panic(fmt.Sprintf("graph: asymmetric adjacency for edge {%d,%d}", u, v))
	}
	g.m--
	return true
}

func removeOne(list *[]int32, v int32) bool {
	l := *list
	for i, w := range l {
		if w == v {
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return true
		}
	}
	return false
}

// Edge is an undirected edge with U <= V for canonical ordering.
type Edge struct{ U, V int32 }

// Edges returns every edge exactly once, in canonical (U<=V, sorted) order.
// Prefer EdgeSeq when the caller only iterates: this materialises the full
// edge slice.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for e := range g.EdgeSeq() {
		es = append(es, e)
	}
	return es
}

// EdgeSeq yields every edge exactly once in the same canonical order Edges
// returns, buffering only one vertex's neighbour list at a time: for each u
// ascending, the neighbours v >= u are sorted and emitted as (u, v). Since
// the canonical order sorts by U first and V second, the concatenation of
// these per-vertex runs is exactly the globally sorted order.
func (g *Graph) EdgeSeq() iter.Seq[Edge] {
	return func(yield func(Edge) bool) {
		var buf []int32
		for u, ns := range g.adj {
			buf = buf[:0]
			for _, v := range ns {
				if int32(u) <= v {
					buf = append(buf, v)
				}
			}
			slices.Sort(buf)
			for _, v := range buf {
				if !yield(Edge{int32(u), v}) {
					return
				}
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int32, len(g.adj)), m: g.m}
	for i, ns := range g.adj {
		c.adj[i] = append([]int32(nil), ns...)
	}
	return c
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for _, ns := range g.adj {
		if len(ns) != d {
			return false
		}
	}
	return true
}

// IsSimple reports whether the graph has no self-loops and no multi-edges.
func (g *Graph) IsSimple() bool {
	seen := make(map[int32]struct{})
	for u, ns := range g.adj {
		clear(seen)
		for _, v := range ns {
			if v == int32(u) {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
	}
	return true
}
