package graph

import (
	"math"
	"testing"

	"rfclos/internal/rng"
)

func TestSecondEigenvalueKnownGraphs(t *testing.T) {
	r := rng.New(1)
	// Complete graph K_n: spectrum {n-1, -1^(n-1)} → |λ₂| = 1.
	if got := completeGraph(10).SecondEigenvalue(300, r); math.Abs(got-1) > 0.01 {
		t.Errorf("K10 |λ₂| = %v, want 1", got)
	}
	// Even cycle C12 is bipartite: −2 is an eigenvalue, so |λ₂| = 2.
	if got := cycleGraph(12).SecondEigenvalue(600, r); math.Abs(got-2) > 0.02 {
		t.Errorf("C12 |λ₂| = %v, want 2 (bipartite)", got)
	}
	// Odd cycle C_n: eigenvalues 2cos(2πk/n); the largest in magnitude
	// besides the Perron value is |2cos(π(n−1)/n)| = 2cos(π/n).
	n := 13
	want := 2 * math.Cos(math.Pi/float64(n))
	if got := cycleGraph(n).SecondEigenvalue(800, r); math.Abs(got-want) > 0.02 {
		t.Errorf("C13 |λ₂| = %v, want %v", got, want)
	}
	// Petersen graph: spectrum {3, 1^5, -2^4} → |λ₂| = 2.
	if got := petersen().SecondEigenvalue(400, r); math.Abs(got-2) > 0.02 {
		t.Errorf("Petersen |λ₂| = %v, want 2", got)
	}
	// Complete bipartite K_{4,4}: spectrum {±4, 0^6} → |λ₂| = 4 (it is
	// bipartite, so -d is an eigenvalue; expansion in the |λ₂| sense is
	// nil, matching its 2-colorable structure).
	kb := New(8)
	for i := 0; i < 4; i++ {
		for j := 4; j < 8; j++ {
			kb.AddEdge(i, j)
		}
	}
	if got := kb.SecondEigenvalue(400, r); math.Abs(got-4) > 0.05 {
		t.Errorf("K4,4 |λ₂| = %v, want 4", got)
	}
}

func TestRandomRegularNearRamanujan(t *testing.T) {
	// §2/§4.2: random regular graphs are excellent expanders; |λ₂| should
	// land near (and usually below ~1.15×) the Ramanujan bound 2√(d−1).
	r := rng.New(2)
	for _, d := range []int{4, 6, 8} {
		g, err := RandomRegular(200, d, r)
		if err != nil {
			t.Fatal(err)
		}
		got := g.SecondEigenvalue(300, r)
		bound := RamanujanBound(d)
		if got > bound*1.2 {
			t.Errorf("d=%d: |λ₂| = %v far above Ramanujan bound %v", d, got, bound)
		}
		if got < bound*0.6 {
			t.Errorf("d=%d: |λ₂| = %v implausibly small (bound %v)", d, got, bound)
		}
		if got >= float64(d) {
			t.Errorf("d=%d: |λ₂| = %v not separated from d", d, got)
		}
	}
}

func TestRamanujanBound(t *testing.T) {
	if RamanujanBound(3) != 2*math.Sqrt2 {
		t.Error("RamanujanBound(3) wrong")
	}
	if RamanujanBound(0) != 0 {
		t.Error("degenerate bound should be 0")
	}
}
