package graph

import (
	"errors"
	"fmt"

	"rfclos/internal/rng"
)

// ErrTooManyRestarts is returned when the pairing process keeps reaching
// dead ends, which indicates infeasible or degenerate parameters.
var ErrTooManyRestarts = errors.New("graph: random generation exceeded restart budget")

const maxRestarts = 1000

// RandomRegular generates a random d-regular simple graph on n vertices with
// the pairing (configuration-model) algorithm of Steger and Wormald, as in
// Listing 1 of the paper: each vertex owns d points, random points are paired
// when "suitable" (no loop, no multi-edge), and the whole process restarts
// from scratch when no suitable pair remains. The output distribution is
// asymptotically uniform over d-regular graphs.
func RandomRegular(n, d int, r *rng.Rand) (*Graph, error) {
	switch {
	case n <= 0 || d < 0:
		return nil, fmt.Errorf("graph: invalid RandomRegular(n=%d, d=%d)", n, d)
	case d >= n:
		return nil, fmt.Errorf("graph: RandomRegular requires d < n (n=%d, d=%d)", n, d)
	case n*d%2 != 0:
		return nil, fmt.Errorf("graph: RandomRegular requires n*d even (n=%d, d=%d)", n, d)
	}
	if d == 0 {
		return New(n), nil
	}
	for restart := 0; restart < maxRestarts; restart++ {
		g, ok := tryRandomRegular(n, d, r)
		if ok {
			return g, nil
		}
	}
	return nil, ErrTooManyRestarts
}

func tryRandomRegular(n, d int, r *rng.Rand) (*Graph, bool) {
	g := New(n)
	// U holds unmatched points; point p belongs to vertex p/d.
	U := make([]int32, n*d)
	for i := range U {
		U[i] = int32(i)
	}
	// After this many consecutive rejected picks, fall back to an
	// exhaustive search for a suitable pair (the listing's "check if there
	// is at least one available edge" step).
	stallLimit := 64 + 16*d
	for len(U) > 0 {
		fails := 0
		paired := false
		for fails < stallLimit {
			i := r.Intn(len(U))
			U[i], U[len(U)-1] = U[len(U)-1], U[i]
			j := r.Intn(len(U) - 1)
			U[j], U[len(U)-2] = U[len(U)-2], U[j]
			u := int(U[len(U)-1]) / d
			v := int(U[len(U)-2]) / d
			if u != v && !g.HasEdge(u, v) {
				U = U[:len(U)-2]
				g.AddEdge(u, v)
				paired = true
				break
			}
			fails++
		}
		if paired {
			continue
		}
		// Exhaustive fallback over vertices that still own points.
		u, v, ok := findSuitable(g, U, d)
		if !ok {
			return nil, false // dead end: restart
		}
		popPointOf(&U, u, d)
		popPointOf(&U, v, d)
		g.AddEdge(u, v)
	}
	return g, true
}

// findSuitable scans the remaining points for any suitable vertex pair.
func findSuitable(g *Graph, U []int32, d int) (int, int, bool) {
	avail := availableVertices(U, d)
	for i, u := range avail {
		for _, v := range avail[i:] {
			// A vertex can appear twice in avail conceptually (multiple
			// points) but avail is deduplicated, so u != v must hold, except
			// a vertex with >= 2 remaining points could pair with itself —
			// which would be a loop and is never suitable anyway.
			if u != v && !g.HasEdge(u, v) {
				return u, v, true
			}
		}
	}
	return 0, 0, false
}

func availableVertices(U []int32, d int) []int {
	seen := make(map[int]struct{}, len(U))
	var out []int
	for _, p := range U {
		v := int(p) / d
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

func popPointOf(U *[]int32, v, d int) {
	u := *U
	for i, p := range u {
		if int(p)/d == v {
			u[i] = u[len(u)-1]
			*U = u[:len(u)-1]
			return
		}
	}
	panic(fmt.Sprintf("graph: vertex %d has no remaining point", v))
}

// Bipartite is the result of RandomBipartite: AdjA[i] lists the B-side
// neighbours of A-vertex i (values in [0,NB)), and AdjB the reverse.
type Bipartite struct {
	NA, NB     int
	AdjA, AdjB [][]int32
}

// Validate checks degree regularity (da on side A, db on side B), simplicity
// and symmetry.
func (b *Bipartite) Validate(da, db int) error {
	if len(b.AdjA) != b.NA || len(b.AdjB) != b.NB {
		return errors.New("graph: bipartite adjacency size mismatch")
	}
	for i, ns := range b.AdjA {
		if len(ns) != da {
			return fmt.Errorf("graph: A-vertex %d has degree %d, want %d", i, len(ns), da)
		}
		seen := make(map[int32]struct{}, da)
		for _, v := range ns {
			if v < 0 || int(v) >= b.NB {
				return fmt.Errorf("graph: A-vertex %d has out-of-range neighbour %d", i, v)
			}
			if _, dup := seen[v]; dup {
				return fmt.Errorf("graph: multi-edge at A-vertex %d", i)
			}
			seen[v] = struct{}{}
		}
	}
	deg := make([]int, b.NB)
	for _, ns := range b.AdjA {
		for _, v := range ns {
			deg[v]++
		}
	}
	for j, ns := range b.AdjB {
		if len(ns) != db || deg[j] != db {
			return fmt.Errorf("graph: B-vertex %d has degree %d/%d, want %d", j, len(ns), deg[j], db)
		}
	}
	return nil
}

// RandomBipartite generates a random bipartite simple graph with n1 vertices
// of degree d1 on side A and n2 vertices of degree d2 on side B, following
// Listing 2 of the paper. It requires n1*d1 == n2*d2.
func RandomBipartite(n1, d1, n2, d2 int, r *rng.Rand) (*Bipartite, error) {
	switch {
	case n1 <= 0 || n2 <= 0 || d1 < 0 || d2 < 0:
		return nil, fmt.Errorf("graph: invalid RandomBipartite(%d,%d,%d,%d)", n1, d1, n2, d2)
	case n1*d1 != n2*d2:
		return nil, fmt.Errorf("graph: RandomBipartite needs n1*d1 == n2*d2 (got %d != %d)", n1*d1, n2*d2)
	case d1 > n2 || d2 > n1:
		return nil, fmt.Errorf("graph: RandomBipartite degrees exceed opposite side (%d>%d or %d>%d)", d1, n2, d2, n1)
	}
	if d1 == 0 {
		return &Bipartite{NA: n1, NB: n2, AdjA: make([][]int32, n1), AdjB: make([][]int32, n2)}, nil
	}
	for restart := 0; restart < maxRestarts; restart++ {
		b, ok := tryRandomBipartite(n1, d1, n2, d2, r)
		if ok {
			return b, nil
		}
	}
	return nil, ErrTooManyRestarts
}

func tryRandomBipartite(n1, d1, n2, d2 int, r *rng.Rand) (*Bipartite, bool) {
	b := &Bipartite{
		NA: n1, NB: n2,
		AdjA: make([][]int32, n1),
		AdjB: make([][]int32, n2),
	}
	U1 := make([]int32, n1*d1)
	for i := range U1 {
		U1[i] = int32(i)
	}
	U2 := make([]int32, n2*d2)
	for i := range U2 {
		U2[i] = int32(i)
	}
	hasEdge := func(u, v int) bool {
		for _, w := range b.AdjA[u] {
			if w == int32(v) {
				return true
			}
		}
		return false
	}
	stallLimit := 64 + 8*(d1+d2)
	for len(U1) > 0 {
		fails := 0
		paired := false
		for fails < stallLimit {
			i := r.Intn(len(U1))
			U1[i], U1[len(U1)-1] = U1[len(U1)-1], U1[i]
			j := r.Intn(len(U2))
			U2[j], U2[len(U2)-1] = U2[len(U2)-1], U2[j]
			u := int(U1[len(U1)-1]) / d1
			v := int(U2[len(U2)-1]) / d2
			if !hasEdge(u, v) {
				U1 = U1[:len(U1)-1]
				U2 = U2[:len(U2)-1]
				b.AdjA[u] = append(b.AdjA[u], int32(v))
				b.AdjB[v] = append(b.AdjB[v], int32(u))
				paired = true
				break
			}
			fails++
		}
		if paired {
			continue
		}
		u, v, ok := findSuitableBipartite(b, U1, d1, U2, d2)
		if !ok {
			return nil, false
		}
		popPointOf(&U1, u, d1)
		popPointOf(&U2, v, d2)
		b.AdjA[u] = append(b.AdjA[u], int32(v))
		b.AdjB[v] = append(b.AdjB[v], int32(u))
	}
	return b, true
}

func findSuitableBipartite(b *Bipartite, U1 []int32, d1 int, U2 []int32, d2 int) (int, int, bool) {
	availA := availableVertices(U1, d1)
	availB := availableVertices(U2, d2)
	for _, u := range availA {
		adj := b.AdjA[u]
		if len(adj) == b.NB {
			continue
		}
	nextB:
		for _, v := range availB {
			for _, w := range adj {
				if w == int32(v) {
					continue nextB
				}
			}
			return u, v, true
		}
	}
	return 0, 0, false
}
