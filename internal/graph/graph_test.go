package graph

import (
	"testing"

	"rfclos/internal/rng"
)

// pathGraph returns the path 0-1-...-(n-1).
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// cycleGraph returns the cycle on n vertices.
func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

// completeGraph returns K_n.
func completeGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestAddHasRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge 0-2")
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.RemoveEdge(1, 0) {
		t.Error("RemoveEdge failed on existing edge")
	}
	if g.HasEdge(0, 1) || g.M() != 1 {
		t.Error("edge not removed")
	}
	if g.RemoveEdge(0, 3) {
		t.Error("RemoveEdge succeeded on missing edge")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1)
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 2}}
	if len(es) != len(want) {
		t.Fatalf("got %d edges, want %d", len(es), len(want))
	}
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := cycleGraph(5)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("mutating clone affected original")
	}
	if c.M() != g.M()-1 {
		t.Error("clone edge count wrong after removal")
	}
}

func TestIsRegularIsSimple(t *testing.T) {
	if !cycleGraph(6).IsRegular(2) {
		t.Error("cycle should be 2-regular")
	}
	if pathGraph(4).IsRegular(2) {
		t.Error("path should not be 2-regular")
	}
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.IsSimple() {
		t.Error("multi-edge graph reported simple")
	}
	if !completeGraph(5).IsSimple() {
		t.Error("K5 reported non-simple")
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFS(0, nil)
	for i := 0; i < 5; i++ {
		if dist[i] != int32(i) {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	// Disconnected vertex.
	g2 := New(3)
	g2.AddEdge(0, 1)
	d2 := g2.BFS(0, nil)
	if d2[2] != -1 {
		t.Errorf("unreachable vertex distance = %d, want -1", d2[2])
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{pathGraph(5), 4},
		{cycleGraph(6), 3},
		{cycleGraph(7), 3},
		{completeGraph(8), 1},
	}
	for i, c := range cases {
		if d := c.g.Diameter(); d != c.want {
			t.Errorf("case %d: diameter = %d, want %d", i, d, c.want)
		}
	}
	g := New(4)
	g.AddEdge(0, 1)
	if d := g.Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
}

func TestDiameterSampledMatchesExact(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		g, err := RandomRegular(60, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		exact := g.Diameter()
		sampled := g.DiameterSampled(10, r)
		if sampled > exact {
			t.Errorf("sampled diameter %d exceeds exact %d", sampled, exact)
		}
		if exact-sampled > 1 {
			t.Errorf("sampled diameter %d too far below exact %d", sampled, exact)
		}
	}
}

func TestAverageDistance(t *testing.T) {
	// Path 0-1-2: distances 1,2,1 → mean 4/3.
	g := pathGraph(3)
	r := rng.New(2)
	got := g.AverageDistance(3, r)
	if want := 4.0 / 3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("average distance = %v, want %v", got, want)
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	if g2.AverageDistance(3, r) != -1 {
		t.Error("expected -1 for disconnected graph")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", sizes)
	}
	if !cycleGraph(4).IsConnected() {
		t.Error("cycle should be connected")
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}
