package graph

import (
	"math"

	"rfclos/internal/rng"
)

// SecondEigenvalue estimates |λ₂|, the largest absolute eigenvalue of the
// adjacency matrix orthogonal to the all-ones vector, for a connected
// d-regular graph. The spectral gap d − |λ₂| certifies expansion: the paper
// grounds RFC/RRN quality in the expander-graph literature (§2, §4.2), and
// random d-regular graphs are near-Ramanujan, |λ₂| ≈ 2√(d−1).
//
// The estimate uses power iteration with deflation of the Perron vector
// (valid because the graph is regular, making the all-ones vector the top
// eigenvector). iters controls convergence; 200 is plenty for the sizes
// used here. Results are meaningful only for connected regular graphs.
func (g *Graph) SecondEigenvalue(iters int, r *rng.Rand) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	if iters <= 0 {
		iters = 200
	}
	// Random start vector, orthogonal to 1.
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64() - 0.5
	}
	deflate(v)
	normalize(v)
	w := make([]float64, n)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		// w = A v
		for i := range w {
			w[i] = 0
		}
		for u := 0; u < n; u++ {
			vu := v[u]
			if vu == 0 {
				continue
			}
			for _, x := range g.adj[u] {
				w[x] += vu
			}
		}
		deflate(w)
		norm := normalize(w)
		v, w = w, v
		lambda = norm
	}
	// Power iteration on A converges to the eigenvalue largest in
	// magnitude within the deflated space; the Rayleigh norm is |λ₂|.
	return lambda
}

// deflate removes the component along the all-ones vector.
func deflate(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

// normalize scales v to unit length and returns its previous norm.
func normalize(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	norm := math.Sqrt(sum)
	if norm == 0 {
		return 0
	}
	for i := range v {
		v[i] /= norm
	}
	return norm
}

// RamanujanBound returns 2√(d−1), the asymptotically optimal |λ₂| of a
// d-regular expander.
func RamanujanBound(d int) float64 {
	if d < 1 {
		return 0
	}
	return 2 * math.Sqrt(float64(d-1))
}
