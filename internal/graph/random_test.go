package graph

import (
	"testing"
	"testing/quick"

	"rfclos/internal/rng"
)

func TestRandomRegularBasic(t *testing.T) {
	r := rng.New(100)
	for _, tc := range []struct{ n, d int }{
		{10, 3}, {16, 4}, {50, 6}, {100, 3}, {64, 8}, {7, 4},
	} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if !g.IsRegular(tc.d) {
			t.Errorf("(%d,%d): not %d-regular", tc.n, tc.d, tc.d)
		}
		if !g.IsSimple() {
			t.Errorf("(%d,%d): not simple", tc.n, tc.d)
		}
		if g.M() != tc.n*tc.d/2 {
			t.Errorf("(%d,%d): M=%d want %d", tc.n, tc.d, g.M(), tc.n*tc.d/2)
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Error("odd n*d should fail")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Error("d >= n should fail")
	}
	if _, err := RandomRegular(0, 2, r); err == nil {
		t.Error("n = 0 should fail")
	}
	g, err := RandomRegular(5, 0, r)
	if err != nil || g.M() != 0 {
		t.Error("d = 0 should yield empty graph")
	}
}

func TestRandomRegularDense(t *testing.T) {
	// Near-complete case exercises the exhaustive fallback heavily.
	r := rng.New(2)
	g, err := RandomRegular(8, 7, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(7) || !g.IsSimple() {
		t.Error("K8 case: wrong output")
	}
}

func TestRandomRegularProperty(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%40) + 4
		d := int(dRaw%5) + 2
		if d >= n {
			d = n - 1
		}
		if n*d%2 == 1 {
			n++
		}
		g, err := RandomRegular(n, d, rng.New(seed))
		if err != nil {
			return false
		}
		return g.IsRegular(d) && g.IsSimple()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomRegularConnectivity(t *testing.T) {
	// Random d-regular graphs with d >= 3 are connected w.h.p.; with 20
	// trials at n=100, a disconnection would indicate a generator bug.
	r := rng.New(3)
	for i := 0; i < 20; i++ {
		g, err := RandomRegular(100, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatalf("trial %d: 3-regular random graph on 100 vertices disconnected", i)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	g1, err1 := RandomRegular(30, 4, rng.New(77))
	g2, err2 := RandomRegular(30, 4, rng.New(77))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestRandomBipartiteBasic(t *testing.T) {
	r := rng.New(5)
	for _, tc := range []struct{ n1, d1, n2, d2 int }{
		{8, 2, 4, 4}, {16, 3, 12, 4}, {10, 5, 10, 5}, {6, 2, 3, 4}, {20, 4, 16, 5},
	} {
		b, err := RandomBipartite(tc.n1, tc.d1, tc.n2, tc.d2, r)
		if err != nil {
			t.Fatalf("RandomBipartite(%v): %v", tc, err)
		}
		if err := b.Validate(tc.d1, tc.d2); err != nil {
			t.Errorf("RandomBipartite(%v): %v", tc, err)
		}
	}
}

func TestRandomBipartiteErrors(t *testing.T) {
	r := rng.New(6)
	if _, err := RandomBipartite(4, 3, 5, 2, r); err == nil {
		t.Error("unbalanced point counts should fail")
	}
	if _, err := RandomBipartite(2, 6, 4, 3, r); err == nil {
		t.Error("d1 > n2 should fail")
	}
	b, err := RandomBipartite(3, 0, 2, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(0, 0); err != nil {
		t.Error(err)
	}
}

func TestRandomBipartiteComplete(t *testing.T) {
	// d1 == n2 forces the complete bipartite graph; exercises fallback.
	r := rng.New(7)
	b, err := RandomBipartite(4, 3, 3, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(3, 4); err != nil {
		t.Error(err)
	}
	for i, ns := range b.AdjA {
		if len(ns) != 3 {
			t.Errorf("A-vertex %d degree %d, want 3 (complete)", i, len(ns))
		}
	}
}

func TestRandomBipartiteProperty(t *testing.T) {
	f := func(seed uint64, aRaw, dRaw uint8) bool {
		n1 := int(aRaw%16) + 2
		d1 := int(dRaw%4) + 1
		if d1 > n1 {
			d1 = n1
		}
		// Pick n2, d2 with n1*d1 == n2*d2: use d2 = d1, n2 = n1.
		b, err := RandomBipartite(n1, d1, n1, d1, rng.New(seed))
		if err != nil {
			return false
		}
		return b.Validate(d1, d1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomBipartiteEdgeDistribution(t *testing.T) {
	// Every (A,B) pair should appear with roughly equal frequency across
	// many generations: d1/n2 per pair.
	const n1, d1, n2, d2, trials = 6, 2, 6, 2, 3000
	counts := make([][]int, n1)
	for i := range counts {
		counts[i] = make([]int, n2)
	}
	r := rng.New(8)
	for trial := 0; trial < trials; trial++ {
		b, err := RandomBipartite(n1, d1, n2, d2, r)
		if err != nil {
			t.Fatal(err)
		}
		for i, ns := range b.AdjA {
			for _, j := range ns {
				counts[i][j]++
			}
		}
	}
	want := float64(trials) * float64(d1) / float64(n2)
	for i := range counts {
		for j := range counts[i] {
			got := float64(counts[i][j])
			if got < want*0.8 || got > want*1.2 {
				t.Errorf("pair (%d,%d) appeared %v times, want ~%v", i, j, got, want)
			}
		}
	}
}

// Benchmarks over increasing sizes let the Theorem 9.1 complexity claim
// (near-linear expected time, O(NΔ ln Δ)) be eyeballed from -bench output.
func benchmarkRandomRegular(b *testing.B, n, d int) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RandomRegular(n, d, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomRegularN1000D8(b *testing.B)  { benchmarkRandomRegular(b, 1000, 8) }
func BenchmarkRandomRegularN4000D8(b *testing.B)  { benchmarkRandomRegular(b, 4000, 8) }
func BenchmarkRandomRegularN1000D32(b *testing.B) { benchmarkRandomRegular(b, 1000, 32) }

func BenchmarkRandomBipartite(b *testing.B) {
	r := rng.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RandomBipartite(648, 18, 648, 18, r); err != nil {
			b.Fatal(err)
		}
	}
}
