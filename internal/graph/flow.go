package graph

// EdgeConnectivity returns the maximum number of edge-disjoint paths between
// s and t (equivalently the s-t min cut in a unit-capacity network), computed
// with Dinic's algorithm. Each undirected edge becomes a pair of directed
// arcs with capacity 1 in each direction.
//
// Path diversity is the quantity §7 links to fault-tolerance ("it is the low
// path diversity of OFT which makes it very sensitive to faults"), so the
// resiliency analysis and tests use this to measure it directly.
func (g *Graph) EdgeConnectivity(s, t int) int {
	if s == t {
		return 0
	}
	d := newDinic(g)
	return d.maxFlow(int32(s), int32(t))
}

// dinic is a unit-capacity max-flow solver over a static copy of the graph.
type dinic struct {
	head  []int32 // first arc index per vertex
	next  []int32 // next arc in the list
	to    []int32 // arc target
	cap   []int8  // residual capacity (0 or 1, may reach 2 transiently)
	level []int32
	iter  []int32
}

func newDinic(g *Graph) *dinic {
	n := g.N()
	d := &dinic{
		head:  make([]int32, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
	for i := range d.head {
		d.head[i] = -1
	}
	for _, e := range g.Edges() {
		d.addArcPair(e.U, e.V)
	}
	return d
}

// addArcPair adds arcs u->v and v->u, each with capacity 1 and each serving
// as the other's residual arc (valid for undirected unit-capacity graphs).
func (d *dinic) addArcPair(u, v int32) {
	d.to = append(d.to, v)
	d.cap = append(d.cap, 1)
	d.next = append(d.next, d.head[u])
	d.head[u] = int32(len(d.to) - 1)

	d.to = append(d.to, u)
	d.cap = append(d.cap, 1)
	d.next = append(d.next, d.head[v])
	d.head[v] = int32(len(d.to) - 1)
}

func (d *dinic) bfs(s, t int32) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[s] = 0
	queue := []int32{s}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for a := d.head[u]; a != -1; a = d.next[a] {
			if d.cap[a] > 0 && d.level[d.to[a]] < 0 {
				d.level[d.to[a]] = d.level[u] + 1
				queue = append(queue, d.to[a])
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(u, t int32) bool {
	if u == t {
		return true
	}
	for ; d.iter[u] != -1; d.iter[u] = d.next[d.iter[u]] {
		a := d.iter[u]
		v := d.to[a]
		if d.cap[a] > 0 && d.level[v] == d.level[u]+1 && d.dfs(v, t) {
			d.cap[a]--
			d.cap[a^1]++
			return true
		}
	}
	return false
}

func (d *dinic) maxFlow(s, t int32) int {
	flow := 0
	for d.bfs(s, t) {
		copy(d.iter, d.head)
		for d.dfs(s, t) {
			flow++
		}
	}
	return flow
}

// MinDegree returns the smallest vertex degree, an upper bound on global
// edge connectivity.
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, ns := range g.adj[1:] {
		if len(ns) < min {
			min = len(ns)
		}
	}
	return min
}
