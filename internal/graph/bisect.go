package graph

import "rfclos/internal/rng"

// BisectionUpperBound estimates the bisection width (minimum number of edges
// crossing an equal split of the vertices) with a multi-start greedy
// Kernighan–Lin-style local search. The returned value is an upper bound on
// the true bisection width; for the small random networks in the tests it is
// typically tight enough to compare against the Bollobás lower bound used in
// §4.2 of the paper.
func (g *Graph) BisectionUpperBound(starts int, r *rng.Rand) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	best := g.M() + 1
	side := make([]bool, n) // true = side B
	for s := 0; s < starts; s++ {
		perm := r.Perm(n)
		for i, v := range perm {
			side[v] = i >= n/2
		}
		cut := g.cutSize(side)
		cut = g.refineBisection(side, cut, r)
		if cut < best {
			best = cut
		}
	}
	return best
}

func (g *Graph) cutSize(side []bool) int {
	cut := 0
	for u, ns := range g.adj {
		for _, v := range ns {
			if int32(u) < v && side[u] != side[v] {
				cut++
			}
		}
	}
	return cut
}

// gain returns the reduction in cut size achieved by moving v to the other
// side (positive = improvement).
func (g *Graph) gain(side []bool, v int) int {
	ext, in := 0, 0
	for _, w := range g.adj[v] {
		if side[w] != side[v] {
			ext++
		} else {
			in++
		}
	}
	return ext - in
}

// refineBisection performs first-improvement pair swaps until a local
// optimum, keeping the two sides balanced.
func (g *Graph) refineBisection(side []bool, cut int, r *rng.Rand) int {
	n := g.N()
	order := r.Perm(n)
	improved := true
	for improved {
		improved = false
		for _, a := range order {
			if side[a] {
				continue // consider only A-side anchors; pairs cover both
			}
			ga := g.gain(side, a)
			if ga <= 0 {
				continue
			}
			for _, b := range order {
				if !side[b] {
					continue
				}
				gb := g.gain(side, b)
				if gb <= 0 {
					continue
				}
				// Swapping a and b changes the cut by -(ga+gb) plus a
				// correction of +2 if {a,b} is itself an edge.
				delta := ga + gb
				if g.HasEdge(a, b) {
					delta -= 2
				}
				if delta > 0 {
					side[a], side[b] = true, false
					cut -= delta
					improved = true
					break
				}
			}
		}
	}
	return cut
}
