package graph

// UnionFind is a disjoint-set forest with union by rank and path halving.
// It is the workhorse of the offline "remove random links until the network
// disconnects" experiment (Table 3), which is solved by adding links back in
// reverse removal order.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	p := uf.parent
	for p[x] != int32(x) {
		p[x] = p[p[x]] // path halving
		x = int(p[x])
	}
	return x
}

// Union merges the sets of x and y, reporting whether a merge happened.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }
