package graph

import (
	"testing"

	"rfclos/internal/rng"
)

func TestEdgeConnectivitySimple(t *testing.T) {
	if got := pathGraph(4).EdgeConnectivity(0, 3); got != 1 {
		t.Errorf("path connectivity = %d, want 1", got)
	}
	if got := cycleGraph(6).EdgeConnectivity(0, 3); got != 2 {
		t.Errorf("cycle connectivity = %d, want 2", got)
	}
	if got := completeGraph(5).EdgeConnectivity(0, 4); got != 4 {
		t.Errorf("K5 connectivity = %d, want 4", got)
	}
	if got := completeGraph(3).EdgeConnectivity(1, 1); got != 0 {
		t.Errorf("self connectivity = %d, want 0", got)
	}
}

func TestEdgeConnectivityDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if got := g.EdgeConnectivity(0, 3); got != 0 {
		t.Errorf("disconnected connectivity = %d, want 0", got)
	}
}

func TestEdgeConnectivityBoundedByDegree(t *testing.T) {
	r := rng.New(31)
	g, err := RandomRegular(30, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		s, u := r.Intn(30), r.Intn(30)
		if s == u {
			continue
		}
		c := g.EdgeConnectivity(s, u)
		if c > 4 {
			t.Errorf("connectivity %d exceeds degree 4", c)
		}
		if c < 1 {
			t.Errorf("connected graph gave connectivity %d", c)
		}
	}
}

func TestMinDegree(t *testing.T) {
	if got := pathGraph(4).MinDegree(); got != 1 {
		t.Errorf("path min degree = %d, want 1", got)
	}
	if got := New(0).MinDegree(); got != 0 {
		t.Errorf("empty graph min degree = %d, want 0", got)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("initial count = %d", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Error("unions should succeed")
	}
	if uf.Union(0, 2) {
		t.Error("redundant union should report false")
	}
	if uf.Count() != 3 {
		t.Errorf("count = %d, want 3", uf.Count())
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Error("Same gave wrong answers")
	}
}

func TestBisectionCycle(t *testing.T) {
	// Even cycle: bisection width is exactly 2.
	r := rng.New(41)
	if got := cycleGraph(16).BisectionUpperBound(8, r); got != 2 {
		t.Errorf("C16 bisection = %d, want 2", got)
	}
}

func TestBisectionCompleteBipartiteLike(t *testing.T) {
	// Two K4 blobs joined by one edge: bisection width 1.
	g := New(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
			g.AddEdge(i+4, j+4)
		}
	}
	g.AddEdge(0, 4)
	r := rng.New(43)
	if got := g.BisectionUpperBound(8, r); got != 1 {
		t.Errorf("dumbbell bisection = %d, want 1", got)
	}
}

func TestBisectionRandomRegularAboveBollobas(t *testing.T) {
	// Bollobás: bisection >= N/2 (d/2 - sqrt(d ln 2)). The heuristic is an
	// upper bound, so it must sit above this for random regular graphs.
	r := rng.New(47)
	const n, d = 64, 6
	g, err := RandomRegular(n, d, r)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(g.BisectionUpperBound(6, r))
	lower := float64(n) / 2 * (float64(d)/2 - 2.04) // sqrt(6 ln 2) ≈ 2.039
	if got < lower {
		t.Errorf("heuristic bisection %v below Bollobás lower bound %v", got, lower)
	}
}
