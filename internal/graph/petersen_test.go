package graph

import (
	"testing"

	"rfclos/internal/rng"
)

// petersen builds the Petersen graph: outer 5-cycle 0-4, inner pentagram
// 5-9, spokes i—i+5. A classic stress case with known invariants.
func petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)       // outer cycle
		g.AddEdge(5+i, 5+((i+2)%5)) // inner pentagram
		g.AddEdge(i, i+5)           // spokes
	}
	return g
}

func TestPetersenInvariants(t *testing.T) {
	g := petersen()
	if !g.IsRegular(3) || !g.IsSimple() {
		t.Fatal("Petersen graph must be 3-regular simple")
	}
	if g.M() != 15 {
		t.Fatalf("M = %d, want 15", g.M())
	}
	if d := g.Diameter(); d != 2 {
		t.Errorf("diameter = %d, want 2", d)
	}
	// Edge connectivity equals degree (Petersen is 3-edge-connected).
	if c := g.EdgeConnectivity(0, 7); c != 3 {
		t.Errorf("edge connectivity = %d, want 3", c)
	}
	// Average distance: each vertex has 3 at distance 1 and 6 at distance
	// 2 → mean = (3 + 12) / 9 = 5/3.
	r := rng.New(1)
	if avg := g.AverageDistance(10, r); avg < 5.0/3-1e-9 || avg > 5.0/3+1e-9 {
		t.Errorf("average distance = %v, want 5/3", avg)
	}
	// Girth 5: no path of length 2 between adjacent vertices' other
	// neighbours... simpler: between any two adjacent vertices there is
	// exactly one shortest path (no 4-cycles). Check via k-shortest.
	paths := g.KShortestPaths(0, 1, 3)
	if len(paths[0]) != 2 {
		t.Errorf("adjacent vertices shortest path has %d hops", len(paths[0])-1)
	}
	if len(paths) > 1 && len(paths[1]) < 5 {
		t.Errorf("second path length %d implies a cycle shorter than 5", len(paths[1])-1+1)
	}
	// Bisection of Petersen is known to be 5? It is at least min degree
	// considerations; just assert the heuristic returns something sane.
	if b := g.BisectionUpperBound(12, r); b < 3 || b > 9 {
		t.Errorf("bisection heuristic = %d out of plausible range", b)
	}
}
