package graph

import "sort"

// ShortestPath returns one shortest path from s to t as a vertex sequence
// (inclusive of both endpoints), or nil when t is unreachable. Ties are
// broken deterministically by smallest parent id, so results are stable.
func (g *Graph) ShortestPath(s, t int) []int32 {
	return g.shortestPathAvoiding(s, t, nil, nil)
}

// shortestPathAvoiding is a BFS that ignores vertices in bannedV and edges in
// bannedE (canonical Edge keys). Either map may be nil.
func (g *Graph) shortestPathAvoiding(s, t int, bannedV map[int32]bool, bannedE map[Edge]bool) []int32 {
	if s == t {
		return []int32{int32(s)}
	}
	if bannedV[int32(s)] || bannedV[int32(t)] {
		return nil
	}
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[s] = -1
	queue := []int32{int32(s)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.adj[u] {
			if parent[v] != -2 || bannedV[v] {
				continue
			}
			if bannedE != nil && bannedE[canonEdge(u, v)] {
				continue
			}
			parent[v] = u
			if v == int32(t) {
				return buildPath(parent, t)
			}
			queue = append(queue, v)
		}
	}
	return nil
}

func canonEdge(u, v int32) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

func buildPath(parent []int32, t int) []int32 {
	var rev []int32
	for v := int32(t); v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// KShortestPaths returns up to k loopless shortest paths from s to t in
// non-decreasing length order, using Yen's algorithm over unweighted BFS.
// This is the routing substrate the Jellyfish paper prescribes for RRNs and
// is used in the RRN comparisons.
func (g *Graph) KShortestPaths(s, t, k int) [][]int32 {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPath(s, t)
	if first == nil {
		return nil
	}
	paths := [][]int32{first}
	var candidates [][]int32
	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Each prefix of the previous path is a spur root.
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]
			bannedE := make(map[Edge]bool)
			bannedV := make(map[int32]bool)
			// Ban edges used by already-accepted paths sharing this root.
			for _, p := range paths {
				if len(p) > i && pathPrefixEq(p, rootPath) {
					bannedE[canonEdge(p[i], p[i+1])] = true
				}
			}
			// Ban root-path vertices except the spur node itself.
			for _, v := range rootPath[:len(rootPath)-1] {
				bannedV[v] = true
			}
			spur := g.shortestPathAvoiding(int(spurNode), t, bannedV, bannedE)
			if spur == nil {
				continue
			}
			cand := append(append([]int32{}, rootPath[:len(rootPath)-1]...), spur...)
			if !containsPath(candidates, cand) && !containsPath(paths, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if len(candidates[a]) != len(candidates[b]) {
				return len(candidates[a]) < len(candidates[b])
			}
			return lessPath(candidates[a], candidates[b])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func pathPrefixEq(p, prefix []int32) bool {
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsPath(set [][]int32, p []int32) bool {
	for _, q := range set {
		if len(q) == len(p) && pathPrefixEq(q, p) {
			return true
		}
	}
	return false
}

func lessPath(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// IsPath reports whether the vertex sequence p is a walk in g with no
// repeated vertices.
func (g *Graph) IsPath(p []int32) bool {
	if len(p) == 0 {
		return false
	}
	seen := map[int32]bool{p[0]: true}
	for i := 1; i < len(p); i++ {
		if seen[p[i]] || !g.HasEdge(int(p[i-1]), int(p[i])) {
			return false
		}
		seen[p[i]] = true
	}
	return true
}
