package graph

import "rfclos/internal/rng"

// BFS computes hop distances from src. Unreachable vertices get -1.
// If dist is non-nil and has length g.N() it is reused, avoiding allocation
// in tight loops; otherwise a fresh slice is allocated.
func (g *Graph) BFS(src int, dist []int32) []int32 {
	if len(dist) != g.N() {
		dist = make([]int32, g.N())
	}
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, g.N())
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src, and whether
// every vertex was reachable.
func (g *Graph) Eccentricity(src int, scratch []int32) (ecc int, connected bool) {
	dist := g.BFS(src, scratch)
	connected = true
	for _, d := range dist {
		if d < 0 {
			connected = false
			continue
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, connected
}

// Diameter computes the exact diameter by running BFS from every vertex.
// It returns -1 when the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	scratch := make([]int32, g.N())
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc, ok := g.Eccentricity(v, scratch)
		if !ok {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DiameterSampled lower-bounds the diameter by running BFS from `samples`
// random sources (plus a double-sweep heuristic start). For random graphs of
// this paper's kind, the estimate is almost always exact. Returns -1 when a
// sampled source cannot reach some vertex.
func (g *Graph) DiameterSampled(samples int, r *rng.Rand) int {
	if g.N() == 0 {
		return -1
	}
	scratch := make([]int32, g.N())
	best := 0
	// Double sweep: BFS from a random vertex, then from the farthest vertex
	// found. This alone is usually tight on expanders.
	start := r.Intn(g.N())
	dist := g.BFS(start, scratch)
	far, farD := start, int32(0)
	for v, d := range dist {
		if d < 0 {
			return -1
		}
		if d > farD {
			far, farD = v, d
		}
	}
	ecc, ok := g.Eccentricity(far, scratch)
	if !ok {
		return -1
	}
	best = ecc
	for i := 0; i < samples; i++ {
		ecc, ok := g.Eccentricity(r.Intn(g.N()), scratch)
		if !ok {
			return -1
		}
		if ecc > best {
			best = ecc
		}
	}
	return best
}

// AverageDistance estimates the mean pairwise hop distance by sampling
// `samples` BFS sources (all sources when samples >= N). It returns -1 for
// disconnected graphs.
func (g *Graph) AverageDistance(samples int, r *rng.Rand) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	var sources []int
	if samples >= n {
		sources = make([]int, n)
		for i := range sources {
			sources[i] = i
		}
	} else {
		sources = r.Perm(n)[:samples]
	}
	scratch := make([]int32, n)
	total, count := 0.0, 0.0
	for _, s := range sources {
		dist := g.BFS(s, scratch)
		for v, d := range dist {
			if d < 0 {
				return -1
			}
			if v != s {
				total += float64(d)
				count++
			}
		}
	}
	return total / count
}

// IsConnected reports whether the graph is connected (single component).
// The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	dist := g.BFS(0, nil)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the vertex sets of the connected components.
func (g *Graph) Components() [][]int32 {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int32
	queue := make([]int32, 0, g.N())
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(out))
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, int32(s))
		members := []int32{int32(s)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
					members = append(members, v)
				}
			}
		}
		out = append(out, members)
	}
	return out
}
