package topology

import (
	"testing"
	"testing/quick"
)

func TestOFTFourLevels(t *testing.T) {
	// q = 2, l = 4: levels 2·343/2·343/2·343/343, T = 2·3·343 = 2058.
	c, err := NewOFT(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Terminals() != OFTTerminals(2, 4) || c.Terminals() != 2058 {
		t.Errorf("OFT(2,4) terminals = %d, want 2058", c.Terminals())
	}
	if err := c.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}
	if d := leafDiameter(c); d != 6 {
		t.Errorf("OFT(2,4) leaf diameter = %d, want 6", d)
	}
}

func TestXGFTProperty(t *testing.T) {
	// For any valid (m, w) with w[0] = 1, the XGFT is a well-formed Clos:
	// every mid switch has m_i down and w_{i+1} up links; leaf count and
	// terminal count follow the product formulas.
	f := func(m2Raw, w2Raw, m3Raw, w3Raw uint8) bool {
		m := []int{int(m2Raw%3) + 1, int(w2Raw%3) + 1, int(m3Raw%3) + 1}
		w := []int{1, int(w3Raw%3) + 1, int(m2Raw%2) + 1}
		c, err := NewXGFT(m, w, 64)
		if err != nil {
			return false
		}
		if err := c.Validate(); err != nil {
			return false
		}
		// Check per-level degrees.
		for lev := 1; lev <= 3; lev++ {
			for i := 0; i < c.LevelSize(lev); i++ {
				s := c.SwitchID(lev, i)
				if lev < 3 && len(c.Up(s)) != w[lev] {
					return false
				}
				if lev > 1 && len(c.Down(s)) != m[lev-1] {
					return false
				}
			}
		}
		// Terminal count = product of m.
		want := m[0] * m[1] * m[2]
		return c.Terminals() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestXGFTFatTreeRecursion(t *testing.T) {
	// Definition 3.2: removing the top level splits a fat-tree into k_l
	// disjoint subtrees. Verify on the radix-6 3-level CFT: removing the
	// roots must yield exactly k_3 = R = 6 components.
	c, err := NewCFT(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := c.SwitchGraph()
	// Delete all root switches' links.
	top := c.Levels()
	for i := 0; i < c.LevelSize(top); i++ {
		s := c.SwitchID(top, i)
		for _, d := range c.Down(s) {
			g.RemoveEdge(int(s), int(d))
		}
	}
	comps := g.Components()
	// Components: k_l subtrees plus the now-isolated root switches.
	nonTrivial := 0
	for _, comp := range comps {
		if len(comp) > 1 {
			nonTrivial++
		}
	}
	if nonTrivial != 6 {
		t.Errorf("CFT(6,3) splits into %d subtrees without its roots, want k_l = 6", nonTrivial)
	}
}

func TestOFTFatTreeRecursion(t *testing.T) {
	// Same recursion check for the OFT: k_l = 2(q²+q+1) disjoint subtrees.
	q := 3
	c, err := NewOFT(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := c.SwitchGraph()
	top := c.Levels()
	for i := 0; i < c.LevelSize(top); i++ {
		s := c.SwitchID(top, i)
		for _, d := range c.Down(s) {
			g.RemoveEdge(int(s), int(d))
		}
	}
	nonTrivial := 0
	for _, comp := range g.Components() {
		if len(comp) > 1 {
			nonTrivial++
		}
	}
	want := 2 * (q*q + q + 1)
	if nonTrivial != want {
		t.Errorf("OFT(%d,3) splits into %d subtrees, want k_l = %d", q, nonTrivial, want)
	}
}
