package topology

import (
	"testing"
)

// TestEdgeSeqMatchesLinks pins the iterator contract: EdgeSeq yields exactly
// Links() in order, and the per-level LinkSeq runs concatenate to EdgeSeq.
func TestEdgeSeqMatchesLinks(t *testing.T) {
	c, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Links()
	var got []Link
	for l := range c.EdgeSeq() {
		got = append(got, l)
	}
	if len(got) != len(want) {
		t.Fatalf("EdgeSeq yielded %d links, Links has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EdgeSeq[%d] = %v, Links[%d] = %v", i, got[i], i, want[i])
		}
	}

	got = got[:0]
	for lev := 1; lev < c.Levels(); lev++ {
		for l := range c.LinkSeq(lev) {
			if c.LevelOf(l.A) != lev {
				t.Fatalf("LinkSeq(%d) yielded link from level %d", lev, c.LevelOf(l.A))
			}
			got = append(got, l)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("concatenated LinkSeq yielded %d links, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinkSeq concat[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Early break must stop the sequence cleanly.
	n := 0
	for range c.EdgeSeq() {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early break consumed %d links, want 3", n)
	}
}

// TestCloneArenaIndependence checks Clone isolates mutation even though the
// sealed CSR base is shared: removing and re-adding links on the clone (the
// overlay path) leaves the original untouched.
func TestCloneArenaIndependence(t *testing.T) {
	c, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	wires := c.Wires()
	cp := c.Clone()
	links := cp.Links()
	for _, l := range links[:len(links)/2] {
		cp.RemoveLink(l.A, l.B)
	}
	cp.AddLink(links[0].A, links[0].B)
	cp.AddLink(links[0].A, links[0].B) // past pinned capacity on purpose
	if c.Wires() != wires {
		t.Fatalf("original wires changed: %d -> %d", wires, c.Wires())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
	orig := c.Links()
	if len(orig) != wires {
		t.Fatalf("original Links() length changed: %d, want %d", len(orig), wires)
	}
}

// TestAddLinkOverSealedLevels checks AddLink layers correctly over a store
// whose levels were sealed by an emitter: overlay lists extend the CSR rows
// without corrupting neighbouring switches.
func TestAddLinkOverSealedLevels(t *testing.T) {
	c, err := NewEmpty([]int{2, 2}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := c.WireLevel(1, 2)
	e.Link(c.SwitchID(1, 0), c.SwitchID(2, 0))
	e.Link(c.SwitchID(1, 1), c.SwitchID(2, 1))
	e.Seal()
	c.AddLink(c.SwitchID(1, 0), c.SwitchID(2, 1))
	if got := c.Up(c.SwitchID(1, 0)); len(got) != 2 || got[0] != c.SwitchID(2, 0) || got[1] != c.SwitchID(2, 1) {
		t.Fatalf("switch 0 up-links = %v, want sealed link then added link", got)
	}
	if got := c.Up(c.SwitchID(1, 1)); len(got) != 1 || got[0] != c.SwitchID(2, 1) {
		t.Fatalf("switch 1 up-links corrupted: %v", got)
	}
	if got := c.Down(c.SwitchID(2, 1)); len(got) != 2 || got[0] != c.SwitchID(1, 1) || got[1] != c.SwitchID(1, 0) {
		t.Fatalf("upper switch 1 down-links = %v, want sealed then added", got)
	}
	if c.Wires() != 3 {
		t.Fatalf("Wires() = %d, want 3", c.Wires())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEmitterOrderMatchesAddLink pins the stable-grouping contract: links
// emitted in an arbitrary interleaved order produce exactly the per-switch
// adjacency order a sequence of AddLink calls in the same order would.
func TestEmitterOrderMatchesAddLink(t *testing.T) {
	order := [][2]int{{1, 0}, {0, 1}, {1, 1}, {0, 0}, {2, 1}, {2, 0}}
	build := func(emit bool) *Clos {
		c, err := NewEmpty([]int{3, 2}, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if emit {
			e := c.WireLevel(1, len(order))
			for _, p := range order {
				e.Link(c.SwitchID(1, p[0]), c.SwitchID(2, p[1]))
			}
			e.Seal()
		} else {
			for _, p := range order {
				c.AddLink(c.SwitchID(1, p[0]), c.SwitchID(2, p[1]))
			}
		}
		return c
	}
	sealed, appended := build(true), build(false)
	for s := int32(0); s < int32(sealed.NumSwitches()); s++ {
		if got, want := sealed.Up(s), appended.Up(s); !equalInt32(got, want) {
			t.Fatalf("switch %d up: emitter %v, AddLink %v", s, got, want)
		}
		if got, want := sealed.Down(s), appended.Down(s); !equalInt32(got, want) {
			t.Fatalf("switch %d down: emitter %v, AddLink %v", s, got, want)
		}
	}
	if sealed.Wires() != appended.Wires() {
		t.Fatalf("wires: emitter %d, AddLink %d", sealed.Wires(), appended.Wires())
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// referenceEdges is the pre-fast-path export order: the per-switch upAt walk
// over every level. The CSR-direct path in yieldLevel must match it link for
// link.
func referenceEdges(c *Clos) []Link {
	var out []Link
	for level := 1; level < c.Levels(); level++ {
		lo := c.offset[level-1]
		for i := 0; i < c.levelSize[level-1]; i++ {
			s := lo + int32(i)
			for _, b := range c.upAt(level, i) {
				out = append(out, Link{s, b})
			}
		}
	}
	return out
}

// TestEdgeSeqFastPathMatchesReference pins the CSR-direct export path (no
// overlay) and the overlay fallback against the per-switch reference walk.
func TestEdgeSeqFastPathMatchesReference(t *testing.T) {
	c, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		want := referenceEdges(c)
		var got []Link
		for l := range c.EdgeSeq() {
			got = append(got, l)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: EdgeSeq yielded %d links, reference %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: EdgeSeq[%d] = %v, reference %v", label, i, got[i], want[i])
			}
		}
	}
	if c.ovl != nil {
		t.Fatal("freshly built CFT should have no overlay")
	}
	check("sealed fast path")

	// Force the overlay while keeping the adjacency logically identical:
	// append a duplicate link, then remove one copy (swap-remove keeps a
	// same-valued entry in the slot). The fallback path must now run and
	// still agree with the reference walk.
	l := c.Links()[0]
	c.AddLink(l.A, l.B)
	c.RemoveLink(l.A, l.B)
	if c.ovl == nil {
		t.Fatal("mutation did not materialise the overlay")
	}
	check("overlay fallback")
}
