package topology

import (
	"testing"
)

// TestEdgeSeqMatchesLinks pins the iterator contract: EdgeSeq yields exactly
// Links() in order, and the per-level LinkSeq runs concatenate to EdgeSeq.
func TestEdgeSeqMatchesLinks(t *testing.T) {
	c, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Links()
	var got []Link
	for l := range c.EdgeSeq() {
		got = append(got, l)
	}
	if len(got) != len(want) {
		t.Fatalf("EdgeSeq yielded %d links, Links has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EdgeSeq[%d] = %v, Links[%d] = %v", i, got[i], i, want[i])
		}
	}

	got = got[:0]
	for lev := 1; lev < c.Levels(); lev++ {
		for l := range c.LinkSeq(lev) {
			if c.LevelOf(l.A) != lev {
				t.Fatalf("LinkSeq(%d) yielded link from level %d", lev, c.LevelOf(l.A))
			}
			got = append(got, l)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("concatenated LinkSeq yielded %d links, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinkSeq concat[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Early break must stop the sequence cleanly.
	n := 0
	for range c.EdgeSeq() {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early break consumed %d links, want 3", n)
	}
}

// TestCloneArenaIndependence checks the arena-backed Clone is a true deep
// copy: mutating the clone (removing and re-adding links, including appends
// past the pinned capacity) leaves the original untouched.
func TestCloneArenaIndependence(t *testing.T) {
	c, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	wires := c.Wires()
	cp := c.Clone()
	links := cp.Links()
	for _, l := range links[:len(links)/2] {
		cp.RemoveLink(l.A, l.B)
	}
	cp.AddLink(links[0].A, links[0].B)
	cp.AddLink(links[0].A, links[0].B) // past pinned capacity on purpose
	if c.Wires() != wires {
		t.Fatalf("original wires changed: %d -> %d", wires, c.Wires())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
	orig := c.Links()
	if len(orig) != wires {
		t.Fatalf("original Links() length changed: %d, want %d", len(orig), wires)
	}
}

// TestReserveDegreesOverflow checks wiring past a reserved degree falls back
// to per-switch allocation without corrupting a neighbour's arena region.
func TestReserveDegreesOverflow(t *testing.T) {
	c, err := NewEmpty([]int{2, 2}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.ReserveDegrees([]int{1, 0}, []int{0, 1})
	// Switch 0 gets two up-links despite a reserved degree of one.
	c.AddLink(c.SwitchID(1, 0), c.SwitchID(2, 0))
	c.AddLink(c.SwitchID(1, 0), c.SwitchID(2, 1))
	c.AddLink(c.SwitchID(1, 1), c.SwitchID(2, 1))
	if got := len(c.Up(c.SwitchID(1, 0))); got != 2 {
		t.Fatalf("switch 0 has %d up-links, want 2", got)
	}
	if got := c.Up(c.SwitchID(1, 1)); len(got) != 1 || got[0] != c.SwitchID(2, 1) {
		t.Fatalf("switch 1 up-links corrupted: %v", got)
	}
	if c.Wires() != 3 {
		t.Fatalf("Wires() = %d, want 3", c.Wires())
	}
}
