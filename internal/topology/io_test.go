package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Radix != orig.Radix || loaded.TermsPerLeaf != orig.TermsPerLeaf ||
		loaded.Levels() != orig.Levels() || loaded.Terminals() != orig.Terminals() {
		t.Errorf("metadata mismatch: %v vs %v", loaded, orig)
	}
	a, b := orig.Links(), loaded.Links()
	if len(a) != len(b) {
		t.Fatalf("link counts differ: %d vs %d", len(a), len(b))
	}
	seen := map[Link]bool{}
	for _, l := range a {
		seen[l] = true
	}
	for _, l := range b {
		if !seen[l] {
			t.Fatalf("link %v not in original", l)
		}
	}
	if err := loaded.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`not json`,
		`{"radix":4,"terms_per_leaf":2,"level_sizes":[2,2],"links":[[0,99]]}`, // out of range
		`{"radix":4,"terms_per_leaf":2,"level_sizes":[2,2],"links":[[0,1]]}`,  // same level link
		`{"radix":4,"terms_per_leaf":2,"level_sizes":[2,2],"links":[]}`,       // unwired (invalid Clos)
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestWriteEdgeList(t *testing.T) {
	c, err := NewCFT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != c.Wires() {
		t.Errorf("edge list has %d lines, want %d", len(lines), c.Wires())
	}
	if !strings.Contains(lines[0], " ") {
		t.Errorf("malformed line %q", lines[0])
	}
}

func TestWriteDOT(t *testing.T) {
	c, err := NewOFT(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph clos {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("malformed DOT output:\n%s", out)
	}
	if got := strings.Count(out, " -- "); got != c.Wires() {
		t.Errorf("DOT has %d edges, want %d", got, c.Wires())
	}
	if got := strings.Count(out, "rank=same"); got != c.Levels() {
		t.Errorf("DOT has %d ranks, want %d", got, c.Levels())
	}
}
