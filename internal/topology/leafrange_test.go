// Regression tests for LeafRange invalidation through the mutation
// overlay. The declared leaf intervals are only valid for the pristine
// build: any real AddLink/RemoveLink changes descendant sets, so the first
// overlay materialisation must drop them (routing then falls back to
// per-switch union instead of serving stale intervals). A RemoveLink of an
// absent link must NOT drop them — it touches nothing.
package topology_test

import (
	"testing"

	"rfclos/internal/topology"
)

func mustLeafRange(t *testing.T, c *topology.Clos, s int32) (int, int) {
	t.Helper()
	lo, hi, ok := c.LeafRange(s)
	if !ok {
		t.Fatalf("LeafRange(%d): intervals unexpectedly dropped", s)
	}
	return lo, hi
}

func TestLeafRangeDroppedByOverlay(t *testing.T) {
	build := func(t *testing.T) *topology.Clos {
		t.Helper()
		c, err := topology.NewXGFT([]int{3, 4, 5}, []int{1, 2, 2}, 16)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	t.Run("pristine build declares intervals", func(t *testing.T) {
		c := build(t)
		top := c.SwitchID(c.Levels(), 0)
		if lo, hi := mustLeafRange(t, c, top); lo != 0 || hi != c.LevelSize(1) {
			t.Fatalf("top switch interval = [%d,%d), want [0,%d)", lo, hi, c.LevelSize(1))
		}
	})

	t.Run("RemoveLink drops intervals", func(t *testing.T) {
		c := build(t)
		var link topology.Link
		for l := range c.EdgeSeq() {
			link = l
			break
		}
		if !c.RemoveLink(link.A, link.B) {
			t.Fatalf("RemoveLink(%v) = false for an existing link", link)
		}
		if _, _, ok := c.LeafRange(0); ok {
			t.Fatal("LeafRange still set after RemoveLink of an existing link")
		}
	})

	t.Run("AddLink drops intervals", func(t *testing.T) {
		c := build(t)
		var link topology.Link
		for l := range c.EdgeSeq() {
			link = l
			break
		}
		c.RemoveLink(link.A, link.B)
		c2 := build(t)
		c2.AddLink(link.A, link.B) // parallel wire, still adjacent levels
		if _, _, ok := c2.LeafRange(0); ok {
			t.Fatal("LeafRange still set after AddLink")
		}
	})

	t.Run("absent-link RemoveLink preserves intervals", func(t *testing.T) {
		c := build(t)
		// Find any adjacent-level (leaf, parent) pair that is NOT wired.
		var leaf, absent int32 = -1, -1
	search:
		for i := 0; i < c.LevelSize(1); i++ {
			s := c.SwitchID(1, i)
			up := c.Up(s)
			for p := 0; p < c.LevelSize(2); p++ {
				id := c.SwitchID(2, p)
				linked := false
				for _, u := range up {
					if u == id {
						linked = true
						break
					}
				}
				if !linked {
					leaf, absent = s, id
					break search
				}
			}
		}
		if absent < 0 {
			t.Fatal("no unlinked adjacent pair in fixture")
		}
		if c.RemoveLink(leaf, absent) {
			t.Fatalf("RemoveLink(%d,%d) = true for an absent link", leaf, absent)
		}
		mustLeafRange(t, c, leaf)
	})

	t.Run("clone keeps its own intervals", func(t *testing.T) {
		c := build(t)
		cp := c.Clone()
		var link topology.Link
		for l := range cp.EdgeSeq() {
			link = l
			break
		}
		cp.RemoveLink(link.A, link.B)
		if _, _, ok := cp.LeafRange(0); ok {
			t.Fatal("clone kept LeafRange after its own RemoveLink")
		}
		// The original's intervals must survive the clone's churn.
		mustLeafRange(t, c, c.SwitchID(c.Levels(), 0))
	})
}
