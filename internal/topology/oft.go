package topology

import (
	"fmt"

	"rfclos/internal/gf"
)

// NewOFT builds the l-level orthogonal fat-tree of order q (q a prime
// power), the cost-optimal highly scalable fat-tree of Valerio et al. used
// as a baseline in §3–§7. It is a radix-regular fat-tree with radix
// R = 2(q+1), arities k_1 = ... = k_{l-1} = q²+q+1 and k_l = 2(q²+q+1),
// connecting T = 2(q+1)(q²+q+1)^{l-1} terminals.
//
// Construction. Let n = q²+q+1 and let PG(2,q) be the projective plane with
// point set and line set of size n. Switches are labelled:
//
//	level i <= l-1:  (s, x_1..x_{i-1}, p_i..p_{l-1})   s ∈ {0,1}, x_j lines, p_j points
//	level l:         (x_1..x_{l-1})
//
// A level-i switch links to the level-(i+1) switch agreeing on every other
// digit iff point p_i lies on line x_i (for i = l-1 the parent has no side
// digit, so both sides connect). Every switch below the top then has q+1
// up-links and q+1 down-links; roots have 2(q+1) down-links. Fixing the pair
// (s, p_{l-1}) isolates the k_l = 2n disjoint (l-1)-level subtrees required
// by Definition 3.2, and for l = 2 the construction is exactly Figure 2 of
// the paper. Minimal up/down routes between leaves whose point digits all
// differ are unique, reproducing the low path diversity the paper discusses.
func NewOFT(q, levels int) (*Clos, error) {
	return NewOFTStream(q, levels, nil)
}

// NewOFTStream is NewOFT with a level sink: level pairs are sealed
// bottom-up, each handed to sink before the next is wired (see
// NewXGFTStream).
func NewOFTStream(q, levels int, sink LevelSink) (*Clos, error) {
	if levels < 2 {
		return nil, fmt.Errorf("topology: OFT needs >= 2 levels, got %d", levels)
	}
	plane, err := gf.NewPlane(q)
	if err != nil {
		return nil, fmt.Errorf("topology: OFT order %d: %w", q, err)
	}
	n := plane.N
	// Level sizes: 2n^{l-1} for levels 1..l-1, n^{l-1} for the top.
	nPow := 1
	for i := 0; i < levels-1; i++ {
		nPow *= n
		if nPow > 64<<20 {
			return nil, fmt.Errorf("topology: OFT(q=%d, l=%d) too large", q, levels)
		}
	}
	sizes := make([]int, levels)
	for i := 0; i < levels-1; i++ {
		sizes[i] = 2 * nPow
	}
	sizes[levels-1] = nPow
	c, err := NewEmpty(sizes, q+1, 2*(q+1))
	if err != nil {
		return nil, err
	}
	c.SetLevelSink(sink)

	// Label encoding for levels 1..l-1: index = s + 2*mixed(d_1..d_{l-1})
	// where d_j is x_j for j < i and p_j for j >= i, every digit radix n.
	// Top level: index = mixed(x_1..x_{l-1}).
	digits := make([]int, levels-1)
	childDigits := make([]int, levels-1)

	// Levels i -> i+1 for i+1 <= l-1. Parent digit i (1-based label slot i,
	// 0-based slot i-1) is the line x_i; the child replaces it with a point
	// p_i on that line.
	for i := 1; i+1 <= levels-1; i++ {
		e := c.WireLevel(i, sizes[i]*(q+1))
		for pIdx := 0; pIdx < sizes[i]; pIdx++ {
			s := pIdx & 1
			decodeUniform(pIdx>>1, n, digits)
			line := digits[i-1]
			copy(childDigits, digits)
			for _, pt := range plane.LinePoints[line] {
				childDigits[i-1] = int(pt)
				child := s + 2*encodeUniform(childDigits, n)
				e.Link(c.SwitchID(i, child), c.SwitchID(i+1, pIdx))
			}
		}
		e.Seal()
	}
	// Level l-1 -> l: parent (x_1..x_{l-1}); children on both sides s with
	// p_{l-1} on x_{l-1}.
	topDigits := make([]int, levels-1)
	e := c.WireLevel(levels-1, sizes[levels-1]*2*(q+1))
	for pIdx := 0; pIdx < sizes[levels-1]; pIdx++ {
		decodeUniform(pIdx, n, topDigits)
		line := topDigits[levels-2]
		copy(childDigits, topDigits)
		for _, pt := range plane.LinePoints[line] {
			childDigits[levels-2] = int(pt)
			base := encodeUniform(childDigits, n)
			for s := 0; s < 2; s++ {
				e.Link(c.SwitchID(levels-1, s+2*base), c.SwitchID(levels, pIdx))
			}
		}
	}
	e.Seal()
	return c, nil
}

// decodeUniform writes the base-n digits of v (least significant first).
func decodeUniform(v, n int, out []int) {
	for i := range out {
		out[i] = v % n
		v /= n
	}
}

func encodeUniform(digits []int, n int) int {
	v := 0
	for i := len(digits) - 1; i >= 0; i-- {
		v = v*n + digits[i]
	}
	return v
}

// OFTTerminals returns T for an l-level OFT of order q without building it.
func OFTTerminals(q, levels int) int {
	n := q*q + q + 1
	t := 2 * (q + 1)
	for i := 0; i < levels-1; i++ {
		t *= n
	}
	return t
}
