package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rfclos/internal/rng"
)

// TestExportFormatsDispatch checks Export produces the same bytes as the
// per-format writers (the property rfcgen and the service rely on), and
// rejects unknown formats.
func TestExportFormatsDispatch(t *testing.T) {
	c, err := NewCFT(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	writers := map[string]func(*Clos, *bytes.Buffer) error{
		"json":  func(c *Clos, b *bytes.Buffer) error { return c.WriteJSON(b) },
		"dot":   func(c *Clos, b *bytes.Buffer) error { return c.WriteDOT(b) },
		"edges": func(c *Clos, b *bytes.Buffer) error { return c.WriteEdgeList(b) },
	}
	for _, format := range ExportFormats() {
		var direct, viaExport bytes.Buffer
		if err := writers[format](c, &direct); err != nil {
			t.Fatal(err)
		}
		if err := Export(c, format, &viaExport); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Bytes(), viaExport.Bytes()) {
			t.Errorf("Export(%q) differs from the direct writer", format)
		}
		if direct.Len() == 0 {
			t.Errorf("format %q produced no output", format)
		}
	}
	if err := Export(c, "yaml", &bytes.Buffer{}); err == nil {
		t.Error("Export accepted an unknown format")
	}
}

// TestExportJSONRoundTrip checks the JSON export round-trips through
// ReadJSON to an identical network.
func TestExportJSONRoundTrip(t *testing.T) {
	c, err := NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(c, "json", &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := c.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON export did not round-trip")
	}
}

// TestExportRRN checks the RRN export formats: the JSON schema carries the
// parameters and every edge, DOT and edge list carry one line per edge.
func TestExportRRN(t *testing.T) {
	rrn, err := NewRRN(16, 4, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportRRN(rrn, "json", &buf); err != nil {
		t.Fatal(err)
	}
	var decoded rrnJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.N != 16 || decoded.Degree != 4 || decoded.TermsPerSwitch != 2 {
		t.Errorf("JSON parameters = %+v", decoded)
	}
	if len(decoded.Edges) != rrn.Wires() {
		t.Errorf("JSON has %d edges, want %d", len(decoded.Edges), rrn.Wires())
	}

	buf.Reset()
	if err := ExportRRN(rrn, "dot", &buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), " -- "); n != rrn.Wires() {
		t.Errorf("DOT has %d edges, want %d", n, rrn.Wires())
	}

	buf.Reset()
	if err := ExportRRN(rrn, "edges", &buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != rrn.Wires() {
		t.Errorf("edge list has %d lines, want %d", n, rrn.Wires())
	}
	if err := ExportRRN(rrn, "yaml", &bytes.Buffer{}); err == nil {
		t.Error("ExportRRN accepted an unknown format")
	}
}
