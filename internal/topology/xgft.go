package topology

import "fmt"

// NewXGFT builds an extended generalized fat-tree XGFT(h; m; w): h switch
// levels above the terminals, where each level-i switch has m[i-1]
// down-links (terminals at level 1) and each level-i switch (i < h) has w[i]
// up-links. w[0] must be 1 (each terminal attaches to exactly one leaf).
//
// Level-i switches are labelled (a_1..a_i, c_{i+1}..c_h) with a_j < w[j-1]
// and c_j < m[j-1]; a level-i switch and a level-(i+1) switch are linked iff
// their labels agree everywhere except position i+1, where the child's
// c_{i+1} and the parent's a_{i+1} are free. Consecutive label groups
// therefore form complete bipartite K(m_{i+1}, w_{i+1}) blocks, which yields
// a fat-tree in the sense of Definition 3.2 with arities k_i = m[i-1].
func NewXGFT(m, w []int, radix int) (*Clos, error) {
	return NewXGFTStream(m, w, radix, nil)
}

// NewXGFTStream is NewXGFT with a level sink: each level pair is sealed —
// and handed to sink — before the next one is wired, so a streaming
// consumer (routing cover construction) runs concurrently with wiring and
// construction scratch never exceeds one level pair.
func NewXGFTStream(m, w []int, radix int, sink LevelSink) (*Clos, error) {
	h := len(m)
	if h < 2 || len(w) != h {
		return nil, fmt.Errorf("topology: XGFT needs len(m) == len(w) >= 2, got %d and %d", len(m), len(w))
	}
	if w[0] != 1 {
		return nil, fmt.Errorf("topology: XGFT requires w[0] == 1, got %d", w[0])
	}
	for i := 0; i < h; i++ {
		if m[i] <= 0 || w[i] <= 0 {
			return nil, fmt.Errorf("topology: XGFT parameters must be positive (m[%d]=%d, w[%d]=%d)", i, m[i], i, w[i])
		}
	}
	// Level sizes N_i = prod_{j<=i} w_j * prod_{j>i} m_j.
	sizes := make([]int, h)
	const maxSwitches = 64 << 20
	total := 0
	for i := 1; i <= h; i++ {
		n := 1
		for j := 1; j <= i; j++ {
			n *= w[j-1]
		}
		for j := i + 1; j <= h; j++ {
			n *= m[j-1]
		}
		sizes[i-1] = n
		total += n
		if total > maxSwitches {
			return nil, fmt.Errorf("topology: XGFT too large (> %d switches)", maxSwitches)
		}
	}
	c, err := NewEmpty(sizes, m[0], radix)
	if err != nil {
		return nil, err
	}
	// Descendant leaf intervals are label-derived, not wiring-derived, so
	// they can be declared before any link exists — a level sink observing
	// sealed levels mid-build already sees them (routing's streamed cover
	// construction takes the interval fast path this way).
	declareXGFTLeafRanges(c, m, w, sizes)
	c.SetLevelSink(sink)
	wireXGFT(c, m, w, sizes)
	return c, nil
}

// wireXGFT emits the complete-bipartite block links of the XGFT label
// scheme, one sealed level pair at a time.
func wireXGFT(c *Clos, m, w, sizes []int) {
	h := len(m)
	// Wire levels i -> i+1 for i = 1..h-1.
	for i := 1; i < h; i++ {
		// Parent label radices: a_1..a_{i+1}, c_{i+2}..c_h.
		ry := labelRadices(m, w, i+1)
		// Child label radices: a_1..a_i, c_{i+1}..c_h.
		rx := labelRadices(m, w, i)
		dy := make([]int, h)
		dx := make([]int, h)
		e := c.WireLevel(i, sizes[i]*m[i])
		for p := 0; p < sizes[i]; p++ {
			decodeMixed(p, ry, dy)
			copy(dx, dy)
			for cc := 0; cc < m[i]; cc++ {
				dx[i] = cc // position i (0-based) holds the free digit
				child := encodeMixed(dx, rx)
				e.Link(c.SwitchID(i, child), c.SwitchID(i+1, p))
			}
		}
		e.Seal()
	}
}

// declareXGFTLeafRanges computes, for every switch, the contiguous
// descendant leaf interval its label implies and installs it on the Clos
// (LeafRange). In the label scheme a level-i switch shares its c_{i+1}..c_h
// digits with exactly the leaves below it while positions 1..i-1 range
// freely, and those free positions are the least-significant leaf-index
// digits — so the descendants are the interval [base, base+blk) where blk =
// ∏ m[1..i-1] and base weighs the shared digits. Routing uses the declared
// intervals to build descendant sets as single runs; the hybrid-vs-bitset
// equivalence property tests in internal/routing pin that the declared
// ranges match the wired graph.
func declareXGFTLeafRanges(c *Clos, m, w, sizes []int) {
	h := len(m)
	lr := make([]int32, 2*c.NumSwitches())
	// wl[j] = ∏ m[1..j-1]: the leaf-index weight of label position j, and
	// the descendant block size of a level-j switch.
	wl := make([]int, h+1)
	wl[1] = 1
	for j := 2; j <= h; j++ {
		wl[j] = wl[j-1] * m[j-1]
	}
	dy := make([]int, h)
	for i := 1; i <= h; i++ {
		ry := labelRadices(m, w, i)
		for p := 0; p < sizes[i-1]; p++ {
			decodeMixed(p, ry, dy)
			base := 0
			for j := i; j < h; j++ {
				base += dy[j] * wl[j]
			}
			s := c.SwitchID(i, p)
			lr[2*s] = int32(base)
			lr[2*s+1] = int32(base + wl[i])
		}
	}
	c.setLeafRanges(lr)
}

// labelRadices returns the digit radices of a level-i switch label:
// positions 0..i-1 hold a_1..a_i (radices w), positions i..h-1 hold
// c_{i+1}..c_h (radices m).
func labelRadices(m, w []int, i int) []int {
	h := len(m)
	r := make([]int, h)
	for j := 0; j < i; j++ {
		r[j] = w[j]
	}
	for j := i; j < h; j++ {
		r[j] = m[j]
	}
	return r
}

// decodeMixed writes the least-significant-first mixed-radix digits of v
// into out.
func decodeMixed(v int, radices, out []int) {
	for i, r := range radices {
		out[i] = v % r
		v /= r
	}
}

// encodeMixed is the inverse of decodeMixed.
func encodeMixed(digits, radices []int) int {
	v := 0
	for i := len(radices) - 1; i >= 0; i-- {
		v = v*radices[i] + digits[i]
	}
	return v
}

// NewCFT builds the R-commodity fat-tree (R-port l-tree): the radix-regular
// fat-tree with arities k_1 = ... = k_{l-1} = R/2 and k_l = R. It connects
// T = 2(R/2)^l terminals (§3).
func NewCFT(radix, levels int) (*Clos, error) {
	return NewCFTStream(radix, levels, nil)
}

// NewCFTStream is NewCFT with a level sink (see NewXGFTStream).
func NewCFTStream(radix, levels int, sink LevelSink) (*Clos, error) {
	if radix < 2 || radix%2 != 0 {
		return nil, fmt.Errorf("topology: CFT radix must be even and >= 2, got %d", radix)
	}
	if levels < 2 {
		return nil, fmt.Errorf("topology: CFT needs >= 2 levels, got %d", levels)
	}
	half := radix / 2
	m := make([]int, levels)
	w := make([]int, levels)
	for i := range m {
		m[i] = half
		w[i] = half
	}
	m[levels-1] = radix
	w[0] = 1
	return NewXGFTStream(m, w, radix, sink)
}

// NewCFTWithTerminals builds the R-commodity fat-tree wiring but attaches
// only termsPerLeaf <= R/2 compute nodes per leaf switch. The paper's §5/§6
// intermediate scenario uses exactly this: a 4-level CFT "with free ports
// for future expansion" serving fewer terminals than its capacity.
func NewCFTWithTerminals(radix, levels, termsPerLeaf int) (*Clos, error) {
	if radix < 2 || radix%2 != 0 {
		return nil, fmt.Errorf("topology: CFT radix must be even and >= 2, got %d", radix)
	}
	if levels < 2 {
		return nil, fmt.Errorf("topology: CFT needs >= 2 levels, got %d", levels)
	}
	half := radix / 2
	if termsPerLeaf < 1 || termsPerLeaf > half {
		return nil, fmt.Errorf("topology: terminals per leaf %d out of [1, R/2=%d]", termsPerLeaf, half)
	}
	m := make([]int, levels)
	w := make([]int, levels)
	for i := range m {
		m[i] = half
		w[i] = half
	}
	m[0] = termsPerLeaf
	m[levels-1] = radix
	w[0] = 1
	return NewXGFT(m, w, radix)
}

// NewKaryTree builds the k-ary l-tree of Petrini and Vanneschi: l levels of
// k^{l-1} switches, k terminals per leaf, T = k^l terminals. Its switches
// have radix 2k.
func NewKaryTree(k, levels int) (*Clos, error) {
	return NewKaryTreeStream(k, levels, nil)
}

// NewKaryTreeStream is NewKaryTree with a level sink (see NewXGFTStream).
func NewKaryTreeStream(k, levels int, sink LevelSink) (*Clos, error) {
	if k < 1 {
		return nil, fmt.Errorf("topology: k-ary tree needs k >= 1, got %d", k)
	}
	if levels < 2 {
		return nil, fmt.Errorf("topology: k-ary tree needs >= 2 levels, got %d", levels)
	}
	m := make([]int, levels)
	w := make([]int, levels)
	for i := range m {
		m[i] = k
		w[i] = k
	}
	w[0] = 1
	return NewXGFTStream(m, w, 2*k, sink)
}
