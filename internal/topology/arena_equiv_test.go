// CSR-vs-arena equivalence properties: the CSR level store plus its
// mutation overlay must be observationally identical to the pre-refactor
// representation — [][]int32 up/down lists indexed by global switch id,
// mutated in place by append and swap-remove. refArena below is a verbatim
// copy of that implementation's semantics; the tests drive it in lockstep
// with real Clos values across topology families (RFC, XGFT, CFT, OFT and
// the random k-ary tree; RRN is graph-based, not a Clos, and has no arena
// to compare), healthy and under fault churn, and require every observable
// — per-switch adjacency and order, Wires, EdgeSeq, RemoveLink return
// values, Clone independence, export bytes — to match. An external test
// package so builds can come from internal/core, which imports this one.
package topology_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"slices"
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// refArena carries the old adjacency representation with the old mutation
// semantics (AddLink appends; RemoveLink swap-removes, reports presence,
// and panics on asymmetry; Clone deep-copies into capacity-pinned arenas).
type refArena struct {
	up, down [][]int32
}

// snapshotArena captures a topology's current adjacency into the reference
// representation. The snapshot's correctness rests on the build-order pins
// that exist independently of these tests: the emitter-vs-AddLink order
// test in iter_test.go and the streamed-export byte goldens.
func snapshotArena(c *topology.Clos) *refArena {
	n := c.NumSwitches()
	a := &refArena{up: make([][]int32, n), down: make([][]int32, n)}
	for s := int32(0); s < int32(n); s++ {
		a.up[s] = append([]int32(nil), c.Up(s)...)
		a.down[s] = append([]int32(nil), c.Down(s)...)
	}
	return a
}

func (a *refArena) addLink(x, y int32) {
	a.up[x] = append(a.up[x], y)
	a.down[y] = append(a.down[y], x)
}

func (a *refArena) removeLink(x, y int32) bool {
	if !refRemoveOne(&a.up[x], y) {
		return false
	}
	if !refRemoveOne(&a.down[y], x) {
		panic("refArena: asymmetric link state")
	}
	return true
}

// refRemoveOne is the old removeOne verbatim: swap with last, truncate.
func refRemoveOne(list *[]int32, v int32) bool {
	l := *list
	for i, w := range l {
		if w == v {
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return true
		}
	}
	return false
}

// clone is the old cloneArena-based Clone verbatim: both directions copied
// into one backing array per direction with capacity-pinned sub-slices.
func (a *refArena) clone() *refArena {
	return &refArena{up: refCloneArena(a.up), down: refCloneArena(a.down)}
}

func refCloneArena(lists [][]int32) [][]int32 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	arena := make([]int32, 0, total)
	out := make([][]int32, len(lists))
	for i, l := range lists {
		pos := len(arena)
		arena = append(arena, l...)
		out[i] = arena[pos:len(arena):len(arena)]
	}
	return out
}

// links materialises the arena's canonical edge order: ascending lower
// endpoint, up-neighbours in list order — the old Links()/EdgeSeq order.
func (a *refArena) links() []topology.Link {
	var out []topology.Link
	for s := range a.up {
		for _, b := range a.up[s] {
			out = append(out, topology.Link{A: int32(s), B: b})
		}
	}
	return out
}

func (a *refArena) wires() int {
	n := 0
	for _, l := range a.up {
		n += len(l)
	}
	return n
}

// refJSONBytes renders the old WriteJSON output (encoding/json over the
// materialised link slice) for the arena's state.
func refJSONBytes(t *testing.T, c *topology.Clos, a *refArena) []byte {
	t.Helper()
	out := struct {
		Radix        int      `json:"radix"`
		TermsPerLeaf int      `json:"terms_per_leaf"`
		LevelSizes   []int    `json:"level_sizes"`
		Links        [][2]int `json:"links"`
	}{Radix: c.Radix, TermsPerLeaf: c.TermsPerLeaf, Links: [][2]int{}}
	for lev := 1; lev <= c.Levels(); lev++ {
		out.LevelSizes = append(out.LevelSizes, c.LevelSize(lev))
	}
	for _, l := range a.links() {
		out.Links = append(out.Links, [2]int{int(l.A), int(l.B)})
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refEdgeBytes renders the old WriteEdgeList output for the arena's state.
func refEdgeBytes(a *refArena) []byte {
	var buf bytes.Buffer
	for _, l := range a.links() {
		fmt.Fprintln(&buf, l.A, l.B)
	}
	return buf.Bytes()
}

// requireEqual asserts every observable of c matches the reference arena.
func requireEqual(t *testing.T, label string, c *topology.Clos, a *refArena) {
	t.Helper()
	for s := int32(0); s < int32(c.NumSwitches()); s++ {
		if !slices.Equal(c.Up(s), a.up[s]) {
			t.Fatalf("%s: switch %d up: store %v, arena %v", label, s, c.Up(s), a.up[s])
		}
		if !slices.Equal(c.Down(s), a.down[s]) {
			t.Fatalf("%s: switch %d down: store %v, arena %v", label, s, c.Down(s), a.down[s])
		}
	}
	if c.Wires() != a.wires() {
		t.Fatalf("%s: wires: store %d, arena %d", label, c.Wires(), a.wires())
	}
	want := a.links()
	i := 0
	for l := range c.EdgeSeq() {
		if i >= len(want) || l != want[i] {
			t.Fatalf("%s: EdgeSeq[%d] = %v, arena order says %v", label, i, l, want[i:min(i+1, len(want))])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("%s: EdgeSeq yielded %d links, arena has %d", label, i, len(want))
	}
	var gotJSON bytes.Buffer
	if err := c.WriteJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if wantJSON := refJSONBytes(t, c, a); !bytes.Equal(gotJSON.Bytes(), wantJSON) {
		t.Fatalf("%s: WriteJSON diverges from the arena reference", label)
	}
	var gotEdges bytes.Buffer
	if err := c.WriteEdgeList(&gotEdges); err != nil {
		t.Fatal(err)
	}
	if wantEdges := refEdgeBytes(a); !bytes.Equal(gotEdges.Bytes(), wantEdges) {
		t.Fatalf("%s: WriteEdgeList diverges from the arena reference", label)
	}
}

// equivCases builds one small instance per folded Clos family.
func equivCases(t *testing.T) map[string]*topology.Clos {
	t.Helper()
	out := map[string]*topology.Clos{}
	rfc, err := core.Generate(core.Params{Radix: 8, Leaves: 32, Levels: 3}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	out["rfc"] = rfc
	xgft, err := topology.NewXGFT([]int{3, 4, 5}, []int{1, 2, 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	out["xgft"] = xgft
	cft, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["cft"] = cft
	oft, err := topology.NewOFT(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["oft"] = oft
	kary, err := core.GenerateGeneral(core.RandomKaryTreeParams(4, 3), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	out["random-kary"] = kary
	return out
}

// TestStoreMatchesArenaUnderChurn is the equivalence property: starting
// from a healthy build, a deterministic random sequence of RemoveLink
// (present and absent links alike) and AddLink operations applied to both
// representations keeps them identical after every step.
func TestStoreMatchesArenaUnderChurn(t *testing.T) {
	for name, c := range equivCases(t) {
		t.Run(name, func(t *testing.T) {
			a := snapshotArena(c)
			requireEqual(t, "healthy", c, a)

			r := rng.New(42)
			var removed []topology.Link
			for step := 0; step < 200; step++ {
				switch {
				case len(removed) > 0 && (a.wires() == 0 || r.Intn(3) == 0):
					// Re-add a previously removed link.
					i := r.Intn(len(removed))
					l := removed[i]
					removed = append(removed[:i], removed[i+1:]...)
					c.AddLink(l.A, l.B)
					a.addLink(l.A, l.B)
				default:
					links := a.links()
					l := links[r.Intn(len(links))]
					if got, want := c.RemoveLink(l.A, l.B), a.removeLink(l.A, l.B); got != want || !got {
						t.Fatalf("step %d: RemoveLink(%v) store=%v arena=%v", step, l, got, want)
					}
					removed = append(removed, l)
					// Removing it again must be a no-op on both sides.
					if got, want := c.RemoveLink(l.A, l.B), a.removeLink(l.A, l.B); got || want {
						t.Fatalf("step %d: double RemoveLink(%v) store=%v arena=%v", step, l, got, want)
					}
				}
			}
			requireEqual(t, "churned", c, a)
		})
	}
}

// TestCloneMatchesArenaClone pins Clone against the old deep-copy
// semantics: churn on a clone never leaks into the original (whose CSR base
// the clone shares), churn on the original never leaks into the clone, and
// both track their reference arenas throughout.
func TestCloneMatchesArenaClone(t *testing.T) {
	for name, c := range equivCases(t) {
		t.Run(name, func(t *testing.T) {
			a := snapshotArena(c)

			// Churn the original a little first so the clone starts from a
			// store with a live overlay.
			r := rng.New(7)
			pre := a.links()
			for i := 0; i < 8; i++ {
				l := pre[r.Intn(len(pre))]
				c.RemoveLink(l.A, l.B)
				a.removeLink(l.A, l.B)
			}

			cp, cpa := c.Clone(), a.clone()
			requireEqual(t, "clone", cp, cpa)

			// Diverge: independent churn streams on each side.
			links := cpa.links()
			for i := 0; i < 20; i++ {
				l := links[r.Intn(len(links))]
				if got, want := cp.RemoveLink(l.A, l.B), cpa.removeLink(l.A, l.B); got != want {
					t.Fatalf("clone RemoveLink(%v) store=%v arena=%v", l, got, want)
				}
			}
			origLinks := a.links()
			for i := 0; i < 20; i++ {
				l := origLinks[r.Intn(len(origLinks))]
				if got, want := c.RemoveLink(l.A, l.B), a.removeLink(l.A, l.B); got != want {
					t.Fatalf("original RemoveLink(%v) store=%v arena=%v", l, got, want)
				}
			}
			requireEqual(t, "original after divergence", c, a)
			requireEqual(t, "clone after divergence", cp, cpa)
		})
	}
}
