// Wiring benchmark for the CSR level store: builds large XGFTs through the
// level emitter and reports the sealed store's footprint next to the
// pre-refactor arena cost model ([][]int32 up/down lists: 8 bytes of int32
// per wire across the two directions plus two 24-byte slice headers per
// switch). scripts/bench.sh records both at 64K and 512K leaves as the
// topology-build datapoint in BENCH_engine.json.
package topology_test

import (
	"fmt"
	"testing"

	"rfclos/internal/topology"
)

func BenchmarkTopologyBuild(b *testing.B) {
	for _, leaves := range []int{65536, 524288} {
		// N1 = m2*m3 with this shape; radix must cover the top switches'
		// down-degree m3. Same family as the service layer's million-switch
		// smoke (524288 leaves there too).
		m3 := leaves / 8
		m := []int{4, 8, m3}
		w := []int{1, 8, 2}
		b.Run(fmt.Sprintf("leaves=%d", leaves), func(b *testing.B) {
			var c *topology.Clos
			for i := 0; i < b.N; i++ {
				var err error
				c, err = topology.NewXGFT(m, w, m3)
				if err != nil {
					b.Fatal(err)
				}
			}
			if n := c.LevelSize(1); n != leaves {
				b.Fatalf("built %d leaves, want %d", n, leaves)
			}
			csr := int64(c.StoreBytes())
			arena := int64(c.Wires())*8 + int64(c.NumSwitches())*48
			b.ReportMetric(float64(csr), "csr-bytes")
			b.ReportMetric(float64(arena), "arena-bytes")
			b.ReportMetric(float64(c.Wires()), "wires")
		})
	}
}

// BenchmarkExportEdges measures streaming the full link set, sealed
// (CSR-direct fast path) vs after one mutation (overlay fallback).
// scripts/bench.sh records the sealed 64K-leaf rate as the export-edges
// datapoint in BENCH_engine.json.
func BenchmarkExportEdges(b *testing.B) {
	m3 := 65536 / 8
	c, err := topology.NewXGFT([]int{4, 8, m3}, []int{1, 8, 2}, m3)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, c *topology.Clos) {
		count := 0
		for i := 0; i < b.N; i++ {
			count = 0
			for range c.EdgeSeq() {
				count++
			}
		}
		if count != c.Wires() {
			b.Fatalf("streamed %d links, want %d", count, c.Wires())
		}
		b.ReportMetric(float64(count)*float64(b.N)/b.Elapsed().Seconds(), "links/s")
	}
	b.Run("sealed", func(b *testing.B) { run(b, c) })
	b.Run("overlay", func(b *testing.B) {
		cp := c.Clone()
		l := cp.Links()[0]
		cp.AddLink(l.A, l.B)
		cp.RemoveLink(l.A, l.B)
		run(b, cp)
	})
}
