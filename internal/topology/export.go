package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file is the single topology export encoder shared by the offline
// tooling (cmd/rfcgen -format) and the serving layer's export endpoint
// (internal/service, GET /v1/topology/{key}/export): both call Export /
// ExportRRN, so a topology exported online is byte-identical to the same
// topology exported offline.

// ExportFormats lists the formats Export and ExportRRN accept.
func ExportFormats() []string { return []string{"json", "dot", "edges"} }

// Export writes c in the named format: "json" (the WriteJSON adjacency
// schema), "dot" (Graphviz) or "edges" (one "a b" line per link).
func Export(c *Clos, format string, w io.Writer) error {
	switch format {
	case "json":
		return c.WriteJSON(w)
	case "dot":
		return c.WriteDOT(w)
	case "edges":
		return c.WriteEdgeList(w)
	default:
		return fmt.Errorf("topology: unknown export format %q (want json, dot or edges)", format)
	}
}

// rrnJSON is the on-disk schema for a random regular network, mirroring
// closJSON: parameters plus an explicit edge list.
type rrnJSON struct {
	N              int      `json:"n"`
	Degree         int      `json:"degree"`
	TermsPerSwitch int      `json:"terms_per_switch"`
	Edges          [][2]int `json:"edges"`
}

// WriteJSON serialises the network with each undirected edge listed once.
func (r *RRN) WriteJSON(w io.Writer) error {
	out := rrnJSON{N: r.N(), Degree: r.Degree, TermsPerSwitch: r.TermsPerSwitch}
	for _, e := range r.G.Edges() {
		out.Edges = append(out.Edges, [2]int{int(e.U), int(e.V)})
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteDOT emits the switch graph in Graphviz DOT format.
func (r *RRN) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph rrn {")
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=10];")
	for _, e := range r.G.Edges() {
		fmt.Fprintf(bw, "  s%d -- s%d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList emits one "u v" line per undirected edge.
func (r *RRN) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.G.Edges() {
		if _, err := fmt.Fprintln(bw, e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ExportRRN writes r in the named format, mirroring Export for the direct
// random topology.
func ExportRRN(r *RRN, format string, w io.Writer) error {
	switch format {
	case "json":
		return r.WriteJSON(w)
	case "dot":
		return r.WriteDOT(w)
	case "edges":
		return r.WriteEdgeList(w)
	default:
		return fmt.Errorf("topology: unknown export format %q (want json, dot or edges)", format)
	}
}
