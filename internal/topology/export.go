package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// This file is the single topology export encoder shared by the offline
// tooling (cmd/rfcgen -format) and the serving layer's export endpoint
// (internal/service, GET /v1/topology/{key}/export): both call Export /
// ExportRRN, so a topology exported online is byte-identical to the same
// topology exported offline.

// ExportFormats lists the formats Export and ExportRRN accept.
func ExportFormats() []string { return []string{"json", "dot", "edges"} }

// Export writes c in the named format: "json" (the WriteJSON adjacency
// schema), "dot" (Graphviz) or "edges" (one "a b" line per link).
func Export(c *Clos, format string, w io.Writer) error {
	switch format {
	case "json":
		return c.WriteJSON(w)
	case "dot":
		return c.WriteDOT(w)
	case "edges":
		return c.WriteEdgeList(w)
	default:
		return fmt.Errorf("topology: unknown export format %q (want json, dot or edges)", format)
	}
}

// rrnJSON is the on-disk schema for a random regular network, mirroring
// closJSON: parameters plus an explicit edge list. As with closJSON, the
// struct is the decode side; WriteJSON streams the identical encoding.
type rrnJSON struct {
	N              int      `json:"n"`
	Degree         int      `json:"degree"`
	TermsPerSwitch int      `json:"terms_per_switch"`
	Edges          [][2]int `json:"edges"`
}

// WriteJSON serialises the network with each undirected edge listed once,
// streamed in the canonical Edges order. An edgeless network emits
// "edges":[] (not null), keeping the schema's array type stable.
func (r *RRN) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 32)
	bw.WriteString(`{"n":`)
	bw.Write(strconv.AppendInt(buf, int64(r.N()), 10))
	bw.WriteString(`,"degree":`)
	bw.Write(strconv.AppendInt(buf, int64(r.Degree), 10))
	bw.WriteString(`,"terms_per_switch":`)
	bw.Write(strconv.AppendInt(buf, int64(r.TermsPerSwitch), 10))
	bw.WriteString(`,"edges":[`)
	first := true
	for e := range r.G.EdgeSeq() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		buf = append(buf[:0], '[')
		buf = strconv.AppendInt(buf, int64(e.U), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.V), 10)
		buf = append(buf, ']')
		bw.Write(buf)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteDOT emits the switch graph in Graphviz DOT format, streamed edge by
// edge.
func (r *RRN) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph rrn {")
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=10];")
	for e := range r.G.EdgeSeq() {
		writeDOTEdge(bw, int64(e.U), int64(e.V))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList emits one "u v" line per undirected edge, streamed.
func (r *RRN) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for e := range r.G.EdgeSeq() {
		writeEdgeLine(bw, int64(e.U), int64(e.V))
	}
	return bw.Flush()
}

// ExportRRN writes r in the named format, mirroring Export for the direct
// random topology.
func ExportRRN(r *RRN, format string, w io.Writer) error {
	switch format {
	case "json":
		return r.WriteJSON(w)
	case "dot":
		return r.WriteDOT(w)
	case "edges":
		return r.WriteEdgeList(w)
	default:
		return fmt.Errorf("topology: unknown export format %q (want json, dot or edges)", format)
	}
}
