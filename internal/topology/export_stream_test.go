// Streamed-export byte-identity goldens: the hand-streamed encoders in
// io.go/export.go must reproduce, byte for byte, the output of the
// pre-refactor encoders (encoding/json over materialised edge slices). The
// reference encoders are copied here verbatim so any drift in the streaming
// path fails loudly. An external test package so RFC builds can come from
// internal/core, which imports this package.
package topology_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// refClosJSON is the pre-refactor (*Clos).WriteJSON: encoding/json over the
// materialised link slice.
func refClosJSON(t *testing.T, c *topology.Clos) []byte {
	t.Helper()
	out := struct {
		Radix        int      `json:"radix"`
		TermsPerLeaf int      `json:"terms_per_leaf"`
		LevelSizes   []int    `json:"level_sizes"`
		Links        [][2]int `json:"links"`
	}{Radix: c.Radix, TermsPerLeaf: c.TermsPerLeaf, Links: [][2]int{}}
	for lev := 1; lev <= c.Levels(); lev++ {
		out.LevelSizes = append(out.LevelSizes, c.LevelSize(lev))
	}
	for _, l := range c.Links() {
		out.Links = append(out.Links, [2]int{int(l.A), int(l.B)})
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refClosDOT is the pre-refactor (*Clos).WriteDOT loop.
func refClosDOT(c *topology.Clos) []byte {
	var bw bytes.Buffer
	fmt.Fprintln(&bw, "graph clos {")
	fmt.Fprintln(&bw, "  rankdir=BT;")
	fmt.Fprintln(&bw, "  node [shape=box, fontsize=10];")
	for lev := 1; lev <= c.Levels(); lev++ {
		fmt.Fprintf(&bw, "  { rank=same;")
		for i := 0; i < c.LevelSize(lev); i++ {
			fmt.Fprintf(&bw, " s%d;", c.SwitchID(lev, i))
		}
		fmt.Fprintln(&bw, " }")
	}
	for _, l := range c.Links() {
		fmt.Fprintf(&bw, "  s%d -- s%d;\n", l.A, l.B)
	}
	fmt.Fprintln(&bw, "}")
	return bw.Bytes()
}

// refClosEdges is the pre-refactor (*Clos).WriteEdgeList loop.
func refClosEdges(c *topology.Clos) []byte {
	var bw bytes.Buffer
	for _, l := range c.Links() {
		fmt.Fprintln(&bw, l.A, l.B)
	}
	return bw.Bytes()
}

// refRRNJSON is the pre-refactor (*RRN).WriteJSON, except for the edgeless
// case where "edges" is now pinned to [] instead of null.
func refRRNJSON(t *testing.T, r *topology.RRN) []byte {
	t.Helper()
	out := struct {
		N              int      `json:"n"`
		Degree         int      `json:"degree"`
		TermsPerSwitch int      `json:"terms_per_switch"`
		Edges          [][2]int `json:"edges"`
	}{N: r.N(), Degree: r.Degree, TermsPerSwitch: r.TermsPerSwitch, Edges: [][2]int{}}
	for _, e := range r.G.Edges() {
		out.Edges = append(out.Edges, [2]int{int(e.U), int(e.V)})
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refRRNDOT is the pre-refactor (*RRN).WriteDOT loop.
func refRRNDOT(r *topology.RRN) []byte {
	var bw bytes.Buffer
	fmt.Fprintln(&bw, "graph rrn {")
	fmt.Fprintln(&bw, "  node [shape=circle, fontsize=10];")
	for _, e := range r.G.Edges() {
		fmt.Fprintf(&bw, "  s%d -- s%d;\n", e.U, e.V)
	}
	fmt.Fprintln(&bw, "}")
	return bw.Bytes()
}

// refRRNEdges is the pre-refactor (*RRN).WriteEdgeList loop.
func refRRNEdges(r *topology.RRN) []byte {
	var bw bytes.Buffer
	for _, e := range r.G.Edges() {
		fmt.Fprintln(&bw, e.U, e.V)
	}
	return bw.Bytes()
}

// TestStreamedExportGoldens pins every streamed export format against the
// reference encoders, across a random folded Clos, a fat-tree, and an RRN.
func TestStreamedExportGoldens(t *testing.T) {
	rfc, err := core.Generate(core.Params{Radix: 8, Levels: 3, Leaves: 32}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cft, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		c    *topology.Clos
	}{{"rfc", rfc}, {"cft", cft}} {
		refs := map[string][]byte{
			"json":  refClosJSON(t, tc.c),
			"dot":   refClosDOT(tc.c),
			"edges": refClosEdges(tc.c),
		}
		for _, format := range topology.ExportFormats() {
			var got bytes.Buffer
			if err := topology.Export(tc.c, format, &got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), refs[format]) {
				t.Errorf("%s/%s: streamed output differs from reference encoder\ngot:  %q\nwant: %q",
					tc.name, format, truncate(got.Bytes()), truncate(refs[format]))
			}
		}
	}

	rrn, err := topology.NewRRN(24, 5, 3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rrnRefs := map[string][]byte{
		"json":  refRRNJSON(t, rrn),
		"dot":   refRRNDOT(rrn),
		"edges": refRRNEdges(rrn),
	}
	for _, format := range topology.ExportFormats() {
		var got bytes.Buffer
		if err := topology.ExportRRN(rrn, format, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), rrnRefs[format]) {
			t.Errorf("rrn/%s: streamed output differs from reference encoder\ngot:  %q\nwant: %q",
				format, truncate(got.Bytes()), truncate(rrnRefs[format]))
		}
	}
}

// TestRRNEmptyEdgesJSON is the regression test for the "edges": null bug: an
// edgeless network must emit a stable empty array.
func TestRRNEmptyEdgesJSON(t *testing.T) {
	rrn, err := topology.NewRRN(4, 0, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rrn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"n":4,"degree":0,"terms_per_switch":2,"edges":[]}` + "\n"
	if buf.String() != want {
		t.Fatalf("edgeless RRN JSON = %q, want %q", buf.String(), want)
	}
}

func truncate(b []byte) []byte {
	if len(b) > 300 {
		return append(append([]byte(nil), b[:300]...), "..."...)
	}
	return b
}
