package topology

import (
	"fmt"

	"rfclos/internal/graph"
	"rfclos/internal/rng"
)

// RRN is a random regular network: the Jellyfish-style direct topology the
// paper uses as the random baseline. N switches form a random Δ-regular
// graph; each switch additionally attaches TermsPerSwitch compute nodes, so
// the switch radix is Δ + TermsPerSwitch.
type RRN struct {
	G              *graph.Graph
	Degree         int
	TermsPerSwitch int
}

// NewRRN generates a random regular network with n switches of network
// degree d and t terminals per switch.
func NewRRN(n, d, t int, r *rng.Rand) (*RRN, error) {
	if t < 0 {
		return nil, fmt.Errorf("topology: RRN terminals per switch %d < 0", t)
	}
	g, err := graph.RandomRegular(n, d, r)
	if err != nil {
		return nil, fmt.Errorf("topology: RRN(%d,%d): %w", n, d, err)
	}
	return &RRN{G: g, Degree: d, TermsPerSwitch: t}, nil
}

// N returns the switch count.
func (r *RRN) N() int { return r.G.N() }

// Radix returns the switch radix (network ports + terminal ports).
func (r *RRN) Radix() int { return r.Degree + r.TermsPerSwitch }

// Terminals returns the total number of compute nodes.
func (r *RRN) Terminals() int { return r.G.N() * r.TermsPerSwitch }

// Wires returns the number of switch-to-switch links.
func (r *RRN) Wires() int { return r.G.M() }

// TotalPorts counts network ports plus terminal ports, the Figure 7 cost
// measure.
func (r *RRN) TotalPorts() int { return 2*r.G.M() + r.Terminals() }

// Diameter returns the exact switch-graph diameter (-1 when disconnected).
func (r *RRN) Diameter() int { return r.G.Diameter() }

// Expand grows the RRN to n2 switches (n2 >= N) preserving degree d, using
// the Jellyfish incremental expansion procedure: each new switch is wired by
// repeatedly removing a random existing edge {u, v} and adding {u, new} and
// {new, v}, until the new switch reaches full degree. Returns the number of
// existing links that were rewired.
func (r *RRN) Expand(n2 int, rnd *rng.Rand) (rewired int, err error) {
	if n2 < r.G.N() {
		return 0, fmt.Errorf("topology: RRN cannot shrink from %d to %d", r.G.N(), n2)
	}
	if r.Degree < 2 || r.Degree%2 != 0 {
		return 0, fmt.Errorf("topology: RRN expansion needs even degree >= 2, got %d", r.Degree)
	}
	old := r.G
	g := graph.New(n2)
	for _, e := range old.Edges() {
		g.AddEdge(int(e.U), int(e.V))
	}
	for v := old.N(); v < n2; v++ {
		for g.Degree(v)+1 < r.Degree {
			// Pick a random existing edge not incident to v and splice v in.
			u, w, ok := randomEdgeAvoiding(g, v, rnd)
			if !ok {
				return rewired, fmt.Errorf("topology: RRN expansion stuck at switch %d", v)
			}
			g.RemoveEdge(u, w)
			g.AddEdge(u, v)
			g.AddEdge(v, w)
			rewired++
		}
	}
	r.G = g
	return rewired, nil
}

// randomEdgeAvoiding returns a uniformly random edge {u, w} with u != v,
// w != v, and neither u nor w already adjacent to v.
func randomEdgeAvoiding(g *graph.Graph, v int, rnd *rng.Rand) (int, int, bool) {
	edges := g.Edges()
	// Try random probes first, then fall back to a scan.
	for try := 0; try < 64; try++ {
		e := edges[rnd.Intn(len(edges))]
		u, w := int(e.U), int(e.V)
		if u != v && w != v && !g.HasEdge(u, v) && !g.HasEdge(w, v) {
			return u, w, true
		}
	}
	for _, e := range edges {
		u, w := int(e.U), int(e.V)
		if u != v && w != v && !g.HasEdge(u, v) && !g.HasEdge(w, v) {
			return u, w, true
		}
	}
	return 0, 0, false
}
