package topology

import (
	"testing"

	"rfclos/internal/rng"
)

func TestCFTFigure1(t *testing.T) {
	// Figure 1: the 4-commodity fat-tree (radix 4, 4 levels).
	c, err := NewCFT(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantSizes := []int{16, 16, 16, 8}
	for i, want := range wantSizes {
		if got := c.LevelSize(i + 1); got != want {
			t.Errorf("level %d size = %d, want %d", i+1, got, want)
		}
	}
	if c.Terminals() != 32 {
		t.Errorf("terminals = %d, want 32", c.Terminals())
	}
	if err := c.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}
	if c.Wires() != 96 {
		t.Errorf("wires = %d, want 96", c.Wires())
	}
	// Diameter of the switch graph of an l-level fat-tree is 2(l-1).
	if d := c.SwitchGraph().Diameter(); d != 6 {
		t.Errorf("diameter = %d, want 6", d)
	}
}

func TestCFTPaperCounts(t *testing.T) {
	// §5: 3-level radix-36 CFT has 648 leaves, 11,664 terminals, 1,620
	// switches and 23,328 wires; the 4-level one has 40,824 switches and
	// 629,856 wires connecting 209,952 terminals.
	c3, err := NewCFT(36, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c3.LevelSize(1) != 648 || c3.Terminals() != 11664 {
		t.Errorf("3-level CFT: N1=%d T=%d, want 648/11664", c3.LevelSize(1), c3.Terminals())
	}
	if c3.NumSwitches() != 1620 || c3.Wires() != 23328 {
		t.Errorf("3-level CFT: switches=%d wires=%d, want 1620/23328", c3.NumSwitches(), c3.Wires())
	}
	if err := c3.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}

	c4, err := NewCFT(36, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c4.NumSwitches() != 40824 || c4.Wires() != 629856 || c4.Terminals() != 209952 {
		t.Errorf("4-level CFT: switches=%d wires=%d T=%d, want 40824/629856/209952",
			c4.NumSwitches(), c4.Wires(), c4.Terminals())
	}
}

func TestCFTErrors(t *testing.T) {
	if _, err := NewCFT(5, 3); err == nil {
		t.Error("odd radix should fail")
	}
	if _, err := NewCFT(4, 1); err == nil {
		t.Error("1 level should fail")
	}
}

func TestKaryTree(t *testing.T) {
	c, err := NewKaryTree(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// k-ary l-tree: k^{l-1} switches per level, T = k^l.
	for i := 1; i <= 3; i++ {
		if got := c.LevelSize(i); got != 4 {
			t.Errorf("level %d size = %d, want 4", i, got)
		}
	}
	if c.Terminals() != 8 {
		t.Errorf("terminals = %d, want 8", c.Terminals())
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	if d := c.SwitchGraph().Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
	// CFT doubles the k-ary tree: with the same radix 4 and 3 levels the
	// CFT connects 2*(4/2)^3 = 16 > 8 terminals.
	cft, _ := NewCFT(4, 3)
	if cft.Terminals() != 2*c.Terminals() {
		t.Errorf("CFT should double k-ary tree terminals: %d vs %d", cft.Terminals(), c.Terminals())
	}
}

func TestOFTFigure2(t *testing.T) {
	// Figure 2: the 2-level OFT (order 2): 14 leaves, 7 roots, radix 6,
	// 3 terminals per leaf, T = 42.
	c, err := NewOFT(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.LevelSize(1) != 14 || c.LevelSize(2) != 7 {
		t.Errorf("OFT(2,2) sizes = %d/%d, want 14/7", c.LevelSize(1), c.LevelSize(2))
	}
	if c.Terminals() != 42 || c.Radix != 6 {
		t.Errorf("OFT(2,2): T=%d R=%d, want 42/6", c.Terminals(), c.Radix)
	}
	if err := c.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}
	if d := leafDiameter(c); d != 2 {
		t.Errorf("leaf-to-leaf diameter = %d, want 2", d)
	}
}

// leafDiameter computes the maximum switch-graph distance between leaf
// switches — the quantity the paper calls the network diameter D.
func leafDiameter(c *Clos) int {
	g := c.SwitchGraph()
	n1 := c.LevelSize(1)
	max := 0
	for a := 0; a < n1; a++ {
		dist := g.BFS(int(c.SwitchID(1, a)), nil)
		for b := 0; b < n1; b++ {
			d := int(dist[c.SwitchID(1, b)])
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

func TestOFTThreeLevels(t *testing.T) {
	for _, q := range []int{2, 3} {
		c, err := NewOFT(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		n := q*q + q + 1
		if c.LevelSize(1) != 2*n*n || c.LevelSize(2) != 2*n*n || c.LevelSize(3) != n*n {
			t.Errorf("OFT(%d,3) sizes = %d/%d/%d", q, c.LevelSize(1), c.LevelSize(2), c.LevelSize(3))
		}
		if c.Terminals() != OFTTerminals(q, 3) {
			t.Errorf("OFT(%d,3): T=%d, want %d", q, c.Terminals(), OFTTerminals(q, 3))
		}
		if err := c.ValidateRadixRegular(); err != nil {
			t.Errorf("OFT(%d,3): %v", q, err)
		}
		if d := leafDiameter(c); d != 4 {
			t.Errorf("OFT(%d,3) leaf diameter = %d, want 4", q, d)
		}
	}
}

func TestOFTUniqueMinimalPaths2Level(t *testing.T) {
	// §3: "Minimal routes in the 2-level OFT are unique". Leaves on
	// opposite sides or with different points share exactly one root.
	c, err := NewOFT(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	n1 := c.LevelSize(1)
	for a := 0; a < n1; a++ {
		for b := a + 1; b < n1; b++ {
			sa, sb := c.SwitchID(1, a), c.SwitchID(1, b)
			// Count common roots.
			common := 0
			for _, ra := range c.Up(sa) {
				for _, rb := range c.Up(sb) {
					if ra == rb {
						common++
					}
				}
			}
			samePoint := (a >> 1) == (b >> 1) // same point digit, other side
			if samePoint {
				if common != 3+1 {
					t.Fatalf("same-point leaves %d,%d share %d roots, want q+1=4", a, b, common)
				}
			} else if common != 1 {
				t.Fatalf("leaves %d,%d share %d roots, want 1", a, b, common)
			}
		}
	}
}

func TestOFTErrors(t *testing.T) {
	if _, err := NewOFT(6, 2); err == nil {
		t.Error("q=6 (not a prime power) should fail")
	}
	if _, err := NewOFT(2, 1); err == nil {
		t.Error("1 level should fail")
	}
}

func TestXGFTErrors(t *testing.T) {
	if _, err := NewXGFT([]int{2}, []int{1}, 4); err == nil {
		t.Error("single level should fail")
	}
	if _, err := NewXGFT([]int{2, 2}, []int{2, 2}, 4); err == nil {
		t.Error("w[0] != 1 should fail")
	}
	if _, err := NewXGFT([]int{2, 0}, []int{1, 2}, 4); err == nil {
		t.Error("zero parameter should fail")
	}
}

func TestClosAccessors(t *testing.T) {
	c, err := NewCFT(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// SwitchID / LevelOf / IndexInLevel round trip.
	for lev := 1; lev <= 3; lev++ {
		for idx := 0; idx < c.LevelSize(lev); idx++ {
			s := c.SwitchID(lev, idx)
			if c.LevelOf(s) != lev || c.IndexInLevel(s) != idx {
				t.Fatalf("roundtrip failed for level %d idx %d", lev, idx)
			}
		}
	}
	// Terminal attachment.
	if c.LeafOfTerminal(0) != 0 || c.LeafOfTerminal(c.TermsPerLeaf) != 1 {
		t.Error("LeafOfTerminal wrong")
	}
	if c.TotalPorts() != 2*c.Wires()+c.Terminals() {
		t.Error("TotalPorts inconsistent")
	}
}

func TestClosRemoveLinkAndClone(t *testing.T) {
	c, err := NewCFT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	links := c.Links()
	if len(links) != c.Wires() {
		t.Fatalf("Links() returned %d, want %d", len(links), c.Wires())
	}
	l := links[0]
	if !c.RemoveLink(l.A, l.B) {
		t.Fatal("RemoveLink failed")
	}
	if c.RemoveLink(l.A, l.B) {
		t.Fatal("double remove succeeded")
	}
	if c.Wires() != len(links)-1 {
		t.Error("wire count not decremented")
	}
	if cl.Wires() != len(links) {
		t.Error("clone was affected by removal")
	}
}

func TestRRNBasics(t *testing.T) {
	r := rng.New(55)
	rr, err := NewRRN(50, 6, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Radix() != 9 || rr.Terminals() != 150 || rr.Wires() != 150 {
		t.Errorf("RRN: radix=%d T=%d wires=%d", rr.Radix(), rr.Terminals(), rr.Wires())
	}
	if !rr.G.IsRegular(6) || !rr.G.IsSimple() {
		t.Error("RRN graph not 6-regular simple")
	}
	if rr.Diameter() < 2 {
		t.Error("suspicious diameter")
	}
	if rr.TotalPorts() != 2*150+150 {
		t.Error("TotalPorts wrong")
	}
}

func TestRRNExpand(t *testing.T) {
	r := rng.New(56)
	rr, err := NewRRN(20, 4, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := rr.Expand(30, r)
	if err != nil {
		t.Fatal(err)
	}
	if rr.N() != 30 {
		t.Fatalf("expanded to %d switches, want 30", rr.N())
	}
	if !rr.G.IsRegular(4) {
		t.Error("expansion broke regularity")
	}
	if !rr.G.IsSimple() {
		t.Error("expansion created loops or multi-edges")
	}
	if !rr.G.IsConnected() {
		t.Error("expansion disconnected the network")
	}
	// Each new switch needs d/2 = 2 splices.
	if rewired != 10*2 {
		t.Errorf("rewired = %d, want 20", rewired)
	}
	if _, err := rr.Expand(10, r); err == nil {
		t.Error("shrinking should fail")
	}
	odd := &RRN{G: rr.G, Degree: 5, TermsPerSwitch: 2}
	if _, err := odd.Expand(40, r); err == nil {
		t.Error("odd degree expansion should fail")
	}
}

func TestNewEmptyErrors(t *testing.T) {
	if _, err := NewEmpty([]int{4}, 2, 4); err == nil {
		t.Error("single level should fail")
	}
	if _, err := NewEmpty([]int{4, 0}, 2, 4); err == nil {
		t.Error("zero level size should fail")
	}
	if _, err := NewEmpty([]int{4, 4}, 0, 4); err == nil {
		t.Error("zero terminals per leaf should fail")
	}
}

func TestValidateCatchesBadWiring(t *testing.T) {
	c, err := NewEmpty([]int{2, 2}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// No links at all: leaves have no up-links.
	if err := c.Validate(); err == nil {
		t.Error("expected validation failure for unwired Clos")
	}
	c.AddLink(c.SwitchID(1, 0), c.SwitchID(2, 0))
	c.AddLink(c.SwitchID(1, 1), c.SwitchID(2, 1))
	if err := c.Validate(); err != nil {
		t.Errorf("valid wiring rejected: %v", err)
	}
	// Duplicate parallel link.
	c.AddLink(c.SwitchID(1, 0), c.SwitchID(2, 0))
	if err := c.Validate(); err == nil {
		t.Error("expected validation failure for parallel links")
	}
}
