package topology

import "iter"

// This file is the iteration layer of Clos: links stream level by level
// straight out of the CSR store without materialising edge slices. The
// encoders in io.go, the service export endpoint, and cmd/rfcgen all
// consume these sequences, so multi-gigabyte topologies export in constant
// memory.

// EdgeSeq yields every inter-switch link exactly once, in the canonical
// order Links returns: ascending lower-endpoint switch id, up-neighbours in
// wiring order. Encoders stream from this sequence; its order is part of
// the export formats' byte-identity contract.
func (c *Clos) EdgeSeq() iter.Seq[Link] {
	return func(yield func(Link) bool) {
		for level := 1; level < c.Levels(); level++ {
			if !c.yieldLevel(level, yield) {
				return
			}
		}
	}
}

// LinkSeq yields the links whose lower endpoint sits at the given level
// (1 <= level < l), in EdgeSeq order restricted to that level. It lets
// level-structured consumers walk one stage at a time without touching the
// rest of the network.
func (c *Clos) LinkSeq(level int) iter.Seq[Link] {
	return func(yield func(Link) bool) {
		c.yieldLevel(level, yield)
	}
}

// yieldLevel streams the up-links of one level in switch-id order,
// overlay-aware. It reports whether iteration ran to completion.
//
// A churn-free topology (no overlay) streams straight off the sealed CSR
// block — one pass over the offsets and flat neighbour arrays, no per-switch
// row lookup — which is the common case for every export of an unfaulted
// build. Any overlay falls back to the per-switch path, whose upAt calls
// merge the materialised rows in. Both paths yield identical links in
// identical order: CSR rows and overlay lists preserve wiring order.
func (c *Clos) yieldLevel(level int, yield func(Link) bool) bool {
	if c.ovl == nil {
		cl := c.up[level-1]
		if cl.offsets == nil {
			return true // level never sealed and never mutated: no links
		}
		lo := c.offset[level-1]
		for i := 0; i < c.levelSize[level-1]; i++ {
			s := lo + int32(i)
			for _, b := range cl.neigh[cl.offsets[i]:cl.offsets[i+1]] {
				if !yield(Link{s, b}) {
					return false
				}
			}
		}
		return true
	}
	lo := c.offset[level-1]
	for i := 0; i < c.levelSize[level-1]; i++ {
		s := lo + int32(i)
		for _, b := range c.upAt(level, i) {
			if !yield(Link{s, b}) {
				return false
			}
		}
	}
	return true
}
