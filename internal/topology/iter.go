package topology

import "iter"

// This file is the capacity-aware iteration layer of Clos: links stream
// level by level without materialising edge slices, and builders declare
// per-level degrees up front so adjacency lists land in two shared arenas
// instead of one allocation per switch. The encoders in io.go, the service
// export endpoint, and cmd/rfcgen all consume these sequences, so
// multi-gigabyte topologies export in constant memory.

// EdgeSeq yields every inter-switch link exactly once, in the canonical
// order Links returns: ascending lower-endpoint switch id, up-neighbours in
// wiring order. Encoders stream from this sequence; its order is part of
// the export formats' byte-identity contract.
func (c *Clos) EdgeSeq() iter.Seq[Link] {
	return func(yield func(Link) bool) {
		for s := range c.up {
			for _, b := range c.up[s] {
				if !yield(Link{int32(s), b}) {
					return
				}
			}
		}
	}
}

// LinkSeq yields the links whose lower endpoint sits at the given level
// (1 <= level < l), in EdgeSeq order restricted to that level. It lets
// level-structured consumers walk one stage at a time without touching the
// rest of the network.
func (c *Clos) LinkSeq(level int) iter.Seq[Link] {
	return func(yield func(Link) bool) {
		lo := int(c.offset[level-1])
		for i := 0; i < c.levelSize[level-1]; i++ {
			s := int32(lo + i)
			for _, b := range c.up[s] {
				if !yield(Link{s, b}) {
					return
				}
			}
		}
	}
}

// ReserveDegrees preallocates adjacency storage from per-level degree
// expectations: up[i] (resp. down[i]) is the up-degree (resp. down-degree)
// every level-(i+1) switch will have. All lists for one direction share a
// single arena, cut into capacity-pinned sub-slices, so a build performs two
// adjacency allocations total instead of two per switch. Wiring beyond a
// declared degree is still correct — append falls back to a per-switch
// allocation — and Reserve must be called before any links are added.
func (c *Clos) ReserveDegrees(up, down []int) {
	c.up = reserveArena(c.levelSize, c.offset, up)
	c.down = reserveArena(c.levelSize, c.offset, down)
}

// reserveArena carves one backing array into zero-length, capacity-pinned
// adjacency slices (three-index slicing keeps appends from spilling into a
// neighbour's region).
func reserveArena(levelSize []int, offset []int32, deg []int) [][]int32 {
	total := 0
	for i, n := range levelSize {
		total += n * deg[i]
	}
	arena := make([]int32, total)
	lists := make([][]int32, int(offset[len(offset)-1])+levelSize[len(levelSize)-1])
	pos := 0
	for i, n := range levelSize {
		d := deg[i]
		for j := 0; j < n; j++ {
			s := int(offset[i]) + j
			lists[s] = arena[pos : pos : pos+d]
			pos += d
		}
	}
	return lists
}
