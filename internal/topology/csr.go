package topology

import (
	"fmt"
	"slices"
)

// This file is the adjacency storage of Clos: an immutable per-level CSR
// (compressed sparse row) store plus a small mutable overlay.
//
// The CSR base holds, for every level and direction, one offsets array and
// one flat neighbour array — no per-switch slice headers, so a million-
// switch fabric costs 8 bytes per wire plus 8 bytes per switch instead of
// the 48 bytes of [][]int32 headers the old arena paid on top of the same
// wire data. Builders fill the base one level pair at a time through
// LevelEmitter and never touch it again: sealed blocks are immutable, which
// is what lets Clone share them between the original and every fault-sweep
// copy.
//
// All later mutation (AddLink/RemoveLink fault churn and expansion splices)
// goes through the overlay: the first touch of a switch materialises its
// effective adjacency list into a per-switch slice owned by the overlay,
// and subsequent edits reproduce exactly the old arena's append and
// swap-remove semantics, so iteration order — and therefore rng consumption
// and export bytes — is bit-identical to the pre-CSR implementation. The
// overlay is also the single place builder-declared descendant intervals
// (leafRange) are invalidated: sealing levels during construction keeps
// them, link churn drops them.

// csrLevel is one direction of one level's adjacency: the neighbour lists
// of every switch on the level, concatenated, with offsets[i] marking where
// switch i's list starts. offsets == nil means the level has no sealed
// block (an AddLink-built topology, or a level not yet wired).
type csrLevel struct {
	offsets []int32 // len = level size + 1
	neigh   []int32
}

// row returns switch i's neighbour list within the level (read-only).
func (cl *csrLevel) row(i int) []int32 {
	if cl.offsets == nil {
		return nil
	}
	return cl.neigh[cl.offsets[i]:cl.offsets[i+1]]
}

// bytes returns the resident size of the block's arrays.
func (cl *csrLevel) bytes() int {
	return 4 * (len(cl.offsets) + len(cl.neigh))
}

// overlay holds the materialised adjacency lists of switches touched by
// AddLink/RemoveLink since the base was sealed. Presence in the map is what
// overrides the CSR row (an entry may be an empty list); the maps are only
// ever read by key — never ranged in an order-sensitive way — so the store
// stays deterministic.
type overlay struct {
	up   map[int32][]int32
	down map[int32][]int32
}

func newOverlay() *overlay {
	return &overlay{up: map[int32][]int32{}, down: map[int32][]int32{}}
}

// clone deep-copies the overlay: the per-switch lists are mutated in place
// by RemoveLink's swap-remove, so a clone must own its backing arrays.
func (o *overlay) clone() *overlay {
	cp := &overlay{
		up:   make(map[int32][]int32, len(o.up)),
		down: make(map[int32][]int32, len(o.down)),
	}
	for s, l := range o.up {
		cp.up[s] = slices.Clone(l)
	}
	for s, l := range o.down {
		cp.down[s] = slices.Clone(l)
	}
	return cp
}

// bytes estimates the overlay's resident size: map bucket overhead plus the
// materialised lists.
func (o *overlay) bytes() int {
	const entryOverhead = 48 // map bucket share + slice header
	n := entryOverhead * (len(o.up) + len(o.down))
	for _, l := range o.up {
		n += 4 * cap(l)
	}
	for _, l := range o.down {
		n += 4 * cap(l)
	}
	return n
}

// LevelSink receives sealed level pairs during construction. Builders that
// accept a sink call it synchronously from LevelEmitter.Seal, after the
// level's CSR blocks are installed: at that point the down-links of level+1
// are final, so a consumer (routing.RebuildStream) can fold the level into
// its own state while the builder moves on — wiring and cover construction
// pipeline instead of running back-to-back.
type LevelSink interface {
	// LevelSealed is called once per wired level pair, with the lower level
	// (1-based). Levels seal bottom-up in every builder in this repository.
	LevelSealed(c *Clos, level int)
}

// LevelEmitter accumulates the wiring of one adjacent level pair and seals
// it into the immutable CSR base. Links may be emitted in any order (each
// builder uses its natural generation order); Seal groups them per switch
// with a stable counting sort, so a switch's neighbour order is its
// emission order — exactly the order the old arena's AddLink calls would
// have produced. The emission stream is the only construction scratch and
// is released by Seal, so peak wiring memory beyond the final store is one
// level pair, not the whole fabric.
type LevelEmitter struct {
	c                  *Clos
	level              int
	aLo, aHi, bLo, bHi int32
	ab                 []int32 // (a, b) pairs in emission order
}

// WireLevel starts wiring the level pair (level, level+1), 1 <= level < l.
// edgeHint, when positive, pre-sizes the emission buffer. Each level pair
// can be wired once, and only before any AddLink/RemoveLink mutation.
func (c *Clos) WireLevel(level, edgeHint int) *LevelEmitter {
	if level < 1 || level >= c.Levels() {
		panicf("topology: WireLevel(%d): level out of [1, %d)", level, c.Levels())
	}
	if c.up[level-1].offsets != nil {
		panicf("topology: WireLevel(%d): level pair already sealed", level)
	}
	if c.ovl != nil {
		panicf("topology: WireLevel(%d) after link mutation", level)
	}
	e := &LevelEmitter{
		c:     c,
		level: level,
		aLo:   c.offset[level-1],
		bLo:   c.offset[level],
	}
	e.aHi = e.aLo + int32(c.levelSize[level-1])
	e.bHi = e.bLo + int32(c.levelSize[level])
	if edgeHint > 0 {
		e.ab = make([]int32, 0, 2*edgeHint)
	}
	return e
}

// Link emits one a—b link, a at the emitter's level and b one level above
// (global switch ids, like AddLink).
func (e *LevelEmitter) Link(a, b int32) {
	if a < e.aLo || a >= e.aHi {
		panicf("topology: emitter level %d: switch %d not on level %d", e.level, a, e.level)
	}
	if b < e.bLo || b >= e.bHi {
		panicf("topology: emitter level %d: switch %d not on level %d", e.level, b, e.level+1)
	}
	e.ab = append(e.ab, a, b)
}

// Seal installs the level pair's CSR blocks (up-links of level, down-links
// of level+1), releases the emission scratch and notifies the topology's
// level sink, if any. The emitter must not be used afterwards.
func (e *LevelEmitter) Seal() {
	c := e.c
	c.up[e.level-1] = buildCSR(e.ab, 0, e.aLo, c.levelSize[e.level-1])
	c.down[e.level] = buildCSR(e.ab, 1, e.bLo, c.levelSize[e.level])
	c.wires += len(e.ab) / 2
	e.ab = nil
	if c.sink != nil {
		c.sink.LevelSealed(c, e.level)
	}
}

// buildCSR groups an emission stream of (a, b) pairs into a CSR block keyed
// on element `which` of each pair (0 = a, the lower level; 1 = b, the upper
// level), storing the opposite endpoint. The counting sort is stable:
// neighbour order per switch is stream order.
func buildCSR(ab []int32, which int, lo int32, n int) csrLevel {
	offsets := make([]int32, n+1)
	for i := which; i < len(ab); i += 2 {
		offsets[ab[i]-lo+1]++
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	neigh := make([]int32, len(ab)/2)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i := 0; i+1 < len(ab); i += 2 {
		key := ab[i+which] - lo
		neigh[cursor[key]] = ab[i+1-which]
		cursor[key]++
	}
	return csrLevel{offsets: offsets, neigh: neigh}
}

// SetLevelSink attaches a sink notified as construction seals level pairs.
// Builders with streaming variants call this before wiring; it has no
// effect on topologies built via AddLink.
func (c *Clos) SetLevelSink(s LevelSink) { c.sink = s }

// ensureOverlay returns the mutable overlay, creating it on first use. Any
// overlay mutation invalidates builder-declared descendant intervals — this
// is the single invalidation point for leafRange, so no churn path can
// forget it.
func (c *Clos) ensureOverlay() *overlay {
	if c.ovl == nil {
		c.ovl = newOverlay()
	}
	c.leafRange = nil
	return c.ovl
}

// touchUp materialises switch s's effective up-list into the overlay (no-op
// when already materialised). lev is s's level.
func (c *Clos) touchUp(s int32, lev int) {
	ovl := c.ensureOverlay()
	if _, ok := ovl.up[s]; ok {
		return
	}
	base := c.up[lev-1].row(int(s - c.offset[lev-1]))
	ovl.up[s] = append(make([]int32, 0, len(base)+1), base...)
}

// touchDown is touchUp for the down direction.
func (c *Clos) touchDown(s int32, lev int) {
	ovl := c.ensureOverlay()
	if _, ok := ovl.down[s]; ok {
		return
	}
	base := c.down[lev-1].row(int(s - c.offset[lev-1]))
	ovl.down[s] = append(make([]int32, 0, len(base)+1), base...)
}

// upAt returns the effective up-list of the i-th switch of level lev.
func (c *Clos) upAt(lev, i int) []int32 {
	if c.ovl != nil {
		if l, ok := c.ovl.up[c.offset[lev-1]+int32(i)]; ok {
			return l
		}
	}
	return c.up[lev-1].row(i)
}

// downAt returns the effective down-list of the i-th switch of level lev.
func (c *Clos) downAt(lev, i int) []int32 {
	if c.ovl != nil {
		if l, ok := c.ovl.down[c.offset[lev-1]+int32(i)]; ok {
			return l
		}
	}
	return c.down[lev-1].row(i)
}

// StoreBytes returns the resident bytes of the adjacency store: the CSR
// base (offsets + neighbour arrays, both directions) plus the overlay's
// materialised lists and the declared leaf-range table. This is the number
// the serving layer charges against cache budgets and exports as the
// rfcd_topology_bytes gauge.
func (c *Clos) StoreBytes() int {
	const levelHeader = 2 * 24 // two slice headers per csrLevel
	n := 0
	for i := range c.up {
		n += c.up[i].bytes() + c.down[i].bytes() + 2*levelHeader
	}
	if c.ovl != nil {
		n += c.ovl.bytes()
	}
	n += 4 * len(c.leafRange)
	return n
}

func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
