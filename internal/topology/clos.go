// Package topology provides the folded Clos network representation shared by
// every indirect topology in this repository (CFT, OFT, RFC) together with
// the deterministic baseline builders the paper compares against: the
// R-commodity fat-tree (CFT), the k-ary l-tree, the orthogonal fat-tree
// (OFT) and the random regular network (RRN / Jellyfish).
package topology

import (
	"fmt"

	"rfclos/internal/graph"
)

// Clos is an l-level folded Clos network per Definition 3.1 of the paper:
// switches are arranged in levels 1..l; level-1 ("leaf") switches attach
// compute nodes; level-i switches connect downward to level i-1 and upward
// to level i+1; level-l ("root") switches connect only downward.
//
// Switches carry global ids: level 1 occupies [0, N_1), level 2 the next
// N_2 ids, and so on. Terminals (compute nodes) are implicit: terminal t
// attaches to leaf switch t / TermsPerLeaf.
type Clos struct {
	// Radix is the nominal switch radix R (number of ports). Builders keep
	// every switch within this budget; Validate checks it.
	Radix int
	// TermsPerLeaf is the number of compute nodes per leaf switch.
	TermsPerLeaf int

	levelSize []int   // switch count per level, index 0 = level 1 (leaves)
	offset    []int32 // offset[i] = global id of first switch at level i+1
	up        [][]int32
	down      [][]int32
	// leafRange, when non-nil, records for every switch s the contiguous
	// descendant-leaf interval [leafRange[2s], leafRange[2s+1]). Builders
	// whose wiring makes every descendant set contiguous (the XGFT family)
	// install it after construction; any later link mutation drops it, so a
	// present range is always trustworthy. Routing builds descendant sets
	// directly from these intervals instead of unioning children.
	leafRange []int32
}

// NewEmpty creates a Clos with the given per-level switch counts and no
// inter-level links. Links are added with AddLink; the caller is responsible
// for wiring a pattern that Validate accepts.
func NewEmpty(levelSize []int, termsPerLeaf, radix int) (*Clos, error) {
	if len(levelSize) < 2 {
		return nil, fmt.Errorf("topology: need at least 2 levels, got %d", len(levelSize))
	}
	total := 0
	offset := make([]int32, len(levelSize))
	for i, n := range levelSize {
		if n <= 0 {
			return nil, fmt.Errorf("topology: level %d has non-positive size %d", i+1, n)
		}
		offset[i] = int32(total)
		total += n
	}
	if termsPerLeaf <= 0 {
		return nil, fmt.Errorf("topology: non-positive terminals per leaf %d", termsPerLeaf)
	}
	return &Clos{
		Radix:        radix,
		TermsPerLeaf: termsPerLeaf,
		levelSize:    append([]int(nil), levelSize...),
		offset:       offset,
		up:           make([][]int32, total),
		down:         make([][]int32, total),
	}, nil
}

// Levels returns l, the number of switch levels.
func (c *Clos) Levels() int { return len(c.levelSize) }

// LevelSize returns N_{level}, for level in [1, l].
func (c *Clos) LevelSize(level int) int { return c.levelSize[level-1] }

// NumSwitches returns the total switch count across all levels.
func (c *Clos) NumSwitches() int {
	last := len(c.levelSize) - 1
	return int(c.offset[last]) + c.levelSize[last]
}

// Terminals returns T, the total number of compute nodes.
func (c *Clos) Terminals() int { return c.levelSize[0] * c.TermsPerLeaf }

// SwitchID maps (level, index-within-level) to a global switch id.
func (c *Clos) SwitchID(level, idx int) int32 {
	return c.offset[level-1] + int32(idx)
}

// LevelOf returns the level (1-based) of global switch id s.
func (c *Clos) LevelOf(s int32) int {
	for i := len(c.offset) - 1; i >= 0; i-- {
		if s >= c.offset[i] {
			return i + 1
		}
	}
	panic(fmt.Sprintf("topology: switch id %d out of range", s))
}

// IndexInLevel returns s's index within its level.
func (c *Clos) IndexInLevel(s int32) int {
	return int(s - c.offset[c.LevelOf(s)-1])
}

// LeafOfTerminal returns the leaf switch id that terminal t attaches to.
func (c *Clos) LeafOfTerminal(t int) int32 { return int32(t / c.TermsPerLeaf) }

// Up returns the up-neighbour switch ids of s (owned by the Clos).
func (c *Clos) Up(s int32) []int32 { return c.up[s] }

// Down returns the down-neighbour switch ids of s (owned by the Clos).
func (c *Clos) Down(s int32) []int32 { return c.down[s] }

// setLeafRanges installs builder-computed contiguous descendant leaf
// ranges (see the leafRange field). Builders call it once, after wiring.
func (c *Clos) setLeafRanges(r []int32) { c.leafRange = r }

// LeafRange returns the contiguous descendant leaf interval [lo, hi) of
// switch s when the builder declared one and no link has been added or
// removed since; ok is false otherwise.
func (c *Clos) LeafRange(s int32) (lo, hi int, ok bool) {
	if c.leafRange == nil {
		return 0, 0, false
	}
	return int(c.leafRange[2*s]), int(c.leafRange[2*s+1]), true
}

// AddLink wires switch a at some level i to switch b at level i+1. Both are
// global ids; the call panics if they are not on adjacent levels.
func (c *Clos) AddLink(a, b int32) {
	la, lb := c.LevelOf(a), c.LevelOf(b)
	if lb != la+1 {
		panic(fmt.Sprintf("topology: AddLink(%d@L%d, %d@L%d): not adjacent levels", a, la, b, lb))
	}
	c.leafRange = nil
	c.up[a] = append(c.up[a], b)
	c.down[b] = append(c.down[b], a)
}

// RemoveLink deletes one a—b link (a at the lower level). It reports whether
// a link was removed. Used by the fault-injection experiments.
func (c *Clos) RemoveLink(a, b int32) bool {
	if !removeOne(&c.up[a], b) {
		return false
	}
	c.leafRange = nil
	if !removeOne(&c.down[b], a) {
		panic("topology: asymmetric link state")
	}
	return true
}

func removeOne(list *[]int32, v int32) bool {
	l := *list
	for i, w := range l {
		if w == v {
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return true
		}
	}
	return false
}

// Link is a directed-by-level link: A is at level i, B at level i+1.
type Link struct{ A, B int32 }

// Links returns every inter-switch link exactly once, materialised from
// EdgeSeq in the same order. Prefer EdgeSeq/LinkSeq when the caller only
// iterates: this allocates the full edge slice.
func (c *Clos) Links() []Link {
	out := make([]Link, 0, c.Wires())
	for l := range c.EdgeSeq() {
		out = append(out, l)
	}
	return out
}

// Wires returns the number of inter-switch links (network wires, excluding
// terminal attachments), matching the paper's cost accounting in §5.
func (c *Clos) Wires() int {
	n := 0
	for _, ns := range c.up {
		n += len(ns)
	}
	return n
}

// NetworkPorts returns the number of switch ports used by inter-switch
// links (twice Wires).
func (c *Clos) NetworkPorts() int { return 2 * c.Wires() }

// TotalPorts counts every switch port in use: network ports plus
// terminal-facing ports. Figure 7 plots this as the raw cost measure.
func (c *Clos) TotalPorts() int { return c.NetworkPorts() + c.Terminals() }

// Clone returns a deep copy (used by destructive fault sweeps). Adjacency
// lists are copied into two shared arenas — two allocations instead of two
// per switch, which matters when fault sweeps clone million-switch builds.
func (c *Clos) Clone() *Clos {
	cp := &Clos{
		Radix:        c.Radix,
		TermsPerLeaf: c.TermsPerLeaf,
		levelSize:    append([]int(nil), c.levelSize...),
		offset:       append([]int32(nil), c.offset...),
		up:           cloneArena(c.up),
		down:         cloneArena(c.down),
		leafRange:    append([]int32(nil), c.leafRange...),
	}
	return cp
}

// cloneArena deep-copies adjacency lists into one backing array with each
// sub-slice capacity-pinned, so later RemoveLink/AddLink on the clone cannot
// touch a neighbour's region.
func cloneArena(lists [][]int32) [][]int32 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	arena := make([]int32, 0, total)
	out := make([][]int32, len(lists))
	for i, l := range lists {
		pos := len(arena)
		arena = append(arena, l...)
		out[i] = arena[pos:len(arena):len(arena)]
	}
	return out
}

// SwitchGraph returns the undirected switch-to-switch graph, the object the
// disconnection experiments (Table 3) and diameter checks operate on.
func (c *Clos) SwitchGraph() *graph.Graph {
	g := graph.New(c.NumSwitches())
	for s := range c.up {
		for _, b := range c.up[s] {
			g.AddEdge(s, int(b))
		}
	}
	return g
}

// Validate checks structural sanity: links only between adjacent levels
// (guaranteed by AddLink), no switch exceeding the radix, every switch
// connected on its mandatory sides, and no duplicate parallel links.
func (c *Clos) Validate() error {
	l := c.Levels()
	for s := int32(0); s < int32(c.NumSwitches()); s++ {
		lev := c.LevelOf(s)
		ports := len(c.up[s]) + len(c.down[s])
		if lev == 1 {
			ports += c.TermsPerLeaf
		}
		if c.Radix > 0 && ports > c.Radix {
			return fmt.Errorf("topology: switch %d (level %d) uses %d ports > radix %d", s, lev, ports, c.Radix)
		}
		if lev < l && len(c.up[s]) == 0 {
			return fmt.Errorf("topology: switch %d (level %d) has no up-links", s, lev)
		}
		if lev > 1 && len(c.down[s]) == 0 {
			return fmt.Errorf("topology: switch %d (level %d) has no down-links", s, lev)
		}
		if dup := findDup(c.up[s]); dup >= 0 {
			return fmt.Errorf("topology: switch %d has parallel up-links to %d", s, dup)
		}
	}
	return nil
}

// ValidateRadixRegular additionally enforces the paper's radix-regular
// folded Clos shape: every level-i switch (i < l) has exactly R/2 up-links
// and R/2 down-links (terminals count as down-links at level 1), and root
// switches have up to R down-links.
func (c *Clos) ValidateRadixRegular() error {
	if err := c.Validate(); err != nil {
		return err
	}
	half := c.Radix / 2
	l := c.Levels()
	for s := int32(0); s < int32(c.NumSwitches()); s++ {
		lev := c.LevelOf(s)
		switch {
		case lev == 1:
			if c.TermsPerLeaf != half {
				return fmt.Errorf("topology: leaf has %d terminals, want R/2 = %d", c.TermsPerLeaf, half)
			}
			if len(c.up[s]) != half {
				return fmt.Errorf("topology: leaf %d has %d up-links, want %d", s, len(c.up[s]), half)
			}
		case lev < l:
			if len(c.up[s]) != half || len(c.down[s]) != half {
				return fmt.Errorf("topology: switch %d (level %d) has %d up / %d down, want %d/%d",
					s, lev, len(c.up[s]), len(c.down[s]), half, half)
			}
		default:
			if len(c.down[s]) > c.Radix {
				return fmt.Errorf("topology: root %d has %d down-links > radix %d", s, len(c.down[s]), c.Radix)
			}
		}
	}
	return nil
}

func findDup(list []int32) int32 {
	seen := make(map[int32]struct{}, len(list))
	for _, v := range list {
		if _, ok := seen[v]; ok {
			return v
		}
		seen[v] = struct{}{}
	}
	return -1
}

// String summarises the network.
func (c *Clos) String() string {
	return fmt.Sprintf("folded Clos: R=%d levels=%d sizes=%v terminals=%d wires=%d",
		c.Radix, c.Levels(), c.levelSize, c.Terminals(), c.Wires())
}
