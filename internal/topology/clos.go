// Package topology provides the folded Clos network representation shared by
// every indirect topology in this repository (CFT, OFT, RFC) together with
// the deterministic baseline builders the paper compares against: the
// R-commodity fat-tree (CFT), the k-ary l-tree, the orthogonal fat-tree
// (OFT) and the random regular network (RRN / Jellyfish).
package topology

import (
	"fmt"
	"slices"

	"rfclos/internal/graph"
)

// Clos is an l-level folded Clos network per Definition 3.1 of the paper:
// switches are arranged in levels 1..l; level-1 ("leaf") switches attach
// compute nodes; level-i switches connect downward to level i-1 and upward
// to level i+1; level-l ("root") switches connect only downward.
//
// Switches carry global ids: level 1 occupies [0, N_1), level 2 the next
// N_2 ids, and so on. Terminals (compute nodes) are implicit: terminal t
// attaches to leaf switch t / TermsPerLeaf.
//
// Adjacency lives in the CSR level store defined in csr.go: per level and
// direction one immutable offsets + neighbours block, sealed by the
// builders through LevelEmitter, with AddLink/RemoveLink churn layered in a
// per-switch overlay on top.
type Clos struct {
	// Radix is the nominal switch radix R (number of ports). Builders keep
	// every switch within this budget; Validate checks it.
	Radix int
	// TermsPerLeaf is the number of compute nodes per leaf switch.
	TermsPerLeaf int

	levelSize []int   // switch count per level, index 0 = level 1 (leaves)
	offset    []int32 // offset[i] = global id of first switch at level i+1
	// up[i] / down[i] are the sealed CSR blocks of level i+1's up- and
	// down-links. down[0] and up[l-1] stay empty: leaves have no down-links
	// and roots no up-links. Only sealing may write them: post-seal link
	// mutations go through the overlay so derived state stays honest.
	//rfclint:mutatesvia Seal
	up []csrLevel
	//rfclint:mutatesvia Seal
	down []csrLevel
	// ovl overrides the CSR rows of switches touched by AddLink/RemoveLink;
	// nil until the first mutation. ensureOverlay is the single
	// invalidation point: it materialises the overlay AND drops leafRange,
	// so every mutation path must flow through it (rfclint pins this).
	//rfclint:mutatesvia ensureOverlay
	ovl *overlay
	// wires counts inter-switch links, maintained by Seal and the mutators
	// (which reach ensureOverlay before touching adjacency).
	//rfclint:mutatesvia ensureOverlay,Seal
	wires int
	// sink, when set, observes level pairs as builders seal them.
	sink LevelSink
	// leafRange, when non-nil, records for every switch s the contiguous
	// descendant-leaf interval [leafRange[2s], leafRange[2s+1]). Builders
	// whose wiring makes every descendant set contiguous (the XGFT family)
	// install it; any later link mutation materialises the overlay and
	// thereby drops it, so a present range is always trustworthy. Routing
	// builds descendant sets directly from these intervals instead of
	// unioning children.
	//rfclint:mutatesvia ensureOverlay,setLeafRanges
	leafRange []int32
}

// NewEmpty creates a Clos with the given per-level switch counts and no
// inter-level links. Builders wire it either level pair by level pair via
// WireLevel, or link by link via AddLink; the caller is responsible for a
// pattern that Validate accepts.
func NewEmpty(levelSize []int, termsPerLeaf, radix int) (*Clos, error) {
	if len(levelSize) < 2 {
		return nil, fmt.Errorf("topology: need at least 2 levels, got %d", len(levelSize))
	}
	total := 0
	offset := make([]int32, len(levelSize))
	for i, n := range levelSize {
		if n <= 0 {
			return nil, fmt.Errorf("topology: level %d has non-positive size %d", i+1, n)
		}
		offset[i] = int32(total)
		total += n
	}
	if termsPerLeaf <= 0 {
		return nil, fmt.Errorf("topology: non-positive terminals per leaf %d", termsPerLeaf)
	}
	return &Clos{
		Radix:        radix,
		TermsPerLeaf: termsPerLeaf,
		levelSize:    append([]int(nil), levelSize...),
		offset:       offset,
		up:           make([]csrLevel, len(levelSize)),
		down:         make([]csrLevel, len(levelSize)),
	}, nil
}

// Levels returns l, the number of switch levels.
func (c *Clos) Levels() int { return len(c.levelSize) }

// LevelSize returns N_{level}, for level in [1, l].
func (c *Clos) LevelSize(level int) int { return c.levelSize[level-1] }

// NumSwitches returns the total switch count across all levels.
func (c *Clos) NumSwitches() int {
	last := len(c.levelSize) - 1
	return int(c.offset[last]) + c.levelSize[last]
}

// Terminals returns T, the total number of compute nodes.
func (c *Clos) Terminals() int { return c.levelSize[0] * c.TermsPerLeaf }

// SwitchID maps (level, index-within-level) to a global switch id.
func (c *Clos) SwitchID(level, idx int) int32 {
	return c.offset[level-1] + int32(idx)
}

// LevelOf returns the level (1-based) of global switch id s.
func (c *Clos) LevelOf(s int32) int {
	for i := len(c.offset) - 1; i >= 0; i-- {
		if s >= c.offset[i] {
			return i + 1
		}
	}
	panic(fmt.Sprintf("topology: switch id %d out of range", s))
}

// IndexInLevel returns s's index within its level.
func (c *Clos) IndexInLevel(s int32) int {
	return int(s - c.offset[c.LevelOf(s)-1])
}

// LeafOfTerminal returns the leaf switch id that terminal t attaches to.
func (c *Clos) LeafOfTerminal(t int) int32 { return int32(t / c.TermsPerLeaf) }

// Up returns the up-neighbour switch ids of s (owned by the Clos).
func (c *Clos) Up(s int32) []int32 {
	lev := c.LevelOf(s)
	return c.upAt(lev, int(s-c.offset[lev-1]))
}

// Down returns the down-neighbour switch ids of s (owned by the Clos).
func (c *Clos) Down(s int32) []int32 {
	lev := c.LevelOf(s)
	return c.downAt(lev, int(s-c.offset[lev-1]))
}

// setLeafRanges installs builder-computed contiguous descendant leaf
// ranges (see the leafRange field). Builders call it once; XGFT declares
// the ranges before wiring so level sinks can use them mid-build.
func (c *Clos) setLeafRanges(r []int32) { c.leafRange = r }

// LeafRange returns the contiguous descendant leaf interval [lo, hi) of
// switch s when the builder declared one and no link has been added or
// removed since; ok is false otherwise.
func (c *Clos) LeafRange(s int32) (lo, hi int, ok bool) {
	if c.leafRange == nil {
		return 0, 0, false
	}
	return int(c.leafRange[2*s]), int(c.leafRange[2*s+1]), true
}

// AddLink wires switch a at some level i to switch b at level i+1. Both are
// global ids; the call panics if they are not on adjacent levels. The link
// lands in the overlay, leaving sealed CSR blocks untouched.
func (c *Clos) AddLink(a, b int32) {
	la, lb := c.LevelOf(a), c.LevelOf(b)
	if lb != la+1 {
		panic(fmt.Sprintf("topology: AddLink(%d@L%d, %d@L%d): not adjacent levels", a, la, b, lb))
	}
	c.touchUp(a, la)
	c.touchDown(b, lb)
	c.ovl.up[a] = append(c.ovl.up[a], b)
	c.ovl.down[b] = append(c.ovl.down[b], a)
	c.wires++
}

// RemoveLink deletes one a—b link (a at the lower level). It reports whether
// a link was removed. Used by the fault-injection experiments. Removal keeps
// the old arena's swap-with-last order so neighbour iteration — and the rng
// consumption of routing's port pickers — is unchanged by the CSR store.
func (c *Clos) RemoveLink(a, b int32) bool {
	if !slices.Contains(c.Up(a), b) {
		return false
	}
	la := c.LevelOf(a)
	c.touchUp(a, la)
	c.touchDown(b, la+1)
	removeOne(c.ovl.up, a, b)
	if !removeOne(c.ovl.down, b, a) {
		panic("topology: asymmetric link state")
	}
	c.wires--
	return true
}

// removeOne swap-removes v from m[s], reporting whether it was present.
func removeOne(m map[int32][]int32, s, v int32) bool {
	l := m[s]
	for i, w := range l {
		if w == v {
			l[i] = l[len(l)-1]
			m[s] = l[:len(l)-1]
			return true
		}
	}
	return false
}

// Link is a directed-by-level link: A is at level i, B at level i+1.
type Link struct{ A, B int32 }

// Links returns every inter-switch link exactly once, materialised from
// EdgeSeq in the same order. Prefer EdgeSeq/LinkSeq when the caller only
// iterates: this allocates the full edge slice.
func (c *Clos) Links() []Link {
	out := make([]Link, 0, c.Wires())
	for l := range c.EdgeSeq() {
		out = append(out, l)
	}
	return out
}

// Wires returns the number of inter-switch links (network wires, excluding
// terminal attachments), matching the paper's cost accounting in §5.
func (c *Clos) Wires() int { return c.wires }

// NetworkPorts returns the number of switch ports used by inter-switch
// links (twice Wires).
func (c *Clos) NetworkPorts() int { return 2 * c.Wires() }

// TotalPorts counts every switch port in use: network ports plus
// terminal-facing ports. Figure 7 plots this as the raw cost measure.
func (c *Clos) TotalPorts() int { return c.NetworkPorts() + c.Terminals() }

// Clone returns a deep copy (used by destructive fault sweeps). The sealed
// CSR blocks are immutable and shared with the clone — only the overlay and
// the leaf-range table are copied — so cloning a million-switch build costs
// bytes proportional to its fault churn, not its size.
func (c *Clos) Clone() *Clos {
	cp := &Clos{
		Radix:        c.Radix,
		TermsPerLeaf: c.TermsPerLeaf,
		levelSize:    append([]int(nil), c.levelSize...),
		offset:       append([]int32(nil), c.offset...),
		up:           slices.Clone(c.up),
		down:         slices.Clone(c.down),
		wires:        c.wires,
		leafRange:    append([]int32(nil), c.leafRange...),
	}
	if c.ovl != nil {
		cp.ovl = c.ovl.clone()
	}
	return cp
}

// SwitchGraph returns the undirected switch-to-switch graph, the object the
// disconnection experiments (Table 3) and diameter checks operate on.
func (c *Clos) SwitchGraph() *graph.Graph {
	g := graph.New(c.NumSwitches())
	for l := range c.EdgeSeq() {
		g.AddEdge(int(l.A), int(l.B))
	}
	return g
}

// Validate checks structural sanity: links only between adjacent levels
// (guaranteed by AddLink and the emitters), no switch exceeding the radix,
// every switch connected on its mandatory sides, and no duplicate parallel
// links.
func (c *Clos) Validate() error {
	l := c.Levels()
	for s := int32(0); s < int32(c.NumSwitches()); s++ {
		lev := c.LevelOf(s)
		up, down := c.Up(s), c.Down(s)
		ports := len(up) + len(down)
		if lev == 1 {
			ports += c.TermsPerLeaf
		}
		if c.Radix > 0 && ports > c.Radix {
			return fmt.Errorf("topology: switch %d (level %d) uses %d ports > radix %d", s, lev, ports, c.Radix)
		}
		if lev < l && len(up) == 0 {
			return fmt.Errorf("topology: switch %d (level %d) has no up-links", s, lev)
		}
		if lev > 1 && len(down) == 0 {
			return fmt.Errorf("topology: switch %d (level %d) has no down-links", s, lev)
		}
		if dup := findDup(up); dup >= 0 {
			return fmt.Errorf("topology: switch %d has parallel up-links to %d", s, dup)
		}
	}
	return nil
}

// ValidateRadixRegular additionally enforces the paper's radix-regular
// folded Clos shape: every level-i switch (i < l) has exactly R/2 up-links
// and R/2 down-links (terminals count as down-links at level 1), and root
// switches have up to R down-links.
func (c *Clos) ValidateRadixRegular() error {
	if err := c.Validate(); err != nil {
		return err
	}
	half := c.Radix / 2
	l := c.Levels()
	for s := int32(0); s < int32(c.NumSwitches()); s++ {
		lev := c.LevelOf(s)
		up, down := c.Up(s), c.Down(s)
		switch {
		case lev == 1:
			if c.TermsPerLeaf != half {
				return fmt.Errorf("topology: leaf has %d terminals, want R/2 = %d", c.TermsPerLeaf, half)
			}
			if len(up) != half {
				return fmt.Errorf("topology: leaf %d has %d up-links, want %d", s, len(up), half)
			}
		case lev < l:
			if len(up) != half || len(down) != half {
				return fmt.Errorf("topology: switch %d (level %d) has %d up / %d down, want %d/%d",
					s, lev, len(up), len(down), half, half)
			}
		default:
			if len(down) > c.Radix {
				return fmt.Errorf("topology: root %d has %d down-links > radix %d", s, len(down), c.Radix)
			}
		}
	}
	return nil
}

func findDup(list []int32) int32 {
	seen := make(map[int32]struct{}, len(list))
	for _, v := range list {
		if _, ok := seen[v]; ok {
			return v
		}
		seen[v] = struct{}{}
	}
	return -1
}

// String summarises the network.
func (c *Clos) String() string {
	return fmt.Sprintf("folded Clos: R=%d levels=%d sizes=%v terminals=%d wires=%d",
		c.Radix, c.Levels(), c.levelSize, c.Terminals(), c.Wires())
}
