package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// closJSON is the on-disk schema for a folded Clos network. Links are
// stored as [lower, upper] global switch id pairs.
type closJSON struct {
	Radix        int      `json:"radix"`
	TermsPerLeaf int      `json:"terms_per_leaf"`
	LevelSizes   []int    `json:"level_sizes"`
	Links        [][2]int `json:"links"`
}

// WriteJSON serialises the network. The format round-trips through
// ReadJSON and is stable for storage and interchange.
func (c *Clos) WriteJSON(w io.Writer) error {
	out := closJSON{
		Radix:        c.Radix,
		TermsPerLeaf: c.TermsPerLeaf,
		LevelSizes:   append([]int(nil), c.levelSize...),
	}
	for _, l := range c.Links() {
		out.Links = append(out.Links, [2]int{int(l.A), int(l.B)})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserialises a network written by WriteJSON, validating its
// structure.
func ReadJSON(r io.Reader) (*Clos, error) {
	var in closJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: decoding: %w", err)
	}
	c, err := NewEmpty(in.LevelSizes, in.TermsPerLeaf, in.Radix)
	if err != nil {
		return nil, err
	}
	total := int32(c.NumSwitches())
	for i, l := range in.Links {
		a, b := int32(l[0]), int32(l[1])
		if a < 0 || a >= total || b < 0 || b >= total {
			return nil, fmt.Errorf("topology: link %d (%d-%d) out of range", i, a, b)
		}
		if c.LevelOf(b) != c.LevelOf(a)+1 {
			return nil, fmt.Errorf("topology: link %d (%d-%d) not between adjacent levels", i, a, b)
		}
		c.AddLink(a, b)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("topology: loaded network invalid: %w", err)
	}
	return c, nil
}

// WriteDOT emits the network in Graphviz DOT format, one rank per level,
// for visual inspection of small instances (Figures 1, 2 and 4 of the
// paper render directly from this).
func (c *Clos) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph clos {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [shape=box, fontsize=10];")
	for lev := 1; lev <= c.Levels(); lev++ {
		fmt.Fprintf(bw, "  { rank=same;")
		for i := 0; i < c.LevelSize(lev); i++ {
			fmt.Fprintf(bw, " s%d;", c.SwitchID(lev, i))
		}
		fmt.Fprintln(bw, " }")
	}
	for _, l := range c.Links() {
		fmt.Fprintf(bw, "  s%d -- s%d;\n", l.A, l.B)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList emits one "a b" line per link (lower id first), a format
// digestible by standard graph tooling.
func (c *Clos) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, l := range c.Links() {
		if _, err := fmt.Fprintln(bw, l.A, l.B); err != nil {
			return err
		}
	}
	return bw.Flush()
}
