package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// closJSON is the on-disk schema for a folded Clos network. Links are
// stored as [lower, upper] global switch id pairs. WriteJSON streams the
// same schema by hand (its output is pinned byte-identical to
// encoding/json's by TestStreamedExportGoldens); this struct remains the
// decode side.
type closJSON struct {
	Radix        int      `json:"radix"`
	TermsPerLeaf int      `json:"terms_per_leaf"`
	LevelSizes   []int    `json:"level_sizes"`
	Links        [][2]int `json:"links"`
}

// WriteJSON serialises the network, streaming links from EdgeSeq so memory
// stays constant regardless of topology size. The format round-trips
// through ReadJSON and is stable for storage and interchange; output is
// byte-identical to encoding/json's compact encoding of closJSON (with
// "links":[] rather than null for the degenerate edgeless case).
func (c *Clos) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 32)
	bw.WriteString(`{"radix":`)
	bw.Write(strconv.AppendInt(buf, int64(c.Radix), 10))
	bw.WriteString(`,"terms_per_leaf":`)
	bw.Write(strconv.AppendInt(buf, int64(c.TermsPerLeaf), 10))
	bw.WriteString(`,"level_sizes":[`)
	for i, n := range c.levelSize {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.Write(strconv.AppendInt(buf, int64(n), 10))
	}
	bw.WriteString(`],"links":[`)
	first := true
	for l := range c.EdgeSeq() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		buf = append(buf[:0], '[')
		buf = strconv.AppendInt(buf, int64(l.A), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(l.B), 10)
		buf = append(buf, ']')
		bw.Write(buf)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// ReadJSON deserialises a network written by WriteJSON, validating its
// structure.
func ReadJSON(r io.Reader) (*Clos, error) {
	var in closJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: decoding: %w", err)
	}
	c, err := NewEmpty(in.LevelSizes, in.TermsPerLeaf, in.Radix)
	if err != nil {
		return nil, err
	}
	// Bucket links by lower-endpoint level, then seal one emitter per level
	// pair. Bucketing preserves file order within each pair, and the
	// emitter's stable grouping preserves order within each switch, so the
	// loaded adjacency matches what link-by-link AddLink produced — but the
	// graph lands in the immutable CSR base instead of the overlay.
	total := int32(c.NumSwitches())
	buckets := make([][]int32, c.Levels())
	for i, l := range in.Links {
		a, b := int32(l[0]), int32(l[1])
		if a < 0 || a >= total || b < 0 || b >= total {
			return nil, fmt.Errorf("topology: link %d (%d-%d) out of range", i, a, b)
		}
		la := c.LevelOf(a)
		if c.LevelOf(b) != la+1 {
			return nil, fmt.Errorf("topology: link %d (%d-%d) not between adjacent levels", i, a, b)
		}
		buckets[la-1] = append(buckets[la-1], a, b)
	}
	for lev := 1; lev < c.Levels(); lev++ {
		pairs := buckets[lev-1]
		e := c.WireLevel(lev, len(pairs)/2)
		for j := 0; j+1 < len(pairs); j += 2 {
			e.Link(pairs[j], pairs[j+1])
		}
		e.Seal()
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("topology: loaded network invalid: %w", err)
	}
	return c, nil
}

// WriteDOT emits the network in Graphviz DOT format, one rank per level,
// for visual inspection of small instances (Figures 1, 2 and 4 of the
// paper render directly from this).
func (c *Clos) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph clos {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [shape=box, fontsize=10];")
	for lev := 1; lev <= c.Levels(); lev++ {
		fmt.Fprintf(bw, "  { rank=same;")
		for i := 0; i < c.LevelSize(lev); i++ {
			fmt.Fprintf(bw, " s%d;", c.SwitchID(lev, i))
		}
		fmt.Fprintln(bw, " }")
	}
	for l := range c.EdgeSeq() {
		writeDOTEdge(bw, int64(l.A), int64(l.B))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList emits one "a b" line per link (lower id first), a format
// digestible by standard graph tooling, streamed from EdgeSeq.
func (c *Clos) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for l := range c.EdgeSeq() {
		writeEdgeLine(bw, int64(l.A), int64(l.B))
	}
	return bw.Flush()
}

// writeEdgeLine appends "a b\n" (the fmt.Fprintln(w, a, b) encoding) without
// fmt's reflection cost — edge lists dominate large exports.
func writeEdgeLine(bw *bufio.Writer, a, b int64) {
	var buf [24]byte
	out := strconv.AppendInt(buf[:0], a, 10)
	out = append(out, ' ')
	out = strconv.AppendInt(out, b, 10)
	out = append(out, '\n')
	bw.Write(out)
}

// writeDOTEdge appends "  sA -- sB;\n", the per-link line of the DOT
// encoders.
func writeDOTEdge(bw *bufio.Writer, a, b int64) {
	var buf [32]byte
	out := append(buf[:0], ' ', ' ', 's')
	out = strconv.AppendInt(out, a, 10)
	out = append(out, ' ', '-', '-', ' ', 's')
	out = strconv.AppendInt(out, b, 10)
	out = append(out, ';', '\n')
	bw.Write(out)
}
