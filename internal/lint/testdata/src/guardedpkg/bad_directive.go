package guardedpkg

// badSpec carries a guardedby directive naming a mutex that does not exist:
// the malformed directive is itself a finding, so annotation typos cannot
// silently disable checking.
type badSpec struct {
	//rfclint:guardedby missing
	x int //lintwant:lock-discipline
}
