// Package guardedpkg exercises the lock-discipline rule: //rfclint:guardedby
// fields must be accessed with the named sibling mutex held (or through
// sync/atomic for guardedby atomic), and //rfclint:locked functions demand
// the lock at every call site. The non-firing cases pin the lexical model:
// defer'd unlocks, the early-return-unlock idiom, and constructor writes to
// fresh locals are all legal.
package guardedpkg

import (
	"sync"
	"sync/atomic"
)

type counterBox struct {
	mu sync.RWMutex
	//rfclint:guardedby mu
	n int
	//rfclint:guardedby atomic
	hot atomic.Int64
}

// newBox populates a fresh local: construction is exempt.
func newBox() *counterBox {
	b := &counterBox{}
	b.n = 1
	return b
}

func goodRead(b *counterBox) int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n
}

func goodRLockRead(b *counterBox) int {
	b.mu.RLock()
	n := b.n
	b.mu.RUnlock()
	return n
}

func goodDeferWrite(b *counterBox) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// goodEarlyReturn is the Cache.Get idiom: the unlock inside the hit branch
// must not clobber the lock state of the fall-through path.
func goodEarlyReturn(b *counterBox, hit bool) int {
	b.mu.Lock()
	if hit {
		n := b.n
		b.mu.Unlock()
		return n
	}
	b.n = 0
	b.mu.Unlock()
	return 0
}

func badRead(b *counterBox) int {
	return b.n //lintwant:lock-discipline
}

func badWrite(b *counterBox) {
	b.n = 7 //lintwant:lock-discipline
}

func badWriteUnderRLock(b *counterBox) {
	b.mu.RLock()
	b.n++ //lintwant:lock-discipline
	b.mu.RUnlock()
}

// badCondLock pins the block-scoping: a lock taken in one branch never
// blesses code outside it.
func badCondLock(b *counterBox, ok bool) int {
	if ok {
		b.mu.Lock()
		b.mu.Unlock()
	}
	return b.n //lintwant:lock-discipline
}

// allowedPeek is the sanctioned exception path.
func allowedPeek(b *counterBox) int {
	return b.n //rfclint:allow lock-discipline -- racy telemetry read, tolerated
}

func goodAtomic(b *counterBox) int64 {
	b.hot.Store(1)
	return b.hot.Load()
}

func badAtomicEscape(b *counterBox) {
	p := &b.hot //lintwant:lock-discipline
	p.Store(2)
}

// bumpLocked pushes the obligation to callers; its own body is checked as
// if the lock were held.
//
//rfclint:locked mu
func (b *counterBox) bumpLocked() {
	b.n++
}

func goodLockedCaller(b *counterBox) {
	b.mu.Lock()
	b.bumpLocked()
	b.mu.Unlock()
}

func badLockedCaller(b *counterBox) {
	b.bumpLocked() //lintwant:lock-discipline
}
