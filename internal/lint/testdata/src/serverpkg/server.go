// Package serverpkg models a serving-layer package (internal/service,
// cmd/rfcd): the fixture config lists it in BOTH Deterministic and Server,
// and the Server entry must win — wall-clock reads for request timings and
// timeouts are the point of a server, so no rule may fire here.
package serverpkg

import "time"

type handler struct {
	started time.Time
}

func newHandler() *handler { return &handler{started: time.Now()} }

func (h *handler) uptimeNS() int64 { return time.Since(h.started).Nanoseconds() }

func requestCounts(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
