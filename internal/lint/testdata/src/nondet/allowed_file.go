package nondet

import "time"

// This whole file is on the test Config's AllowFiles list (the
// progress-reporting exemption), so its wall-clock read is not flagged.
func progressStamp() time.Time { return time.Now() }
