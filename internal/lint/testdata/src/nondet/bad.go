// Package nondet exercises the nondet-source rule: forbidden randomness
// and wall-clock imports/calls in a deterministic package. Lines expecting
// a diagnostic carry a lintwant marker checked by lint_test.go.
package nondet

import (
	crand "crypto/rand" //lintwant:nondet-source
	"math/rand"         //lintwant:nondet-source
	"time"
)

func drawBad() int { return rand.Int() }

func readBad(b []byte) { _, _ = crand.Read(b) }

func clockBad() time.Time { return time.Now() } //lintwant:nondet-source

func sinceBad(t time.Time) time.Duration { return time.Since(t) } //lintwant:nondet-source
