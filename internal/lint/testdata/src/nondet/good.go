package nondet

import "rfclos/internal/rng"

// drawGood is the sanctioned pattern: a stream derived from a seed and
// coordinates.
func drawGood(seed uint64) int {
	return rng.At(seed, rng.StringCoord("nondet/good")).Intn(100)
}

// durationGood shows that using the time package for durations (no clock
// read) is fine.
func durationGood(cycles int) int { return cycles * 2 }
