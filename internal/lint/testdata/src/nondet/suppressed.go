package nondet

import "time"

// clockAllowed shows the escape hatch: an annotated wall-clock read (the
// justification travels with the suppression).
func clockAllowed() time.Time {
	return time.Now() //rfclint:allow nondet-source -- log-only timestamp
}

// clockAllowedAbove shows the annotation on the line above the finding.
func clockAllowedAbove() time.Time {
	//rfclint:allow nondet-source
	return time.Now()
}
