package splitpar

import (
	"rfclos/internal/engine"
	"rfclos/internal/rng"
)

// sequentialByConstruction runs with exactly one worker, so drawing from
// the captured stream is deterministic; the annotation records why.
func sequentialByConstruction(parent *rng.Rand) ([]int, error) {
	return engine.Run(8, 1, func(job int) (int, error) {
		//rfclint:allow split-in-parallel -- workers pinned to 1
		return parent.Intn(100), nil
	})
}
