package splitpar

import (
	"rfclos/internal/engine"
	"rfclos/internal/rng"
)

// coordinateSeeded is the sanctioned pattern: each job derives its own
// stream from the root seed and its coordinates, so results are identical
// for any worker count.
func coordinateSeeded(seed uint64) ([]int, error) {
	return engine.Run(8, 4, func(job int) (int, error) {
		r := rng.At(seed, rng.StringCoord("splitpar/good"), uint64(job))
		return r.Intn(100), nil
	})
}

// splitOutsideWorker may use Split freely in sequential code.
func splitOutsideWorker(parent *rng.Rand) int {
	child := parent.Split()
	return child.Intn(100)
}
