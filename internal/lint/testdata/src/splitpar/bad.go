// Package splitpar exercises the split-in-parallel rule: order-dependent
// rng use inside engine worker closures.
package splitpar

import (
	"rfclos/internal/engine"
	"rfclos/internal/rng"
)

// splitInWorker derives a child stream with Split inside the worker: the
// child depends on how many draws happened before it, i.e. on scheduling.
func splitInWorker(seed uint64) ([]int, error) {
	return engine.Run(8, 4, func(job int) (int, error) {
		r := rng.At(seed, uint64(job))
		child := r.Split() //lintwant:split-in-parallel
		return child.Intn(100), nil
	})
}

// capturedParent draws from a generator captured from the enclosing scope:
// jobs then race for positions in one shared stream.
func capturedParent(parent *rng.Rand) ([]int, error) {
	return engine.Run(8, 4, func(job int) (int, error) {
		return parent.Intn(100), nil //lintwant:split-in-parallel
	})
}

// capturedInShard shows the same capture through RunShard.
func capturedInShard(parent *rng.Rand, sh engine.Shard) ([]int, error) {
	return engine.RunShard(8, 4, sh, func(job int) (int, error) {
		return parent.Intn(100), nil //lintwant:split-in-parallel
	})
}
