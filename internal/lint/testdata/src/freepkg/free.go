// Package freepkg is NOT on the deterministic list (like cmd/ packages),
// so none of the determinism rules fire here despite the wall-clock read,
// math/rand import, and unsorted map collection.
package freepkg

import (
	"math/rand"
	"time"
)

func stamp() time.Time { return time.Now() }

func draw() int { return rand.Int() }

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
