package leafsetpkg

import "time"

// buildDuration measures how long a rebuild took for a log line only — the
// duration never feeds the routing state, so the clock read is annotated.
func buildDuration(rebuild func()) time.Duration {
	start := time.Now() //rfclint:allow nondet-source -- log-only timing
	rebuild()
	return time.Since(start) //rfclint:allow nondet-source -- log-only timing
}
