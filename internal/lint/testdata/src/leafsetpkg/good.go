// Package leafsetpkg models the compressed-container routing core
// (internal/routing's LeafSet types) as a deterministic-class fixture: the
// sanctioned idioms — fixed-order container histograms instead of map
// ranges, seeded rng streams for sampling — must lint clean, and the usual
// wall-clock and map-iteration violations must still fire.
package leafsetpkg

import "rfclos/internal/rng"

// reprOrder is the fixed container order the real CoverRepr uses: an array,
// not a map, so the histogram renders identically on every run.
var reprOrder = [...]string{"run", "sparse", "comp", "bits", "full", "empty"}

// histogram counts containers per kind into a fixed-order array.
func histogram(kinds []int) [len(reprOrder)]int {
	var h [len(reprOrder)]int
	for _, k := range kinds {
		h[k]++
	}
	return h
}

// sampleRun picks a leaf uniformly from a run container's [lo, hi) range
// using a coordinate-derived stream, the sanctioned randomness source.
func sampleRun(seed uint64, lo, hi int) int {
	return lo + rng.At(seed, rng.StringCoord("leafsetpkg/sample"), uint64(lo)).Intn(hi-lo)
}
