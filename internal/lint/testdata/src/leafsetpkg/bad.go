package leafsetpkg

import "time"

// buildTimed stamps a cover build with the wall clock — forbidden in the
// deterministic class (build output must not depend on when it ran).
func buildTimed() int64 {
	return time.Now().UnixNano() //lintwant:nondet-source
}

// histogramByName tallies containers through a map and then ranges over it,
// so the histogram order varies run to run.
func histogramByName(kinds []string) []string {
	m := map[string]int{}
	for _, k := range kinds {
		m[k]++
	}
	out := []string{}
	for k := range m { //lintwant:map-range-order
		out = append(out, k)
	}
	return out
}
