package overlaypkg

// ghost names a nonexistent invalidation function: the unresolvable
// directive is itself a finding, anchored at the field.
type ghost struct {
	//rfclint:mutatesvia nonexistent
	data []byte //lintwant:overlay-invalidate
}
