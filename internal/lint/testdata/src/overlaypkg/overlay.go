// Package overlaypkg exercises the overlay-invalidate rule: the rows field
// models topology.Clos adjacency whose derived state (dirty flag standing in
// for LeafRange/StoreBytes) must be invalidated before any mutation, so
// every write must happen inside — or on a call path into — the designated
// invalidation function.
package overlaypkg

type store struct {
	//rfclint:mutatesvia invalidate
	rows  []int
	dirty bool
}

// newStore populates a fresh local: construction is exempt.
func newStore() *store {
	s := &store{}
	s.rows = make([]int, 4)
	return s
}

// invalidate is the designated mutation point — it may write rows directly.
func (s *store) invalidate() {
	s.dirty = true
	s.rows = nil
}

// add reaches invalidate through the call graph, so its own write is legal.
func (s *store) add(v int) {
	s.invalidate()
	s.rows = append(s.rows, v)
}

// sneak writes adjacency without ever invalidating: the core violation.
func (s *store) sneak(v int) {
	s.rows[0] = v //lintwant:overlay-invalidate
}

// feed leaks the field to a module function that may mutate it.
func (s *store) feed() {
	fill(s.rows) //lintwant:overlay-invalidate
}

func fill(rows []int) {
	for i := range rows {
		rows[i] = i
	}
}

// snapshot only reads: copy's source argument and len are not writes.
func (s *store) snapshot() []int {
	out := make([]int, len(s.rows))
	copy(out, s.rows)
	return out
}

// tweak is the sanctioned exception path.
func (s *store) tweak() {
	s.rows[0]++ //rfclint:allow overlay-invalidate -- test-only backdoor
}
