package csrpkg

import "time"

// sealStamped records when the level was sealed — forbidden in the
// deterministic class: the store's contents must not depend on wall time.
func sealStamped() int64 {
	return time.Now().UnixNano() //lintwant:nondet-source
}

// exportOverlay flattens the overlay in map order: the emitted link list
// differs between runs, which would break byte-stable exports.
func exportOverlay(ovl map[int32][]int32) [][2]int32 {
	var out [][2]int32
	for s, row := range ovl { //lintwant:map-range-order
		for _, b := range row {
			out = append(out, [2]int32{s, b})
		}
	}
	return out
}
