package csrpkg

// overlayTouchedRows collects which switches have materialised overlay
// rows, for a debug counter treated as an unordered set — the annotation
// documents the exception.
func overlayTouchedRows(ovl map[int32][]int32) []int32 {
	var out []int32
	//rfclint:allow map-range-order -- debug counter, result is an unordered set
	for s := range ovl {
		out = append(out, s)
	}
	return out
}
