// Package csrpkg models the CSR level store (internal/topology's csrLevel
// + mutation overlay) as a deterministic-class fixture: the sanctioned
// idioms — counting-sort sealing over flat pair buffers, keyed overlay
// lookups, order-insensitive overlay folds — must lint clean, while the
// violations a store like this invites (ranging over the overlay map to
// export, stamping seals with the wall clock) must still fire.
package csrpkg

// sealLevel is the emitter's counting-sort seal: two ordered passes over
// the interleaved (a, b) pair buffer, so the sealed neighbour order depends
// only on emission order. Nothing to flag.
func sealLevel(ab []int32, lo, n int) (offsets, neigh []int32) {
	offsets = make([]int32, n+1)
	for i := 0; i < len(ab); i += 2 {
		offsets[ab[i]-int32(lo)+1]++
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	neigh = make([]int32, len(ab)/2)
	next := append([]int32(nil), offsets[:n]...)
	for i := 0; i < len(ab); i += 2 {
		s := ab[i] - int32(lo)
		neigh[next[s]] = ab[i+1]
		next[s]++
	}
	return offsets, neigh
}

// rowFor is the read path: a keyed overlay lookup shadowing the CSR row.
// Keyed map access is deterministic; only ranging is order-sensitive.
func rowFor(ovl map[int32][]int32, offsets, neigh []int32, s int32) []int32 {
	if row, ok := ovl[s]; ok {
		return row
	}
	return neigh[offsets[s]:offsets[s+1]]
}

// overlayWires folds the overlay into a wire count: addition commutes, so
// the map range is order-insensitive and clean.
func overlayWires(ovl map[int32][]int32) int {
	n := 0
	for _, row := range ovl {
		n += len(row)
	}
	return n
}
