package flowpkg

import "time"

// roundStamped times a water-filling round off the wall clock — forbidden
// in the deterministic class: solver output must not depend on when it ran.
func roundStamped() int64 {
	return time.Now().UnixNano() //lintwant:nondet-source
}

// emitRates flattens the per-flow rate map in map order: the emitted rate
// list differs between runs, which would break byte-stable reports.
func emitRates(rates map[int]float64) []float64 {
	var out []float64
	for _, r := range rates { //lintwant:map-range-order
		out = append(out, r)
	}
	return out
}
