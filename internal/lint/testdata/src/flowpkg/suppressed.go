package flowpkg

// saturatedLinks collects which links froze this round, for a debug
// counter treated as an unordered set — the annotation documents the
// exception.
func saturatedLinks(sat map[int32]bool) []int32 {
	var out []int32
	//rfclint:allow map-range-order -- debug counter, result is an unordered set
	for l := range sat {
		out = append(out, l)
	}
	return out
}
