// Package flowpkg models the flow-level max-min-fair solver
// (internal/flow) as a deterministic-class fixture: the sanctioned idioms —
// serial water-filling over index-ordered flow slices, keyed saturation
// lookups, commutative folds over link-load maps — must lint clean, while
// the violations a solver like this invites (timing rounds with the wall
// clock, ranging over a rate map to emit results) must still fire.
package flowpkg

// waterFillRound advances every unfrozen flow by the round's fair share in
// flow-index order: serial fixed-order arithmetic, byte-stable at any
// worker count. Nothing to flag.
func waterFillRound(rates []float64, frozen []bool, share float64) {
	for i := range rates {
		if !frozen[i] {
			rates[i] += share
		}
	}
}

// linkLoad folds per-link utilisation into a total: addition commutes, so
// the map range is order-insensitive and clean.
func linkLoad(load map[int32]float64) float64 {
	total := 0.0
	for _, u := range load {
		total += u
	}
	return total
}

// isSaturated is the freeze check: keyed map access is deterministic; only
// ranging is order-sensitive.
func isSaturated(sat map[int32]bool, link int32) bool {
	return sat[link]
}
