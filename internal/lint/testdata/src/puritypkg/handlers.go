package puritypkg

import (
	"net/http"
	"sort"
	"time"
)

// handlerDirect reads the clock in its own body: the shortest witness path.
func handlerDirect(w http.ResponseWriter, r *http.Request) {
	_ = time.Now() //lintwant:handler-purity
	w.WriteHeader(http.StatusOK)
}

// handlerDeep reaches a nondeterministic source three hops down.
func handlerDeep(w http.ResponseWriter, r *http.Request) {
	hop1()
}

func hop1() { hop2() }

func hop2() {
	_ = time.Since(epoch) //lintwant:handler-purity
}

var epoch time.Time

// dispatcher models a call through a function-typed struct field, the
// Cache.build shape: the edge resolves by signature to every address-taken
// function, here stamp.
type dispatcher struct {
	fn func() int64
}

func newDispatcher() dispatcher { return dispatcher{fn: stamp} }

func stamp() int64 {
	return time.Now().UnixNano() //lintwant:handler-purity
}

func handlerIndirect(w http.ResponseWriter, r *http.Request) {
	d := newDispatcher()
	_ = d.fn()
}

// Source models interface dispatch: class-hierarchy analysis must find the
// lone implementation and follow it into the global write.
type Source interface {
	Value() int
}

type counterSource struct{}

var calls int

func (counterSource) Value() int {
	calls++ //lintwant:handler-purity
	return calls
}

func handlerIface(w http.ResponseWriter, r *http.Request) {
	var s Source = counterSource{}
	_ = s.Value()
}

// handlerPure is the non-firing case: everything it reaches is a pure
// function of the request, including a map range whose keys are sorted
// before use.
func handlerPure(w http.ResponseWriter, r *http.Request) {
	for _, k := range sortedKeys(map[string]int{"a": 1}) {
		_, _ = w.Write([]byte(k))
	}
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// handlerAllowed reaches a clock read that is explicitly sanctioned at the
// source line — the metrics-timing idiom. No finding may survive.
func handlerAllowed(w http.ResponseWriter, r *http.Request) {
	recordLatency()
}

func recordLatency() {
	_ = time.Now() //rfclint:allow handler-purity -- feeds a latency gauge, never response bytes
}
