// Package puritypkg exercises the interprocedural handler-purity rule: the
// fixture config points ExhibitPkg at this package, so the Exhibit type
// below plays the role of internal/exhibit's registry, and the handlers in
// handlers.go play the role of internal/service. The package is deliberately
// NOT on the Deterministic list — every finding here must come from the
// call-graph pass, not the per-function nondet-source rule.
package puritypkg

import (
	"math/rand"
	"time"
)

// Exhibit mirrors the real registry entry: Run is a purity entry point.
type Exhibit struct {
	Name string
	Run  func()
}

var exhibits []Exhibit

// register wires up one literal Run and one factory-built Run. register
// itself is unreachable from any root, so its append to package state is not
// a finding; the Run values it registers are roots.
func register() {
	exhibits = append(exhibits, Exhibit{
		Name: "lit",
		Run: func() {
			_ = time.Now() //lintwant:handler-purity
		},
	})
	exhibits = append(exhibits, Exhibit{Name: "sweep", Run: sweep(3)})
}

// sweep is an exhibit factory: the root is the factory itself, and the
// containment edge to the returned literal carries reachability into doRand.
func sweep(n int) func() {
	return func() {
		for i := 0; i < n; i++ {
			doRand()
		}
	}
}

func doRand() {
	_ = rand.Float64() //lintwant:handler-purity
}
