package seedcoord

import "rfclos/internal/rng"

// sharedStream and sharedStreamTwin deliberately key the same stream (a
// reproduction of one construction from two call paths); the duplicate
// site carries the annotation.
func sharedStream(seed uint64) uint64 {
	return rng.DeriveSeed(seed, rng.StringCoord("dup/on-purpose"))
}

func sharedStreamTwin(seed uint64) uint64 {
	//rfclint:allow seed-coord-literal -- same construction, two call paths
	return rng.DeriveSeed(seed, rng.StringCoord("dup/on-purpose"))
}
