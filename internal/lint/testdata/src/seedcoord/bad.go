// Package seedcoord exercises the seed-coord-literal rule: duplicated
// string coordinates that make "independent" streams identical.
package seedcoord

import "rfclos/internal/rng"

// topoStream and trafficStream were meant to be independent but share the
// coordinate "dup/stream" — they draw identical values.
func topoStream(seed uint64) uint64 {
	return rng.DeriveSeed(seed, rng.StringCoord("dup/stream"))
}

func trafficStream(seed uint64) uint64 {
	return rng.DeriveSeed(seed, rng.StringCoord("dup/stream")) //lintwant:seed-coord-literal
}
