package seedcoord

import "rfclos/internal/rng"

// Distinct labels, distinct streams: the repository's slash-scoped naming
// convention.
func genStream(seed uint64) uint64 {
	return rng.DeriveSeed(seed, rng.StringCoord("good/gen"))
}

func trialStream(seed uint64) uint64 {
	return rng.DeriveSeed(seed, rng.StringCoord("good/trial"))
}

// computedLabels are distinguished by their dynamic part and not compared.
func computedLabels(seed uint64, name string) (uint64, uint64) {
	a := rng.DeriveSeed(seed, rng.StringCoord("good/pfx/"+name))
	b := rng.DeriveSeed(seed, rng.StringCoord("good/pfx/"+name))
	return a, b
}
