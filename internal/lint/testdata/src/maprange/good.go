package maprange

import "sort"

// sumValues is order-insensitive: addition commutes.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sortedKeys is the canonical fix the rule recommends — the append feeds a
// sort in the same block, so the result is independent of iteration order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// invert writes keyed entries into another map: order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sliceAppend ranges over a slice, not a map: ordered, nothing to flag.
func sliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
