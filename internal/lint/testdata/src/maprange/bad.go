// Package maprange exercises the map-range-order rule: ranging over maps
// with order-sensitive loop bodies.
package maprange

import (
	"fmt"
	"strings"

	"rfclos/internal/rng"
)

// collectUnsorted appends in map order and never sorts: the slice order
// differs between runs.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { //lintwant:map-range-order
		out = append(out, k)
	}
	return out
}

// drawPerEntry consumes rng draws in map order: the stream position after
// the loop differs between runs.
func drawPerEntry(m map[string]int, r *rng.Rand) int {
	total := 0
	for range m { //lintwant:map-range-order
		total += r.Intn(10)
	}
	return total
}

// renderUnsorted emits bytes in map order.
func renderUnsorted(m map[string]int, b *strings.Builder) {
	for k, v := range m { //lintwant:map-range-order
		fmt.Fprintf(b, "%s=%d\n", k, v)
	}
}

// appendTwoTargets appends to two different slices, so the sorted-later
// exemption cannot apply even though one of them is sorted afterwards.
func appendTwoTargets(m map[string]int) ([]string, []int) {
	var ks []string
	var vs []int
	for k, v := range m { //lintwant:map-range-order
		ks = append(ks, k)
		vs = append(vs, v)
	}
	return ks, vs
}
