package maprange

// collectForSet appends in map order on purpose: the caller treats the
// result as an unordered set, so the annotation documents the exception.
func collectForSet(m map[string]int) []string {
	var out []string
	//rfclint:allow map-range-order -- result is an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}
