package lint

import (
	"go/ast"
	"go/types"
)

// map-range-order: Go randomizes map iteration order, so a `for range` over
// a map whose body has order-sensitive effects makes output bytes (or rng
// stream consumption) differ between runs. The rule flags such loops in
// deterministic packages; the fix is to extract the keys, sort them, and
// iterate the sorted slice. Loops whose bodies only do order-insensitive
// work (counting, max/min, keyed writes into another map) are fine and not
// flagged.
//
// Order-sensitive effects recognized in the loop body:
//   - append to a slice (element order then depends on map order),
//   - any call into the rng package or on one of its generators (stream
//     consumption order would vary),
//   - report/observation writes: mutating methods like Add/Observe/Expect
//     and stream writes like Write/Fprintf (emitted bytes would vary).
//
// One idiom is exempt: a loop whose only effect is appending to a single
// local slice that a later statement in the same block passes to sort or
// slices — that is precisely the sorted-key-extraction fix, whose result
// does not depend on iteration order.

// orderSensitiveMethods are mutating method names whose call order changes
// accumulated results or emitted bytes.
var orderSensitiveMethods = map[string]string{
	"Add":         "report/observation write",
	"AddKeyed":    "report/observation write",
	"AddRow":      "report/observation write",
	"Observe":     "report/observation write",
	"Expect":      "report/observation write",
	"Note":        "report/observation write",
	"Write":       "stream write",
	"WriteString": "stream write",
	"WriteByte":   "stream write",
	"WriteRune":   "stream write",
}

// orderSensitiveFmtFuncs are fmt functions that emit to a stream.
var orderSensitiveFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func checkMapRangeOrder(cfg *Config, pkg *Package) []Finding {
	if !cfg.IsDeterministic(pkg.Path) {
		return nil
	}
	var out []Finding
	pkg.inspectFiles(func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok {
				continue
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				continue
			}
			effect, appendTo := orderSensitiveEffect(cfg, pkg, rs.Body)
			if effect == "" {
				continue
			}
			if appendTo != nil && sortedLater(pkg, list[i+1:], appendTo) {
				continue
			}
			out = append(out, pkg.finding(rs.Pos(), "map-range-order",
				"range over map has order-sensitive effect ("+effect+
					"); iterate sorted keys instead"))
		}
		return true
	})
	return out
}

// orderSensitiveEffect scans a map-range body for order-sensitive effects.
// It returns the first effect's description ("" if none) and, when every
// effect is an append to one and the same identifier, that identifier's
// object — the candidate for the sorted-later exemption.
func orderSensitiveEffect(cfg *Config, pkg *Package, body *ast.BlockStmt) (string, types.Object) {
	effect := ""
	var appendTo types.Object
	exemptable := true
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(pkg.Info, call, "append") {
			if effect == "" {
				effect = "append"
			}
			var target types.Object
			if len(call.Args) > 0 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					target = pkg.Info.Uses[id]
				}
			}
			if target == nil || (appendTo != nil && appendTo != target) {
				exemptable = false
			} else {
				appendTo = target
			}
			return true
		}
		obj := calleeObj(pkg.Info, call)
		if objInPkg(obj, cfg.RngPkg) {
			effect, exemptable = "rng draw", false
			return false
		}
		if f, ok := obj.(*types.Func); ok {
			if f.Type().(*types.Signature).Recv() != nil {
				if kind, bad := orderSensitiveMethods[f.Name()]; bad {
					effect, exemptable = kind+" "+f.Name(), false
					return false
				}
			} else if objInPkg(f, "fmt") && orderSensitiveFmtFuncs[f.Name()] {
				effect, exemptable = "stream write fmt."+f.Name(), false
				return false
			}
		}
		return true
	})
	if !exemptable {
		appendTo = nil
	}
	return effect, appendTo
}

// sortedLater reports whether a later statement in the same block passes
// the appended slice to the sort or slices package — the sorted-key
// extraction idiom, whose result is independent of map iteration order.
func sortedLater(pkg *Package, rest []ast.Stmt, target types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			obj := calleeObj(pkg.Info, call)
			if !objInPkg(obj, "sort") && !objInPkg(obj, "slices") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == target {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
