package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The fixture packages under testdata/src declare their expected
// diagnostics inline: a `//lintwant:<rule>` marker on a line means exactly
// one finding of that rule is expected there. Packages also contain
// non-firing and //rfclint:allow-suppressed cases, which must produce no
// findings — the set comparison below catches both missed and spurious
// diagnostics.

// fixtureConfig mirrors DefaultConfig but points the deterministic list at
// the fixture packages (freepkg is deliberately left off it). serverpkg is
// listed as BOTH deterministic and a server package, proving the Server
// entry overrides the deterministic set.
func fixtureConfig(t *testing.T, module string) *Config {
	t.Helper()
	det := []string{"nondet", "maprange", "splitpar", "seedcoord", "serverpkg", "leafsetpkg", "csrpkg", "flowpkg"}
	cfg := &Config{
		Module:     module,
		Server:     []string{module + "/internal/lint/testdata/src/serverpkg"},
		AllowFiles: []string{"testdata/src/nondet/allowed_file.go"},
		RngPkg:     module + "/internal/rng",
		EnginePkg:  module + "/internal/engine",
		ExhibitPkg: module + "/internal/lint/testdata/src/puritypkg",
	}
	for _, d := range det {
		cfg.Deterministic = append(cfg.Deterministic, module+"/internal/lint/testdata/src/"+d)
	}
	return cfg
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return ld
}

// wantMarkers scans a fixture directory for //lintwant markers and returns
// the expected finding keys ("file:line:rule", file absolute).
func wantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(abs, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			rest := line
			for {
				idx := strings.Index(rest, "//lintwant:")
				if idx < 0 {
					break
				}
				rest = rest[idx+len("//lintwant:"):]
				rule := rest
				if j := strings.IndexAny(rule, " \t"); j >= 0 {
					rule = rule[:j]
				}
				want[path+":"+itoa(i+1)+":"+rule] = true
			}
		}
	}
	return want
}

func itoa(n int) string { return strconv.Itoa(n) }

func findingKeys(findings []Finding) map[string]bool {
	got := map[string]bool{}
	for _, f := range findings {
		got[f.Pos.Filename+":"+itoa(f.Pos.Line)+":"+f.Rule] = true
	}
	return got
}

func sortedSet(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestFixtures(t *testing.T) {
	ld := newTestLoader(t)
	cfg := fixtureConfig(t, ld.Module)
	for _, pkg := range []string{"nondet", "maprange", "splitpar", "seedcoord", "freepkg", "serverpkg", "leafsetpkg", "csrpkg", "flowpkg", "puritypkg", "guardedpkg", "overlaypkg"} {
		t.Run(pkg, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", pkg)
			findings, err := Run(cfg, ld, []string{dir})
			if err != nil {
				t.Fatal(err)
			}
			want := wantMarkers(t, dir)
			got := findingKeys(findings)
			for _, k := range sortedSet(want) {
				if !got[k] {
					t.Errorf("missing expected finding %s", k)
				}
			}
			for _, k := range sortedSet(got) {
				if !want[k] {
					t.Errorf("unexpected finding %s", k)
				}
			}
		})
	}
}

// TestFindingString pins the file:line:col: rule: message diagnostic form
// CI and editors rely on.
func TestFindingString(t *testing.T) {
	ld := newTestLoader(t)
	cfg := fixtureConfig(t, ld.Module)
	findings, err := Run(cfg, ld, []string{filepath.Join("testdata", "src", "nondet")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("expected findings in the nondet fixture")
	}
	s := findings[0].String()
	if !strings.Contains(s, "bad.go:") || !strings.Contains(s, ": nondet-source: ") {
		t.Errorf("diagnostic %q not in file:line:col: rule: message form", s)
	}
}

// TestDefaultConfigPackagesExist guards the deterministic list against
// package moves: a renamed directory would otherwise silently drop out of
// the lint gate.
func TestDefaultConfigPackagesExist(t *testing.T) {
	ld := newTestLoader(t)
	cfg := DefaultConfig(ld.Module)
	for _, path := range cfg.Deterministic {
		dir := ld.dirOf(path)
		ok, err := hasGoFiles(dir)
		if err != nil || !ok {
			t.Errorf("deterministic package %s has no Go files at %s (err=%v)", path, dir, err)
		}
	}
	for _, path := range cfg.Server {
		dir := ld.dirOf(path)
		ok, err := hasGoFiles(dir)
		if err != nil || !ok {
			t.Errorf("server package %s has no Go files at %s (err=%v)", path, dir, err)
		}
	}
	for _, suf := range cfg.AllowFiles {
		if _, err := os.Stat(filepath.Join(ld.Root, filepath.FromSlash(suf))); err != nil {
			t.Errorf("allowlisted file %s missing: %v", suf, err)
		}
	}
	if ok, err := hasGoFiles(ld.dirOf(cfg.ExhibitPkg)); err != nil || !ok {
		t.Errorf("exhibit package %s has no Go files (err=%v)", cfg.ExhibitPkg, err)
	}
}

// TestServerOverridesDeterministic pins the precedence rule directly.
func TestServerOverridesDeterministic(t *testing.T) {
	cfg := &Config{
		Deterministic: []string{"m/a", "m/b"},
		Server:        []string{"m/b", "m/c"},
	}
	for path, want := range map[string]bool{
		"m/a": true,  // deterministic only
		"m/b": false, // both listed: Server wins
		"m/c": false, // server only
		"m/d": false, // unlisted
	} {
		if got := cfg.IsDeterministic(path); got != want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestExpandSkipsTestdata checks the ./... walk never descends into
// testdata (the go tool convention), so fixture violations cannot fail a
// tree-wide run.
func TestExpandSkipsTestdata(t *testing.T) {
	ld := newTestLoader(t)
	dirs, err := Expand(ld.Root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand found no packages")
	}
	for _, d := range dirs {
		if strings.Contains(filepath.ToSlash(d), "/testdata/") {
			t.Errorf("Expand descended into testdata: %s", d)
		}
	}
}

// TestWitnessPath pins the diagnostic contract of handler-purity: every
// finding names its entry point and, for multi-hop reaches, carries the
// call chain so the report is checkable by eye.
func TestWitnessPath(t *testing.T) {
	ld := newTestLoader(t)
	cfg := fixtureConfig(t, ld.Module)
	findings, err := Run(cfg, ld, []string{filepath.Join("testdata", "src", "puritypkg")})
	if err != nil {
		t.Fatal(err)
	}
	var deep *Finding
	for i, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, "handlers.go") && strings.Contains(f.Msg, "time.Since") {
			deep = &findings[i]
		}
	}
	if deep == nil {
		t.Fatal("no finding for the time.Since fact in handlerDeep's closure")
	}
	for _, want := range []string{
		"reached from HTTP handler puritypkg.handlerDeep",
		"via puritypkg.handlerDeep -> puritypkg.hop1 -> puritypkg.hop2",
		"pure function of (kind, params, seed)",
	} {
		if !strings.Contains(deep.Msg, want) {
			t.Errorf("witness diagnostic %q missing %q", deep.Msg, want)
		}
	}
}

// TestSelfGate lints the analyzer and its command with the repository
// configuration: rfclint must hold itself to the rules it enforces.
func TestSelfGate(t *testing.T) {
	ld := newTestLoader(t)
	dirs := []string{
		filepath.Join(ld.Root, "internal", "lint"),
		filepath.Join(ld.Root, "cmd", "rfclint"),
	}
	findings, err := Run(DefaultConfig(ld.Module), ld, dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestRepoClean is the in-tree determinism gate: the whole repository must
// lint clean, exactly as the scripts/lint.sh CI step enforces.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-wide lint skipped under -short")
	}
	ld := newTestLoader(t)
	dirs, err := Expand(ld.Root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(DefaultConfig(ld.Module), ld, dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
