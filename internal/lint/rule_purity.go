package lint

import (
	"go/token"
)

// handler-purity: every rfcd response and exhibit result must be a pure
// function of (kind, params, seed) — DESIGN §8. The per-function
// nondet-source rule cannot see a handler that calls three hops into a
// helper reading the clock, so this rule walks the linked call graph from
// every purity entry point (net/http-shaped handler functions and the Run
// field of exhibit registrations) and reports every nondeterminism fact
// reachable from one: wall-clock reads, math/rand or crypto/rand draws,
// order-sensitive map ranges, and writes to package-level mutable state.
//
// Each diagnostic carries a witness path (root -> ... -> offending
// function) so the report is checkable by eye. A fact reachable from
// several roots is reported once, from the first root in deterministic
// order. Files on Config.AllowFiles are exempt at collection time (their
// facts never enter the summaries), and sanctioned exceptions — e.g.
// build-duration metrics that feed /metrics, never response bytes — use
// the regular //rfclint:allow handler-purity annotation at the source line.

func checkHandlerPurity(cfg *Config, prog *Program) []Finding {
	var out []Finding
	reported := map[token.Pos]bool{}
	for _, root := range prog.roots {
		pred := reach(root.node)
		// Iterate prog.nodes (sorted by id) rather than the map for
		// deterministic fact order.
		for _, n := range prog.nodes {
			if _, ok := pred[n]; !ok {
				continue
			}
			for _, f := range n.facts {
				if reported[f.pos] {
					continue
				}
				reported[f.pos] = true
				msg := f.msg + " reached from " + root.label
				if path := witnessPath(pred, n); n != root.node {
					msg += " via " + path
				}
				out = append(out, Finding{
					Pos:  n.pkg.Fset.Position(f.pos),
					Rule: "handler-purity",
					Msg:  msg + "; responses must be a pure function of (kind, params, seed)",
				})
			}
		}
	}
	return out
}
