package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lock-discipline: struct fields annotated //rfclint:guardedby <mu> may
// only be read or written while the named sibling mutex is held on the same
// object, and fields annotated //rfclint:guardedby atomic may only be
// touched through sync/atomic method calls. Functions annotated
// //rfclint:locked <mu> push the obligation to their callers: every call
// site must hold the receiver's mutex, and the body itself is checked as if
// the lock were held.
//
// The lock-state model is lexical, matching how this repository writes
// critical sections: within one function body, an access is "held" when the
// latest preceding non-deferred Lock/RLock on the same root object and
// mutex field has not been followed by an Unlock/RUnlock. `defer
// mu.Unlock()` therefore keeps the rest of the body held, and a lock taken
// in one branch of an if is (unsoundly but usefully) assumed at later
// statements — none of the annotated hot paths lock conditionally. Writes
// require the exclusive Lock; RLock only blesses reads. Composite-literal
// construction (`&Cache{items: ...}`) is exempt: the object is not yet
// shared.

var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true,
}

func checkLockDiscipline(cfg *Config, prog *Program) []Finding {
	// Union annotations across the program: locked functions can be called
	// from sibling packages.
	guarded := map[*types.Var]*guardSpec{}
	locked := map[types.Object]string{}
	var out []Finding
	for _, r := range prog.results {
		for v, s := range r.ann.guarded {
			guarded[v] = s
		}
		for o, mu := range r.ann.locked {
			locked[o] = mu
		}
		out = append(out, r.ann.bad...)
	}
	if len(guarded) == 0 && len(locked) == 0 {
		return out
	}
	for _, r := range prog.results {
		c := &lockChecker{pkg: r.pkg, guarded: guarded, locked: locked,
			events: map[ast.Node][]lockEvent{}}
		for _, f := range r.pkg.Files {
			walkStack(f, c.visit)
		}
		out = append(out, c.out...)
	}
	return out
}

// lockEvent is one mutex operation observed in a function body. block is
// the innermost block-like node containing the call: an event is only
// visible to accesses in the same or a nested block, so the common
// early-return idiom (`if hit { ...; mu.Unlock(); return }`) does not
// clobber the lock state of the fall-through path, and a conditionally
// taken lock never blesses code outside its branch.
type lockEvent struct {
	pos      token.Pos
	name     string // Lock, RLock, Unlock, RUnlock
	root     types.Object
	mu       *types.Var
	block    ast.Node
	deferred bool
}

type lockChecker struct {
	pkg     *Package
	guarded map[*types.Var]*guardSpec
	locked  map[types.Object]string
	events  map[ast.Node][]lockEvent // enclosing FuncDecl/FuncLit -> events
	out     []Finding
}

// walkStack runs a pre-order walk over root, handing each node its parent
// chain (nearest parent last).
func walkStack(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

func (c *lockChecker) visit(n ast.Node, parents []ast.Node) {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		fld, ok := c.pkg.Info.Uses[n.Sel].(*types.Var)
		if !ok {
			return
		}
		if spec, ok := c.guarded[fld]; ok {
			c.checkAccess(n, spec, parents)
		}
	case *ast.CallExpr:
		callee := calleeObj(c.pkg.Info, n)
		if callee == nil {
			return
		}
		mu, ok := c.locked[callee]
		if !ok {
			return
		}
		c.checkLockedCall(n, callee, mu, parents)
	}
}

// enclosingFunc returns the innermost FuncDecl/FuncLit in parents and its
// declared object (nil for literals).
func (c *lockChecker) enclosingFunc(parents []ast.Node) (ast.Node, types.Object) {
	for i := len(parents) - 1; i >= 0; i-- {
		switch fn := parents[i].(type) {
		case *ast.FuncLit:
			return fn, nil
		case *ast.FuncDecl:
			return fn, c.pkg.Info.Defs[fn.Name]
		}
	}
	return nil, nil
}

// checkAccess validates one guarded-field access.
func (c *lockChecker) checkAccess(sel *ast.SelectorExpr, spec *guardSpec, parents []ast.Node) {
	if spec.atomic {
		c.checkAtomicAccess(sel, spec, parents)
		return
	}
	// Construction is exempt: a composite literal keyed by the field means
	// the object is not shared yet (keys are bare idents, not selectors, so
	// only the enclosing-literal case needs checking for selector writes
	// like `cp := &Cache{...}` followed by... — handled by fresh-local logic
	// in the overlay rule; here literals never produce selector accesses).
	fnNode, fnObj := c.enclosingFunc(parents)
	if fnNode == nil {
		return // package-level initializer
	}
	write := isWriteContext(c.pkg, sel, parents)
	root := baseIdentObj(c.pkg, sel.X)
	if root == nil {
		c.report(sel.Pos(), "field "+spec.field.Name()+" (guardedby "+spec.owner.Name()+
			") accessed through an expression the lock checker cannot root")
		return
	}
	if mu, ok := c.funcLocked(fnObj); ok && mu == spec.owner.Name() {
		return // body of a //rfclint:locked function: caller holds the lock
	}
	if freshLocal(c.pkg, fnNode, root) {
		return // constructor populating an object not yet shared
	}
	held, rlocked := c.heldAt(fnNode, root, spec.owner, sel.Pos(), ancestorBlocks(parents))
	if held && (!write || !rlocked) {
		return
	}
	verb := "read"
	if write {
		verb = "write"
	}
	why := "without holding " + spec.owner.Name()
	if held && rlocked && write {
		why = "under RLock; writes need the exclusive Lock"
	}
	c.report(sel.Pos(), verb+" of field "+spec.field.Name()+" (guardedby "+
		spec.owner.Name()+") "+why)
}

// checkAtomicAccess requires the field to be the receiver of a sync/atomic
// method call (indexing into a slice of atomics first is fine), or a
// harmless len/cap/range of such a slice.
func (c *lockChecker) checkAtomicAccess(sel *ast.SelectorExpr, spec *guardSpec, parents []ast.Node) {
	cur := ast.Node(sel)
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.IndexExpr, *ast.ParenExpr:
			cur = p
			continue
		case *ast.SelectorExpr:
			if atomicMethods[p.Sel.Name] && i+1 <= len(parents) {
				return // receiver of an atomic method selector; the call wraps it
			}
		case *ast.CallExpr:
			if isBuiltin(c.pkg.Info, p, "len") || isBuiltin(c.pkg.Info, p, "cap") ||
				isBuiltin(c.pkg.Info, p, "make") {
				return
			}
		case *ast.RangeStmt:
			if p.X == cur {
				return
			}
		case *ast.KeyValueExpr:
			if _, isLit := parentOf(parents, i).(*ast.CompositeLit); isLit {
				return // construction
			}
		}
		break
	}
	c.report(sel.Pos(), "field "+spec.field.Name()+
		" (guardedby atomic) must only be accessed through sync/atomic method calls")
}

func parentOf(parents []ast.Node, i int) ast.Node {
	if i == 0 {
		return nil
	}
	return parents[i-1]
}

// checkLockedCall validates a call to a //rfclint:locked function.
func (c *lockChecker) checkLockedCall(call *ast.CallExpr, callee types.Object, mu string, parents []ast.Node) {
	fnNode, fnObj := c.enclosingFunc(parents)
	if fnNode == nil {
		return
	}
	if held, ok := c.funcLocked(fnObj); ok && held == mu {
		return // transitively locked
	}
	// Root object: the receiver expression of the call (c in c.evictLocked()).
	var root types.Object
	if selFun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		root = baseIdentObj(c.pkg, selFun.X)
	}
	if root != nil {
		if held, rlocked := c.heldByName(fnNode, root, mu, call.Pos(), ancestorBlocks(parents)); held && !rlocked {
			return
		}
	}
	c.report(call.Pos(), "call to "+callee.Name()+" requires holding "+mu+
		" (//rfclint:locked contract)")
}

func (c *lockChecker) funcLocked(fnObj types.Object) (string, bool) {
	if fnObj == nil {
		return "", false
	}
	mu, ok := c.locked[fnObj]
	return mu, ok
}

// heldAt reports whether the mutex field mu on root is lexically held at
// pos within fn, and whether only a read lock is held. ancestors is the
// set of block-like nodes enclosing the access within fn.
func (c *lockChecker) heldAt(fn ast.Node, root types.Object, mu *types.Var, pos token.Pos, ancestors map[ast.Node]bool) (held, rlocked bool) {
	return c.lastLockState(fn, pos, ancestors, func(e lockEvent) bool {
		return e.root == root && e.mu == mu
	})
}

// heldByName is heldAt matching the mutex field by name — used at
// //rfclint:locked call sites where the concrete field object may belong to
// another package's struct.
func (c *lockChecker) heldByName(fn ast.Node, root types.Object, mu string, pos token.Pos, ancestors map[ast.Node]bool) (held, rlocked bool) {
	return c.lastLockState(fn, pos, ancestors, func(e lockEvent) bool {
		return e.root == root && e.mu != nil && e.mu.Name() == mu
	})
}

func (c *lockChecker) lastLockState(fn ast.Node, pos token.Pos, ancestors map[ast.Node]bool, match func(lockEvent) bool) (held, rlocked bool) {
	last := ""
	for _, e := range c.eventsOf(fn) {
		if e.deferred || e.pos >= pos || !ancestors[e.block] || !match(e) {
			continue
		}
		last = e.name
	}
	switch last {
	case "Lock":
		return true, false
	case "RLock":
		return true, true
	}
	return false, false
}

// ancestorBlocks collects the block-like nodes between the access and its
// enclosing function (the function's own body included).
func ancestorBlocks(parents []ast.Node) map[ast.Node]bool {
	blocks := map[ast.Node]bool{}
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			blocks[parents[i]] = true
		case *ast.FuncLit, *ast.FuncDecl:
			return blocks
		}
	}
	return blocks
}

// eventsOf scans (once) the body of fn for mutex operations, recording
// each event's innermost enclosing block and skipping nested function
// literals: lock state does not flow across closure boundaries.
func (c *lockChecker) eventsOf(fn ast.Node) []lockEvent {
	if ev, ok := c.events[fn]; ok {
		return ev
	}
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	var ev []lockEvent
	if body != nil {
		innermostBlock := func(parents []ast.Node) ast.Node {
			for i := len(parents) - 1; i >= 0; i-- {
				switch parents[i].(type) {
				case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
					return parents[i]
				}
			}
			return body
		}
		skip := map[ast.Node]bool{}
		walkStack(body, func(m ast.Node, parents []ast.Node) {
			for _, p := range parents {
				if skip[p] {
					return
				}
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				skip[m] = true
			case *ast.DeferStmt:
				if e, ok := c.classifyLockCall(m.Call); ok {
					e.deferred = true
					e.block = innermostBlock(parents)
					ev = append(ev, e)
				}
				skip[m] = true
			case *ast.CallExpr:
				if e, ok := c.classifyLockCall(m); ok {
					e.block = innermostBlock(parents)
					ev = append(ev, e)
				}
			}
		})
		sort.Slice(ev, func(i, j int) bool { return ev[i].pos < ev[j].pos })
	}
	c.events[fn] = ev
	return ev
}

// classifyLockCall recognizes root.mu.Lock() and friends.
func (c *lockChecker) classifyLockCall(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !lockMethods[sel.Sel.Name] {
		return lockEvent{}, false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	mu, ok := c.pkg.Info.Uses[muSel.Sel].(*types.Var)
	if !ok || !isMutexType(mu.Type()) {
		return lockEvent{}, false
	}
	root := baseIdentObj(c.pkg, muSel.X)
	if root == nil {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), name: sel.Sel.Name, root: root, mu: mu}, true
}

func (c *lockChecker) report(pos token.Pos, msg string) {
	c.out = append(c.out, c.pkg.finding(pos, "lock-discipline", msg))
}

// baseIdentObj resolves the base identifier of a selector chain to its
// object: c.items -> c, (*c).items -> c.
func baseIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isWriteContext reports whether the selector (possibly through index/star/
// paren wrappers) is an assignment target, inc/dec target, address-taken,
// or the mutated argument of delete/copy/append.
func isWriteContext(pkg *Package, sel ast.Expr, parents []ast.Node) bool {
	cur := ast.Node(sel)
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.IndexExpr:
			if p.X != cur {
				return false // sel used as the index, not the target
			}
			cur = p
		case *ast.ParenExpr:
			cur = p
		case *ast.StarExpr:
			cur = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == cur
		case *ast.CallExpr:
			if len(p.Args) > 0 && p.Args[0] == cur {
				if isBuiltin(pkg.Info, p, "delete") || isBuiltin(pkg.Info, p, "copy") ||
					isBuiltin(pkg.Info, p, "append") {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
