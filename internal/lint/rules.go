package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared helpers for the rule implementations.

// calleeObj resolves the object a call expression invokes: a function,
// method, or builtin. Generic instantiations resolve to their origin
// object. Returns nil for calls through function-typed values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	fn := ast.Unparen(call.Fun)
	switch ix := fn.(type) {
	case *ast.IndexExpr:
		fn = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fn = ast.Unparen(ix.X)
	}
	switch fn := fn.(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// objInPkg reports whether obj is declared in the package with the given
// import path.
func objInPkg(obj types.Object, path string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	b, ok := calleeObj(info, call).(*types.Builtin)
	return ok && b.Name() == name
}

// pkgFuncCall reports whether the call invokes the package-level function
// pkgPath.name (e.g. time.Now), resolved through the type checker so
// aliased imports are still caught.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	f, ok := obj.(*types.Func)
	return ok && f.Name() == name && objInPkg(f, pkgPath) && f.Type().(*types.Signature).Recv() == nil
}

// finding constructs a Finding at pos.
func (p *Package) finding(pos token.Pos, rule, msg string) Finding {
	return Finding{Pos: p.Fset.Position(pos), Rule: rule, Msg: msg}
}

// inspectFiles walks every file of the package.
func (p *Package) inspectFiles(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
