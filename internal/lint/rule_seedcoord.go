package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
)

// seed-coord-literal: two call sites in one package passing the same string
// literal to rng.StringCoord receive the *same* coordinate, so streams that
// look independent at both sites are in fact identical — correlated
// randomness that silently biases Monte-Carlo estimates. Each distinct
// purpose needs a distinct coordinate label (the repository convention is a
// slash-scoped path like "fig11/trial/..."). Only plain string literals are
// compared; computed labels (concatenations with a series or pattern name)
// are assumed to be distinguished by their dynamic part.
//
// The first occurrence anchors the label; every later duplicate site is
// flagged, pointing back at the anchor. Intentional stream sharing is
// annotated at the duplicate site with //rfclint:allow seed-coord-literal.

func checkSeedCoordLiteral(cfg *Config, pkg *Package) []Finding {
	if !cfg.IsDeterministic(pkg.Path) {
		return nil
	}
	sites := map[string][]token.Pos{}
	pkg.inspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if !pkgFuncCall(pkg.Info, call, cfg.RngPkg, "StringCoord") {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		val, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		sites[val] = append(sites[val], call.Pos())
		return true
	})
	labels := make([]string, 0, len(sites))
	for label, positions := range sites {
		if len(positions) > 1 {
			labels = append(labels, label)
		}
	}
	sort.Strings(labels)
	var out []Finding
	for _, label := range labels {
		positions := sites[label]
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		first := pkg.Fset.Position(positions[0])
		for _, pos := range positions[1:] {
			out = append(out, pkg.finding(pos, "seed-coord-literal",
				"rng.StringCoord("+strconv.Quote(label)+") duplicates the coordinate first used at "+
					filepath.Base(first.Filename)+":"+strconv.Itoa(first.Line)+
					"; identical coordinates mean identical streams — use a distinct label"))
		}
	}
	return out
}
