package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable output and the accept-then-ratchet baseline.
//
// The JSON report is versioned (ReportVersion) and byte-stable: findings
// are already sorted by the driver, paths are module-root-relative with
// forward slashes, and encoding uses a fixed two-space indent — so CI can
// golden-pin the output and diff runs across machines.
//
// A baseline is an explicit list of accepted findings keyed by
// (file, rule, msg). Applying it removes exactly the accepted findings
// from the report and counts them; a baseline entry that no longer matches
// any finding is *stale* and is itself an error (exit 3 in cmd/rfclint) —
// the baseline only ever shrinks. The repository policy is an empty
// baseline: the file exists so that a future migration can stage a large
// rule rollout without a flag-day, not to park known violations.

// ReportVersion identifies the JSON finding format.
const ReportVersion = "rfclos.lint/1"

// BaselineVersion identifies the baseline file format.
const BaselineVersion = "rfclos.lint-baseline/1"

// JSONFinding is one finding in the machine-readable report. File is
// module-root-relative with forward slashes.
type JSONFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// Report is the versioned machine-readable output of one lint run.
type Report struct {
	Version   string        `json:"version"`
	Module    string        `json:"module"`
	Packages  int           `json:"packages"`
	Findings  []JSONFinding `json:"findings"`
	Baselined int           `json:"baselined"`
}

// NewReport converts findings (as returned by Run, i.e. already sorted)
// into a Report with root-relative slash paths.
func NewReport(module, root string, packages int, findings []Finding) *Report {
	r := &Report{
		Version:  ReportVersion,
		Module:   module,
		Packages: packages,
		Findings: []JSONFinding{}, // encode as [] rather than null
	}
	for _, f := range findings {
		r.Findings = append(r.Findings, JSONFinding{
			File: rootRel(root, f.Pos.Filename),
			Line: f.Pos.Line,
			Col:  f.Pos.Column,
			Rule: f.Rule,
			Msg:  f.Msg,
		})
	}
	return r
}

// rootRel renders an absolute filename module-root-relative with forward
// slashes; paths outside the root are left absolute (but slashed) so the
// report never lies.
func rootRel(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Encode writes the report as indented JSON with a trailing newline.
func (r *Report) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// BaselineEntry accepts one finding by exact (file, rule, msg) match.
type BaselineEntry struct {
	File string `json:"file"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// Baseline is a versioned list of accepted findings.
type Baseline struct {
	Version string          `json:"version"`
	Accept  []BaselineEntry `json:"accept"`
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("lint: baseline %s: version %q, want %q", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// WriteBaseline writes a baseline accepting every finding in the report.
func WriteBaseline(path string, r *Report) error {
	b := &Baseline{Version: BaselineVersion, Accept: []BaselineEntry{}}
	for _, f := range r.Findings {
		b.Accept = append(b.Accept, BaselineEntry{File: f.File, Rule: f.Rule, Msg: f.Msg})
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply filters the report's findings through the baseline: accepted
// findings are removed and counted in Baselined. It returns the baseline
// entries that matched nothing — stale entries the caller must treat as an
// error so the baseline ratchets down, never up.
func (b *Baseline) Apply(r *Report) (stale []BaselineEntry) {
	matched := make([]bool, len(b.Accept))
	var kept []JSONFinding
	for _, f := range r.Findings {
		accepted := false
		for i, e := range b.Accept {
			if e.File == f.File && e.Rule == f.Rule && e.Msg == f.Msg {
				matched[i] = true
				accepted = true
				// keep scanning: duplicate entries should all count as used
			}
		}
		if accepted {
			r.Baselined++
		} else {
			kept = append(kept, f)
		}
	}
	if kept == nil {
		kept = []JSONFinding{}
	}
	r.Findings = kept
	for i, e := range b.Accept {
		if !matched[i] {
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return stale
}
