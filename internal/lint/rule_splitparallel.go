package lint

import (
	"go/ast"
	"go/types"
)

// split-in-parallel: rng.Split derives a child stream from the parent's
// *current state*, so its result depends on everything drawn before it —
// inside an engine.Run/RunShard worker closure that order is the job
// completion order, which varies with the worker count. The same goes for
// drawing directly from a generator captured from the enclosing scope. Both
// break the workers=1 == workers=N byte-identity contract. Worker closures
// must derive their streams from job coordinates via rng.At/rng.DeriveSeed.

// enginePoolFuncs are the worker-pool entry points whose closures are
// checked.
var enginePoolFuncs = map[string]bool{"Run": true, "RunShard": true}

func checkSplitInParallel(cfg *Config, pkg *Package) []Finding {
	if !cfg.IsDeterministic(pkg.Path) {
		return nil
	}
	var out []Finding
	pkg.inspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pkg.Info, call)
		if !objInPkg(obj, cfg.EnginePkg) || !enginePoolFuncs[obj.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				out = append(out, checkWorkerClosure(cfg, pkg, lit)...)
			}
		}
		return true
	})
	return out
}

// checkWorkerClosure flags Split calls and uses of captured parent
// generators inside one worker closure.
func checkWorkerClosure(cfg *Config, pkg *Package, lit *ast.FuncLit) []Finding {
	var out []Finding
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f, ok := calleeObj(pkg.Info, n).(*types.Func); ok &&
				f.Name() == "Split" && objInPkg(f, cfg.RngPkg) {
				out = append(out, pkg.finding(n.Pos(), "split-in-parallel",
					"rng.Split inside a parallel worker is order-dependent; "+
						"derive the job's stream from its coordinates with rng.At/DeriveSeed"))
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[n]
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || reported[obj] {
				return true
			}
			if !isRngRand(cfg, v.Type()) {
				return true
			}
			// Declared outside the closure means it is a captured parent
			// stream; anything declared by the closure itself (params or
			// locals, e.g. r := rng.At(...)) is job-local and fine.
			if v.Pos() < lit.Pos() || v.Pos() > lit.Body.End() {
				reported[obj] = true
				out = append(out, pkg.finding(n.Pos(), "split-in-parallel",
					"parallel worker uses rng stream "+v.Name()+" captured from the enclosing scope; "+
						"derive a job-local stream from its coordinates with rng.At/DeriveSeed"))
			}
		}
		return true
	})
	return out
}

// isRngRand reports whether t is rng.Rand or a pointer to it.
func isRngRand(cfg *Config, t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Name() == "Rand" && objInPkg(o, cfg.RngPkg)
}
