package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Phase 1 of the interprocedural analyzer: per-function summaries over a
// call graph.
//
// Every function declaration and function literal in the analyzed program
// becomes a funcNode carrying facts (wall-clock reads, rng sources,
// order-sensitive map ranges, package-level state writes) and unresolved
// call records. Linking resolves those records into edges:
//
//   - static calls to module functions/methods resolve directly;
//   - calls through function-typed values resolve by signature to every
//     address-taken module function with that signature (function literals
//     count as address-taken);
//   - interface method calls resolve by class-hierarchy analysis: every
//     named module type implementing the interface contributes its method;
//   - referencing a function without calling it adds a conservative edge
//     (the reference usually escapes into a call somewhere downstream).
//
// The result deliberately over-approximates reachability: phase 2 rules
// (rule_purity.go and friends) must never miss a path, and spurious ones
// are cheap to inspect thanks to the witness path in each diagnostic.

// fact is one determinism-relevant effect observed in a function body.
type fact struct {
	pos token.Pos
	msg string
}

// funcNode is one function declaration or literal in the program.
type funcNode struct {
	id   string // stable sort key: pkg path + file:offset
	name string // display name for witness paths, e.g. service.(*Server).handleTopology
	pkg  *Package
	sig  *types.Signature
	obj  types.Object // declared object; nil for literals
	pos  token.Pos

	facts        []fact
	callObjs     []types.Object // resolved static callees (module or std)
	indirectSigs []string       // signature keys of calls through func values
	ifaceCalls   []*types.Func  // interface methods invoked
	refObjs      []types.Object // functions referenced as values
	lits         []*funcNode    // nested function literals

	handlerSig bool // has the func(http.ResponseWriter, *http.Request) shape

	succ []*funcNode // linked call-graph edges, sorted by id
}

// rootDecl is a purity entry point found during collection, before linking.
type rootDecl struct {
	label string
	node  *funcNode    // resolved in-package (literal or decl)
	obj   types.Object // cross-package reference, resolved at link time
}

// pkgResult is everything phase 1 extracts from one package. Collection is
// package-local, so packages can be processed by parallel workers; linking
// merges results in deterministic package order.
type pkgResult struct {
	pkg   *Package
	nodes []*funcNode // source order
	roots []rootDecl
	ann   *annots
	allow allowSet
}

// Program is the linked whole-program view phase 2 rules run over.
type Program struct {
	Module   string
	Packages []*Package // deterministic (path) order

	results   []*pkgResult
	byPath    map[string]*pkgResult
	objNode   map[types.Object]*funcNode
	posNode   map[string]*funcNode // pkg path + decl pos -> node
	nodes     []*funcNode          // all nodes sorted by id
	roots     []rootDecl           // resolved: node non-nil, sorted by id
	implCache map[*types.Func][]*funcNode
	named     []*types.Named // module named types, for CHA
}

// collectPackage builds the pkgResult for one package. It touches only the
// package's own ASTs and type info, so it is safe to run concurrently with
// other packages' collections.
func collectPackage(cfg *Config, pkg *Package) *pkgResult {
	res := &pkgResult{
		pkg:   pkg,
		ann:   parseAnnots(pkg),
		allow: allowIndex(pkg),
	}
	c := &collector{cfg: cfg, pkg: pkg, res: res, callFun: map[ast.Node]bool{}}
	for _, f := range pkg.Files {
		// Pre-pass: mark identifiers in call position (so a plain reference
		// to a function can be told apart from calling it) and find exhibit
		// Run registrations.
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fun := ast.Unparen(call.Fun)
				switch ix := fun.(type) {
				case *ast.IndexExpr:
					fun = ast.Unparen(ix.X)
				case *ast.IndexListExpr:
					fun = ast.Unparen(ix.X)
				}
				switch fun := fun.(type) {
				case *ast.Ident:
					c.callFun[fun] = true
				case *ast.SelectorExpr:
					c.callFun[fun.Sel] = true
				}
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				c.exhibitRoots(lit)
			}
			return true
		})
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := c.newNode(fd.Name.Pos(), c.declName(fd), pkg.Info.Defs[fd.Name])
			c.walkBody(node, fd.Body)
			res.nodes = append(res.nodes, node)
		}
	}
	return res
}

type collector struct {
	cfg     *Config
	pkg     *Package
	res     *pkgResult
	callFun map[ast.Node]bool
}

func (c *collector) newNode(pos token.Pos, name string, obj types.Object) *funcNode {
	p := c.pkg.Fset.Position(pos)
	n := &funcNode{
		id:   c.pkg.Path + "\x00" + filepath.Base(p.Filename) + fmt.Sprintf(":%06d", p.Offset),
		name: name,
		pkg:  c.pkg,
		obj:  obj,
		pos:  pos,
	}
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			n.sig = sig
			n.handlerSig = isHandlerSig(sig)
		}
	}
	return n
}

// declName renders a FuncDecl as pkg.Name or pkg.(*T).Name.
func (c *collector) declName(fd *ast.FuncDecl) string {
	base := c.pkg.Types.Name()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return base + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var recv string
	switch t := ast.Unparen(t).(type) {
	case *ast.StarExpr:
		recv = "(*" + exprBase(t.X) + ")"
	default:
		recv = exprBase(t)
	}
	return base + "." + recv + "." + fd.Name.Name
}

// exprBase extracts the base type name of a receiver expression.
func exprBase(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return exprBase(e.X)
	case *ast.IndexListExpr:
		return exprBase(e.X)
	}
	return "?"
}

// litName renders a FuncLit by its position, e.g. service.func@server.go:41.
func (c *collector) litName(lit *ast.FuncLit) string {
	p := c.pkg.Fset.Position(lit.Pos())
	return c.pkg.Types.Name() + ".func@" + filepath.Base(p.Filename) + ":" + fmt.Sprint(p.Line)
}

// walkBody collects facts and call records for node from body, recursing
// into nested function literals as separate child nodes.
func (c *collector) walkBody(node *funcNode, body *ast.BlockStmt) {
	info := c.pkg.Info
	allowed := c.cfg.fileAllowed(c.pkg.Fset.Position(body.Pos()).Filename)
	addFact := func(pos token.Pos, msg string) {
		if !allowed {
			node.facts = append(node.facts, fact{pos: pos, msg: msg})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := c.newNode(n.Pos(), c.litName(n), nil)
			if sig, ok := info.TypeOf(n).(*types.Signature); ok {
				child.sig = sig
				child.handlerSig = isHandlerSig(sig)
			}
			node.lits = append(node.lits, child)
			c.walkBody(child, n.Body)
			return false
		case *ast.CallExpr:
			c.recordCall(node, n, addFact)
			return true
		case *ast.Ident:
			if c.callFun[n] {
				return true
			}
			if f, ok := info.Uses[n].(*types.Func); ok && inModule(f, c.cfg) {
				node.refObjs = append(node.refObjs, f)
			}
			return true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.recordGlobalWrite(node, lhs, addFact)
			}
			return true
		case *ast.IncDecStmt:
			c.recordGlobalWrite(node, n.X, addFact)
			return true
		case *ast.BlockStmt:
			c.recordMapRanges(node, n.List, addFact)
			return true
		case *ast.CaseClause:
			c.recordMapRanges(node, n.Body, addFact)
			return true
		case *ast.CommClause:
			c.recordMapRanges(node, n.Body, addFact)
			return true
		}
		return true
	})
}

// recordCall classifies one call expression into a static, indirect, or
// interface call record, and emits nondeterminism facts for standard
// library sources.
func (c *collector) recordCall(node *funcNode, call *ast.CallExpr, addFact func(token.Pos, string)) {
	info := c.pkg.Info
	obj := calleeObj(info, call)
	switch f := obj.(type) {
	case *types.Builtin:
		return
	case *types.TypeName:
		return // conversion through a named type
	case *types.Func:
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				node.ifaceCalls = append(node.ifaceCalls, f)
				return
			}
		}
		switch {
		case objInPkg(f, "time") && (f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until"):
			addFact(call.Pos(), "wall-clock call time."+f.Name())
		case objInPkg(f, "math/rand") || objInPkg(f, "math/rand/v2"):
			addFact(call.Pos(), "unseeded randomness via "+f.Pkg().Path()+"."+f.Name())
		case objInPkg(f, "crypto/rand"):
			addFact(call.Pos(), "OS entropy via crypto/rand."+f.Name())
		}
		node.callObjs = append(node.callObjs, f)
		return
	default:
		// nil (expression call) or *types.Var (call through a func-typed
		// variable, parameter, or struct field like Cache.build): dispatch
		// by signature to every address-taken function of that shape.
		fun := ast.Unparen(call.Fun)
		if _, isLit := fun.(*ast.FuncLit); isLit {
			return // the containment edge to the literal's node covers this
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return // conversion
		}
		if t := info.TypeOf(call.Fun); t != nil {
			if sig, ok := t.Underlying().(*types.Signature); ok {
				node.indirectSigs = append(node.indirectSigs, sigKey(sig))
			}
		}
	}
}

// recordGlobalWrite emits a fact when an assignment target is (or indexes
// into) a package-level variable of a module package. init functions are
// exempt: they run once before any handler or exhibit.
func (c *collector) recordGlobalWrite(node *funcNode, lhs ast.Expr, addFact func(token.Pos, string)) {
	if strings.HasSuffix(node.name, ".init") {
		return
	}
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	v, ok := c.pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !inModule(v, c.cfg) {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // not package-level
	}
	addFact(lhs.Pos(), "mutates package-level state "+v.Pkg().Name()+"."+v.Name())
}

// recordMapRanges emits a fact for each order-sensitive map range in the
// statement list, reusing the per-function rule's effect and sorted-later
// logic so both layers agree on what counts as order-sensitive.
func (c *collector) recordMapRanges(node *funcNode, list []ast.Stmt, addFact func(token.Pos, string)) {
	for i, stmt := range list {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := c.pkg.Info.TypeOf(rs.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		effect, appendTo := orderSensitiveEffect(c.cfg, c.pkg, rs.Body)
		if effect == "" {
			continue
		}
		if appendTo != nil && sortedLater(c.pkg, list[i+1:], appendTo) {
			continue
		}
		addFact(rs.Pos(), "order-sensitive map range ("+effect+")")
	}
}

// exhibitRoots records the Run field of every exhibit-registry composite
// literal as a purity entry point.
func (c *collector) exhibitRoots(lit *ast.CompositeLit) {
	if c.cfg.ExhibitPkg == "" {
		return
	}
	t := c.pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Exhibit" || !objInPkg(named.Obj(), c.cfg.ExhibitPkg) {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	runIdx := -1
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Run" {
			runIdx = i
		}
	}
	if runIdx < 0 {
		return
	}
	label := c.pkg.Types.Name() + ".Exhibit@" + c.posLabel(lit.Pos())
	for i, el := range lit.Elts {
		var val ast.Expr
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Run" {
				continue
			}
			val = kv.Value
		} else if i == runIdx {
			val = el
		} else {
			continue
		}
		c.rootFromExpr(label, val)
	}
}

// rootFromExpr resolves an exhibit Run expression to a root: a literal, a
// function reference, or (for factory calls like scenarioSweep(0)) the
// factory function itself, whose nested literals the containment edges
// cover.
func (c *collector) rootFromExpr(label string, e ast.Expr) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.FuncLit:
		// The literal's node is created during walkBody of its enclosing
		// function; record the position and resolve at link time via the
		// node table keyed by position.
		c.res.roots = append(c.res.roots, rootDecl{label: label, node: &funcNode{pos: e.Pos(), pkg: c.pkg}})
	case *ast.Ident:
		if f, ok := c.pkg.Info.Uses[e].(*types.Func); ok {
			c.res.roots = append(c.res.roots, rootDecl{label: label, obj: f})
		}
	case *ast.SelectorExpr:
		if f, ok := c.pkg.Info.Uses[e.Sel].(*types.Func); ok {
			c.res.roots = append(c.res.roots, rootDecl{label: label, obj: f})
		}
	case *ast.CallExpr:
		if f, ok := calleeObj(c.pkg.Info, e).(*types.Func); ok {
			c.res.roots = append(c.res.roots, rootDecl{label: label, obj: f})
		}
	}
}

func (c *collector) posLabel(pos token.Pos) string {
	p := c.pkg.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + fmt.Sprint(p.Line)
}

// inModule reports whether the object is declared in a module package (as
// opposed to the standard library).
func inModule(obj types.Object, cfg *Config) bool {
	return obj != nil && obj.Pkg() != nil && isModulePath(obj.Pkg().Path(), cfg)
}

func isModulePath(path string, cfg *Config) bool {
	mod := cfg.modulePath()
	return path == mod || strings.HasPrefix(path, mod+"/")
}

// sigKey canonicalizes a signature to parameter and result types, ignoring
// the receiver: a bound method value and a plain function with the same
// shape dispatch identically through a function-typed value.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	b.WriteByte(')')
	return b.String()
}

// isHandlerSig reports whether sig has the net/http handler shape
// func(http.ResponseWriter, *http.Request).
func isHandlerSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return types.TypeString(sig.Params().At(0).Type(), nil) == "net/http.ResponseWriter" &&
		types.TypeString(sig.Params().At(1).Type(), nil) == "*net/http.Request"
}

// link merges per-package results into a Program and resolves all call
// records into edges. results must be in deterministic package order.
func link(cfg *Config, results []*pkgResult) *Program {
	prog := &Program{
		Module:    cfg.modulePath(),
		byPath:    map[string]*pkgResult{},
		objNode:   map[types.Object]*funcNode{},
		posNode:   map[string]*funcNode{},
		implCache: map[*types.Func][]*funcNode{},
		results:   results,
	}
	posNode := prog.posNode
	var addNode func(n *funcNode)
	addNode = func(n *funcNode) {
		prog.nodes = append(prog.nodes, n)
		posNode[posNodeKey(n.pkg.Path, n.pos)] = n
		if n.obj != nil {
			prog.objNode[n.obj] = n
		}
		for _, lit := range n.lits {
			addNode(lit)
		}
	}
	for _, r := range results {
		prog.Packages = append(prog.Packages, r.pkg)
		prog.byPath[r.pkg.Path] = r
		for _, n := range r.nodes {
			addNode(n)
		}
		scope := r.pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				if _, isIface := named.Underlying().(*types.Interface); !isIface {
					prog.named = append(prog.named, named)
				}
			}
		}
	}
	sort.Slice(prog.nodes, func(i, j int) bool { return prog.nodes[i].id < prog.nodes[j].id })

	// Address-taken index: every literal plus every referenced declaration.
	sigIndex := map[string][]*funcNode{}
	taken := map[*funcNode]bool{}
	take := func(n *funcNode) {
		if n == nil || taken[n] || n.sig == nil {
			return
		}
		taken[n] = true
		key := sigKey(n.sig)
		sigIndex[key] = append(sigIndex[key], n)
	}
	for _, n := range prog.nodes {
		if n.obj == nil {
			take(n) // every literal is address-taken by construction
		}
		for _, ref := range n.refObjs {
			take(prog.objNode[ref])
		}
	}
	for _, r := range results {
		for _, rd := range r.roots {
			if rd.obj != nil {
				take(prog.objNode[rd.obj])
			}
		}
	}

	// Resolve edges.
	for _, n := range prog.nodes {
		seen := map[*funcNode]bool{}
		add := func(t *funcNode) {
			if t != nil && t != n && !seen[t] {
				seen[t] = true
				n.succ = append(n.succ, t)
			}
		}
		for _, obj := range n.callObjs {
			add(prog.objNode[obj])
		}
		for _, obj := range n.refObjs {
			add(prog.objNode[obj])
		}
		for _, lit := range n.lits {
			add(lit)
		}
		for _, key := range n.indirectSigs {
			for _, t := range sigIndex[key] {
				add(t)
			}
		}
		for _, m := range n.ifaceCalls {
			for _, t := range prog.implementers(m) {
				add(t)
			}
		}
		sort.Slice(n.succ, func(i, j int) bool { return n.succ[i].id < n.succ[j].id })
	}

	// Resolve roots: handler-shaped functions plus exhibit Run entries.
	seenRoot := map[*funcNode]bool{}
	for _, n := range prog.nodes {
		if n.handlerSig {
			prog.roots = append(prog.roots, rootDecl{label: "HTTP handler " + n.name, node: n})
			seenRoot[n] = true
		}
	}
	for _, r := range results {
		for _, rd := range r.roots {
			n := rd.node
			if n != nil {
				n = posNode[posNodeKey(n.pkg.Path, n.pos)]
			} else {
				n = prog.objNode[rd.obj]
			}
			if n == nil || seenRoot[n] {
				continue
			}
			seenRoot[n] = true
			prog.roots = append(prog.roots, rootDecl{label: "exhibit Run " + n.name, node: n})
		}
	}
	sort.Slice(prog.roots, func(i, j int) bool { return prog.roots[i].node.id < prog.roots[j].node.id })
	return prog
}

// implementers resolves an interface method to the corresponding concrete
// methods of every named module type that implements the interface.
func (prog *Program) implementers(m *types.Func) []*funcNode {
	if nodes, ok := prog.implCache[m]; ok {
		return nodes
	}
	var out []*funcNode
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		prog.implCache[m] = nil
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		prog.implCache[m] = nil
		return nil
	}
	for _, named := range prog.named {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(named, true, m.Pkg(), m.Name())
		if f, ok := obj.(*types.Func); ok {
			if n := prog.objNode[f]; n != nil {
				out = append(out, n)
			}
		}
	}
	prog.implCache[m] = out
	return out
}

// posNodeKey keys the position -> node table.
func posNodeKey(pkgPath string, pos token.Pos) string {
	return pkgPath + ":" + fmt.Sprint(int(pos))
}

// reach runs a BFS from root and returns the predecessor map (node -> the
// node it was first reached from; root maps to nil). Traversal order is
// deterministic because succ lists are sorted.
func reach(root *funcNode) map[*funcNode]*funcNode {
	pred := map[*funcNode]*funcNode{root: nil}
	queue := []*funcNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, s := range n.succ {
			if _, ok := pred[s]; !ok {
				pred[s] = n
				queue = append(queue, s)
			}
		}
	}
	return pred
}

// witnessPath renders the call chain root -> ... -> n from a predecessor
// map.
func witnessPath(pred map[*funcNode]*funcNode, n *funcNode) string {
	var parts []string
	for at := n; at != nil; at = pred[at] {
		parts = append(parts, at.name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " -> ")
}
