// Package lint is rfclint's engine: a small, stdlib-only static analyzer
// that enforces this repository's determinism invariants. Every exhibit —
// the Theorem 4.2 trials, the Figure 8-12 sweeps, Table 3, and the
// byte-identical shard merges — relies on deterministic packages drawing
// randomness only from coordinate-derived rng streams, never from wall-clock
// time, Go's randomized map iteration order, or order-dependent stream
// splitting inside parallel workers. The rules here turn that convention
// into a build gate.
//
// The analyzer loads packages with go/parser and type-checks them with
// go/types through a hybrid importer (module packages from source, standard
// library via go/importer's source mode), so it needs nothing outside the
// standard library and the checked-out tree.
//
// Findings can be suppressed per line with a `//rfclint:allow <rule>`
// comment on the offending line or the line directly above it; see
// suppress.go.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Config selects which packages the determinism rules apply to. Paths are
// full import paths; DefaultConfig derives the repository's set from the
// module path.
type Config struct {
	// Deterministic lists the import paths whose packages must obey the
	// determinism invariants (exact match, one entry per package).
	Deterministic []string

	// Server lists import paths explicitly recognized as non-deterministic
	// serving packages (HTTP daemons and their clients): wall-clock reads
	// there feed metrics and timeouts, never exhibit bytes. A path listed in
	// both Server and Deterministic is treated as Server — the declaration
	// that a package serves overrides the blanket deterministic set.
	Server []string

	// AllowFiles lists slash-separated file-path suffixes exempt from the
	// nondet-source rule (e.g. "internal/engine/progress.go", whose
	// wall-clock reads feed human-facing progress lines, never results).
	AllowFiles []string

	// RngPkg is the import path of the coordinate-seeded rng package.
	RngPkg string

	// EnginePkg is the import path of the parallel worker-pool package whose
	// Run/RunShard closures must not touch parent rng streams.
	EnginePkg string
}

// DefaultConfig returns the repository configuration for a module rooted at
// the given module path: every package that feeds exhibit bytes is
// deterministic; cmd/ and examples/ are free to read clocks and flags.
func DefaultConfig(module string) *Config {
	rel := []string{
		"", // the facade package at the module root
		"internal/analysis",
		"internal/core",
		"internal/engine",
		"internal/exhibit",
		"internal/gf",
		"internal/graph",
		"internal/metrics",
		"internal/rng",
		"internal/routing",
		"internal/simcore",
		"internal/simcore/goldencases",
		"internal/simdirect",
		"internal/simnet",
		"internal/topology",
		"internal/traffic",
	}
	det := make([]string, len(rel))
	for i, r := range rel {
		if r == "" {
			det[i] = module
		} else {
			det[i] = module + "/" + r
		}
	}
	return &Config{
		Deterministic: det,
		Server: []string{
			module + "/internal/service",
			module + "/internal/service/client",
			module + "/cmd/rfcd",
		},
		AllowFiles: []string{"internal/engine/progress.go"},
		RngPkg:     module + "/internal/rng",
		EnginePkg:  module + "/internal/engine",
	}
}

// IsDeterministic reports whether the import path is subject to the
// determinism rules. Server packages never are, even when also listed as
// deterministic.
func (c *Config) IsDeterministic(path string) bool {
	for _, p := range c.Server {
		if p == path {
			return false
		}
	}
	for _, p := range c.Deterministic {
		if p == path {
			return true
		}
	}
	return false
}

// fileAllowed reports whether filename (as recorded in the fileset) is
// exempt from nondet-source via Config.AllowFiles.
func (c *Config) fileAllowed(filename string) bool {
	f := strings.ReplaceAll(filename, "\\", "/")
	for _, suf := range c.AllowFiles {
		if strings.HasSuffix(f, suf) {
			return true
		}
	}
	return false
}

// Finding is one diagnostic: a rule violation at a position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Rule is one named check over a type-checked package.
type Rule struct {
	Name string
	Doc  string
	// Check returns the rule's findings for pkg (suppression is applied by
	// the driver, not the rule).
	Check func(cfg *Config, pkg *Package) []Finding
}

// Rules returns every rule in a stable order.
func Rules() []Rule {
	return []Rule{
		{
			Name:  "nondet-source",
			Doc:   "deterministic packages must not import math/rand or crypto/rand, or call time.Now/time.Since",
			Check: checkNondetSource,
		},
		{
			Name:  "map-range-order",
			Doc:   "ranging over a map with order-sensitive effects (append, rng draws, report/observation writes) in the body",
			Check: checkMapRangeOrder,
		},
		{
			Name:  "split-in-parallel",
			Doc:   "rng.Split or a captured parent rng stream inside a worker closure passed to engine.Run/RunShard; derive streams from job coordinates instead",
			Check: checkSplitInParallel,
		},
		{
			Name:  "seed-coord-literal",
			Doc:   "the same string literal passed to rng.StringCoord at two call sites in one package: the \"independent\" streams are identical",
			Check: checkSeedCoordLiteral,
		},
	}
}

// Run loads every package directory in dirs (see Loader) and applies all
// rules, returning the unsuppressed findings sorted by position. A load or
// type-check failure is an error: the linter refuses to bless a tree it
// could not fully analyze.
func Run(cfg *Config, ld *Loader, dirs []string) ([]Finding, error) {
	var all []Finding
	for _, dir := range dirs {
		pkg, err := ld.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		allow := allowIndex(pkg)
		for _, rule := range Rules() {
			for _, f := range rule.Check(cfg, pkg) {
				if !allow.suppressed(f) {
					all = append(all, f)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return all, nil
}
