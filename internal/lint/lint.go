// Package lint is rfclint's engine: a small, stdlib-only static analyzer
// that enforces this repository's determinism invariants. Every exhibit —
// the Theorem 4.2 trials, the Figure 8-12 sweeps, Table 3, and the
// byte-identical shard merges — relies on deterministic packages drawing
// randomness only from coordinate-derived rng streams, never from wall-clock
// time, Go's randomized map iteration order, or order-dependent stream
// splitting inside parallel workers. The rules here turn that convention
// into a build gate.
//
// The analyzer loads packages with go/parser and type-checks them with
// go/types through a hybrid importer (module packages from source, standard
// library via go/importer's source mode), so it needs nothing outside the
// standard library and the checked-out tree.
//
// Findings can be suppressed per line with a `//rfclint:allow <rule>`
// comment on the offending line or the line directly above it; see
// suppress.go.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Config selects which packages the determinism rules apply to. Paths are
// full import paths; DefaultConfig derives the repository's set from the
// module path.
type Config struct {
	// Module is the module path the analyzed packages belong to; the
	// interprocedural rules use it to tell module functions from the
	// standard library.
	Module string

	// Deterministic lists the import paths whose packages must obey the
	// determinism invariants (exact match, one entry per package).
	Deterministic []string

	// Server lists import paths explicitly recognized as non-deterministic
	// serving packages (HTTP daemons and their clients): wall-clock reads
	// there feed metrics and timeouts, never exhibit bytes. A path listed in
	// both Server and Deterministic is treated as Server — the declaration
	// that a package serves overrides the blanket deterministic set.
	Server []string

	// AllowFiles lists slash-separated file-path suffixes exempt from the
	// nondet-source rule (e.g. "internal/engine/progress.go", whose
	// wall-clock reads feed human-facing progress lines, never results).
	AllowFiles []string

	// RngPkg is the import path of the coordinate-seeded rng package.
	RngPkg string

	// EnginePkg is the import path of the parallel worker-pool package whose
	// Run/RunShard closures must not touch parent rng streams.
	EnginePkg string

	// ExhibitPkg is the import path of the exhibit registry package; the
	// handler-purity rule treats every Run field of an Exhibit composite
	// literal as a purity entry point.
	ExhibitPkg string
}

// modulePath returns the configured module path.
func (c *Config) modulePath() string { return c.Module }

// DefaultConfig returns the repository configuration for a module rooted at
// the given module path: every package that feeds exhibit bytes is
// deterministic; cmd/ and examples/ are free to read clocks and flags.
func DefaultConfig(module string) *Config {
	rel := []string{
		"", // the facade package at the module root
		"internal/analysis",
		"internal/core",
		"internal/engine",
		"internal/exhibit",
		"internal/flow",
		"internal/gf",
		"internal/graph",
		"internal/metrics",
		"internal/rng",
		"internal/routing",
		"internal/simcore",
		"internal/simcore/goldencases",
		"internal/simdirect",
		"internal/simnet",
		"internal/topology",
		"internal/traffic",
	}
	det := make([]string, len(rel))
	for i, r := range rel {
		if r == "" {
			det[i] = module
		} else {
			det[i] = module + "/" + r
		}
	}
	return &Config{
		Module:        module,
		Deterministic: det,
		Server: []string{
			module + "/internal/service",
			module + "/internal/service/client",
			module + "/cmd/rfcd",
		},
		AllowFiles: []string{"internal/engine/progress.go"},
		RngPkg:     module + "/internal/rng",
		EnginePkg:  module + "/internal/engine",
		ExhibitPkg: module + "/internal/exhibit",
	}
}

// IsDeterministic reports whether the import path is subject to the
// determinism rules. Server packages never are, even when also listed as
// deterministic.
func (c *Config) IsDeterministic(path string) bool {
	for _, p := range c.Server {
		if p == path {
			return false
		}
	}
	for _, p := range c.Deterministic {
		if p == path {
			return true
		}
	}
	return false
}

// fileAllowed reports whether filename (as recorded in the fileset) is
// exempt from nondet-source via Config.AllowFiles.
func (c *Config) fileAllowed(filename string) bool {
	f := strings.ReplaceAll(filename, "\\", "/")
	for _, suf := range c.AllowFiles {
		if strings.HasSuffix(f, suf) {
			return true
		}
	}
	return false
}

// Finding is one diagnostic: a rule violation at a position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Rule is one named check over a type-checked package.
type Rule struct {
	Name string
	Doc  string
	// Check returns the rule's findings for pkg (suppression is applied by
	// the driver, not the rule).
	Check func(cfg *Config, pkg *Package) []Finding
}

// Rules returns every rule in a stable order.
func Rules() []Rule {
	return []Rule{
		{
			Name:  "nondet-source",
			Doc:   "deterministic packages must not import math/rand or crypto/rand, or call time.Now/time.Since",
			Check: checkNondetSource,
		},
		{
			Name:  "map-range-order",
			Doc:   "ranging over a map with order-sensitive effects (append, rng draws, report/observation writes) in the body",
			Check: checkMapRangeOrder,
		},
		{
			Name:  "split-in-parallel",
			Doc:   "rng.Split or a captured parent rng stream inside a worker closure passed to engine.Run/RunShard; derive streams from job coordinates instead",
			Check: checkSplitInParallel,
		},
		{
			Name:  "seed-coord-literal",
			Doc:   "the same string literal passed to rng.StringCoord at two call sites in one package: the \"independent\" streams are identical",
			Check: checkSeedCoordLiteral,
		},
	}
}

// GraphRule is one named interprocedural check over the linked program.
type GraphRule struct {
	Name string
	Doc  string
	// Check returns the rule's findings for the whole program (suppression
	// is applied by the driver, not the rule).
	Check func(cfg *Config, prog *Program) []Finding
}

// GraphRules returns every interprocedural rule in a stable order.
func GraphRules() []GraphRule {
	return []GraphRule{
		{
			Name:  "handler-purity",
			Doc:   "HTTP handlers and exhibit Run functions must reach only deterministic sources through the call graph (diagnostics carry a witness path)",
			Check: checkHandlerPurity,
		},
		{
			Name:  "lock-discipline",
			Doc:   "fields annotated //rfclint:guardedby are only accessed with the named mutex held (or through sync/atomic); //rfclint:locked functions require the lock at every call site",
			Check: checkLockDiscipline,
		},
		{
			Name:  "overlay-invalidate",
			Doc:   "fields annotated //rfclint:mutatesvia may only be written by (or via) the named invalidation functions, pinning the CSR overlay/LeafRange/StoreBytes invariant",
			Check: checkOverlayInvalidate,
		},
	}
}

// Run loads every package directory in dirs (see Loader) and applies all
// per-package and interprocedural rules, returning the unsuppressed
// findings sorted by position. A load or type-check failure is an error:
// the linter refuses to bless a tree it could not fully analyze.
func Run(cfg *Config, ld *Loader, dirs []string) ([]Finding, error) {
	return RunParallel(cfg, ld, dirs, 1)
}

// RunParallel is Run with up to workers packages loaded and summarized
// concurrently. Output is deterministic regardless of worker count:
// per-package results are merged in package order and findings are sorted
// at the end.
func RunParallel(cfg *Config, ld *Loader, dirs []string, workers int) ([]Finding, error) {
	if workers < 1 {
		workers = 1
	}
	// Phase 0: load (parse + type-check) the requested packages.
	pkgs := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	runWorkers(len(dirs), workers, func(i int) {
		pkgs[i], errs[i] = ld.LoadDir(dirs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	requested := map[string]bool{}
	for _, pkg := range pkgs {
		requested[pkg.Path] = true
	}
	// The program closure adds the module-internal dependencies of the
	// requested packages, so interprocedural rules see the whole call graph
	// even for a partial lint.
	closure := programClosure(ld, pkgs)

	// Phase 1: per-package summaries (and per-package rules for the
	// requested set), in parallel.
	results := make([]*pkgResult, len(closure))
	perPkg := make([][]Finding, len(closure))
	runWorkers(len(closure), workers, func(i int) {
		pkg := closure[i]
		results[i] = collectPackage(cfg, pkg)
		if requested[pkg.Path] {
			for _, rule := range Rules() {
				perPkg[i] = append(perPkg[i], rule.Check(cfg, pkg)...)
			}
		}
	})

	// Phase 2: link and run the interprocedural rules sequentially.
	prog := link(cfg, results)
	var all []Finding
	allow := allowSet{}
	for _, r := range results {
		for k, v := range r.allow {
			allow[k] = v
		}
	}
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	for _, rule := range GraphRules() {
		all = append(all, rule.Check(cfg, prog)...)
	}
	kept := all[:0]
	for _, f := range all {
		if !allow.suppressed(f) {
			kept = append(kept, f)
		}
	}
	all = kept
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return all, nil
}

// programClosure returns the requested packages plus their module-internal
// transitive dependencies (already loaded as a side effect of
// type-checking), sorted by import path.
func programClosure(ld *Loader, pkgs []*Package) []*Package {
	seen := map[string]*Package{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if p == nil || seen[p.Path] != nil {
			return
		}
		seen[p.Path] = p
		for _, imp := range p.Types.Imports() {
			path := imp.Path()
			if path == ld.Module || strings.HasPrefix(path, ld.Module+"/") {
				visit(ld.Loaded(path))
			}
		}
	}
	for _, p := range pkgs {
		visit(p)
	}
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = seen[path]
	}
	return out
}

// runWorkers runs fn(0..n-1) on up to workers goroutines.
func runWorkers(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
