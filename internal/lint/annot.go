package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation parsing for the interprocedural rules. Three directive forms
// extend the //rfclint:allow grammar of suppress.go:
//
//	//rfclint:guardedby <mu>     on a struct field: every read/write of the
//	                             field must hold the sibling sync.Mutex (or
//	                             sync.RWMutex) named <mu> on the same
//	                             receiver. The special name "atomic" means
//	                             the field is only touched through
//	                             sync/atomic method calls (Load/Store/Add/
//	                             Swap/CompareAndSwap/Or/And).
//	//rfclint:locked <mu>        on a function or method: callers must hold
//	                             <mu> (on the callee's receiver) at every
//	                             call site; the body itself is checked as if
//	                             the lock were held.
//	//rfclint:mutatesvia <f>[,g] on a struct field: any function that writes
//	                             the field must be one of the named
//	                             functions (declared in the same package) or
//	                             reach one of them through the call graph —
//	                             the overlay-invalidate contract.
//
// A directive binds to the field or declaration on its own line or the line
// directly below it (doc-comment position), mirroring the allow grammar.

const (
	guardedByPrefix  = "rfclint:guardedby"
	lockedPrefix     = "rfclint:locked"
	mutatesViaPrefix = "rfclint:mutatesvia"
)

// guardSpec is a parsed //rfclint:guardedby directive on one struct field.
type guardSpec struct {
	field  *types.Var // the annotated field
	owner  *types.Var // the sibling mutex field; nil when atomic
	atomic bool
	strct  *ast.StructType // the declaring struct literal
}

// mutateSpec is a parsed //rfclint:mutatesvia directive on one struct field.
type mutateSpec struct {
	field *types.Var
	via   []string // function/method names in the field's package
}

// annots holds every parsed directive of one package.
type annots struct {
	guarded map[*types.Var]*guardSpec
	mutates map[*types.Var]*mutateSpec
	locked  map[types.Object]string // func/method -> required mutex field name
	bad     []Finding               // malformed or unresolvable directives
}

// directiveOnLines scans the package's comments for a directive with the
// given prefix attached to lineFile:line or line-1, returning its argument
// text and true when found.
type directiveIndex map[string]string // "prefix\x00file:line" -> args

func indexDirectives(pkg *Package) directiveIndex {
	idx := directiveIndex{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				for _, prefix := range []string{guardedByPrefix, lockedPrefix, mutatesViaPrefix} {
					rest, ok := strings.CutPrefix(text, prefix)
					if !ok {
						continue
					}
					if i := strings.Index(rest, "--"); i >= 0 {
						rest = rest[:i]
					}
					pos := pkg.Fset.Position(c.Pos())
					idx[prefix+"\x00"+posKey(pos.Filename, pos.Line)] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return idx
}

// at returns the argument of a prefix-directive bound to the given position
// (its own line or the line above — doc-comment position).
func (idx directiveIndex) at(pkg *Package, prefix string, posFile string, line int) (string, bool) {
	for _, l := range []int{line, line - 1} {
		if args, ok := idx[prefix+"\x00"+posKey(posFile, l)]; ok {
			return args, true
		}
	}
	return "", false
}

// parseAnnots resolves every directive in the package against its
// type-checked declarations.
func parseAnnots(pkg *Package) *annots {
	idx := indexDirectives(pkg)
	a := &annots{
		guarded: map[*types.Var]*guardSpec{},
		mutates: map[*types.Var]*mutateSpec{},
		locked:  map[types.Object]string{},
	}
	if len(idx) == 0 {
		return a
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				a.parseFields(pkg, idx, n)
			case *ast.FuncDecl:
				pos := pkg.Fset.Position(n.Pos())
				if args, ok := idx.at(pkg, lockedPrefix, pos.Filename, pos.Line); ok {
					mu := strings.TrimSpace(args)
					if mu == "" || strings.ContainsAny(mu, " \t,") {
						a.bad = append(a.bad, pkg.finding(n.Pos(), "lock-discipline",
							"malformed //rfclint:locked directive: want a single mutex field name"))
					} else if obj := pkg.Info.Defs[n.Name]; obj != nil {
						a.locked[obj] = mu
					}
				}
			}
			return true
		})
	}
	return a
}

// parseFields binds guardedby/mutatesvia directives to the fields of one
// struct type and validates their arguments.
func (a *annots) parseFields(pkg *Package, idx directiveIndex, st *ast.StructType) {
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			pos := pkg.Fset.Position(name.Pos())
			obj, _ := pkg.Info.Defs[name].(*types.Var)
			if obj == nil {
				continue
			}
			if args, ok := idx.at(pkg, guardedByPrefix, pos.Filename, pos.Line); ok {
				spec := &guardSpec{field: obj, strct: st}
				if args == "atomic" {
					spec.atomic = true
					a.guarded[obj] = spec
				} else if mu := findSiblingMutex(pkg, st, args); mu != nil {
					spec.owner = mu
					a.guarded[obj] = spec
				} else {
					a.bad = append(a.bad, pkg.finding(name.Pos(), "lock-discipline",
						"//rfclint:guardedby "+args+": no sibling sync.Mutex/RWMutex field named "+args))
				}
			}
			if args, ok := idx.at(pkg, mutatesViaPrefix, pos.Filename, pos.Line); ok {
				var via []string
				for _, v := range strings.FieldsFunc(args, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					via = append(via, v)
				}
				if len(via) == 0 {
					a.bad = append(a.bad, pkg.finding(name.Pos(), "overlay-invalidate",
						"//rfclint:mutatesvia needs at least one function name"))
				} else {
					a.mutates[obj] = &mutateSpec{field: obj, via: via}
				}
			}
		}
	}
}

// findSiblingMutex locates a field named mu of type sync.Mutex or
// sync.RWMutex in the same struct literal.
func findSiblingMutex(pkg *Package, st *ast.StructType, mu string) *types.Var {
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if name.Name != mu {
				continue
			}
			obj, _ := pkg.Info.Defs[name].(*types.Var)
			if obj != nil && isMutexType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
