package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// overlay-invalidate: PR 8 made the CSR adjacency store's derived state
// (LeafRange, StoreBytes) valid only as long as every mutation of the
// underlying fields flows through the designated invalidation points
// (ensureOverlay, Seal). This rule pins that invariant structurally: a
// struct field annotated
//
//	//rfclint:mutatesvia f1[,f2...]
//
// may only be written inside one of the named functions (declared in the
// field's package) or inside a function that reaches one of them through
// the call graph — i.e. any new mutation path must first invalidate.
// Reads are unrestricted. Two write shapes are exempt:
//
//   - construction: writes through a local variable that the enclosing
//     function itself created with a composite literal (`cp := &Clos{...};
//     cp.ovl = ...`) touch an object no caller can observe mid-build;
//   - composite-literal field values, for the same reason.
//
// Passing the field as an argument to a module function counts as a write
// (the callee may mutate it); passing it to the standard library or as a
// later argument of append (a read-only source) does not.

func checkOverlayInvalidate(cfg *Config, prog *Program) []Finding {
	// Resolve each annotated field's via-list to program nodes.
	type target struct {
		spec  *mutateSpec
		nodes map[*funcNode]bool
	}
	var out []Finding
	targets := map[*types.Var]*target{}
	for _, r := range prog.results {
		for v, spec := range r.ann.mutates {
			tg := &target{spec: spec, nodes: map[*funcNode]bool{}}
			for _, name := range spec.via {
				found := false
				for _, n := range prog.nodes {
					if n.obj == nil || n.pkg.Path != r.pkg.Path {
						continue
					}
					if base := n.name[strings.LastIndex(n.name, ".")+1:]; base == name {
						tg.nodes[n] = true
						found = true
					}
				}
				if !found {
					out = append(out, r.pkg.finding(v.Pos(), "overlay-invalidate",
						"//rfclint:mutatesvia names unknown function "+name+" in package "+r.pkg.Types.Name()))
				}
			}
			targets[v] = tg
		}
	}
	if len(targets) == 0 {
		return out
	}
	reachCache := map[*funcNode]map[*funcNode]*funcNode{}
	reaches := func(from *funcNode, nodes map[*funcNode]bool) bool {
		if nodes[from] {
			return true
		}
		pred, ok := reachCache[from]
		if !ok {
			pred = reach(from)
			reachCache[from] = pred
		}
		for n := range nodes {
			if _, ok := pred[n]; ok {
				return true
			}
		}
		return false
	}
	for _, r := range prog.results {
		pkg := r.pkg
		reportedLines := map[string]bool{}
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, parents []ast.Node) {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return
				}
				fld, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok {
					return
				}
				tg, ok := targets[fld]
				if !ok {
					return
				}
				if !isWriteContext(pkg, sel, parents) &&
					!isModuleArgContext(cfg, pkg, sel, parents) {
					return
				}
				fnAst := enclosingFuncAst(parents)
				if fnAst == nil {
					return
				}
				node := prog.nodeAt(pkg, fnAst)
				if node != nil && reaches(node, tg.nodes) {
					return
				}
				if root := baseIdentObj(pkg, sel.X); root != nil && freshLocal(pkg, fnAst, root) {
					return
				}
				// One diagnostic per line: an assignment like
				// `s.m[k] = append(s.m[k], v)` mentions the field twice.
				pos := pkg.Fset.Position(sel.Pos())
				lineKey := posKey(pos.Filename, pos.Line)
				if reportedLines[lineKey] {
					return
				}
				reportedLines[lineKey] = true
				where := "?"
				if node != nil {
					where = node.name
				}
				out = append(out, pkg.finding(sel.Pos(), "overlay-invalidate",
					"write to field "+fld.Name()+" in "+where+" does not reach "+
						strings.Join(tg.spec.via, "/")+" (//rfclint:mutatesvia); "+
						"mutations must invalidate derived state first"))
			})
		}
	}
	return out
}

// isModuleArgContext reports whether sel is passed (not as an append
// source) as an argument to a function declared in this module — which may
// mutate it through the reference.
func isModuleArgContext(cfg *Config, pkg *Package, sel ast.Expr, parents []ast.Node) bool {
	cur := ast.Node(sel)
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.IndexExpr, *ast.ParenExpr, *ast.StarExpr:
			cur = p
		case *ast.CallExpr:
			if p.Fun == cur {
				return false
			}
			obj := calleeObj(pkg.Info, p)
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return false // delete/copy/append handled by isWriteContext
			}
			f, ok := obj.(*types.Func)
			if !ok || !inModule(f, cfg) {
				return false // stdlib and indirect calls treated as read-only
			}
			for _, arg := range p.Args {
				if arg == cur {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// enclosingFuncAst returns the innermost FuncDecl/FuncLit in parents.
func enclosingFuncAst(parents []ast.Node) ast.Node {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return parents[i]
		}
	}
	return nil
}

// nodeAt maps a FuncDecl/FuncLit back to its program node.
func (prog *Program) nodeAt(pkg *Package, fn ast.Node) *funcNode {
	var pos token.Pos
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		pos = fn.Name.Pos()
	case *ast.FuncLit:
		pos = fn.Pos()
	default:
		return nil
	}
	return prog.posNode[posNodeKey(pkg.Path, pos)]
}

// freshLocal reports whether root is a local variable the enclosing
// function defined with a composite literal (`x := &T{...}` or
// `x := T{...}`): an object under construction that no other goroutine or
// caller can observe yet.
func freshLocal(pkg *Package, fn ast.Node, root types.Object) bool {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return false
	}
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pkg.Info.Defs[id] != root || i >= len(as.Rhs) {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = ast.Unparen(u.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				fresh = true
			}
		}
		return true
	})
	return fresh
}
