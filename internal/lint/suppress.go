package lint

import (
	"strconv"
	"strings"
)

// Suppression: a finding is silenced by a comment of the form
//
//	//rfclint:allow <rule>[,<rule>...] [-- reason]
//
// placed either on the offending line itself (trailing comment) or on the
// line directly above it. The special rule name "all" silences every rule.
// Annotations are deliberate, auditable exceptions — greppable, and scoped
// to a single line so a suppression cannot hide a second, later violation.

const allowPrefix = "rfclint:allow"

// allowSet maps "filename:line" to the set of rule names allowed there.
type allowSet map[string]map[string]bool

// allowIndex scans every comment in the package and indexes the
// rfclint:allow annotations by file and line.
func allowIndex(pkg *Package) allowSet {
	idx := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				// Strip an optional trailing "-- reason" note.
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey(pos.Filename, pos.Line)
				rules := idx[key]
				if rules == nil {
					rules = map[string]bool{}
					idx[key] = rules
				}
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					rules[name] = true
				}
			}
		}
	}
	return idx
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// suppressed reports whether an allow annotation on the finding's line or
// the line above it covers the finding's rule.
func (s allowSet) suppressed(f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if rules, ok := s[posKey(f.Pos.Filename, line)]; ok {
			if rules[f.Rule] || rules["all"] {
				return true
			}
		}
	}
	return false
}
