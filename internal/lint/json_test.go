package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONGolden pins the -json report byte-for-byte over the overlaypkg
// fixture: versioned header, module-root-relative slash paths, two-space
// indent, trailing newline. Regenerate with
//
//	RFCLINT_UPDATE_GOLDEN=1 go test ./internal/lint -run TestJSONGolden
//
// after deliberately changing the fixture or the report format.
func TestJSONGolden(t *testing.T) {
	ld := newTestLoader(t)
	cfg := fixtureConfig(t, ld.Module)
	dir := filepath.Join("testdata", "src", "overlaypkg")
	findings, err := Run(cfg, ld, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	report := NewReport(ld.Module, ld.Root, 1, findings)
	var buf bytes.Buffer
	if err := report.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden", "overlay_report.json")
	if os.Getenv("RFCLINT_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with RFCLINT_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON report drifted from golden %s:\ngot:\n%swant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestJSONEmptyFindings pins the clean-run shape: findings must encode as
// [], never null, so jq-style CI parsing does not need a null guard.
func TestJSONEmptyFindings(t *testing.T) {
	r := NewReport("example.com/m", "/tmp", 3, nil)
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"findings": []`) {
		t.Errorf("empty findings did not encode as []:\n%s", s)
	}
	if !strings.Contains(s, `"version": "`+ReportVersion+`"`) {
		t.Errorf("report missing version %q:\n%s", ReportVersion, s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("report does not end with a newline")
	}
}

func sampleReport() *Report {
	return &Report{
		Version:  ReportVersion,
		Module:   "example.com/m",
		Packages: 2,
		Findings: []JSONFinding{
			{File: "a/a.go", Line: 3, Col: 1, Rule: "handler-purity", Msg: "clock"},
			{File: "b/b.go", Line: 9, Col: 2, Rule: "lock-discipline", Msg: "unlocked"},
		},
	}
}

// TestBaselineApply covers the accept-then-ratchet semantics: accepted
// findings are removed and counted, unmatched entries come back stale.
func TestBaselineApply(t *testing.T) {
	r := sampleReport()
	b := &Baseline{Version: BaselineVersion, Accept: []BaselineEntry{
		{File: "a/a.go", Rule: "handler-purity", Msg: "clock"},
		{File: "gone.go", Rule: "handler-purity", Msg: "fixed long ago"},
	}}
	stale := b.Apply(r)
	if r.Baselined != 1 {
		t.Errorf("Baselined = %d, want 1", r.Baselined)
	}
	if len(r.Findings) != 1 || r.Findings[0].File != "b/b.go" {
		t.Errorf("kept findings = %+v, want only b/b.go", r.Findings)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %+v, want the gone.go entry", stale)
	}

	// An empty baseline is a no-op with nothing stale.
	r = sampleReport()
	empty := &Baseline{Version: BaselineVersion}
	if stale := empty.Apply(r); len(stale) != 0 || r.Baselined != 0 || len(r.Findings) != 2 {
		t.Errorf("empty baseline changed the report: stale=%v baselined=%d findings=%d",
			stale, r.Baselined, len(r.Findings))
	}
}

// TestBaselineRoundTrip writes the accept list for a report and reloads it.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, sampleReport()); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != BaselineVersion || len(b.Accept) != 2 {
		t.Errorf("reloaded baseline = %+v", b)
	}
	r := sampleReport()
	if stale := b.Apply(r); len(stale) != 0 || len(r.Findings) != 0 || r.Baselined != 2 {
		t.Errorf("self-written baseline did not accept everything: stale=%v findings=%d baselined=%d",
			stale, len(r.Findings), r.Baselined)
	}
}

// TestBaselineVersionCheck rejects unknown baseline formats loudly.
func TestBaselineVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version":"bogus/9","accept":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("LoadBaseline accepted a bogus version (err=%v)", err)
	}
}

// TestRepoBaselineEmpty pins the repository policy: the checked-in baseline
// exists, parses, and accepts nothing — all three interprocedural rules run
// tree-wide with no parked violations.
func TestRepoBaselineEmpty(t *testing.T) {
	ld := newTestLoader(t)
	b, err := LoadBaseline(filepath.Join(ld.Root, "lint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Accept) != 0 {
		t.Errorf("repository baseline accepts %d findings, want 0 (fix or annotate instead)", len(b.Accept))
	}
}
