package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package as the rules see it.
type Package struct {
	// Path is the package's import path (module path joined with its
	// directory relative to the module root).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file below.
	Fset *token.FileSet
	// Files are the package's non-test files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package, Info its recorded uses/types.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module. Module-internal
// imports are resolved from source relative to the module root; standard
// library imports go through go/importer's source mode. Loaded packages are
// cached, so a tree-wide run type-checks each package once.
//
// The loader is safe for concurrent LoadDir calls: the cache is a
// singleflight table (the first goroutine to request a path type-checks it,
// later ones wait on its ready channel), and the source-mode standard
// library importer — which is not concurrency-safe — is serialized behind
// its own mutex. Waiting on another goroutine's in-flight load cannot
// deadlock because Go's import graph is acyclic; same-goroutine import
// cycles (broken source) are caught by the per-load import stack instead.
type Loader struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset *token.FileSet

	stdMu sync.Mutex // serializes std (srcimporter is not concurrency-safe)
	std   types.Importer

	mu    sync.Mutex // guards cache (the map, not the entries)
	cache map[string]*loadEntry
}

// loadEntry is one singleflight cache slot: ready is closed once pkg/err
// are final.
type loadEntry struct {
	ready chan struct{}
	pkg   *Package
	err   error
}

// NewLoader returns a loader for the module rooted at root. The module path
// is read from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   abs,
		Module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*loadEntry{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// importPath maps a package directory to its import path within the module.
func (ld *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(ld.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return ld.Module, nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, ld.Root)
	}
	return ld.Module + "/" + rel, nil
}

// dirOf maps a module-internal import path back to its directory.
func (ld *Loader) dirOf(path string) string {
	if path == ld.Module {
		return ld.Root
	}
	rel := strings.TrimPrefix(path, ld.Module+"/")
	return filepath.Join(ld.Root, filepath.FromSlash(rel))
}

// LoadDir parses and type-checks the package in dir.
func (ld *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := ld.importPath(abs)
	if err != nil {
		return nil, err
	}
	return ld.load(path, nil)
}

// Loaded returns the cached package for a module-internal import path, or
// nil if it has not been (successfully) loaded. It never triggers a load.
func (ld *Loader) Loaded(path string) *Package {
	ld.mu.Lock()
	e, ok := ld.cache[path]
	ld.mu.Unlock()
	if !ok {
		return nil
	}
	<-e.ready
	return e.pkg
}

// load type-checks the module-internal package with the given import path,
// caching results (and errors) by path. stack is the chain of module
// packages currently being checked on this goroutine, for cycle detection.
func (ld *Loader) load(path string, stack []string) (*Package, error) {
	for _, p := range stack {
		if p == path {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	ld.mu.Lock()
	if e, ok := ld.cache[path]; ok {
		ld.mu.Unlock()
		<-e.ready
		return e.pkg, e.err
	}
	e := &loadEntry{ready: make(chan struct{})}
	ld.cache[path] = e
	ld.mu.Unlock()
	e.pkg, e.err = ld.check(path, append(stack, path))
	close(e.ready)
	return e.pkg, e.err
}

// check does the actual parse + type-check of one package directory.
func (ld *Loader) check(path string, stack []string) (*Package, error) {
	dir := ld.dirOf(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, "_") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: &loaderImporter{ld: ld, stack: stack}}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// loaderImporter adapts the loader into a types.Importer: module-internal
// paths load from source through the loader itself (threading the cycle
// detection stack), everything else (the standard library) through
// go/importer's source mode behind the loader's std mutex.
type loaderImporter struct {
	ld    *Loader
	stack []string
}

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	ld := im.ld
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.Module || strings.HasPrefix(path, ld.Module+"/") {
		pkg, err := ld.load(path, im.stack)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	ld.stdMu.Lock()
	defer ld.stdMu.Unlock()
	return ld.std.Import(path)
}

// Expand resolves command-line package patterns to package directories.
// A trailing "/..." (or the bare "./...") walks recursively; other
// arguments name single directories. Like the go tool, the walk skips
// testdata, vendor, and dot/underscore directories, and keeps only
// directories containing at least one non-test Go file. The result is
// sorted and de-duplicated.
func Expand(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if !rec {
			ok, err := hasGoFiles(dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(p)
			if err != nil {
				return err
			}
			if ok {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
			!strings.HasPrefix(n, "_") && !strings.HasPrefix(n, ".") {
			return true, nil
		}
	}
	return false, nil
}
