package lint

import (
	"go/ast"
	"strconv"
)

// nondet-source: deterministic packages must not import math/rand (any
// version) or crypto/rand, and must not read the wall clock via time.Now or
// time.Since. All randomness has to come from internal/rng streams derived
// from a seed and job coordinates, so that every exhibit byte is a pure
// function of its inputs. cmd/ packages and files on Config.AllowFiles
// (progress reporting) are exempt.

var nondetImports = map[string]string{
	"math/rand":    "use internal/rng streams derived from a seed instead",
	"math/rand/v2": "use internal/rng streams derived from a seed instead",
	"crypto/rand":  "deterministic packages cannot use OS entropy",
}

var nondetTimeFuncs = []string{"Now", "Since"}

func checkNondetSource(cfg *Config, pkg *Package) []Finding {
	if !cfg.IsDeterministic(pkg.Path) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		if cfg.fileAllowed(filename) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := nondetImports[path]; bad {
				out = append(out, pkg.finding(imp.Pos(), "nondet-source",
					"deterministic package imports "+path+"; "+why))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range nondetTimeFuncs {
				if pkgFuncCall(pkg.Info, call, "time", name) {
					out = append(out, pkg.finding(call.Pos(), "nondet-source",
						"deterministic package reads the wall clock via time."+name+
							"; results must be a pure function of seed and coordinates"))
				}
			}
			return true
		})
	}
	return out
}
