package simnet

import (
	"reflect"
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

func testConfig() Config {
	return Config{
		WarmupCycles:  500,
		MeasureCycles: 2000,
		Seed:          7,
	}
}

func buildCFT(t *testing.T, radix, levels int) (*topology.Clos, *routing.UpDown) {
	t.Helper()
	c, err := topology.NewCFT(radix, levels)
	if err != nil {
		t.Fatal(err)
	}
	return c, routing.New(c)
}

func buildRFC(t *testing.T, radix, levels, leaves int) (*topology.Clos, *routing.UpDown) {
	t.Helper()
	c, _, _, err := core.GenerateRoutable(core.Params{Radix: radix, Levels: levels, Leaves: leaves}, 20, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return c, routing.New(c)
}

// checkConservation asserts the packet conservation invariant.
func checkConservation(t *testing.T, r Result) {
	t.Helper()
	if r.TotalGenerated != r.TotalDelivered+r.TotalDropped+r.InFlightAtEnd {
		t.Errorf("conservation violated: gen=%d del=%d drop=%d inflight=%d",
			r.TotalGenerated, r.TotalDelivered, r.TotalDropped, r.InFlightAtEnd)
	}
	if r.InSourceAtEnd > r.InFlightAtEnd {
		t.Errorf("source queue count %d exceeds in-flight %d", r.InSourceAtEnd, r.InFlightAtEnd)
	}
}

func TestZeroLoad(t *testing.T) {
	c, ud := buildCFT(t, 4, 2)
	s := New(c, ud, traffic.NewUniform(c.Terminals()), testConfig())
	r := s.Run(0)
	if r.TotalGenerated != 0 || r.AcceptedLoad != 0 {
		t.Errorf("zero load generated traffic: %+v", r)
	}
}

func TestLowLoadLatencyAndDelivery(t *testing.T) {
	c, ud := buildCFT(t, 8, 2)
	s := New(c, ud, traffic.NewUniform(c.Terminals()), testConfig())
	r := s.Run(0.05)
	checkConservation(t, r)
	if r.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	// Uncontended latency: ~1 cycle per hop on a <=2-turn path plus 16
	// cycles of serialization at ejection; queueing at 5% load is tiny.
	if r.AvgLatency < 16 || r.AvgLatency > 30 {
		t.Errorf("avg latency = %v cycles, want ~18-22", r.AvgLatency)
	}
	// At 5% offered the network accepts essentially everything.
	if r.AcceptedLoad < 0.045 || r.AcceptedLoad > 0.056 {
		t.Errorf("accepted = %v, want ≈0.05", r.AcceptedLoad)
	}
	if r.DroppedAtSource > r.Generated/100 {
		t.Errorf("unexpected source drops at low load: %d", r.DroppedAtSource)
	}
}

func TestCFTUniformHighLoad(t *testing.T) {
	// A CFT is rearrangeably non-blocking; under uniform traffic it should
	// sustain a large fraction of full load (HoL blocking costs some).
	c, ud := buildCFT(t, 8, 3)
	s := New(c, ud, traffic.NewUniform(c.Terminals()), testConfig())
	r := s.Run(1.0)
	checkConservation(t, r)
	if r.AcceptedLoad < 0.55 {
		t.Errorf("CFT uniform accepted = %v at load 1.0, want > 0.55", r.AcceptedLoad)
	}
}

func TestThroughputMonotoneInLoad(t *testing.T) {
	c, ud := buildCFT(t, 8, 2)
	var prev float64
	for _, load := range []float64{0.1, 0.3, 0.6} {
		s := New(c, ud, traffic.NewUniform(c.Terminals()), testConfig())
		r := s.Run(load)
		checkConservation(t, r)
		if r.AcceptedLoad < prev-0.03 {
			t.Errorf("accepted load dropped: %v after %v", r.AcceptedLoad, prev)
		}
		prev = r.AcceptedLoad
	}
}

func TestRFCSimulation(t *testing.T) {
	c, ud := buildRFC(t, 8, 3, 16)
	for _, pat := range []traffic.Pattern{
		traffic.NewUniform(c.Terminals()),
		traffic.NewPairing(c.Terminals(), rng.New(3)),
		traffic.NewFixedRandom(c.Terminals(), rng.New(4)),
	} {
		s := New(c, ud, pat, testConfig())
		r := s.Run(0.5)
		checkConservation(t, r)
		if r.Delivered == 0 {
			t.Errorf("%s: no packets delivered", pat.Name())
		}
		if r.UnroutableDrops != 0 {
			t.Errorf("%s: unroutable drops on a routable RFC", pat.Name())
		}
		if r.AcceptedLoad <= 0.1 {
			t.Errorf("%s: accepted = %v suspiciously low", pat.Name(), r.AcceptedLoad)
		}
	}
}

func TestDeterminism(t *testing.T) {
	c, ud := buildCFT(t, 4, 3)
	run := func() Result {
		return New(c, ud, traffic.NewUniform(c.Terminals()), testConfig()).Run(0.4)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	cfg := testConfig()
	cfg.Seed = 8
	c2 := New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0.4)
	if reflect.DeepEqual(a, c2) {
		t.Error("different seeds produced identical results")
	}
}

// allToZero is a worst-case hot-spot pattern: every terminal sends to
// terminal 0.
type allToZero struct{}

func (allToZero) Name() string { return "all-to-zero" }
func (allToZero) Dest(src int, _ *rng.Rand) int {
	if src == 0 {
		return -1
	}
	return 0
}

func TestEjectionBottleneck(t *testing.T) {
	// With every terminal targeting terminal 0, aggregate delivery cannot
	// exceed one phit per cycle (one ejection port), i.e. accepted load
	// per terminal ≈ 1/T.
	c, ud := buildCFT(t, 4, 2)
	s := New(c, ud, allToZero{}, testConfig())
	r := s.Run(1.0)
	checkConservation(t, r)
	maxPerTerm := 1.0 / float64(c.Terminals())
	if r.AcceptedLoad > maxPerTerm*1.15 {
		t.Errorf("accepted %v exceeds ejection bound %v", r.AcceptedLoad, maxPerTerm)
	}
	if r.AcceptedLoad < maxPerTerm*0.7 {
		t.Errorf("accepted %v far below achievable hot-spot rate %v", r.AcceptedLoad, maxPerTerm)
	}
}

func TestFaultedNetworkStillConserves(t *testing.T) {
	c, ud := buildRFC(t, 8, 3, 16)
	// Remove 10% of links at random.
	r := rng.New(11)
	links := c.Links()
	r.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	for _, l := range links[:len(links)/10] {
		c.RemoveLink(l.A, l.B)
	}
	ud.Rebuild()
	s := New(c, ud, traffic.NewUniform(c.Terminals()), testConfig())
	res := s.Run(0.6)
	checkConservation(t, res)
	if res.Delivered == 0 {
		t.Error("faulted but connected network delivered nothing")
	}
}

func TestIsolatedLeafCountsUnroutable(t *testing.T) {
	c, ud := buildCFT(t, 4, 2)
	leaf0 := c.SwitchID(1, 0)
	for _, up := range append([]int32(nil), c.Up(leaf0)...) {
		c.RemoveLink(leaf0, up)
	}
	ud.Rebuild()
	s := New(c, ud, traffic.NewUniform(c.Terminals()), testConfig())
	res := s.Run(0.5)
	checkConservation(t, res)
	if res.TotalUnroutable == 0 {
		t.Error("expected unroutable packets with an isolated leaf")
	}
	// Traffic between the other leaves still flows.
	if res.Delivered == 0 {
		t.Error("no delivery despite partial connectivity")
	}
}

func TestPairingFullThroughputOnCFT(t *testing.T) {
	// A CFT is rearrangeably non-blocking: a random pairing is a
	// permutation, which it should route at high rate.
	c, ud := buildCFT(t, 8, 2)
	s := New(c, ud, traffic.NewPairing(c.Terminals(), rng.New(5)), testConfig())
	r := s.Run(0.9)
	checkConservation(t, r)
	if r.AcceptedLoad < 0.6 {
		t.Errorf("pairing on CFT accepted %v at 0.9 offered, want > 0.6", r.AcceptedLoad)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.VCs != 4 || cfg.BufferPackets != 4 || cfg.PacketLength != 16 ||
		cfg.LinkLatency != 1 || cfg.MeasureCycles != 10000 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func BenchmarkSimCycle11KScaled(b *testing.B) {
	// A scaled stand-in for the Figure 8 scenario: radix-8 3-level CFT.
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	ud := routing.New(c)
	cfg := testConfig()
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0.6)
	}
}
