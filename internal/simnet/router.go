package simnet

import (
	"rfclos/internal/routing"
	"rfclos/internal/simcore"
	"rfclos/internal/topology"
)

// upDownRouter is the simcore.Router of indirect networks: the paper's
// "shortest injection, up/down random request" scheme. Packet state is the
// remaining up-hop budget (from routing.UpDown.MinTurn); any free VC may be
// used, since up/down routes make the channel dependency graph acyclic
// without VC ordering (§4.1).
type upDownRouter struct {
	c     *topology.Clos
	ud    *routing.UpDown
	upLen []int16 // up-port count per switch (down ports follow the ups)
	n1    int32   // leaf switch count; leaves are switches [0, n1)
	hash  bool
}

// UpDownRouter builds the up/down routing policy for the unified engine;
// hash selects the deterministic D-mod-K flow-hash variant instead of
// per-request randomisation.
func UpDownRouter(c *topology.Clos, ud *routing.UpDown, hash bool) simcore.Router {
	r := &upDownRouter{c: c, ud: ud, n1: int32(c.LevelSize(1)), hash: hash}
	r.upLen = make([]int16, c.NumSwitches())
	for sw := int32(0); sw < int32(c.NumSwitches()); sw++ {
		r.upLen[sw] = int16(len(c.Up(sw)))
	}
	return r
}

// NewPacket computes the minimal up-hop budget, or ok=false when the pair
// has no surviving up/down path (faulty network).
func (r *upDownRouter) NewPacket(src, dst int32) (int8, bool) {
	srcLeaf := int(r.c.LeafOfTerminal(int(src)))
	dstLeaf := int(r.c.LeafOfTerminal(int(dst)))
	turn := r.ud.MinTurn(srcLeaf, dstLeaf)
	if turn < 0 {
		return 0, false
	}
	return int8(turn), true
}

// Route picks the packet's output request at switch sw: ejection at the
// destination leaf, then a qualifying up port during the ascent or down
// port during the descent — chosen uniformly at random per request (Table
// 2's "up/down random") or by deterministic flow hash (Config.HashRouting).
func (r *upDownRouter) Route(e *simcore.Engine, sw int32, p *simcore.Packet) int16 {
	dstLeaf := int(r.c.LeafOfTerminal(int(p.Dst)))
	if int(sw) == dstLeaf && sw < r.n1 {
		return simcore.Eject
	}
	if r.hash {
		key := flowHash(p.Src, p.Dst, sw)
		if p.State > 0 {
			if port := r.ud.NextUpPortHash(sw, int(p.State), dstLeaf, key); port >= 0 {
				return int16(port)
			}
			return simcore.NoRoute
		}
		if port := r.ud.NextDownPortHash(sw, dstLeaf, key); port >= 0 {
			return int16(int(r.upLen[sw]) + port)
		}
		return simcore.NoRoute
	}
	if p.State > 0 {
		if port := r.ud.NextUpPort(sw, int(p.State), dstLeaf, e.Rand()); port >= 0 {
			return int16(port)
		}
		return simcore.NoRoute
	}
	if port := r.ud.NextDownPort(sw, dstLeaf, e.Rand()); port >= 0 {
		return int16(int(r.upLen[sw]) + port)
	}
	return simcore.NoRoute
}

// HasCredit accepts any VC with buffer space: up/down needs no VC ordering.
func (r *upDownRouter) HasCredit(e *simcore.Engine, ch int32, _ *simcore.Packet) bool {
	return e.AnyVCFree(ch)
}

// SelectVC picks uniformly among the VCs with space (Table 2's random VC
// assignment).
func (r *upDownRouter) SelectVC(e *simcore.Engine, ch int32, _ *simcore.Packet) int32 {
	return e.RandomFreeVC(ch)
}

// Forwarded burns one up hop when the packet left on an up port.
func (r *upDownRouter) Forwarded(_ *simcore.Engine, sw, port int32, p *simcore.Packet) {
	if port < int32(r.upLen[sw]) {
		p.State--
	}
}

// flowHash mixes the flow identifier and the current switch into a D-mod-K
// selection key (fmix-style avalanche).
func flowHash(src, dst, sw int32) uint32 {
	x := uint64(uint32(src))<<40 ^ uint64(uint32(dst))<<16 ^ uint64(uint32(sw))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}
