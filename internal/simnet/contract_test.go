package simnet

import (
	"testing"
	"testing/quick"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simcore"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// contractEngine builds an idle engine over c with the given VC count, for
// driving Router hooks directly (nothing has been injected, so every VC is
// free).
func contractEngine(t *testing.T, c *topology.Clos, ud *routing.UpDown, vcs int) *simcore.Engine {
	t.Helper()
	cfg := Config{VCs: vcs, WarmupCycles: 10, MeasureCycles: 10}
	return New(c, ud, traffic.NewUniform(c.Terminals()), cfg).eng
}

// TestUpDownRouterContract property-checks the up/down Router against the
// simcore contract: for random terminal pairs, following the router's port
// choices walks a valid up/down path — up moves happen only while the up
// budget lasts, every hop stays on the fabric, and the walk ejects at the
// destination leaf in exactly 2×MinTurn hops (the shortest up/down route).
func TestUpDownRouterContract(t *testing.T) {
	for _, build := range []struct {
		name string
		c    *topology.Clos
	}{
		{"cft8x3", mustCFT(t, 8, 3)},
		{"rfc", buildContractRFC(t)},
	} {
		c, ud := build.c, routing.New(build.c)
		eng := contractEngine(t, c, ud, 4)
		router := UpDownRouter(c, ud, false)
		terms := c.Terminals()
		walk := func(a, b uint16) bool {
			src := int32(int(a) % terms)
			dst := int32(int(b) % terms)
			state, ok := router.NewPacket(src, dst)
			if !ok {
				return false // fault-free fabric: every pair routes
			}
			p := &simcore.Packet{Src: src, Dst: dst, State: state}
			sw := c.LeafOfTerminal(int(src))
			dstLeaf := c.LeafOfTerminal(int(dst))
			for hop := 0; hop <= 2*int(state); hop++ {
				port := router.Route(eng, sw, p)
				if port == simcore.Eject {
					return sw == dstLeaf && hop == 2*int(state)
				}
				if port < 0 {
					return false
				}
				ups := c.Up(sw)
				var next int32
				if int(port) < len(ups) {
					if p.State <= 0 {
						return false // up move without remaining budget
					}
					next = ups[port]
				} else {
					downs := c.Down(sw)
					di := int(port) - len(ups)
					if di >= len(downs) {
						return false
					}
					next = downs[di]
				}
				router.Forwarded(eng, sw, int32(port), p)
				sw = next
			}
			return false // never ejected within the shortest-route bound
		}
		if err := quick.Check(walk, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", build.name, err)
		}
	}
}

// TestUpDownRouterVCBaseline checks the "no VCs needed" half of the VC
// discipline: on a 1-VC engine — the zero-budget baseline, since up/down
// routing is deadlock-free without any VC escalation — the router accepts
// every idle channel and never selects a VC outside the channel's [0, VCs)
// range.
func TestUpDownRouterVCBaseline(t *testing.T) {
	c := mustCFT(t, 8, 3)
	ud := routing.New(c)
	eng := contractEngine(t, c, ud, 1)
	router := UpDownRouter(c, ud, false)
	channels := int32(0)
	for sw := int32(0); sw < int32(c.NumSwitches()); sw++ {
		channels += int32(len(c.Up(sw)) + len(c.Down(sw)))
	}
	p := &simcore.Packet{}
	pick := func(raw uint32) bool {
		ch := int32(raw) % channels
		if ch < 0 {
			ch = -ch
		}
		if !router.HasCredit(eng, ch, p) {
			return false // idle engine: every channel has space
		}
		q := router.SelectVC(eng, ch, p)
		vcs := int32(eng.Config().VCs)
		return q >= ch*vcs && q < (ch+1)*vcs
	}
	if err := quick.Check(pick, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func mustCFT(t *testing.T, radix, levels int) *topology.Clos {
	t.Helper()
	c, err := topology.NewCFT(radix, levels)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildContractRFC(t *testing.T) *topology.Clos {
	t.Helper()
	c, _, _, err := core.GenerateRoutable(core.Params{Radix: 8, Levels: 3, Leaves: 16}, 20, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return c
}
