package simnet

import (
	"math"

	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Request-port sentinels stored in packet.reqPort.
const (
	reqUnset = -2
	reqEject = -1
)

// packet is one in-flight packet. Packets live in a pooled slice and are
// referenced by index.
type packet struct {
	src, dst int32 // terminal ids
	genAt    int32
	readyAt  int32 // cycle at which the header is routable at its current switch
	upRem    int8  // remaining up hops before the turn
	reqPort  int16 // cached output-port request at the current switch
	reqAt    int32 // cycle the request was computed
}

// Sim holds all mutable simulation state for one run over one topology,
// routing function and traffic pattern.
type Sim struct {
	cfg Config
	c   *topology.Clos
	ud  *routing.UpDown
	pat traffic.Pattern
	rnd *rng.Rand

	terms        int
	termsPerLeaf int
	n1           int32 // leaf switch count; leaves are switches [0, n1)

	// Directed channels. Channel i carries packets from chFrom[i] to
	// chTo[i]; chPort[i] is its output-port index at chFrom[i].
	chFrom, chTo []int32
	chFreeAt     []int32

	// Per-switch topology-derived tables.
	upLen, downLen []int16   // port counts
	outCh          [][]int32 // channel id per output port (ups then downs)
	inCh           [][]int32 // incoming channel ids
	swQueued       []int32   // packets queued at this switch (incl. injection)

	// VC queues, flattened: index ch*VCs+vc.
	qBuf       []int32 // ring storage, stride BufferPackets
	qHead      []uint8
	qLen       []uint8
	vcOccupied []uint8

	// Active-source lists: per switch, the sources (injection terminals
	// and VC queues) that currently hold at least one packet. Entries are
	// appended on enqueue and lazily removed when found empty, so
	// arbitration never scans empty queues.
	activeSrc   [][]int64
	inActiveQ   []bool // per VC queue
	inActiveInj []bool // per terminal

	// Terminal state.
	srcQ      [][]int32
	injFreeAt []int32
	ejFreeAt  []int32
	nextGen   []int32

	// Packet pool.
	pool []packet
	free []int32

	// Event ring: tail-departure buffer releases and deliveries.
	ringSize  int32
	relBucket [][]int32 // channel-vc codes
	delBucket [][]int32 // packet ids

	// Stats.
	cycle         int32
	measuring     bool
	lat           metrics.Histogram
	generated     int
	delivered     int
	droppedSrc    int
	unroutable    int
	totGenerated  int
	totDelivered  int
	totDropped    int
	totUnroutable int
	inFlight      int
	lastDelivery  int32

	// Timeline interval accumulators (Config.SampleInterval > 0).
	timeline  []TimePoint
	intGen    int
	intDel    int
	intLatSum float64

	// Arbitration scratch, sized to the max outputs of any switch.
	candCount []int32
	candSrc   []int64
	usedPorts []int32
}

// New builds a simulator over the given (possibly faulted) topology, its
// routing state and a traffic pattern. The Config's zero fields take Table
// 2 defaults.
func New(c *topology.Clos, ud *routing.UpDown, pat traffic.Pattern, cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg:          cfg,
		c:            c,
		ud:           ud,
		pat:          pat,
		rnd:          rng.New(cfg.Seed),
		terms:        c.Terminals(),
		termsPerLeaf: c.TermsPerLeaf,
		n1:           int32(c.LevelSize(1)),
	}
	s.buildChannels()
	s.buildState()
	return s
}

func (s *Sim) buildChannels() {
	c := s.c
	n := c.NumSwitches()
	s.upLen = make([]int16, n)
	s.downLen = make([]int16, n)
	s.outCh = make([][]int32, n)
	s.inCh = make([][]int32, n)
	for sw := int32(0); sw < int32(n); sw++ {
		ups, downs := c.Up(sw), c.Down(sw)
		s.upLen[sw] = int16(len(ups))
		s.downLen[sw] = int16(len(downs))
		s.outCh[sw] = make([]int32, len(ups)+len(downs))
		for i, to := range ups {
			ch := int32(len(s.chFrom))
			s.chFrom = append(s.chFrom, sw)
			s.chTo = append(s.chTo, to)
			s.outCh[sw][i] = ch
		}
		for i, to := range downs {
			ch := int32(len(s.chFrom))
			s.chFrom = append(s.chFrom, sw)
			s.chTo = append(s.chTo, to)
			s.outCh[sw][len(ups)+i] = ch
		}
	}
	for ch := range s.chFrom {
		s.inCh[s.chTo[ch]] = append(s.inCh[s.chTo[ch]], int32(ch))
	}
	s.chFreeAt = make([]int32, len(s.chFrom))
}

func (s *Sim) buildState() {
	cfg := s.cfg
	nvc := len(s.chFrom) * cfg.VCs
	s.qBuf = make([]int32, nvc*cfg.BufferPackets)
	s.qHead = make([]uint8, nvc)
	s.qLen = make([]uint8, nvc)
	s.vcOccupied = make([]uint8, nvc)
	s.swQueued = make([]int32, s.c.NumSwitches())
	s.activeSrc = make([][]int64, s.c.NumSwitches())
	s.inActiveQ = make([]bool, nvc)
	s.inActiveInj = make([]bool, s.terms)

	s.srcQ = make([][]int32, s.terms)
	s.injFreeAt = make([]int32, s.terms)
	s.ejFreeAt = make([]int32, s.terms)
	s.nextGen = make([]int32, s.terms)

	s.ringSize = int32(cfg.PacketLength + cfg.LinkLatency + 2)
	s.relBucket = make([][]int32, s.ringSize)
	s.delBucket = make([][]int32, s.ringSize)

	maxOut := 0
	for sw := range s.outCh {
		out := len(s.outCh[sw]) + s.termsPerLeaf
		if out > maxOut {
			maxOut = out
		}
	}
	s.candCount = make([]int32, maxOut)
	s.candSrc = make([]int64, maxOut)
	s.usedPorts = make([]int32, 0, maxOut)
}

// Run simulates warm-up plus the measurement window at the given offered
// load (phits per terminal per cycle) and returns the measured Result. A
// Sim must not be reused after Run.
func (s *Sim) Run(load float64) Result {
	if load < 0 {
		load = 0
	}
	p := load / float64(s.cfg.PacketLength) // packet generation probability per cycle
	for t := 0; t < s.terms; t++ {
		s.nextGen[t] = s.drawGap(p)
	}
	warm := int32(s.cfg.WarmupCycles)
	s.cycle = 0
	s.advance(warm, p)
	if s.cfg.AutoWarmup {
		// Keep warming in half-windows until the delivery rate of two
		// consecutive windows agrees within 5%, capped at 8x the base
		// warm-up.
		win := warm / 2
		if win < 100 {
			win = 100
		}
		prev := -1
		for extra := int32(0); extra < 8*warm; extra += win {
			before := s.totDelivered
			s.advance(win, p)
			cur := s.totDelivered - before
			if prev >= 0 && rateStable(prev, cur) {
				break
			}
			prev = cur
		}
	}
	s.measuring = true
	s.generated, s.delivered, s.droppedSrc, s.unroutable = 0, 0, 0, 0
	s.lat = metrics.Histogram{}
	s.advance(int32(s.cfg.MeasureCycles), p)
	total := s.cycle
	inSource := 0
	for t := range s.srcQ {
		inSource += len(s.srcQ[t])
	}
	res := Result{
		OfferedLoad:     load,
		AcceptedLoad:    float64(s.delivered*s.cfg.PacketLength) / (float64(s.terms) * float64(s.cfg.MeasureCycles)),
		AvgLatency:      s.lat.Mean(),
		P50Latency:      s.lat.Quantile(0.50),
		P95Latency:      s.lat.Quantile(0.95),
		P99Latency:      s.lat.Quantile(0.99),
		MaxLatency:      s.lat.Max(),
		Generated:       s.generated,
		Delivered:       s.delivered,
		DroppedAtSource: s.droppedSrc,
		UnroutableDrops: s.unroutable,
		MeasuredCycles:  s.cfg.MeasureCycles,
		TotalGenerated:  s.totGenerated,
		TotalDelivered:  s.totDelivered,
		TotalDropped:    s.totDropped,
		TotalUnroutable: s.totUnroutable,
		InFlightAtEnd:   s.inFlight,
		InSourceAtEnd:   inSource,
	}
	// Stall watchdog: packets inside the network but no delivery for the
	// last quarter of the run indicates livelock/deadlock — which correct
	// up/down routing makes impossible.
	inNetwork := s.inFlight - inSource
	quiet := total - s.lastDelivery
	res.Stalled = inNetwork > 0 && quiet > int32(s.cfg.MeasureCycles)/4
	res.Timeline = s.timeline
	return res
}

// advance simulates n cycles.
func (s *Sim) advance(n int32, p float64) {
	for end := s.cycle + n; s.cycle < end; s.cycle++ {
		s.processEvents()
		s.generate(p)
		s.arbitrate()
		if si := s.cfg.SampleInterval; si > 0 && (int(s.cycle)+1)%si == 0 {
			tp := TimePoint{
				Cycle:     int(s.cycle) + 1,
				Generated: s.intGen,
				Delivered: s.intDel,
				InFlight:  s.inFlight,
			}
			if s.intDel > 0 {
				tp.AvgLatency = s.intLatSum / float64(s.intDel)
			}
			s.timeline = append(s.timeline, tp)
			s.intGen, s.intDel, s.intLatSum = 0, 0, 0
		}
	}
}

// rateStable reports whether two consecutive window delivery counts agree
// within 5%.
func rateStable(a, b int) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	max := a
	if b > max {
		max = b
	}
	if max == 0 {
		return true
	}
	return float64(diff) <= 0.05*float64(max)
}

// drawGap samples the number of cycles until the next packet generation
// (geometric with parameter p, support {1, 2, ...}).
func (s *Sim) drawGap(p float64) int32 {
	if p <= 0 {
		return math.MaxInt32
	}
	if p >= 1 {
		return 1
	}
	u := s.rnd.Float64()
	for u == 0 {
		u = s.rnd.Float64()
	}
	g := int32(math.Log(u)/math.Log(1-p)) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// processEvents applies this cycle's buffer releases and deliveries.
func (s *Sim) processEvents() {
	slot := s.cycle % s.ringSize
	for _, code := range s.relBucket[slot] {
		s.vcOccupied[code]--
	}
	s.relBucket[slot] = s.relBucket[slot][:0]
	for _, pk := range s.delBucket[slot] {
		p := &s.pool[pk]
		s.totDelivered++
		s.inFlight--
		s.lastDelivery = s.cycle
		s.intDel++
		s.intLatSum += float64(s.cycle - p.genAt)
		if s.measuring {
			s.delivered++
			s.lat.Add(int(s.cycle - p.genAt))
		}
		s.free = append(s.free, pk)
	}
	s.delBucket[slot] = s.delBucket[slot][:0]
}

// generate creates new packets at every terminal whose generation timer
// fires this cycle.
func (s *Sim) generate(p float64) {
	if p <= 0 {
		return
	}
	for t := 0; t < s.terms; t++ {
		if s.nextGen[t] > s.cycle {
			continue
		}
		s.nextGen[t] = s.cycle + s.drawGap(p)
		dst := s.pat.Dest(t, s.rnd)
		if dst < 0 {
			continue // silent terminal (odd pairing)
		}
		srcLeaf := int(s.c.LeafOfTerminal(t))
		dstLeaf := int(s.c.LeafOfTerminal(dst))
		turn := s.ud.MinTurn(srcLeaf, dstLeaf)
		if turn < 0 {
			// No surviving up/down path for this pair (faulty network).
			s.totUnroutable++
			if s.measuring {
				s.unroutable++
			}
			continue
		}
		if s.measuring {
			s.generated++
		}
		s.totGenerated++
		s.intGen++
		if len(s.srcQ[t]) >= s.cfg.SourceQueueCap {
			s.totDropped++
			if s.measuring {
				s.droppedSrc++
			}
			continue
		}
		pk := s.alloc()
		pp := &s.pool[pk]
		pp.src, pp.dst = int32(t), int32(dst)
		pp.genAt = s.cycle
		pp.readyAt = s.cycle
		pp.upRem = int8(turn)
		pp.reqPort = reqUnset
		s.srcQ[t] = append(s.srcQ[t], pk)
		s.swQueued[srcLeaf]++
		s.inFlight++
		if !s.inActiveInj[t] {
			s.inActiveInj[t] = true
			s.activeSrc[srcLeaf] = append(s.activeSrc[srcLeaf], encodeInj(int32(t)))
		}
	}
}

func (s *Sim) alloc() int32 {
	if n := len(s.free); n > 0 {
		pk := s.free[n-1]
		s.free = s.free[:n-1]
		return pk
	}
	s.pool = append(s.pool, packet{})
	return int32(len(s.pool) - 1)
}

// source encoding for arbitration: negative values -(t+1) are terminal
// injection queues, non-negative are channel*VCs+vc queue indices.
func encodeInj(term int32) int64 { return -int64(term) - 1 }

// arbitrate performs one iteration of per-output random arbitration at
// every switch with queued packets and dispatches the winners.
func (s *Sim) arbitrate() {
	for sw := int32(0); sw < int32(len(s.outCh)); sw++ {
		list := s.activeSrc[sw]
		if len(list) == 0 {
			continue
		}
		s.usedPorts = s.usedPorts[:0]
		// Scan active sources; lazily drop the ones that emptied.
		for i := 0; i < len(list); {
			src := list[i]
			if src < 0 {
				term := int32(-src - 1)
				if len(s.srcQ[term]) == 0 {
					s.inActiveInj[term] = false
					list[i] = list[len(list)-1]
					list = list[:len(list)-1]
					continue
				}
				if s.injFreeAt[term] <= s.cycle {
					s.consider(sw, s.srcQ[term][0], src)
				}
			} else {
				q := int32(src)
				if s.qLen[q] == 0 {
					s.inActiveQ[q] = false
					list[i] = list[len(list)-1]
					list = list[:len(list)-1]
					continue
				}
				pk := s.qBuf[int(q)*s.cfg.BufferPackets+int(s.qHead[q])]
				if s.pool[pk].readyAt <= s.cycle {
					s.consider(sw, pk, src)
				}
			}
			i++
		}
		s.activeSrc[sw] = list
		// Dispatch one winner per requested output port.
		for _, port := range s.usedPorts {
			src := s.candSrc[port]
			s.candCount[port] = 0
			s.dispatch(sw, int(port), src)
		}
	}
}

// consider computes (or reuses) the head packet's output request at switch
// sw and registers it as an arbitration candidate if the output can accept
// it this cycle. Winner selection is reservoir sampling, giving each
// requester equal probability — the Table 2 random arbiter.
func (s *Sim) consider(sw int32, pk int32, src int64) {
	p := &s.pool[pk]
	if p.reqPort == reqUnset || s.cycle-p.reqAt >= int32(s.cfg.RequestRefresh) {
		p.reqPort = s.route(sw, p)
		p.reqAt = s.cycle
		if p.reqPort == reqUnset {
			return // no viable next hop (faulted mid-flight); packet waits
		}
	}
	var portIdx int32
	if p.reqPort == reqEject {
		if s.cfg.InfiniteSink {
			// No reception bandwidth limit: consume immediately, without
			// competing for an ejection port.
			s.dispatch(sw, 0, src)
			return
		}
		// Ejection port of the destination terminal.
		local := int(p.dst) % s.termsPerLeaf
		portIdx = int32(len(s.outCh[sw]) + local)
		if s.ejFreeAt[p.dst] > s.cycle {
			return
		}
	} else {
		portIdx = int32(p.reqPort)
		ch := s.outCh[sw][portIdx]
		if s.chFreeAt[ch] > s.cycle {
			return
		}
		if !s.hasVCSpace(ch) {
			return
		}
	}
	s.candCount[portIdx]++
	if s.candCount[portIdx] == 1 {
		s.usedPorts = append(s.usedPorts, portIdx)
		s.candSrc[portIdx] = src
	} else if s.rnd.Intn(int(s.candCount[portIdx])) == 0 {
		s.candSrc[portIdx] = src
	}
}

// route picks the packet's output request at switch sw: ejection at the
// destination leaf, then a qualifying up port during the ascent or down
// port during the descent — chosen uniformly at random per request (Table
// 2's "up/down random") or by deterministic flow hash (Config.HashRouting).
func (s *Sim) route(sw int32, p *packet) int16 {
	dstLeaf := int(s.c.LeafOfTerminal(int(p.dst)))
	if int(sw) == dstLeaf && sw < s.n1 {
		return reqEject
	}
	if s.cfg.HashRouting {
		key := flowHash(p.src, p.dst, sw)
		if p.upRem > 0 {
			if port := s.ud.NextUpPortHash(sw, int(p.upRem), dstLeaf, key); port >= 0 {
				return int16(port)
			}
			return reqUnset
		}
		if port := s.ud.NextDownPortHash(sw, dstLeaf, key); port >= 0 {
			return int16(int(s.upLen[sw]) + port)
		}
		return reqUnset
	}
	if p.upRem > 0 {
		if port := s.ud.NextUpPort(sw, int(p.upRem), dstLeaf, s.rnd); port >= 0 {
			return int16(port)
		}
		return reqUnset
	}
	if port := s.ud.NextDownPort(sw, dstLeaf, s.rnd); port >= 0 {
		return int16(int(s.upLen[sw]) + port)
	}
	return reqUnset
}

// flowHash mixes the flow identifier and the current switch into a D-mod-K
// selection key (fmix-style avalanche).
func flowHash(src, dst, sw int32) uint32 {
	x := uint64(uint32(src))<<40 ^ uint64(uint32(dst))<<16 ^ uint64(uint32(sw))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}

// hasVCSpace reports whether any VC of channel ch can accept a packet.
func (s *Sim) hasVCSpace(ch int32) bool {
	base := ch * int32(s.cfg.VCs)
	for vc := int32(0); vc < int32(s.cfg.VCs); vc++ {
		if int(s.vcOccupied[base+vc]) < s.cfg.BufferPackets {
			return true
		}
	}
	return false
}

// dispatch moves the winning packet out of its source queue and onto its
// requested output.
func (s *Sim) dispatch(sw int32, port int, src int64) {
	var pk int32
	if src < 0 {
		term := int32(-src - 1)
		pk = s.srcQ[term][0]
		s.srcQ[term] = s.srcQ[term][1:]
		s.injFreeAt[term] = s.cycle + int32(s.cfg.PacketLength)
	} else {
		q := int32(src)
		pk = s.qBuf[int(q)*s.cfg.BufferPackets+int(s.qHead[q])]
		s.qHead[q] = uint8((int(s.qHead[q]) + 1) % s.cfg.BufferPackets)
		s.qLen[q]--
		// The buffer slot frees when the tail streams out.
		s.scheduleRelease(q, s.cycle+int32(s.cfg.PacketLength))
	}
	s.swQueued[sw]--
	p := &s.pool[pk]

	if p.reqPort == reqEject {
		s.ejFreeAt[p.dst] = s.cycle + int32(s.cfg.PacketLength)
		s.scheduleDelivery(pk, s.cycle+int32(s.cfg.PacketLength))
		return
	}

	ch := s.outCh[sw][port]
	// Choose a VC uniformly among those with space.
	base := ch * int32(s.cfg.VCs)
	chosen, count := int32(-1), 0
	for vc := int32(0); vc < int32(s.cfg.VCs); vc++ {
		if int(s.vcOccupied[base+vc]) < s.cfg.BufferPackets {
			count++
			if count == 1 || s.rnd.Intn(count) == 0 {
				chosen = base + vc
			}
		}
	}
	if chosen < 0 {
		panic("simnet: dispatch without VC space (arbitration bug)")
	}
	s.chFreeAt[ch] = s.cycle + int32(s.cfg.PacketLength)
	s.vcOccupied[chosen]++
	// Enqueue at the receiving switch; header routable after LinkLatency.
	q := chosen
	tail := (int(s.qHead[q]) + int(s.qLen[q])) % s.cfg.BufferPackets
	s.qBuf[int(q)*s.cfg.BufferPackets+tail] = pk
	s.qLen[q]++
	to := s.chTo[ch]
	s.swQueued[to]++
	if !s.inActiveQ[q] {
		s.inActiveQ[q] = true
		s.activeSrc[to] = append(s.activeSrc[to], int64(q))
	}
	p.readyAt = s.cycle + int32(s.cfg.LinkLatency)
	if port < int(s.upLen[sw]) {
		p.upRem--
	}
	p.reqPort = reqUnset
}

func (s *Sim) scheduleRelease(qcode, at int32) {
	slot := at % s.ringSize
	s.relBucket[slot] = append(s.relBucket[slot], qcode)
}

func (s *Sim) scheduleDelivery(pk, at int32) {
	slot := at % s.ringSize
	s.delBucket[slot] = append(s.delBucket[slot], pk)
}
