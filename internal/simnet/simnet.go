// Package simnet simulates folded-Clos (indirect) networks under the INSEE
// configuration of Table 2: 4 virtual channels, 4-packet buffers per VC,
// 16-phit packets, 1-cycle links, random output arbitration with one
// iteration per cycle, shortest injection and random up/down request
// routing, a warm-up phase followed by a measured window.
//
// It is a thin adapter over the unified cycle engine (internal/simcore),
// which owns the entire virtual cut-through machinery; this package
// contributes only the topology wiring (up ports before down ports at every
// switch) and the up/down routing policy. Up/down routing needs no VCs for
// deadlock freedom; the 4 VCs reduce head-of-line blocking exactly as in
// the paper.
package simnet

import (
	"rfclos/internal/routing"
	"rfclos/internal/simcore"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Config carries the Table 2 simulation parameters (shared engine type).
type Config = simcore.Config

// TimePoint is one Timeline sample (shared engine type).
type TimePoint = simcore.TimePoint

// Result reports one simulation run (shared engine type).
type Result = simcore.Result

// DefaultConfig returns the Table 2 parameters with a 2,000-cycle warm-up.
func DefaultConfig() Config { return simcore.DefaultConfig() }

// Sim simulates one folded Clos network under one traffic pattern.
type Sim struct {
	eng *simcore.Engine
}

// New builds a simulator over the given (possibly faulted) topology, its
// routing state and a traffic pattern. The Config's zero fields take Table
// 2 defaults.
func New(c *topology.Clos, ud *routing.UpDown, pat traffic.Pattern, cfg Config) *Sim {
	spec := simcore.Spec{
		Switches:  c.NumSwitches(),
		Ports:     make([][]int32, c.NumSwitches()),
		Terminals: c.Terminals(),
		TermsPer:  c.TermsPerLeaf,
	}
	for sw := int32(0); sw < int32(spec.Switches); sw++ {
		ups, downs := c.Up(sw), c.Down(sw)
		ports := make([]int32, 0, len(ups)+len(downs))
		ports = append(ports, ups...)
		ports = append(ports, downs...)
		spec.Ports[sw] = ports
	}
	r := UpDownRouter(c, ud, cfg.HashRouting)
	return &Sim{eng: simcore.New(spec, r, pat, cfg)}
}

// Run simulates warm-up plus the measurement window at the given offered
// load (phits per terminal per cycle) and returns the measured Result. A
// Sim must not be reused after Run.
func (s *Sim) Run(load float64) Result { return s.eng.Run(load) }
