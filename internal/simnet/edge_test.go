package simnet

import (
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Edge-configuration tests: the simulator must stay correct (conserving
// packets, deadlock-free) at extreme parameter settings.

func TestSingleVCSingleBuffer(t *testing.T) {
	// Up/down routing is deadlock-free without virtual channels; even with
	// one VC and one buffer slot the network must keep delivering at full
	// offered load.
	c, ud := buildCFT(t, 8, 3)
	cfg := testConfig()
	cfg.VCs = 1
	cfg.BufferPackets = 1
	s := New(c, ud, traffic.NewUniform(c.Terminals()), cfg)
	r := s.Run(1.0)
	checkConservation(t, r)
	if r.Delivered == 0 {
		t.Fatal("deadlock or total stall with 1 VC / 1 buffer")
	}
	if r.AcceptedLoad < 0.15 {
		t.Errorf("accepted %v suspiciously low even for minimal buffering", r.AcceptedLoad)
	}
}

func TestMoreVCsHelpUnderLoad(t *testing.T) {
	c, ud := buildCFT(t, 8, 3)
	accepted := func(vcs int) float64 {
		cfg := testConfig()
		cfg.VCs = vcs
		return New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(1.0).AcceptedLoad
	}
	one, four := accepted(1), accepted(4)
	if four < one-0.02 {
		t.Errorf("4 VCs (%v) should not be worse than 1 VC (%v)", four, one)
	}
}

func TestLongerLinkLatency(t *testing.T) {
	c, ud := buildCFT(t, 8, 2)
	base := testConfig()
	slow := testConfig()
	slow.LinkLatency = 4
	rBase := New(c, ud, traffic.NewUniform(c.Terminals()), base).Run(0.05)
	rSlow := New(c, ud, traffic.NewUniform(c.Terminals()), slow).Run(0.05)
	checkConservation(t, rSlow)
	// Each hop costs 3 extra cycles; the 2-hop (plus injection) path
	// should show a clearly higher but bounded latency increase.
	if rSlow.AvgLatency <= rBase.AvgLatency {
		t.Errorf("latency with slower links (%v) not above baseline (%v)",
			rSlow.AvgLatency, rBase.AvgLatency)
	}
	if rSlow.AvgLatency > rBase.AvgLatency+16 {
		t.Errorf("latency increase too large: %v vs %v", rSlow.AvgLatency, rBase.AvgLatency)
	}
}

func TestShortPackets(t *testing.T) {
	c, ud := buildCFT(t, 8, 2)
	cfg := testConfig()
	cfg.PacketLength = 4
	r := New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0.5)
	checkConservation(t, r)
	// Shorter packets mean lower serialization latency.
	if r.AvgLatency > 40 {
		t.Errorf("4-phit packet latency %v too high", r.AvgLatency)
	}
	if r.AcceptedLoad < 0.45 {
		t.Errorf("accepted %v below offered at moderate load", r.AcceptedLoad)
	}
}

func TestTinySourceQueue(t *testing.T) {
	// With a one-packet source queue at saturation, drops at the source
	// are expected but conservation must hold and throughput stays near
	// the network's capacity.
	c, ud := buildCFT(t, 8, 3)
	cfg := testConfig()
	cfg.SourceQueueCap = 1
	r := New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(1.0)
	checkConservation(t, r)
	if r.DroppedAtSource == 0 {
		t.Error("expected source drops at saturation with a 1-packet queue")
	}
	if r.AcceptedLoad < 0.4 {
		t.Errorf("accepted %v too low", r.AcceptedLoad)
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	c, ud := buildCFT(t, 8, 3)
	r := New(c, ud, traffic.NewUniform(c.Terminals()), testConfig()).Run(0.7)
	if r.AvgLatency > r.P99Latency {
		t.Errorf("avg %v above p99 %v", r.AvgLatency, r.P99Latency)
	}
	if r.P99Latency > r.MaxLatency*2 {
		t.Errorf("p99 estimate %v far above max %v", r.P99Latency, r.MaxLatency)
	}
}

func TestRFCvsCFTUniformParity(t *testing.T) {
	// §6 headline: under uniform traffic the equal-resources CFT and RFC
	// perform almost identically. Allow a modest tolerance at this scale.
	cft, cud := buildCFT(t, 12, 3)
	rfc, rud := buildRFC(t, 12, 3, cft.LevelSize(1))
	cfg := testConfig()
	a := New(cft, cud, traffic.NewUniform(cft.Terminals()), cfg).Run(0.9).AcceptedLoad
	b := New(rfc, rud, traffic.NewUniform(rfc.Terminals()), cfg).Run(0.9).AcceptedLoad
	if diff := a - b; diff > 0.12 || diff < -0.12 {
		t.Errorf("uniform parity violated: CFT %v vs RFC %v", a, b)
	}
}

func TestPairingCFTBeatsRFC(t *testing.T) {
	// §6: under random-pairing the rearrangeably non-blocking CFT keeps an
	// edge over the RFC (paper: RFC delivers ~88% of the CFT's rate in the
	// equal-resources scenario).
	cft, cud := buildCFT(t, 12, 3)
	rfc, rud := buildRFC(t, 12, 3, cft.LevelSize(1))
	cfg := testConfig()
	cfg.MeasureCycles = 3000
	r := rng.New(17)
	var cftAcc, rfcAcc float64
	const reps = 3
	for i := 0; i < reps; i++ {
		seedCfg := cfg
		seedCfg.Seed = uint64(100 + i)
		cftAcc += New(cft, cud, traffic.NewPairing(cft.Terminals(), r), seedCfg).Run(1.0).AcceptedLoad
		rfcAcc += New(rfc, rud, traffic.NewPairing(rfc.Terminals(), r), seedCfg).Run(1.0).AcceptedLoad
	}
	cftAcc /= reps
	rfcAcc /= reps
	if rfcAcc > cftAcc {
		t.Logf("note: RFC (%v) above CFT (%v) under pairing at this scale", rfcAcc, cftAcc)
	}
	if rfcAcc < cftAcc*0.6 {
		t.Errorf("RFC pairing throughput %v below 60%% of CFT %v (paper: ~88%%)", rfcAcc, cftAcc)
	}
}

func TestTopologyWithoutTrafficForSilentTerminals(t *testing.T) {
	// Odd terminal counts leave one silent node under pairing; the
	// simulator must handle Dest == -1.
	c, err := topology.NewCFTWithTerminals(6, 2, 3) // 9 terminals... 3 per leaf, 3 leaves? compute below
	if err != nil {
		t.Fatal(err)
	}
	if c.Terminals()%2 == 0 {
		t.Skip("terminal count even; pairing has no silent node")
	}
	ud := routing.New(c)
	pat := traffic.NewPairing(c.Terminals(), rng.New(3))
	r := New(c, ud, pat, testConfig()).Run(0.5)
	checkConservation(t, r)
}

func TestInfiniteSinkLiftsEjectionBound(t *testing.T) {
	// With an infinite reception rate, the all-to-one pattern is no longer
	// capped at one phit per cycle in aggregate; the down tree into the
	// hot leaf becomes the limit instead, which is far higher.
	c, ud := buildCFT(t, 4, 2)
	cfg := testConfig()
	cfg.InfiniteSink = true
	r := New(c, ud, allToZero{}, cfg).Run(1.0)
	checkConservation(t, r)
	// Capacity into the hot leaf: its 2 up-links plus the co-located
	// sender = 3 phits/cycle, i.e. 3/T per terminal — well above the
	// finite-sink bound of 1/T.
	finiteBound := 1.0 / float64(c.Terminals())
	if r.AcceptedLoad < 2.5*finiteBound {
		t.Errorf("infinite sink accepted %v, want well above the finite bound %v",
			r.AcceptedLoad, finiteBound)
	}
	if r.AcceptedLoad > 3.1*finiteBound {
		t.Errorf("accepted %v above the hot-leaf capacity %v", r.AcceptedLoad, 3*finiteBound)
	}
}

func TestInfiniteSinkUniformUnchanged(t *testing.T) {
	// Under uniform traffic reception is rarely the bottleneck, so the two
	// sink models should roughly agree.
	c, ud := buildCFT(t, 8, 3)
	base := testConfig()
	inf := testConfig()
	inf.InfiniteSink = true
	a := New(c, ud, traffic.NewUniform(c.Terminals()), base).Run(0.6).AcceptedLoad
	b := New(c, ud, traffic.NewUniform(c.Terminals()), inf).Run(0.6).AcceptedLoad
	if diff := a - b; diff > 0.08 || diff < -0.08 {
		t.Errorf("sink models diverge under uniform: %v vs %v", a, b)
	}
}

func TestHashRoutingWorks(t *testing.T) {
	// Deterministic D-mod-K routing still delivers everything and stays
	// deadlock-free; throughput is at most modestly below the random
	// request mode (flow pinning concentrates collisions).
	c, ud := buildCFT(t, 8, 3)
	cfg := testConfig()
	cfg.HashRouting = true
	r := New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0.8)
	checkConservation(t, r)
	if r.Stalled {
		t.Fatal("hash routing stalled")
	}
	if r.AcceptedLoad < 0.3 {
		t.Errorf("hash routing accepted %v, suspiciously low", r.AcceptedLoad)
	}
	base := testConfig()
	rnd := New(c, ud, traffic.NewUniform(c.Terminals()), base).Run(0.8)
	if r.AcceptedLoad > rnd.AcceptedLoad+0.05 {
		t.Errorf("hash routing (%v) should not beat random requests (%v)",
			r.AcceptedLoad, rnd.AcceptedLoad)
	}
}

func TestTimelineSampling(t *testing.T) {
	c, ud := buildCFT(t, 8, 2)
	cfg := testConfig()
	cfg.SampleInterval = 250
	r := New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0.5)
	total := cfg.WarmupCycles + cfg.MeasureCycles
	want := total / cfg.SampleInterval
	if len(r.Timeline) != want {
		t.Fatalf("timeline has %d samples, want %d", len(r.Timeline), want)
	}
	sumGen, sumDel := 0, 0
	for i, tp := range r.Timeline {
		if tp.Cycle != (i+1)*cfg.SampleInterval {
			t.Errorf("sample %d at cycle %d, want %d", i, tp.Cycle, (i+1)*cfg.SampleInterval)
		}
		if tp.InFlight < 0 || tp.AvgLatency < 0 {
			t.Errorf("sample %d has negative stats: %+v", i, tp)
		}
		sumGen += tp.Generated
		sumDel += tp.Delivered
	}
	if sumGen != r.TotalGenerated {
		t.Errorf("timeline generated %d != total %d", sumGen, r.TotalGenerated)
	}
	if sumDel > r.TotalDelivered || sumDel < r.TotalDelivered-r.InFlightAtEnd {
		t.Errorf("timeline delivered %d inconsistent with total %d", sumDel, r.TotalDelivered)
	}
	// Steady state: delivery rate in the second half should roughly match
	// generation rate at this moderate load.
	tail := r.Timeline[len(r.Timeline)/2:]
	g, d := 0, 0
	for _, tp := range tail {
		g += tp.Generated
		d += tp.Delivered
	}
	if d < g*8/10 {
		t.Errorf("steady-state delivery %d far below generation %d", d, g)
	}
}

func TestAutoWarmup(t *testing.T) {
	c, ud := buildCFT(t, 8, 2)
	cfg := testConfig()
	cfg.WarmupCycles = 200
	cfg.AutoWarmup = true
	cfg.SampleInterval = 100
	r := New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0.7)
	checkConservation(t, r)
	// Auto-warmup extends the run: total sampled cycles exceed the fixed
	// warm-up plus measurement window only if extra windows ran; at least
	// the base amount must be present and results stay sane.
	totalCycles := r.Timeline[len(r.Timeline)-1].Cycle
	if totalCycles < cfg.WarmupCycles+cfg.MeasureCycles {
		t.Errorf("total cycles %d below base %d", totalCycles, cfg.WarmupCycles+cfg.MeasureCycles)
	}
	if r.AcceptedLoad < 0.6 || r.AcceptedLoad > 0.75 {
		t.Errorf("accepted %v with auto-warmup", r.AcceptedLoad)
	}
	// Zero load terminates immediately (stable at 0 deliveries).
	z := New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(0)
	if z.TotalGenerated != 0 {
		t.Error("zero load generated packets")
	}
}
