// Package simdirect simulates direct networks — the Jellyfish-style random
// regular networks (RRN) the paper uses as its random baseline but
// deliberately leaves out of its simulations (§6: "the Jellyfish ... is out
// of the natural competition"). This package makes the comparison possible
// anyway, as an extension.
//
// It is a thin adapter over the unified cycle engine (internal/simcore): the
// engine owns the entire virtual cut-through machinery, and this package
// contributes only the topology wiring and the minimal-path routing policy.
// Routing is equal-cost multi-path over shortest paths: per hop, the packet
// picks uniformly among neighbours one hop closer to the destination
// (precomputed distance tables). Unlike a folded Clos, a direct network's
// shortest-path channel dependency graph contains cycles, so deadlock
// freedom needs a mechanism — exactly the §1/§6 cost the paper attributes
// to Jellyfish. Here the standard hop-indexed virtual-channel scheme is
// used: a packet at hop h occupies VC h, and since h strictly increases
// along a route the channel dependency graph is acyclic. This requires
// VCs >= network diameter; New enforces it (and that requirement, compared
// with the RFC's zero VCs needed for deadlock freedom, is itself one of
// the paper's arguments).
package simdirect

import (
	"fmt"

	"rfclos/internal/simcore"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Config mirrors simnet.Config for the direct-network case. VCs must be at
// least the network diameter (hop-indexed deadlock avoidance).
type Config struct {
	VCs            int
	BufferPackets  int
	PacketLength   int
	LinkLatency    int
	WarmupCycles   int
	MeasureCycles  int
	SourceQueueCap int
	Seed           uint64
}

// engineConfig maps onto the shared engine Config — the one defaulting path
// for both network classes. RequestRefresh is pinned to 1 because the
// minimal router's random hop choice must be re-drawn every cycle a head
// packet stays blocked (INSEE behaviour); every cross-cycle request cache
// would freeze a random choice the policy re-randomises.
func (c Config) engineConfig() simcore.Config {
	return simcore.Config{
		VCs:            c.VCs,
		BufferPackets:  c.BufferPackets,
		PacketLength:   c.PacketLength,
		LinkLatency:    c.LinkLatency,
		WarmupCycles:   c.WarmupCycles,
		MeasureCycles:  c.MeasureCycles,
		SourceQueueCap: c.SourceQueueCap,
		Seed:           c.Seed,
		RequestRefresh: 1,
	}.WithDefaults()
}

// Result aliases the indirect simulator's result type: the statistics have
// identical meaning.
type Result = simnet.Result

// Sim simulates one RRN under one traffic pattern.
type Sim struct {
	eng *simcore.Engine
}

// New builds the simulator, computing all-pairs distance tables. It fails
// when the graph is disconnected or the VC count cannot cover the diameter.
func New(rrn *topology.RRN, pat traffic.Pattern, cfg Config) (*Sim, error) {
	ec := cfg.engineConfig()
	router, diameter, err := MinimalRouter(rrn)
	if err != nil {
		return nil, err
	}
	if ec.VCs < diameter {
		return nil, fmt.Errorf("simdirect: %d VCs cannot cover diameter %d (hop-indexed deadlock avoidance)",
			ec.VCs, diameter)
	}
	n := rrn.G.N()
	spec := simcore.Spec{
		Switches:  n,
		Ports:     make([][]int32, n),
		Terminals: rrn.Terminals(),
		TermsPer:  rrn.TermsPerSwitch,
	}
	for sw := 0; sw < n; sw++ {
		spec.Ports[sw] = rrn.G.Neighbors(sw)
	}
	return &Sim{eng: simcore.New(spec, router, pat, ec)}, nil
}

// Run simulates warm-up plus the measurement window at the offered load.
func (s *Sim) Run(load float64) Result {
	return s.eng.Run(load)
}
