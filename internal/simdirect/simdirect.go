// Package simdirect is a cycle-driven virtual cut-through simulator for
// direct networks — the Jellyfish-style random regular networks (RRN) the
// paper uses as its random baseline but deliberately leaves out of its
// simulations (§6: "the Jellyfish ... is out of the natural competition").
// This package makes the comparison possible anyway, as an extension.
//
// Routing is equal-cost multi-path over shortest paths: per hop, the packet
// picks uniformly among neighbours one hop closer to the destination
// (precomputed distance tables). Unlike a folded Clos, a direct network's
// shortest-path channel dependency graph contains cycles, so deadlock
// freedom needs a mechanism — exactly the §1/§6 cost the paper attributes
// to Jellyfish. Here the standard hop-indexed virtual-channel scheme is
// used: a packet at hop h occupies VC h, and since h strictly increases
// along a route the channel dependency graph is acyclic. This requires
// VCs >= network diameter; New enforces it (and that requirement, compared
// with the RFC's zero VCs needed for deadlock freedom, is itself one of
// the paper's arguments).
package simdirect

import (
	"fmt"
	"math"

	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Config mirrors simnet.Config for the direct-network case. VCs must be at
// least the network diameter (hop-indexed deadlock avoidance).
type Config struct {
	VCs            int
	BufferPackets  int
	PacketLength   int
	LinkLatency    int
	WarmupCycles   int
	MeasureCycles  int
	SourceQueueCap int
	Seed           uint64
}

func (c Config) withDefaults() Config {
	d := simnet.DefaultConfig()
	if c.VCs <= 0 {
		c.VCs = d.VCs
	}
	if c.BufferPackets <= 0 {
		c.BufferPackets = d.BufferPackets
	}
	if c.PacketLength <= 0 {
		c.PacketLength = d.PacketLength
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = d.LinkLatency
	}
	if c.WarmupCycles <= 0 {
		c.WarmupCycles = d.WarmupCycles
	}
	if c.MeasureCycles <= 0 {
		c.MeasureCycles = d.MeasureCycles
	}
	if c.SourceQueueCap <= 0 {
		c.SourceQueueCap = d.SourceQueueCap
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result aliases the indirect simulator's result type: the statistics have
// identical meaning.
type Result = simnet.Result

type packet struct {
	src, dst  int32 // terminals
	dstSwitch int32
	genAt     int32
	readyAt   int32
	hop       int8 // hops taken so far = current VC index
}

// Sim simulates one RRN under one traffic pattern.
type Sim struct {
	cfg  Config
	rrn  *topology.RRN
	pat  traffic.Pattern
	rnd  *rng.Rand
	tps  int       // terminals per switch
	n    int       // switches
	dist [][]int32 // all-pairs hop distances

	// Directed channels: edge (u -> adj[u][i]) has a channel id.
	chTo     []int32
	chFreeAt []int32
	outCh    [][]int32 // per switch, aligned with G.Neighbors order
	inCh     [][]int32

	qBuf       []int32
	qHead      []uint8
	qLen       []uint8
	vcOccupied []uint8

	activeSrc   [][]int64
	inActiveQ   []bool
	inActiveInj []bool

	srcQ      [][]int32
	injFreeAt []int32
	ejFreeAt  []int32
	nextGen   []int32

	pool []packet
	free []int32

	ringSize  int32
	relBucket [][]int32
	delBucket [][]int32

	cycle        int32
	measuring    bool
	lat          metrics.Histogram
	generated    int
	delivered    int
	droppedSrc   int
	totGenerated int
	totDelivered int
	totDropped   int
	inFlight     int
	lastDelivery int32

	candCount []int32
	candSrc   []int64
	usedPorts []int32
}

// New builds the simulator, computing all-pairs distance tables. It fails
// when the graph is disconnected or the VC count cannot cover the diameter.
func New(rrn *topology.RRN, pat traffic.Pattern, cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	g := rrn.G
	n := g.N()
	s := &Sim{
		cfg: cfg, rrn: rrn, pat: pat,
		rnd: rng.New(cfg.Seed),
		tps: rrn.TermsPerSwitch,
		n:   n,
	}
	// Distance tables via BFS from every switch.
	s.dist = make([][]int32, n)
	diameter := 0
	for v := 0; v < n; v++ {
		s.dist[v] = g.BFS(v, nil)
		for _, d := range s.dist[v] {
			if d < 0 {
				return nil, fmt.Errorf("simdirect: network disconnected")
			}
			if int(d) > diameter {
				diameter = int(d)
			}
		}
	}
	if cfg.VCs < diameter {
		return nil, fmt.Errorf("simdirect: %d VCs cannot cover diameter %d (hop-indexed deadlock avoidance)",
			cfg.VCs, diameter)
	}
	// Channels.
	s.outCh = make([][]int32, n)
	s.inCh = make([][]int32, n)
	for u := 0; u < n; u++ {
		ns := g.Neighbors(u)
		s.outCh[u] = make([]int32, len(ns))
		for i, v := range ns {
			ch := int32(len(s.chTo))
			s.chTo = append(s.chTo, v)
			s.outCh[u][i] = ch
			s.inCh[v] = append(s.inCh[v], ch)
		}
	}
	s.chFreeAt = make([]int32, len(s.chTo))

	nvc := len(s.chTo) * cfg.VCs
	s.qBuf = make([]int32, nvc*cfg.BufferPackets)
	s.qHead = make([]uint8, nvc)
	s.qLen = make([]uint8, nvc)
	s.vcOccupied = make([]uint8, nvc)
	s.activeSrc = make([][]int64, n)
	s.inActiveQ = make([]bool, nvc)

	terms := rrn.Terminals()
	s.inActiveInj = make([]bool, terms)
	s.srcQ = make([][]int32, terms)
	s.injFreeAt = make([]int32, terms)
	s.ejFreeAt = make([]int32, terms)
	s.nextGen = make([]int32, terms)

	s.ringSize = int32(cfg.PacketLength + cfg.LinkLatency + 2)
	s.relBucket = make([][]int32, s.ringSize)
	s.delBucket = make([][]int32, s.ringSize)

	maxOut := 0
	for u := range s.outCh {
		if o := len(s.outCh[u]) + s.tps; o > maxOut {
			maxOut = o
		}
	}
	s.candCount = make([]int32, maxOut)
	s.candSrc = make([]int64, maxOut)
	s.usedPorts = make([]int32, 0, maxOut)
	return s, nil
}

// Run simulates warm-up plus the measurement window at the offered load.
func (s *Sim) Run(load float64) Result {
	if load < 0 {
		load = 0
	}
	p := load / float64(s.cfg.PacketLength)
	for t := range s.nextGen {
		s.nextGen[t] = s.drawGap(p)
	}
	warm := int32(s.cfg.WarmupCycles)
	total := warm + int32(s.cfg.MeasureCycles)
	for s.cycle = 0; s.cycle < total; s.cycle++ {
		if s.cycle == warm {
			s.measuring = true
			s.generated, s.delivered, s.droppedSrc = 0, 0, 0
			s.lat = metrics.Histogram{}
		}
		s.processEvents()
		s.generate(p)
		s.arbitrate()
	}
	inSource := 0
	for t := range s.srcQ {
		inSource += len(s.srcQ[t])
	}
	terms := len(s.srcQ)
	res := Result{
		OfferedLoad:     load,
		AcceptedLoad:    float64(s.delivered*s.cfg.PacketLength) / (float64(terms) * float64(s.cfg.MeasureCycles)),
		AvgLatency:      s.lat.Mean(),
		P50Latency:      s.lat.Quantile(0.50),
		P95Latency:      s.lat.Quantile(0.95),
		P99Latency:      s.lat.Quantile(0.99),
		MaxLatency:      s.lat.Max(),
		Generated:       s.generated,
		Delivered:       s.delivered,
		DroppedAtSource: s.droppedSrc,
		MeasuredCycles:  s.cfg.MeasureCycles,
		TotalGenerated:  s.totGenerated,
		TotalDelivered:  s.totDelivered,
		TotalDropped:    s.totDropped,
		InFlightAtEnd:   s.inFlight,
		InSourceAtEnd:   inSource,
	}
	res.Stalled = s.inFlight-inSource > 0 && total-s.lastDelivery > int32(s.cfg.MeasureCycles)/4
	return res
}

func (s *Sim) drawGap(p float64) int32 {
	if p <= 0 {
		return math.MaxInt32
	}
	if p >= 1 {
		return 1
	}
	u := s.rnd.Float64()
	for u == 0 {
		u = s.rnd.Float64()
	}
	g := int32(math.Log(u)/math.Log(1-p)) + 1
	if g < 1 {
		g = 1
	}
	return g
}

func (s *Sim) processEvents() {
	slot := s.cycle % s.ringSize
	for _, code := range s.relBucket[slot] {
		s.vcOccupied[code]--
	}
	s.relBucket[slot] = s.relBucket[slot][:0]
	for _, pk := range s.delBucket[slot] {
		p := &s.pool[pk]
		s.totDelivered++
		s.inFlight--
		s.lastDelivery = s.cycle
		if s.measuring {
			s.delivered++
			s.lat.Add(int(s.cycle - p.genAt))
		}
		s.free = append(s.free, pk)
	}
	s.delBucket[slot] = s.delBucket[slot][:0]
}

func (s *Sim) generate(p float64) {
	if p <= 0 {
		return
	}
	for t := range s.nextGen {
		if s.nextGen[t] > s.cycle {
			continue
		}
		s.nextGen[t] = s.cycle + s.drawGap(p)
		dst := s.pat.Dest(t, s.rnd)
		if dst < 0 {
			continue
		}
		if s.measuring {
			s.generated++
		}
		s.totGenerated++
		if len(s.srcQ[t]) >= s.cfg.SourceQueueCap {
			s.totDropped++
			if s.measuring {
				s.droppedSrc++
			}
			continue
		}
		pk := s.alloc()
		pp := &s.pool[pk]
		pp.src, pp.dst = int32(t), int32(dst)
		pp.dstSwitch = int32(dst / s.tps)
		pp.genAt, pp.readyAt = s.cycle, s.cycle
		pp.hop = 0
		s.srcQ[t] = append(s.srcQ[t], pk)
		sw := t / s.tps
		if !s.inActiveInj[t] {
			s.inActiveInj[t] = true
			s.activeSrc[sw] = append(s.activeSrc[sw], -int64(t)-1)
		}
		s.inFlight++
	}
}

func (s *Sim) alloc() int32 {
	if n := len(s.free); n > 0 {
		pk := s.free[n-1]
		s.free = s.free[:n-1]
		return pk
	}
	s.pool = append(s.pool, packet{})
	return int32(len(s.pool) - 1)
}

// arbitrate mirrors the indirect simulator: per-output random arbitration
// over the active sources at every switch.
func (s *Sim) arbitrate() {
	for sw := 0; sw < s.n; sw++ {
		list := s.activeSrc[sw]
		if len(list) == 0 {
			continue
		}
		s.usedPorts = s.usedPorts[:0]
		for i := 0; i < len(list); {
			src := list[i]
			if src < 0 {
				term := int32(-src - 1)
				if len(s.srcQ[term]) == 0 {
					s.inActiveInj[term] = false
					list[i] = list[len(list)-1]
					list = list[:len(list)-1]
					continue
				}
				if s.injFreeAt[term] <= s.cycle {
					s.consider(int32(sw), s.srcQ[term][0], src)
				}
			} else {
				q := int32(src)
				if s.qLen[q] == 0 {
					s.inActiveQ[q] = false
					list[i] = list[len(list)-1]
					list = list[:len(list)-1]
					continue
				}
				pk := s.qBuf[int(q)*s.cfg.BufferPackets+int(s.qHead[q])]
				if s.pool[pk].readyAt <= s.cycle {
					s.consider(int32(sw), pk, src)
				}
			}
			i++
		}
		s.activeSrc[sw] = list
		for _, port := range s.usedPorts {
			src := s.candSrc[port]
			s.candCount[port] = 0
			s.dispatch(int32(sw), int(port), src)
		}
	}
}

// consider registers an arbitration candidate: ejection when the packet is
// at its destination switch, else a random minimal next hop with VC space
// at VC index hop+... the packet's current hop count.
func (s *Sim) consider(sw, pk int32, src int64) {
	p := &s.pool[pk]
	var portIdx int32
	if p.dstSwitch == sw {
		local := int(p.dst) % s.tps
		portIdx = int32(len(s.outCh[sw]) + local)
		if s.ejFreeAt[p.dst] > s.cycle {
			return
		}
	} else {
		port := s.minimalPort(sw, p)
		if port < 0 {
			return
		}
		portIdx = int32(port)
		ch := s.outCh[sw][port]
		if s.chFreeAt[ch] > s.cycle {
			return
		}
		// Hop-indexed VC: exactly one VC is eligible.
		vc := int32(p.hop)
		if int(s.vcOccupied[ch*int32(s.cfg.VCs)+vc]) >= s.cfg.BufferPackets {
			return
		}
	}
	s.candCount[portIdx]++
	if s.candCount[portIdx] == 1 {
		s.usedPorts = append(s.usedPorts, portIdx)
		s.candSrc[portIdx] = src
	} else if s.rnd.Intn(int(s.candCount[portIdx])) == 0 {
		s.candSrc[portIdx] = src
	}
}

// minimalPort picks uniformly among neighbours one hop closer to the
// packet's destination switch.
func (s *Sim) minimalPort(sw int32, p *packet) int {
	dd := s.dist[p.dstSwitch]
	want := dd[sw] - 1
	chosen, count := -1, 0
	for i, v := range s.rrn.G.Neighbors(int(sw)) {
		if dd[v] == want {
			count++
			if count == 1 || s.rnd.Intn(count) == 0 {
				chosen = i
			}
		}
	}
	return chosen
}

func (s *Sim) dispatch(sw int32, port int, src int64) {
	var pk int32
	if src < 0 {
		term := int32(-src - 1)
		pk = s.srcQ[term][0]
		s.srcQ[term] = s.srcQ[term][1:]
		s.injFreeAt[term] = s.cycle + int32(s.cfg.PacketLength)
	} else {
		q := int32(src)
		pk = s.qBuf[int(q)*s.cfg.BufferPackets+int(s.qHead[q])]
		s.qHead[q] = uint8((int(s.qHead[q]) + 1) % s.cfg.BufferPackets)
		s.qLen[q]--
		slot := (s.cycle + int32(s.cfg.PacketLength)) % s.ringSize
		s.relBucket[slot] = append(s.relBucket[slot], q)
	}
	p := &s.pool[pk]

	if p.dstSwitch == sw {
		s.ejFreeAt[p.dst] = s.cycle + int32(s.cfg.PacketLength)
		slot := (s.cycle + int32(s.cfg.PacketLength)) % s.ringSize
		s.delBucket[slot] = append(s.delBucket[slot], pk)
		return
	}

	ch := s.outCh[sw][port]
	q := ch*int32(s.cfg.VCs) + int32(p.hop)
	s.chFreeAt[ch] = s.cycle + int32(s.cfg.PacketLength)
	s.vcOccupied[q]++
	tail := (int(s.qHead[q]) + int(s.qLen[q])) % s.cfg.BufferPackets
	s.qBuf[int(q)*s.cfg.BufferPackets+tail] = pk
	s.qLen[q]++
	to := s.chTo[ch]
	if !s.inActiveQ[q] {
		s.inActiveQ[q] = true
		s.activeSrc[to] = append(s.activeSrc[to], int64(q))
	}
	p.readyAt = s.cycle + int32(s.cfg.LinkLatency)
	p.hop++
}
