package simdirect

import (
	"testing"

	"rfclos/internal/simcore"
	"rfclos/internal/simnet"
)

// TestDefaultsAgreeAcrossFrontEnds pins both network-class front ends to the
// one simcore defaulting path: a zero simdirect.Config must produce exactly
// the Table 2 engine parameters a zero simnet.Config does, except for
// RequestRefresh, which the direct adapter pins to 1 (its random hop choice
// must be re-drawn every cycle).
func TestDefaultsAgreeAcrossFrontEnds(t *testing.T) {
	got := Config{}.engineConfig()
	want := simnet.Config{}.WithDefaults()
	want.RequestRefresh = 1
	if got != want {
		t.Errorf("simdirect defaults diverged from simnet's:\n got %+v\nwant %+v", got, want)
	}
	if d := simnet.DefaultConfig(); d != simcore.DefaultConfig() {
		t.Errorf("simnet.DefaultConfig() = %+v, simcore.DefaultConfig() = %+v", d, simcore.DefaultConfig())
	}
}
