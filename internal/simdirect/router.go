package simdirect

import (
	"fmt"

	"rfclos/internal/simcore"
	"rfclos/internal/topology"
)

// minimalRouter is the simcore.Router of direct networks: random minimal
// (shortest-path ECMP) port selection with hop-indexed VCs. Packet state is
// the hop count, doubling as the VC index.
type minimalRouter struct {
	g    *topology.RRN
	dist [][]int32 // all-pairs hop distances
	tps  int32
}

// MinimalRouter builds the shortest-path ECMP policy for the unified engine,
// computing all-pairs distance tables. It returns the network diameter so
// callers can size the VC count; it fails when the graph is disconnected.
func MinimalRouter(rrn *topology.RRN) (simcore.Router, int, error) {
	g := rrn.G
	n := g.N()
	r := &minimalRouter{g: rrn, tps: int32(rrn.TermsPerSwitch)}
	r.dist = make([][]int32, n)
	diameter := 0
	for v := 0; v < n; v++ {
		r.dist[v] = g.BFS(v, nil)
		for _, d := range r.dist[v] {
			if d < 0 {
				return nil, 0, fmt.Errorf("simdirect: network disconnected")
			}
			if int(d) > diameter {
				diameter = int(d)
			}
		}
	}
	return r, diameter, nil
}

// NewPacket starts every packet at hop 0; a connected network (checked at
// construction) routes every pair.
func (r *minimalRouter) NewPacket(_, _ int32) (int8, bool) { return 0, true }

// Route requests ejection at the destination switch, else a uniformly
// random neighbour one hop closer to it.
func (r *minimalRouter) Route(e *simcore.Engine, sw int32, p *simcore.Packet) int16 {
	dstSwitch := p.Dst / r.tps
	if dstSwitch == sw {
		return simcore.Eject
	}
	dd := r.dist[dstSwitch]
	want := dd[sw] - 1
	chosen, count := -1, 0
	for i, v := range r.g.G.Neighbors(int(sw)) {
		if dd[v] == want {
			count++
			if count == 1 || e.Rand().Intn(count) == 0 {
				chosen = i
			}
		}
	}
	if chosen < 0 {
		return simcore.NoRoute
	}
	return int16(chosen)
}

// HasCredit checks the packet's single eligible VC: hop-indexed deadlock
// avoidance admits exactly VC State on every channel.
func (r *minimalRouter) HasCredit(e *simcore.Engine, ch int32, p *simcore.Packet) bool {
	return e.VCFree(ch, int32(p.State))
}

// SelectVC returns the hop-indexed VC; no randomness.
func (r *minimalRouter) SelectVC(e *simcore.Engine, ch int32, p *simcore.Packet) int32 {
	return ch*int32(e.Config().VCs) + int32(p.State)
}

// Forwarded advances the hop count, moving the packet to the next VC layer.
func (r *minimalRouter) Forwarded(_ *simcore.Engine, _, _ int32, p *simcore.Packet) {
	p.State++
}
