package simdirect

import (
	"testing"
	"testing/quick"

	"rfclos/internal/rng"
	"rfclos/internal/simcore"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// TestMinimalRouterContract property-checks the minimal Router against the
// simcore contract: for random terminal pairs, every port the router picks
// is a valid shortest next hop (one hop closer to the destination switch),
// the hop-indexed VC code strictly increases along the route, and the walk
// ejects at the destination switch after exactly its BFS distance in hops.
func TestMinimalRouterContract(t *testing.T) {
	rrn, err := topology.NewRRN(32, 4, 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	router, diameter, err := MinimalRouter(rrn)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{VCs: 16, WarmupCycles: 10, MeasureCycles: 10}
	sim, err := New(rrn, traffic.NewUniform(rrn.Terminals()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.eng
	vcs := int32(eng.Config().VCs)
	// Independent distance tables for validation.
	dist := make([][]int32, rrn.N())
	for v := 0; v < rrn.N(); v++ {
		dist[v] = rrn.G.BFS(v, nil)
	}
	terms := int32(rrn.Terminals())
	tps := int32(rrn.TermsPerSwitch)
	walk := func(a, b uint16) bool {
		src := int32(a) % terms
		dst := int32(b) % terms
		state, ok := router.NewPacket(src, dst)
		if !ok || state != 0 {
			return false // connected network: every pair routes, from hop 0
		}
		p := &simcore.Packet{Src: src, Dst: dst, State: state}
		sw := src / tps
		dstSw := dst / tps
		d0 := dist[dstSw][sw]
		prevVC := int32(-1)
		for hop := int32(0); hop < d0; hop++ {
			port := router.Route(eng, sw, p)
			if port < 0 {
				return false // mid-route: a minimal hop must exist
			}
			next := rrn.G.Neighbors(int(sw))[port]
			if dist[dstSw][next] != dist[dstSw][sw]-1 {
				return false // not a shortest next hop
			}
			// The single eligible VC is the hop index, on every channel.
			q := router.SelectVC(eng, 0, p)
			if q != int32(p.State) || q >= vcs || q <= prevVC {
				return false // hop-indexed VC must strictly increase
			}
			prevVC = q
			router.Forwarded(eng, sw, int32(port), p)
			sw = next
		}
		return sw == dstSw && router.Route(eng, sw, p) == simcore.Eject &&
			int(p.State) <= diameter
	}
	if err := quick.Check(walk, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
