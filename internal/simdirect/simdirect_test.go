package simdirect

import (
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

func buildRRN(t *testing.T, n, d, tps int) *topology.RRN {
	t.Helper()
	rrn, err := topology.NewRRN(n, d, tps, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	return rrn
}

func testConfig() Config {
	return Config{WarmupCycles: 500, MeasureCycles: 2000, Seed: 5, VCs: 8}
}

func checkConservation(t *testing.T, r Result) {
	t.Helper()
	if r.TotalGenerated != r.TotalDelivered+r.TotalDropped+r.InFlightAtEnd {
		t.Errorf("conservation violated: %+v", r)
	}
}

func TestDirectBasicDelivery(t *testing.T) {
	rrn := buildRRN(t, 64, 6, 3)
	s, err := New(rrn, traffic.NewUniform(rrn.Terminals()), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(0.3)
	checkConservation(t, r)
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if r.Stalled {
		t.Fatal("stalled — hop-indexed VC deadlock avoidance failed")
	}
	if r.AcceptedLoad < 0.27 || r.AcceptedLoad > 0.33 {
		t.Errorf("accepted %v at 0.3 offered", r.AcceptedLoad)
	}
	// Low-load latency: ~2.5 mean hops + 16-cycle serialization.
	if r.AvgLatency < 16 || r.AvgLatency > 60 {
		t.Errorf("latency %v implausible", r.AvgLatency)
	}
}

func TestDirectSaturation(t *testing.T) {
	rrn := buildRRN(t, 64, 6, 3)
	s, err := New(rrn, traffic.NewUniform(rrn.Terminals()), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(1.0)
	checkConservation(t, r)
	if r.Stalled {
		t.Fatal("saturation stalled the network (deadlock?)")
	}
	// A well-provisioned RRN (6 network ports per 3 terminals) should
	// sustain a solid fraction of full load under uniform traffic.
	if r.AcceptedLoad < 0.4 {
		t.Errorf("accepted %v at saturation, suspiciously low", r.AcceptedLoad)
	}
}

func TestDirectVCRequirement(t *testing.T) {
	rrn := buildRRN(t, 64, 4, 2)
	cfg := testConfig()
	cfg.VCs = 1 // diameter of a 64-switch degree-4 RRN is > 1
	if _, err := New(rrn, traffic.NewUniform(rrn.Terminals()), cfg); err == nil {
		t.Fatal("expected VC-count rejection for deadlock avoidance")
	}
}

func TestDirectDeterminism(t *testing.T) {
	rrn := buildRRN(t, 32, 4, 2)
	run := func() Result {
		s, err := New(rrn, traffic.NewUniform(rrn.Terminals()), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(0.5)
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.AvgLatency != b.AvgLatency {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestDirectPairing(t *testing.T) {
	rrn := buildRRN(t, 64, 6, 3)
	pat := traffic.NewPairing(rrn.Terminals(), rng.New(3))
	s, err := New(rrn, pat, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(0.8)
	checkConservation(t, r)
	if r.Delivered == 0 || r.Stalled {
		t.Errorf("pairing failed: %+v", r)
	}
}
