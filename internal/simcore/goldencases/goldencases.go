// Package goldencases defines the fixed-seed simulation points shared by
// the golden determinism regression (internal/simcore's golden_test) and
// the generator that refreshes its testdata (internal/simcore/gengolden).
//
// The cases were captured from the pre-unification simulators (the separate
// simnet and simdirect cores) and pin the unified simcore engine to their
// exact fixed-seed Results, packet for packet: any change to the engine's
// RNG consumption order, arbitration scan order or event scheduling shows up
// as a byte difference. They deliberately cover every policy branch of both
// network classes: plain and hash up/down routing, infinite-sink reception,
// auto-warm-up, timeline sampling, minimal buffering, request-refresh
// extremes, faulted topologies with unroutable pairs, and the hop-indexed
// VC scheme of the direct networks.
package goldencases

import (
	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simdirect"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Case is one golden point: a name and a closure building the network,
// pattern and configuration from fixed seeds and running one simulation.
type Case struct {
	Name string
	Run  func() (simnet.Result, error)
}

// closCfg is the shared small Table-2-style configuration of the folded
// Clos cases.
func closCfg() simnet.Config {
	return simnet.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 7}
}

// closCase simulates a folded Clos point on the indirect (up/down) engine.
func closCase(name string, build func() (*topology.Clos, error),
	pat func(terms int) traffic.Pattern, load float64,
	mutate func(*simnet.Config)) Case {
	return Case{Name: name, Run: func() (simnet.Result, error) {
		c, err := build()
		if err != nil {
			return simnet.Result{}, err
		}
		ud := routing.New(c)
		cfg := closCfg()
		if mutate != nil {
			mutate(&cfg)
		}
		return simnet.New(c, ud, pat(c.Terminals()), cfg).Run(load), nil
	}}
}

// rrnCase simulates a random regular network point on the direct engine.
func rrnCase(name string, n, d, tps int, pat func(terms int) traffic.Pattern, load float64) Case {
	return Case{Name: name, Run: func() (simnet.Result, error) {
		rrn, err := topology.NewRRN(n, d, tps, rng.New(77))
		if err != nil {
			return simnet.Result{}, err
		}
		cfg := simdirect.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 5, VCs: 8}
		s, err := simdirect.New(rrn, pat(rrn.Terminals()), cfg)
		if err != nil {
			return simnet.Result{}, err
		}
		return s.Run(load), nil
	}}
}

func cft(radix, levels int) func() (*topology.Clos, error) {
	return func() (*topology.Clos, error) { return topology.NewCFT(radix, levels) }
}

func rfc(radix, levels, leaves int) func() (*topology.Clos, error) {
	return func() (*topology.Clos, error) {
		c, _, _, err := core.GenerateRoutable(core.Params{Radix: radix, Levels: levels, Leaves: leaves}, 20, rng.New(99))
		return c, err
	}
}

// isolatedLeafCFT builds a 4/2 CFT with leaf 0 cut off from the fabric, so
// traffic to and from its terminals exercises the unroutable-drop path.
func isolatedLeafCFT() (*topology.Clos, error) {
	c, err := topology.NewCFT(4, 2)
	if err != nil {
		return nil, err
	}
	leaf0 := c.SwitchID(1, 0)
	for _, up := range append([]int32(nil), c.Up(leaf0)...) {
		c.RemoveLink(leaf0, up)
	}
	return c, nil
}

func uniform(t int) traffic.Pattern { return traffic.NewUniform(t) }
func pairing(t int) traffic.Pattern { return traffic.NewPairing(t, rng.New(3)) }
func fixedRandom(t int) traffic.Pattern {
	return traffic.NewFixedRandom(t, rng.New(4))
}

// FlowCase is the topology/pattern view of one golden point, used by the
// flow-level backend's cross-validation goldens (internal/flow): same
// builders, same fixed seeds, same canonical order and names as Cases, so
// the two backends are pinned against identical networks. Exactly one of
// BuildClos/BuildRRN is non-nil. Engine-config mutations of the cycle cases
// (VCs, warm-up, sampling) have no flow-level counterpart and are omitted.
type FlowCase struct {
	Name      string
	Load      float64
	BuildClos func() (*topology.Clos, error)
	BuildRRN  func() (*topology.RRN, error)
	Pattern   func(terms int) traffic.Pattern
}

// buildRRN reconstructs the RRN of rrnCase with its fixed generation seed.
func buildRRN(n, d, tps int) func() (*topology.RRN, error) {
	return func() (*topology.RRN, error) {
		return topology.NewRRN(n, d, tps, rng.New(77))
	}
}

// FlowCases returns the flow-level view of Cases, index for index.
func FlowCases() []FlowCase {
	return []FlowCase{
		{Name: "clos/cft8x3/uniform/0.2", Load: 0.2, BuildClos: cft(8, 3), Pattern: uniform},
		{Name: "clos/cft8x3/uniform/0.9", Load: 0.9, BuildClos: cft(8, 3), Pattern: uniform},
		{Name: "clos/cft8x3/pairing/0.6", Load: 0.6, BuildClos: cft(8, 3), Pattern: pairing},
		{Name: "clos/cft8x3/fixed-random/0.8/infinite-sink", Load: 0.8, BuildClos: cft(8, 3), Pattern: fixedRandom},
		{Name: "clos/cft8x3/uniform/0.6/hash-routing", Load: 0.6, BuildClos: cft(8, 3), Pattern: uniform},
		{Name: "clos/cft8x3/uniform/0.5/auto-warmup", Load: 0.5, BuildClos: cft(8, 3), Pattern: uniform},
		{Name: "clos/cft8x3/uniform/0.4/timeline", Load: 0.4, BuildClos: cft(8, 3), Pattern: uniform},
		{Name: "clos/cft8x3/uniform/1.0/1vc-1buf", Load: 1.0, BuildClos: cft(8, 3), Pattern: uniform},
		{Name: "clos/cft8x3/uniform/0.7/refresh-1", Load: 0.7, BuildClos: cft(8, 3), Pattern: uniform},
		{Name: "clos/rfc8x3x16/uniform/0.5", Load: 0.5, BuildClos: rfc(8, 3, 16), Pattern: uniform},
		{Name: "clos/cft4x2-isolated-leaf/uniform/0.5", Load: 0.5, BuildClos: isolatedLeafCFT, Pattern: uniform},
		{Name: "rrn32x4x2/uniform/0.5", Load: 0.5, BuildRRN: buildRRN(32, 4, 2), Pattern: uniform},
		{Name: "rrn64x6x3/uniform/1.0", Load: 1.0, BuildRRN: buildRRN(64, 6, 3), Pattern: uniform},
		{Name: "rrn64x6x3/pairing/0.8", Load: 0.8, BuildRRN: buildRRN(64, 6, 3), Pattern: pairing},
	}
}

// Cases returns the golden points in their canonical order.
func Cases() []Case {
	return []Case{
		closCase("clos/cft8x3/uniform/0.2", cft(8, 3), uniform, 0.2, nil),
		closCase("clos/cft8x3/uniform/0.9", cft(8, 3), uniform, 0.9, nil),
		closCase("clos/cft8x3/pairing/0.6", cft(8, 3), pairing, 0.6, nil),
		closCase("clos/cft8x3/fixed-random/0.8/infinite-sink", cft(8, 3), fixedRandom, 0.8,
			func(c *simnet.Config) { c.InfiniteSink = true }),
		closCase("clos/cft8x3/uniform/0.6/hash-routing", cft(8, 3), uniform, 0.6,
			func(c *simnet.Config) { c.HashRouting = true }),
		closCase("clos/cft8x3/uniform/0.5/auto-warmup", cft(8, 3), uniform, 0.5,
			func(c *simnet.Config) { c.AutoWarmup = true }),
		closCase("clos/cft8x3/uniform/0.4/timeline", cft(8, 3), uniform, 0.4,
			func(c *simnet.Config) { c.SampleInterval = 250 }),
		closCase("clos/cft8x3/uniform/1.0/1vc-1buf", cft(8, 3), uniform, 1.0,
			func(c *simnet.Config) { c.VCs = 1; c.BufferPackets = 1 }),
		closCase("clos/cft8x3/uniform/0.7/refresh-1", cft(8, 3), uniform, 0.7,
			func(c *simnet.Config) { c.RequestRefresh = 1 }),
		closCase("clos/rfc8x3x16/uniform/0.5", rfc(8, 3, 16), uniform, 0.5, nil),
		closCase("clos/cft4x2-isolated-leaf/uniform/0.5", isolatedLeafCFT, uniform, 0.5, nil),
		rrnCase("rrn32x4x2/uniform/0.5", 32, 4, 2, uniform, 0.5),
		rrnCase("rrn64x6x3/uniform/1.0", 64, 6, 3, uniform, 1.0),
		rrnCase("rrn64x6x3/pairing/0.8", 64, 6, 3, pairing, 0.8),
	}
}
