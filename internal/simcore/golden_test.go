package simcore_test

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"rfclos/internal/simcore"
	"rfclos/internal/simcore/goldencases"
)

// TestGoldenResults pins the unified engine to the fixed-seed Results the
// pre-unification simnet and simdirect simulators produced, byte for byte
// (testdata/golden.json, captured before the engines were merged). A
// failure means the refactor changed simulation behaviour — RNG consumption
// order, arbitration scan order, event scheduling — not just structure.
// Regenerate the snapshots only for an intentional behaviour change:
//
//	go run ./internal/simcore/gengolden
func TestGoldenResults(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("reading golden snapshots: %v", err)
	}
	var entries []struct {
		Name   string
		Result simcore.Result
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("parsing golden snapshots: %v", err)
	}
	cases := goldencases.Cases()
	if len(entries) != len(cases) {
		t.Fatalf("golden.json has %d entries, goldencases defines %d; regenerate with go run ./internal/simcore/gengolden",
			len(entries), len(cases))
	}
	for i, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if entries[i].Name != c.Name {
				t.Fatalf("case order drifted: golden.json[%d] = %q, goldencases[%d] = %q",
					i, entries[i].Name, i, c.Name)
			}
			got, err := c.Run()
			if err != nil {
				t.Fatalf("running case: %v", err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := json.Marshal(entries[i].Result)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("Result diverged from pre-refactor snapshot\n got: %s\nwant: %s", gotJSON, wantJSON)
			}
		})
	}
}
