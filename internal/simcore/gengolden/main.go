// Command gengolden regenerates internal/simcore/testdata/golden.json, the
// fixed-seed Result snapshots the golden determinism regression compares
// the unified engine against.
//
// The checked-in file was captured from the pre-unification simnet and
// simdirect simulators; regenerate it only when a Result change is
// intentional and understood, since doing so re-blesses the current engine:
//
//	go run ./internal/simcore/gengolden
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rfclos/internal/simcore/goldencases"
	"rfclos/internal/simnet"
)

func main() {
	type entry struct {
		Name   string
		Result simnet.Result
	}
	var entries []entry
	for _, c := range goldencases.Cases() {
		res, err := c.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengolden: %s: %v\n", c.Name, err)
			os.Exit(1)
		}
		entries = append(entries, entry{c.Name, res})
		fmt.Printf("%-50s accepted=%.4f latency=%.2f delivered=%d\n",
			c.Name, res.AcceptedLoad, res.AvgLatency, res.Delivered)
	}
	out, err := json.MarshalIndent(entries, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengolden:", err)
		os.Exit(1)
	}
	path := filepath.Join("internal", "simcore", "testdata", "golden.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "gengolden:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gengolden:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
