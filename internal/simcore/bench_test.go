package simcore_test

import (
	"testing"

	"rfclos/internal/routing"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// BenchmarkEngineCycles measures raw engine speed — simulated cycles per
// wall-clock second on a radix-8 3-level CFT at 0.6 load — and reports it as
// the cycles/sec metric scripts/bench.sh records into BENCH_engine.json.
func BenchmarkEngineCycles(b *testing.B) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	ud := routing.New(c)
	pat := traffic.NewUniform(c.Terminals())
	const warm, measure = 200, 2000
	cfg := simnet.Config{WarmupCycles: warm, MeasureCycles: measure, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simnet.New(c, ud, pat, cfg).Run(0.6)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*(warm+measure))/b.Elapsed().Seconds(), "cycles/sec")
}
