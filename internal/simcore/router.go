package simcore

import "rfclos/internal/rng"

// Route sentinels returned by Router.Route and stored in a packet's cached
// request.
const (
	// Eject requests delivery at the current switch (the packet is at its
	// destination).
	Eject = -1
	// NoRoute reports that no viable next hop exists this cycle (possible
	// mid-flight on a faulted network); the packet waits and the request
	// is recomputed on the next consideration.
	NoRoute = -2
)

// Packet is one in-flight packet. Packets live in a pooled slice inside the
// Engine and are referenced by index; routers see them only through the
// Router hooks.
type Packet struct {
	// Src and Dst are terminal ids.
	Src, Dst int32
	// State is the router-owned per-packet routing state: the remaining
	// up-hop budget for up/down routing, the hop index for hop-indexed
	// VC deadlock avoidance. The engine initialises it from
	// Router.NewPacket and otherwise never touches it.
	State int8

	genAt   int32
	readyAt int32 // cycle at which the header is routable at its current switch
	reqPort int16 // cached output-port request at the current switch
	reqAt   int32 // cycle the request was computed
}

// Router is the pluggable routing policy of the unified cycle engine: it
// owns hop selection, per-packet routing state and the virtual-channel
// discipline, while the Engine owns every topology-agnostic mechanism (VC
// ring buffers, credits, arbitration, events, terminals, statistics).
//
// Two disciplines ship with the repository: the folded-Clos up/down router
// (simnet), deadlock-free with no VC constraint, and the direct-network
// minimal router (simdirect), which needs the hop-indexed VC scheme —
// SelectVC returns VC State, which strictly increases along a route, making
// the channel dependency graph acyclic.
//
// Determinism contract: all randomness must come from e.Rand(), and hooks
// must draw from it only as documented (Route and SelectVC may draw;
// NewPacket, HasCredit and Forwarded must not), so a simulation stays a
// pure function of (topology, pattern, Config.Seed).
type Router interface {
	// NewPacket returns the initial routing state for a packet from
	// terminal src to terminal dst, or ok=false when the pair has no route
	// (the engine counts it as unroutable and never injects it).
	NewPacket(src, dst int32) (state int8, ok bool)
	// Route picks the output request for the head packet p at switch sw:
	// an output-port index into the switch's port list, Eject, or NoRoute.
	// The engine caches the request for Config.RequestRefresh cycles.
	Route(e *Engine, sw int32, p *Packet) int16
	// HasCredit reports whether channel ch can accept p on some VC this
	// cycle; it gates arbitration candidacy and must not consume
	// randomness.
	HasCredit(e *Engine, ch int32, p *Packet) bool
	// SelectVC returns the VC queue code (ch*VCs + vc) p is dispatched
	// into, or -1 when none is free — which the engine treats as an
	// arbitration bug, since HasCredit held earlier in the same cycle.
	SelectVC(e *Engine, ch int32, p *Packet) int32
	// Forwarded updates p's routing state after it was dispatched on
	// output port at switch sw.
	Forwarded(e *Engine, sw int32, port int32, p *Packet)
}

// Rand returns the engine's RNG stream. Router hooks must use it for every
// random choice.
func (e *Engine) Rand() *rng.Rand { return e.rnd }

// Config returns the engine's (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// VCFree reports whether VC vc of channel ch has buffer space.
func (e *Engine) VCFree(ch, vc int32) bool {
	return int(e.vcOccupied[ch*int32(e.cfg.VCs)+vc]) < e.cfg.BufferPackets
}

// AnyVCFree reports whether any VC of channel ch can accept a packet.
func (e *Engine) AnyVCFree(ch int32) bool {
	base := ch * int32(e.cfg.VCs)
	for vc := int32(0); vc < int32(e.cfg.VCs); vc++ {
		if int(e.vcOccupied[base+vc]) < e.cfg.BufferPackets {
			return true
		}
	}
	return false
}

// RandomFreeVC picks a VC of channel ch uniformly at random among those
// with buffer space (reservoir sampling on e.Rand()) and returns its queue
// code, or -1 when every VC is full.
func (e *Engine) RandomFreeVC(ch int32) int32 {
	base := ch * int32(e.cfg.VCs)
	chosen, count := int32(-1), 0
	for vc := int32(0); vc < int32(e.cfg.VCs); vc++ {
		if int(e.vcOccupied[base+vc]) < e.cfg.BufferPackets {
			count++
			if count == 1 || e.rnd.Intn(count) == 0 {
				chosen = base + vc
			}
		}
	}
	return chosen
}
