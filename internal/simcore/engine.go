// Package simcore is the unified cycle-driven, packet-granularity virtual
// cut-through engine behind both network-class simulators: the folded-Clos
// up/down simulator (internal/simnet) and the direct-network simulator
// (internal/simdirect). One engine owning the entire switch and link model
// — VC ring buffers, credit flow control, per-port random arbitration with
// one iteration per cycle, the event ring, injection/ejection terminals and
// warm-up/measurement accounting — keeps cross-topology comparisons fair:
// the two network classes differ only in their Router (hop selection and VC
// discipline), never in the machinery that turns routing decisions into
// cycles and queues.
//
// Modelling notes (see DESIGN.md §2 "Substitutions"):
//
//   - Packets, not phits, are the simulated unit. A packet transfer holds
//     its link for PacketLength cycles and its header becomes routable at
//     the next switch after LinkLatency cycles (cut-through), so latency
//     and throughput match a phit-level VCT simulation while running an
//     order of magnitude faster.
//   - Virtual-channel buffer space is tracked as an occupancy count per
//     (channel, VC): a slot is reserved when a packet is dispatched into it
//     and released when the packet's tail leaves it, i.e. credits with
//     zero-latency return, as in functional-mode INSEE.
package simcore

import (
	"math"

	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/traffic"
)

// Spec wires a topology into the engine: the directed channel list is built
// from Ports in switch-major, port-minor order, so channel and queue ids —
// and therefore arbitration scan order and RNG consumption — are a pure
// function of the Spec.
type Spec struct {
	// Switches is the switch count; switch ids are [0, Switches).
	Switches int
	// Ports lists, per switch, the destination switch of every output
	// port, in the port order the Router's Route indices refer to.
	Ports [][]int32
	// Terminals is the compute-node count.
	Terminals int
	// TermsPer is the number of terminals per terminal-bearing switch:
	// terminal t injects at switch t/TermsPer and ejects on local port
	// t%TermsPer after the switch's network ports.
	TermsPer int
}

// Engine holds all mutable simulation state for one run over one wired
// topology (Spec), routing policy (Router) and traffic pattern.
type Engine struct {
	cfg    Config
	router Router
	pat    traffic.Pattern
	rnd    *rng.Rand

	terms    int
	termsPer int

	// Directed channels. Channel i carries packets to chTo[i]; outCh[sw]
	// maps output-port index to channel id.
	chTo     []int32
	chFreeAt []int32
	outCh    [][]int32

	// VC queues, flattened: index ch*VCs+vc.
	qBuf       []int32 // ring storage, stride BufferPackets
	qHead      []uint8
	qLen       []uint8
	vcOccupied []uint8

	// Active-source lists: per switch, the sources (injection terminals
	// and VC queues) that currently hold at least one packet. Entries are
	// appended on enqueue and lazily removed when found empty, so
	// arbitration never scans empty queues.
	activeSrc   [][]int64
	inActiveQ   []bool // per VC queue
	inActiveInj []bool // per terminal

	// Terminal state.
	srcQ      [][]int32
	injFreeAt []int32
	ejFreeAt  []int32
	nextGen   []int32

	// Packet pool.
	pool []Packet
	free []int32

	// Event ring: tail-departure buffer releases and deliveries.
	ringSize  int32
	relBucket [][]int32 // channel-vc codes
	delBucket [][]int32 // packet ids

	// Stats.
	cycle         int32
	measuring     bool
	lat           metrics.Histogram
	generated     int
	delivered     int
	droppedSrc    int
	unroutable    int
	totGenerated  int
	totDelivered  int
	totDropped    int
	totUnroutable int
	inFlight      int
	lastDelivery  int32

	// Timeline interval accumulators (Config.SampleInterval > 0).
	timeline  []TimePoint
	intGen    int
	intDel    int
	intLatSum float64

	// Arbitration scratch, sized to the max outputs of any switch.
	candCount []int32
	candSrc   []int64
	usedPorts []int32
}

// New builds an engine over the wired topology, routing policy and traffic
// pattern. The Config's zero fields take Table 2 defaults.
func New(spec Spec, router Router, pat traffic.Pattern, cfg Config) *Engine {
	cfg = cfg.WithDefaults()
	e := &Engine{
		cfg:      cfg,
		router:   router,
		pat:      pat,
		rnd:      rng.New(cfg.Seed),
		terms:    spec.Terminals,
		termsPer: spec.TermsPer,
	}
	e.buildChannels(spec)
	e.buildState()
	return e
}

func (e *Engine) buildChannels(spec Spec) {
	e.outCh = make([][]int32, spec.Switches)
	for sw := 0; sw < spec.Switches; sw++ {
		ports := spec.Ports[sw]
		e.outCh[sw] = make([]int32, len(ports))
		for i, to := range ports {
			ch := int32(len(e.chTo))
			e.chTo = append(e.chTo, to)
			e.outCh[sw][i] = ch
		}
	}
	e.chFreeAt = make([]int32, len(e.chTo))
}

func (e *Engine) buildState() {
	cfg := e.cfg
	nvc := len(e.chTo) * cfg.VCs
	e.qBuf = make([]int32, nvc*cfg.BufferPackets)
	e.qHead = make([]uint8, nvc)
	e.qLen = make([]uint8, nvc)
	e.vcOccupied = make([]uint8, nvc)
	e.activeSrc = make([][]int64, len(e.outCh))
	e.inActiveQ = make([]bool, nvc)
	e.inActiveInj = make([]bool, e.terms)

	e.srcQ = make([][]int32, e.terms)
	e.injFreeAt = make([]int32, e.terms)
	e.ejFreeAt = make([]int32, e.terms)
	e.nextGen = make([]int32, e.terms)

	e.ringSize = int32(cfg.PacketLength + cfg.LinkLatency + 2)
	e.relBucket = make([][]int32, e.ringSize)
	e.delBucket = make([][]int32, e.ringSize)

	maxOut := 0
	for sw := range e.outCh {
		if out := len(e.outCh[sw]) + e.termsPer; out > maxOut {
			maxOut = out
		}
	}
	e.candCount = make([]int32, maxOut)
	e.candSrc = make([]int64, maxOut)
	e.usedPorts = make([]int32, 0, maxOut)
}

// Run simulates warm-up plus the measurement window at the given offered
// load (phits per terminal per cycle) and returns the measured Result. An
// Engine must not be reused after Run.
func (e *Engine) Run(load float64) Result {
	if load < 0 {
		load = 0
	}
	p := load / float64(e.cfg.PacketLength) // packet generation probability per cycle
	for t := 0; t < e.terms; t++ {
		e.nextGen[t] = e.drawGap(p)
	}
	warm := int32(e.cfg.WarmupCycles)
	e.cycle = 0
	e.advance(warm, p)
	if e.cfg.AutoWarmup {
		// Keep warming in half-windows until the delivery rate of two
		// consecutive windows agrees within 5%, capped at 8x the base
		// warm-up.
		win := warm / 2
		if win < 100 {
			win = 100
		}
		prev := -1
		for extra := int32(0); extra < 8*warm; extra += win {
			before := e.totDelivered
			e.advance(win, p)
			cur := e.totDelivered - before
			if prev >= 0 && rateStable(prev, cur) {
				break
			}
			prev = cur
		}
	}
	e.measuring = true
	e.generated, e.delivered, e.droppedSrc, e.unroutable = 0, 0, 0, 0
	e.lat = metrics.Histogram{}
	e.advance(int32(e.cfg.MeasureCycles), p)
	total := e.cycle
	inSource := 0
	for t := range e.srcQ {
		inSource += len(e.srcQ[t])
	}
	res := Result{
		OfferedLoad:     load,
		AcceptedLoad:    float64(e.delivered*e.cfg.PacketLength) / (float64(e.terms) * float64(e.cfg.MeasureCycles)),
		AvgLatency:      e.lat.Mean(),
		P50Latency:      e.lat.Quantile(0.50),
		P95Latency:      e.lat.Quantile(0.95),
		P99Latency:      e.lat.Quantile(0.99),
		MaxLatency:      e.lat.Max(),
		Generated:       e.generated,
		Delivered:       e.delivered,
		DroppedAtSource: e.droppedSrc,
		UnroutableDrops: e.unroutable,
		MeasuredCycles:  e.cfg.MeasureCycles,
		TotalGenerated:  e.totGenerated,
		TotalDelivered:  e.totDelivered,
		TotalDropped:    e.totDropped,
		TotalUnroutable: e.totUnroutable,
		InFlightAtEnd:   e.inFlight,
		InSourceAtEnd:   inSource,
	}
	// Stall watchdog: packets inside the network but no delivery for the
	// last quarter of the run indicates livelock/deadlock — which a correct
	// deadlock-free routing policy makes impossible.
	inNetwork := e.inFlight - inSource
	quiet := total - e.lastDelivery
	res.Stalled = inNetwork > 0 && quiet > int32(e.cfg.MeasureCycles)/4
	res.Timeline = e.timeline
	return res
}

// advance simulates n cycles.
func (e *Engine) advance(n int32, p float64) {
	for end := e.cycle + n; e.cycle < end; e.cycle++ {
		e.processEvents()
		e.generate(p)
		e.arbitrate()
		if si := e.cfg.SampleInterval; si > 0 && (int(e.cycle)+1)%si == 0 {
			tp := TimePoint{
				Cycle:     int(e.cycle) + 1,
				Generated: e.intGen,
				Delivered: e.intDel,
				InFlight:  e.inFlight,
			}
			if e.intDel > 0 {
				tp.AvgLatency = e.intLatSum / float64(e.intDel)
			}
			e.timeline = append(e.timeline, tp)
			e.intGen, e.intDel, e.intLatSum = 0, 0, 0
		}
	}
}

// drawGap samples the number of cycles until the next packet generation
// (geometric with parameter p, support {1, 2, ...}).
func (e *Engine) drawGap(p float64) int32 {
	if p <= 0 {
		return math.MaxInt32
	}
	if p >= 1 {
		return 1
	}
	u := e.rnd.Float64()
	for u == 0 {
		u = e.rnd.Float64()
	}
	g := int32(math.Log(u)/math.Log(1-p)) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// processEvents applies this cycle's buffer releases and deliveries.
func (e *Engine) processEvents() {
	slot := e.cycle % e.ringSize
	for _, code := range e.relBucket[slot] {
		e.vcOccupied[code]--
	}
	e.relBucket[slot] = e.relBucket[slot][:0]
	for _, pk := range e.delBucket[slot] {
		p := &e.pool[pk]
		e.totDelivered++
		e.inFlight--
		e.lastDelivery = e.cycle
		e.intDel++
		e.intLatSum += float64(e.cycle - p.genAt)
		if e.measuring {
			e.delivered++
			e.lat.Add(int(e.cycle - p.genAt))
		}
		e.free = append(e.free, pk)
	}
	e.delBucket[slot] = e.delBucket[slot][:0]
}

// generate creates new packets at every terminal whose generation timer
// fires this cycle.
func (e *Engine) generate(p float64) {
	if p <= 0 {
		return
	}
	for t := 0; t < e.terms; t++ {
		if e.nextGen[t] > e.cycle {
			continue
		}
		e.nextGen[t] = e.cycle + e.drawGap(p)
		dst := e.pat.Dest(t, e.rnd)
		if dst < 0 {
			continue // silent terminal (odd pairing)
		}
		state, ok := e.router.NewPacket(int32(t), int32(dst))
		if !ok {
			// No surviving route for this pair (faulty network).
			e.totUnroutable++
			if e.measuring {
				e.unroutable++
			}
			continue
		}
		if e.measuring {
			e.generated++
		}
		e.totGenerated++
		e.intGen++
		if len(e.srcQ[t]) >= e.cfg.SourceQueueCap {
			e.totDropped++
			if e.measuring {
				e.droppedSrc++
			}
			continue
		}
		pk := e.alloc()
		pp := &e.pool[pk]
		pp.Src, pp.Dst = int32(t), int32(dst)
		pp.genAt = e.cycle
		pp.readyAt = e.cycle
		pp.State = state
		pp.reqPort = NoRoute
		e.srcQ[t] = append(e.srcQ[t], pk)
		e.inFlight++
		if !e.inActiveInj[t] {
			e.inActiveInj[t] = true
			sw := t / e.termsPer
			e.activeSrc[sw] = append(e.activeSrc[sw], encodeInj(int32(t)))
		}
	}
}

func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		pk := e.free[n-1]
		e.free = e.free[:n-1]
		return pk
	}
	e.pool = append(e.pool, Packet{})
	return int32(len(e.pool) - 1)
}

// source encoding for arbitration: negative values -(t+1) are terminal
// injection queues, non-negative are channel*VCs+vc queue indices.
func encodeInj(term int32) int64 { return -int64(term) - 1 }

// arbitrate performs one iteration of per-output random arbitration at
// every switch with queued packets and dispatches the winners.
func (e *Engine) arbitrate() {
	for sw := int32(0); sw < int32(len(e.outCh)); sw++ {
		list := e.activeSrc[sw]
		if len(list) == 0 {
			continue
		}
		e.usedPorts = e.usedPorts[:0]
		// Scan active sources; lazily drop the ones that emptied.
		for i := 0; i < len(list); {
			src := list[i]
			if src < 0 {
				term := int32(-src - 1)
				if len(e.srcQ[term]) == 0 {
					e.inActiveInj[term] = false
					list[i] = list[len(list)-1]
					list = list[:len(list)-1]
					continue
				}
				if e.injFreeAt[term] <= e.cycle {
					e.consider(sw, e.srcQ[term][0], src)
				}
			} else {
				q := int32(src)
				if e.qLen[q] == 0 {
					e.inActiveQ[q] = false
					list[i] = list[len(list)-1]
					list = list[:len(list)-1]
					continue
				}
				pk := e.qBuf[int(q)*e.cfg.BufferPackets+int(e.qHead[q])]
				if e.pool[pk].readyAt <= e.cycle {
					e.consider(sw, pk, src)
				}
			}
			i++
		}
		e.activeSrc[sw] = list
		// Dispatch one winner per requested output port.
		for _, port := range e.usedPorts {
			src := e.candSrc[port]
			e.candCount[port] = 0
			e.dispatch(sw, int(port), src)
		}
	}
}

// consider computes (or reuses) the head packet's output request at switch
// sw and registers it as an arbitration candidate if the output can accept
// it this cycle. Winner selection is reservoir sampling, giving each
// requester equal probability — the Table 2 random arbiter.
func (e *Engine) consider(sw int32, pk int32, src int64) {
	p := &e.pool[pk]
	if p.reqPort == NoRoute || e.cycle-p.reqAt >= int32(e.cfg.RequestRefresh) {
		p.reqPort = e.router.Route(e, sw, p)
		p.reqAt = e.cycle
		if p.reqPort == NoRoute {
			return // no viable next hop (faulted mid-flight); packet waits
		}
	}
	var portIdx int32
	if p.reqPort == Eject {
		if e.cfg.InfiniteSink {
			// No reception bandwidth limit: consume immediately, without
			// competing for an ejection port.
			e.dispatch(sw, 0, src)
			return
		}
		// Ejection port of the destination terminal.
		local := int(p.Dst) % e.termsPer
		portIdx = int32(len(e.outCh[sw]) + local)
		if e.ejFreeAt[p.Dst] > e.cycle {
			return
		}
	} else {
		portIdx = int32(p.reqPort)
		ch := e.outCh[sw][portIdx]
		if e.chFreeAt[ch] > e.cycle {
			return
		}
		if !e.router.HasCredit(e, ch, p) {
			return
		}
	}
	e.candCount[portIdx]++
	if e.candCount[portIdx] == 1 {
		e.usedPorts = append(e.usedPorts, portIdx)
		e.candSrc[portIdx] = src
	} else if e.rnd.Intn(int(e.candCount[portIdx])) == 0 {
		e.candSrc[portIdx] = src
	}
}

// dispatch moves the winning packet out of its source queue and onto its
// requested output.
func (e *Engine) dispatch(sw int32, port int, src int64) {
	var pk int32
	if src < 0 {
		term := int32(-src - 1)
		pk = e.srcQ[term][0]
		e.srcQ[term] = e.srcQ[term][1:]
		e.injFreeAt[term] = e.cycle + int32(e.cfg.PacketLength)
	} else {
		q := int32(src)
		pk = e.qBuf[int(q)*e.cfg.BufferPackets+int(e.qHead[q])]
		e.qHead[q] = uint8((int(e.qHead[q]) + 1) % e.cfg.BufferPackets)
		e.qLen[q]--
		// The buffer slot frees when the tail streams out.
		e.scheduleRelease(q, e.cycle+int32(e.cfg.PacketLength))
	}
	p := &e.pool[pk]

	if p.reqPort == Eject {
		e.ejFreeAt[p.Dst] = e.cycle + int32(e.cfg.PacketLength)
		e.scheduleDelivery(pk, e.cycle+int32(e.cfg.PacketLength))
		return
	}

	ch := e.outCh[sw][port]
	q := e.router.SelectVC(e, ch, p)
	if q < 0 {
		panic("simcore: dispatch without VC space (arbitration bug)")
	}
	e.chFreeAt[ch] = e.cycle + int32(e.cfg.PacketLength)
	e.vcOccupied[q]++
	// Enqueue at the receiving switch; header routable after LinkLatency.
	tail := (int(e.qHead[q]) + int(e.qLen[q])) % e.cfg.BufferPackets
	e.qBuf[int(q)*e.cfg.BufferPackets+tail] = pk
	e.qLen[q]++
	to := e.chTo[ch]
	if !e.inActiveQ[q] {
		e.inActiveQ[q] = true
		e.activeSrc[to] = append(e.activeSrc[to], int64(q))
	}
	p.readyAt = e.cycle + int32(e.cfg.LinkLatency)
	e.router.Forwarded(e, sw, int32(port), p)
	p.reqPort = NoRoute
}

func (e *Engine) scheduleRelease(qcode, at int32) {
	slot := at % e.ringSize
	e.relBucket[slot] = append(e.relBucket[slot], qcode)
}

func (e *Engine) scheduleDelivery(pk, at int32) {
	slot := at % e.ringSize
	e.delBucket[slot] = append(e.delBucket[slot], pk)
}
