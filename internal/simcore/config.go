package simcore

// Config carries the Table 2 simulation parameters shared by every network
// class. It is the single defaulting path for the engine: simnet exposes it
// directly and simdirect maps its narrower Config onto it, so both classes
// run under byte-identical switch and link models.
type Config struct {
	// VCs is the number of virtual channels per link (Table 2: 4).
	VCs int
	// BufferPackets is the per-VC input buffer capacity in packets
	// (Table 2: 4).
	BufferPackets int
	// PacketLength is the packet size in phits (Table 2: 16).
	PacketLength int
	// LinkLatency is the header hop latency in cycles (Table 2: 1).
	LinkLatency int
	// WarmupCycles precede the measurement window.
	WarmupCycles int
	// MeasureCycles is the statistics window (Table 2: 10,000).
	MeasureCycles int
	// SourceQueueCap bounds each terminal's injection queue in packets;
	// packets generated while the queue is full are counted as dropped at
	// the source (offered but not accepted).
	SourceQueueCap int
	// RequestRefresh is how many cycles a blocked head packet keeps its
	// randomly chosen output request before re-randomizing it. 1
	// re-randomizes every cycle as INSEE does; larger values trade a
	// little adaptivity for speed. Routers whose hop choice must be
	// re-drawn every cycle (the direct-network minimal router) pin this
	// to 1.
	RequestRefresh int
	// HashRouting selects the deterministic D-mod-K-style ECMP policy:
	// every hop choice is keyed by the packet's (src, dst) flow hash
	// instead of re-randomised per cycle (the Table 2 "up/down random"
	// request mode, the default). Deterministic hashing pins each flow to
	// one path, which concentrates collisions — the ablation quantifies
	// the cost. Interpreted by the Router; the up/down adapter honours it.
	HashRouting bool
	// InfiniteSink, when true, removes the one-phit-per-cycle ejection
	// bandwidth limit at each terminal: packets reaching their destination
	// switch are consumed immediately regardless of how many arrive at
	// once. The default (false) models a NIC that drains one phit per
	// cycle, symmetric with injection.
	InfiniteSink bool
	// SampleInterval, when positive, records a Timeline sample every that
	// many cycles (warm-up included): generated/delivered packet rates and
	// mean latency over the interval. Use it to verify the warm-up is long
	// enough for the statistic of interest.
	SampleInterval int
	// AutoWarmup, when true, extends the warm-up beyond WarmupCycles until
	// the delivery rate stabilises: consecutive windows of WarmupCycles/2
	// cycles must agree within 5% (or a hard cap of 8× WarmupCycles is
	// hit) before measurement starts. The Result's MeasuredCycles is
	// unchanged; the extra cycles only delay the window.
	AutoWarmup bool
	// Seed makes the whole simulation reproducible.
	Seed uint64
}

// DefaultConfig returns the Table 2 parameters with a 2,000-cycle warm-up.
func DefaultConfig() Config {
	return Config{
		VCs:            4,
		BufferPackets:  4,
		PacketLength:   16,
		LinkLatency:    1,
		WarmupCycles:   2000,
		MeasureCycles:  10000,
		SourceQueueCap: 16,
		RequestRefresh: 4,
		Seed:           1,
	}
}

// WithDefaults fills zero fields with Table 2 defaults so a partially
// specified Config is usable. Both network-class front ends defer to it, so
// their defaults cannot drift apart.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.VCs <= 0 {
		c.VCs = d.VCs
	}
	if c.BufferPackets <= 0 {
		c.BufferPackets = d.BufferPackets
	}
	if c.PacketLength <= 0 {
		c.PacketLength = d.PacketLength
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = d.LinkLatency
	}
	if c.WarmupCycles <= 0 {
		c.WarmupCycles = d.WarmupCycles
	}
	if c.MeasureCycles <= 0 {
		c.MeasureCycles = d.MeasureCycles
	}
	if c.SourceQueueCap <= 0 {
		c.SourceQueueCap = d.SourceQueueCap
	}
	if c.RequestRefresh <= 0 {
		c.RequestRefresh = d.RequestRefresh
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// TimePoint is one Timeline sample covering the interval ending at Cycle.
type TimePoint struct {
	Cycle     int
	Generated int
	Delivered int
	// AvgLatency is the mean latency of packets delivered in the interval
	// (0 when none).
	AvgLatency float64
	// InFlight is the packet population at the sample instant.
	InFlight int
}

// Result reports one simulation run.
type Result struct {
	// OfferedLoad is the configured generation rate in phits per terminal
	// per cycle (1.0 = every terminal generates one phit per cycle).
	OfferedLoad float64
	// AcceptedLoad is the delivered rate in phits per terminal per cycle
	// during the measurement window.
	AcceptedLoad float64
	// AvgLatency is the mean generation-to-tail-delivery latency in cycles
	// of packets delivered inside the window.
	AvgLatency float64
	// P50Latency and P95Latency are bucket-resolution upper estimates of
	// the median and 95th-percentile latencies.
	P50Latency float64
	P95Latency float64
	// P99Latency is a bucket-resolution upper estimate of the 99th
	// percentile latency.
	P99Latency float64
	// MaxLatency is the largest observed latency in the window.
	MaxLatency float64

	Generated       int // packets generated in the window
	Delivered       int // packets delivered in the window
	DroppedAtSource int // generation attempts rejected by a full source queue (window)
	UnroutableDrops int // packets whose pair has no route (window)
	MeasuredCycles  int

	// Conservation counters over the entire run (warm-up included), used
	// by invariant tests: everything generated is eventually delivered,
	// still queued at a source, in flight, or was dropped.
	TotalGenerated  int
	TotalDelivered  int
	TotalDropped    int
	TotalUnroutable int
	InFlightAtEnd   int
	InSourceAtEnd   int
	// Stalled reports the watchdog's verdict: packets were in the network
	// but deliveries ceased for the last quarter of the run (or never
	// happened) — impossible under a correct deadlock-free routing policy
	// and a strong canary in fault experiments.
	Stalled bool
	// Timeline holds per-interval samples when Config.SampleInterval > 0.
	Timeline []TimePoint
}

// rateStable reports whether two consecutive window delivery counts agree
// within 5%.
func rateStable(a, b int) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	max := a
	if b > max {
		max = b
	}
	if max == 0 {
		return true
	}
	return float64(diff) <= 0.05*float64(max)
}
