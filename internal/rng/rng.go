// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every randomised construction and simulation in this
// repository. Determinism matters here: a topology, a traffic trace and a
// whole simulation must be exactly reproducible from a single seed so that
// experiments in EXPERIMENTS.md can be re-run bit-for-bit.
//
// The generator is xoshiro256**, seeded through splitmix64 as its authors
// recommend. Independent sub-streams for concurrent or structurally separate
// uses (e.g. one stream per simulated switch) are derived with Split.
package rng

import "math"

// Rand is a xoshiro256** pseudo-random number generator. The zero value is
// not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// only to expand seeds into full generator state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro256** state must not be all zero; splitmix64 guarantees this
	// is astronomically unlikely, but make it impossible anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator. The child's stream is a
// function of the parent's current state, and the parent is advanced, so
// successive Splits give distinct streams.
//
// Split is inherently order-dependent: the k-th Split of a parent depends on
// everything drawn from the parent before it. Parallel experiment code that
// must produce identical results for any worker count should instead derive
// streams from job coordinates with At or DeriveSeed.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// DeriveSeed deterministically maps a root seed plus a tuple of job
// coordinates to a sub-seed. It is the splittable-seed primitive behind every
// parallel sweep in this repository: a job identified by its coordinates
// (e.g. network, traffic pattern, load index, repetition) always receives the
// same stream no matter which worker runs it or in which order jobs complete.
//
// The derivation is a splitmix64-fed chain over the coordinates, finalized
// with the tuple length so that prefixes of a tuple do not collide with the
// tuple itself. Distinct coordinate tuples yield independent streams up to
// the collision probability of a 64-bit hash.
func DeriveSeed(seed uint64, coords ...uint64) uint64 {
	x := seed ^ 0x9e3779b97f4a7c15
	h := splitmix64(&x)
	for _, c := range coords {
		x = h ^ c
		h = splitmix64(&x)
	}
	x = h ^ uint64(len(coords))*0x94d049bb133111eb
	return splitmix64(&x)
}

// At returns a generator for the job identified by (seed, coords...):
// shorthand for New(DeriveSeed(seed, coords...)).
func At(seed uint64, coords ...uint64) *Rand {
	return New(DeriveSeed(seed, coords...))
}

// StringCoord hashes a label (a network or pattern name, an experiment tag)
// into a coordinate for DeriveSeed/At, so sweeps can key their streams by
// stable names instead of fragile positional indices. FNV-1a, 64-bit.
func StringCoord(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
// Uses Lemire's multiply-shift rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of a 128-bit product.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns a uniformly random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Exp returns an exponentially distributed float64 with rate 1, by
// inversion. Used for randomised injection processes.
func (r *Rand) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs an in-place Fisher–Yates shuffle of p.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle of n elements using the
// provided swap function, mirroring math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
