package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical streams")
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 3} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += r.Exp()
	}
	if mean := sum / draws; math.Abs(mean-1.0) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first element %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(19)
	n := 10
	calls := 0
	r.Shuffle(n, func(i, j int) { calls++ })
	if calls != n-1 {
		t.Errorf("Shuffle made %d swap calls, want %d", calls, n-1)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000003)
	}
}
