package flow

import (
	"fmt"

	"rfclos/internal/engine"
	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// RRNNetwork routes matrix flows over a random regular network along random
// ECMP-shortest paths. Construction precomputes one BFS distance row per
// switch (in parallel; rows are independent, so the table is deterministic
// for any worker count), and Resolve walks greedily from the source switch,
// choosing uniformly among neighbours one hop closer to the destination.
//
// Directed link ids mirror ClosNetwork: [0, T) injection, [T, 2T) ejection,
// then one id per (switch, adjacency slot) — each direction of a wire is
// separate capacity.
type RRNNetwork struct {
	r *topology.RRN
	// dist[d] is the hop-distance row to destination switch d; rows are
	// uint8 (RRN diameters are tiny) to keep the n×n table affordable at
	// 10× paper scale.
	dist [][]uint8
	// adjStart is the per-switch prefix sum of degree.
	adjStart []int32
	termBase int32
	links    int
}

// NewRRN builds the adapter, running the per-destination BFS sweep on up to
// `workers` goroutines (0 = one per CPU).
func NewRRN(r *topology.RRN, workers int) (*RRNNetwork, error) {
	n := r.N()
	net := &RRNNetwork{r: r, adjStart: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		net.adjStart[v+1] = net.adjStart[v] + int32(len(r.G.Neighbors(v)))
	}
	net.termBase = int32(r.Terminals())
	net.links = int(2*net.termBase + net.adjStart[n])
	rows, err := engine.Run(n, workers, func(d int) ([]uint8, error) {
		dist := r.G.BFS(d, nil)
		row := make([]uint8, n)
		for v, dv := range dist {
			if dv < 0 || dv > 255 {
				return nil, fmt.Errorf("flow: RRN switch %d unreachable from %d (distance %d)", v, d, dv)
			}
			row[v] = uint8(dv)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	net.dist = rows
	return net, nil
}

// Terminals implements Network.
func (n *RRNNetwork) Terminals() int { return n.r.Terminals() }

// NumLinks implements Network.
func (n *RRNNetwork) NumLinks() int { return n.links }

// Resolve implements Network.
func (n *RRNNetwork) Resolve(src, dst int32, r *rng.Rand, buf []int32) ([]int32, bool) {
	buf = append(buf, src)
	if src == dst {
		return append(buf, n.termBase+dst), true
	}
	tps := int32(n.r.TermsPerSwitch)
	v, dsw := src/tps, dst/tps
	row := n.dist[dsw]
	for v != dsw {
		want := row[v] - 1
		// Reservoir-sample uniformly among neighbours one hop closer.
		adj := n.r.G.Neighbors(int(v))
		port, count := -1, 0
		for i, w := range adj {
			if row[w] == want {
				count++
				if count == 1 || r.Intn(count) == 0 {
					port = i
				}
			}
		}
		if port < 0 {
			return nil, false
		}
		buf = append(buf, 2*n.termBase+n.adjStart[v]+int32(port))
		v = adj[port]
	}
	return append(buf, n.termBase+dst), true
}
