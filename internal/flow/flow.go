// Package flow is the flow-level max-min-fair throughput backend: the
// second engine behind the exhibit registry, for scenario sweeps the
// cycle-accurate simulator cannot reach. Instead of moving phits cycle by
// cycle it resolves every flow of a traffic matrix to one concrete path
// through the built topology and computes the exact max-min-fair rate
// allocation by iterative water-filling over link capacities — the standard
// instrument for comparing randomized vs. structured topologies at scale
// (Jellyfish; "High Throughput Data Center Topology Design").
//
// The model: every directed resource has capacity 1 in units of a
// terminal's injection bandwidth — each terminal's injection and ejection
// link and each direction of every switch-to-switch wire. A flow (src, dst,
// rate) occupies its injection link, the links of one randomly chosen
// shortest path (up/down for folded Clos, ECMP-shortest for RRNs), and the
// destination's ejection link; its demand caps its rate. Modelling the
// terminal links makes incast behave: an 8-into-1 incast group converges to
// 1/8 per flow at the sink's ejection link.
//
// Determinism contract (the same one the cycle backend obeys): path
// resolution fans out over internal/engine workers with each flow drawing
// from its own coordinate-derived stream — rng.At(seed,
// StringCoord("flow/path"), flowIndex) — and water-filling is a serial
// fixed-order iteration, so a Result is a pure function of (topology,
// matrix, seed) and byte-identical at any worker count.
package flow

import (
	"fmt"
	"math"

	"rfclos/internal/engine"
	"rfclos/internal/rng"
	"rfclos/internal/traffic"
)

// Network is a topology the solver can route a matrix over. Implementations
// are immutable during a Solve; both (ClosNetwork, RRNNetwork) resolve a
// flow to the directed link ids of one shortest path.
type Network interface {
	// Terminals returns the terminal count (matrix endpoints are
	// terminals).
	Terminals() int
	// NumLinks returns the size of the directed-link id space.
	NumLinks() int
	// Resolve appends the directed link ids of one path from terminal src
	// to terminal dst (injection link, switch hops, ejection link) to buf
	// and returns the extended slice, or (nil, false) when no path exists.
	// The choice among equal-length paths draws only from r.
	Resolve(src, dst int32, r *rng.Rand, buf []int32) ([]int32, bool)
}

// Options tunes a Solve call.
type Options struct {
	// Seed drives path selection; every flow derives its own stream from
	// (Seed, "flow/path", flow index).
	Seed uint64
	// Workers sizes the path-resolution pool; 0 means one per CPU. Results
	// are byte-identical for any value. Sweep jobs that already run on a
	// worker pool should pass 1.
	Workers int
}

// Result is the max-min-fair allocation for one (network, matrix) point.
type Result struct {
	// Flows is the matrix size; Unroutable counts flows with no path
	// (allocated rate 0, possible only under faults).
	Flows, Unroutable int
	// Rates holds the per-flow max-min rate, indexed like the matrix.
	Rates []float64
	// Demand and Delivered are the summed offered and allocated rates.
	Demand, Delivered float64
	// Accepted is Delivered normalised by the terminal count — accepted
	// throughput per terminal, the cycle backend's phits/node/cycle
	// analogue.
	Accepted float64
	// MinRate/MeanRate/MaxRate summarise the routed flows' rates.
	MinRate, MeanRate, MaxRate float64
	// Jain is Jain's fairness index over routed flows' rates.
	Jain float64
	// Rounds counts water-filling iterations; SatLinks the links that
	// ended saturated.
	Rounds, SatLinks int
}

// pathCoord is the label of the per-flow path-selection streams.
var pathCoord = rng.StringCoord("flow/path")

// Solve routes every matrix flow over n and water-fills the max-min-fair
// rates. It never mutates n or m.
func Solve(n Network, m []traffic.Demand, opts Options) (*Result, error) {
	t := n.Terminals()
	for i := range m {
		if int(m[i].Src) >= t || int(m[i].Dst) >= t || m[i].Src < 0 || m[i].Dst < 0 {
			return nil, fmt.Errorf("flow: demand %d endpoints (%d,%d) outside %d terminals",
				i, m[i].Src, m[i].Dst, t)
		}
	}
	// Phase 1 (parallel): resolve each flow to its directed link list.
	paths, err := engine.Run(len(m), opts.Workers, func(i int) ([]int32, error) {
		d := m[i]
		if d.Rate <= 0 {
			return nil, nil
		}
		r := rng.At(opts.Seed, pathCoord, uint64(i))
		p, ok := n.Resolve(d.Src, d.Dst, r, make([]int32, 0, 8))
		if !ok {
			return nil, nil
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 2 (serial, fixed order): water-fill.
	res := waterfill(paths, m, n.NumLinks())
	res.Accepted = res.Delivered / float64(t)
	return res, nil
}

// waterfill computes the exact max-min-fair allocation by bottleneck-freeze
// iteration: all unfrozen flows share one rising water level; each round
// advances the level to the nearest event — a link saturating (its residual
// divided by its unfrozen-flow count) or a flow reaching its demand — and
// freezes the affected flows. Every round freezes at least one flow or
// link, so it terminates; all arithmetic is serial in fixed order, so the
// allocation is byte-stable.
func waterfill(paths [][]int32, m []traffic.Demand, nLinks int) *Result {
	res := &Result{Flows: len(m), Rates: make([]float64, len(m))}
	// Per-link unfrozen-flow counts and the reverse link→flows index (CSR
	// by counting sort: deterministic order).
	nact := make([]int32, nLinks)
	entries := 0
	for i, p := range paths {
		res.Demand += m[i].Rate
		if p == nil {
			if m[i].Rate > 0 {
				res.Unroutable++
			}
			continue
		}
		entries += len(p)
		for _, l := range p {
			nact[l]++
		}
	}
	lfStart := make([]int32, nLinks+1)
	for l := 0; l < nLinks; l++ {
		lfStart[l+1] = lfStart[l] + nact[l]
	}
	lfFlow := make([]int32, entries)
	next := append([]int32(nil), lfStart[:nLinks]...)
	for i, p := range paths {
		for _, l := range p {
			lfFlow[next[l]] = int32(i)
			next[l]++
		}
	}
	// Active links, kept compact as links saturate or empty out.
	active := make([]int32, 0, nLinks)
	resid := make([]float64, nLinks)
	for l := 0; l < nLinks; l++ {
		resid[l] = 1
		if nact[l] > 0 {
			active = append(active, int32(l))
		}
	}
	// Routed flows sorted by demand (counting on float64 keys via a simple
	// index sort would allocate; demands repeat heavily, so an insertion
	// into buckets is overkill — use a plain index slice + sort-free scan
	// replaced by: order flows by demand with a deterministic sort).
	order := make([]int32, 0, len(m))
	for i, p := range paths {
		if p != nil && m[i].Rate > 0 {
			order = append(order, int32(i))
		}
	}
	sortByDemand(order, m)
	frozen := make([]bool, len(m))
	unfrozen := len(order)
	water := 0.0
	op := 0 // next demand-freeze candidate in order
	const eps = 1e-12
	freeze := func(f int32, rate float64) {
		frozen[f] = true
		res.Rates[f] = rate
		unfrozen--
		for _, l := range paths[f] {
			nact[l]--
		}
	}
	for unfrozen > 0 {
		// Nearest link-saturation event.
		deltaL := math.Inf(1)
		for _, l := range active {
			if nact[l] > 0 {
				if d := resid[l] / float64(nact[l]); d < deltaL {
					deltaL = d
				}
			}
		}
		// Nearest demand event.
		for op < len(order) && frozen[order[op]] {
			op++
		}
		deltaD := math.Inf(1)
		if op < len(order) {
			deltaD = m[order[op]].Rate - water
		}
		delta := math.Min(deltaL, deltaD)
		if math.IsInf(delta, 1) {
			break // no constraints left (cannot happen: every flow has links)
		}
		if delta > 0 {
			water += delta
			for _, l := range active {
				if nact[l] > 0 {
					resid[l] -= delta * float64(nact[l])
					if resid[l] < 0 {
						resid[l] = 0
					}
				}
			}
		}
		// Freeze demand-satisfied flows.
		for op < len(order) {
			f := order[op]
			if frozen[f] {
				op++
				continue
			}
			if m[f].Rate-water > eps {
				break
			}
			freeze(f, m[f].Rate)
			op++
		}
		// Freeze flows on saturated links and compact the active list.
		kept := active[:0]
		for _, l := range active {
			if nact[l] == 0 {
				continue
			}
			if resid[l] <= eps {
				for j := lfStart[l]; j < lfStart[l+1]; j++ {
					if f := lfFlow[j]; !frozen[f] {
						freeze(f, water)
					}
				}
				res.SatLinks++
				continue
			}
			kept = append(kept, l)
		}
		active = kept
		res.Rounds++
	}
	// Summaries over routed flows.
	routed := 0
	var sum, sumSq float64
	res.MinRate = math.Inf(1)
	for i, p := range paths {
		if p == nil || m[i].Rate <= 0 {
			continue
		}
		r := res.Rates[i]
		routed++
		sum += r
		sumSq += r * r
		if r < res.MinRate {
			res.MinRate = r
		}
		if r > res.MaxRate {
			res.MaxRate = r
		}
	}
	res.Delivered = sum
	if routed > 0 {
		res.MeanRate = sum / float64(routed)
		if sumSq > 0 {
			res.Jain = sum * sum / (float64(routed) * sumSq)
		}
	} else {
		res.MinRate = 0
	}
	return res
}

// sortByDemand orders flow indices by ascending demand, index-stable for
// equal demands, with an explicit merge sort (no reflection, no
// allocation surprises; determinism is the point).
func sortByDemand(order []int32, m []traffic.Demand) {
	if len(order) < 2 {
		return
	}
	buf := make([]int32, len(order))
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		rec(lo, mid)
		rec(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			a, b := order[i], order[j]
			if m[a].Rate < m[b].Rate || (m[a].Rate == m[b].Rate && a <= b) {
				buf[k] = a
				i++
			} else {
				buf[k] = b
				j++
			}
			k++
		}
		copy(buf[k:], order[i:mid])
		copy(buf[k+mid-i:hi], order[j:hi])
		copy(order[lo:hi], buf[lo:hi])
	}
	rec(0, len(order))
}
