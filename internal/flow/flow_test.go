package flow

import (
	"math"
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// stubNet is a Network with hand-wired paths, for exact water-filling
// checks.
type stubNet struct {
	t, links int
	paths    map[[2]int32][]int32
}

func (s *stubNet) Terminals() int { return s.t }
func (s *stubNet) NumLinks() int  { return s.links }
func (s *stubNet) Resolve(src, dst int32, _ *rng.Rand, buf []int32) ([]int32, bool) {
	p, ok := s.paths[[2]int32{src, dst}]
	if !ok {
		return nil, false
	}
	return append(buf, p...), true
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWaterfillSharedLink(t *testing.T) {
	net := &stubNet{t: 4, links: 10, paths: map[[2]int32][]int32{
		{0, 1}: {0, 5, 7},
		{2, 3}: {1, 5, 8},
	}}
	m := []traffic.Demand{{Src: 0, Dst: 1, Rate: 1}, {Src: 2, Dst: 3, Rate: 1}}
	res, err := Solve(net, m, Options{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rates[0], 0.5) || !near(res.Rates[1], 0.5) {
		t.Fatalf("two flows sharing a link: got rates %v, want 0.5 each", res.Rates)
	}
	if res.SatLinks != 1 {
		t.Errorf("saturated links = %d, want 1 (the shared link)", res.SatLinks)
	}
}

func TestWaterfillDemandCap(t *testing.T) {
	net := &stubNet{t: 4, links: 10, paths: map[[2]int32][]int32{
		{0, 1}: {0, 5, 7},
		{2, 3}: {1, 5, 8},
	}}
	m := []traffic.Demand{{Src: 0, Dst: 1, Rate: 0.3}, {Src: 2, Dst: 3, Rate: 1}}
	res, err := Solve(net, m, Options{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rates[0], 0.3) || !near(res.Rates[1], 0.7) {
		t.Fatalf("demand-capped flow should release bandwidth: got %v, want [0.3 0.7]", res.Rates)
	}
}

func TestWaterfillAsymmetricBottlenecks(t *testing.T) {
	// The textbook example: A uses link 0; B uses links 0 and 1; C and D use
	// link 1. Max-min gives B=C=D=1/3 (link 1) and A=2/3 (link 0's rest).
	net := &stubNet{t: 8, links: 2, paths: map[[2]int32][]int32{
		{0, 1}: {0},
		{2, 3}: {0, 1},
		{4, 5}: {1},
		{6, 7}: {1},
	}}
	m := []traffic.Demand{
		{Src: 0, Dst: 1, Rate: 1}, {Src: 2, Dst: 3, Rate: 1},
		{Src: 4, Dst: 5, Rate: 1}, {Src: 6, Dst: 7, Rate: 1},
	}
	res, err := Solve(net, m, Options{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2. / 3, 1. / 3, 1. / 3, 1. / 3}
	for i, w := range want {
		if !near(res.Rates[i], w) {
			t.Fatalf("asymmetric bottlenecks: got %v, want %v", res.Rates, want)
		}
	}
}

func TestIncastConvergesToFairShare(t *testing.T) {
	c, err := topology.NewCFT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewClos(c, routing.New(c), nil)
	// All 7 other terminals blast terminal 0: the ejection link forces 1/7.
	var m []traffic.Demand
	for s := int32(1); s < 8; s++ {
		m = append(m, traffic.Demand{Src: s, Dst: 0, Rate: 1})
	}
	res, err := Solve(net, m, Options{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Rates {
		if !near(r, 1.0/7) {
			t.Fatalf("incast flow %d rate %.6f, want 1/7", i, r)
		}
	}
	if !near(res.Jain, 1) {
		t.Errorf("incast Jain index %.6f, want 1 (perfectly fair)", res.Jain)
	}
}

func TestLowLoadMeetsDemand(t *testing.T) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewClos(c, routing.New(c), nil)
	m := traffic.ScaleMatrix(traffic.UniformMatrix(c.Terminals(), 4, rng.New(5)), 0.2)
	res, err := Solve(net, m, Options{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Rates {
		if !near(r, m[i].Rate) {
			t.Fatalf("under light uniform load every flow should meet demand: flow %d rate %.6f demand %.6f",
				i, r, m[i].Rate)
		}
	}
	if !near(res.Accepted, 0.2) {
		t.Errorf("accepted %.6f, want 0.2 (all demand delivered)", res.Accepted)
	}
}

func TestWorkerInvariance(t *testing.T) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewClos(c, routing.New(c), nil)
	m, err := traffic.NewMatrix("storm", c.Terminals(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Solve(net, m, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resN, err := Solve(net, m, Options{Seed: 42, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Rates {
		if res1.Rates[i] != resN.Rates[i] {
			t.Fatalf("flow %d rate differs across worker counts: %v vs %v", i, res1.Rates[i], resN.Rates[i])
		}
	}
	if res1.Accepted != resN.Accepted || res1.Rounds != resN.Rounds {
		t.Fatalf("summary differs across worker counts: %+v vs %+v", res1, resN)
	}
}

// verifyMaxMin checks the max-min certificate: (feasibility) no link
// carries more than its capacity, and (maximality) every flow either meets
// its demand or crosses a saturated link on which its rate is maximal.
// Paths are re-derived from the same coordinate streams Solve used.
func verifyMaxMin(t *testing.T, n Network, m []traffic.Demand, opts Options, res *Result) {
	t.Helper()
	const tol = 1e-6
	used := make([]float64, n.NumLinks())
	maxOn := make([]float64, n.NumLinks())
	paths := make([][]int32, len(m))
	for i, d := range m {
		if d.Rate <= 0 {
			continue
		}
		r := rng.At(opts.Seed, pathCoord, uint64(i))
		p, ok := n.Resolve(d.Src, d.Dst, r, nil)
		if !ok {
			if res.Rates[i] != 0 {
				t.Fatalf("unroutable flow %d has rate %v", i, res.Rates[i])
			}
			continue
		}
		paths[i] = p
		for _, l := range p {
			used[l] += res.Rates[i]
			if res.Rates[i] > maxOn[l] {
				maxOn[l] = res.Rates[i]
			}
		}
	}
	for l, u := range used {
		if u > 1+tol {
			t.Fatalf("feasibility violated: link %d carries %.9f > 1", l, u)
		}
	}
	for i, p := range paths {
		if p == nil {
			continue
		}
		if res.Rates[i] >= m[i].Rate-tol {
			continue // demand-satisfied
		}
		ok := false
		for _, l := range p {
			if used[l] >= 1-tol && res.Rates[i] >= maxOn[l]-tol {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("maximality violated: flow %d rate %.9f below demand %.9f with no saturated bottleneck it is maximal on",
				i, res.Rates[i], m[i].Rate)
		}
	}
}

func TestMaxMinPropertyAcrossNetworksAndMatrices(t *testing.T) {
	var nets []struct {
		name string
		n    Network
	}
	cft, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, struct {
		name string
		n    Network
	}{"cft8x3", NewClos(cft, routing.New(cft), nil)})
	rc, _, _, err := core.GenerateRoutable(core.Params{Radix: 8, Levels: 3, Leaves: 16}, 20, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, struct {
		name string
		n    Network
	}{"rfc8x3x16", NewClos(rc, routing.New(rc), nil)})
	rrn, err := topology.NewRRN(32, 4, 2, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	rn, err := NewRRN(rrn, 1)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, struct {
		name string
		n    Network
	}{"rrn32x4x2", rn})

	for _, nt := range nets {
		for _, name := range traffic.MatrixNames() {
			for _, load := range []float64{0.4, 1.0} {
				m, err := traffic.NewMatrix(name, nt.n.Terminals(), rng.New(11))
				if err != nil {
					t.Fatal(err)
				}
				m = traffic.ScaleMatrix(m, load)
				opts := Options{Seed: 17, Workers: 1}
				res, err := Solve(nt.n, m, opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", nt.name, name, err)
				}
				verifyMaxMin(t, nt.n, m, opts, res)
			}
		}
	}
}

func TestClosResolveLinkModel(t *testing.T) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewClos(c, routing.New(c), nil)
	tcount := int32(c.Terminals())
	r := rng.New(1)
	p, ok := net.Resolve(0, tcount-1, r, nil)
	if !ok {
		t.Fatal("CFT pair unroutable")
	}
	if p[0] != 0 || p[len(p)-1] != tcount+tcount-1 {
		t.Fatalf("path must start at injection 0 and end at ejection of dst: %v", p)
	}
	// CFT(8,3) cross-network path: injection + 2 up + 2 down + ejection.
	if len(p) != 6 {
		t.Fatalf("distant leaf pair path length %d links, want 6", len(p))
	}
	for _, l := range p {
		if int(l) >= net.NumLinks() || l < 0 {
			t.Fatalf("link id %d outside [0, %d)", l, net.NumLinks())
		}
	}
	// Same-leaf pair: terminal links only.
	p, ok = net.Resolve(0, 1, r, nil)
	if !ok || len(p) != 2 {
		t.Fatalf("same-leaf pair should use only terminal links, got %v", p)
	}
}

func TestTurnIndexMatchesCoverResolution(t *testing.T) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	ud := routing.New(c)
	plain := NewClos(c, ud, nil)
	indexed := NewClos(c, ud, routing.NewTurnIndex(ud, 0))
	m := traffic.ScaleMatrix(traffic.UniformMatrix(c.Terminals(), 2, rng.New(8)), 1)
	a, err := Solve(plain, m, Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(indexed, m, Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatalf("turn-index path resolution diverged at flow %d", i)
		}
	}
}
