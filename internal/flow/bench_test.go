// Solver benchmark at datacenter scale: a uniform matrix over a 64K-leaf
// XGFT (262,144 terminals, one flow per terminal), resolved and
// water-filled end to end. scripts/bench.sh records the flows/sec rate as
// the flow-solver datapoint in BENCH_engine.json.
package flow_test

import (
	"testing"

	"rfclos/internal/flow"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

func BenchmarkFlowSolve(b *testing.B) {
	m3 := 65536 / 8
	c, err := topology.NewXGFT([]int{4, 8, m3}, []int{1, 8, 2}, m3)
	if err != nil {
		b.Fatal(err)
	}
	net := flow.NewClos(c, routing.New(c), nil)
	m := traffic.UniformMatrix(net.Terminals(), 1, rng.At(1, rng.StringCoord("bench/flow")))

	b.ResetTimer()
	var res *flow.Result
	for i := 0; i < b.N; i++ {
		res, err = flow.Solve(net, m, flow.Options{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Unroutable != 0 || res.Flows != len(m) {
		b.Fatalf("solve routed %d/%d flows with %d unroutable", res.Flows, len(m), res.Unroutable)
	}
	b.ReportMetric(float64(res.Flows)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(res.Accepted, "accepted")
}
