package flow_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rfclos/internal/flow"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simcore/goldencases"
	"rfclos/internal/simdirect"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// solveFlowCase runs the flow backend on one goldencases.FlowCase: the same
// topology and pattern as the cycle-engine golden point, the pattern turned
// into a matrix (one flow per source) scaled by the case's offered load.
func solveFlowCase(i int, fc goldencases.FlowCase, workers int) (*flow.Result, error) {
	var net flow.Network
	switch {
	case fc.BuildClos != nil:
		c, err := fc.BuildClos()
		if err != nil {
			return nil, err
		}
		net = flow.NewClos(c, routing.New(c), nil)
	default:
		r, err := fc.BuildRRN()
		if err != nil {
			return nil, err
		}
		net, err = flow.NewRRN(r, workers)
		if err != nil {
			return nil, err
		}
	}
	stream := rng.At(7, rng.StringCoord("flow/crossval"), uint64(i))
	m := traffic.MatrixFromPattern(fc.Pattern(net.Terminals()), net.Terminals(), stream)
	m = traffic.ScaleMatrix(m, fc.Load)
	return flow.Solve(net, m, flow.Options{Seed: 7, Workers: workers})
}

// formatCrossval renders one golden line per case.
func formatCrossval(fc goldencases.FlowCase, res *flow.Result) string {
	return fmt.Sprintf("%s flows=%d unroutable=%d accepted=%.6f min=%.6f mean=%.6f jain=%.4f rounds=%d\n",
		fc.Name, res.Flows, res.Unroutable, res.Accepted, res.MinRate, res.MeanRate, res.Jain, res.Rounds)
}

// TestCrossvalGolden pins the flow backend's output on the 14 simcore
// golden cases, byte for byte, at two worker counts (worker invariance
// rides along). Refresh with UPDATE_FLOW_GOLDEN=1.
func TestCrossvalGolden(t *testing.T) {
	var got string
	for i, fc := range goldencases.FlowCases() {
		res1, err := solveFlowCase(i, fc, 1)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name, err)
		}
		resN, err := solveFlowCase(i, fc, 6)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name, err)
		}
		line1, lineN := formatCrossval(fc, res1), formatCrossval(fc, resN)
		if line1 != lineN {
			t.Fatalf("%s: output differs across worker counts:\n%s%s", fc.Name, line1, lineN)
		}
		got += line1
	}
	path := filepath.Join("testdata", "crossval.txt")
	if os.Getenv("UPDATE_FLOW_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_FLOW_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("flow cross-validation output differs from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSimcoreOrderingAgreement cross-validates the two backends where both
// run: the three small golden networks under saturating uniform traffic
// must rank identically by per-terminal accepted throughput (ties within
// tolerance in either backend excuse a pair).
func TestSimcoreOrderingAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-engine cross-validation skipped under -short")
	}
	type point struct {
		name      string
		sim, flow float64
	}
	var pts []point

	// CFT(8,3) and RFC(8,3,16) on the indirect cycle engine.
	for _, cl := range []struct {
		name  string
		build func() (*topology.Clos, error)
	}{
		{"cft8x3", func() (*topology.Clos, error) { return topology.NewCFT(8, 3) }},
		{"rfc8x3x16", func() (*topology.Clos, error) {
			c, _, _, err := goldenRFC()
			return c, err
		}},
	} {
		c, err := cl.build()
		if err != nil {
			t.Fatal(err)
		}
		ud := routing.New(c)
		cfg := simnet.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 7}
		simRes := simnet.New(c, ud, traffic.NewUniform(c.Terminals()), cfg).Run(1.0)
		f, err := flowUniform(flow.NewClos(c, ud, nil))
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{cl.name, simRes.AcceptedLoad, f})
	}
	// RRN(32,4,2) on the direct cycle engine.
	rrn, err := topology.NewRRN(32, 4, 2, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simdirect.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 5, VCs: 8}
	sim, err := simdirect.New(rrn, traffic.NewUniform(rrn.Terminals()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	simRes := sim.Run(1.0)
	rn, err := flow.NewRRN(rrn, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := flowUniform(rn)
	if err != nil {
		t.Fatal(err)
	}
	pts = append(pts, point{"rrn32x4x2", simRes.AcceptedLoad, f})

	const tie = 0.07
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			a, b := pts[i], pts[j]
			dSim, dFlow := a.sim-b.sim, a.flow-b.flow
			if (dSim > tie && dFlow < -tie) || (dSim < -tie && dFlow > tie) {
				t.Errorf("backends disagree on ordering %s vs %s: cycle %+.4f, flow %+.4f",
					a.name, b.name, dSim, dFlow)
			}
		}
	}
	t.Logf("ordering points: %+v", pts)
}

func goldenRFC() (*topology.Clos, *routing.UpDown, int, error) {
	for _, fc := range goldencases.FlowCases() {
		if fc.Name == "clos/rfc8x3x16/uniform/0.5" {
			c, err := fc.BuildClos()
			if err != nil {
				return nil, nil, 0, err
			}
			return c, nil, 0, nil
		}
	}
	return nil, nil, 0, fmt.Errorf("rfc golden case missing")
}

// flowUniform runs the flow backend at saturating uniform load.
func flowUniform(n flow.Network) (float64, error) {
	m := traffic.UniformMatrix(n.Terminals(), 4, rng.New(21))
	res, err := flow.Solve(n, m, flow.Options{Seed: 21, Workers: 0})
	if err != nil {
		return 0, err
	}
	return res.Accepted, nil
}
