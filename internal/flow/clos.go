package flow

import (
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// ClosNetwork routes matrix flows over a folded Clos along random shortest
// up/down paths, reusing the routing layer's compressed LeafSet covers
// (per-hop NextUpPort/NextDownPort) and, when available, a precomputed
// TurnIndex for the minimal turn level.
//
// Directed link ids: [0, T) terminal injection, [T, 2T) terminal ejection,
// then one id per (switch, up-port) in switch-id order, then one per
// (switch, down-port) — the two directions of every wire are independent
// capacity, as in the cycle engine's channel model.
type ClosNetwork struct {
	c   *topology.Clos
	ud  *routing.UpDown
	idx routing.TurnIndex // optional; nil falls back to ud.MinTurn
	// upStart/downStart are per-switch prefix sums of up-/down-degree,
	// frozen at construction (the topology must not mutate afterwards).
	upStart, downStart []int32
	upBase, downBase   int32
	links              int
}

// NewClos builds the adapter. idx may be nil; passing the build's
// TurnIndex (as rfcd's cached topologies do) skips the per-flow cover-set
// scan for the turn level.
func NewClos(c *topology.Clos, ud *routing.UpDown, idx routing.TurnIndex) *ClosNetwork {
	n := c.NumSwitches()
	net := &ClosNetwork{c: c, ud: ud, idx: idx,
		upStart: make([]int32, n+1), downStart: make([]int32, n+1)}
	for s := 0; s < n; s++ {
		net.upStart[s+1] = net.upStart[s] + int32(len(c.Up(int32(s))))
		net.downStart[s+1] = net.downStart[s] + int32(len(c.Down(int32(s))))
	}
	t := int32(c.Terminals())
	net.upBase = 2 * t
	net.downBase = net.upBase + net.upStart[n]
	net.links = int(net.downBase + net.downStart[n])
	return net
}

// Terminals implements Network.
func (n *ClosNetwork) Terminals() int { return n.c.Terminals() }

// NumLinks implements Network.
func (n *ClosNetwork) NumLinks() int { return n.links }

// minTurn resolves the minimal turn level through the index when present.
func (n *ClosNetwork) minTurn(src, dst int) int {
	if n.idx != nil {
		return n.idx.MinTurn(src, dst)
	}
	return n.ud.MinTurn(src, dst)
}

// Resolve implements Network: injection link, a random shortest up/down
// path (uniform per hop among minimal next hops, like the cycle engine's
// adaptive policy), ejection link.
func (n *ClosNetwork) Resolve(src, dst int32, r *rng.Rand, buf []int32) ([]int32, bool) {
	buf = append(buf, src)
	t := int32(n.c.Terminals())
	if src == dst {
		return append(buf, t+dst), true
	}
	sl, dl := n.c.LeafOfTerminal(int(src)), n.c.LeafOfTerminal(int(dst))
	if sl != dl {
		dli := int(dl) // leaf switch ids coincide with leaf indices
		turn := n.minTurn(int(sl), dli)
		if turn < 0 {
			return nil, false
		}
		s := sl
		for rem := turn; rem > 0; rem-- {
			p := n.ud.NextUpPort(s, rem, dli, r)
			if p < 0 {
				return nil, false
			}
			buf = append(buf, n.upBase+n.upStart[s]+int32(p))
			s = n.c.Up(s)[p]
		}
		for n.c.LevelOf(s) > 1 {
			p := n.ud.NextDownPort(s, dli, r)
			if p < 0 {
				return nil, false
			}
			buf = append(buf, n.downBase+n.downStart[s]+int32(p))
			s = n.c.Down(s)[p]
		}
	}
	return append(buf, t+dst), true
}
