package routing

import (
	"testing"

	"rfclos/internal/rng"
)

// naiveRank counts set bits in [0, i) one by one.
func naiveRank(b Bitset, i int) int {
	n := 0
	for j := 0; j < i; j++ {
		if b.Get(j) {
			n++
		}
	}
	return n
}

// TestRankSelect pins Rank, Select, and RankDir.Rank against the naive
// definitions on random bitsets spanning the word-boundary edge cases.
func TestRankSelect(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{1, 7, 63, 64, 65, 200, 512, 513, 1000} {
		for _, density := range []int{0, 3, 50, 100} {
			b := NewBitset(n)
			for i := 0; i < n; i++ {
				if r.Intn(100) < density {
					b.Set(i)
				}
			}
			dir := NewRankDir(b)
			if dir.Count() != b.Count() {
				t.Fatalf("n=%d density=%d: RankDir.Count = %d, want %d", n, density, dir.Count(), b.Count())
			}
			if dir.SizeBytes() != 4*len(dir) {
				t.Fatalf("RankDir.SizeBytes = %d, want %d", dir.SizeBytes(), 4*len(dir))
			}
			k := 0
			for i := 0; i < n; i++ {
				want := naiveRank(b, i)
				if got := b.Rank(i); got != want {
					t.Fatalf("n=%d density=%d: Rank(%d) = %d, want %d", n, density, i, got, want)
				}
				if got := dir.Rank(b, i); got != want {
					t.Fatalf("n=%d density=%d: RankDir.Rank(%d) = %d, want %d", n, density, i, got, want)
				}
				if b.Get(i) {
					if got := b.Select(k); got != i {
						t.Fatalf("n=%d density=%d: Select(%d) = %d, want %d", n, density, k, got, i)
					}
					k++
				}
			}
			if got := b.Select(k); got != -1 {
				t.Fatalf("Select past last set bit = %d, want -1", got)
			}
		}
	}
}

// TestNibbleAt pins the 4-bit packing order MinTurn decoding relies on.
func TestNibbleAt(t *testing.T) {
	codes := []uint8{0x21, 0xf3}
	want := []uint8{1, 2, 3, 0xf}
	for i, w := range want {
		if got := nibbleAt(codes, i); got != w {
			t.Fatalf("nibbleAt(%d) = %#x, want %#x", i, got, w)
		}
	}
}
