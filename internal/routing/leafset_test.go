package routing

import (
	"testing"

	"rfclos/internal/rng"
)

// bitsetOf builds an n-bit scratch with the given members set.
func bitsetOf(n int, members ...int) Bitset {
	b := NewBitset(n)
	for _, i := range members {
		b.Set(i)
	}
	return b
}

// checkLeafSetMatchesBitset verifies every LeafSet operation against the
// reference bitset the set was built from.
func checkLeafSetMatchesBitset(t *testing.T, s LeafSet, ref Bitset, n int) {
	t.Helper()
	if got, want := s.Count(), ref.Count(); got != want {
		t.Fatalf("%s: Count = %d, want %d", s.Repr(), got, want)
	}
	if got, want := s.Empty(), ref.Count() == 0; got != want {
		t.Fatalf("%s: Empty = %v, want %v", s.Repr(), got, want)
	}
	if got, want := s.Full(), ref.Full(n); got != want {
		t.Fatalf("%s: Full = %v, want %v", s.Repr(), got, want)
	}
	for i := 0; i < n; i++ {
		if got, want := s.Get(i), ref.Get(i); got != want {
			t.Fatalf("%s: Get(%d) = %v, want %v", s.Repr(), i, got, want)
		}
	}
	// Runs must be maximal, ascending, and reconstruct the set exactly.
	recon := NewBitset(n)
	last := -1 // previous run's hi; runs must be ascending with a gap between them
	s.Runs(func(lo, hi int) bool {
		if lo >= hi || lo <= last || hi > n {
			t.Fatalf("%s: bad run [%d, %d) after hi=%d", s.Repr(), lo, hi, last)
		}
		recon.SetRange(lo, hi)
		last = hi
		return true
	})
	for i, w := range recon {
		if w != ref[i] {
			t.Fatalf("%s: Runs reconstruction differs at word %d", s.Repr(), i)
		}
	}
	// Fill must produce exactly the reference words (padding bits clear).
	buf := NewBitset(n)
	for i := range buf {
		buf[i] = ^uint64(0) // garbage that Fill must overwrite
	}
	s.Fill(buf)
	for i, w := range buf {
		if w != ref[i] {
			t.Fatalf("%s: Fill differs at word %d: %x vs %x", s.Repr(), i, w, ref[i])
		}
	}
	// OrInto must add exactly the members.
	or := bitsetOf(n, 0)
	want := bitsetOf(n, 0)
	want.Or(ref)
	s.OrInto(or)
	for i, w := range or {
		if w != want[i] {
			t.Fatalf("%s: OrInto differs at word %d", s.Repr(), i)
		}
	}
	if s.SizeBytes() <= 0 {
		t.Fatalf("%s: SizeBytes = %d", s.Repr(), s.SizeBytes())
	}
}

// TestContainerChoiceEdges pins the compressor's container transitions:
// empty, singleton, full, complement flip (all-but-few), contiguous run and
// the high-entropy bitset fallback.
func TestContainerChoiceEdges(t *testing.T) {
	n := 4096
	cases := []struct {
		name string
		fill func(b Bitset)
		want string
	}{
		{"empty", func(b Bitset) {}, "empty"},
		{"singleton", func(b Bitset) { b.Set(7) }, "sparse"},
		{"full", func(b Bitset) { b.SetRange(0, n) }, "full"},
		{"all-but-one", func(b Bitset) { b.SetRange(0, n); b.ClearBit(63) }, "comp"},
		{"all-but-scattered", func(b Bitset) {
			b.SetRange(0, n)
			for _, h := range []int{0, 100, 1000, 4095} {
				b.ClearBit(h)
			}
		}, "comp"},
		{"contiguous-range", func(b Bitset) { b.SetRange(100, 900) }, "run"},
		{"few-runs", func(b Bitset) { b.SetRange(0, 64); b.SetRange(128, 300); b.SetRange(4000, n) }, "run"},
		{"alternating", func(b Bitset) {
			for i := 0; i < n; i += 2 {
				b.Set(i)
			}
		}, "bits"},
	}
	for _, tc := range cases {
		ref := NewBitset(n)
		tc.fill(ref)
		s := compressBitset(ref, n)
		if s.Repr() != tc.want {
			t.Fatalf("%s: compressed to %q, want %q", tc.name, s.Repr(), tc.want)
		}
		checkLeafSetMatchesBitset(t, s, ref, n)
	}
}

// TestLeafSetFromRangeEdges covers the direct-range constructor the
// topology leaf-range hints use.
func TestLeafSetFromRangeEdges(t *testing.T) {
	n := 500
	for _, tc := range []struct {
		lo, hi int
		want   string
	}{
		{10, 10, "empty"},
		{0, n, "full"},
		{42, 43, "sparse"},
		{17, 400, "run"},
	} {
		s := leafSetFromRange(n, tc.lo, tc.hi)
		if s.Repr() != tc.want {
			t.Fatalf("leafSetFromRange(%d, %d) = %q, want %q", tc.lo, tc.hi, s.Repr(), tc.want)
		}
		ref := NewBitset(n)
		ref.SetRange(tc.lo, tc.hi)
		checkLeafSetMatchesBitset(t, s, ref, n)
	}
}

// TestCompressEquivalenceRandom drives the compressor across densities and
// awkward universe sizes (word boundaries, single word, sub-word) and
// checks every operation against the source bitset.
func TestCompressEquivalenceRandom(t *testing.T) {
	r := rng.New(11)
	sizes := []int{1, 5, 63, 64, 65, 127, 128, 1000, 4096}
	densities := []int{0, 1, 5, 30, 70, 95, 99, 100} // percent
	for _, n := range sizes {
		for _, d := range densities {
			ref := NewBitset(n)
			for i := 0; i < n; i++ {
				if r.Intn(100) < d {
					ref.Set(i)
				}
			}
			s := compressBitset(ref, n)
			checkLeafSetMatchesBitset(t, s, ref, n)
		}
	}
}

// TestLeafSetBuilderUnion checks the run-merging union builder — including
// scratch fallback and builder reuse across unions — against a reference
// bitset OR.
func TestLeafSetBuilderUnion(t *testing.T) {
	r := rng.New(23)
	n := 777
	bld := newLeafSetBuilder(n)
	for round := 0; round < 60; round++ {
		parts := make([]LeafSet, 1+r.Intn(6))
		want := NewBitset(n)
		for i := range parts {
			ref := NewBitset(n)
			switch r.Intn(5) {
			case 0: // empty
			case 1: // range
				lo := r.Intn(n)
				ref.SetRange(lo, lo+1+r.Intn(n-lo))
			case 2: // sparse
				for k := 0; k < 1+r.Intn(9); k++ {
					ref.Set(r.Intn(n))
				}
			case 3: // near-full
				ref.SetRange(0, n)
				for k := 0; k < r.Intn(9); k++ {
					ref.ClearBit(r.Intn(n))
				}
			default: // high-entropy
				for j := 0; j < n; j++ {
					if r.Intn(2) == 0 {
						ref.Set(j)
					}
				}
			}
			parts[i] = compressBitset(ref, n)
			want.Or(ref)
		}
		bld.reset()
		for _, p := range parts {
			bld.add(p)
		}
		got := bld.finish()
		checkLeafSetMatchesBitset(t, got, want, n)
	}
}

// TestBitsetHelpers verifies the SetRange/NextSet/NextClear primitives the
// containers are built on, against naive loops.
func TestBitsetHelpers(t *testing.T) {
	r := rng.New(31)
	for _, n := range []int{1, 64, 65, 130, 517} {
		for trial := 0; trial < 20; trial++ {
			b := NewBitset(n)
			lo := r.Intn(n)
			hi := lo + r.Intn(n-lo+1)
			b.SetRange(lo, hi)
			for i := 0; i < n; i++ {
				if got, want := b.Get(i), i >= lo && i < hi; got != want {
					t.Fatalf("n=%d SetRange(%d,%d): Get(%d) = %v", n, lo, hi, i, got)
				}
			}
			for i := 0; i <= n; i++ {
				wantSet := -1
				for j := i; j < n; j++ {
					if b.Get(j) {
						wantSet = j
						break
					}
				}
				// SetRange never touches padding bits, so NextSet can only
				// report in-universe positions or -1.
				if got := b.NextSet(i); got != wantSet {
					t.Fatalf("n=%d [%d,%d): NextSet(%d) = %d, want %d", n, lo, hi, i, got, wantSet)
				}
				wantClear := len(b) << 6
				for j := i; j < len(b)<<6; j++ {
					if j >= n || !b.Get(j) {
						wantClear = j
						break
					}
				}
				if got := b.NextClear(i); got != wantClear {
					t.Fatalf("n=%d [%d,%d): NextClear(%d) = %d, want %d", n, lo, hi, i, got, wantClear)
				}
			}
		}
	}
}
