package routing

import (
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

func TestBuildTablesCFT(t *testing.T) {
	c, err := topology.NewCFT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ud := New(c)
	tables := ud.BuildTables()
	if len(tables) != c.NumSwitches() {
		t.Fatalf("got %d tables, want %d", len(tables), c.NumSwitches())
	}
	n1 := c.LevelSize(1)
	// Leaf switches: own leaf ejects, every other leaf goes up through
	// both roots (full ECMP in a 2-level CFT).
	for leaf := 0; leaf < n1; leaf++ {
		ft := tables[c.SwitchID(1, leaf)]
		for d := 0; d < n1; d++ {
			e := ft.Entries[d]
			if d == leaf {
				if e.Class != PortEject {
					t.Fatalf("leaf %d dest %d: class %v, want eject", leaf, d, e.Class)
				}
				continue
			}
			if e.Class != PortUp || len(e.Ports) != 2 {
				t.Fatalf("leaf %d dest %d: %v ports %v, want 2 up ports", leaf, d, e.Class, e.Ports)
			}
		}
	}
	// Roots: every destination reachable down through exactly one child.
	for i := 0; i < c.LevelSize(2); i++ {
		ft := tables[c.SwitchID(2, i)]
		for d := 0; d < n1; d++ {
			e := ft.Entries[d]
			if e.Class != PortDown || len(e.Ports) != 1 {
				t.Fatalf("root %d dest %d: %v ports %v, want 1 down port", i, d, e.Class, e.Ports)
			}
		}
	}
	st := ud.Stats(tables)
	if st.UnreachableEntries != 0 {
		t.Errorf("unreachable entries on a pristine CFT: %d", st.UnreachableEntries)
	}
	if st.TotalEntries != c.NumSwitches()*n1 {
		t.Errorf("entries = %d, want %d", st.TotalEntries, c.NumSwitches()*n1)
	}
	if st.CoverBytes <= 0 || st.ApproxBytes <= 0 {
		t.Error("size accounting missing")
	}
}

func TestTablesMatchHopDecisions(t *testing.T) {
	// The explicit tables and the live NextUp/NextDown decisions must
	// agree: every port the router can pick appears in the table entry.
	r := rng.New(41)
	c, err := buildRandomRFC(8, 3, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	ud := New(c)
	tables := ud.BuildTables()
	for trial := 0; trial < 300; trial++ {
		sw := int32(r.Intn(c.NumSwitches()))
		d := r.Intn(16)
		e := tables[sw].Entries[d]
		switch e.Class {
		case PortEject:
			// own leaf
		case PortDown:
			port := ud.NextDownPort(sw, d, r)
			if port < 0 {
				if len(e.Ports) != 0 {
					t.Fatalf("table has down ports but router found none (sw %d dst %d)", sw, d)
				}
				continue
			}
			if !containsPort(e.Ports, port) {
				t.Fatalf("router picked down port %d not in table %v (sw %d dst %d)", port, e.Ports, sw, d)
			}
		case PortUp:
			if len(e.Ports) == 0 {
				continue // unreachable pair below threshold
			}
			// Determine the remaining budget like the table builder does.
			rem := -1
			for rr := 1; rr < len(ud.cover); rr++ {
				if cov := ud.cover[rr][sw]; cov != nil && cov.Get(d) {
					rem = rr
					break
				}
			}
			port := ud.NextUpPort(sw, rem, d, r)
			if port < 0 || !containsPort(e.Ports, port) {
				t.Fatalf("router picked up port %d not in table %v (sw %d dst %d)", port, e.Ports, sw, d)
			}
		}
	}
}

func containsPort(ports []uint8, p int) bool {
	for _, v := range ports {
		if int(v) == p {
			return true
		}
	}
	return false
}

func TestTablesUnderFaults(t *testing.T) {
	c, err := topology.NewCFT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ud := New(c)
	leaf0 := c.SwitchID(1, 0)
	for _, up := range append([]int32(nil), c.Up(leaf0)...) {
		c.RemoveLink(leaf0, up)
	}
	ud.Rebuild()
	st := ud.Stats(ud.BuildTables())
	if st.UnreachableEntries == 0 {
		t.Error("expected unreachable entries after isolating a leaf")
	}
}

func TestHashPortSelectors(t *testing.T) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	ud := New(c)
	r := rng.New(51)
	for trial := 0; trial < 200; trial++ {
		src := int32(r.Intn(c.LevelSize(1)))
		dst := r.Intn(c.LevelSize(1))
		if int(src) == dst {
			continue
		}
		rem := ud.MinTurn(int(src), dst)
		if rem <= 0 {
			continue
		}
		key := uint32(r.Uint64())
		// Deterministic: same key, same answer.
		a := ud.NextUpPortHash(src, rem, dst, key)
		b := ud.NextUpPortHash(src, rem, dst, key)
		if a != b {
			t.Fatalf("hash selector not deterministic: %d vs %d", a, b)
		}
		if a < 0 {
			t.Fatalf("hash selector found no port where MinTurn = %d", rem)
		}
		// The chosen port must also be acceptable to the random selector's
		// candidate set: verify via cover membership.
		p := c.Up(src)[a]
		if !ud.cover[rem-1][p].Get(dst) {
			t.Fatalf("hash selector picked non-qualifying port %d", a)
		}
	}
	// Down side: at a root of a 2-level CFT both selectors agree on the
	// unique child.
	c2, _ := topology.NewCFT(4, 2)
	ud2 := New(c2)
	root := c2.SwitchID(2, 0)
	for d := 0; d < c2.LevelSize(1); d++ {
		h := ud2.NextDownPortHash(root, d, 12345)
		rr := ud2.NextDownPort(root, d, r)
		if h != rr {
			t.Fatalf("unique down port disagreement: hash %d vs random %d", h, rr)
		}
	}
	// Different keys spread across candidates.
	seen := map[int]bool{}
	src := int32(0)
	dst := c.LevelSize(1) - 1
	rem := ud.MinTurn(0, dst)
	for key := uint32(0); key < 64; key++ {
		seen[ud.NextUpPortHash(src, rem, dst, key)] = true
	}
	if len(seen) < 2 {
		t.Error("hash selector never varied with the key")
	}
}
