package routing

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
)

// This file implements the hybrid compressed leaf-set containers the
// up/down routing state stores its descendant and cover sets in. A plain
// N1-bit Bitset per set costs O(N1²/8) across a build — ~1.6 GB at 64K
// leaves — yet in a folded Clos almost every set is highly structured:
// descendant sets are unions of contiguous leaf ranges (exactly contiguous
// in the XGFT family), low-level cover sets of a random RFC are small
// unions of sparse parent sets, and high-level cover sets are full or
// nearly full. The LeafSet interface lets every set pick the container
// that matches its shape:
//
//	empty   no leaves                           O(1) bytes
//	full    every leaf                          O(1) bytes
//	run     sorted [lo, hi) interval list       8 bytes per run
//	sparse  sorted leaf-id list                 4 bytes per member
//	comp    complement: all leaves except a     4 bytes per missing leaf
//	        sorted hole list
//	bits    raw Bitset fallback                 N1/8 bytes
//
// Each set is compressed to its cheapest container as it is produced, so
// the routing state's memory is proportional to the compressed size, not
// N1²/8. Containers are immutable after construction and safe for
// concurrent readers.

// LeafSet is an immutable set of leaf-switch indices in [0, n), the
// abstraction UpDown routes through instead of concrete Bitsets. All
// implementations answer membership in O(log size) or better and iterate
// as maximal runs in ascending order.
type LeafSet interface {
	// Get reports whether leaf index i is a member. i must be in [0, n).
	Get(i int) bool
	// Count returns the number of member leaves.
	Count() int
	// Empty reports whether the set has no members.
	Empty() bool
	// Full reports whether the set contains every leaf in [0, n).
	Full() bool
	// Runs calls yield for every maximal run [lo, hi) of members in
	// ascending order, stopping early when yield returns false.
	Runs(yield func(lo, hi int) bool) bool
	// OrInto ors the set's members into b (b must hold >= n bits).
	OrInto(b Bitset)
	// Fill overwrites b with exactly the set's members; bits at positions
	// >= n are cleared (b must be the (n+63)/64-word bitset of the
	// universe).
	Fill(b Bitset)
	// SizeBytes returns the container's memory footprint, including its
	// struct and slice headers.
	SizeBytes() int
	// Repr names the container: "empty", "full", "run", "sparse", "comp"
	// or "bits".
	Repr() string
}

// Per-container fixed overhead charged by SizeBytes: the container struct
// (universe + count fields, one slice header where present) plus the
// 16-byte interface header of the cover-slice slot it occupies is charged
// by CoverBytes, not here.
const (
	scalarSetBytes = 16 // emptySet / fullSet
	sliceSetBytes  = 40 // containers holding one slice
)

// emptySet is the no-members container.
type emptySet struct{ n int }

func (s emptySet) Get(int) bool                    { return false }
func (s emptySet) Count() int                      { return 0 }
func (s emptySet) Empty() bool                     { return true }
func (s emptySet) Full() bool                      { return s.n == 0 }
func (s emptySet) Runs(func(lo, hi int) bool) bool { return true }
func (s emptySet) OrInto(Bitset)                   {}
func (s emptySet) Fill(b Bitset)                   { b.Clear() }
func (s emptySet) SizeBytes() int                  { return scalarSetBytes }
func (s emptySet) Repr() string                    { return "empty" }

// fullSet contains every leaf in [0, n).
type fullSet struct{ n int }

func (s fullSet) Get(int) bool { return true }
func (s fullSet) Count() int   { return s.n }
func (s fullSet) Empty() bool  { return s.n == 0 }
func (s fullSet) Full() bool   { return true }
func (s fullSet) Runs(yield func(lo, hi int) bool) bool {
	if s.n == 0 {
		return true
	}
	return yield(0, s.n)
}
func (s fullSet) OrInto(b Bitset) { b.SetRange(0, s.n) }
func (s fullSet) Fill(b Bitset) {
	b.Clear()
	b.SetRange(0, s.n)
}
func (s fullSet) SizeBytes() int { return scalarSetBytes }
func (s fullSet) Repr() string   { return "full" }

// runSet stores sorted disjoint non-adjacent runs packed lo<<32|hi.
type runSet struct {
	n     int
	count int
	runs  []uint64
}

func runLo(r uint64) int { return int(r >> 32) }
func runHi(r uint64) int { return int(r & 0xffffffff) }
func packRun(lo, hi int) uint64 {
	return uint64(lo)<<32 | uint64(hi)
}

func (s *runSet) Get(i int) bool {
	// Rightmost run with lo <= i.
	k := sort.Search(len(s.runs), func(k int) bool { return runLo(s.runs[k]) > i }) - 1
	return k >= 0 && i < runHi(s.runs[k])
}
func (s *runSet) Count() int  { return s.count }
func (s *runSet) Empty() bool { return s.count == 0 }
func (s *runSet) Full() bool  { return s.count == s.n }
func (s *runSet) Runs(yield func(lo, hi int) bool) bool {
	for _, r := range s.runs {
		if !yield(runLo(r), runHi(r)) {
			return false
		}
	}
	return true
}
func (s *runSet) OrInto(b Bitset) {
	for _, r := range s.runs {
		b.SetRange(runLo(r), runHi(r))
	}
}
func (s *runSet) Fill(b Bitset) {
	b.Clear()
	s.OrInto(b)
}
func (s *runSet) SizeBytes() int { return sliceSetBytes + 8*len(s.runs) }
func (s *runSet) Repr() string   { return "run" }

// sparseSet stores a sorted member-id list.
type sparseSet struct {
	n   int
	ids []int32
}

func (s *sparseSet) Get(i int) bool {
	_, ok := slices.BinarySearch(s.ids, int32(i))
	return ok
}
func (s *sparseSet) Count() int  { return len(s.ids) }
func (s *sparseSet) Empty() bool { return len(s.ids) == 0 }
func (s *sparseSet) Full() bool  { return len(s.ids) == s.n }
func (s *sparseSet) Runs(yield func(lo, hi int) bool) bool {
	for k := 0; k < len(s.ids); {
		lo := int(s.ids[k])
		hi := lo + 1
		k++
		for k < len(s.ids) && int(s.ids[k]) == hi {
			hi++
			k++
		}
		if !yield(lo, hi) {
			return false
		}
	}
	return true
}
func (s *sparseSet) OrInto(b Bitset) {
	for _, id := range s.ids {
		b.Set(int(id))
	}
}
func (s *sparseSet) Fill(b Bitset) {
	b.Clear()
	s.OrInto(b)
}
func (s *sparseSet) SizeBytes() int { return sliceSetBytes + 4*len(s.ids) }
func (s *sparseSet) Repr() string   { return "sparse" }

// compSet is the complement container: every leaf in [0, n) except a
// sorted hole list. It is the cheap encoding of the nearly-full cover sets
// routable networks produce at high turn levels, where the few missing
// leaves are scattered (contiguous gaps compress as runs instead).
type compSet struct {
	n     int
	holes []int32
}

func (s *compSet) Get(i int) bool {
	_, ok := slices.BinarySearch(s.holes, int32(i))
	return !ok
}
func (s *compSet) Count() int  { return s.n - len(s.holes) }
func (s *compSet) Empty() bool { return len(s.holes) == s.n }
func (s *compSet) Full() bool  { return len(s.holes) == 0 }
func (s *compSet) Runs(yield func(lo, hi int) bool) bool {
	lo := 0
	for _, h := range s.holes {
		if lo < int(h) && !yield(lo, int(h)) {
			return false
		}
		lo = int(h) + 1
	}
	if lo < s.n {
		return yield(lo, s.n)
	}
	return true
}
func (s *compSet) OrInto(b Bitset) {
	s.Runs(func(lo, hi int) bool {
		b.SetRange(lo, hi)
		return true
	})
}
func (s *compSet) Fill(b Bitset) {
	b.Clear()
	b.SetRange(0, s.n)
	for _, h := range s.holes {
		b.ClearBit(int(h))
	}
}
func (s *compSet) SizeBytes() int { return sliceSetBytes + 4*len(s.holes) }
func (s *compSet) Repr() string   { return "comp" }

// bitsSet is the raw-bitset fallback for genuinely high-entropy sets.
type bitsSet struct {
	n     int
	count int
	bits  Bitset
}

func (s *bitsSet) Get(i int) bool { return s.bits.Get(i) }
func (s *bitsSet) Count() int     { return s.count }
func (s *bitsSet) Empty() bool    { return s.count == 0 }
func (s *bitsSet) Full() bool     { return s.count == s.n }
func (s *bitsSet) Runs(yield func(lo, hi int) bool) bool {
	for i := 0; i < s.n; {
		lo := s.bits.NextSet(i)
		if lo < 0 || lo >= s.n {
			return true
		}
		hi := s.bits.NextClear(lo)
		if hi > s.n {
			hi = s.n
		}
		if !yield(lo, hi) {
			return false
		}
		i = hi
	}
	return true
}
func (s *bitsSet) OrInto(b Bitset) { b.Or(s.bits) }
func (s *bitsSet) Fill(b Bitset)   { copy(b, s.bits) }
func (s *bitsSet) SizeBytes() int  { return sliceSetBytes + 8*len(s.bits) }
func (s *bitsSet) Repr() string    { return "bits" }

// leafSetCosts returns the byte cost of each candidate container for a set
// of cnt members forming nr runs over universe n, in the deterministic
// preference order compressChoice applies.
func leafSetCosts(n, cnt, nr int) (run, sparse, comp, bits int) {
	words := (n + 63) / 64
	return sliceSetBytes + 8*nr,
		sliceSetBytes + 4*cnt,
		sliceSetBytes + 4*(n-cnt),
		sliceSetBytes + 8*words
}

// containerChoice names the cheapest container for (n, cnt, nr). Ties
// resolve deterministically: sparse, then run, then comp, then bits.
func containerChoice(n, cnt, nr int) string {
	if cnt == 0 {
		return "empty"
	}
	if cnt == n {
		return "full"
	}
	costRun, costSparse, costComp, costBits := leafSetCosts(n, cnt, nr)
	best, repr := costSparse, "sparse"
	if costRun < best {
		best, repr = costRun, "run"
	}
	if costComp < best {
		best, repr = costComp, "comp"
	}
	if costBits < best {
		repr = "bits"
	}
	return repr
}

// newSingletonLeafSet returns the one-member set {i}.
func newSingletonLeafSet(n, i int) LeafSet {
	return &sparseSet{n: n, ids: []int32{int32(i)}}
}

// leafSetFromRange returns the contiguous set [lo, hi), the shape topology
// builders hand over directly when their wiring makes descendant leaf sets
// contiguous (Clos.LeafRange).
func leafSetFromRange(n, lo, hi int) LeafSet {
	switch {
	case lo >= hi:
		return emptySet{n: n}
	case lo == 0 && hi == n:
		return fullSet{n: n}
	case hi-lo == 1:
		return newSingletonLeafSet(n, lo)
	}
	return &runSet{n: n, count: hi - lo, runs: []uint64{packRun(lo, hi)}}
}

// compressBitset converts the first (n+63)/64 words of b into the
// cheapest container. b is not retained (the bits container copies).
// Bits at positions >= n must be clear.
func compressBitset(b Bitset, n int) LeafSet {
	words := (n + 63) / 64
	b = b[:words]
	cnt, nr := 0, 0
	carry := uint64(0)
	for _, w := range b {
		cnt += bits.OnesCount64(w)
		nr += bits.OnesCount64(w &^ (w<<1 | carry))
		carry = w >> 63
	}
	switch containerChoice(n, cnt, nr) {
	case "empty":
		return emptySet{n: n}
	case "full":
		return fullSet{n: n}
	case "run":
		runs := make([]uint64, 0, nr)
		for i := 0; i < n; {
			lo := b.NextSet(i)
			if lo < 0 || lo >= n {
				break
			}
			hi := b.NextClear(lo)
			if hi > n {
				hi = n
			}
			runs = append(runs, packRun(lo, hi))
			i = hi
		}
		return &runSet{n: n, count: cnt, runs: runs}
	case "sparse":
		ids := make([]int32, 0, cnt)
		for i := b.NextSet(0); i >= 0 && i < n; i = b.NextSet(i + 1) {
			ids = append(ids, int32(i))
		}
		return &sparseSet{n: n, ids: ids}
	case "comp":
		holes := make([]int32, 0, n-cnt)
		for i := b.NextClear(0); i < n; i = b.NextClear(i + 1) {
			holes = append(holes, int32(i))
		}
		return &compSet{n: n, holes: holes}
	}
	bits := make(Bitset, words)
	copy(bits, b)
	return &bitsSet{n: n, count: cnt, bits: bits}
}

// leafSetFromRuns builds the cheapest container from sorted disjoint
// non-adjacent runs covering cnt members. The runs slice is copied when
// retained (callers reuse their buffers).
func leafSetFromRuns(n int, runs []uint64, cnt int) LeafSet {
	switch containerChoice(n, cnt, len(runs)) {
	case "empty":
		return emptySet{n: n}
	case "full":
		return fullSet{n: n}
	case "run":
		return &runSet{n: n, count: cnt, runs: append([]uint64(nil), runs...)}
	case "sparse":
		ids := make([]int32, 0, cnt)
		for _, r := range runs {
			for i := runLo(r); i < runHi(r); i++ {
				ids = append(ids, int32(i))
			}
		}
		return &sparseSet{n: n, ids: ids}
	case "comp":
		holes := make([]int32, 0, n-cnt)
		lo := 0
		for _, r := range runs {
			for i := lo; i < runLo(r); i++ {
				holes = append(holes, int32(i))
			}
			lo = runHi(r)
		}
		for i := lo; i < n; i++ {
			holes = append(holes, int32(i))
		}
		return &compSet{n: n, holes: holes}
	}
	bits := NewBitset(n)
	for _, r := range runs {
		bits.SetRange(runLo(r), runHi(r))
	}
	return &bitsSet{n: n, count: cnt, bits: bits}
}

// leafSetBuilder accumulates unions of LeafSets and emits the compressed
// result. Interval-shaped inputs (empty, full, run, sparse) merge as
// sorted runs without touching a bitset; the first high-entropy input
// (bits, comp) or a run-count overflow falls back to one reusable scratch
// bitset, so peak transient memory is a single N1-bit buffer regardless of
// how many sets are built.
type leafSetBuilder struct {
	n, words int
	runCap   int
	runs     []uint64
	scratch  Bitset
	onBits   bool // union so far lives in scratch, not runs
	sawFull  bool
	dirty    bool // scratch contains stale bits from a previous union
}

func newLeafSetBuilder(n int) *leafSetBuilder {
	words := (n + 63) / 64
	return &leafSetBuilder{
		n:      n,
		words:  words,
		runCap: 2*words + 64,
		runs:   make([]uint64, 0, 64),
	}
}

// reset starts a new union.
func (b *leafSetBuilder) reset() {
	b.runs = b.runs[:0]
	b.onBits = false
	b.sawFull = false
}

// toBits migrates the collected runs into the scratch bitset.
func (b *leafSetBuilder) toBits() {
	if b.scratch == nil {
		b.scratch = NewBitset(b.n)
	} else if b.dirty {
		b.scratch.Clear()
	}
	for _, r := range b.runs {
		b.scratch.SetRange(runLo(r), runHi(r))
	}
	b.runs = b.runs[:0]
	b.onBits = true
	b.dirty = true
}

// add ors one set into the union being built. nil sets are ignored.
func (b *leafSetBuilder) add(s LeafSet) {
	if s == nil || b.sawFull {
		return
	}
	if s.Full() {
		b.sawFull = true
		return
	}
	if b.onBits {
		s.OrInto(b.scratch)
		return
	}
	switch v := s.(type) {
	case emptySet:
	case *runSet:
		if len(b.runs)+len(v.runs) > b.runCap {
			b.toBits()
			s.OrInto(b.scratch)
			return
		}
		b.runs = append(b.runs, v.runs...)
	case *sparseSet:
		if len(b.runs)+len(v.ids) > b.runCap {
			b.toBits()
			s.OrInto(b.scratch)
			return
		}
		for _, id := range v.ids {
			b.runs = append(b.runs, packRun(int(id), int(id)+1))
		}
	default: // bits, comp: go through the scratch bitset
		b.toBits()
		s.OrInto(b.scratch)
	}
}

// finish compresses the accumulated union into its cheapest container and
// leaves the builder ready for reset.
func (b *leafSetBuilder) finish() LeafSet {
	if b.sawFull {
		return fullSet{n: b.n}
	}
	if b.onBits {
		return compressBitset(b.scratch, b.n)
	}
	if len(b.runs) == 0 {
		return emptySet{n: b.n}
	}
	slices.Sort(b.runs)
	// Merge overlapping or adjacent runs in place.
	out := b.runs[:1]
	for _, r := range b.runs[1:] {
		last := out[len(out)-1]
		if runLo(r) <= runHi(last) {
			if runHi(r) > runHi(last) {
				out[len(out)-1] = packRun(runLo(last), runHi(r))
			}
			continue
		}
		out = append(out, r)
	}
	cnt := 0
	for _, r := range out {
		cnt += runHi(r) - runLo(r)
	}
	return leafSetFromRuns(b.n, out, cnt)
}

// coverReprOrder is the fixed rendering order of CoverRepr.
var coverReprOrder = [...]string{"run", "sparse", "comp", "bits", "full", "empty"}

// reprIndex maps a container name to its coverReprOrder slot.
func reprIndex(repr string) int {
	for i, r := range coverReprOrder {
		if r == repr {
			return i
		}
	}
	return -1
}

// formatCoverRepr renders per-container counts ("run:12 sparse:3 full:9"),
// omitting zero counts, in the fixed coverReprOrder.
func formatCoverRepr(counts [len(coverReprOrder)]int) string {
	out := ""
	for i, name := range coverReprOrder {
		if counts[i] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", name, counts[i])
	}
	if out == "" {
		return "none"
	}
	return out
}
