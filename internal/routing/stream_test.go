package routing_test

import (
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// TestRebuildStreamMatchesBatch pins the streamed routing construction to
// the batch one: for a structured topology (XGFT, interval fast path) and a
// random one (RFC, builder-union path), the state built level by level
// during wiring must be indistinguishable from routing.New on the finished
// graph — same byte accounting, same container mix, same MinTurn answer for
// every leaf pair.
func TestRebuildStreamMatchesBatch(t *testing.T) {
	cases := []struct {
		name    string
		streamy func(sink topology.LevelSink) *topology.Clos
	}{
		{"xgft", func(sink topology.LevelSink) *topology.Clos {
			c, err := topology.NewXGFTStream([]int{3, 4, 5}, []int{1, 2, 2}, 16, sink)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"cft", func(sink topology.LevelSink) *topology.Clos {
			c, err := topology.NewCFTStream(8, 3, sink)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"oft", func(sink topology.LevelSink) *topology.Clos {
			c, err := topology.NewOFTStream(2, 3, sink)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"rfc", func(sink topology.LevelSink) *topology.Clos {
			c, err := core.GenerateStream(core.Params{Radix: 8, Leaves: 32, Levels: 3}, rng.New(7), sink)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := routing.NewRebuildStream()
			c := tc.streamy(rs)
			streamed := rs.Finish(c)

			// Same wiring, batch construction. The builders are
			// deterministic (the RFC case re-draws from an equal-seed rng),
			// so both routers see identical graphs.
			batch := routing.New(tc.streamy(nil))

			if got, want := streamed.CoverBytes(), batch.CoverBytes(); got != want {
				t.Fatalf("CoverBytes: streamed %d, batch %d", got, want)
			}
			if got, want := streamed.CoverRepr(), batch.CoverRepr(); got != want {
				t.Fatalf("CoverRepr: streamed %q, batch %q", got, want)
			}
			if got, want := streamed.Routable(), batch.Routable(); got != want {
				t.Fatalf("Routable: streamed %v, batch %v", got, want)
			}
			n1 := c.LevelSize(1)
			for src := 0; src < n1; src++ {
				for dst := 0; dst < n1; dst++ {
					if got, want := streamed.MinTurn(src, dst), batch.MinTurn(src, dst); got != want {
						t.Fatalf("MinTurn(%d,%d): streamed %d, batch %d", src, dst, got, want)
					}
				}
			}
		})
	}
}

// TestGenerateRoutableStreams checks the streamed GenerateRoutable path is
// byte-equivalent to generating the same attempts and routing them in
// batch: same topology, same attempt count, same routing answers.
func TestGenerateRoutableStreams(t *testing.T) {
	p := core.Params{Radix: 8, Leaves: 64, Levels: 3}
	c, ud, attempts, err := core.GenerateRoutable(p, 20, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(11)
	var want *topology.Clos
	for a := 1; a <= attempts; a++ {
		var err error
		want, err = core.Generate(p, r2)
		if err != nil {
			t.Fatal(err)
		}
	}
	gotLinks, wantLinks := c.Links(), want.Links()
	if len(gotLinks) != len(wantLinks) {
		t.Fatalf("link counts differ: %d vs %d", len(gotLinks), len(wantLinks))
	}
	for i := range wantLinks {
		if gotLinks[i] != wantLinks[i] {
			t.Fatalf("link %d: streamed %v, replay %v", i, gotLinks[i], wantLinks[i])
		}
	}
	if !ud.Routable() {
		t.Fatal("GenerateRoutable returned an unroutable router")
	}
	if got, want := ud.CoverBytes(), routing.New(want).CoverBytes(); got != want {
		t.Fatalf("CoverBytes: streamed %d, batch %d", got, want)
	}
}
