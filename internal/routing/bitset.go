// Package routing implements the deadlock-free up/down equal-cost
// multi-path routing of folded Clos networks (§4.1 of the paper) for every
// indirect topology in this repository, including its behaviour under link
// faults, plus the k-shortest-path routing used by the RRN baseline.
package routing

import "math/bits"

// Bitset is a fixed-capacity bitset used for descendant and cover sets over
// leaf switches.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits, all zero.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Or merges other into b (b |= other).
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// Clear zeroes the bitset.
func (b Bitset) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Full reports whether bits 0..n-1 are all set.
func (b Bitset) Full(n int) bool {
	whole := n >> 6
	for i := 0; i < whole; i++ {
		if b[i] != ^uint64(0) {
			return false
		}
	}
	if rem := uint(n) & 63; rem != 0 {
		mask := (uint64(1) << rem) - 1
		if b[whole]&mask != mask {
			return false
		}
	}
	return true
}

// Intersects reports whether b and other share any set bit.
func (b Bitset) Intersects(other Bitset) bool {
	for i, w := range other {
		if b[i]&w != 0 {
			return true
		}
	}
	return false
}
