// Package routing implements the deadlock-free up/down equal-cost
// multi-path routing of folded Clos networks (§4.1 of the paper) for every
// indirect topology in this repository, including its behaviour under link
// faults, plus the k-shortest-path routing used by the RRN baseline.
package routing

import "math/bits"

// Bitset is a fixed-capacity bitset used for descendant and cover sets over
// leaf switches.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits, all zero.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// ClearBit clears bit i.
func (b Bitset) ClearBit(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// SetRange sets bits [lo, hi).
func (b Bitset) SetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		b[loW] |= loMask & hiMask
		return
	}
	b[loW] |= loMask
	for i := loW + 1; i < hiW; i++ {
		b[i] = ^uint64(0)
	}
	b[hiW] |= hiMask
}

// NextSet returns the position of the first set bit at or after i, or -1
// when no set bit remains.
func (b Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	if wi >= len(b) {
		return -1
	}
	if w := b[wi] &^ ((1 << (uint(i) & 63)) - 1); w != 0 {
		return wi<<6 + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b); wi++ {
		if w := b[wi]; w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextClear returns the position of the first clear bit at or after i,
// which is len(b)*64 when every remaining bit is set. Callers bounding the
// bitset to n logical bits must clamp the result to n themselves.
func (b Bitset) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i >> 6
	if wi >= len(b) {
		return len(b) << 6
	}
	if w := ^b[wi] &^ ((1 << (uint(i) & 63)) - 1); w != 0 {
		return wi<<6 + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b); wi++ {
		if w := ^b[wi]; w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return len(b) << 6
}

// Or merges other into b (b |= other).
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// Clear zeroes the bitset.
func (b Bitset) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Full reports whether bits 0..n-1 are all set.
func (b Bitset) Full(n int) bool {
	whole := n >> 6
	for i := 0; i < whole; i++ {
		if b[i] != ^uint64(0) {
			return false
		}
	}
	if rem := uint(n) & 63; rem != 0 {
		mask := (uint64(1) << rem) - 1
		if b[whole]&mask != mask {
			return false
		}
	}
	return true
}

// Intersects reports whether b and other share any set bit.
func (b Bitset) Intersects(other Bitset) bool {
	for i, w := range other {
		if b[i]&w != 0 {
			return true
		}
	}
	return false
}

// Rank returns the number of set bits in [0, i), i.e. the index bit i would
// occupy in a packed array of the set positions. It is O(i/64); use a
// RankDir for O(1) queries over a frozen bitset.
func (b Bitset) Rank(i int) int {
	wi := i >> 6
	n := 0
	for _, w := range b[:wi] {
		n += bits.OnesCount64(w)
	}
	if rem := uint(i) & 63; rem != 0 {
		n += bits.OnesCount64(b[wi] & ((1 << rem) - 1))
	}
	return n
}

// Select returns the position of the k-th set bit (k = 0 for the first), or
// -1 when fewer than k+1 bits are set. It is the inverse of Rank:
// Rank(Select(k)) == k for any valid k.
func (b Bitset) Select(k int) int {
	for wi, w := range b {
		c := bits.OnesCount64(w)
		if k < c {
			// The k-th set bit lives in this word; peel set bits until it
			// is the lowest one.
			for ; k > 0; k-- {
				w &= w - 1
			}
			return wi<<6 + bits.TrailingZeros64(w)
		}
		k -= c
	}
	return -1
}

// rankBlockWords is the RankDir superblock width in words (512 bits): one
// cumulative counter per block keeps the directory at 1/16 of the bitset
// while bounding a rank query to at most 8 in-block popcounts.
const rankBlockWords = 8

// RankDir is a rank directory over a frozen Bitset: dir[i] is the number of
// set bits strictly before word block i. Together with the bitset it answers
// Rank in O(1) word operations; the bitset must not change afterwards.
type RankDir []int32

// NewRankDir builds the rank directory of b.
func NewRankDir(b Bitset) RankDir {
	dir := make(RankDir, (len(b)+rankBlockWords-1)/rankBlockWords+1)
	n := int32(0)
	for wi, w := range b {
		if wi%rankBlockWords == 0 {
			dir[wi/rankBlockWords] = n
		}
		n += int32(bits.OnesCount64(w))
	}
	dir[len(dir)-1] = n
	return dir
}

// Rank returns the number of set bits of b in [0, i). b must be the bitset
// the directory was built from.
func (d RankDir) Rank(b Bitset, i int) int {
	wi := i >> 6
	blk := wi / rankBlockWords
	n := int(d[blk])
	for _, w := range b[blk*rankBlockWords : wi] {
		n += bits.OnesCount64(w)
	}
	if rem := uint(i) & 63; rem != 0 {
		n += bits.OnesCount64(b[wi] & ((1 << rem) - 1))
	}
	return n
}

// Count returns the total number of set bits recorded by the directory.
func (d RankDir) Count() int { return int(d[len(d)-1]) }

// SizeBytes returns the directory's memory footprint.
func (d RankDir) SizeBytes() int { return 4 * len(d) }
