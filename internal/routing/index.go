package routing

// TurnIndex is a precomputed up/down route index: for every ordered pair of
// leaf switches it answers the minimal number of up hops (the "turn level")
// of a shortest up/down path, the quantity MinTurn computes from the cover
// sets. Implementations are immutable after construction (the succinct tier
// additionally promotes hot rows behind atomics), so concurrent readers need
// no synchronisation — the shape the serving layer (internal/service) wants
// for cached topologies answering many path queries.
//
// Two tiers exist:
//
//   - MinTurnIndex: a dense N1×N1 byte table, O(1) lookups, N1² bytes;
//   - SuccinctTurnIndex: per-leaf exception-coded rows over the majority
//     turn value with rank/select lookup, O(levels) word operations per
//     lookup and typically a few percent of the dense footprint.
//
// NewTurnIndex picks the tier from a byte budget for the dense table.
type TurnIndex interface {
	// MinTurn returns the minimal up-hop count of a shortest up/down path
	// from leaf index src to leaf index dst, or -1 when no up/down path
	// exists. Equivalent to (*UpDown).MinTurn.
	MinTurn(src, dst int) int
	// Leaves returns the number of leaf switches the index covers.
	Leaves() int
	// SizeBytes returns the index's own memory footprint (the succinct
	// tier's grows as hot rows are promoted, up to its promotion budget).
	SizeBytes() int
	// Routable reports whether every ordered leaf pair has an up/down
	// path. Precomputed at build time; O(1).
	Routable() bool
	// UnreachablePairs returns the number of ordered leaf pairs (src !=
	// dst) without an up/down path. Precomputed at build time; O(1).
	UnreachablePairs() int64
	// Tier names the implementation: "dense" or "succinct".
	Tier() string
}

// NewTurnIndex builds the turn index for u, choosing the tier by memory: the
// dense byte table when it fits in denseBudget bytes (denseBudget <= 0 means
// always dense), the succinct representation otherwise. The succinct tier's
// hot-row promotion budget is also denseBudget, so the index never grows
// past roughly twice the budget.
func NewTurnIndex(u *UpDown, denseBudget int) TurnIndex {
	n := u.n1
	// The succinct tier packs turn values into nibbles, so topologies deeper
	// than 15 levels (none the paper considers) stay on the dense table.
	if denseBudget <= 0 || n*n <= denseBudget || len(u.cover)-1 > maxSuccinctTurn {
		return NewMinTurnIndex(u)
	}
	return NewSuccinctTurnIndex(u, int64(denseBudget))
}

// MinTurnIndex is the dense TurnIndex tier: one byte per ordered leaf pair
// (N1² bytes), O(1) lookups. turnUnreachable marks pairs with no up/down
// path (possible under faults or sub-threshold radices).
type MinTurnIndex struct {
	n           int
	turns       []uint8
	unreachable int64 // ordered pairs without a path, counted at build
}

// turnUnreachable is the sentinel for leaf pairs without an up/down path.
// Level counts are tiny (the paper's networks have l <= 5), so uint8 is
// ample.
const turnUnreachable = 0xff

// NewMinTurnIndex precomputes the minimal turn level for every ordered leaf
// pair of u's topology from its cover sets. Building is O(l · N1^2 / 64)
// word operations; lookups afterwards are O(1).
func NewMinTurnIndex(u *UpDown) *MinTurnIndex {
	n := u.n1
	ix := &MinTurnIndex{n: n, turns: make([]uint8, n*n)}
	for i := range ix.turns {
		ix.turns[i] = turnUnreachable
	}
	for src := 0; src < n; src++ {
		row := ix.turns[src*n : (src+1)*n]
		row[src] = 0
		filled := 1
		s := u.c.SwitchID(1, src)
		for r := 1; r < len(u.cover) && r < turnUnreachable && filled < n; r++ {
			cov := u.cover[r][s]
			if cov == nil {
				continue
			}
			rr := uint8(r)
			cov.Runs(func(lo, hi int) bool {
				for dst := lo; dst < hi; dst++ {
					if row[dst] == turnUnreachable {
						row[dst] = rr
						filled++
					}
				}
				return true
			})
		}
		ix.unreachable += int64(n - filled)
	}
	return ix
}

// MinTurn returns the minimal number of up hops of a shortest up/down path
// from leaf index src to leaf index dst, or -1 when no up/down path exists.
// It is the O(1) equivalent of (*UpDown).MinTurn.
func (ix *MinTurnIndex) MinTurn(src, dst int) int {
	t := ix.turns[src*ix.n+dst]
	if t == turnUnreachable {
		return -1
	}
	return int(t)
}

// Leaves returns the number of leaf switches the index covers.
func (ix *MinTurnIndex) Leaves() int { return ix.n }

// SizeBytes returns the memory footprint of the turn table.
func (ix *MinTurnIndex) SizeBytes() int { return len(ix.turns) }

// Routable reports whether every ordered leaf pair has an up/down path,
// equivalent to (*UpDown).Routable but precomputed at build time.
func (ix *MinTurnIndex) Routable() bool { return ix.unreachable == 0 }

// UnreachablePairs returns the number of ordered leaf pairs without an
// up/down path, counted once during construction.
func (ix *MinTurnIndex) UnreachablePairs() int64 { return ix.unreachable }

// Tier names the dense implementation.
func (ix *MinTurnIndex) Tier() string { return "dense" }
