package routing

import "math/bits"

// MinTurnIndex is a precomputed up/down route index: for every ordered pair
// of leaf switches it stores the minimal number of up hops (the "turn
// level") of a shortest up/down path, i.e. the answer MinTurn computes from
// the cover sets on every call. The index is built once per topology and is
// immutable afterwards, so concurrent readers need no synchronisation — the
// shape the serving layer (internal/service) wants for cached topologies
// answering many path queries.
//
// Memory is one byte per ordered leaf pair (N1^2 bytes); turnUnreachable
// marks pairs with no up/down path (possible under faults or sub-threshold
// radices).
type MinTurnIndex struct {
	n     int
	turns []uint8
}

// turnUnreachable is the sentinel for leaf pairs without an up/down path.
// Level counts are tiny (the paper's networks have l <= 5), so uint8 is
// ample.
const turnUnreachable = 0xff

// NewMinTurnIndex precomputes the minimal turn level for every ordered leaf
// pair of u's topology from its cover sets. Building is O(l · N1^2 / 64)
// word operations; lookups afterwards are O(1).
func NewMinTurnIndex(u *UpDown) *MinTurnIndex {
	n := u.n1
	ix := &MinTurnIndex{n: n, turns: make([]uint8, n*n)}
	for i := range ix.turns {
		ix.turns[i] = turnUnreachable
	}
	for src := 0; src < n; src++ {
		row := ix.turns[src*n : (src+1)*n]
		row[src] = 0
		s := u.c.SwitchID(1, src)
		for r := 1; r < len(u.cover) && r < turnUnreachable; r++ {
			cov := u.cover[r][s]
			if cov == nil {
				continue
			}
			for wi, word := range cov {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &= word - 1
					dst := wi<<6 + b
					if dst < n && row[dst] == turnUnreachable {
						row[dst] = uint8(r)
					}
				}
			}
		}
	}
	return ix
}

// MinTurn returns the minimal number of up hops of a shortest up/down path
// from leaf index src to leaf index dst, or -1 when no up/down path exists.
// It is the O(1) equivalent of (*UpDown).MinTurn.
func (ix *MinTurnIndex) MinTurn(src, dst int) int {
	t := ix.turns[src*ix.n+dst]
	if t == turnUnreachable {
		return -1
	}
	return int(t)
}

// Leaves returns the number of leaf switches the index covers.
func (ix *MinTurnIndex) Leaves() int { return ix.n }

// SizeBytes returns the memory footprint of the turn table.
func (ix *MinTurnIndex) SizeBytes() int { return len(ix.turns) }

// Routable reports whether every ordered leaf pair has an up/down path,
// equivalent to (*UpDown).Routable but read off the precomputed table.
func (ix *MinTurnIndex) Routable() bool {
	for _, t := range ix.turns {
		if t == turnUnreachable {
			return false
		}
	}
	return true
}
