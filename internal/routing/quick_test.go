package routing

import (
	"testing"
	"testing/quick"

	"rfclos/internal/graph"
	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// buildRandomRFC constructs a small radix-regular random folded Clos
// directly (avoiding an import cycle with internal/core) by wiring random
// bipartite graphs between levels, mirroring core.Generate.
func buildRandomRFC(radix, levels, leaves int, r *rng.Rand) (*topology.Clos, error) {
	sizes := make([]int, levels)
	for i := 0; i < levels-1; i++ {
		sizes[i] = leaves
	}
	sizes[levels-1] = leaves / 2
	half := radix / 2
	c, err := topology.NewEmpty(sizes, half, radix)
	if err != nil {
		return nil, err
	}
	for i := 0; i < levels-1; i++ {
		dB := sizes[i] * half / sizes[i+1]
		bp, err := graph.RandomBipartite(sizes[i], half, sizes[i+1], dB, r)
		if err != nil {
			return nil, err
		}
		for a, ns := range bp.AdjA {
			for _, b := range ns {
				c.AddLink(c.SwitchID(i+1, a), c.SwitchID(i+2, int(b)))
			}
		}
	}
	return c, nil
}

func TestMinTurnSymmetry(t *testing.T) {
	// A common ancestor at r levels up is common to both leaves, so the
	// shortest up/down distance must be symmetric.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c, err := buildRandomRFC(8, 3, 16, r)
		if err != nil {
			return false
		}
		ud := New(c)
		for trial := 0; trial < 40; trial++ {
			a, b := r.Intn(16), r.Intn(16)
			if ud.MinTurn(a, b) != ud.MinTurn(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPathsValidOnRandomRFCs(t *testing.T) {
	f := func(seed uint64, radixRaw, leavesRaw uint8) bool {
		radix := (int(radixRaw%4) + 2) * 2 // 4..10
		leaves := (int(leavesRaw%10) + radix) * 2
		r := rng.New(seed)
		c, err := buildRandomRFC(radix, 3, leaves, r)
		if err != nil {
			return true // infeasible parameter combo; skip
		}
		ud := New(c)
		for trial := 0; trial < 25; trial++ {
			a, b := r.Intn(leaves), r.Intn(leaves)
			turn := ud.MinTurn(a, b)
			if turn < 0 {
				continue // below threshold; legitimately unroutable
			}
			p := ud.Path(a, b, r)
			if p == nil || len(p)-1 != 2*turn {
				return false
			}
			// Validate hops: up then down along real links.
			for i := 0; i < len(p)-1; i++ {
				up := i < turn
				var next []int32
				if up {
					next = c.Up(p[i])
				} else {
					next = c.Down(p[i])
				}
				ok := false
				for _, v := range next {
					if v == p[i+1] {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCoverMonotoneUnion(t *testing.T) {
	// The union of cover_r over r must contain desc (r = 0 is reaching
	// leaves below yourself via the turn at your own level... for leaves,
	// cover_0 is themselves). Check the weaker invariant the routability
	// predicate relies on: if MinTurn(a,b) = r then b ∈ cover_r(a) and a
	// path exists, and if Routable() holds every pair has some finite
	// MinTurn.
	r := rng.New(99)
	c, err := buildRandomRFC(12, 3, 24, r)
	if err != nil {
		t.Fatal(err)
	}
	ud := New(c)
	if !ud.Routable() {
		t.Skip("generated instance not routable (probabilistic); skipping")
	}
	for a := 0; a < 24; a++ {
		for b := 0; b < 24; b++ {
			if a == b {
				continue
			}
			if ud.MinTurn(a, b) < 0 {
				t.Fatalf("Routable() but MinTurn(%d,%d) = -1", a, b)
			}
		}
	}
}
