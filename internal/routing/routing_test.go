package routing

import (
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	if b.Count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Set/Get wrong")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	other := NewBitset(130)
	other.Set(5)
	b.Or(other)
	if !b.Get(5) || b.Count() != 4 {
		t.Error("Or wrong")
	}
	if b.Full(130) {
		t.Error("Full on sparse set")
	}
	full := NewBitset(70)
	for i := 0; i < 70; i++ {
		full.Set(i)
	}
	if !full.Full(70) {
		t.Error("Full(70) should hold")
	}
	if !b.Intersects(other) {
		t.Error("Intersects missed shared bit")
	}
	empty := NewBitset(130)
	if b.Intersects(empty) {
		t.Error("Intersects with empty set")
	}
	b.Clear()
	if b.Count() != 0 {
		t.Error("Clear failed")
	}
}

func TestBitsetFullWordBoundary(t *testing.T) {
	b := NewBitset(64)
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	if !b.Full(64) {
		t.Error("Full(64) at exact word boundary")
	}
}

func TestUpDownCFT(t *testing.T) {
	c, err := topology.NewCFT(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ud := New(c)
	if !ud.Routable() {
		t.Fatal("CFT must be up/down routable")
	}
	// In the radix-4 3-level CFT, leaves 2i and 2i+1 share their level-2
	// parents (same pod, turn at level 2 = 1 up hop); other pairs turn at
	// the roots (2 up hops).
	if got := ud.MinTurn(0, 1); got != 1 {
		t.Errorf("MinTurn(0,1) = %d, want 1", got)
	}
	if got := ud.MinTurn(0, 2); got != 2 {
		t.Errorf("MinTurn(0,2) = %d, want 2", got)
	}
	if got := ud.MinTurn(3, 3); got != 0 {
		t.Errorf("MinTurn(3,3) = %d, want 0", got)
	}
}

// checkPath validates that p is a correct up/down path from leaf src to
// leaf dst: strictly up for the first half, strictly down for the second,
// every hop a real link.
func checkPath(t *testing.T, c *topology.Clos, p []int32, src, dst int) {
	t.Helper()
	if p == nil {
		t.Fatal("nil path")
	}
	if p[0] != c.SwitchID(1, src) || p[len(p)-1] != c.SwitchID(1, dst) {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if len(p)%2 == 0 {
		t.Fatalf("up/down path must have odd switch count, got %d", len(p))
	}
	turn := len(p) / 2
	for i := 0; i < len(p)-1; i++ {
		la, lb := c.LevelOf(p[i]), c.LevelOf(p[i+1])
		if i < turn && lb != la+1 {
			t.Fatalf("hop %d should go up: %d(L%d) -> %d(L%d)", i, p[i], la, p[i+1], lb)
		}
		if i >= turn && lb != la-1 {
			t.Fatalf("hop %d should go down: %d(L%d) -> %d(L%d)", i, p[i], la, p[i+1], lb)
		}
		linked := false
		next := c.Up(p[i])
		if i >= turn {
			next = c.Down(p[i])
		}
		for _, v := range next {
			if v == p[i+1] {
				linked = true
				break
			}
		}
		if !linked {
			t.Fatalf("hop %d not a link: %d -> %d", i, p[i], p[i+1])
		}
	}
}

func TestPathValidOnCFTAndOFT(t *testing.T) {
	r := rng.New(61)
	cft, _ := topology.NewCFT(8, 3)
	oft, _ := topology.NewOFT(3, 2)
	for _, c := range []*topology.Clos{cft, oft} {
		ud := New(c)
		n1 := c.LevelSize(1)
		for trial := 0; trial < 100; trial++ {
			src, dst := r.Intn(n1), r.Intn(n1)
			if src == dst {
				continue
			}
			p := ud.Path(src, dst, r)
			checkPath(t, c, p, src, dst)
			if len(p)-1 != 2*ud.MinTurn(src, dst) {
				t.Fatalf("path length %d != 2*MinTurn %d", len(p)-1, 2*ud.MinTurn(src, dst))
			}
		}
	}
}

func TestPathECMPSpread(t *testing.T) {
	// Between distant leaves of an 8-ary CFT there are many shortest
	// up/down paths; random selection should hit several distinct ones.
	c, _ := topology.NewCFT(8, 3)
	ud := New(c)
	r := rng.New(62)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		p := ud.Path(0, c.LevelSize(1)-1, r)
		key := ""
		for _, v := range p {
			key += string(rune(v)) + ","
		}
		seen[key] = true
	}
	if len(seen) < 4 {
		t.Errorf("ECMP explored only %d distinct paths", len(seen))
	}
}

func TestUpDownUnderFaults(t *testing.T) {
	c, err := topology.NewCFT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ud := New(c)
	if !ud.Routable() {
		t.Fatal("fresh CFT should be routable")
	}
	// Cut every up-link of leaf 0: it can no longer reach anyone.
	leaf0 := c.SwitchID(1, 0)
	for _, up := range append([]int32(nil), c.Up(leaf0)...) {
		c.RemoveLink(leaf0, up)
	}
	ud.Rebuild()
	if ud.Routable() {
		t.Error("network should not be routable after isolating a leaf")
	}
	n1 := c.LevelSize(1)
	if got := ud.UnroutablePairs(0); got != n1-1 {
		t.Errorf("UnroutablePairs = %d, want %d", got, n1-1)
	}
	if got := ud.UnroutablePairs(3); got != 3 {
		t.Errorf("UnroutablePairs with limit = %d, want 3", got)
	}
	if ud.MinTurn(0, 1) != -1 {
		t.Error("MinTurn should be -1 for isolated leaf")
	}
	if ud.Path(0, 1, rng.New(1)) != nil {
		t.Error("Path should be nil for isolated leaf")
	}
}

func TestAverageShortestUpDown(t *testing.T) {
	c, _ := topology.NewCFT(4, 3)
	ud := New(c)
	r := rng.New(63)
	mean, routable := ud.AverageShortestUpDown(2000, r)
	if routable != 1.0 {
		t.Errorf("routable fraction = %v, want 1", routable)
	}
	// 8 leaves: 1 same-pod partner (distance 2), 6 remote leaves (distance 4):
	// expected mean = (1*2 + 6*4)/7 ≈ 3.714.
	if mean < 3.4 || mean > 4.0 {
		t.Errorf("mean up/down distance = %v, want ≈3.71", mean)
	}
}

func TestNextDownUniform(t *testing.T) {
	// In a 2-level CFT every root reaches every leaf through exactly one
	// child, so NextDown must be deterministic.
	c, _ := topology.NewCFT(4, 2)
	ud := New(c)
	r := rng.New(64)
	root := c.SwitchID(2, 0)
	for dst := 0; dst < c.LevelSize(1); dst++ {
		first := ud.NextDown(root, dst, r)
		if first < 0 {
			t.Fatalf("root cannot reach leaf %d", dst)
		}
		for i := 0; i < 5; i++ {
			if got := ud.NextDown(root, dst, r); got != first {
				t.Fatalf("NextDown not unique in CFT: %d vs %d", got, first)
			}
		}
	}
}
