package routing

import (
	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// UpDown is the up/down ECMP routing state of a folded Clos network. It
// implements exactly the paper's "shortest injection, up/down random
// request" scheme: a packet for leaf d first computes the minimal number of
// up hops r such that an ancestor of d is reachable (shortest up/down path,
// length 2r), then at each up hop picks uniformly among parents that still
// lead to such an ancestor, turns, and descends picking uniformly among
// children below which d lies. Routes consist of up hops followed by down
// hops only, so the channel dependency graph is acyclic and the routing is
// deadlock-free without virtual-channel ordering (§4.1).
//
// The state is two families of leaf sets:
//
//	desc(s)   = leaves below switch s (cover_0)
//	cover_r(s) = ∪_{p parent of s} cover_{r-1}(p)
//
// cover_r(s) is the set of leaves reachable from s by exactly r up hops
// followed by downs. All sets are rebuilt from the (possibly faulted)
// topology by Rebuild. Sets are stored as compressed LeafSet containers
// (leafset.go) rather than plain N1-bit bitsets, so the state's memory is
// proportional to the compressed size of the covers — orders of magnitude
// below N1²/8 on structured or routable networks — which is what lets the
// serving layer hold paper-scale (200K+ leaf) fabrics in memory.
type UpDown struct {
	c *topology.Clos
	// cover[r][s]; cover[0] is desc. cover[r][s] is nil for switches whose
	// level exceeds l-r (they cannot take r up hops).
	cover [][]LeafSet
	n1    int
}

// New builds routing state for c. Call Rebuild after mutating the topology
// (e.g. removing links).
func New(c *topology.Clos) *UpDown {
	u := &UpDown{c: c, n1: c.LevelSize(1)}
	u.Rebuild()
	return u
}

// Clos returns the topology this router routes on.
func (u *UpDown) Clos() *topology.Clos { return u.c }

// CoverBytes returns the memory footprint of the routing state's descendant
// and cover containers (the dominant cost; container payloads, container
// struct headers and the cover-table interface slots included, the
// underlying topology excluded). It is the single source of truth for
// cover-memory accounting: SizeBytes (the cache-budget charge) and
// TableStats.CoverBytes (the stats report) both delegate here.
func (u *UpDown) CoverBytes() int {
	n := 0
	for _, level := range u.cover {
		n += 16 * len(level) // interface slots
		for _, s := range level {
			if s != nil {
				n += s.SizeBytes()
			}
		}
	}
	return n
}

// SizeBytes returns the memory the serving layer charges against its cache
// budget for this router; it equals CoverBytes.
func (u *UpDown) SizeBytes() int { return u.CoverBytes() }

// CoverRepr summarises which containers the cover sets landed in, as
// "repr:count" pairs in a fixed order with zero counts omitted (e.g.
// "run:520 sparse:64 full:8"). Diagnostic only; surfaced by the service's
// topology summaries and cmd/rfcgen.
func (u *UpDown) CoverRepr() string {
	var counts [len(coverReprOrder)]int
	for _, level := range u.cover {
		for _, s := range level {
			if s == nil {
				continue
			}
			if i := reprIndex(s.Repr()); i >= 0 {
				counts[i]++
			}
		}
	}
	return formatCoverRepr(counts)
}

// Rebuild recomputes every descendant and cover set from the topology. The
// build is level-streaming: sets are produced one switch at a time through
// a single reusable scratch bitset and compressed immediately, so peak
// transient memory is one N1-bit buffer plus the compressed result —
// never the old O(N1²/8) of materialising every set as a plain bitset.
// Interval-shaped inputs union as sorted run lists without touching the
// scratch at all, and when the topology declares contiguous descendant
// ranges (Clos.LeafRange, set by the XGFT family) desc sets are built
// directly from the declared interval.
//
// Rebuild is the batch entry point over a finished topology; it shares its
// per-level machinery with RebuildStream (stream.go), which computes the
// same state incrementally as builders seal CSR levels.
func (u *UpDown) Rebuild() {
	rs := NewRebuildStream()
	fin := rs.Finish(u.c)
	u.cover = fin.cover
	u.n1 = fin.n1
}

// finishCovers builds cover_r for r = 1..l-1 over the completed up-wiring,
// assuming u.cover[0] (desc) is already in place; cover_r(s) exists only
// for switches at levels 1..l-r.
func (u *UpDown) finishCovers(bld *leafSetBuilder) {
	c := u.c
	l := c.Levels()
	total := c.NumSwitches()
	for r := 1; r < l; r++ {
		cov := make([]LeafSet, total)
		prev := u.cover[r-1]
		for lev := 1; lev <= l-r; lev++ {
			for i := 0; i < c.LevelSize(lev); i++ {
				s := c.SwitchID(lev, i)
				bld.reset()
				for _, p := range c.Up(s) {
					if prev[p] != nil {
						bld.add(prev[p])
					}
				}
				cov[s] = bld.finish()
			}
		}
		u.cover[r] = cov
	}
}

// MinTurn returns the minimal number of up hops r >= 0 such that an up/down
// path of length 2r exists from leaf index src to leaf index dst, or -1 when
// no up/down path exists (possible only under faults or sub-threshold
// radices). src == dst returns 0.
func (u *UpDown) MinTurn(src, dst int) int {
	if src == dst {
		return 0
	}
	s := u.c.SwitchID(1, src)
	for r := 1; r < len(u.cover); r++ {
		if cov := u.cover[r][s]; cov != nil && cov.Get(dst) {
			return r
		}
	}
	return -1
}

// NextUp picks uniformly at random a parent of s that still reaches leaf dst
// within rem-1 further up hops (rem >= 1 is the remaining up-hop budget).
// It returns -1 when no such parent exists, which cannot happen when rem was
// derived from MinTurn on an unchanged topology.
func (u *UpDown) NextUp(s int32, rem int, dst int, r *rng.Rand) int32 {
	prev := u.cover[rem-1]
	// Reservoir-sample uniformly among qualifying parents without
	// allocating.
	chosen := int32(-1)
	count := 0
	for _, p := range u.c.Up(s) {
		if cov := prev[p]; cov != nil && cov.Get(dst) {
			count++
			if count == 1 || r.Intn(count) == 0 {
				chosen = p
			}
		}
	}
	return chosen
}

// NextDown picks uniformly at random a child of s whose descendants include
// leaf dst, or -1 when none exists.
func (u *UpDown) NextDown(s int32, dst int, r *rng.Rand) int32 {
	desc := u.cover[0]
	chosen := int32(-1)
	count := 0
	for _, ch := range u.c.Down(s) {
		if desc[ch].Get(dst) {
			count++
			if count == 1 || r.Intn(count) == 0 {
				chosen = ch
			}
		}
	}
	return chosen
}

// NextUpPort is NextUp but returns the index into Clos.Up(s) of the chosen
// parent instead of its switch id, for callers (the simulator) that key
// channels by port index. Returns -1 when no parent qualifies.
func (u *UpDown) NextUpPort(s int32, rem int, dst int, r *rng.Rand) int {
	prev := u.cover[rem-1]
	chosen := -1
	count := 0
	for i, p := range u.c.Up(s) {
		if cov := prev[p]; cov != nil && cov.Get(dst) {
			count++
			if count == 1 || r.Intn(count) == 0 {
				chosen = i
			}
		}
	}
	return chosen
}

// NextUpPortHash is the deterministic counterpart of NextUpPort: among the
// qualifying parents it picks the one indexed by key modulo the candidate
// count. Real fat-tree deployments often use such D-mod-K style hashing of
// the flow identifier instead of per-packet randomisation; the simulator
// exposes both policies.
func (u *UpDown) NextUpPortHash(s int32, rem int, dst int, key uint32) int {
	prev := u.cover[rem-1]
	count := 0
	for _, p := range u.c.Up(s) {
		if cov := prev[p]; cov != nil && cov.Get(dst) {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	want := int(key % uint32(count))
	idx := 0
	for i, p := range u.c.Up(s) {
		if cov := prev[p]; cov != nil && cov.Get(dst) {
			if idx == want {
				return i
			}
			idx++
		}
	}
	return -1
}

// NextDownPortHash deterministically picks among the children leading to
// dst, keyed like NextUpPortHash.
func (u *UpDown) NextDownPortHash(s int32, dst int, key uint32) int {
	desc := u.cover[0]
	count := 0
	for _, ch := range u.c.Down(s) {
		if desc[ch].Get(dst) {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	want := int(key % uint32(count))
	idx := 0
	for i, ch := range u.c.Down(s) {
		if desc[ch].Get(dst) {
			if idx == want {
				return i
			}
			idx++
		}
	}
	return -1
}

// NextDownPort is NextDown returning the index into Clos.Down(s), or -1.
func (u *UpDown) NextDownPort(s int32, dst int, r *rng.Rand) int {
	desc := u.cover[0]
	chosen := -1
	count := 0
	for i, ch := range u.c.Down(s) {
		if desc[ch].Get(dst) {
			count++
			if count == 1 || r.Intn(count) == 0 {
				chosen = i
			}
		}
	}
	return chosen
}

// Descendants returns the descendant leaf set of switch s (immutable).
func (u *UpDown) Descendants(s int32) LeafSet { return u.cover[0][s] }

// Routable reports whether every ordered pair of distinct leaves has an
// up/down path, i.e. whether the network still has the common-ancestor
// property of Theorem 4.2.
func (u *UpDown) Routable() bool {
	return u.UnroutablePairs(1) == 0
}

// UnroutablePairs counts unordered leaf pairs with no up/down path, giving
// up early once limit pairs are found (limit <= 0 means count all). Leaves
// with any full cover set skip the per-pair scan entirely, so on healthy
// routable networks — where the top-turn cover is full for every leaf —
// this is O(N1) regardless of scale.
func (u *UpDown) UnroutablePairs(limit int) int {
	acc := NewBitset(u.n1)
	found := 0
	for i := 0; i < u.n1; i++ {
		s := u.c.SwitchID(1, i)
		fullCover := false
		for r := 1; r < len(u.cover); r++ {
			if cov := u.cover[r][s]; cov != nil && cov.Full() {
				fullCover = true
				break
			}
		}
		if fullCover {
			continue
		}
		acc.Clear()
		for r := 1; r < len(u.cover); r++ {
			if cov := u.cover[r][s]; cov != nil {
				cov.OrInto(acc)
			}
		}
		acc.Set(i)
		if acc.Full(u.n1) {
			continue
		}
		// Count missing leaves with index > i so each pair counts once.
		for j := i + 1; j < u.n1; j++ {
			if !acc.Get(j) {
				found++
				if limit > 0 && found >= limit {
					return found
				}
			}
		}
	}
	return found
}

// Path materialises one random shortest up/down path between leaf indices
// src and dst as a switch-id sequence, or nil when unroutable. Used by tests
// and the CLI; the simulator routes hop by hop instead.
func (u *UpDown) Path(src, dst int, r *rng.Rand) []int32 {
	return u.PathAt(src, dst, u.MinTurn(src, dst), r)
}

// PathAt is Path with the turn level supplied by the caller — typically read
// from a precomputed MinTurnIndex instead of recomputed from the cover sets.
// turn must be MinTurn(src, dst); a negative turn returns nil.
func (u *UpDown) PathAt(src, dst, turn int, r *rng.Rand) []int32 {
	if r == nil {
		r = rng.New(1)
	}
	if turn < 0 {
		return nil
	}
	cur := u.c.SwitchID(1, src)
	path := []int32{cur}
	for rem := turn; rem > 0; rem-- {
		cur = u.NextUp(cur, rem, dst, r)
		if cur < 0 {
			return nil
		}
		path = append(path, cur)
	}
	for u.c.LevelOf(cur) > 1 {
		cur = u.NextDown(cur, dst, r)
		if cur < 0 {
			return nil
		}
		path = append(path, cur)
	}
	return path
}

// AverageShortestUpDown computes the mean up/down shortest path length (in
// switch hops, 2*MinTurn) over sampled leaf pairs. Pairs without a path are
// skipped; the second return value is the routable fraction of sampled
// pairs.
func (u *UpDown) AverageShortestUpDown(samples int, r *rng.Rand) (mean float64, routable float64) {
	if r == nil {
		r = rng.New(1)
	}
	total, ok, attempted := 0.0, 0, 0
	for i := 0; i < samples; i++ {
		a, b := r.Intn(u.n1), r.Intn(u.n1)
		if a == b {
			continue
		}
		attempted++
		t := u.MinTurn(a, b)
		if t < 0 {
			continue
		}
		total += float64(2 * t)
		ok++
	}
	if ok == 0 {
		return 0, 0
	}
	return total / float64(ok), float64(ok) / float64(attempted)
}
