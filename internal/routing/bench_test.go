package routing

import (
	"testing"

	"rfclos/internal/topology"
)

// benchUpDown builds the 4096-leaf XGFT both index tiers are benchmarked
// on (the same shape TestSuccinctSizeBytes measures).
func benchUpDown(b *testing.B) *UpDown {
	b.Helper()
	c, err := topology.NewXGFT([]int{4, 64, 64}, []int{1, 4, 2}, 72)
	if err != nil {
		b.Fatal(err)
	}
	return New(c)
}

// BenchmarkCoverBuild measures UpDown.Rebuild — the streaming compressed
// cover construction — on the 4096-leaf XGFT, and reports the compressed
// cover footprint next to what plain N1-bit bitsets would cost.
func BenchmarkCoverBuild(b *testing.B) {
	u := benchUpDown(b)
	for i := 0; i < b.N; i++ {
		u.Rebuild()
	}
	c := u.Clos()
	l := c.Levels()
	words := (c.LevelSize(1) + 63) / 64
	sets := 0
	for r := 0; r < l; r++ {
		for lev := 1; lev <= l-r; lev++ {
			sets += c.LevelSize(lev)
		}
	}
	b.ReportMetric(float64(u.CoverBytes()), "cover-bytes")
	b.ReportMetric(float64(sets*words*8), "plain-bytes")
}

// BenchmarkTurnIndexBuild measures index construction for both tiers and
// reports the encoding density as bytes per ordered leaf pair (the dense
// tier is 1.0 by definition).
func BenchmarkTurnIndexBuild(b *testing.B) {
	u := benchUpDown(b)
	n := float64(u.n1) * float64(u.n1)
	b.Run("dense", func(b *testing.B) {
		var ix TurnIndex
		for i := 0; i < b.N; i++ {
			ix = NewMinTurnIndex(u)
		}
		b.ReportMetric(float64(ix.SizeBytes())/n, "bytes/pair")
	})
	b.Run("succinct", func(b *testing.B) {
		var ix TurnIndex
		for i := 0; i < b.N; i++ {
			ix = NewSuccinctTurnIndex(u, 0)
		}
		b.ReportMetric(float64(ix.SizeBytes())/n, "bytes/pair")
	})
}

// BenchmarkTurnIndexLookup measures MinTurn on both tiers (and the succinct
// tier with promoted hot rows), sweeping src/dst so sparse, bitset, and
// majority row paths are all exercised.
func BenchmarkTurnIndexLookup(b *testing.B) {
	u := benchUpDown(b)
	n := u.n1
	run := func(ix TurnIndex) func(*testing.B) {
		return func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				src := (i * 31) % n
				dst := (i*17 + i/n) % n
				sink += ix.MinTurn(src, dst)
			}
			if sink == -1<<62 {
				b.Fatal("impossible")
			}
		}
	}
	b.Run("dense", run(NewMinTurnIndex(u)))
	b.Run("succinct", run(NewSuccinctTurnIndex(u, 0)))
	hot := NewSuccinctTurnIndex(u, int64(n)*int64(n))
	for src := 0; src < n; src++ {
		for i := 0; i <= promoteAfter; i++ {
			hot.MinTurn(src, (src+1)%n)
		}
	}
	b.Run("promoted", run(hot))
}
