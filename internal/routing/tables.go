package routing

import "fmt"

// This file materialises concrete forwarding tables from the up/down
// routing state, in the form a switch implementation would hold them:
// for every (switch, destination leaf) pair, the set of output ports that
// lie on some shortest up/down path. The paper's §1/§6 simplicity argument
// for folded Clos networks — trivial deadlock-free ECMP without
// k-shortest-path recomputation — becomes quantitative here: table sizes
// and build times can be compared against the k-shortest-path state an RRN
// needs.

// PortClass identifies the port class of a forwarding entry.
type PortClass uint8

const (
	// PortUp entries forward toward the turn.
	PortUp PortClass = iota
	// PortDown entries descend toward the destination.
	PortDown
	// PortEject entries deliver to a local terminal.
	PortEject
)

// TableEntry is the forwarding row of one switch for one destination leaf.
type TableEntry struct {
	Class PortClass
	// Ports are indices into Clos.Up(s) (PortUp) or Clos.Down(s)
	// (PortDown); empty for PortEject.
	Ports []uint8
}

// ForwardingTable holds the complete ECMP forwarding state of one switch.
type ForwardingTable struct {
	Switch  int32
	Entries []TableEntry // indexed by destination leaf
}

// BuildTables materialises the forwarding tables of every switch. For a
// switch s and destination leaf d, the entry lists the down ports whose
// subtree contains d when d is below s, and otherwise the up ports that lie
// on a shortest up/down path from s's level toward a common ancestor with
// d. Leaf switches' own-leaf entries are PortEject.
//
// Memory note: the bitset ("cover") representation UpDown routes from is
// much smaller than these explicit tables; BuildTables exists for export
// to real switch configurations and for the table-size comparisons in the
// analysis package.
func (u *UpDown) BuildTables() []ForwardingTable {
	c := u.c
	n1 := u.n1
	tables := make([]ForwardingTable, c.NumSwitches())
	for s := int32(0); s < int32(c.NumSwitches()); s++ {
		lev := c.LevelOf(s)
		ft := ForwardingTable{Switch: s, Entries: make([]TableEntry, n1)}
		desc := u.cover[0]
		for d := 0; d < n1; d++ {
			if lev == 1 && int(s) == d {
				ft.Entries[d] = TableEntry{Class: PortEject}
				continue
			}
			if desc[s] != nil && desc[s].Get(d) && lev > 1 {
				// Descend: every child whose subtree holds d.
				var ports []uint8
				for i, ch := range c.Down(s) {
					if desc[ch].Get(d) {
						ports = append(ports, uint8(i))
					}
				}
				ft.Entries[d] = TableEntry{Class: PortDown, Ports: ports}
				continue
			}
			// Ascend: up ports on a shortest up/down path. The remaining
			// up-hop budget from this switch is the smallest r with
			// d ∈ cover_r(s).
			rem := -1
			for r := 1; r < len(u.cover); r++ {
				if cov := u.cover[r][s]; cov != nil && cov.Get(d) {
					rem = r
					break
				}
			}
			if rem < 0 {
				ft.Entries[d] = TableEntry{Class: PortUp} // unreachable: empty ports
				continue
			}
			var ports []uint8
			prev := u.cover[rem-1]
			for i, p := range c.Up(s) {
				if cov := prev[p]; cov != nil && cov.Get(d) {
					ports = append(ports, uint8(i))
				}
			}
			ft.Entries[d] = TableEntry{Class: PortUp, Ports: ports}
		}
		tables[s] = ft
	}
	return tables
}

// TableStats summarises forwarding state size.
type TableStats struct {
	Switches      int
	Destinations  int
	TotalEntries  int
	TotalPortRefs int // sum of ECMP fan-out across all entries
	// ApproxBytes estimates memory for the explicit tables at one byte
	// per port reference plus two bytes per entry header.
	ApproxBytes int
	// CoverBytes is the memory of the compressed cover representation
	// UpDown actually routes from, as reported by UpDown.CoverBytes (the
	// same number the serving layer charges against cache budgets).
	CoverBytes int
	// UnreachableEntries counts (switch, destination) pairs with no
	// shortest up/down port — zero on a routable network.
	UnreachableEntries int
}

// Stats computes sizes over a set of tables built by BuildTables.
func (u *UpDown) Stats(tables []ForwardingTable) TableStats {
	st := TableStats{Switches: len(tables), Destinations: u.n1}
	for _, ft := range tables {
		for _, e := range ft.Entries {
			st.TotalEntries++
			st.TotalPortRefs += len(e.Ports)
			if e.Class != PortEject && len(e.Ports) == 0 {
				st.UnreachableEntries++
			}
		}
	}
	st.ApproxBytes = st.TotalPortRefs + 2*st.TotalEntries
	st.CoverBytes = u.CoverBytes()
	return st
}

// String renders the stats compactly.
func (s TableStats) String() string {
	return fmt.Sprintf("tables: %d switches × %d dests, %d entries, %d port refs, ~%d B explicit vs %d B covers, %d unreachable",
		s.Switches, s.Destinations, s.TotalEntries, s.TotalPortRefs, s.ApproxBytes, s.CoverBytes, s.UnreachableEntries)
}
