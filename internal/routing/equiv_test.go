package routing

import (
	"slices"
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// This file pins the LeafSet refactor against the pre-compression
// representation: plainCovers/plainMinTurn/plainPathAt below are the old
// plain-bitset routing core kept verbatim as a reference, and the property
// tests assert the hybrid-container router answers identically — covers,
// MinTurn, paths (byte-identical rng consumption) and index builds — on
// CFT, XGFT and random folded Clos topologies, healthy and faulted.

// plainCovers recomputes every descendant and cover set the way the old
// UpDown.Rebuild did: one N1-bit bitset per set, whole levels materialised.
func plainCovers(c *topology.Clos) [][]Bitset {
	l := c.Levels()
	n1 := c.LevelSize(1)
	total := c.NumSwitches()
	cover := make([][]Bitset, l)

	desc := make([]Bitset, total)
	for i := 0; i < n1; i++ {
		s := c.SwitchID(1, i)
		desc[s] = NewBitset(n1)
		desc[s].Set(i)
	}
	for lev := 2; lev <= l; lev++ {
		for i := 0; i < c.LevelSize(lev); i++ {
			s := c.SwitchID(lev, i)
			d := NewBitset(n1)
			for _, ch := range c.Down(s) {
				d.Or(desc[ch])
			}
			desc[s] = d
		}
	}
	cover[0] = desc

	for r := 1; r < l; r++ {
		cov := make([]Bitset, total)
		prev := cover[r-1]
		for lev := 1; lev <= l-r; lev++ {
			for i := 0; i < c.LevelSize(lev); i++ {
				s := c.SwitchID(lev, i)
				b := NewBitset(n1)
				for _, p := range c.Up(s) {
					if prev[p] != nil {
						b.Or(prev[p])
					}
				}
				cov[s] = b
			}
		}
		cover[r] = cov
	}
	return cover
}

// plainMinTurn is the old cover-set MinTurn over plain bitsets.
func plainMinTurn(c *topology.Clos, cover [][]Bitset, src, dst int) int {
	if src == dst {
		return 0
	}
	s := c.SwitchID(1, src)
	for r := 1; r < len(cover); r++ {
		if cov := cover[r][s]; cov != nil && cov.Get(dst) {
			return r
		}
	}
	return -1
}

// plainPathAt is the old PathAt: reservoir-sampled NextUp/NextDown over
// plain bitsets, consuming the rng in exactly the old order.
func plainPathAt(c *topology.Clos, cover [][]Bitset, src, dst, turn int, r *rng.Rand) []int32 {
	if turn < 0 {
		return nil
	}
	cur := c.SwitchID(1, src)
	path := []int32{cur}
	for rem := turn; rem > 0; rem-- {
		prev := cover[rem-1]
		chosen := int32(-1)
		count := 0
		for _, p := range c.Up(cur) {
			if cov := prev[p]; cov != nil && cov.Get(dst) {
				count++
				if count == 1 || r.Intn(count) == 0 {
					chosen = p
				}
			}
		}
		if chosen < 0 {
			return nil
		}
		cur = chosen
		path = append(path, cur)
	}
	for c.LevelOf(cur) > 1 {
		desc := cover[0]
		chosen := int32(-1)
		count := 0
		for _, ch := range c.Down(cur) {
			if desc[ch].Get(dst) {
				count++
				if count == 1 || r.Intn(count) == 0 {
					chosen = ch
				}
			}
		}
		if chosen < 0 {
			return nil
		}
		cur = chosen
		path = append(path, cur)
	}
	return path
}

// equivTopologies returns the named topology set the equivalence properties
// run over: structured CFT/XGFT (leaf-range fast path) and random folded
// Clos instances (builder union path).
func equivTopologies(t *testing.T) []struct {
	name string
	c    *topology.Clos
} {
	t.Helper()
	cft, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	xg, err := topology.NewXGFT([]int{4, 8, 6}, []int{1, 3, 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	xg2, err := topology.NewXGFT([]int{2, 6, 4, 3}, []int{1, 2, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		c    *topology.Clos
	}{
		{"cft-8-3", cft},
		{"xgft-4.8.6", xg},
		{"xgft-4lev", xg2},
		{"rfc-48", randomFoldedClos(t, []int{48, 48, 24}, 8, 5)},
		{"rfc-irregular", randomFoldedClos(t, []int{36, 24, 12}, 4, 9)},
	}
}

// faultClos clones c and removes a deterministic sample of inter-switch
// links (every stride-th up-link, capped), returning the faulted clone.
// Removing links also exercises the leaf-range invalidation path.
func faultClos(t *testing.T, c *topology.Clos, stride, max int) *topology.Clos {
	t.Helper()
	f := c.Clone()
	removed := 0
	k := 0
	total := f.NumSwitches()
	for s := int32(0); int(s) < total && removed < max; s++ {
		ups := slices.Clone(f.Up(s))
		for _, p := range ups {
			if k++; k%stride == 0 {
				if f.RemoveLink(s, p) {
					removed++
					if removed >= max {
						break
					}
				}
			}
		}
	}
	if removed == 0 {
		t.Fatalf("faultClos removed no links (stride %d)", stride)
	}
	return f
}

// checkEquivalence asserts the hybrid router's state and answers match the
// plain-bitset reference on c: cover structure, membership, MinTurn for all
// pairs, descendant sets, unroutable-pair counts, byte-identical PathAt
// streams, and the dense + succinct index builds.
func checkEquivalence(t *testing.T, c *topology.Clos) {
	t.Helper()
	u := New(c)
	ref := plainCovers(c)
	n1 := c.LevelSize(1)

	// Cover structure and membership: same nil pattern, same bits.
	if len(u.cover) != len(ref) {
		t.Fatalf("cover levels = %d, want %d", len(u.cover), len(ref))
	}
	buf := NewBitset(n1)
	for r := range ref {
		for s := range ref[r] {
			hyb := u.cover[r][s]
			if (hyb == nil) != (ref[r][s] == nil) {
				t.Fatalf("cover[%d][%d] nil-ness: hybrid %v, plain %v", r, s, hyb == nil, ref[r][s] == nil)
			}
			if hyb == nil {
				continue
			}
			if got, want := hyb.Count(), ref[r][s].Count(); got != want {
				t.Fatalf("cover[%d][%d] Count = %d, want %d (repr %s)", r, s, got, want, hyb.Repr())
			}
			hyb.Fill(buf)
			for w := range buf {
				if buf[w] != ref[r][s][w] {
					t.Fatalf("cover[%d][%d] word %d differs (repr %s)", r, s, w, hyb.Repr())
				}
			}
		}
	}

	// Descendant accessor agrees with plain desc.
	for i := 0; i < c.LevelSize(2); i++ {
		s := c.SwitchID(2, i)
		d := u.Descendants(s)
		for leaf := 0; leaf < n1; leaf++ {
			if d.Get(leaf) != ref[0][s].Get(leaf) {
				t.Fatalf("Descendants(%d).Get(%d) diverges", s, leaf)
			}
		}
	}

	// MinTurn equality on all ordered pairs, and the dense index built from
	// the hybrid covers matches the plain reference too.
	dense := NewMinTurnIndex(u)
	for src := 0; src < n1; src++ {
		for dst := 0; dst < n1; dst++ {
			want := plainMinTurn(c, ref, src, dst)
			if got := u.MinTurn(src, dst); got != want {
				t.Fatalf("MinTurn(%d, %d) = %d, plain says %d", src, dst, got, want)
			}
			if got := dense.MinTurn(src, dst); got != want {
				t.Fatalf("dense index MinTurn(%d, %d) = %d, plain says %d", src, dst, got, want)
			}
		}
	}

	// The succinct index build consumes covers via Fill; checkAgreement
	// compares it against the dense index and UnroutablePairs.
	checkAgreement(t, u, NewSuccinctTurnIndex(u, 0))

	// Paths must be byte-identical: the hybrid Get answers match, so the
	// reservoir sampling consumes the rng identically.
	r1 := rng.New(77)
	r2 := rng.New(77)
	for src := 0; src < n1; src++ {
		for _, dst := range []int{0, src, n1 - 1 - src%n1, (src * 7) % n1} {
			turn := plainMinTurn(c, ref, src, dst)
			got := u.PathAt(src, dst, turn, r1)
			want := plainPathAt(c, ref, src, dst, turn, r2)
			if !slices.Equal(got, want) {
				t.Fatalf("PathAt(%d, %d, %d) = %v, plain says %v", src, dst, turn, got, want)
			}
		}
	}

	// UnroutablePairs agrees with a plain-cover recount.
	plainUnroutable := 0
	acc := NewBitset(n1)
	for i := 0; i < n1; i++ {
		s := c.SwitchID(1, i)
		acc.Clear()
		for r := 1; r < len(ref); r++ {
			if cov := ref[r][s]; cov != nil {
				acc.Or(cov)
			}
		}
		acc.Set(i)
		for j := i + 1; j < n1; j++ {
			if !acc.Get(j) {
				plainUnroutable++
			}
		}
	}
	if got := u.UnroutablePairs(0); got != plainUnroutable {
		t.Fatalf("UnroutablePairs = %d, plain says %d", got, plainUnroutable)
	}

	// Memory accounting is unified: SizeBytes is CoverBytes is the stats
	// figure, and the repr histogram accounts for every set.
	if u.SizeBytes() != u.CoverBytes() {
		t.Fatalf("SizeBytes %d != CoverBytes %d", u.SizeBytes(), u.CoverBytes())
	}
	if repr := u.CoverRepr(); repr == "" || repr == "none" {
		t.Fatalf("CoverRepr = %q for a built router", repr)
	}
}

// TestHybridEquivalenceHealthy runs the equivalence properties on healthy
// topologies (leaf-range fast path for CFT/XGFT, builder unions for RFC).
func TestHybridEquivalenceHealthy(t *testing.T) {
	for _, tc := range equivTopologies(t) {
		t.Run(tc.name, func(t *testing.T) { checkEquivalence(t, tc.c) })
	}
}

// TestHybridEquivalenceFaulted re-runs the properties after removing links:
// covers lose the interval shape, leaf-range hints are invalidated, and
// some pairs may become unroutable — the hybrid must track the plain
// reference through all of it.
func TestHybridEquivalenceFaulted(t *testing.T) {
	for _, tc := range equivTopologies(t) {
		t.Run(tc.name+"/light", func(t *testing.T) {
			checkEquivalence(t, faultClos(t, tc.c, 7, 6))
		})
		t.Run(tc.name+"/heavy", func(t *testing.T) {
			checkEquivalence(t, faultClos(t, tc.c, 2, 1<<30))
		})
	}
}

// TestHybridEquivalenceIncrementalRebuild mutates one topology repeatedly —
// fault, rebuild, fault again, rebuild — asserting the router re-derives
// the reference state each time (Rebuild starts from the topology, not from
// stale compressed state).
func TestHybridEquivalenceIncrementalRebuild(t *testing.T) {
	c := randomFoldedClos(t, []int{24, 24, 12}, 6, 3)
	u := New(c)
	k := 0
	for round := 0; round < 4; round++ {
		// Remove a couple of links in place, then rebuild the same router.
		removed := 0
		total := c.NumSwitches()
		for s := int32(0); int(s) < total && removed < 2; s++ {
			ups := slices.Clone(c.Up(s))
			for _, p := range ups {
				if k++; k%3 == 0 && c.RemoveLink(s, p) {
					removed++
					break
				}
			}
		}
		u.Rebuild()
		ref := plainCovers(c)
		n1 := c.LevelSize(1)
		for src := 0; src < n1; src++ {
			for dst := 0; dst < n1; dst++ {
				if got, want := u.MinTurn(src, dst), plainMinTurn(c, ref, src, dst); got != want {
					t.Fatalf("round %d: MinTurn(%d, %d) = %d, plain says %d", round, src, dst, got, want)
				}
			}
		}
	}
}
