package routing

import (
	"math/bits"
	"slices"
	"sync/atomic"
)

// SuccinctTurnIndex is the compressed TurnIndex tier for leaf counts where
// the dense N1² byte table does not fit in memory. Instead of one byte per
// ordered pair it stores, per source leaf, only the *exceptions* to the
// row's majority turn value:
//
//   - the majority class of the row (the turn value — or "unreachable" —
//     shared by most destinations) costs nothing per destination;
//   - exception destinations are kept either as a sorted id list (sparse
//     rows) or as a bitset with a rank directory (dense rows), with their
//     turn values packed as 4-bit codes indexed by Rank(dst).
//
// In the folded Clos topologies this repository builds, almost every pair
// turns at one of the top levels, so exception rows are tiny: a few percent
// of the dense footprint at 64K+ leaves. A lookup is O(levels) word
// operations (one membership probe plus an O(1) rank); rows that answer
// many queries are promoted on demand to dense N1-byte rows (O(1) lookups)
// under a fixed promotion budget, so the hot working set behaves like the
// dense tier without its memory.
//
// The index is immutable after construction apart from promotion, which
// publishes rows through atomics — concurrent readers need no locking.
type SuccinctTurnIndex struct {
	n1          int
	levels      int
	rows        []succinctRow
	baseBytes   int
	unreachable int64

	// Hot-row promotion: hits counts lookups per source row; once a row
	// passes promoteAfter lookups it is materialised as a dense N1-byte
	// row (published via hot) while promotedBytes stays within
	// promoteBudget. promoteBudget <= 0 disables promotion.
	//rfclint:guardedby atomic
	hot []atomic.Pointer[[]uint8]
	//rfclint:guardedby atomic
	hits []atomic.Uint32
	//rfclint:guardedby atomic
	promotedBytes atomic.Int64
	promoteBudget int64
}

// succinctRow is one source leaf's exception encoding. Exactly one of
// sparse (sorted exception ids, binary-searched) and bits (exception
// membership bitset + rank directory) is non-nil unless the row has no
// exceptions; codes packs one 4-bit turn code per exception in ascending
// destination order.
type succinctRow struct {
	majority uint8 // nibble code most destinations share
	sparse   []int32
	bits     Bitset
	rank     RankDir
	codes    []uint8
}

// nibbleUnreachable is the 4-bit code for "no up/down path"; turn values
// 1..maxSuccinctTurn code as themselves (turn 0 is only ever the diagonal,
// answered before row decoding).
const (
	nibbleUnreachable = 0xf
	maxSuccinctTurn   = nibbleUnreachable - 1
	promoteAfter      = 64
	// rowOverheadBytes approximates the per-row bookkeeping the struct and
	// promotion arrays cost (slice headers + atomics), charged by SizeBytes
	// so the reported footprint is honest.
	rowOverheadBytes = 104 + 12
)

// NewSuccinctTurnIndex builds the succinct index from u's cover sets in
// O(levels · N1²/64) word operations plus O(exceptions) id writes. The
// topology must have at most 15 levels (turn codes are nibbles); NewTurnIndex
// guarantees this by selecting the dense tier otherwise. promoteBudget
// bounds the bytes hot-row promotion may add (<= 0 disables promotion).
func NewSuccinctTurnIndex(u *UpDown, promoteBudget int64) *SuccinctTurnIndex {
	n := u.n1
	l := len(u.cover)
	if l-1 > maxSuccinctTurn {
		panic("routing: succinct turn index needs <= 15 levels")
	}
	ix := &SuccinctTurnIndex{
		n1:            n,
		levels:        l,
		rows:          make([]succinctRow, n),
		hot:           make([]atomic.Pointer[[]uint8], n),
		hits:          make([]atomic.Uint32, n),
		promoteBudget: promoteBudget,
	}

	words := (n + 63) / 64
	seen := NewBitset(n)
	exc := NewBitset(n)
	// covBuf materialises one compressed cover set at a time as plain words
	// for the delta computation below — the only transient dense state the
	// build needs, reused across all (src, r) pairs.
	covBuf := NewBitset(n)
	deltas := make([]Bitset, l)
	for r := 1; r < l; r++ {
		deltas[r] = NewBitset(n)
	}
	counts := make([]int, l)
	codeOf := make([]uint8, n)
	dirBytes := NewRankDir(exc).SizeBytes()

	for src := 0; src < n; src++ {
		s := u.c.SwitchID(1, src)
		seen.Clear()
		seen.Set(src)
		reachable := 0
		for r := 1; r < l; r++ {
			counts[r] = 0
			cov := u.cover[r][s]
			if cov == nil {
				continue
			}
			cov.Fill(covBuf)
			delta := deltas[r]
			for i, w := range covBuf {
				d := w &^ seen[i]
				delta[i] = d
				seen[i] |= d
				counts[r] += bits.OnesCount64(d)
			}
			reachable += counts[r]
		}
		unreach := n - 1 - reachable
		ix.unreachable += int64(unreach)

		// Majority class: the code shared by most destinations encodes for
		// free. Ties resolve to "unreachable" first, then the lowest turn,
		// deterministically.
		maj, majCount := uint8(nibbleUnreachable), unreach
		for r := 1; r < l; r++ {
			if counts[r] > majCount {
				maj, majCount = uint8(r), counts[r]
			}
		}

		// Exception membership + per-destination codes.
		exc.Clear()
		for r := 1; r < l; r++ {
			if uint8(r) == maj || counts[r] == 0 {
				continue
			}
			for i, d := range deltas[r] {
				exc[i] |= d
				for d != 0 {
					b := bits.TrailingZeros64(d)
					d &= d - 1
					codeOf[i<<6+b] = uint8(r)
				}
			}
		}
		if maj != nibbleUnreachable && unreach > 0 {
			for i := 0; i < words; i++ {
				d := ^seen[i]
				if i == words-1 {
					if rem := uint(n) & 63; rem != 0 {
						d &= (1 << rem) - 1
					}
				}
				exc[i] |= d
				for d != 0 {
					b := bits.TrailingZeros64(d)
					d &= d - 1
					codeOf[i<<6+b] = nibbleUnreachable
				}
			}
		}

		exCount := n - 1 - majCount
		row := &ix.rows[src]
		row.majority = maj
		if exCount > 0 {
			row.codes = make([]uint8, (exCount+1)/2)
			sparse := 4*exCount <= words*8+dirBytes
			if sparse {
				row.sparse = make([]int32, 0, exCount)
			} else {
				row.bits = make(Bitset, words)
				copy(row.bits, exc)
				row.rank = NewRankDir(row.bits)
			}
			k := 0
			for i, w := range exc {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					dst := i<<6 + b
					if sparse {
						row.sparse = append(row.sparse, int32(dst))
					}
					row.codes[k/2] |= codeOf[dst] << (uint(k%2) * 4)
					k++
				}
			}
		}
		ix.baseBytes += rowOverheadBytes + len(row.sparse)*4 + len(row.bits)*8 + row.rank.SizeBytes() + len(row.codes)
	}
	return ix
}

// nibbleAt extracts the i-th 4-bit code.
func nibbleAt(codes []uint8, i int) uint8 {
	return codes[i/2] >> (uint(i%2) * 4) & 0xf
}

// MinTurn returns the minimal up-hop count from leaf src to leaf dst, or -1
// when no up/down path exists. Safe for concurrent use.
func (ix *SuccinctTurnIndex) MinTurn(src, dst int) int {
	if src == dst {
		return 0
	}
	if p := ix.hot[src].Load(); p != nil {
		t := (*p)[dst]
		if t == turnUnreachable {
			return -1
		}
		return int(t)
	}
	row := &ix.rows[src]
	code := row.majority
	if row.bits != nil {
		if row.bits.Get(dst) {
			code = nibbleAt(row.codes, row.rank.Rank(row.bits, dst))
		}
	} else if len(row.sparse) > 0 {
		if i, ok := slices.BinarySearch(row.sparse, int32(dst)); ok {
			code = nibbleAt(row.codes, i)
		}
	}
	if ix.promoteBudget > 0 && ix.hits[src].Add(1) == promoteAfter {
		ix.promote(src)
	}
	if code == nibbleUnreachable {
		return -1
	}
	return int(code)
}

// promote materialises src's row as a dense N1-byte array for O(1) lookups,
// charged against the promotion budget. Each row promotes at most once (the
// hit counter crosses promoteAfter exactly once).
func (ix *SuccinctTurnIndex) promote(src int) {
	if ix.promotedBytes.Add(int64(ix.n1)) > ix.promoteBudget {
		ix.promotedBytes.Add(-int64(ix.n1))
		return
	}
	row := &ix.rows[src]
	dense := make([]uint8, ix.n1)
	base := row.majority
	if base == nibbleUnreachable {
		base = turnUnreachable
	}
	for i := range dense {
		dense[i] = base
	}
	dense[src] = 0
	apply := func(dst int, k int) {
		c := nibbleAt(row.codes, k)
		if c == nibbleUnreachable {
			dense[dst] = turnUnreachable
		} else {
			dense[dst] = c
		}
	}
	if row.bits != nil {
		k := 0
		for i, w := range row.bits {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				apply(i<<6+b, k)
				k++
			}
		}
	} else {
		for k, dst := range row.sparse {
			apply(int(dst), k)
		}
	}
	ix.hot[src].Store(&dense)
}

// Leaves returns the number of leaf switches the index covers.
func (ix *SuccinctTurnIndex) Leaves() int { return ix.n1 }

// SizeBytes returns the index's current memory footprint: the exception
// encoding plus any promoted hot rows.
func (ix *SuccinctTurnIndex) SizeBytes() int {
	return ix.baseBytes + int(ix.promotedBytes.Load())
}

// PromotedRows returns how many rows have been promoted to dense form.
func (ix *SuccinctTurnIndex) PromotedRows() int {
	return int(ix.promotedBytes.Load()) / ix.n1
}

// Routable reports whether every ordered leaf pair has an up/down path.
func (ix *SuccinctTurnIndex) Routable() bool { return ix.unreachable == 0 }

// UnreachablePairs returns the number of ordered leaf pairs without an
// up/down path, counted once during construction.
func (ix *SuccinctTurnIndex) UnreachablePairs() int64 { return ix.unreachable }

// Tier names the succinct implementation.
func (ix *SuccinctTurnIndex) Tier() string { return "succinct" }
