package routing

import (
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// randomFoldedClos wires a radix-regular folded Clos with uniformly random
// semi-regular bipartite stages — the same construction as core.Generate,
// rebuilt here because internal/core imports this package.
func randomFoldedClos(t *testing.T, sizes []int, half int, seed uint64) *topology.Clos {
	t.Helper()
	c, err := topology.NewEmpty(sizes, 1, 2*half)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for lev := 1; lev < len(sizes); lev++ {
		nA, nB := sizes[lev-1], sizes[lev]
		stubs := make([]int, 0, nA*half)
		for i := 0; i < nA; i++ {
			for k := 0; k < half; k++ {
				stubs = append(stubs, i)
			}
		}
		r.ShuffleInts(stubs)
		dB := nA * half / nB
		for j, a := range stubs {
			c.AddLink(c.SwitchID(lev, a), c.SwitchID(lev+1, j/dB))
		}
	}
	return c
}

// checkAgreement compares the succinct index against the dense one and the
// cover-set computation on every ordered leaf pair.
func checkAgreement(t *testing.T, u *UpDown, sx *SuccinctTurnIndex) {
	t.Helper()
	dense := NewMinTurnIndex(u)
	n := dense.Leaves()
	if sx.Leaves() != n {
		t.Fatalf("Leaves() = %d, want %d", sx.Leaves(), n)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			want := dense.MinTurn(src, dst)
			if got := sx.MinTurn(src, dst); got != want {
				t.Fatalf("succinct MinTurn(%d, %d) = %d, dense says %d", src, dst, got, want)
			}
		}
	}
	if sx.Routable() != dense.Routable() {
		t.Fatalf("Routable() = %v, dense says %v", sx.Routable(), dense.Routable())
	}
	if sx.UnreachablePairs() != dense.UnreachablePairs() {
		t.Fatalf("UnreachablePairs() = %d, dense says %d", sx.UnreachablePairs(), dense.UnreachablePairs())
	}
	if sx.UnreachablePairs() != int64(2*u.UnroutablePairs(0)) {
		t.Fatalf("UnreachablePairs() = %d, UnroutablePairs says %d unordered",
			sx.UnreachablePairs(), u.UnroutablePairs(0))
	}
}

// TestSuccinctMatchesDense is the same-answers property test the tentpole is
// pinned by: dense and succinct MinTurn agree on every ordered pair, for
// structured and randomized topologies, healthy and faulted.
func TestSuccinctMatchesDense(t *testing.T) {
	builds := []struct {
		name string
		c    *topology.Clos
	}{}
	add := func(name string, c *topology.Clos, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		builds = append(builds, struct {
			name string
			c    *topology.Clos
		}{name, c})
	}
	cft, err := topology.NewCFT(8, 3)
	add("cft-8-3", cft, err)
	xg, err := topology.NewXGFT([]int{4, 8, 6}, []int{1, 3, 2}, 16)
	add("xgft-3lvl", xg, err)
	add("rfc-3lvl", randomFoldedClos(t, []int{24, 12, 6}, 3, 101), nil)
	add("rfc-4lvl", randomFoldedClos(t, []int{16, 16, 8, 4}, 2, 202), nil)

	for _, tc := range builds {
		t.Run(tc.name, func(t *testing.T) {
			u := New(tc.c)
			checkAgreement(t, u, NewSuccinctTurnIndex(u, 0))

			// Fault a third of the links (possibly disconnecting pairs or
			// whole leaves), rebuild, and re-check.
			r := rng.New(7)
			links := tc.c.Links()
			r.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
			for _, l := range links[:len(links)/3] {
				tc.c.RemoveLink(l.A, l.B)
			}
			u.Rebuild()
			checkAgreement(t, u, NewSuccinctTurnIndex(u, 0))
		})
	}
}

// TestSuccinctSizeBytes checks the succinct encoding undercuts the dense
// table on a topology large enough for the asymptotics to show: a 4096-leaf
// XGFT, where exception rows are the size of one level-2 subtree.
func TestSuccinctSizeBytes(t *testing.T) {
	c, err := topology.NewXGFT([]int{4, 64, 64}, []int{1, 4, 2}, 72)
	if err != nil {
		t.Fatal(err)
	}
	u := New(c)
	sx := NewSuccinctTurnIndex(u, 0)
	denseBytes := sx.Leaves() * sx.Leaves()
	if sx.SizeBytes()*8 > denseBytes {
		t.Fatalf("SizeBytes() = %d, want <= 12.5%% of dense %d", sx.SizeBytes(), denseBytes)
	}
	if sx.Tier() != "succinct" {
		t.Fatalf("Tier() = %q, want succinct", sx.Tier())
	}
}

// TestSuccinctPromotion exercises hot-row promotion: rows crossing the hit
// threshold materialise dense rows until the budget is exhausted, with
// answers unchanged throughout.
func TestSuccinctPromotion(t *testing.T) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	u := New(c)
	dense := NewMinTurnIndex(u)
	n := u.n1

	// Budget for exactly one promoted row.
	sx := NewSuccinctTurnIndex(u, int64(n))
	base := sx.SizeBytes()
	hammer := func(src int) {
		for i := 0; i <= promoteAfter; i++ {
			dst := (src + 1 + i%(n-1)) % n
			if got, want := sx.MinTurn(src, dst), dense.MinTurn(src, dst); got != want {
				t.Fatalf("MinTurn(%d, %d) = %d, want %d", src, dst, got, want)
			}
		}
	}
	hammer(3)
	if got := sx.PromotedRows(); got != 1 {
		t.Fatalf("PromotedRows after hammering row 3 = %d, want 1", got)
	}
	if got := sx.SizeBytes(); got != base+n {
		t.Fatalf("SizeBytes after promotion = %d, want %d", got, base+n)
	}
	hammer(5) // budget exhausted: no second promotion
	if got := sx.PromotedRows(); got != 1 {
		t.Fatalf("PromotedRows after second hammer = %d, want 1 (budget)", got)
	}
	// Promoted and unpromoted rows keep agreeing everywhere.
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if got, want := sx.MinTurn(src, dst), dense.MinTurn(src, dst); got != want {
				t.Fatalf("post-promotion MinTurn(%d, %d) = %d, want %d", src, dst, got, want)
			}
		}
	}

	// promoteBudget <= 0 disables promotion entirely.
	off := NewSuccinctTurnIndex(u, 0)
	for i := 0; i < 4*promoteAfter; i++ {
		off.MinTurn(0, 1)
	}
	if got := off.PromotedRows(); got != 0 {
		t.Fatalf("PromotedRows with zero budget = %d, want 0", got)
	}
}

// TestSuccinctDisconnectedLeaf covers the unreachable-majority row shape: a
// leaf with every up link removed can reach nobody and nobody reaches it.
func TestSuccinctDisconnectedLeaf(t *testing.T) {
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	dead := c.SwitchID(1, 0)
	for _, p := range append([]int32(nil), c.Up(dead)...) {
		c.RemoveLink(dead, p)
	}
	u := New(c)
	sx := NewSuccinctTurnIndex(u, 0)
	n := u.n1
	for dst := 1; dst < n; dst++ {
		if got := sx.MinTurn(0, dst); got != -1 {
			t.Fatalf("MinTurn(0, %d) = %d, want -1", dst, got)
		}
		if got := sx.MinTurn(dst, 0); got != -1 {
			t.Fatalf("MinTurn(%d, 0) = %d, want -1", dst, got)
		}
	}
	if sx.MinTurn(0, 0) != 0 {
		t.Fatal("MinTurn(0, 0) should stay 0 by convention")
	}
	if sx.Routable() {
		t.Fatal("Routable() = true with a disconnected leaf")
	}
	if want := int64(2 * (n - 1)); sx.UnreachablePairs() != want {
		t.Fatalf("UnreachablePairs() = %d, want %d", sx.UnreachablePairs(), want)
	}
	checkAgreement(t, u, sx)
}

// TestNewTurnIndexTierSelection pins the budget rule NewTurnIndex applies.
func TestNewTurnIndexTierSelection(t *testing.T) {
	c, err := topology.NewCFT(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	u := New(c)
	n := u.n1
	if got := NewTurnIndex(u, 0).Tier(); got != "dense" {
		t.Fatalf("budget 0 → %q, want dense (unlimited)", got)
	}
	if got := NewTurnIndex(u, n*n).Tier(); got != "dense" {
		t.Fatalf("budget n² → %q, want dense", got)
	}
	if got := NewTurnIndex(u, n*n-1).Tier(); got != "succinct" {
		t.Fatalf("budget n²-1 → %q, want succinct", got)
	}
}
