package routing

import (
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// buildTestClos wires a small 3-level CFT, which is routable by
// construction, for index comparisons.
func buildTestClos(t *testing.T) *topology.Clos {
	t.Helper()
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMinTurnIndexMatchesMinTurn checks the precomputed table agrees with
// the cover-set computation on every ordered leaf pair, on a healthy
// network and on a faulted one (where some pairs may lose their path).
func TestMinTurnIndexMatchesMinTurn(t *testing.T) {
	c := buildTestClos(t)
	u := New(c)
	check := func() {
		ix := NewMinTurnIndex(u)
		n := c.LevelSize(1)
		if ix.Leaves() != n {
			t.Fatalf("Leaves() = %d, want %d", ix.Leaves(), n)
		}
		if ix.SizeBytes() != n*n {
			t.Fatalf("SizeBytes() = %d, want %d", ix.SizeBytes(), n*n)
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if got, want := ix.MinTurn(src, dst), u.MinTurn(src, dst); got != want {
					t.Fatalf("MinTurn(%d, %d) = %d, want %d", src, dst, got, want)
				}
			}
		}
		if ix.Routable() != u.Routable() {
			t.Fatalf("Routable() = %v, want %v", ix.Routable(), u.Routable())
		}
	}
	check()

	// Knock out links until routability degrades, then re-check agreement.
	r := rng.New(7)
	links := c.Links()
	r.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	for _, l := range links[:len(links)/3] {
		c.RemoveLink(l.A, l.B)
	}
	u.Rebuild()
	check()
}

// TestPathAtMatchesPath pins PathAt as the Path decomposition: with the same
// rng stream and the true turn level they must produce identical paths.
func TestPathAtMatchesPath(t *testing.T) {
	c := buildTestClos(t)
	u := New(c)
	ix := NewMinTurnIndex(u)
	n := c.LevelSize(1)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			p1 := u.Path(src, dst, rng.New(42))
			p2 := u.PathAt(src, dst, ix.MinTurn(src, dst), rng.New(42))
			if len(p1) != len(p2) {
				t.Fatalf("path lengths differ for %d->%d: %v vs %v", src, dst, p1, p2)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("paths differ for %d->%d: %v vs %v", src, dst, p1, p2)
				}
			}
		}
	}
	if u.PathAt(0, 1, -1, rng.New(1)) != nil {
		t.Fatal("PathAt with negative turn should return nil")
	}
}
