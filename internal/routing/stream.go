package routing

import "rfclos/internal/topology"

// RebuildStream builds up/down routing state incrementally while a builder
// is still wiring the topology. It implements topology.LevelSink: as each
// level pair seals into the CSR store, the descendant (cover_0) sets of the
// newly-finalised level are computed and compressed immediately, so the
// wiring scratch of level l+1 and the desc construction of level l overlap
// instead of the whole graph and the whole plain-bitset state being
// resident together. The cover_r families (r >= 1) need the complete
// up-wiring and are computed in Finish.
//
// Usage:
//
//	rs := routing.NewRebuildStream()
//	c, err := topology.NewXGFTStream(m, w, radix, rs)
//	ud := rs.Finish(c)
//
// The result is identical to routing.New(c) on the finished topology — the
// equivalence test in stream_test.go pins it — construction just peaks
// lower and earlier.
type RebuildStream struct {
	c    *topology.Clos
	n1   int
	bld  *leafSetBuilder
	desc []LeafSet
	// done is the highest level whose desc sets are computed; levels seal
	// bottom-up in every builder, so done advances 1, 2, ..., l.
	done int
}

// NewRebuildStream returns a sink ready to attach to a streaming builder.
func NewRebuildStream() *RebuildStream { return &RebuildStream{} }

func (rs *RebuildStream) init(c *topology.Clos) {
	if rs.c != nil {
		return
	}
	rs.c = c
	rs.n1 = c.LevelSize(1)
	rs.bld = newLeafSetBuilder(rs.n1)
	rs.desc = make([]LeafSet, c.NumSwitches())
	for i := 0; i < rs.n1; i++ {
		rs.desc[c.SwitchID(1, i)] = newSingletonLeafSet(rs.n1, i)
	}
	rs.done = 1
}

// LevelSealed consumes one sealed level pair: the down-links of level+1 are
// now final, so its desc sets are computable. Out-of-order seals are
// tolerated by deferring to Finish.
func (rs *RebuildStream) LevelSealed(c *topology.Clos, level int) {
	rs.init(c)
	if level == rs.done && rs.done < c.Levels() {
		rs.descLevel(rs.done + 1)
		rs.done++
	}
}

// descLevel computes the descendant sets of one level from the level below,
// taking the builder-declared interval fast path when the topology carries
// leaf ranges (the XGFT family declares them before wiring, so the streamed
// build uses them too).
func (rs *RebuildStream) descLevel(lev int) {
	c := rs.c
	for i := 0; i < c.LevelSize(lev); i++ {
		s := c.SwitchID(lev, i)
		if lo, hi, ok := c.LeafRange(s); ok {
			rs.desc[s] = leafSetFromRange(rs.n1, lo, hi)
			continue
		}
		rs.bld.reset()
		for _, ch := range c.Down(s) {
			rs.bld.add(rs.desc[ch])
		}
		rs.desc[s] = rs.bld.finish()
	}
}

// Finish completes the routing state once the builder returns: any desc
// levels not yet streamed are caught up, then the cover_r families are
// built over the full up-wiring. c must be the topology the sink observed
// (or, for a sink never attached, any fully-wired topology).
func (rs *RebuildStream) Finish(c *topology.Clos) *UpDown {
	rs.init(c)
	for rs.done < c.Levels() {
		rs.descLevel(rs.done + 1)
		rs.done++
	}
	u := &UpDown{c: c, n1: rs.n1}
	u.cover = make([][]LeafSet, c.Levels())
	u.cover[0] = rs.desc
	u.finishCovers(rs.bld)
	return u
}
