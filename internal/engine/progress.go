package engine

import (
	"fmt"
	"sync"
	"time"
)

// Progress wraps a progress sink so it can be handed to concurrently running
// jobs: calls are serialized under a mutex and each line is prefixed with a
// running job counter and the elapsed wall-clock time since the wrapper was
// created, e.g. "[17 1.42s] RFC-3L-R16/uniform load=0.60 ...". A nil sink
// yields a nil wrapper, matching the options structs' "nil means quiet"
// convention.
//
// The prefix reflects completion order and timing, which naturally vary
// across runs and worker counts; progress output is diagnostic and is not
// part of the engine's determinism contract (reports are). This file is
// therefore the one sanctioned wall-clock reader in a deterministic package:
// rfclint's nondet-source rule exempts it via Config.AllowFiles.
func Progress(sink func(string)) func(string) {
	if sink == nil {
		return nil
	}
	var (
		mu    sync.Mutex
		done  int
		start = time.Now()
	)
	return func(s string) {
		mu.Lock()
		defer mu.Unlock()
		done++
		sink(fmt.Sprintf("[%d %.2fs] %s", done, time.Since(start).Seconds(), s))
	}
}
