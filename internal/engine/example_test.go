package engine_test

import (
	"fmt"

	"rfclos/internal/engine"
	"rfclos/internal/rng"
)

// A sweep fans its grid out over a worker pool; each job derives its random
// stream from its own coordinates, so the collected results are identical
// for every worker count.
func ExampleRun() {
	const seed = 7
	loads := []float64{0.2, 0.4, 0.6}
	const reps = 2

	// One job per (load, repetition) grid point.
	means, err := engine.Run(len(loads)*reps, 4, func(job int) (float64, error) {
		loadIdx, rep := job/reps, job%reps
		stream := rng.At(seed, uint64(loadIdx), uint64(rep))
		// Stand-in for a simulation: a load-scaled random draw.
		return loads[loadIdx] * stream.Float64(), nil
	})
	if err != nil {
		panic(err)
	}
	for i, m := range means {
		fmt.Printf("load=%.1f rep=%d -> %.3f\n", loads[i/reps], i%reps, m)
	}
	// Output:
	// load=0.2 rep=0 -> 0.078
	// load=0.2 rep=1 -> 0.063
	// load=0.4 rep=0 -> 0.123
	// load=0.4 rep=1 -> 0.053
	// load=0.6 rep=0 -> 0.300
	// load=0.6 rep=1 -> 0.428
}
