package engine

import "fmt"

// Shard identifies one of N cooperating processes splitting a job grid.
// Because every job derives its randomness from its own coordinates (the
// package-level determinism contract), the jobs a shard claims produce
// exactly the bytes the same jobs produce in an unsharded run, so partial
// results from different shards — even from different machines — merge into
// output byte-identical to a single-process sweep.
//
// The zero value (N == 0) and N == 1 both mean "unsharded": the shard owns
// every job.
type Shard struct {
	// K is the shard index, 0 <= K < N.
	K int
	// N is the total number of shards; values < 2 disable sharding.
	N int
}

// Enabled reports whether the shard actually splits work (N >= 2).
func (s Shard) Enabled() bool { return s.N >= 2 }

// Owns reports whether job index i belongs to this shard. Jobs are claimed
// round-robin (i mod N == K) so every partition {0/N, 1/N, ..., (N-1)/N}
// covers each job exactly once and shards get near-equal slices of every
// grid regardless of its shape.
func (s Shard) Owns(i int) bool {
	if !s.Enabled() {
		return true
	}
	return i%s.N == s.K
}

// Validate checks the invariant 0 <= K < N (or the unsharded zero value).
func (s Shard) Validate() error {
	if s.N == 0 && s.K == 0 {
		return nil
	}
	if s.N < 1 || s.K < 0 || s.K >= s.N {
		return fmt.Errorf("engine: invalid shard %d/%d", s.K, s.N)
	}
	return nil
}

// String renders the shard as "k/n" ("" when unsharded).
func (s Shard) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.K, s.N)
}

// ParseShard parses the CLI form "k/n" (e.g. "0/2"). An empty string means
// unsharded.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	var sh Shard
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.K, &sh.N); err != nil {
		return Shard{}, fmt.Errorf("engine: shard %q not of the form k/n", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// RunShard is Run restricted to the jobs the shard owns: fn runs only for
// owned indices (on up to `workers` goroutines), and the returned slice
// still has one slot per job, with unowned slots left at the zero value.
// Callers use s.Owns to tell a computed zero from a skipped job.
func RunShard[T any](jobs, workers int, s Shard, fn func(job int) (T, error)) ([]T, error) {
	if !s.Enabled() {
		return Run(jobs, workers, fn)
	}
	if jobs <= 0 {
		return nil, nil
	}
	owned := make([]int, 0, jobs/s.N+1)
	for i := 0; i < jobs; i++ {
		if s.Owns(i) {
			owned = append(owned, i)
		}
	}
	results := make([]T, jobs)
	sub, err := Run(len(owned), workers, func(j int) (T, error) {
		return fn(owned[j])
	})
	for j, i := range owned {
		results[i] = sub[j]
	}
	return results, err
}
