package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"rfclos/internal/rng"
)

func TestRunReturnsResultsInJobOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Run(20, workers, func(job int) (int, error) { return job * job, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 20 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	// The core contract: with job-coordinate-derived RNG streams, results
	// are identical for any worker count.
	draw := func(job int) (uint64, error) {
		return rng.At(99, uint64(job)).Uint64(), nil
	}
	serial, err := Run(50, 1, draw)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parallel, err := Run(50, workers, draw)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: job %d diverged: %d != %d", workers, i, parallel[i], serial[i])
			}
		}
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	errA := errors.New("job 3 failed")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Run(10, workers, func(job int) (int, error) {
			ran.Add(1)
			if job == 3 {
				return 0, errA
			}
			if job == 7 {
				return 0, errors.New("job 7 failed")
			}
			return job, nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want job 3's error", workers, err)
		}
		if ran.Load() != 10 {
			t.Errorf("workers=%d: ran %d jobs, want all 10 (no cancellation)", workers, ran.Load())
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	got, err := Run(0, 4, func(job int) (int, error) { return 0, errors.New("must not run") })
	if err != nil || got != nil {
		t.Errorf("Run(0, ...) = %v, %v; want nil, nil", got, err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(3); w != 3 {
		t.Errorf("Workers(3) = %d", w)
	}
	if w := Workers(0); w < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-2); w < 1 {
		t.Errorf("Workers(-2) = %d, want >= 1", w)
	}
}

func TestProgressCountsAndSerializes(t *testing.T) {
	var mu []string
	sink := Progress(func(s string) { mu = append(mu, s) })
	// Concurrent emissions must all arrive, each with a distinct counter.
	_, err := Run(25, 8, func(job int) (int, error) {
		sink(fmt.Sprintf("job %d", job))
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mu) != 25 {
		t.Fatalf("got %d progress lines, want 25", len(mu))
	}
	seen := map[string]bool{}
	for _, line := range mu {
		if !strings.HasPrefix(line, "[") {
			t.Fatalf("line %q lacks counter prefix", line)
		}
		counter := line[1:strings.Index(line, " ")]
		if seen[counter] {
			t.Fatalf("duplicate counter %s", counter)
		}
		seen[counter] = true
	}
	if Progress(nil) != nil {
		t.Error("Progress(nil) should be nil")
	}
}
