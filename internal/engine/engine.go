// Package engine is the deterministic parallel job runner behind every
// experiment sweep in this repository. The paper's exhibits (Figures 8-12,
// Table 3, the Theorem 4.2 Monte-Carlo) are embarrassingly parallel grids —
// load points × repetitions × topologies × traffic patterns — and engine.Run
// fans such a grid out over a worker pool while keeping the results a pure
// function of the job indices.
//
// The determinism contract, which the analysis layer relies on and
// regression-tests, is:
//
//   - Run(jobs, w, fn) returns results indexed by job, never by completion
//     order, so aggregation code observes an order independent of w.
//   - fn must derive all of its randomness from the job index (in practice
//     from job coordinates via rng.DeriveSeed/rng.At), never from shared
//     mutable generators.
//
// Under that contract the output for workers = 1 is byte-identical to the
// output for workers = N.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: values > 0 are returned as-is and
// anything else (the zero value of an options struct) means one worker per
// available CPU. Every sweep option struct interprets its Workers field
// through this function.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Run executes fn(job) for every job index in [0, jobs) on up to `workers`
// goroutines (Workers(workers) resolves non-positive values; the pool never
// exceeds the job count) and returns the results in job-index order.
//
// Jobs are claimed from a shared atomic counter, so scheduling is dynamic,
// but because results are stored by index the returned slice is identical
// for every worker count. Errors do not cancel other jobs — every job runs
// to completion so the error path is deterministic too — and the error
// returned is the one from the lowest-indexed failing job.
//
// fn is called concurrently when workers > 1 and must therefore be safe for
// concurrent use; the intended pattern is that each job reads shared
// immutable inputs (a topology, routing tables) and derives its own RNG
// stream from the job's coordinates.
func Run[T any](jobs, workers int, fn func(job int) (T, error)) ([]T, error) {
	if jobs <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > jobs {
		workers = jobs
	}
	results := make([]T, jobs)
	if workers == 1 {
		// Serial fast path: no goroutines, no atomics, same semantics.
		var firstErr error
		for i := 0; i < jobs; i++ {
			v, err := fn(i)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			results[i] = v
		}
		return results, firstErr
	}
	errs := make([]error, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
