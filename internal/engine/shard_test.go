package engine

import (
	"fmt"
	"testing"
)

func TestShardOwnsPartition(t *testing.T) {
	const jobs = 97
	for n := 1; n <= 5; n++ {
		owners := make([]int, jobs)
		for k := 0; k < n; k++ {
			sh := Shard{K: k, N: n}
			for i := 0; i < jobs; i++ {
				if sh.Owns(i) {
					owners[i]++
				}
			}
		}
		for i, c := range owners {
			if c != 1 {
				t.Fatalf("n=%d: job %d owned by %d shards, want exactly 1", n, i, c)
			}
		}
	}
	var unsharded Shard
	for i := 0; i < 5; i++ {
		if !unsharded.Owns(i) {
			t.Errorf("zero-value shard must own every job, missed %d", i)
		}
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"", Shard{}, true},
		{"0/2", Shard{0, 2}, true},
		{"2/3", Shard{2, 3}, true},
		{"0/1", Shard{0, 1}, true},
		{"3/3", Shard{}, false},
		{"-1/2", Shard{}, false},
		{"1", Shard{}, false},
		{"a/b", Shard{}, false},
	} {
		got, err := ParseShard(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseShard(%q) accepted, want error", tc.in)
		}
	}
	if got := (Shard{1, 4}).String(); got != "1/4" {
		t.Errorf("String() = %q, want 1/4", got)
	}
	if got := (Shard{}).String(); got != "" {
		t.Errorf("zero String() = %q, want empty", got)
	}
}

func TestRunShardCoversEveryJobOnce(t *testing.T) {
	const jobs = 23
	full, err := RunShard(jobs, 4, Shard{}, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 3; n++ {
		merged := make([]int, jobs)
		for k := 0; k < n; k++ {
			sh := Shard{K: k, N: n}
			part, err := RunShard(jobs, 4, sh, func(i int) (int, error) { return i + 1, nil })
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range part {
				if sh.Owns(i) {
					if v != i+1 {
						t.Fatalf("shard %d/%d job %d = %d, want %d", k, n, i, v, i+1)
					}
					merged[i] = v
				} else if v != 0 {
					t.Fatalf("shard %d/%d filled unowned job %d with %d", k, n, i, v)
				}
			}
		}
		for i := range merged {
			if merged[i] != full[i] {
				t.Fatalf("n=%d: merged[%d] = %d, unsharded %d", n, i, merged[i], full[i])
			}
		}
	}
}

func TestRunShardOnlyRunsOwnedJobs(t *testing.T) {
	sh := Shard{K: 1, N: 3}
	_, err := RunShard(9, 1, sh, func(i int) (string, error) {
		if !sh.Owns(i) {
			return "", fmt.Errorf("ran unowned job %d", i)
		}
		return "x", nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
