package core

import (
	"math"
	"testing"
	"testing/quick"

	"rfclos/internal/rng"
	"rfclos/internal/routing"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Radix: 8, Levels: 3, Leaves: 16}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Radix: 7, Levels: 3, Leaves: 16},  // odd radix
		{Radix: 2, Levels: 3, Leaves: 16},  // radix too small
		{Radix: 8, Levels: 1, Leaves: 16},  // too few levels
		{Radix: 8, Levels: 3, Leaves: 15},  // odd leaves
		{Radix: 16, Levels: 3, Leaves: 10}, // up-degree exceeds top level
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%v) should fail validation", i, p)
		}
	}
}

func TestParamsDerived(t *testing.T) {
	// §5 maximum-expansion example: R=36, l=3, N1=11254 gives 202,572
	// terminals, 28,135 switches and 405,144 wires.
	p := Params{Radix: 36, Levels: 3, Leaves: 11254}
	if got := p.Terminals(); got != 202572 {
		t.Errorf("terminals = %d, want 202572", got)
	}
	if got := p.Switches(); got != 28135 {
		t.Errorf("switches = %d, want 28135", got)
	}
	if got := p.Wires(); got != 405144 {
		t.Errorf("wires = %d, want 405144", got)
	}
	if got := p.Diameter(); got != 4 {
		t.Errorf("diameter = %d, want 4", got)
	}
	sizes := p.LevelSizes()
	if sizes[0] != 11254 || sizes[1] != 11254 || sizes[2] != 5627 {
		t.Errorf("level sizes = %v", sizes)
	}
	// §5 intermediate case: 2*2778*18 = 100,008 terminals, 13,890 switches,
	// 200,016 wires.
	p2 := Params{Radix: 36, Levels: 3, Leaves: 5556}
	if p2.Terminals() != 100008 || p2.Switches() != 13890 || p2.Wires() != 200016 {
		t.Errorf("100K case: T=%d switches=%d wires=%d", p2.Terminals(), p2.Switches(), p2.Wires())
	}
}

func TestParamsForTerminals(t *testing.T) {
	p := ParamsForTerminals(36, 3, 11664)
	if p.Terminals() < 11664 {
		t.Errorf("terminals %d below request", p.Terminals())
	}
	if p.Leaves%2 != 0 {
		t.Error("leaves not even")
	}
	// §5: an RFC with radix 20 and 1166 leaf routers carries 11,660
	// terminals, almost the 3-level CFT's 11,664.
	p20 := Params{Radix: 20, Levels: 3, Leaves: 1166}
	if p20.Terminals() != 11660 {
		t.Errorf("radix-20 RFC terminals = %d, want 11660", p20.Terminals())
	}
}

func TestMaxLeavesPaperExample(t *testing.T) {
	// §4.2: for diameter 4 (3 levels) and radix 36 the realizable limit is
	// slightly above N1 ≈ 11,254 (about 202,554 terminals).
	n1 := MaxLeaves(36, 3)
	if n1 < 11230 || n1 > 11280 {
		t.Errorf("MaxLeaves(36,3) = %d, want ≈11254", n1)
	}
	tt := MaxTerminals(36, 3)
	if tt < 202000 || tt > 203100 {
		t.Errorf("MaxTerminals(36,3) = %d, want ≈202554", tt)
	}
	// CFT of the same diameter connects only 11,664 — the RFC scales ~17x.
	if tt < 11664*15 {
		t.Error("RFC should scale far beyond the CFT at equal diameter")
	}
}

func TestRRNMaxSwitchesPaperExample(t *testing.T) {
	// §4.2: Δ=26, D=4 allows N = 22,773 switches (Δ^D ≈ 2N ln N).
	n := RRNMaxSwitches(26, 4)
	if n < 22600 || n > 22950 {
		t.Errorf("RRNMaxSwitches(26,4) = %d, want ≈22773", n)
	}
}

func TestThresholdMonotonic(t *testing.T) {
	prev := 0.0
	for _, n1 := range []int{100, 1000, 10000, 100000} {
		r := ThresholdRadix(n1, 3)
		if r <= prev {
			t.Errorf("threshold not increasing at N1=%d", n1)
		}
		prev = r
	}
	// More levels need smaller radix for the same N1.
	if ThresholdRadix(10000, 4) >= ThresholdRadix(10000, 3) {
		t.Error("threshold should decrease with level count")
	}
}

func TestSuccessProbability(t *testing.T) {
	if p := SuccessProbability(0); math.Abs(p-1/math.E) > 1e-12 {
		t.Errorf("P(x=0) = %v, want 1/e", p)
	}
	if p := SuccessProbability(10); p < 0.9999 {
		t.Errorf("P(x=10) = %v, want ≈1", p)
	}
	if p := SuccessProbability(-10); p > 1e-9 {
		t.Errorf("P(x=-10) = %v, want ≈0", p)
	}
}

func TestNormalizedBisectionPaperNumbers(t *testing.T) {
	// §4.2 quotes, for R=36: RRN 0.88, 2-level RFC 0.80, 3-level RFC 0.86.
	if got := NormalizedBisectionRFC(1000, 36, 2); math.Abs(got-0.80) > 0.01 {
		t.Errorf("2-level RFC normalized bisection = %v, want ≈0.80", got)
	}
	if got := NormalizedBisectionRFC(1000, 36, 3); math.Abs(got-0.86) > 0.01 {
		t.Errorf("3-level RFC normalized bisection = %v, want ≈0.86", got)
	}
	if got := NormalizedBisectionRRN(1000, 26, 10); math.Abs(got-0.88) > 0.01 {
		t.Errorf("RRN normalized bisection = %v, want ≈0.88", got)
	}
}

func TestGenerateStructure(t *testing.T) {
	r := rng.New(71)
	p := Params{Radix: 8, Levels: 3, Leaves: 16}
	c, err := Generate(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}
	if c.Terminals() != p.Terminals() || c.NumSwitches() != p.Switches() || c.Wires() != p.Wires() {
		t.Errorf("built network disagrees with params: T=%d sw=%d w=%d", c.Terminals(), c.NumSwitches(), c.Wires())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Radix: 8, Levels: 3, Leaves: 16}
	c1, err1 := Generate(p, rng.New(5))
	c2, err2 := Generate(p, rng.New(5))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	l1, l2 := c1.Links(), c2.Links()
	if len(l1) != len(l2) {
		t.Fatal("link counts differ")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestGenerateProperty(t *testing.T) {
	f := func(seed uint64, rRaw, nRaw uint8) bool {
		radix := (int(rRaw%6) + 2) * 2 // 4..14 even
		n1 := (int(nRaw%20) + radix) * 2
		p := Params{Radix: radix, Levels: 3, Leaves: n1}
		if p.Validate() != nil {
			return true // skip infeasible combos
		}
		c, err := Generate(p, rng.New(seed))
		if err != nil {
			return false
		}
		return c.ValidateRadixRegular() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRoutableAboveThreshold(t *testing.T) {
	// R=8, l=3, N1=16: threshold radix is 2(16 ln 16)^(1/4) ≈ 5.2, so
	// radix 8 sits far above it and routability should be near-certain.
	r := rng.New(72)
	p := Params{Radix: 8, Levels: 3, Leaves: 16}
	c, ud, attempts, err := GenerateRoutable(p, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ud.Routable() {
		t.Error("returned network not routable")
	}
	if attempts > 3 {
		t.Errorf("needed %d attempts far above threshold", attempts)
	}
	if c.Terminals() != 64 {
		t.Errorf("terminals = %d", c.Terminals())
	}
}

func TestGenerateRoutableBelowThreshold(t *testing.T) {
	// R=4 on 200 leaves with 2 levels: threshold radix ≈ 2*sqrt(200 ln
	// 200) ≈ 65, so radix 4 virtually never yields common ancestors.
	r := rng.New(73)
	p := Params{Radix: 4, Levels: 2, Leaves: 200}
	if _, _, _, err := GenerateRoutable(p, 3, r); err == nil {
		t.Error("expected failure far below threshold")
	}
}

func TestTheorem42MonteCarlo(t *testing.T) {
	// Empirical check of the sharp threshold on a 2-level RFC with N1=200
	// leaves (N2=100 roots): well below threshold routability is rare,
	// well above it is near-certain, and at the threshold it is
	// intermediate — the e^{-e^{-x}} shape.
	r := rng.New(74)
	const trials = 120
	probe := func(radix int) float64 {
		p := Params{Radix: radix, Levels: 2, Leaves: 200}
		prob, err := EstimateUpDownProbability(p, trials, r)
		if err != nil {
			t.Fatal(err)
		}
		return prob
	}
	// The exact finite-size prediction follows the theorem's own Poisson
	// argument with the hypergeometric disjointness probability instead of
	// its asymptotic simplification: λ = C(N1,2) ∏_{i<Δ} (N2−Δ−i)/(N2−i),
	// P(routable) = e^{−λ}. (The asymptotic e^{−e^{−x}} form needs Δ/N_l
	// to be small and is tested separately via its shape.)
	exact := func(radix int) float64 {
		const n1, n2 = 200, 100
		delta := radix / 2
		logP := 0.0
		for i := 0; i < delta; i++ {
			logP += math.Log(float64(n2-delta-i)) - math.Log(float64(n2-i))
		}
		lambda := float64(n1) * float64(n1-1) / 2 * math.Exp(logP)
		return math.Exp(-lambda)
	}
	below := probe(44) // exact prediction ≈ 0
	near := probe(54)  // exact prediction ≈ 0.5
	above := probe(76) // exact prediction ≈ 1
	if below > 0.15 {
		t.Errorf("below threshold: empirical %v, want ≈0 (exact %v)", below, exact(44))
	}
	if above < 0.85 {
		t.Errorf("above threshold: empirical %v, want ≈1 (exact %v)", above, exact(76))
	}
	if math.Abs(near-exact(54)) > 0.2 {
		t.Errorf("near threshold: empirical %v vs exact prediction %v", near, exact(54))
	}
	if !(below <= near && near <= above) {
		t.Errorf("probability not monotone: %v %v %v", below, near, above)
	}
}

func TestExpand(t *testing.T) {
	r := rng.New(75)
	p := Params{Radix: 8, Levels: 3, Leaves: 16}
	c, _, _, err := GenerateRoutable(p, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	out, rewired, err := Expand(c, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	// 3 increments: +2 switches at levels 1,2 and +1 at the top each.
	if out.LevelSize(1) != 22 || out.LevelSize(2) != 22 || out.LevelSize(3) != 11 {
		t.Errorf("expanded sizes: %d/%d/%d", out.LevelSize(1), out.LevelSize(2), out.LevelSize(3))
	}
	// Each increment adds R = 8 terminals.
	if out.Terminals() != c.Terminals()+3*8 {
		t.Errorf("terminals = %d, want %d", out.Terminals(), c.Terminals()+3*8)
	}
	// Each increment rewires (l−1)·R = 16 links.
	if rewired != 3*16 {
		t.Errorf("rewired = %d, want 48", rewired)
	}
	// Expansion must not mutate the input.
	if c.LevelSize(1) != 16 {
		t.Error("input network was mutated")
	}
	if !out.SwitchGraph().IsConnected() {
		t.Error("expanded network disconnected")
	}
	// The expanded network usually stays routable this far above
	// threshold; verify the bitsets at least see every new leaf.
	ud := routing.New(out)
	if got := ud.Descendants(out.SwitchID(1, 21)).Count(); got != 1 {
		t.Errorf("new leaf descendant count = %d", got)
	}
}

func TestExpandZero(t *testing.T) {
	r := rng.New(76)
	c, err := Generate(Params{Radix: 8, Levels: 2, Leaves: 16}, r)
	if err != nil {
		t.Fatal(err)
	}
	out, rewired, err := Expand(c, 0, r)
	if err != nil || rewired != 0 {
		t.Fatalf("zero expansion: %v, rewired %d", err, rewired)
	}
	if out.Terminals() != c.Terminals() {
		t.Error("zero expansion changed terminals")
	}
	if _, _, err := Expand(c, -1, r); err == nil {
		t.Error("negative increments should fail")
	}
}

func TestExpandPreservesExistingDegrees(t *testing.T) {
	r := rng.New(77)
	c, err := Generate(Params{Radix: 12, Levels: 3, Leaves: 24}, r)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Expand(c, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}
}

func TestFigure4RFC(t *testing.T) {
	// Figure 4 of the paper: an RFC of radix 4 with N1 = 16 and 4 levels.
	p := Params{Radix: 4, Levels: 4, Leaves: 16}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := Generate(p, rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	if c.LevelSize(1) != 16 || c.LevelSize(2) != 16 || c.LevelSize(3) != 16 || c.LevelSize(4) != 8 {
		t.Errorf("level sizes %d/%d/%d/%d, want 16/16/16/8",
			c.LevelSize(1), c.LevelSize(2), c.LevelSize(3), c.LevelSize(4))
	}
	if err := c.ValidateRadixRegular(); err != nil {
		t.Error(err)
	}
	// Same switch counts and wires as the CFT of Figure 1 (the RFC keeps
	// the CFT's structure, only the wiring pattern is random).
	if c.NumSwitches() != 56 || c.Wires() != 96 || c.Terminals() != 32 {
		t.Errorf("switches=%d wires=%d T=%d, want 56/96/32", c.NumSwitches(), c.Wires(), c.Terminals())
	}
}
