// Package core implements the paper's contribution: Random Folded Clos
// (RFC) networks. It provides the generator (Definition 4.1 restricted to
// radix-regular folded Clos, built from the random bipartite graphs of
// Appendix Listing 2), the Theorem 4.2 threshold mathematics governing
// up/down routability, and the incremental expansion procedure of §5.
package core

import (
	"fmt"
	"math"
)

// Params identifies a radix-regular RFC: R (switch radix), l (levels) and
// N1 (leaf switches). Levels 1..l-1 all have N1 switches (R/2 up-links and
// R/2 down-links each; leaves attach R/2 terminals) and the top level has
// N1/2 switches with R down-links, so the terminal count is T = N1 * R/2.
type Params struct {
	Radix  int // R, even, >= 4
	Levels int // l >= 2
	Leaves int // N1, even
}

// Validate checks structural feasibility, including the bipartite degree
// bounds needed by the generator (a switch cannot have more distinct
// neighbours than the opposite level has switches).
func (p Params) Validate() error {
	switch {
	case p.Radix < 4 || p.Radix%2 != 0:
		return fmt.Errorf("core: radix must be even and >= 4, got %d", p.Radix)
	case p.Levels < 2:
		return fmt.Errorf("core: levels must be >= 2, got %d", p.Levels)
	case p.Leaves < 2 || p.Leaves%2 != 0:
		return fmt.Errorf("core: leaves must be even and >= 2, got %d", p.Leaves)
	}
	half := p.Radix / 2
	// Levels 1..l-1 have N1 switches; top has N1/2. Up-degree R/2 must not
	// exceed the size of the level above; down-degree likewise.
	if p.Levels > 2 && half > p.Leaves {
		return fmt.Errorf("core: up-degree %d exceeds level size %d", half, p.Leaves)
	}
	if half > p.Leaves/2 {
		return fmt.Errorf("core: up-degree %d exceeds top level size %d", half, p.Leaves/2)
	}
	return nil
}

// LevelSizes returns [N1, N1, ..., N1, N1/2].
func (p Params) LevelSizes() []int {
	sizes := make([]int, p.Levels)
	for i := 0; i < p.Levels-1; i++ {
		sizes[i] = p.Leaves
	}
	sizes[p.Levels-1] = p.Leaves / 2
	return sizes
}

// Terminals returns T = N1 * R/2.
func (p Params) Terminals() int { return p.Leaves * p.Radix / 2 }

// Switches returns the total switch count (l-1)*N1 + N1/2.
func (p Params) Switches() int { return (p.Levels-1)*p.Leaves + p.Leaves/2 }

// Wires returns the inter-switch link count (l-1)*N1*R/2.
func (p Params) Wires() int { return (p.Levels - 1) * p.Leaves * p.Radix / 2 }

// Diameter returns the up/down diameter 2(l-1).
func (p Params) Diameter() int { return 2 * (p.Levels - 1) }

// ParamsForTerminals picks the RFC with the given radix and levels whose
// terminal count is at least t (rounding N1 up to even).
func ParamsForTerminals(radix, levels, t int) Params {
	half := radix / 2
	n1 := (t + half - 1) / half
	if n1%2 != 0 {
		n1++
	}
	if n1 < 2 {
		n1 = 2
	}
	return Params{Radix: radix, Levels: levels, Leaves: n1}
}

// MaxParams returns the largest realizable RFC (per the Theorem 4.2
// threshold) for the given radix and level count.
func MaxParams(radix, levels int) Params {
	return Params{Radix: radix, Levels: levels, Leaves: MaxLeaves(radix, levels)}
}

// String summarises the parameters.
func (p Params) String() string {
	return fmt.Sprintf("RFC(R=%d, l=%d, N1=%d, T=%d)", p.Radix, p.Levels, p.Leaves, p.Terminals())
}

// lnBinom2 returns ln C(n, 2) for n >= 2.
func lnBinom2(n int) float64 {
	return math.Log(float64(n)) + math.Log(float64(n-1)) - math.Ln2
}
