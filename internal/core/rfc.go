package core

import (
	"errors"
	"fmt"

	"rfclos/internal/engine"
	"rfclos/internal/graph"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// ErrNotRoutable is returned when repeated generation attempts fail to
// produce an RFC with the common-ancestor (up/down routing) property —
// expected behaviour below the Theorem 4.2 threshold.
var ErrNotRoutable = errors.New("core: could not generate an up/down-routable RFC")

// Generate builds one random radix-regular folded Clos network with the
// given parameters: each adjacent level pair is wired with an independent
// uniform random semi-regular bipartite graph (Appendix Listing 2). The
// result is a valid radix-regular folded Clos; whether it enjoys up/down
// routing is probabilistic, governed by Theorem 4.2.
func Generate(p Params, r *rng.Rand) (*topology.Clos, error) {
	return GenerateStream(p, r, nil)
}

// GenerateStream is Generate with a level sink: each level pair's random
// bipartite wiring is sealed into the CSR store — and handed to sink —
// before the next pair is drawn, so the bipartite scratch of one level pair
// is all the extra memory construction ever holds.
func GenerateStream(p Params, r *rng.Rand, sink topology.LevelSink) (*topology.Clos, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sizes := p.LevelSizes()
	half := p.Radix / 2
	c, err := topology.NewEmpty(sizes, half, p.Radix)
	if err != nil {
		return nil, err
	}
	c.SetLevelSink(sink)
	for i := 0; i < p.Levels-1; i++ {
		nA, nB := sizes[i], sizes[i+1]
		dB := nA * half / nB // R/2 below the top pair, R at the top pair
		bp, err := graph.RandomBipartite(nA, half, nB, dB, r)
		if err != nil {
			return nil, fmt.Errorf("core: level %d-%d wiring: %w", i+1, i+2, err)
		}
		e := c.WireLevel(i+1, nA*half)
		for a, ns := range bp.AdjA {
			sa := c.SwitchID(i+1, a)
			for _, b := range ns {
				e.Link(sa, c.SwitchID(i+2, int(b)))
			}
		}
		e.Seal()
	}
	return c, nil
}

// GenerateRoutable repeatedly generates RFCs until one has the
// common-ancestor property required for up/down routing, giving up after
// maxAttempts. It returns the network, its routing state and the number of
// attempts used. At the x = 0 threshold the success probability per attempt
// tends to 1/e, so a handful of attempts suffice (§4.1).
func GenerateRoutable(p Params, maxAttempts int, r *rng.Rand) (*topology.Clos, *routing.UpDown, int, error) {
	if maxAttempts <= 0 {
		maxAttempts = 20
	}
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		// Stream each attempt: descendant sets are compressed level by level
		// while the bipartite wiring of the next level pair is drawn, so an
		// attempt never holds the full graph and full uncompressed state at
		// once. The result is identical to routing.New on the finished
		// topology.
		rs := routing.NewRebuildStream()
		c, err := GenerateStream(p, r, rs)
		if err != nil {
			return nil, nil, attempt, err
		}
		ud := rs.Finish(c)
		if ud.Routable() {
			return c, ud, attempt, nil
		}
	}
	return nil, nil, maxAttempts, fmt.Errorf("%w: %v after %d attempts (x=%.2f, predicted success %.3f)",
		ErrNotRoutable, p, maxAttempts, XParam(p.Radix, p.Leaves, p.Levels),
		SuccessProbability(XParam(p.Radix, p.Leaves, p.Levels)))
}

// EstimateUpDownProbability measures, by Monte Carlo over `trials`
// independently generated RFCs, the empirical probability that every leaf
// pair has a common ancestor. Used to validate Theorem 4.2.
func EstimateUpDownProbability(p Params, trials int, r *rng.Rand) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	ok := 0
	for i := 0; i < trials; i++ {
		c, err := Generate(p, r)
		if err != nil {
			return 0, err
		}
		if routing.New(c).Routable() {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}

// EstimateUpDownProbabilityParallel is EstimateUpDownProbability with the
// trials fanned out on a worker pool. Each trial generates its RFC from a
// stream derived from (seed, trial index), so the estimate is a pure
// function of (p, trials, seed) — identical for any worker count.
// workers <= 0 means one per CPU.
func EstimateUpDownProbabilityParallel(p Params, trials, workers int, seed uint64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	oks, err := engine.Run(trials, workers, func(i int) (bool, error) {
		c, err := Generate(p, rng.At(seed, uint64(i)))
		if err != nil {
			return false, err
		}
		return routing.New(c).Routable(), nil
	})
	if err != nil {
		return 0, err
	}
	ok := 0
	for _, v := range oks {
		if v {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}
