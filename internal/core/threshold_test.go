package core

import (
	"math"
	"testing"
)

func TestMaxLeavesBoundary(t *testing.T) {
	// MaxLeaves is the largest even N1 with N1 ln N1 <= (R/2)^{2(l-1)}:
	// the value itself satisfies the bound, N1+2 must not.
	for _, tc := range []struct{ radix, levels int }{
		{8, 2}, {12, 2}, {16, 3}, {36, 3}, {24, 4},
	} {
		n1 := MaxLeaves(tc.radix, tc.levels)
		budget := math.Pow(float64(tc.radix)/2, 2*float64(tc.levels-1))
		if v := float64(n1) * math.Log(float64(n1)); v > budget {
			t.Errorf("R=%d l=%d: MaxLeaves %d violates its own bound (%v > %v)",
				tc.radix, tc.levels, n1, v, budget)
		}
		next := float64(n1 + 2)
		if v := next * math.Log(next); v <= budget {
			t.Errorf("R=%d l=%d: MaxLeaves %d not maximal (%d also fits)",
				tc.radix, tc.levels, n1, n1+2)
		}
		if n1%2 != 0 {
			t.Errorf("MaxLeaves returned odd %d", n1)
		}
	}
}

func TestThresholdRadixInverse(t *testing.T) {
	// ThresholdRadix and MaxLeaves are near-inverses: using the threshold
	// radix (rounded up to even) for MaxLeaves' output recovers at least
	// that leaf count.
	for _, levels := range []int{2, 3, 4} {
		for _, n1 := range []int{100, 1000, 5000} {
			thr := ThresholdRadix(n1, levels)
			radix := int(math.Ceil(thr))
			if radix%2 != 0 {
				radix++
			}
			if got := MaxLeaves(radix, levels); got < n1 {
				t.Errorf("l=%d N1=%d: threshold radix %d only supports %d leaves",
					levels, n1, radix, got)
			}
		}
	}
}

func TestXParamSignAtThreshold(t *testing.T) {
	// For radix well above the simplified threshold, x must be positive;
	// well below, negative.
	n1, levels := 1000, 3
	thr := ThresholdRadix(n1, levels) // ≈ 2(1000 ln 1000)^(1/4)
	above := 2 * (int(thr/2) + 3)
	below := 2 * (int(thr/2) - 3)
	if x := XParam(above, n1, levels); x <= 0 {
		t.Errorf("x = %v for radix %v above threshold %v", x, above, thr)
	}
	if x := XParam(below, n1, levels); x >= 0 {
		t.Errorf("x = %v for radix %v below threshold %v", x, below, thr)
	}
}

func TestScalabilityFormulaConsistency(t *testing.T) {
	// §4.3: T = (R/2)^{D+1} / ln N1 at the threshold. MaxTerminals should
	// track this within a small factor (the formula drops lower-order
	// terms).
	for _, tc := range []struct{ radix, levels int }{{16, 3}, {36, 3}, {24, 4}} {
		n1 := MaxLeaves(tc.radix, tc.levels)
		d := 2 * (tc.levels - 1)
		formula := math.Pow(float64(tc.radix)/2, float64(d+1)) / math.Log(float64(n1))
		got := float64(MaxTerminals(tc.radix, tc.levels))
		if got < formula*0.9 || got > formula*1.1 {
			t.Errorf("R=%d l=%d: MaxTerminals %v vs formula %v", tc.radix, tc.levels, got, formula)
		}
	}
}

func TestRRNMaxSwitchesBoundary(t *testing.T) {
	n := RRNMaxSwitches(10, 4)
	if v := 2 * float64(n) * math.Log(float64(n)); v > 1e4 {
		t.Errorf("RRNMaxSwitches(10,4) = %d violates 2N ln N <= 10^4 (%v)", n, v)
	}
	next := float64(n + 1)
	if v := 2 * next * math.Log(next); v <= 1e4 {
		t.Errorf("RRNMaxSwitches(10,4) = %d not maximal", n)
	}
}

func TestBisectionBoundsPositive(t *testing.T) {
	if BisectionLowerBoundRRN(100, 6) <= 0 {
		t.Error("RRN bisection bound should be positive for degree 6")
	}
	if BisectionLowerBoundRFC(100, 16, 3) <= 0 {
		t.Error("RFC bisection bound should be positive")
	}
	// Normalized bisection below 1 (these networks are not full-bisection)
	// but comfortably above 1/2 (better than a dragonfly with Valiant,
	// per the §3 discussion).
	for _, levels := range []int{2, 3, 4} {
		nb := NormalizedBisectionRFC(1000, 36, levels)
		if nb <= 0.5 || nb >= 1 {
			t.Errorf("l=%d: normalized bisection %v outside (0.5, 1)", levels, nb)
		}
	}
}
