package core

import "fmt"

// ExpansionStep is one row of an expansion schedule: the network state
// after `Increment` minimal strong expansions, with the §5 cost accounting.
type ExpansionStep struct {
	Increment int // 0 = initial network
	Leaves    int
	Terminals int
	Switches  int
	Wires     int
	// RewiredLinks is the number of existing links this increment
	// re-plugs ((l-1)·R per increment; 0 for the initial row).
	RewiredLinks int
	// CumRewired accumulates RewiredLinks.
	CumRewired int
	// AtThreshold marks the step where the Theorem 4.2 limit is reached:
	// beyond it the network must be weakly expanded (a level added).
	AtThreshold bool
}

// PlanExpansion computes the §5 expansion schedule growing an RFC of the
// given radix and level count from at least fromTerminals to at most
// toTerminals, one minimal increment (R terminals) at a time, flagging
// where the Theorem 4.2 threshold forces a weak expansion. It is purely
// analytic — use Expand to actually rewire a network. Steps are coalesced
// so the schedule has at most maxRows rows (plus the threshold row).
func PlanExpansion(radix, levels, fromTerminals, toTerminals, maxRows int) ([]ExpansionStep, error) {
	p := ParamsForTerminals(radix, levels, fromTerminals)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if toTerminals < p.Terminals() {
		return nil, fmt.Errorf("core: target %d below initial %d", toTerminals, p.Terminals())
	}
	maxLeaves := MaxLeaves(radix, levels)
	perIncrement := (levels - 1) * radix

	totalIncrements := (toTerminals - p.Terminals() + radix - 1) / radix
	if maxRows <= 0 {
		maxRows = 20
	}
	stride := totalIncrements / maxRows
	if stride < 1 {
		stride = 1
	}

	var steps []ExpansionStep
	add := func(inc int) {
		leaves := p.Leaves + 2*inc
		q := Params{Radix: radix, Levels: levels, Leaves: leaves}
		prevCum := 0
		if len(steps) > 0 {
			prevCum = steps[len(steps)-1].CumRewired
		}
		steps = append(steps, ExpansionStep{
			Increment:    inc,
			Leaves:       leaves,
			Terminals:    q.Terminals(),
			Switches:     q.Switches(),
			Wires:        q.Wires(),
			RewiredLinks: perIncrement*inc - prevCum,
			CumRewired:   perIncrement * inc,
			AtThreshold:  leaves >= maxLeaves,
		})
	}
	add(0)
	thresholdFlagged := false
	for inc := stride; inc <= totalIncrements; inc += stride {
		add(inc)
		if steps[len(steps)-1].AtThreshold {
			thresholdFlagged = true
			break
		}
	}
	if !thresholdFlagged && p.Leaves+2*totalIncrements >= maxLeaves {
		thresholdIncs := (maxLeaves - p.Leaves) / 2
		add(thresholdIncs)
	}
	return steps, nil
}
