package core

import (
	"fmt"

	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// Expand applies `increments` minimal strong expansions (§5) to an RFC and
// returns the expanded network along with the number of existing links that
// were rewired. Each increment adds two switches to every level except the
// top, one switch to the top level, and therefore R new compute nodes,
// without touching the level count (the diameter is preserved — strong
// expandability). The input network is not mutated.
//
// Wiring uses the random splice that keeps every existing switch's degree
// intact: for a link (a, b) chosen uniformly among pre-increment links of a
// level pair, (a, b) is removed and (a, newUpper) and (newLower, b) are
// added. R splices per level pair fill the new switches to exactly R/2
// up-links and R/2 down-links (R at the top), so each increment rewires
// (l−1)·R existing links — e.g. five 36-radix increments on a 10K-terminal
// 3-level RFC rewire 360 of ~20,000 links, the paper's 1.8%.
func Expand(c *topology.Clos, increments int, r *rng.Rand) (*topology.Clos, int, error) {
	if increments < 0 {
		return nil, 0, fmt.Errorf("core: negative increments %d", increments)
	}
	l := c.Levels()
	radix := c.Radix
	half := radix / 2
	if c.TermsPerLeaf != half {
		return nil, 0, fmt.Errorf("core: Expand requires a radix-regular RFC (terminals %d != R/2)", c.TermsPerLeaf)
	}
	oldSizes := make([]int, l)
	for i := 1; i <= l; i++ {
		oldSizes[i-1] = c.LevelSize(i)
	}
	newSizes := make([]int, l)
	for i := 0; i < l-1; i++ {
		newSizes[i] = oldSizes[i] + 2*increments
	}
	newSizes[l-1] = oldSizes[l-1] + increments

	out, err := topology.NewEmpty(newSizes, half, radix)
	if err != nil {
		return nil, 0, err
	}
	// Copy existing wiring level pair by level pair; (level, index)
	// identities are preserved. Each pair seals straight into the expanded
	// network's CSR base, so only the splices below go through the overlay.
	for i := 1; i < l; i++ {
		e := out.WireLevel(i, oldSizes[i-1]*half)
		for link := range c.LinkSeq(i) {
			e.Link(out.SwitchID(i, c.IndexInLevel(link.A)),
				out.SwitchID(i+1, c.IndexInLevel(link.B)))
		}
		e.Seal()
	}

	rewired := 0
	for k := 0; k < increments; k++ {
		for i := 1; i < l; i++ {
			// Pre-increment level populations.
			preA := oldSizes[i-1] + 2*k
			var preB, newBCount int
			if i+1 < l {
				preB = oldSizes[i] + 2*k
				newBCount = 2
			} else {
				preB = oldSizes[i] + k
				newBCount = 1
			}
			newA := [2]int32{out.SwitchID(i, preA), out.SwitchID(i, preA+1)}
			newB := [2]int32{out.SwitchID(i+1, preB), 0}
			if newBCount == 2 {
				newB[1] = out.SwitchID(i+1, preB+1)
			}
			n, err := spliceLevelPair(out, i, preA, preB, newA, newB, newBCount, radix, r)
			if err != nil {
				return nil, rewired, err
			}
			rewired += n
		}
	}
	if err := out.ValidateRadixRegular(); err != nil {
		return nil, rewired, fmt.Errorf("core: expansion produced invalid network: %w", err)
	}
	return out, rewired, nil
}

// ExpandRoutable expands like Expand but additionally guarantees the
// result keeps the up/down common-ancestor property, retrying the random
// splicing up to maxAttempts times. Below the Theorem 4.2 threshold this
// succeeds with the probability the theorem gives; at the threshold a few
// attempts suffice, mirroring GenerateRoutable.
func ExpandRoutable(c *topology.Clos, increments, maxAttempts int, r *rng.Rand) (*topology.Clos, *routing.UpDown, int, error) {
	if maxAttempts <= 0 {
		maxAttempts = 10
	}
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		out, rewired, err := Expand(c, increments, r)
		if err != nil {
			return nil, nil, rewired, err
		}
		ud := routing.New(out)
		if ud.Routable() {
			return out, ud, rewired, nil
		}
		lastErr = fmt.Errorf("%w: expansion attempt %d lost up/down routing", ErrNotRoutable, attempt)
	}
	return nil, nil, 0, lastErr
}

// spliceLevelPair performs the R splices wiring one increment's new
// switches between levels i and i+1.
func spliceLevelPair(out *topology.Clos, i, preA, preB int, newA, newB [2]int32, newBCount, radix int, r *rng.Rand) (int, error) {
	rewired := 0
	for s := 0; s < radix; s++ {
		na := newA[s%2]
		nb := newB[s%newBCount]
		a, b, ok := pickOldLink(out, i, preA, preB, na, nb, r)
		if !ok {
			return rewired, fmt.Errorf("core: expansion stuck at level pair %d-%d (network too small?)", i, i+1)
		}
		out.RemoveLink(a, b)
		out.AddLink(a, nb)
		out.AddLink(na, b)
		rewired++
	}
	return rewired, nil
}

// pickOldLink selects a uniform-ish random link (a, b) between pre-increment
// switches of levels i and i+1 such that adding (a, nb) and (na, b) creates
// no parallel links.
func pickOldLink(out *topology.Clos, i, preA, preB int, na, nb int32, r *rng.Rand) (int32, int32, bool) {
	suitable := func(a, b int32) bool {
		if out.IndexInLevel(b) >= preB {
			return false
		}
		return !hasLink(out, a, nb) && !hasLink(out, na, b)
	}
	for try := 0; try < 256; try++ {
		a := out.SwitchID(i, r.Intn(preA))
		ups := out.Up(a)
		if len(ups) == 0 {
			continue
		}
		b := ups[r.Intn(len(ups))]
		if suitable(a, b) {
			return a, b, true
		}
	}
	// Deterministic fallback scan.
	for ai := 0; ai < preA; ai++ {
		a := out.SwitchID(i, ai)
		for _, b := range out.Up(a) {
			if suitable(a, b) {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}

func hasLink(out *topology.Clos, a, b int32) bool {
	for _, v := range out.Up(a) {
		if v == b {
			return true
		}
	}
	return false
}
