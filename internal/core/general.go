package core

import (
	"fmt"

	"rfclos/internal/graph"
	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// GeneralParams describes an arbitrary folded Clos shape per Definition 4.1
// of the paper: any per-level switch counts and up-link degrees, not just
// the radix-regular family. The derived down-degree of level i+1 is
// Sizes[i]*UpDeg[i]/Sizes[i+1], which must divide evenly.
//
// Two named special cases from the paper:
//
//   - the radix-regular RFC (Params) is Sizes = [N1,...,N1,N1/2] and
//     UpDeg = [R/2,...];
//   - the Hashnet of Fahlman (§2, §4) is the unfolding of the RFC with
//     equal switch counts at every level (NewHashnetParams).
type GeneralParams struct {
	// TermsPerLeaf is the number of compute nodes per level-1 switch.
	TermsPerLeaf int
	// Sizes is the switch count per level, leaves first; len >= 2.
	Sizes []int
	// UpDeg[i] is the up-link count of each level-(i+1) switch;
	// len(UpDeg) == len(Sizes)-1.
	UpDeg []int
}

// NewHashnetParams returns the equal-level-size RFC of n switches per
// level and degree d, the folded form of Fahlman's Hashnet.
func NewHashnetParams(n, levels, d, termsPerLeaf int) GeneralParams {
	sizes := make([]int, levels)
	up := make([]int, levels-1)
	for i := range sizes {
		sizes[i] = n
	}
	for i := range up {
		up[i] = d
	}
	return GeneralParams{TermsPerLeaf: termsPerLeaf, Sizes: sizes, UpDeg: up}
}

// Validate checks feasibility: positive sizes and degrees, even link
// balance between adjacent levels and degrees not exceeding the opposite
// level's size (simple bipartite graphs must exist).
func (p GeneralParams) Validate() error {
	if len(p.Sizes) < 2 {
		return fmt.Errorf("core: general RFC needs >= 2 levels, got %d", len(p.Sizes))
	}
	if len(p.UpDeg) != len(p.Sizes)-1 {
		return fmt.Errorf("core: need %d up-degrees, got %d", len(p.Sizes)-1, len(p.UpDeg))
	}
	if p.TermsPerLeaf <= 0 {
		return fmt.Errorf("core: non-positive terminals per leaf %d", p.TermsPerLeaf)
	}
	for i, n := range p.Sizes {
		if n <= 0 {
			return fmt.Errorf("core: level %d has non-positive size %d", i+1, n)
		}
	}
	for i, u := range p.UpDeg {
		if u <= 0 {
			return fmt.Errorf("core: level %d has non-positive up-degree %d", i+1, u)
		}
		links := p.Sizes[i] * u
		if links%p.Sizes[i+1] != 0 {
			return fmt.Errorf("core: level %d-%d link count %d does not divide level size %d",
				i+1, i+2, links, p.Sizes[i+1])
		}
		down := links / p.Sizes[i+1]
		if u > p.Sizes[i+1] {
			return fmt.Errorf("core: level %d up-degree %d exceeds level %d size %d",
				i+1, u, i+2, p.Sizes[i+1])
		}
		if down > p.Sizes[i] {
			return fmt.Errorf("core: level %d down-degree %d exceeds level %d size %d",
				i+2, down, i+1, p.Sizes[i])
		}
	}
	return nil
}

// DownDeg returns the derived down-degree of level i+2 switches (i indexes
// the level pair, 0-based).
func (p GeneralParams) DownDeg(i int) int {
	return p.Sizes[i] * p.UpDeg[i] / p.Sizes[i+1]
}

// Terminals returns the terminal count.
func (p GeneralParams) Terminals() int { return p.Sizes[0] * p.TermsPerLeaf }

// MaxRadix returns the largest port count any switch uses.
func (p GeneralParams) MaxRadix() int {
	max := p.TermsPerLeaf + p.UpDeg[0]
	l := len(p.Sizes)
	for i := 1; i < l; i++ {
		ports := p.DownDeg(i - 1)
		if i < l-1 {
			ports += p.UpDeg[i]
		}
		if ports > max {
			max = ports
		}
	}
	return max
}

// GenerateGeneral builds one uniformly random folded Clos with the given
// general parameters (Definition 4.1), wiring each adjacent level pair with
// an independent random bipartite graph.
func GenerateGeneral(p GeneralParams, r *rng.Rand) (*topology.Clos, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c, err := topology.NewEmpty(p.Sizes, p.TermsPerLeaf, p.MaxRadix())
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(p.Sizes)-1; i++ {
		bp, err := graph.RandomBipartite(p.Sizes[i], p.UpDeg[i], p.Sizes[i+1], p.DownDeg(i), r)
		if err != nil {
			return nil, fmt.Errorf("core: level %d-%d wiring: %w", i+1, i+2, err)
		}
		e := c.WireLevel(i+1, p.Sizes[i]*p.UpDeg[i])
		for a, ns := range bp.AdjA {
			sa := c.SwitchID(i+1, a)
			for _, b := range ns {
				e.Link(sa, c.SwitchID(i+2, int(b)))
			}
		}
		e.Seal()
	}
	return c, nil
}

// RandomKaryTreeParams returns the general parameters of a random k-ary
// l-tree (the constructions of Bassalygo–Pinsker and Upfal the paper cites):
// k^{l-1} switches per level, k terminals per leaf, up-degree k everywhere.
func RandomKaryTreeParams(k, levels int) GeneralParams {
	n := 1
	for i := 0; i < levels-1; i++ {
		n *= k
	}
	return NewHashnetParams(n, levels, k, k)
}
