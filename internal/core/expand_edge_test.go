package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"rfclos/internal/engine"
	"rfclos/internal/rng"
	"rfclos/internal/topology"
)

// Theorem 4.2 boundary fixture: radix 8, levels 3 gives MaxLeaves = 62, so
// a 60-leaf base network is exactly one minimal increment (+2 leaves) below
// the threshold.
const (
	edgeRadix  = 8
	edgeLevels = 3
)

func edgeBase(t *testing.T) *topology.Clos {
	t.Helper()
	maxLeaves := MaxLeaves(edgeRadix, edgeLevels)
	p := Params{Radix: edgeRadix, Levels: edgeLevels, Leaves: maxLeaves - 2}
	c, _, _, err := GenerateRoutable(p, 50, rng.New(11))
	if err != nil {
		t.Fatalf("generate %v: %v", p, err)
	}
	return c
}

// linkFingerprint hashes the sorted link list, a stable identity for a
// wiring.
func linkFingerprint(c *topology.Clos) uint64 {
	links := c.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	h := uint64(0)
	for _, l := range links {
		h = rng.DeriveSeed(h, uint64(l.A), uint64(l.B))
	}
	return h
}

// TestExpandToThreshold grows a network to land exactly on the Theorem 4.2
// ceiling: the expansion must stay structurally valid, rewire exactly
// (l-1)*R links per increment, and (being at, not past, the threshold)
// remain routable within a few attempts.
func TestExpandToThreshold(t *testing.T) {
	maxLeaves := MaxLeaves(edgeRadix, edgeLevels)
	base := edgeBase(t)
	if got := base.LevelSize(1); got != maxLeaves-2 {
		t.Fatalf("base has %d leaves, want %d", got, maxLeaves-2)
	}
	out, ud, rewired, err := ExpandRoutable(base, 1, 10, rng.At(11, rng.StringCoord("expand-edge"), 1))
	if err != nil {
		t.Fatalf("expansion onto the threshold failed: %v", err)
	}
	if got := out.LevelSize(1); got != maxLeaves {
		t.Errorf("expanded to %d leaves, want the threshold %d", got, maxLeaves)
	}
	if want := (edgeLevels - 1) * edgeRadix; rewired != want {
		t.Errorf("rewired %d links, want (l-1)*R = %d", rewired, want)
	}
	if !ud.Routable() {
		t.Error("ExpandRoutable returned an unroutable network")
	}
	if got, want := out.Terminals(), base.Terminals()+edgeRadix; got != want {
		t.Errorf("terminals = %d, want %d (+R per increment)", got, want)
	}
	if err := out.ValidateRadixRegular(); err != nil {
		t.Errorf("threshold network not radix-regular: %v", err)
	}
}

// TestExpandPastThreshold goes one increment beyond MaxLeaves. The
// structural expansion must still succeed (the theorem bounds routability,
// not realizability); routability is permitted to fail, and when
// ExpandRoutable gives up it must report ErrNotRoutable rather than a
// mangled network.
func TestExpandPastThreshold(t *testing.T) {
	maxLeaves := MaxLeaves(edgeRadix, edgeLevels)
	base := edgeBase(t)

	out, rewired, err := Expand(base, 2, rng.At(11, rng.StringCoord("expand-edge-past"), 2))
	if err != nil {
		t.Fatalf("structural expansion past the threshold failed: %v", err)
	}
	if got := out.LevelSize(1); got != maxLeaves+2 {
		t.Errorf("expanded to %d leaves, want %d (one past threshold)", got, maxLeaves+2)
	}
	if want := 2 * (edgeLevels - 1) * edgeRadix; rewired != want {
		t.Errorf("rewired %d links, want %d", rewired, want)
	}
	if err := out.ValidateRadixRegular(); err != nil {
		t.Errorf("past-threshold network not radix-regular: %v", err)
	}

	// ExpandRoutable may succeed (the threshold is probabilistic, not sharp)
	// but on failure the error must be classifiable.
	if _, _, _, err := ExpandRoutable(base, 2, 3, rng.At(11, rng.StringCoord("expand-edge-past-routable"), 2)); err != nil {
		if !errors.Is(err, ErrNotRoutable) {
			t.Errorf("past-threshold failure is %v, want ErrNotRoutable", err)
		}
	}
}

// TestPlanExpansionThresholdBoundary pins the AtThreshold flag in the
// analytic schedule: rows strictly below MaxLeaves are unflagged, the row
// reaching it is flagged, and the schedule never silently skips the
// boundary.
func TestPlanExpansionThresholdBoundary(t *testing.T) {
	maxLeaves := MaxLeaves(edgeRadix, edgeLevels)
	from := Params{Radix: edgeRadix, Levels: edgeLevels, Leaves: maxLeaves - 4}
	beyond := Params{Radix: edgeRadix, Levels: edgeLevels, Leaves: maxLeaves + 6}
	steps, err := PlanExpansion(edgeRadix, edgeLevels, from.Terminals(), beyond.Terminals(), 100)
	if err != nil {
		t.Fatal(err)
	}
	sawThreshold := false
	for _, s := range steps {
		if s.Leaves < maxLeaves && s.AtThreshold {
			t.Errorf("row at %d leaves flagged AtThreshold below the %d-leaf ceiling", s.Leaves, maxLeaves)
		}
		if s.Leaves >= maxLeaves {
			if !s.AtThreshold {
				t.Errorf("row at %d leaves not flagged AtThreshold (ceiling %d)", s.Leaves, maxLeaves)
			}
			sawThreshold = true
		}
	}
	if !sawThreshold {
		t.Fatalf("schedule from %d to %d leaves never reached the threshold row", from.Leaves, beyond.Leaves)
	}
	last := steps[len(steps)-1]
	if last.Leaves != maxLeaves {
		t.Errorf("schedule stops at %d leaves, want it truncated at the threshold %d", last.Leaves, maxLeaves)
	}
}

// TestExpandDeterministicAcrossWorkers runs the same per-increment
// expansion jobs under different engine worker counts and requires
// identical wirings: each job derives its stream from its own coordinates,
// so scheduling cannot leak into results.
func TestExpandDeterministicAcrossWorkers(t *testing.T) {
	base := edgeBase(t)
	const jobs = 4
	run := func(workers int) []uint64 {
		t.Helper()
		prints, err := engine.Run(jobs, workers, func(job int) (uint64, error) {
			inc := job + 1
			out, _, err := Expand(base, inc, rng.At(11, rng.StringCoord("expand-workers"), uint64(inc)))
			if err != nil {
				return 0, fmt.Errorf("job %d: %w", job, err)
			}
			return linkFingerprint(out), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return prints
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("job %d fingerprint differs across worker counts: %x vs %x", i, serial[i], parallel[i])
		}
	}
	// And the fingerprints are distinct across increments (the jobs really
	// did different work).
	seen := map[uint64]bool{}
	for _, f := range serial {
		if seen[f] {
			t.Error("two increments produced identical wirings")
		}
		seen[f] = true
	}
}
