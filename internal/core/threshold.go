package core

import "math"

// This file implements the Theorem 4.2 threshold: with Δ = R/2 and
//
//	Δ = (N_l (ln C(N_1,2) + x))^(1/(2(l-1)))
//
// the probability that every pair of leaves shares a common ancestor (and
// hence that up/down routing exists) tends to exp(-exp(-x)). The paper
// simplifies the x = 0 threshold to R = 2 (N_1 ln N_1)^(1/(2(l-1))) using
// N_l ln C(N_1,2) ≈ N_1 (ln N_1 - ln2/2) with N_l = N_1/2.

// ThresholdRadix returns the paper's simplified sharp threshold radix
// 2 (N1 ln N1)^(1/(2(l-1))) for an l-level RFC with N1 leaf switches.
func ThresholdRadix(n1, levels int) float64 {
	if n1 < 2 {
		return 0
	}
	d := 2 * float64(levels-1)
	return 2 * math.Pow(float64(n1)*math.Log(float64(n1)), 1/d)
}

// ThresholdRadixExact returns the unsimplified Theorem 4.2 radix at offset
// x: 2 (N_l (ln C(N1,2) + x))^(1/(2(l-1))) with N_l = N1/2.
func ThresholdRadixExact(n1, levels int, x float64) float64 {
	if n1 < 2 {
		return 0
	}
	nl := float64(n1) / 2
	arg := nl * (lnBinom2(n1) + x)
	if arg <= 0 {
		return 0
	}
	d := 2 * float64(levels-1)
	return 2 * math.Pow(arg, 1/d)
}

// XParam inverts Theorem 4.2: it returns the offset x implied by using
// radix R on an l-level RFC with N1 leaves, i.e. x = Δ^{2(l-1)}/N_l −
// ln C(N1,2). Positive x means the network sits above the threshold
// (routability probability near 1), negative below.
func XParam(radix, n1, levels int) float64 {
	delta := float64(radix) / 2
	nl := float64(n1) / 2
	return math.Pow(delta, 2*float64(levels-1))/nl - lnBinom2(n1)
}

// SuccessProbability returns the Theorem 4.2 limit probability
// exp(-exp(-x)) that a generated RFC has up/down routing.
func SuccessProbability(x float64) float64 {
	return math.Exp(-math.Exp(-x))
}

// MaxLeaves returns the largest even N1 such that the simplified threshold
// holds, i.e. N1 ln N1 <= (R/2)^{2(l-1)}. This is the maximum size at which
// an l-level radix-R RFC is realizable with up/down routing with
// non-vanishing probability (§4.2).
func MaxLeaves(radix, levels int) int {
	budget := math.Pow(float64(radix)/2, 2*float64(levels-1))
	lo, hi := 2, 1<<40
	for lo < hi {
		mid := (lo + hi + 1) / 2
		v := float64(mid) * math.Log(float64(mid))
		if v <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo%2 != 0 {
		lo--
	}
	if lo < 2 {
		lo = 2
	}
	return lo
}

// MaxTerminals returns the terminal count of the largest realizable
// l-level radix-R RFC: MaxLeaves * R/2.
func MaxTerminals(radix, levels int) int {
	return MaxLeaves(radix, levels) * radix / 2
}

// RRNMaxSwitches returns the largest N such that a Δ-regular random network
// reaches diameter D, using the paper's Δ^D ≈ 2 N ln N rule (§4).
func RRNMaxSwitches(degree, diameter int) int {
	budget := math.Pow(float64(degree), float64(diameter))
	lo, hi := 2, 1<<40
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if 2*float64(mid)*math.Log(float64(mid)) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// BisectionLowerBoundRRN returns the Bollobás lower bound on the bisection
// width of a Δ-regular random graph on N vertices:
// N/2 (Δ/2 − sqrt(Δ ln 2)).
func BisectionLowerBoundRRN(n, degree int) float64 {
	d := float64(degree)
	return float64(n) / 2 * (d/2 - math.Sqrt(d*math.Ln2))
}

// BisectionLowerBoundRFC returns the paper's §4.2 bound for an RFC:
// N1/4 ((l−1)R − sqrt(2(l−1)R ln 2)), obtained by applying Bollobás to the
// multigraph that merges pairs of switches across levels.
func BisectionLowerBoundRFC(n1, radix, levels int) float64 {
	lr := float64(levels-1) * float64(radix)
	return float64(n1) / 4 * (lr - math.Sqrt(2*lr*math.Ln2))
}

// NormalizedBisectionRFC divides the RFC bisection bound by the uniform-load
// demand on the cut. Each of the T/2 = N1 R/4 terminals in one half sends
// across, and an average up/down path traverses the bisection l−1 times
// (§4.2), so full rate needs N1 R (l−1)/4 crossings.
func NormalizedBisectionRFC(n1, radix, levels int) float64 {
	demand := float64(n1) * float64(radix) * float64(levels-1) / 4
	return BisectionLowerBoundRFC(n1, radix, levels) / demand
}

// NormalizedBisectionRRN divides the RRN bound by its demand: N/2 switches
// × Δ/D terminals each... the paper normalises by terminals in one half
// times average bisection traversals (~1 for a well-balanced RRN under
// shortest routing with D ≈ average distance). Following §4.2's quoted
// numbers, the normalisation is bound / (terminals_half):
func NormalizedBisectionRRN(n, degree, termsPerSwitch int) float64 {
	demand := float64(n) / 2 * float64(termsPerSwitch)
	return BisectionLowerBoundRRN(n, degree) / demand
}
