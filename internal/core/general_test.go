package core

import (
	"testing"

	"rfclos/internal/rng"
	"rfclos/internal/routing"
)

func TestGeneralParamsValidate(t *testing.T) {
	good := GeneralParams{TermsPerLeaf: 4, Sizes: []int{12, 8, 6}, UpDeg: []int{4, 3}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid general params rejected: %v", err)
	}
	bad := []GeneralParams{
		{TermsPerLeaf: 4, Sizes: []int{12}, UpDeg: nil},                // one level
		{TermsPerLeaf: 4, Sizes: []int{12, 8}, UpDeg: []int{4, 3}},     // degree count
		{TermsPerLeaf: 0, Sizes: []int{12, 8}, UpDeg: []int{4}},        // no terminals
		{TermsPerLeaf: 4, Sizes: []int{12, 8}, UpDeg: []int{5}},        // 60 % 8 != 0
		{TermsPerLeaf: 4, Sizes: []int{12, 8}, UpDeg: []int{9}},        // up-degree > level above
		{TermsPerLeaf: 4, Sizes: []int{4, 16}, UpDeg: []int{8}},        // down-degree 2 fine... adjusted below
		{TermsPerLeaf: 4, Sizes: []int{2, 16, 2}, UpDeg: []int{16, 1}}, // up 16 > size16 ok? equals; 2*16/16=2 down> size1? no... make invalid: see next
		{TermsPerLeaf: 4, Sizes: []int{2, 1}, UpDeg: []int{2}},         // up 2 > size 1
	}
	for i, p := range bad {
		if i == 5 || i == 6 {
			continue // constructed cases that are actually feasible; skip
		}
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) should fail validation", i, p)
		}
	}
}

func TestGenerateGeneralUnequalLevels(t *testing.T) {
	// A tapered folded Clos: 16 leaves, 8 mid switches, 4 roots.
	p := GeneralParams{TermsPerLeaf: 2, Sizes: []int{16, 8, 4}, UpDeg: []int{3, 2}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	c, err := GenerateGeneral(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	if c.Terminals() != 32 {
		t.Errorf("terminals = %d, want 32", c.Terminals())
	}
	// Degree checks: leaves 3 up; mid 16*3/8 = 6 down, 2 up; roots 8*2/4 =
	// 4 down.
	if got := len(c.Up(c.SwitchID(1, 0))); got != 3 {
		t.Errorf("leaf up-degree = %d, want 3", got)
	}
	mid := c.SwitchID(2, 0)
	if len(c.Down(mid)) != 6 || len(c.Up(mid)) != 2 {
		t.Errorf("mid degrees = %d down / %d up, want 6/2", len(c.Down(mid)), len(c.Up(mid)))
	}
	if got := len(c.Down(c.SwitchID(3, 0))); got != 4 {
		t.Errorf("root down-degree = %d, want 4", got)
	}
	// Routing machinery works on general shapes too.
	ud := routing.New(c)
	_ = ud.Routable()
}

func TestHashnetParams(t *testing.T) {
	p := NewHashnetParams(16, 3, 4, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Terminals() != 64 || p.MaxRadix() != 8 {
		t.Errorf("hashnet: T=%d radix=%d", p.Terminals(), p.MaxRadix())
	}
	c, err := GenerateGeneral(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Equal level sizes, degree 4 both ways in the middle.
	for lev := 1; lev <= 3; lev++ {
		if c.LevelSize(lev) != 16 {
			t.Errorf("level %d size = %d, want 16", lev, c.LevelSize(lev))
		}
	}
}

func TestRandomKaryTreeParams(t *testing.T) {
	p := RandomKaryTreeParams(3, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3-ary 3-tree: 9 switches/level, 27 terminals, like the k-ary l-tree.
	if p.Sizes[0] != 9 || p.Terminals() != 27 {
		t.Errorf("random 3-ary 3-tree: sizes=%v T=%d", p.Sizes, p.Terminals())
	}
	c, err := GenerateGeneral(p, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSwitches() != 27 {
		t.Errorf("switches = %d, want 27", c.NumSwitches())
	}
}

func TestPlanExpansion(t *testing.T) {
	steps, err := PlanExpansion(36, 3, 11664, 202572, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 5 {
		t.Fatalf("too few steps: %d", len(steps))
	}
	first, last := steps[0], steps[len(steps)-1]
	if first.Terminals < 11664 || first.Increment != 0 || first.RewiredLinks != 0 {
		t.Errorf("first step wrong: %+v", first)
	}
	// The schedule must reach the Theorem 4.2 threshold region (§5's 200K
	// maximum) and flag it.
	if !last.AtThreshold {
		t.Errorf("last step not at threshold: %+v", last)
	}
	if last.Terminals < 200000 {
		t.Errorf("schedule stops at %d terminals, want ≈202K", last.Terminals)
	}
	// Monotonicity and accounting.
	for i := 1; i < len(steps); i++ {
		s, prev := steps[i], steps[i-1]
		if s.Terminals <= prev.Terminals || s.CumRewired != prev.CumRewired+s.RewiredLinks {
			t.Errorf("step %d inconsistent: %+v after %+v", i, s, prev)
		}
		// Each increment rewires (l-1)·R = 72 links.
		incs := s.Increment - prev.Increment
		if s.RewiredLinks != 72*incs {
			t.Errorf("step %d rewired %d, want %d", i, s.RewiredLinks, 72*incs)
		}
	}
}

func TestPlanExpansionErrors(t *testing.T) {
	if _, err := PlanExpansion(36, 3, 11664, 100, 10); err == nil {
		t.Error("shrinking plan should fail")
	}
	if _, err := PlanExpansion(7, 3, 100, 200, 10); err == nil {
		t.Error("odd radix should fail")
	}
}

func TestExpandRoutable(t *testing.T) {
	r := rng.New(81)
	p := Params{Radix: 8, Levels: 3, Leaves: 16}
	c, _, _, err := GenerateRoutable(p, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	out, ud, rewired, err := ExpandRoutable(c, 2, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ud.Routable() {
		t.Error("ExpandRoutable returned unroutable network")
	}
	if out.Terminals() != c.Terminals()+16 || rewired != 2*2*8 {
		t.Errorf("expansion accounting: T=%d rewired=%d", out.Terminals(), rewired)
	}
}
