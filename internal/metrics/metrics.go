// Package metrics provides the latency and throughput accounting used by
// the network simulator and the experiment harness: streaming summaries,
// logarithmic latency histograms with quantile estimates, and multi-run
// aggregation.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations.
type Summary struct {
	N        int
	Sum      float64
	SumSq    float64
	Min, Max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += v
	s.SumSq += v * v
}

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// StdDev returns the sample standard deviation (0 for fewer than 2 points).
func (s *Summary) StdDev() float64 {
	if s.N < 2 {
		return 0
	}
	mean := s.Mean()
	v := (s.SumSq - float64(s.N)*mean*mean) / float64(s.N-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Merge folds other into s.
func (s *Summary) Merge(other Summary) {
	if other.N == 0 {
		return
	}
	if s.N == 0 {
		*s = other
		return
	}
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.N += other.N
	s.Sum += other.Sum
	s.SumSq += other.SumSq
}

// Histogram is a logarithmic-bucket histogram for positive integer latency
// values (cycles). Bucket b holds values in [2^b, 2^(b+1)); values of 0 go
// to bucket 0 alongside 1.
type Histogram struct {
	buckets [40]int64
	sum     Summary
}

// Add records a latency observation in cycles.
func (h *Histogram) Add(cycles int) {
	if cycles < 0 {
		cycles = 0
	}
	h.sum.Add(float64(cycles))
	b := 0
	for v := cycles; v > 1; v >>= 1 {
		b++
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
}

// N returns the number of recorded observations.
func (h *Histogram) N() int { return h.sum.N }

// Mean returns the mean latency.
func (h *Histogram) Mean() float64 { return h.sum.Mean() }

// Max returns the largest recorded latency.
func (h *Histogram) Max() float64 { return h.sum.Max }

// Quantile returns an upper-bound estimate of quantile q (0 < q <= 1) from
// the bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.sum.N == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.sum.N)))
	var acc int64
	for b, c := range h.buckets {
		acc += c
		if acc >= target {
			return float64(int64(1) << uint(b+1)) // bucket upper bound
		}
	}
	return h.sum.Max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.sum.Merge(other.sum)
}

// Series is a named sequence of (x, y) points with optional y spread,
// the unit the experiment harness emits for each curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement: X is the sweep coordinate (offered load, faults,
// terminal count...), Y the response, and YErr an optional spread (stddev
// across repetitions).
type Point struct {
	X, Y, YErr float64
}

// Add appends a point.
func (s *Series) Add(x, y, yerr float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, YErr: yerr})
}

// Sort orders points by X.
func (s *Series) Sort() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Format renders the series as aligned text rows: name, x, y, yerr.
func (s *Series) Format() string {
	out := ""
	for _, p := range s.Points {
		out += fmt.Sprintf("%-28s %12.4f %12.4f %12.4f\n", s.Name, p.X, p.Y, p.YErr)
	}
	return out
}
