// Package metrics provides the latency and throughput accounting used by
// the network simulator and the experiment harness: streaming summaries,
// logarithmic latency histograms with quantile estimates, and multi-run
// aggregation.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations.
type Summary struct {
	N        int
	Sum      float64
	SumSq    float64
	Min, Max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += v
	s.SumSq += v * v
}

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// StdDev returns the sample standard deviation (0 for fewer than 2 points).
func (s *Summary) StdDev() float64 {
	if s.N < 2 {
		return 0
	}
	mean := s.Mean()
	v := (s.SumSq - float64(s.N)*mean*mean) / float64(s.N-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Merge folds other into s.
func (s *Summary) Merge(other Summary) {
	if other.N == 0 {
		return
	}
	if s.N == 0 {
		*s = other
		return
	}
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.N += other.N
	s.Sum += other.Sum
	s.SumSq += other.SumSq
}

// Histogram is a logarithmic-bucket histogram for positive integer latency
// values (cycles). Bucket b holds values in [2^b, 2^(b+1)); values of 0 go
// to bucket 0 alongside 1.
type Histogram struct {
	buckets [40]int64
	sum     Summary
}

// Add records a latency observation in cycles.
func (h *Histogram) Add(cycles int) {
	if cycles < 0 {
		cycles = 0
	}
	h.sum.Add(float64(cycles))
	b := 0
	for v := cycles; v > 1; v >>= 1 {
		b++
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
}

// N returns the number of recorded observations.
func (h *Histogram) N() int { return h.sum.N }

// Mean returns the mean latency.
func (h *Histogram) Mean() float64 { return h.sum.Mean() }

// Max returns the largest recorded latency.
func (h *Histogram) Max() float64 { return h.sum.Max }

// Quantile returns an upper-bound estimate of quantile q (0 < q <= 1) from
// the bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.sum.N == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.sum.N)))
	var acc int64
	for b, c := range h.buckets {
		acc += c
		if acc >= target {
			return float64(int64(1) << uint(b+1)) // bucket upper bound
		}
	}
	return h.sum.Max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.sum.Merge(other.sum)
}

// Series is a named sequence of (x, y) points with optional y spread,
// the unit the experiment harness emits for each curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement: X is the sweep coordinate (offered load, faults,
// terminal count...), Y the response, and YErr an optional spread (stddev
// across repetitions).
type Point struct {
	X, Y, YErr float64
}

// Add appends a point.
func (s *Series) Add(x, y, yerr float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, YErr: yerr})
}

// Sort orders points by X.
func (s *Series) Sort() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Format renders the series as aligned text rows: name, x, y, yerr.
func (s *Series) Format() string {
	out := ""
	for _, p := range s.Points {
		out += fmt.Sprintf("%-28s %12.4f %12.4f %12.4f\n", s.Name, p.X, p.Y, p.YErr)
	}
	return out
}

// Collector aggregates per-job observations into one Summary per distinct
// sweep coordinate x. It is the merge stage of the parallel experiment
// engine: jobs (one per repetition per sweep point) run in any order across
// workers, and the collector folds their results into per-point statistics
// whose values do not depend on completion order.
//
// Determinism of the emitted Series ordering comes from feeding observations
// in job-index order (engine.Run returns results indexed by job), which
// fixes the first-seen order of the x keys; the aggregated values themselves
// are order-independent (Summary.Merge is commutative in the quantities
// Series reports). The zero value is ready to use. A Collector is not safe
// for concurrent use — collect after the parallel phase, not during it.
type Collector struct {
	order []float64
	sums  map[float64]*Summary
}

// Add records one observation y at sweep coordinate x.
func (c *Collector) Add(x, y float64) {
	s := c.at(x)
	s.Add(y)
}

// AddSummary folds a pre-aggregated per-job Summary into coordinate x,
// for jobs that already reduce several observations internally.
func (c *Collector) AddSummary(x float64, s Summary) {
	c.at(x).Merge(s)
}

func (c *Collector) at(x float64) *Summary {
	if c.sums == nil {
		c.sums = make(map[float64]*Summary)
	}
	s, ok := c.sums[x]
	if !ok {
		s = &Summary{}
		c.sums[x] = s
		c.order = append(c.order, x)
	}
	return s
}

// Merge folds other into c: summaries at shared coordinates are merged,
// new coordinates are appended in other's order. The aggregated values are
// independent of the order in which collectors are merged.
func (c *Collector) Merge(other *Collector) {
	for _, x := range other.order {
		c.at(x).Merge(*other.sums[x])
	}
}

// Series renders the collected statistics as a named series: one point per
// distinct x in first-Add order, with Y the mean and YErr the sample
// standard deviation across that coordinate's observations.
func (c *Collector) Series(name string) Series {
	s := Series{Name: name}
	for _, x := range c.order {
		sum := c.sums[x]
		s.Add(x, sum.Mean(), sum.StdDev())
	}
	return s
}
