package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N != 5 || s.Mean() != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary wrong: %+v mean=%v", s, s.Mean())
	}
	if sd := s.StdDev(); math.Abs(sd-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v, want sqrt(2.5)", sd)
	}
	var empty Summary
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Error("empty summary should yield zeros")
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, whole Summary
	for i := 1; i <= 10; i++ {
		whole.Add(float64(i))
		if i <= 5 {
			a.Add(float64(i))
		} else {
			b.Add(float64(i))
		}
	}
	a.Merge(b)
	if a.N != whole.N || a.Mean() != whole.Mean() || a.Min != whole.Min || a.Max != whole.Max {
		t.Errorf("merge mismatch: %+v vs %+v", a, whole)
	}
	var empty Summary
	empty.Merge(a)
	if empty.N != a.N {
		t.Error("merge into empty failed")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(i)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	// Median of 1..1000 is ~500; bucket upper bound estimate gives 512.
	if q := h.Quantile(0.5); q != 512 {
		t.Errorf("median estimate = %v, want 512", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Errorf("q100 = %v, want >= 1000", q)
	}
	h.Add(-5) // clamped to zero
	if h.N() != 1001 {
		t.Error("negative value not recorded")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Add(10)
		b.Add(1000)
	}
	a.Merge(&b)
	if a.N() != 200 {
		t.Fatalf("merged N = %d", a.N())
	}
	if m := a.Mean(); math.Abs(m-505) > 1e-9 {
		t.Errorf("merged mean = %v", m)
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "cft-uniform"}
	s.Add(0.5, 0.49, 0.01)
	s.Add(0.1, 0.1, 0)
	s.Sort()
	if s.Points[0].X != 0.1 {
		t.Error("sort failed")
	}
	out := s.Format()
	if !strings.Contains(out, "cft-uniform") || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("format output unexpected: %q", out)
	}
}
