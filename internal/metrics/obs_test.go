package metrics

import (
	"math"
	"testing"
)

func TestMergeObsDedupesAndSorts(t *testing.T) {
	a := []Obs{{Job: 4, V: 4}, {Job: 0, V: 0}}
	b := []Obs{{Job: 2, V: 2}, {Job: 4, V: 4}, {Job: 1, V: 1}}
	got := MergeObs(a, b)
	want := []Obs{{0, 0}, {1, 1}, {2, 2}, {4, 4}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestSummarizeObsMatchesSequentialOrder pins the byte-compatibility
// contract: re-summing job-ordered observations must reproduce bit-exactly
// the moments of a sequential accumulation, even for values whose sum
// depends on addition order.
func TestSummarizeObsMatchesSequentialOrder(t *testing.T) {
	vals := []float64{1e16, 3.14159, -1e16, 2.71828, 1e-8, 0.5}
	var seq Summary
	for _, v := range vals {
		seq.Add(v)
	}
	// Feed the same values out of order, tagged with their sequential index.
	shuffled := []Obs{{3, vals[3]}, {0, vals[0]}, {5, vals[5]}, {1, vals[1]}, {4, vals[4]}, {2, vals[2]}}
	got := SummarizeObs(shuffled)
	if got.N != seq.N || got.Sum != seq.Sum || got.SumSq != seq.SumSq {
		t.Errorf("SummarizeObs = {N:%d Sum:%v SumSq:%v}, sequential {N:%d Sum:%v SumSq:%v}",
			got.N, got.Sum, got.SumSq, seq.N, seq.Sum, seq.SumSq)
	}
	if math.Float64bits(got.Mean()) != math.Float64bits(seq.Mean()) {
		t.Errorf("Mean() not bit-identical: %x vs %x",
			math.Float64bits(got.Mean()), math.Float64bits(seq.Mean()))
	}
}

func TestJobCollector(t *testing.T) {
	var c JobCollector
	// Expect the full grid, observe only "shard 0" (even jobs).
	xs := []float64{0.2, 0.6}
	for i := 0; i < 4; i++ {
		x := xs[i/2]
		c.Expect(x)
		if i%2 == 0 {
			c.Observe(x, i, float64(i))
		}
	}
	coords := c.Coords()
	if len(coords) != 2 || coords[0] != 0.2 || coords[1] != 0.6 {
		t.Fatalf("Coords() = %v, want [0.2 0.6] in first-Expect order", coords)
	}
	obs, want := c.At(0.2)
	if want != 2 {
		t.Errorf("At(0.2) want = %d, expected 2", want)
	}
	if len(obs) != 1 || obs[0] != (Obs{Job: 0, V: 0}) {
		t.Errorf("At(0.2) obs = %v", obs)
	}
	if obs, want := c.At(99.0); obs != nil || want != 0 {
		t.Errorf("At(unknown) = %v, %d; want nil, 0", obs, want)
	}
}
