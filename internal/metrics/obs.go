// Job-indexed observations: the mergeable unit behind sharded sweeps.
//
// A sweep's aggregates (mean, stddev) must come out byte-identical whether
// the jobs ran in one process or were split across shards and merged later.
// Floating-point addition is not associative, so carrying only (count, sum,
// sumsq) per shard is not enough — merging two partial sums changes the
// addition order and can flip the last bit of a mean. Instead each
// observation keeps the index of the job that produced it; re-summarizing
// the merged set in job-index order reproduces exactly the addition order of
// the unsharded run, and therefore exactly its bytes.
package metrics

import "sort"

// Obs is one observation tagged with the index of the job that produced it
// within its exhibit's deterministic job grid.
type Obs struct {
	Job int
	V   float64
}

// MergeObs combines observation sets from different shards: the union,
// deduplicated by job index, in ascending job order. Duplicate job indices
// are legal (overlapping shards recompute identical values — jobs are pure
// functions of their coordinates) and collapse to a single entry.
func MergeObs(sets ...[]Obs) []Obs {
	var all []Obs
	for _, s := range sets {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Job < all[j].Job })
	out := all[:0]
	for i, o := range all {
		if i > 0 && out[len(out)-1].Job == o.Job {
			continue
		}
		out = append(out, o)
	}
	return out
}

// SummarizeObs folds the observations into a Summary in ascending job-index
// order, the order an unsharded run feeds its accumulators, so the resulting
// moments are bit-identical to the unsharded ones.
func SummarizeObs(obs []Obs) Summary {
	sorted := make([]Obs, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Job < sorted[j].Job })
	var s Summary
	for _, o := range sorted {
		s.Add(o.V)
	}
	return s
}

// JobCollector aggregates job-indexed observations per sweep coordinate x,
// the shard-aware successor of Collector: Expect registers that a job feeds
// coordinate x (run or not — it sizes the completeness contract), Observe
// records the value of a job this process actually ran. Coordinates keep
// first-Expect order, like Collector. The zero value is ready to use.
type JobCollector struct {
	order []float64
	cells map[float64]*jobCell
}

type jobCell struct {
	want int
	obs  []Obs
}

func (c *JobCollector) at(x float64) *jobCell {
	if c.cells == nil {
		c.cells = make(map[float64]*jobCell)
	}
	cell, ok := c.cells[x]
	if !ok {
		cell = &jobCell{}
		c.cells[x] = cell
		c.order = append(c.order, x)
	}
	return cell
}

// Expect declares that one job of the full (unsharded) grid feeds
// coordinate x.
func (c *JobCollector) Expect(x float64) { c.at(x).want++ }

// Observe records job's measured value at coordinate x.
func (c *JobCollector) Observe(x float64, job int, v float64) {
	cell := c.at(x)
	cell.obs = append(cell.obs, Obs{Job: job, V: v})
}

// Coords returns the distinct coordinates in first-Expect order.
func (c *JobCollector) Coords() []float64 { return c.order }

// At returns the observations recorded at x and the total number expected
// across all shards.
func (c *JobCollector) At(x float64) (obs []Obs, want int) {
	cell, ok := c.cells[x]
	if !ok {
		return nil, 0
	}
	return cell.obs, cell.want
}
