package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric names exposed at /metrics. Request counts are labelled per route
// as rfcd_requests_total{endpoint="..."}.
const (
	metricCacheHits      = "rfcd_cache_hits_total"
	metricCacheMisses    = "rfcd_cache_misses_total"
	metricCacheEvictions = "rfcd_cache_evictions_total"
	metricBuilds         = "rfcd_builds_total"
	metricBuildErrors    = "rfcd_build_errors_total"
	metricBuildNS        = "rfcd_build_ns_total"
	metricIndexNS        = "rfcd_index_ns_total"
	metricHTTPErrors     = "rfcd_http_errors_total"
	// metricCacheBytes is a gauge, not a monotonic counter: it tracks the
	// estimated resident bytes of ready cached builds (incremented on
	// insertion, decremented on eviction).
	metricCacheBytes = "rfcd_cache_bytes"
	// metricTopologyBytes is a gauge like metricCacheBytes, tracking only
	// the adjacency-store share of the cached builds: CSR base + mutation
	// overlay (Clos.StoreBytes). Together the two gauges explain
	// cache-budget evictions from /metrics alone — the difference is what
	// routers and indexes cost on top of the raw topologies.
	metricTopologyBytes = "rfcd_topology_bytes"
)

// Registry is a tiny atomic-counter metrics registry: named monotonic
// int64 counters, rendered in sorted order as "name value" lines (a
// Prometheus-compatible subset). All methods are safe for concurrent use;
// counter increments after the first Counter call for a name are lock-free.
type Registry struct {
	mu sync.Mutex
	//rfclint:guardedby mu
	counters map[string]*atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*atomic.Int64{}}
}

// Counter returns the counter registered under name, creating it at zero on
// first use. The returned pointer may be retained and incremented directly.
func (g *Registry) Counter(name string) *atomic.Int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.counters[name]
	if c == nil {
		c = &atomic.Int64{}
		g.counters[name] = c
	}
	return c
}

// Add increments the named counter by d.
func (g *Registry) Add(name string, d int64) { g.Counter(name).Add(d) }

// Value returns the current value of the named counter (0 if never used).
func (g *Registry) Value(name string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.counters[name]; c != nil {
		return c.Load()
	}
	return 0
}

// WriteTo renders every counter as "name value\n" in lexicographic name
// order, the /metrics response body.
func (g *Registry) WriteTo(w io.Writer) (int64, error) {
	g.mu.Lock()
	names := make([]string, 0, len(g.counters))
	vals := make(map[string]int64, len(g.counters))
	for name, c := range g.counters {
		names = append(names, name)
		vals[name] = c.Load()
	}
	g.mu.Unlock()
	sort.Strings(names)
	var total int64
	for _, name := range names {
		n, err := fmt.Fprintf(w, "%s %d\n", name, vals[name])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// requestMetric renders the per-endpoint request counter name.
func requestMetric(endpoint string) string {
	return fmt.Sprintf("rfcd_requests_total{endpoint=%q}", endpoint)
}
