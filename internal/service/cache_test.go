package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// stubSpec returns a valid tiny spec whose canonical string varies with i.
func stubSpec(i int) Spec {
	return Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: uint64(i + 1)}
}

// TestCacheSingleflight forces many goroutines through Get for the same
// key while the build is deliberately slow (gated on a channel), and
// asserts exactly one build ran.
func TestCacheSingleflight(t *testing.T) {
	gate := make(chan struct{})
	var builds atomic.Int64
	build := func(sp Spec) (*Topology, error) {
		builds.Add(1)
		<-gate
		return Build(sp)
	}
	c := NewCache(8, 0, build, nil)
	const waiters = 32
	var wg sync.WaitGroup
	results := make([]*Topology, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			topo, _, err := c.Get(stubSpec(0))
			if err != nil {
				t.Error(err)
			}
			results[i] = topo
		}(i)
	}
	// Let every request join the flight, then release the build.
	for c.Len() == 0 {
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds ran, want 1", n)
	}
	key := mustNormalize(t, stubSpec(0)).Key()
	if n := c.BuildsFor(key); n != 1 {
		t.Fatalf("BuildsFor(%s) = %d, want 1", key, n)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatal("waiters received different topology instances")
		}
	}
}

func mustNormalize(t *testing.T, sp Spec) Spec {
	t.Helper()
	norm, err := sp.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

// TestCacheLRUEviction fills the cache past capacity and checks the oldest
// ready entries are evicted while recently used ones survive.
func TestCacheLRUEviction(t *testing.T) {
	reg := NewRegistry()
	c := NewCache(2, 0, nil, reg)
	keys := make([]string, 3)
	for i := 0; i < 2; i++ {
		topo, cached, err := c.Get(stubSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatalf("first Get of spec %d reported cached", i)
		}
		keys[i] = topo.Key
	}
	// Touch spec 0 so spec 1 becomes LRU, then insert spec 2.
	if _, cached, err := c.Get(stubSpec(0)); err != nil || !cached {
		t.Fatalf("Get(spec0) cached=%v err=%v, want cache hit", cached, err)
	}
	topo, _, err := c.Get(stubSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	keys[2] = topo.Key
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, ok := c.Lookup(keys[1]); ok {
		t.Error("LRU entry (spec 1) survived eviction")
	}
	for _, k := range []string{keys[0], keys[2]} {
		if _, ok := c.Lookup(k); !ok {
			t.Errorf("recently used key %s was evicted", k)
		}
	}
	if n := reg.Value(metricCacheEvictions); n != 1 {
		t.Errorf("evictions counter = %d, want 1", n)
	}
}

// TestCacheBuildErrorsNotCached checks a failing build is reported to every
// request that joined it but not retained, so the next request retries.
func TestCacheBuildErrorsNotCached(t *testing.T) {
	fail := errors.New("boom")
	var builds atomic.Int64
	build := func(sp Spec) (*Topology, error) {
		builds.Add(1)
		return nil, fail
	}
	c := NewCache(4, 0, build, nil)
	for i := 0; i < 2; i++ {
		if _, _, err := c.Get(stubSpec(0)); !errors.Is(err, fail) {
			t.Fatalf("Get %d error = %v, want %v", i, err, fail)
		}
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("%d builds ran, want 2 (errors must not be cached)", n)
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after failures, want 0", c.Len())
	}
}

// TestCacheRejectsInvalidSpec checks Normalize errors surface without
// touching the cache.
func TestCacheRejectsInvalidSpec(t *testing.T) {
	c := NewCache(4, 0, nil, nil)
	bad := []Spec{
		{},
		{Kind: "nope"},
		{Kind: "rfc", Radix: 7, Levels: 3, Leaves: 16},
		{Kind: "cft", Radix: 8, Levels: 1},
		{Kind: "rrn", N: 1, Degree: 3},
	}
	for _, sp := range bad {
		if _, _, err := c.Get(sp); err == nil {
			t.Errorf("spec %+v accepted, want error", sp)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("invalid specs left %d cache entries", c.Len())
	}
}

// TestSpecCanonicalization pins the content-address scheme: seed is
// canonicalised away for deterministic kinds, defaults are filled, and
// distinct params give distinct keys.
func TestSpecCanonicalization(t *testing.T) {
	a := mustNormalize(t, Spec{Kind: "cft", Radix: 8, Levels: 3, Seed: 1})
	b := mustNormalize(t, Spec{Kind: "cft", Radix: 8, Levels: 3, Seed: 99})
	if a.Key() != b.Key() {
		t.Error("cft keys differ across seeds; deterministic kinds must canonicalise seed")
	}
	r1 := mustNormalize(t, Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 1})
	r2 := mustNormalize(t, Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 2})
	if r1.Key() == r2.Key() {
		t.Error("rfc keys identical across seeds; random kinds must key on seed")
	}
	// Leaves defaulting: 0 means MaxLeaves, and the canonical form shows it.
	d := mustNormalize(t, Spec{Kind: "rfc", Radix: 8, Levels: 3, Seed: 1})
	if d.Leaves == 0 {
		t.Error("Normalize left rfc leaves at 0")
	}
	if got := fmt.Sprintf("rfc(radix=8,levels=3,leaves=%d,seed=1)", d.Leaves); d.Canonical() != got {
		t.Errorf("canonical = %q, want %q", d.Canonical(), got)
	}
	if len(d.Key()) != 16 {
		t.Errorf("key %q is not 16 hex chars", d.Key())
	}
}

// TestCacheByteBudget checks memory-aware eviction: entries are evicted
// from the LRU tail until the MemBytes sum fits the byte budget, and the
// most recently used entry always survives, even when it alone exceeds the
// budget.
func TestCacheByteBudget(t *testing.T) {
	one, err := Build(mustNormalize(t, stubSpec(0)))
	if err != nil {
		t.Fatal(err)
	}
	cost := one.MemBytes()
	if cost <= 0 {
		t.Fatalf("MemBytes() = %d, want > 0", cost)
	}

	budget := 2*cost + cost/2 // room for two builds, not three
	c := NewCache(100, budget, nil, nil)
	for i := 0; i < 5; i++ {
		if _, _, err := c.Get(stubSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len() = %d after 5 builds under a 2-build byte budget, want 2", n)
	}
	if b := c.Bytes(); b > budget {
		t.Fatalf("Bytes() = %d > budget %d", b, budget)
	}
	if got := c.reg.Value(metricCacheBytes); got != c.Bytes() {
		t.Fatalf("%s gauge = %d, cache reports %d", metricCacheBytes, got, c.Bytes())
	}

	// A build over the whole budget still lands (front entry is never
	// evicted) and is replaced by the next build.
	tiny := NewCache(100, 1, nil, nil)
	if _, _, err := tiny.Get(stubSpec(0)); err != nil {
		t.Fatal(err)
	}
	if n := tiny.Len(); n != 1 {
		t.Fatalf("Len() = %d, want 1 (over-budget MRU entry must survive)", n)
	}
	if _, _, err := tiny.Get(stubSpec(1)); err != nil {
		t.Fatal(err)
	}
	if n := tiny.Len(); n != 1 {
		t.Fatalf("Len() = %d after second build, want 1 (old entry evicted)", n)
	}
	if _, cached, err := tiny.Get(stubSpec(1)); err != nil || !cached {
		t.Fatalf("MRU entry not served from cache (cached=%v, err=%v)", cached, err)
	}
}
