package service

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed topology cache: builds are keyed by the
// canonical (kind, params, seed) content address, retained under an LRU
// policy, and deduplicated singleflight-style — N concurrent requests for
// the same key trigger exactly one build, with the N-1 followers blocking
// on the winner's result instead of building again.
//
// The implementation is a mutex-guarded map + intrusive LRU list; the
// mutex is never held across a build. An in-flight build is represented by
// an entry whose ready channel is still open; followers wait on the channel
// outside the lock. Failed builds are evicted immediately so later requests
// retry instead of caching the error forever (the error is still delivered
// to every request that joined the failing flight).
type Cache struct {
	build func(Spec) (*Topology, error)
	reg   *Registry

	mu       sync.Mutex
	cap      int
	maxBytes int64 // byte budget over MemBytes costs; <= 0 = unlimited
	//rfclint:guardedby mu
	bytes int64 // sum of ready entries' costs
	//rfclint:guardedby mu
	ll *list.List // front = most recently used; values are *cacheEntry
	//rfclint:guardedby mu
	items map[string]*list.Element
	//rfclint:guardedby mu
	builds map[string]int64 // per-key build starts, for tests and selfcheck
}

type cacheEntry struct {
	key       string
	ready     chan struct{} // closed when topo/err are final
	done      bool          // guarded by Cache.mu; true once ready is closed
	cost      int64         // MemBytes at insertion; guarded by Cache.mu
	topoBytes int64         // adjacency-store share of cost; guarded by Cache.mu
	topo      *Topology
	err       error
}

// storeBytes is the adjacency-store share of a build's cost: CSR base plus
// mutation overlay for folded Clos builds, zero for RRN (whose graph is not
// level-structured). It feeds the rfcd_topology_bytes gauge.
func storeBytes(t *Topology) int64 {
	if t == nil || t.Clos == nil {
		return 0
	}
	return int64(t.Clos.StoreBytes())
}

// DefaultCacheBytes is the default cache byte budget (8 GiB): enough for a
// handful of ≥64K-leaf builds (whose routing state runs to gigabytes) while
// bounding rfcd's resident set.
const DefaultCacheBytes = 8 << 30

// NewCache returns a cache holding up to capacity ready builds totalling at
// most maxBytes of estimated topology memory (0 means DefaultCacheBytes,
// negative means unlimited), building misses with build (nil means the
// package-level Build). reg, when non-nil, receives hit/miss/eviction/build
// counters, build+index timings, and the resident-byte gauge.
func NewCache(capacity int, maxBytes int64, build func(Spec) (*Topology, error), reg *Registry) *Cache {
	if capacity <= 0 {
		capacity = 64
	}
	if maxBytes == 0 {
		maxBytes = DefaultCacheBytes
	}
	if build == nil {
		build = Build
	}
	if reg == nil {
		reg = NewRegistry()
	}
	return &Cache{
		build:    build,
		reg:      reg,
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		builds:   map[string]int64{},
	}
}

// Get returns the topology for sp, normalizing it first. The second result
// reports whether the request was served from cache (including joining an
// in-flight build of the same key) rather than starting a build.
func (c *Cache) Get(sp Spec) (*Topology, bool, error) {
	norm, err := sp.Normalize()
	if err != nil {
		return nil, false, err
	}
	key := norm.Key()

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.reg.Add(metricCacheHits, 1)
		<-e.ready
		return e.topo, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.items[key] = c.ll.PushFront(e)
	c.builds[key]++
	c.evictLocked()
	c.mu.Unlock()

	c.reg.Add(metricCacheMisses, 1)
	c.reg.Add(metricBuilds, 1)
	topo, err := c.build(norm)
	if topo != nil {
		c.reg.Add(metricBuildNS, topo.BuildNS)
		c.reg.Add(metricIndexNS, topo.IndexNS)
	}

	c.mu.Lock()
	e.topo, e.err = topo, err
	e.done = true
	if err != nil {
		c.reg.Add(metricBuildErrors, 1)
		// Drop the failed entry (unless a newer entry took the key, which
		// cannot happen while we are in the map — we only insert under lock
		// and the key still points at e).
		if el, ok := c.items[key]; ok && el.Value.(*cacheEntry) == e {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	} else {
		// Charge the finished build against the byte budget (the cost is
		// measured once, at insertion) and evict down to it.
		e.cost = topo.MemBytes()
		e.topoBytes = storeBytes(topo)
		c.bytes += e.cost
		c.reg.Add(metricCacheBytes, e.cost)
		c.reg.Add(metricTopologyBytes, e.topoBytes)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return topo, false, err
}

// Lookup returns the cached topology named by key (the content address),
// waiting for an in-flight build of that key to finish. ok is false when
// the key is unknown (never built, or evicted).
func (c *Cache) Lookup(key string) (*Topology, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()
	<-e.ready
	if e.err != nil {
		return nil, false
	}
	return e.topo, true
}

// evictLocked trims the LRU tail until both the entry-count capacity and
// the byte budget are respected. It skips entries whose builds are still in
// flight (their requesters hold the entry pointer; the map must keep
// pointing at it so concurrent requests dedupe onto it) and never evicts
// the front (most recently used) entry — a build larger than the whole
// budget still serves the request that produced it and is evicted when the
// next build lands. Callers must hold c.mu.
//
//rfclint:locked mu
func (c *Cache) evictLocked() {
	for el := c.ll.Back(); el != nil && el != c.ll.Front(); {
		if len(c.items) <= c.cap && (c.maxBytes < 0 || c.bytes <= c.maxBytes) {
			return
		}
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.done {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.cost
			c.reg.Add(metricCacheBytes, -e.cost)
			c.reg.Add(metricTopologyBytes, -e.topoBytes)
			c.reg.Add(metricCacheEvictions, 1)
		}
		el = prev
	}
}

// Bytes returns the estimated resident bytes of ready cached builds.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of cached (ready or in-flight) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// BuildsFor returns how many builds have started for key since the cache
// was created — the singleflight assertion hook: under any concurrency it
// must be exactly 1 per key unless the entry was evicted or failed.
func (c *Cache) BuildsFor(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds[key]
}
