// Package service is the serving layer over the deterministic topology
// core: a concurrent HTTP/JSON API (stdlib net/http only) answering
// topology, routing, expandability and fault queries about RFC, fat-tree
// and random-regular builds. Builds are memoised in a content-addressed
// LRU cache with singleflight deduplication, and every cached folded Clos
// carries a precomputed up/down route index, so cached path queries are
// O(path length).
//
// Every response body is a pure function of the request parameters and
// seeds (the sole exception is the "cached" flag, which reflects server
// cache state); wall-clock measurements appear only in /metrics. The
// package is an explicitly non-deterministic (server) package in the
// rfclint configuration — see internal/lint.DefaultConfig.
package service

import (
	"fmt"
	"strings"
	"time"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// Spec identifies one topology build: the kind plus its parameters and the
// generation seed. It is the request body of POST /v1/topology; unused
// parameter fields for a kind must be zero.
type Spec struct {
	// Kind is one of "rfc", "cft", "kary", "oft", "xgft", "rrn".
	Kind string `json:"kind"`

	Radix  int `json:"radix,omitempty"`  // rfc, cft; optional port budget for xgft
	Levels int `json:"levels,omitempty"` // rfc, cft, kary, oft
	Leaves int `json:"leaves,omitempty"` // rfc (0 = MaxLeaves for radix/levels)

	Q int `json:"q,omitempty"` // oft: projective plane order
	K int `json:"k,omitempty"` // kary: arity

	M []int `json:"m,omitempty"` // xgft: down-link counts per level
	W []int `json:"w,omitempty"` // xgft: up-link counts per level

	N      int `json:"n,omitempty"`      // rrn: switches
	Degree int `json:"degree,omitempty"` // rrn: network degree
	Terms  int `json:"terms,omitempty"`  // rrn: terminals per switch

	// Seed drives the random builders (rfc, rrn). Deterministic kinds
	// canonicalise it to 0, so seed variations of a CFT share a cache entry.
	Seed uint64 `json:"seed,omitempty"`
}

// maxSwitches bounds a single build so one request cannot exhaust server
// memory; the paper's largest scenario (200K terminals) is well within it.
const maxSwitches = 1 << 21

// DefaultDenseIndexBytes is the default byte budget for the dense turn
// table: topologies whose N1² table fits in it get the O(1)-lookup dense
// tier (64 MiB = 8192 leaves); larger ones get the succinct tier. The old
// hard 4096-leaf indexing cap is gone — tier selection replaced it.
const DefaultDenseIndexBytes = 64 << 20

// maxSuccinctLeaves bounds the leaf count for which even the succinct index
// is precomputed: its build walks O(levels·N1²/64) words, which at 512K
// leaves is tens of seconds of CPU. The compressed cover representation
// (routing.LeafSet) keeps the router itself far below this, so the bound
// covers the paper's 200K-terminal scenario C with headroom. Beyond it,
// path queries fall back to the cover-set MinTurn, which is O(levels) per
// query with no precomputation.
const maxSuccinctLeaves = 1 << 19

// Normalize validates sp, fills kind-specific defaults and canonicalises
// fields that do not affect the build (the seed of deterministic kinds),
// returning the spec whose Canonical string content-addresses the build.
func (sp Spec) Normalize() (Spec, error) {
	sp.Kind = strings.ToLower(strings.TrimSpace(sp.Kind))
	switch sp.Kind {
	case "rfc":
		if sp.Seed == 0 {
			sp.Seed = 1
		}
		if sp.Leaves == 0 {
			sp.Leaves = core.MaxLeaves(sp.Radix, sp.Levels)
		}
		p := core.Params{Radix: sp.Radix, Levels: sp.Levels, Leaves: sp.Leaves}
		if err := p.Validate(); err != nil {
			return sp, err
		}
		if p.Switches() > maxSwitches {
			return sp, fmt.Errorf("service: %v exceeds the %d-switch serving limit", p, maxSwitches)
		}
	case "cft":
		sp.Seed = 0
		if sp.Radix < 4 || sp.Radix%2 != 0 {
			return sp, fmt.Errorf("service: cft radix must be even and >= 4, got %d", sp.Radix)
		}
		if sp.Levels < 2 {
			return sp, fmt.Errorf("service: cft levels must be >= 2, got %d", sp.Levels)
		}
	case "kary":
		sp.Seed = 0
		if sp.K < 2 {
			return sp, fmt.Errorf("service: kary arity must be >= 2, got %d", sp.K)
		}
		if sp.Levels < 2 {
			return sp, fmt.Errorf("service: kary levels must be >= 2, got %d", sp.Levels)
		}
	case "oft":
		sp.Seed = 0
		if sp.Q < 2 {
			return sp, fmt.Errorf("service: oft order must be >= 2, got %d", sp.Q)
		}
		if sp.Levels < 2 {
			return sp, fmt.Errorf("service: oft levels must be >= 2, got %d", sp.Levels)
		}
	case "xgft":
		sp.Seed = 0
		if len(sp.M) < 2 || len(sp.M) != len(sp.W) {
			return sp, fmt.Errorf("service: xgft needs len(m) == len(w) >= 2, got %d and %d", len(sp.M), len(sp.W))
		}
	case "rrn":
		if sp.Seed == 0 {
			sp.Seed = 1
		}
		if sp.N < 2 || sp.N > maxSwitches {
			return sp, fmt.Errorf("service: rrn switches must be in [2, %d], got %d", maxSwitches, sp.N)
		}
		if sp.Degree < 1 || sp.Terms < 0 {
			return sp, fmt.Errorf("service: rrn degree %d / terms %d invalid", sp.Degree, sp.Terms)
		}
	case "":
		return sp, fmt.Errorf("service: missing topology kind")
	default:
		return sp, fmt.Errorf("service: unknown topology kind %q (want rfc, cft, kary, oft, xgft or rrn)", sp.Kind)
	}
	return sp, nil
}

// Canonical renders the normalized spec as the canonical parameter string
// the cache keys on. Two specs describing the same build (after Normalize)
// render identically.
func (sp Spec) Canonical() string {
	switch sp.Kind {
	case "rfc":
		return fmt.Sprintf("rfc(radix=%d,levels=%d,leaves=%d,seed=%d)", sp.Radix, sp.Levels, sp.Leaves, sp.Seed)
	case "cft":
		return fmt.Sprintf("cft(radix=%d,levels=%d)", sp.Radix, sp.Levels)
	case "kary":
		return fmt.Sprintf("kary(k=%d,levels=%d)", sp.K, sp.Levels)
	case "oft":
		return fmt.Sprintf("oft(q=%d,levels=%d)", sp.Q, sp.Levels)
	case "xgft":
		return fmt.Sprintf("xgft(m=%v,w=%v,radix=%d)", sp.M, sp.W, sp.Radix)
	case "rrn":
		return fmt.Sprintf("rrn(n=%d,degree=%d,terms=%d,seed=%d)", sp.N, sp.Degree, sp.Terms, sp.Seed)
	}
	return fmt.Sprintf("unknown(%q)", sp.Kind)
}

// Key returns the content address of the normalized spec: the 64-bit FNV-1a
// hash of the canonical string, in fixed-width hex. It names the build in
// URLs (GET /v1/topology/{key}/...).
func (sp Spec) Key() string {
	return fmt.Sprintf("%016x", rng.StringCoord(sp.Canonical()))
}

// Topology is one cached build: the network, its routing state and the
// precomputed route index (folded Clos kinds), or the random regular
// network (rrn). All fields are immutable after Build returns, so a cached
// Topology may be read concurrently without locking.
type Topology struct {
	Key   string
	Canon string
	Spec  Spec // normalized

	// Folded Clos kinds (rfc, cft, kary, oft, xgft).
	Clos   *topology.Clos
	Router *routing.UpDown
	// Index is the precomputed turn index: the dense tier when the N1²
	// table fits the build's dense-index budget, the succinct tier up to
	// maxSuccinctLeaves, nil beyond that (queries use Router.MinTurn).
	Index routing.TurnIndex

	// rrn only.
	RRN *topology.RRN

	Routable bool
	Attempts int // rfc: generation attempts used

	// BuildNS and IndexNS record the wall-clock cost of the build and of
	// the route-index precomputation. They feed /metrics only — response
	// bodies stay pure functions of (params, seed).
	BuildNS int64
	IndexNS int64
}

// Build constructs the topology a normalized spec describes with the
// default dense-index budget. The network is a pure function of the spec —
// the same spec always yields an identical network; only the
// BuildNS/IndexNS timing fields vary between runs.
func Build(sp Spec) (*Topology, error) {
	return BuildIndexed(sp, DefaultDenseIndexBytes)
}

// BuildIndexed is Build with an explicit dense-index byte budget: folded
// Clos topologies whose N1² turn table fits in denseIndexBytes carry the
// dense tier, larger ones (up to maxSuccinctLeaves) the succinct tier.
// denseIndexBytes <= 0 means the dense table is always used.
func BuildIndexed(sp Spec, denseIndexBytes int) (*Topology, error) {
	start := time.Now() //rfclint:allow handler-purity -- build duration feeds /metrics counters, never response bytes
	t := &Topology{Key: sp.Key(), Canon: sp.Canonical(), Spec: sp}
	// Every deterministic folded Clos kind builds through the streaming
	// path: the builder seals CSR level pairs bottom-up and the attached
	// RebuildStream compresses descendant sets as each pair lands, so a
	// >1M-switch build never holds wiring scratch and uncompressed routing
	// state at once. The rfc kind streams inside GenerateRoutable.
	rs := routing.NewRebuildStream()
	var err error
	switch sp.Kind {
	case "rfc":
		p := core.Params{Radix: sp.Radix, Levels: sp.Levels, Leaves: sp.Leaves}
		t.Clos, t.Router, t.Attempts, err = core.GenerateRoutable(p, 50, rng.New(sp.Seed))
		if err != nil {
			return nil, err
		}
		t.Routable = true
	case "cft":
		t.Clos, err = topology.NewCFTStream(sp.Radix, sp.Levels, rs)
	case "kary":
		t.Clos, err = topology.NewKaryTreeStream(sp.K, sp.Levels, rs)
	case "oft":
		t.Clos, err = topology.NewOFTStream(sp.Q, sp.Levels, rs)
	case "xgft":
		t.Clos, err = topology.NewXGFTStream(sp.M, sp.W, sp.Radix, rs)
	case "rrn":
		t.RRN, err = topology.NewRRN(sp.N, sp.Degree, sp.Terms, rng.New(sp.Seed))
		if err != nil {
			return nil, err
		}
		t.Routable = t.RRN.G.IsConnected()
	default:
		return nil, fmt.Errorf("service: unknown topology kind %q", sp.Kind)
	}
	if err != nil {
		return nil, err
	}
	if t.Clos != nil {
		if t.Clos.NumSwitches() > maxSwitches {
			return nil, fmt.Errorf("service: %s exceeds the %d-switch serving limit", t.Canon, maxSwitches)
		}
		if t.Router == nil {
			t.Router = rs.Finish(t.Clos)
			t.Routable = t.Router.Routable()
		}
		if t.Clos.LevelSize(1) <= maxSuccinctLeaves {
			ixStart := time.Now() //rfclint:allow handler-purity -- index duration feeds /metrics counters, never response bytes
			t.Index = routing.NewTurnIndex(t.Router, denseIndexBytes)
			t.IndexNS = time.Since(ixStart).Nanoseconds() //rfclint:allow handler-purity -- metrics-only timing
		}
	}
	t.BuildNS = time.Since(start).Nanoseconds() //rfclint:allow handler-purity -- metrics-only timing
	return t, nil
}

// Terminals returns the compute-node count of the build.
func (t *Topology) Terminals() int {
	if t.RRN != nil {
		return t.RRN.Terminals()
	}
	return t.Clos.Terminals()
}

// Switches returns the switch count of the build.
func (t *Topology) Switches() int {
	if t.RRN != nil {
		return t.RRN.N()
	}
	return t.Clos.NumSwitches()
}

// Wires returns the inter-switch link count of the build.
func (t *Topology) Wires() int {
	if t.RRN != nil {
		return t.RRN.Wires()
	}
	return t.Clos.Wires()
}

// MemBytes estimates the resident cost of the cached build: the topology's
// own accounting of its CSR level store plus mutation overlay
// (Clos.StoreBytes), the router's compressed cover containers
// (UpDown.CoverBytes via SizeBytes), and the turn index. The cache charges
// this against its byte budget, so one huge build evicts many small ones
// rather than none.
func (t *Topology) MemBytes() int64 {
	const sliceHeader = 24
	if t.RRN != nil {
		return int64(t.RRN.Wires())*8 + int64(t.RRN.N())*sliceHeader
	}
	n := int64(t.Clos.StoreBytes())
	if t.Router != nil {
		n += int64(t.Router.SizeBytes())
	}
	if t.Index != nil {
		n += int64(t.Index.SizeBytes())
	}
	return n
}
