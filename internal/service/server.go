package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rfclos/internal/core"
	"rfclos/internal/flow"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Options configures a Server.
type Options struct {
	// CacheSize is the maximum number of ready topology builds retained
	// (LRU). 0 means the default (64).
	CacheSize int
	// CacheBytes is the byte budget over the cached builds' estimated
	// memory (adjacency + routing state + turn index). 0 means the default
	// (DefaultCacheBytes, 8 GiB); negative means unlimited.
	CacheBytes int64
	// DenseIndexBytes is the dense turn-table budget per build: topologies
	// whose N1² table fits get the O(1) dense tier, larger ones the
	// succinct tier. 0 means the default (DefaultDenseIndexBytes, 64 MiB);
	// negative means always dense.
	DenseIndexBytes int
}

// Server is the rfcd request handler: the topology cache plus the HTTP/JSON
// API over it. Create with New, mount via Handler.
type Server struct {
	cache *Cache
	reg   *Registry
	mux   *http.ServeMux
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	reg := NewRegistry()
	denseBudget := opts.DenseIndexBytes
	if denseBudget == 0 {
		denseBudget = DefaultDenseIndexBytes
	}
	build := func(sp Spec) (*Topology, error) { return BuildIndexed(sp, denseBudget) }
	s := &Server{
		cache: NewCache(opts.CacheSize, opts.CacheBytes, build, reg),
		reg:   reg,
		mux:   http.NewServeMux(),
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	s.route("POST /v1/topology", s.handleTopology)
	s.route("GET /v1/topology/{key}/export", s.handleExport)
	s.route("GET /v1/path", s.handlePath)
	s.route("POST /v1/paths", s.handlePaths)
	s.route("POST /v1/expand", s.handleExpand)
	s.route("GET /v1/faults", s.handleFaults)
	s.route("POST /v1/throughput", s.handleThroughput)
	return s
}

// Handler returns the HTTP handler serving the full API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the topology cache (selfcheck and tests assert on its
// build counters).
func (s *Server) Cache() *Cache { return s.cache }

// Metrics exposes the counter registry.
func (s *Server) Metrics() *Registry { return s.reg }

// route registers a handler with a per-endpoint request counter. The
// metric label is the pattern's path with wildcards intact, so cardinality
// stays fixed.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	ctr := s.reg.Counter(requestMetric(pattern))
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		ctr.Add(1)
		h(w, r)
	})
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.reg.Add(metricHTTPErrors, 1)
	writeJSON(w, code, apiError{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.WriteTo(w)
}

// TopologySummary is the POST /v1/topology response: the content address
// plus the structural stats of the build. Apart from Cached (server cache
// state) every field is a pure function of the spec.
type TopologySummary struct {
	Key       string `json:"key"`
	Canonical string `json:"canonical"`
	Kind      string `json:"kind"`
	Seed      uint64 `json:"seed,omitempty"`
	Levels    int    `json:"levels,omitempty"`
	Radix     int    `json:"radix,omitempty"`
	Switches  int    `json:"switches"`
	Terminals int    `json:"terminals"`
	Wires     int    `json:"wires"`
	Routable  bool   `json:"routable"`
	Attempts  int    `json:"attempts,omitempty"`
	// IndexLeaves/IndexBytes/IndexTier describe the precomputed up/down
	// route index of folded Clos kinds: tier "dense" is the O(1)-lookup N1²
	// table, "succinct" the exception-coded representation for large N1
	// (absent above maxSuccinctLeaves, where queries use cover sets).
	IndexLeaves int    `json:"index_leaves,omitempty"`
	IndexBytes  int    `json:"index_bytes,omitempty"`
	IndexTier   string `json:"index_tier,omitempty"`
	// CoverBytes/CoverRepr describe the router's compressed cover state
	// (folded Clos kinds): CoverBytes is the memory the cache budget is
	// charged for the cover containers, CoverRepr the per-container
	// histogram (e.g. "run:520 sparse:64 full:8") — see routing.LeafSet.
	CoverBytes int    `json:"cover_bytes,omitempty"`
	CoverRepr  string `json:"cover_repr,omitempty"`
	// Theorem 4.2 placement, rfc only.
	XParam         *float64 `json:"x_param,omitempty"`
	ThresholdRadix *float64 `json:"threshold_radix,omitempty"`
	Cached         bool     `json:"cached"`
}

func (s *Server) summarize(t *Topology, cached bool) TopologySummary {
	sum := TopologySummary{
		Key:       t.Key,
		Canonical: t.Canon,
		Kind:      t.Spec.Kind,
		Seed:      t.Spec.Seed,
		Switches:  t.Switches(),
		Terminals: t.Terminals(),
		Wires:     t.Wires(),
		Routable:  t.Routable,
		Attempts:  t.Attempts,
		Cached:    cached,
	}
	if t.Clos != nil {
		sum.Levels = t.Clos.Levels()
		sum.Radix = t.Clos.Radix
	}
	if t.Index != nil {
		sum.IndexLeaves = t.Index.Leaves()
		sum.IndexBytes = t.Index.SizeBytes()
		sum.IndexTier = t.Index.Tier()
	}
	if t.Router != nil {
		sum.CoverBytes = t.Router.CoverBytes()
		sum.CoverRepr = t.Router.CoverRepr()
	}
	if t.Spec.Kind == "rfc" {
		x := core.XParam(t.Spec.Radix, t.Spec.Leaves, t.Spec.Levels)
		tr := core.ThresholdRadix(t.Spec.Leaves, t.Spec.Levels)
		sum.XParam = &x
		sum.ThresholdRadix = &tr
	}
	return sum
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	t, cached, err := s.cache.Get(sp)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, core.ErrNotRoutable) {
			code = http.StatusUnprocessableEntity
		}
		s.writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.summarize(t, cached))
}

// lookup resolves a topology key from the cache, writing the 404 itself
// when absent.
func (s *Server) lookup(w http.ResponseWriter, key string) (*Topology, bool) {
	t, ok := s.cache.Lookup(key)
	if !ok {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown topology key %q: build it first via POST /v1/topology", key))
		return nil, false
	}
	return t, true
}

// exportFlushBytes is how much export output accumulates before the
// response is flushed to the client. Flushing forces chunked transfer
// encoding and bounds server-side buffering, so a multi-GB export streams
// instead of materialising: the encoders write straight from EdgeSeq and
// this handler pushes the bytes out every quarter megabyte.
const exportFlushBytes = 256 << 10

// flushingWriter counts bytes written and flushes the underlying
// ResponseWriter every exportFlushBytes.
type flushingWriter struct {
	w       http.ResponseWriter
	f       http.Flusher // nil when the writer cannot flush
	pending int
}

func (fw *flushingWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.pending += n
	if fw.f != nil && fw.pending >= exportFlushBytes {
		fw.f.Flush()
		fw.pending = 0
	}
	return n, err
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(w, r.PathValue("key"))
	if !ok {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	ct := "text/plain; charset=utf-8"
	if format == "json" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	fw := &flushingWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
	}
	var err error
	if t.RRN != nil {
		err = topology.ExportRRN(t.RRN, format, fw)
	} else {
		err = topology.Export(t.Clos, format, fw)
	}
	if err != nil {
		// Headers may already be out for a streaming failure; for an unknown
		// format nothing has been written yet, so the error reaches the
		// client cleanly.
		s.writeError(w, http.StatusBadRequest, err.Error())
	}
}

// PathResponse is the GET /v1/path response: one shortest up/down path
// (folded Clos kinds, leaf-switch indices) or one BFS shortest path (rrn,
// switch ids). A pure function of (key's params, src, dst, seed).
type PathResponse struct {
	Key string `json:"key"`
	Src int    `json:"src"`
	Dst int    `json:"dst"`
	// MinTurn is the up-hop count of the shortest up/down path (folded Clos
	// kinds; absent for rrn). -1 when src and dst have no up/down path.
	MinTurn *int `json:"min_turn,omitempty"`
	// Routable reports whether a path exists for this pair.
	Routable bool `json:"routable"`
	// Hops is len(Path)-1, the switch-to-switch hop count.
	Hops int `json:"hops"`
	// Path is the switch-id sequence from src's switch to dst's switch.
	Path []int32 `json:"path,omitempty"`
	Seed uint64  `json:"seed"`
}

// queryInt parses a required integer query parameter.
func queryInt(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query parameter %q: %v", name, err)
	}
	return n, nil
}

// querySeed parses an optional uint64 seed query parameter (default 1).
func querySeed(r *http.Request) (uint64, error) {
	v := r.URL.Query().Get("seed")
	if v == "" {
		return 1, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query parameter \"seed\": %v", err)
	}
	return n, nil
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	t, ok := s.lookup(w, key)
	if !ok {
		return
	}
	src, err := queryInt(r, "src")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	dst, err := queryInt(r, "dst")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	seed, err := querySeed(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := PathResponse{Key: t.Key, Src: src, Dst: dst, Seed: seed}
	if t.RRN != nil {
		if src < 0 || src >= t.RRN.N() || dst < 0 || dst >= t.RRN.N() {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("src/dst must be switch ids in [0, %d)", t.RRN.N()))
			return
		}
		path := t.RRN.G.ShortestPath(src, dst)
		resp.Routable = path != nil
		if path != nil {
			resp.Path = path
			resp.Hops = len(path) - 1
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	n1 := t.Clos.LevelSize(1)
	if src < 0 || src >= n1 || dst < 0 || dst >= n1 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("src/dst must be leaf-switch indices in [0, %d)", n1))
		return
	}
	// O(1) turn lookup from the precomputed index when present, cover-set
	// computation otherwise; then materialise the random shortest up/down
	// path from the query seed.
	var turn int
	if t.Index != nil {
		turn = t.Index.MinTurn(src, dst)
	} else {
		turn = t.Router.MinTurn(src, dst)
	}
	resp.MinTurn = &turn
	resp.Routable = turn >= 0
	if turn >= 0 {
		stream := rng.At(seed, rng.StringCoord("rfcd/path"), uint64(src), uint64(dst))
		path := t.Router.PathAt(src, dst, turn, stream)
		resp.Path = path
		resp.Hops = len(path) - 1
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxPathsPerRequest bounds one POST /v1/paths batch so a single request
// cannot hold a connection for an unbounded amount of work.
const maxPathsPerRequest = 8192

// PathsRequest is the POST /v1/paths body: a batch of src/dst pairs
// resolved against one cached topology in a single request, amortising the
// topology lookup and HTTP round trip across the batch (the first step of
// the high-QPS serving item).
type PathsRequest struct {
	Key   string   `json:"key"`
	Pairs [][2]int `json:"pairs"`
	// Seed feeds each pair's path randomisation exactly as GET /v1/path's
	// seed parameter does (default 1): a batch response is element-wise
	// byte-identical to the corresponding single-path responses.
	Seed uint64 `json:"seed,omitempty"`
}

// PathResult is one pair's outcome within a PathsResponse, mirroring the
// per-pair fields of PathResponse.
type PathResult struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	MinTurn  *int    `json:"min_turn,omitempty"`
	Routable bool    `json:"routable"`
	Hops     int     `json:"hops"`
	Path     []int32 `json:"path,omitempty"`
}

// PathsResponse is the POST /v1/paths response. Like PathResponse it is a
// pure function of (key's params, pairs, seed).
type PathsResponse struct {
	Key   string       `json:"key"`
	Seed  uint64       `json:"seed"`
	Count int          `json:"count"`
	Paths []PathResult `json:"paths"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	var req PathsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if len(req.Pairs) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty pairs batch")
		return
	}
	if len(req.Pairs) > maxPathsPerRequest {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d pairs exceeds the %d-pair limit", len(req.Pairs), maxPathsPerRequest))
		return
	}
	t, ok := s.lookup(w, req.Key)
	if !ok {
		return
	}
	resp := PathsResponse{
		Key:   t.Key,
		Seed:  req.Seed,
		Count: len(req.Pairs),
		Paths: make([]PathResult, 0, len(req.Pairs)),
	}
	if t.RRN != nil {
		for _, pair := range req.Pairs {
			src, dst := pair[0], pair[1]
			if src < 0 || src >= t.RRN.N() || dst < 0 || dst >= t.RRN.N() {
				s.writeError(w, http.StatusBadRequest,
					fmt.Sprintf("pair (%d,%d): src/dst must be switch ids in [0, %d)", src, dst, t.RRN.N()))
				return
			}
			res := PathResult{Src: src, Dst: dst}
			if path := t.RRN.G.ShortestPath(src, dst); path != nil {
				res.Routable = true
				res.Path = path
				res.Hops = len(path) - 1
			}
			resp.Paths = append(resp.Paths, res)
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	n1 := t.Clos.LevelSize(1)
	for _, pair := range req.Pairs {
		src, dst := pair[0], pair[1]
		if src < 0 || src >= n1 || dst < 0 || dst >= n1 {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("pair (%d,%d): src/dst must be leaf-switch indices in [0, %d)", src, dst, n1))
			return
		}
		var turn int
		if t.Index != nil {
			turn = t.Index.MinTurn(src, dst)
		} else {
			turn = t.Router.MinTurn(src, dst)
		}
		res := PathResult{Src: src, Dst: dst, Routable: turn >= 0}
		mt := turn
		res.MinTurn = &mt
		if turn >= 0 {
			// The same per-pair stream GET /v1/path derives, so batch and
			// single-path responses agree byte for byte.
			stream := rng.At(req.Seed, rng.StringCoord("rfcd/path"), uint64(src), uint64(dst))
			path := t.Router.PathAt(src, dst, turn, stream)
			res.Path = path
			res.Hops = len(path) - 1
		}
		resp.Paths = append(resp.Paths, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExpandRequest is the POST /v1/expand body: expand the cached RFC named
// by Key by Increments minimal strong expansions (§5; R new terminals
// each).
type ExpandRequest struct {
	Key        string `json:"key"`
	Increments int    `json:"increments,omitempty"` // default 1
}

// ExpandResponse reports one planned expansion step and its distance to
// the Theorem 4.2 threshold. A pure function of (key's params, seed,
// increments).
type ExpandResponse struct {
	Key        string `json:"key"`
	Increments int    `json:"increments"`

	LeavesBefore    int `json:"leaves_before"`
	LeavesAfter     int `json:"leaves_after"`
	TerminalsBefore int `json:"terminals_before"`
	TerminalsAfter  int `json:"terminals_after"`

	// MaxLeaves is the Theorem 4.2 ceiling for this radix and level count;
	// IncrementsToThreshold is how many more increments the pre-expansion
	// network could take before reaching it (0 when already at or past).
	MaxLeaves             int  `json:"max_leaves"`
	IncrementsToThreshold int  `json:"increments_to_threshold"`
	AtThreshold           bool `json:"at_threshold"`
	PastThreshold         bool `json:"past_threshold"`

	// XBefore/XAfter are the Theorem 4.2 offsets, SuccessBefore/After the
	// implied exp(-exp(-x)) routability probabilities.
	XBefore       float64 `json:"x_before"`
	XAfter        float64 `json:"x_after"`
	SuccessBefore float64 `json:"success_before"`
	SuccessAfter  float64 `json:"success_after"`

	// RewiredLinks counts existing links the performed expansion re-plugged
	// ((l-1)·R per increment); Routable reports whether the expanded network
	// kept the up/down common-ancestor property.
	RewiredLinks int  `json:"rewired_links"`
	Routable     bool `json:"routable"`
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	var req ExpandRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Increments == 0 {
		req.Increments = 1
	}
	if req.Increments < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("increments %d < 0", req.Increments))
		return
	}
	t, ok := s.lookup(w, req.Key)
	if !ok {
		return
	}
	if t.Spec.Kind != "rfc" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("expansion requires an rfc topology, key %q is %q", req.Key, t.Spec.Kind))
		return
	}
	sp := t.Spec
	before := core.Params{Radix: sp.Radix, Levels: sp.Levels, Leaves: sp.Leaves}
	after := core.Params{Radix: sp.Radix, Levels: sp.Levels, Leaves: sp.Leaves + 2*req.Increments}
	maxLeaves := core.MaxLeaves(sp.Radix, sp.Levels)
	resp := ExpandResponse{
		Key:             t.Key,
		Increments:      req.Increments,
		LeavesBefore:    before.Leaves,
		LeavesAfter:     after.Leaves,
		TerminalsBefore: before.Terminals(),
		TerminalsAfter:  after.Terminals(),
		MaxLeaves:       maxLeaves,
		AtThreshold:     after.Leaves == maxLeaves,
		PastThreshold:   after.Leaves > maxLeaves,
		XBefore:         core.XParam(sp.Radix, before.Leaves, sp.Levels),
		XAfter:          core.XParam(sp.Radix, after.Leaves, sp.Levels),
	}
	if before.Leaves < maxLeaves {
		resp.IncrementsToThreshold = (maxLeaves - before.Leaves) / 2
	}
	resp.SuccessBefore = core.SuccessProbability(resp.XBefore)
	resp.SuccessAfter = core.SuccessProbability(resp.XAfter)

	// Perform the expansion with a stream derived from (seed, increments):
	// the same request against the same topology always reports the same
	// rewiring. ExpandRoutable retries the splice like GenerateRoutable; if
	// every attempt loses routability (expected past the threshold), fall
	// back to a single unchecked expansion and report routable = false.
	stream := rng.At(sp.Seed, rng.StringCoord("rfcd/expand"), uint64(req.Increments))
	out, _, rewired, err := core.ExpandRoutable(t.Clos, req.Increments, 10, stream)
	if err == nil {
		resp.RewiredLinks = rewired
		resp.Routable = true
	} else if errors.Is(err, core.ErrNotRoutable) {
		fallback := rng.At(sp.Seed, rng.StringCoord("rfcd/expand-unchecked"), uint64(req.Increments))
		out, rewired, err = core.Expand(t.Clos, req.Increments, fallback)
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		resp.RewiredLinks = rewired
		resp.Routable = routing.New(out).Routable()
	} else {
		s.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ThroughputRequest is the POST /v1/throughput body: solve one traffic
// matrix on the cached topology named by Key with the flow-level
// max-min-fair backend (internal/flow). Matrix names a canonical generator
// (uniform, random-pairing, fixed-random, shift, hotspot, incast,
// elephant-mice, storm; default uniform), Load scales its rates (default
// 1.0), and Seed drives matrix generation and path sampling (default 1).
type ThroughputRequest struct {
	Key    string  `json:"key"`
	Matrix string  `json:"matrix,omitempty"`
	Load   float64 `json:"load,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
}

// ThroughputResponse is the POST /v1/throughput response: the solver's
// summary statistics. A pure function of (key's params, matrix, load, seed).
type ThroughputResponse struct {
	Key    string  `json:"key"`
	Matrix string  `json:"matrix"`
	Load   float64 `json:"load"`
	Seed   uint64  `json:"seed"`
	// Flows counts routed flows, Unroutable the flows dropped for lack of a
	// path (faulted builds).
	Flows      int `json:"flows"`
	Unroutable int `json:"unroutable"`
	// Accepted is delivered rate per terminal; MinRate/MeanRate/MaxRate and
	// Jain summarise the per-flow max-min-fair allocation.
	Accepted float64 `json:"accepted"`
	MinRate  float64 `json:"min_rate"`
	MeanRate float64 `json:"mean_rate"`
	MaxRate  float64 `json:"max_rate"`
	Jain     float64 `json:"jain"`
	Rounds   int     `json:"rounds"`
	SatLinks int     `json:"sat_links"`
}

func (s *Server) handleThroughput(w http.ResponseWriter, r *http.Request) {
	var req ThroughputRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Matrix == "" {
		req.Matrix = "uniform"
	}
	if req.Load == 0 {
		req.Load = 1
	}
	if req.Load < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("load %g < 0", req.Load))
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	t, ok := s.lookup(w, req.Key)
	if !ok {
		return
	}
	// Folded Clos builds reuse the cached router and precomputed turn index;
	// RRNs pay a per-request BFS table (no routing state is cached for them).
	var net flow.Network
	if t.RRN != nil {
		rn, err := flow.NewRRN(t.RRN, 0)
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		net = rn
	} else {
		net = flow.NewClos(t.Clos, t.Router, t.Index)
	}
	stream := rng.At(req.Seed, rng.StringCoord("rfcd/throughput"))
	m, err := traffic.NewMatrix(req.Matrix, net.Terminals(), stream)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m = traffic.ScaleMatrix(m, req.Load)
	res, err := flow.Solve(net, m, flow.Options{Seed: stream.Uint64()})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ThroughputResponse{
		Key: t.Key, Matrix: req.Matrix, Load: req.Load, Seed: req.Seed,
		Flows: res.Flows, Unroutable: res.Unroutable,
		Accepted: res.Accepted, MinRate: res.MinRate, MeanRate: res.MeanRate,
		MaxRate: res.MaxRate, Jain: res.Jain, Rounds: res.Rounds, SatLinks: res.SatLinks,
	})
}

// FaultsResponse is the GET /v1/faults response: connectivity and up/down
// routability after dropping k random links from a seeded stream. A pure
// function of (key's params, links, seed).
type FaultsResponse struct {
	Key string `json:"key"`
	// LinksRemoved is the number of links actually dropped (the request's
	// count clamped to the wire count).
	LinksRemoved int    `json:"links_removed"`
	Wires        int    `json:"wires"`
	Seed         uint64 `json:"seed"`
	// Connected reports whether the switch graph stays in one component.
	Connected bool `json:"connected"`
	// Routable reports whether every leaf pair keeps an up/down path
	// (folded Clos kinds); for rrn it equals Connected.
	Routable bool `json:"routable"`
	// UnroutablePairs counts leaf pairs without an up/down path (folded
	// Clos kinds; 0 for rrn).
	UnroutablePairs int `json:"unroutable_pairs"`
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(w, r.URL.Query().Get("key"))
	if !ok {
		return
	}
	k, err := queryInt(r, "links")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if k < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("links %d < 0", k))
		return
	}
	seed, err := querySeed(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	stream := rng.At(seed, rng.StringCoord("rfcd/faults"))
	resp := FaultsResponse{Key: t.Key, Seed: seed, Wires: t.Wires()}
	if t.RRN != nil {
		g := t.RRN.G.Clone()
		edges := g.Edges()
		stream.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		if k > len(edges) {
			k = len(edges)
		}
		for _, e := range edges[:k] {
			g.RemoveEdge(int(e.U), int(e.V))
		}
		resp.LinksRemoved = k
		resp.Connected = g.IsConnected()
		resp.Routable = resp.Connected
		writeJSON(w, http.StatusOK, resp)
		return
	}
	faulty := t.Clos.Clone()
	links := faulty.Links()
	stream.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	if k > len(links) {
		k = len(links)
	}
	for _, l := range links[:k] {
		faulty.RemoveLink(l.A, l.B)
	}
	resp.LinksRemoved = k
	resp.Connected = faulty.SwitchGraph().IsConnected()
	ud := routing.New(faulty)
	resp.UnroutablePairs = ud.UnroutablePairs(0)
	resp.Routable = resp.UnroutablePairs == 0
	writeJSON(w, http.StatusOK, resp)
}
