package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"rfclos/internal/service"
	"rfclos/internal/service/client"
)

// TestConcurrentRequestsSingleflightAndDeterminism is the serving-layer
// acceptance test: it fires >= 64 concurrent requests for a mix of
// identical and distinct topology keys against one shared server and
// asserts (a) singleflight — every key is built exactly once no matter how
// many requests raced on it — and (b) determinism under concurrency — each
// /v1/path response is byte-identical to the same query answered by a
// fresh server that saw no concurrency at all. Run under -race in CI.
func TestConcurrentRequestsSingleflightAndDeterminism(t *testing.T) {
	specs := []service.Spec{
		{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 1},
		{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 2},
		{Kind: "rfc", Radix: 8, Levels: 2, Leaves: 8, Seed: 1},
		{Kind: "cft", Radix: 8, Levels: 3},
	}
	const perSpec = 16 // 4 specs x 16 = 64 concurrent requests
	total := perSpec * len(specs)

	shared := service.New(service.Options{CacheSize: 16})
	ts := httptest.NewServer(shared.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	type result struct {
		spec int
		sum  *service.TopologySummary
		path []byte
		err  error
	}
	results := make([]result, total)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < total; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait() // line every goroutine up before the first request
			res := result{spec: i % len(specs)}
			sp := specs[res.spec]
			res.sum, res.err = c.Build(ctx, sp)
			if res.err == nil {
				// Vary (src, dst) within the spec so cached path lookups hit
				// different index rows concurrently.
				src := i % 4
				dst := res.sum.IndexLeaves - 1 - i%4
				res.path, res.err = c.PathBytes(ctx, res.sum.Key, src, dst, 7)
			}
			results[i] = res
		}(i)
	}
	start.Done()
	done.Wait()

	keys := map[int]string{}
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("request %d (spec %d): %v", i, res.spec, res.err)
		}
		if prev, ok := keys[res.spec]; ok && prev != res.sum.Key {
			t.Fatalf("spec %d resolved to two keys: %s and %s", res.spec, prev, res.sum.Key)
		}
		keys[res.spec] = res.sum.Key
	}
	if len(keys) != len(specs) {
		t.Fatalf("%d distinct keys for %d distinct specs", len(keys), len(specs))
	}
	for spec, key := range keys {
		if n := shared.Cache().BuildsFor(key); n != 1 {
			t.Errorf("spec %d key %s: %d builds under %d concurrent requests, want exactly 1",
				spec, key, n, perSpec)
		}
	}

	// A fresh, unshared server answering the same queries sequentially must
	// produce byte-identical path responses — concurrency and cache state
	// leave no trace in response bodies.
	fresh := service.New(service.Options{CacheSize: 16})
	ts2 := httptest.NewServer(fresh.Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL)
	for i, res := range results {
		sp := specs[res.spec]
		if _, err := c2.Build(ctx, sp); err != nil {
			t.Fatal(err)
		}
		src := i % 4
		dst := res.sum.IndexLeaves - 1 - i%4
		want, err := c2.PathBytes(ctx, res.sum.Key, src, dst, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.path, want) {
			t.Fatalf("request %d: concurrent path response differs from fresh server:\n%s\n%s",
				i, res.path, want)
		}
	}
}

// TestConcurrentMixedEndpoints hammers every read endpoint at once over one
// cached build, for the race detector's benefit.
func TestConcurrentMixedEndpoints(t *testing.T) {
	srv := service.New(service.Options{CacheSize: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	sp := service.Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 3}
	sum, err := c.Build(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			switch i % 4 {
			case 0:
				_, err = c.PathBytes(ctx, sum.Key, 0, 15, uint64(i+1))
			case 1:
				_, err = c.Export(ctx, sum.Key, "dot")
			case 2:
				_, err = c.Faults(ctx, sum.Key, 4, uint64(i+1))
			case 3:
				_, err = c.Expand(ctx, service.ExpandRequest{Key: sum.Key, Increments: 1})
			}
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
