package service_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"rfclos/internal/service"
	"rfclos/internal/service/client"
)

// BenchmarkCachedPath measures GET /v1/path throughput against a warm
// cache through the full HTTP stack (in-process server + Go client), the
// serving-layer datapoint scripts/bench.sh records. Reported in req/sec.
func BenchmarkCachedPath(b *testing.B) {
	srv := service.New(service.Options{CacheSize: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	sum, err := c.Build(ctx, service.Spec{Kind: "rfc", Radix: 16, Levels: 3, Leaves: 48, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n1 := sum.IndexLeaves
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PathBytes(ctx, sum.Key, i%n1, (i*7+3)%n1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}
