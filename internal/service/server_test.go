package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rfclos/internal/topology"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{CacheSize: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postJSON sends v to path and decodes the response into out, returning the
// status code.
func postJSON(t *testing.T, base, path string, v any, out any) int {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// getBody fetches path and returns status and raw body.
func getBody(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func buildTopology(t *testing.T, base string, sp Spec) TopologySummary {
	t.Helper()
	var sum TopologySummary
	if code := postJSON(t, base, "/v1/topology", sp, &sum); code != http.StatusOK {
		t.Fatalf("POST /v1/topology %+v: HTTP %d", sp, code)
	}
	return sum
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getBody(t, ts.URL, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: HTTP %d body %q", code, body)
	}
	code, body = getBody(t, ts.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if !strings.Contains(string(body), `rfcd_requests_total{endpoint="GET /healthz"} 1`) {
		t.Errorf("metrics missing healthz request counter:\n%s", body)
	}
}

func TestTopologyEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	sp := Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 1}
	sum := buildTopology(t, ts.URL, sp)
	if sum.Cached {
		t.Error("first build reported cached")
	}
	if !sum.Routable {
		t.Error("rfc build not routable")
	}
	if sum.Terminals != 16*8/2 {
		t.Errorf("terminals = %d, want %d", sum.Terminals, 16*8/2)
	}
	if sum.Switches != 2*16+8 {
		t.Errorf("switches = %d, want %d", sum.Switches, 2*16+8)
	}
	if sum.IndexLeaves != 16 {
		t.Errorf("index_leaves = %d, want 16 (index should be precomputed)", sum.IndexLeaves)
	}
	if sum.XParam == nil || sum.ThresholdRadix == nil {
		t.Error("rfc summary missing Theorem 4.2 fields")
	}
	again := buildTopology(t, ts.URL, sp)
	if !again.Cached {
		t.Error("second build was not a cache hit")
	}
	if n := srv.Cache().BuildsFor(sum.Key); n != 1 {
		t.Errorf("BuildsFor(%s) = %d, want 1", sum.Key, n)
	}
	// Apart from Cached, the two summaries must agree byte-for-byte.
	again.Cached = sum.Cached
	a, _ := json.Marshal(sum)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Errorf("summaries differ beyond the cached flag:\n%s\n%s", a, b)
	}

	if code := postJSON(t, ts.URL, "/v1/topology", Spec{Kind: "nope"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown kind: HTTP %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/topology", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestExportEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	sp := Spec{Kind: "cft", Radix: 8, Levels: 3}
	sum := buildTopology(t, ts.URL, sp)

	norm, err := sp.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Build(norm)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range topology.ExportFormats() {
		code, got := getBody(t, ts.URL, "/v1/topology/"+sum.Key+"/export?format="+format)
		if code != http.StatusOK {
			t.Fatalf("export %s: HTTP %d", format, code)
		}
		var want bytes.Buffer
		if err := topology.Export(offline.Clos, format, &want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("online %s export differs from offline encoder", format)
		}
	}
	// Default format is json.
	code, def := getBody(t, ts.URL, "/v1/topology/"+sum.Key+"/export")
	codeJSON, asJSON := getBody(t, ts.URL, "/v1/topology/"+sum.Key+"/export?format=json")
	if code != http.StatusOK || codeJSON != http.StatusOK || !bytes.Equal(def, asJSON) {
		t.Error("default export format is not json")
	}
	if code, _ := getBody(t, ts.URL, "/v1/topology/"+sum.Key+"/export?format=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus format: HTTP %d, want 400", code)
	}
	if code, _ := getBody(t, ts.URL, "/v1/topology/ffffffffffffffff/export"); code != http.StatusNotFound {
		t.Errorf("unknown key: HTTP %d, want 404", code)
	}
}

func TestPathEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	sum := buildTopology(t, ts.URL, Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 1})

	code, body := getBody(t, ts.URL, fmt.Sprintf("/v1/path?key=%s&src=0&dst=15&seed=7", sum.Key))
	if code != http.StatusOK {
		t.Fatalf("path: HTTP %d body %s", code, body)
	}
	var p PathResponse
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if !p.Routable || p.MinTurn == nil || *p.MinTurn < 1 {
		t.Fatalf("path response not routable: %+v", p)
	}
	if len(p.Path) != p.Hops+1 {
		t.Errorf("hops = %d but path has %d switches", p.Hops, len(p.Path))
	}
	if p.Hops != 2**p.MinTurn {
		t.Errorf("hops = %d, want 2*min_turn = %d", p.Hops, 2**p.MinTurn)
	}
	if p.Path[0] != 0 || p.Path[len(p.Path)-1] != 15 {
		t.Errorf("path endpoints %d..%d, want 0..15", p.Path[0], p.Path[len(p.Path)-1])
	}
	// Identical query → identical bytes.
	_, body2 := getBody(t, ts.URL, fmt.Sprintf("/v1/path?key=%s&src=0&dst=15&seed=7", sum.Key))
	if !bytes.Equal(body, body2) {
		t.Error("repeated path query returned different bytes")
	}
	// Self-path: zero hops.
	code, body = getBody(t, ts.URL, fmt.Sprintf("/v1/path?key=%s&src=3&dst=3", sum.Key))
	if code != http.StatusOK {
		t.Fatalf("self path: HTTP %d", code)
	}
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Hops != 0 || len(p.Path) != 1 {
		t.Errorf("self path hops=%d len=%d, want 0 hops", p.Hops, len(p.Path))
	}

	for _, q := range []string{
		"/v1/path?key=" + sum.Key + "&src=0&dst=99",
		"/v1/path?key=" + sum.Key + "&src=-1&dst=0",
		"/v1/path?key=" + sum.Key + "&dst=0",
		"/v1/path?key=" + sum.Key + "&src=x&dst=0",
		"/v1/path?key=" + sum.Key + "&src=0&dst=0&seed=-2",
	} {
		if code, _ := getBody(t, ts.URL, q); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", q, code)
		}
	}
	if code, _ := getBody(t, ts.URL, "/v1/path?key=none&src=0&dst=1"); code != http.StatusNotFound {
		t.Errorf("unknown key: HTTP %d, want 404", code)
	}
}

func TestPathEndpointRRN(t *testing.T) {
	_, ts := newTestServer(t)
	sum := buildTopology(t, ts.URL, Spec{Kind: "rrn", N: 32, Degree: 4, Terms: 2, Seed: 1})
	code, body := getBody(t, ts.URL, fmt.Sprintf("/v1/path?key=%s&src=0&dst=31", sum.Key))
	if code != http.StatusOK {
		t.Fatalf("rrn path: HTTP %d body %s", code, body)
	}
	var p PathResponse
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.MinTurn != nil {
		t.Error("rrn path response carries min_turn")
	}
	if !p.Routable || len(p.Path) != p.Hops+1 {
		t.Errorf("rrn path malformed: %+v", p)
	}
}

func TestExpandEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	sp := Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 1}
	sum := buildTopology(t, ts.URL, sp)

	var exp ExpandResponse
	if code := postJSON(t, ts.URL, "/v1/expand", ExpandRequest{Key: sum.Key}, &exp); code != http.StatusOK {
		t.Fatalf("expand: HTTP %d", code)
	}
	if exp.Increments != 1 {
		t.Errorf("increments defaulted to %d, want 1", exp.Increments)
	}
	if exp.LeavesAfter != 18 {
		t.Errorf("leaves_after = %d, want 18", exp.LeavesAfter)
	}
	if exp.TerminalsAfter-exp.TerminalsBefore != sp.Radix {
		t.Errorf("terminal growth = %d, want R = %d", exp.TerminalsAfter-exp.TerminalsBefore, sp.Radix)
	}
	if exp.MaxLeaves <= sp.Leaves {
		t.Errorf("max_leaves = %d, want > %d for this roomy config", exp.MaxLeaves, sp.Leaves)
	}
	wantInc := (exp.MaxLeaves - sp.Leaves) / 2
	if exp.IncrementsToThreshold != wantInc {
		t.Errorf("increments_to_threshold = %d, want %d", exp.IncrementsToThreshold, wantInc)
	}
	if exp.AtThreshold || exp.PastThreshold {
		t.Error("threshold flags set well below the threshold")
	}
	if exp.XAfter >= exp.XBefore || exp.SuccessAfter >= exp.SuccessBefore {
		t.Error("expansion should shrink the Theorem 4.2 margin")
	}
	if exp.RewiredLinks != (sp.Levels-1)*sp.Radix {
		t.Errorf("rewired_links = %d, want (l-1)*R = %d", exp.RewiredLinks, (sp.Levels-1)*sp.Radix)
	}
	// Same request, same response bytes (purity).
	var exp2 ExpandResponse
	postJSON(t, ts.URL, "/v1/expand", ExpandRequest{Key: sum.Key}, &exp2)
	a, _ := json.Marshal(exp)
	b, _ := json.Marshal(exp2)
	if !bytes.Equal(a, b) {
		t.Error("repeated expand request returned a different plan")
	}

	cft := buildTopology(t, ts.URL, Spec{Kind: "cft", Radix: 8, Levels: 3})
	if code := postJSON(t, ts.URL, "/v1/expand", ExpandRequest{Key: cft.Key}, nil); code != http.StatusBadRequest {
		t.Errorf("expand cft: HTTP %d, want 400", code)
	}
	if code := postJSON(t, ts.URL, "/v1/expand", ExpandRequest{Key: sum.Key, Increments: -1}, nil); code != http.StatusBadRequest {
		t.Errorf("negative increments: HTTP %d, want 400", code)
	}
	if code := postJSON(t, ts.URL, "/v1/expand", ExpandRequest{Key: "none"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown key: HTTP %d, want 404", code)
	}
}

func TestFaultsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	sum := buildTopology(t, ts.URL, Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 1})

	code, body := getBody(t, ts.URL, fmt.Sprintf("/v1/faults?key=%s&links=3&seed=5", sum.Key))
	if code != http.StatusOK {
		t.Fatalf("faults: HTTP %d body %s", code, body)
	}
	var f FaultsResponse
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.LinksRemoved != 3 || f.Wires != sum.Wires {
		t.Errorf("faults removed %d of %d wires, want 3 of %d", f.LinksRemoved, f.Wires, sum.Wires)
	}
	if f.Routable != (f.UnroutablePairs == 0) {
		t.Errorf("routable=%v inconsistent with unroutable_pairs=%d", f.Routable, f.UnroutablePairs)
	}
	// Zero faults leave the build intact.
	_, body = getBody(t, ts.URL, fmt.Sprintf("/v1/faults?key=%s&links=0", sum.Key))
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if !f.Connected || !f.Routable || f.UnroutablePairs != 0 {
		t.Errorf("zero-fault response reports damage: %+v", f)
	}
	// Removing every link disconnects everything; count is clamped.
	_, body = getBody(t, ts.URL, fmt.Sprintf("/v1/faults?key=%s&links=%d", sum.Key, sum.Wires+100))
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.LinksRemoved != sum.Wires || f.Connected || f.Routable {
		t.Errorf("total destruction response: %+v", f)
	}
	// Identical query → identical bytes (seeded stream, no server state).
	_, b1 := getBody(t, ts.URL, fmt.Sprintf("/v1/faults?key=%s&links=7&seed=9", sum.Key))
	_, b2 := getBody(t, ts.URL, fmt.Sprintf("/v1/faults?key=%s&links=7&seed=9", sum.Key))
	if !bytes.Equal(b1, b2) {
		t.Error("repeated fault query returned different bytes")
	}

	if code, _ := getBody(t, ts.URL, "/v1/faults?key="+sum.Key+"&links=-1"); code != http.StatusBadRequest {
		t.Errorf("negative links: HTTP %d, want 400", code)
	}
	if code, _ := getBody(t, ts.URL, "/v1/faults?key=none&links=1"); code != http.StatusNotFound {
		t.Errorf("unknown key: HTTP %d, want 404", code)
	}
}

func TestMetricsReflectTraffic(t *testing.T) {
	srv, ts := newTestServer(t)
	sp := Spec{Kind: "cft", Radix: 4, Levels: 2}
	buildTopology(t, ts.URL, sp)
	buildTopology(t, ts.URL, sp)
	getBody(t, ts.URL, "/v1/path?key=bogus&src=0&dst=1") // 404 → http_errors

	reg := srv.Metrics()
	for name, want := range map[string]int64{
		metricCacheHits:   1,
		metricCacheMisses: 1,
		metricBuilds:      1,
		metricHTTPErrors:  1,
	} {
		if got := reg.Value(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if reg.Value(metricBuildNS) <= 0 {
		t.Error("build time counter never advanced")
	}
}

func TestThroughputEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	sum := buildTopology(t, ts.URL, Spec{Kind: "rfc", Radix: 8, Levels: 3, Leaves: 16, Seed: 1})

	var resp ThroughputResponse
	req := ThroughputRequest{Key: sum.Key, Matrix: "hotspot", Load: 0.8, Seed: 9}
	if code := postJSON(t, ts.URL, "/v1/throughput", req, &resp); code != http.StatusOK {
		t.Fatalf("POST /v1/throughput: HTTP %d", code)
	}
	if resp.Key != sum.Key || resp.Matrix != "hotspot" || resp.Load != 0.8 || resp.Seed != 9 {
		t.Errorf("request echo wrong: %+v", resp)
	}
	if resp.Flows <= 0 || resp.Unroutable != 0 {
		t.Errorf("routable build: flows=%d unroutable=%d", resp.Flows, resp.Unroutable)
	}
	if resp.Accepted <= 0 || resp.Accepted > 0.8+1e-9 {
		t.Errorf("accepted %.6f outside (0, load]", resp.Accepted)
	}
	if resp.MinRate > resp.MeanRate || resp.MeanRate > resp.MaxRate {
		t.Errorf("rate summary not ordered: %+v", resp)
	}
	if resp.Jain <= 0 || resp.Jain > 1+1e-9 {
		t.Errorf("jain %.6f outside (0, 1]", resp.Jain)
	}

	// Identical requests are byte-identically deterministic.
	var again ThroughputResponse
	postJSON(t, ts.URL, "/v1/throughput", req, &again)
	if resp != again {
		t.Errorf("repeat request differs: %+v vs %+v", resp, again)
	}

	// Defaults: uniform matrix at full load, seed 1.
	var def ThroughputResponse
	if code := postJSON(t, ts.URL, "/v1/throughput", ThroughputRequest{Key: sum.Key}, &def); code != http.StatusOK {
		t.Fatalf("defaulted POST /v1/throughput: HTTP %d", code)
	}
	if def.Matrix != "uniform" || def.Load != 1 || def.Seed != 1 {
		t.Errorf("defaults not applied: %+v", def)
	}

	// RRN builds solve too (table built per request).
	rrn := buildTopology(t, ts.URL, Spec{Kind: "rrn", N: 32, Degree: 4, Terms: 2, Seed: 1})
	var rres ThroughputResponse
	if code := postJSON(t, ts.URL, "/v1/throughput", ThroughputRequest{Key: rrn.Key}, &rres); code != http.StatusOK {
		t.Fatalf("rrn POST /v1/throughput: HTTP %d", code)
	}
	if rres.Flows <= 0 || rres.Accepted <= 0 {
		t.Errorf("rrn throughput: %+v", rres)
	}

	// Errors: unknown key, unknown matrix, negative load.
	if code := postJSON(t, ts.URL, "/v1/throughput", ThroughputRequest{Key: "none"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown key: HTTP %d, want 404", code)
	}
	if code := postJSON(t, ts.URL, "/v1/throughput", ThroughputRequest{Key: sum.Key, Matrix: "nope"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown matrix: HTTP %d, want 400", code)
	}
	if code := postJSON(t, ts.URL, "/v1/throughput", ThroughputRequest{Key: sum.Key, Load: -1}, nil); code != http.StatusBadRequest {
		t.Errorf("negative load: HTTP %d, want 400", code)
	}
}
