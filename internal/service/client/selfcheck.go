package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"strings"
	"time"

	"rfclos/internal/service"
	"rfclos/internal/topology"
)

// Selfcheck starts an in-process rfcd server on a loopback port and drives
// this client through every endpoint, asserting the serving invariants:
// the second identical build is a cache hit served without a rebuild,
// /v1/path responses are byte-identical across repeats, exports match the
// offline encoders, and /metrics reflects the traffic. It is the smoke
// test `rfcd -selfcheck` and CI run; any violation is returned as an
// error. Progress lines go to out (nil discards them).
func Selfcheck(out io.Writer) error {
	if out == nil {
		out = io.Discard
	}
	srv := service.New(service.Options{CacheSize: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := New("http://" + ln.Addr().String())
	step := func(format string, args ...any) { fmt.Fprintf(out, "selfcheck: "+format+"\n", args...) }

	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	step("healthz ok")

	sp := service.Spec{Kind: "rfc", Radix: 16, Levels: 3, Leaves: 48, Seed: 1}
	first, err := c.Build(ctx, sp)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if first.Cached {
		return fmt.Errorf("first build of %s reported cached", first.Canonical)
	}
	if !first.Routable {
		return fmt.Errorf("build %s not routable", first.Canonical)
	}
	if first.IndexTier != "dense" {
		return fmt.Errorf("index tier for the %d-leaf build = %q, want dense", first.IndexLeaves, first.IndexTier)
	}
	second, err := c.Build(ctx, sp)
	if err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}
	if !second.Cached {
		return fmt.Errorf("second build of %s was not a cache hit", first.Canonical)
	}
	if got := srv.Cache().BuildsFor(first.Key); got != 1 {
		return fmt.Errorf("key %s built %d times, want 1", first.Key, got)
	}
	step("topology %s built once, second request hit the cache", first.Key)

	p1, err := c.PathBytes(ctx, first.Key, 0, first.IndexLeaves-1, 7)
	if err != nil {
		return fmt.Errorf("path: %w", err)
	}
	p2, err := c.PathBytes(ctx, first.Key, 0, first.IndexLeaves-1, 7)
	if err != nil {
		return fmt.Errorf("path repeat: %w", err)
	}
	if !bytes.Equal(p1, p2) {
		return fmt.Errorf("path responses differ across repeats:\n%s\n%s", p1, p2)
	}
	step("path query deterministic (%d bytes)", len(p1))

	// Batch path queries must agree element-wise with the corresponding
	// single-path responses under the same seed.
	pairs := [][2]int{{0, first.IndexLeaves - 1}, {1, 2}, {3, 3}, {first.IndexLeaves - 1, 0}}
	batch, err := c.Paths(ctx, first.Key, pairs, 7)
	if err != nil {
		return fmt.Errorf("paths batch: %w", err)
	}
	if batch.Count != len(pairs) || len(batch.Paths) != len(pairs) {
		return fmt.Errorf("paths batch returned %d/%d results, want %d", batch.Count, len(batch.Paths), len(pairs))
	}
	for i, pair := range pairs {
		single, err := c.Path(ctx, first.Key, pair[0], pair[1], 7)
		if err != nil {
			return fmt.Errorf("path for batch pair %v: %w", pair, err)
		}
		got := batch.Paths[i]
		if got.Src != single.Src || got.Dst != single.Dst || got.Routable != single.Routable ||
			got.Hops != single.Hops || !slices.Equal(got.Path, single.Path) ||
			(got.MinTurn == nil) != (single.MinTurn == nil) ||
			(got.MinTurn != nil && *got.MinTurn != *single.MinTurn) {
			return fmt.Errorf("batch result %d for pair %v differs from the single query", i, pair)
		}
	}
	step("batch /v1/paths agrees with %d single queries", len(pairs))

	// Exports must be byte-identical to the offline encoders applied to an
	// independent build of the same spec (the shared-encoder guarantee
	// rfcgen -format relies on).
	norm, err := sp.Normalize()
	if err != nil {
		return err
	}
	offline, err := service.Build(norm)
	if err != nil {
		return fmt.Errorf("offline rebuild: %w", err)
	}
	for _, format := range topology.ExportFormats() {
		got, err := c.Export(ctx, first.Key, format)
		if err != nil {
			return fmt.Errorf("export %s: %w", format, err)
		}
		var want bytes.Buffer
		if err := topology.Export(offline.Clos, format, &want); err != nil {
			return err
		}
		if !bytes.Equal(got, want.Bytes()) {
			return fmt.Errorf("online %s export differs from the offline encoder", format)
		}
	}
	step("exports byte-identical to offline encoders (%s)", strings.Join(topology.ExportFormats(), ", "))

	exp, err := c.Expand(ctx, service.ExpandRequest{Key: first.Key, Increments: 1})
	if err != nil {
		return fmt.Errorf("expand: %w", err)
	}
	if exp.TerminalsAfter-exp.TerminalsBefore != sp.Radix {
		return fmt.Errorf("expand added %d terminals, want %d", exp.TerminalsAfter-exp.TerminalsBefore, sp.Radix)
	}
	step("expand +1 increment: %d -> %d terminals, %d links rewired, routable=%v",
		exp.TerminalsBefore, exp.TerminalsAfter, exp.RewiredLinks, exp.Routable)

	flt, err := c.Faults(ctx, first.Key, 5, 3)
	if err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	if flt.LinksRemoved != 5 {
		return fmt.Errorf("faults removed %d links, want 5", flt.LinksRemoved)
	}
	step("faults -5 links: connected=%v routable=%v unroutable_pairs=%d",
		flt.Connected, flt.Routable, flt.UnroutablePairs)

	// The flow-level solver must be deterministic against the cached build:
	// identical requests return identical summaries, feasible per terminal.
	treq := service.ThroughputRequest{Key: first.Key, Matrix: "uniform", Load: 1, Seed: 7}
	thr1, err := c.Throughput(ctx, treq)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	thr2, err := c.Throughput(ctx, treq)
	if err != nil {
		return fmt.Errorf("throughput repeat: %w", err)
	}
	if *thr1 != *thr2 {
		return fmt.Errorf("throughput responses differ across repeats: %+v vs %+v", thr1, thr2)
	}
	if thr1.Accepted <= 0 || thr1.Accepted > 1 || thr1.Unroutable != 0 {
		return fmt.Errorf("throughput summary implausible: %+v", thr1)
	}
	step("throughput deterministic: accepted=%.4f min=%.4f jain=%.4f rounds=%d",
		thr1.Accepted, thr1.MinRate, thr1.Jain, thr1.Rounds)

	metrics, err := c.MetricsText(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		"rfcd_cache_hits_total 1",
		"rfcd_cache_misses_total 1",
		"rfcd_builds_total 1",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	step("metrics ok")
	return nil
}
