// Package client is the Go client for the rfcd topology-query service
// (internal/service): typed wrappers over the HTTP/JSON API plus the
// selfcheck harness cmd/rfcd -selfcheck and CI run against an in-process
// server.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"rfclos/internal/service"
)

// Client talks to one rfcd server.
type Client struct {
	// Base is the server URL prefix, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the server at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// get performs a GET and returns the raw body, failing on non-2xx status.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// post sends body as JSON and returns the raw response body.
func (c *Client) post(ctx context.Context, path string, body any) ([]byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("client: %s %s: %s (HTTP %d)", req.Method, req.URL.Path, apiErr.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("client: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	return data, nil
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	body, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	if strings.TrimSpace(string(body)) != "ok" {
		return fmt.Errorf("client: unexpected health body %q", body)
	}
	return nil
}

// Build requests POST /v1/topology for sp, building or returning the
// cached topology.
func (c *Client) Build(ctx context.Context, sp service.Spec) (*service.TopologySummary, error) {
	body, err := c.post(ctx, "/v1/topology", sp)
	if err != nil {
		return nil, err
	}
	var sum service.TopologySummary
	if err := json.Unmarshal(body, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// pathQuery renders the /v1/path query string.
func pathQuery(key string, src, dst int, seed uint64) string {
	q := url.Values{}
	q.Set("key", key)
	q.Set("src", strconv.Itoa(src))
	q.Set("dst", strconv.Itoa(dst))
	q.Set("seed", strconv.FormatUint(seed, 10))
	return "/v1/path?" + q.Encode()
}

// PathBytes requests GET /v1/path and returns the raw response body —
// the byte-identity hook for determinism checks and benchmarks.
func (c *Client) PathBytes(ctx context.Context, key string, src, dst int, seed uint64) ([]byte, error) {
	return c.get(ctx, pathQuery(key, src, dst, seed))
}

// Path requests GET /v1/path, decoded.
func (c *Client) Path(ctx context.Context, key string, src, dst int, seed uint64) (*service.PathResponse, error) {
	body, err := c.PathBytes(ctx, key, src, dst, seed)
	if err != nil {
		return nil, err
	}
	var resp service.PathResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Paths requests POST /v1/paths: a batch of src/dst pairs resolved against
// one cached topology in a single round trip. Each element of the response
// matches the corresponding single Path query with the same seed.
func (c *Client) Paths(ctx context.Context, key string, pairs [][2]int, seed uint64) (*service.PathsResponse, error) {
	body, err := c.post(ctx, "/v1/paths", service.PathsRequest{Key: key, Pairs: pairs, Seed: seed})
	if err != nil {
		return nil, err
	}
	var resp service.PathsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Expand requests POST /v1/expand.
func (c *Client) Expand(ctx context.Context, req service.ExpandRequest) (*service.ExpandResponse, error) {
	body, err := c.post(ctx, "/v1/expand", req)
	if err != nil {
		return nil, err
	}
	var resp service.ExpandResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Throughput requests POST /v1/throughput: solve one traffic matrix on the
// cached topology with the flow-level max-min-fair backend.
func (c *Client) Throughput(ctx context.Context, req service.ThroughputRequest) (*service.ThroughputResponse, error) {
	body, err := c.post(ctx, "/v1/throughput", req)
	if err != nil {
		return nil, err
	}
	var resp service.ThroughputResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Faults requests GET /v1/faults: drop links random links from the seeded
// stream and report connectivity and routability.
func (c *Client) Faults(ctx context.Context, key string, links int, seed uint64) (*service.FaultsResponse, error) {
	q := url.Values{}
	q.Set("key", key)
	q.Set("links", strconv.Itoa(links))
	q.Set("seed", strconv.FormatUint(seed, 10))
	body, err := c.get(ctx, "/v1/faults?"+q.Encode())
	if err != nil {
		return nil, err
	}
	var resp service.FaultsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Export requests GET /v1/topology/{key}/export in the given format
// ("json", "dot" or "edges") and returns the raw bytes.
func (c *Client) Export(ctx context.Context, key, format string) ([]byte, error) {
	return c.get(ctx, "/v1/topology/"+url.PathEscape(key)+"/export?format="+url.QueryEscape(format))
}

// MetricsText returns the raw /metrics body.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	body, err := c.get(ctx, "/metrics")
	return string(body), err
}
