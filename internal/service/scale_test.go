package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rfclos/internal/rng"
)

// scaleSpec is the ≥64K-leaf acceptance topology: a 3-level XGFT with
// N1 = 65536 leaves, N2 = 1024, N3 = 8 (66568 switches). Its dense turn
// table would be N1² = 4 GiB; the succinct tier indexes it in tens of
// megabytes.
func scaleSpec() Spec {
	return Spec{Kind: "xgft", M: []int{4, 256, 256}, W: []int{1, 4, 2}, Radix: 258}
}

// TestLargeTopologySuccinctServing is the scale acceptance test: a 64K-leaf
// topology builds, gets a succinct index at ≤ 10% of the dense footprint
// (asserted via SizeBytes), and answers GET /v1/path through rfcd's handler
// stack — all without the dense N1² table. It allocates ~2 GiB and runs for
// tens of seconds, so it is skipped under -short; CI runs it as a dedicated
// smoke step under GOMEMLIMIT.
func TestLargeTopologySuccinctServing(t *testing.T) {
	if testing.Short() {
		t.Skip("large-topology smoke test skipped in -short mode")
	}
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(scaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/topology", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sum TopologySummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/topology: status %d", resp.StatusCode)
	}
	if sum.IndexLeaves != 65536 {
		t.Fatalf("IndexLeaves = %d, want 65536", sum.IndexLeaves)
	}
	if sum.IndexTier != "succinct" {
		t.Fatalf("IndexTier = %q, want succinct (dense table must not build at 64K leaves)", sum.IndexTier)
	}
	dense := int64(sum.IndexLeaves) * int64(sum.IndexLeaves)
	if int64(sum.IndexBytes)*10 > dense {
		t.Fatalf("IndexBytes = %d, want <= 10%% of the dense equivalent %d", sum.IndexBytes, dense)
	}
	if !sum.Routable {
		t.Fatal("the XGFT must be routable")
	}

	if sum.CoverBytes <= 0 || sum.CoverRepr == "" {
		t.Fatalf("summary missing cover accounting: bytes=%d repr=%q", sum.CoverBytes, sum.CoverRepr)
	}

	// Path query through the full handler stack, leaf 0 to the last leaf.
	resp, err = http.Get(ts.URL + "/v1/path?key=" + sum.Key + "&src=0&dst=65535")
	if err != nil {
		t.Fatal(err)
	}
	var pr PathResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/path: status %d", resp.StatusCode)
	}
	if !pr.Routable || pr.MinTurn == nil || *pr.MinTurn <= 0 {
		t.Fatalf("path 0->65535 not served: %+v", pr)
	}
	if len(pr.Path) != 2**pr.MinTurn+1 {
		t.Fatalf("path length %d, want %d for turn %d", len(pr.Path), 2**pr.MinTurn+1, *pr.MinTurn)
	}

	// Sampled same-answers check at scale: the succinct index must agree
	// with the cover-set computation on random pairs (the exhaustive
	// dense-vs-succinct property runs at small scale in internal/routing).
	topo, ok := srv.Cache().Lookup(sum.Key)
	if !ok {
		t.Fatal("built topology missing from cache")
	}

	// Compressed-cover acceptance: the router's cover memory must be at
	// most 10% of what the pre-compression representation would cost (one
	// N1-bit bitset per non-nil cover set).
	plain := plainCoverCost(topo)
	if int64(sum.CoverBytes)*10 > plain {
		t.Fatalf("CoverBytes = %d, want <= 10%% of the plain-bitset cost %d", sum.CoverBytes, plain)
	}
	if got := topo.Router.CoverBytes(); got != sum.CoverBytes {
		t.Fatalf("summary CoverBytes %d != Router.CoverBytes %d", sum.CoverBytes, got)
	}

	r := rng.New(123)
	n := topo.Index.Leaves()
	for i := 0; i < 2000; i++ {
		src, dst := r.Intn(n), r.Intn(n)
		if got, want := topo.Index.MinTurn(src, dst), topo.Router.MinTurn(src, dst); got != want {
			t.Fatalf("MinTurn(%d, %d) = %d, cover sets say %d", src, dst, got, want)
		}
	}
}

// plainCoverCost is what the pre-compression cover representation would
// cost for t's router: one N1-bit bitset for every non-nil cover set
// (switches at levels 1..l-r for turn r, all levels for desc).
func plainCoverCost(t *Topology) int64 {
	l := t.Clos.Levels()
	words := int64((t.Clos.LevelSize(1) + 63) / 64)
	sets := int64(0)
	for r := 0; r < l; r++ {
		for lev := 1; lev <= l-r; lev++ {
			sets += int64(t.Clos.LevelSize(lev))
		}
	}
	return sets * words * 8
}

// paperScaleSpec is the paper-scale serving topology: a 3-level XGFT with
// N1 = 262144 leaves (1M terminals; the paper's 200K-terminal scenario C
// with headroom), N2 = 2048, N3 = 8. Its dense turn table would be 64 GiB
// and the old plain-bitset covers ~26 GB — only the compressed LeafSet
// covers plus the succinct index make it servable under GOMEMLIMIT=4GiB.
func paperScaleSpec() Spec {
	return Spec{Kind: "xgft", M: []int{4, 512, 512}, W: []int{1, 4, 2}, Radix: 514}
}

// TestPaperScaleServing builds the 262144-leaf topology and serves both
// GET /v1/path and a POST /v1/paths batch through the full handler stack.
// CI runs it under GOMEMLIMIT=4GiB next to the 64K smoke.
func TestPaperScaleServing(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke test skipped in -short mode")
	}
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(paperScaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/topology", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sum TopologySummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/topology: status %d", resp.StatusCode)
	}
	const n1 = 262144
	if sum.IndexLeaves != n1 {
		t.Fatalf("IndexLeaves = %d, want %d (maxSuccinctLeaves must admit paper scale)", sum.IndexLeaves, n1)
	}
	if sum.IndexTier != "succinct" {
		t.Fatalf("IndexTier = %q, want succinct", sum.IndexTier)
	}
	if !sum.Routable {
		t.Fatal("the XGFT must be routable")
	}
	// The covers must stay compressed: a few tens of MB, not the ~26 GB
	// plain bitsets would need. 1% of the plain cost is already generous.
	topo, ok := srv.Cache().Lookup(sum.Key)
	if !ok {
		t.Fatal("built topology missing from cache")
	}
	if plain := plainCoverCost(topo); int64(sum.CoverBytes)*100 > plain {
		t.Fatalf("CoverBytes = %d, want <= 1%% of the plain-bitset cost %d", sum.CoverBytes, plain)
	}

	// The arena→CSR acceptance at 262144 leaves: the CSR level store must
	// stay measurably below the old [][]int32 arena footprint — 8 bytes per
	// wire in each direction plus two 24-byte slice headers per switch,
	// which per-switch headers dominated at this scale.
	arena := int64(topo.Clos.Wires())*8 + int64(topo.Clos.NumSwitches())*48
	if got := int64(topo.Clos.StoreBytes()); got*4 > arena*3 {
		t.Fatalf("StoreBytes = %d, want <= 75%% of the old arena cost %d", got, arena)
	}

	// The topology-store gauge must account exactly the cached build's CSR
	// + overlay bytes.
	if got, want := srv.Metrics().Value("rfcd_topology_bytes"), int64(topo.Clos.StoreBytes()); got != want {
		t.Fatalf("rfcd_topology_bytes = %d, want %d", got, want)
	}

	resp, err = http.Get(ts.URL + "/v1/path?key=" + sum.Key + "&src=0&dst=262143")
	if err != nil {
		t.Fatal(err)
	}
	var pr PathResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/path: status %d", resp.StatusCode)
	}
	if !pr.Routable || pr.MinTurn == nil || *pr.MinTurn <= 0 {
		t.Fatalf("path 0->262143 not served: %+v", pr)
	}

	// Batch endpoint at scale: the pairs span near/far destinations; each
	// result must agree with the router's own answer.
	pairs := [][2]int{{0, 262143}, {0, 1}, {5, 5}, {131072, 42}}
	payload, err := json.Marshal(PathsRequest{Key: sum.Key, Pairs: pairs, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/paths", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var batch PathsResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/paths: status %d", resp.StatusCode)
	}
	if batch.Count != len(pairs) || len(batch.Paths) != len(pairs) {
		t.Fatalf("batch returned %d/%d results, want %d", batch.Count, len(batch.Paths), len(pairs))
	}
	for i, pair := range pairs {
		res := batch.Paths[i]
		want := topo.Router.MinTurn(pair[0], pair[1])
		if res.MinTurn == nil || *res.MinTurn != want {
			t.Fatalf("batch pair %v MinTurn = %v, router says %d", pair, res.MinTurn, want)
		}
		if !res.Routable {
			t.Fatalf("batch pair %v not routable", pair)
		}
		if wantHops := 2 * want; res.Hops != wantHops {
			t.Fatalf("batch pair %v hops = %d, want %d", pair, res.Hops, wantHops)
		}
	}
}

// millionSwitchSpec is the >1M-switch serving topology the CSR level store
// exists for: a 3-level XGFT with N1 = N2 = 524288 and N3 = 16 — 1,048,592
// switches, 2,097,152 terminals, ~5.2M wires. The old arena representation
// charged ~50 MB of per-switch slice headers on top of the wire data; the
// CSR store is two flat arrays per level/direction, and the streamed build
// never materialises wiring scratch and uncompressed covers together.
func millionSwitchSpec() Spec {
	return Spec{Kind: "xgft", M: []int{4, 8, 65536}, W: []int{1, 8, 2}, Radix: 65536}
}

// TestMillionSwitchServing is the >1M-switch smoke: the 524288-leaf build
// is wired level by level into the CSR store, indexed (succinct tier), and
// serves GET /v1/path and POST /v1/paths through the full handler stack.
// CI runs it under GOMEMLIMIT=4GiB next to the 64K and 262144-leaf smokes.
func TestMillionSwitchServing(t *testing.T) {
	if testing.Short() {
		t.Skip("million-switch smoke test skipped in -short mode")
	}
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(millionSwitchSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/topology", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sum TopologySummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/topology: status %d", resp.StatusCode)
	}
	const n1 = 524288
	if sum.IndexLeaves != n1 {
		t.Fatalf("IndexLeaves = %d, want %d (maxSuccinctLeaves must admit the million-switch build)", sum.IndexLeaves, n1)
	}
	if sum.IndexTier != "succinct" {
		t.Fatalf("IndexTier = %q, want succinct", sum.IndexTier)
	}
	if !sum.Routable {
		t.Fatal("the XGFT must be routable")
	}
	if sum.Switches <= 1<<20 {
		t.Fatalf("Switches = %d, want > 2^20", sum.Switches)
	}
	if sum.Terminals < 2<<20 {
		t.Fatalf("Terminals = %d, want >= 2M", sum.Terminals)
	}

	topo, ok := srv.Cache().Lookup(sum.Key)
	if !ok {
		t.Fatal("built topology missing from cache")
	}
	// The stored graph must stay wire-proportional: well under the old
	// arena's ~90 MB (wires*8 + switches*48) and its covers compressed.
	arena := int64(topo.Clos.Wires())*8 + int64(topo.Clos.NumSwitches())*48
	if got := int64(topo.Clos.StoreBytes()); got*4 > arena*3 {
		t.Fatalf("StoreBytes = %d, want <= 75%% of the old arena cost %d", got, arena)
	}
	if plain := plainCoverCost(topo); int64(topo.Router.CoverBytes())*100 > plain {
		t.Fatalf("CoverBytes = %d, want <= 1%% of the plain-bitset cost %d", topo.Router.CoverBytes(), plain)
	}

	resp, err = http.Get(ts.URL + "/v1/path?key=" + sum.Key + "&src=0&dst=524287")
	if err != nil {
		t.Fatal(err)
	}
	var pr PathResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/path: status %d", resp.StatusCode)
	}
	if !pr.Routable || pr.MinTurn == nil || *pr.MinTurn <= 0 {
		t.Fatalf("path 0->524287 not served: %+v", pr)
	}

	pairs := [][2]int{{0, 524287}, {0, 1}, {7, 7}, {262144, 99}}
	payload, err := json.Marshal(PathsRequest{Key: sum.Key, Pairs: pairs, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/paths", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var batch PathsResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/paths: status %d", resp.StatusCode)
	}
	if batch.Count != len(pairs) || len(batch.Paths) != len(pairs) {
		t.Fatalf("batch returned %d/%d results, want %d", batch.Count, len(batch.Paths), len(pairs))
	}
	for i, pair := range pairs {
		res := batch.Paths[i]
		want := topo.Router.MinTurn(pair[0], pair[1])
		if res.MinTurn == nil || *res.MinTurn != want || !res.Routable {
			t.Fatalf("batch pair %v MinTurn = %v routable=%v, router says %d", pair, res.MinTurn, res.Routable, want)
		}
	}
}
