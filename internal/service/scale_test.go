package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rfclos/internal/rng"
)

// scaleSpec is the ≥64K-leaf acceptance topology: a 3-level XGFT with
// N1 = 65536 leaves, N2 = 1024, N3 = 8 (66568 switches). Its dense turn
// table would be N1² = 4 GiB; the succinct tier indexes it in tens of
// megabytes.
func scaleSpec() Spec {
	return Spec{Kind: "xgft", M: []int{4, 256, 256}, W: []int{1, 4, 2}, Radix: 258}
}

// TestLargeTopologySuccinctServing is the scale acceptance test: a 64K-leaf
// topology builds, gets a succinct index at ≤ 10% of the dense footprint
// (asserted via SizeBytes), and answers GET /v1/path through rfcd's handler
// stack — all without the dense N1² table. It allocates ~2 GiB and runs for
// tens of seconds, so it is skipped under -short; CI runs it as a dedicated
// smoke step under GOMEMLIMIT.
func TestLargeTopologySuccinctServing(t *testing.T) {
	if testing.Short() {
		t.Skip("large-topology smoke test skipped in -short mode")
	}
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(scaleSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/topology", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sum TopologySummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/topology: status %d", resp.StatusCode)
	}
	if sum.IndexLeaves != 65536 {
		t.Fatalf("IndexLeaves = %d, want 65536", sum.IndexLeaves)
	}
	if sum.IndexTier != "succinct" {
		t.Fatalf("IndexTier = %q, want succinct (dense table must not build at 64K leaves)", sum.IndexTier)
	}
	dense := int64(sum.IndexLeaves) * int64(sum.IndexLeaves)
	if int64(sum.IndexBytes)*10 > dense {
		t.Fatalf("IndexBytes = %d, want <= 10%% of the dense equivalent %d", sum.IndexBytes, dense)
	}
	if !sum.Routable {
		t.Fatal("the XGFT must be routable")
	}

	// Path query through the full handler stack, leaf 0 to the last leaf.
	resp, err = http.Get(ts.URL + "/v1/path?key=" + sum.Key + "&src=0&dst=65535")
	if err != nil {
		t.Fatal(err)
	}
	var pr PathResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/path: status %d", resp.StatusCode)
	}
	if !pr.Routable || pr.MinTurn == nil || *pr.MinTurn <= 0 {
		t.Fatalf("path 0->65535 not served: %+v", pr)
	}
	if len(pr.Path) != 2**pr.MinTurn+1 {
		t.Fatalf("path length %d, want %d for turn %d", len(pr.Path), 2**pr.MinTurn+1, *pr.MinTurn)
	}

	// Sampled same-answers check at scale: the succinct index must agree
	// with the cover-set computation on random pairs (the exhaustive
	// dense-vs-succinct property runs at small scale in internal/routing).
	topo, ok := srv.Cache().Lookup(sum.Key)
	if !ok {
		t.Fatal("built topology missing from cache")
	}
	r := rng.New(123)
	n := topo.Index.Leaves()
	for i := 0; i < 2000; i++ {
		src, dst := r.Intn(n), r.Intn(n)
		if got, want := topo.Index.MinTurn(src, dst), topo.Router.MinTurn(src, dst); got != want {
			t.Fatalf("MinTurn(%d, %d) = %d, cover sets say %d", src, dst, got, want)
		}
	}
}
