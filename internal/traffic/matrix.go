package traffic

import (
	"fmt"

	"rfclos/internal/rng"
)

// This file defines the traffic-matrix side of the package: explicit
// per-flow demand lists for the flow-level max-min-fair backend
// (internal/flow), plus an adapter that lets the cycle-accurate engine
// consume the same matrices. Every generator is a pure function of its
// parameters and the supplied rng stream, so a matrix is reproducible from
// (params, seed) alone and identical on any worker count.

// Demand is one flow of a traffic matrix: terminal Src offers Rate units of
// traffic (1.0 = a terminal's full injection bandwidth) toward terminal Dst.
type Demand struct {
	Src, Dst int32
	Rate     float64
}

// MatrixFromPattern materialises one flow per source from a Pattern: source
// s sends rate 1 to pat.Dest(s, r). Sources the pattern leaves silent
// (Dest < 0) and self-destinations emit no flow. It is how the §6 synthetic
// patterns (uniform, random-pairing, fixed-random, shift) become matrices
// for the flow backend.
func MatrixFromPattern(pat Pattern, t int, r *rng.Rand) []Demand {
	out := make([]Demand, 0, t)
	for s := 0; s < t; s++ {
		d := pat.Dest(s, r)
		if d < 0 || d == s {
			continue
		}
		out = append(out, Demand{Src: int32(s), Dst: int32(d), Rate: 1})
	}
	return out
}

// UniformMatrix gives every source flowsPerSrc independently chosen uniform
// random destinations (excluding itself), each carrying rate 1/flowsPerSrc,
// so the total offered load per terminal is 1. It is the flow-level
// analogue of per-packet uniform traffic: spreading each source over
// several flows approximates the packet pattern's destination diversity.
func UniformMatrix(t, flowsPerSrc int, r *rng.Rand) []Demand {
	if t < 2 || flowsPerSrc < 1 {
		return nil
	}
	rate := 1 / float64(flowsPerSrc)
	out := make([]Demand, 0, t*flowsPerSrc)
	for s := 0; s < t; s++ {
		for k := 0; k < flowsPerSrc; k++ {
			d := r.Intn(t - 1)
			if d >= s {
				d++
			}
			out = append(out, Demand{Src: int32(s), Dst: int32(d), Rate: rate})
		}
	}
	return out
}

// HotspotMatrix models skewed traffic: hotspots terminals (chosen uniformly
// at random) each receive hotFrac of every other source's bandwidth, while
// the remaining 1-hotFrac goes to an independent uniform destination. Hot
// terminals themselves only send background traffic.
func HotspotMatrix(t, hotspots int, hotFrac float64, r *rng.Rand) []Demand {
	if t < 2 || hotspots < 1 || hotspots >= t {
		return nil
	}
	perm := r.Perm(t)
	hot := perm[:hotspots]
	isHot := make([]bool, t)
	for _, h := range hot {
		isHot[h] = true
	}
	out := make([]Demand, 0, 2*t)
	for s := 0; s < t; s++ {
		if !isHot[s] && hotFrac > 0 {
			h := hot[r.Intn(hotspots)]
			out = append(out, Demand{Src: int32(s), Dst: int32(h), Rate: hotFrac})
		}
		bg := 1 - hotFrac
		if isHot[s] {
			bg = 1
		}
		if bg > 0 {
			d := r.Intn(t - 1)
			if d >= s {
				d++
			}
			out = append(out, Demand{Src: int32(s), Dst: int32(d), Rate: bg})
		}
	}
	return out
}

// IncastMatrix partitions the terminals into random groups of fanIn+1; in
// each group one member is the sink and the other fanIn members offer rate
// 1 to it. Max-min fairness caps each group's flows at 1/fanIn (the sink's
// ejection link), making incast the canonical ejection-bottleneck workload.
func IncastMatrix(t, fanIn int, r *rng.Rand) []Demand {
	if t < 2 || fanIn < 1 {
		return nil
	}
	perm := r.Perm(t)
	group := fanIn + 1
	out := make([]Demand, 0, t)
	for base := 0; base+group <= t; base += group {
		sink := int32(perm[base])
		for k := 1; k <= fanIn; k++ {
			out = append(out, Demand{Src: int32(perm[base+k]), Dst: sink, Rate: 1})
		}
	}
	return out
}

// ElephantMiceMatrix mixes a few full-rate elephant flows with many small
// mice: the first round(elephantFrac*t) terminals of a random permutation
// send rate 1 to a uniform destination; every other terminal sends rate
// miceRate likewise.
func ElephantMiceMatrix(t int, elephantFrac, miceRate float64, r *rng.Rand) []Demand {
	if t < 2 {
		return nil
	}
	elephants := int(elephantFrac*float64(t) + 0.5)
	if elephants > t {
		elephants = t
	}
	perm := r.Perm(t)
	out := make([]Demand, 0, t)
	for i, s := range perm {
		rate := miceRate
		if i < elephants {
			rate = 1
		}
		if rate <= 0 {
			continue
		}
		d := r.Intn(t - 1)
		if d >= s {
			d++
		}
		out = append(out, Demand{Src: int32(s), Dst: int32(d), Rate: rate})
	}
	return out
}

// StormMatrix overlays storms independent random permutations, each flow
// carrying rate 1/storms: every terminal sends to `storms` distinct-ish
// partners at once, the all-to-all analogue of repeated permutation
// traffic. Fixed points of a permutation emit no flow.
func StormMatrix(t, storms int, r *rng.Rand) []Demand {
	if t < 2 || storms < 1 {
		return nil
	}
	rate := 1 / float64(storms)
	out := make([]Demand, 0, t*storms)
	for k := 0; k < storms; k++ {
		perm := r.Perm(t)
		for s, d := range perm {
			if d == s {
				continue
			}
			out = append(out, Demand{Src: int32(s), Dst: int32(d), Rate: rate})
		}
	}
	return out
}

// MatrixNames lists the canonical matrix generators NewMatrix accepts: the
// four packet patterns (via MatrixFromPattern) plus the flow-only
// workloads.
func MatrixNames() []string {
	return []string{"uniform", "random-pairing", "fixed-random", "shift",
		"hotspot", "incast", "elephant-mice", "storm"}
}

// NewMatrix builds the named canonical traffic matrix over t terminals,
// consuming randomness from r. Pattern-backed names reuse the §6 pattern
// constructors, except "uniform", which becomes 4 flows per source so the
// matrix keeps some of the packet pattern's destination diversity; the
// flow-only names use fixed canonical parameters:
//
//	hotspot        max(1, t/128) hot terminals receiving 50% of each source
//	incast         fan-in 8 groups
//	elephant-mice  10% elephants at rate 1, mice at rate 0.1
//	storm          4 overlaid random permutations
//
// Every matrix offers at most rate 1 per source, so scaling all rates by an
// offered-load factor in [0, 1] mirrors the cycle backend's load knob.
func NewMatrix(name string, t int, r *rng.Rand) ([]Demand, error) {
	switch name {
	case "uniform":
		return UniformMatrix(t, 4, r), nil
	case "random-pairing", "fixed-random", "shift":
		pat, err := New(name, t, r)
		if err != nil {
			return nil, err
		}
		return MatrixFromPattern(pat, t, r), nil
	case "hotspot":
		return HotspotMatrix(t, max(1, t/128), 0.5, r), nil
	case "incast":
		return IncastMatrix(t, 8, r), nil
	case "elephant-mice":
		return ElephantMiceMatrix(t, 0.1, 0.1, r), nil
	case "storm":
		return StormMatrix(t, 4, r), nil
	default:
		return nil, fmt.Errorf("traffic: unknown matrix %q", name)
	}
}

// ScaleMatrix returns a copy of m with every rate multiplied by load, the
// flow backend's offered-load knob.
func ScaleMatrix(m []Demand, load float64) []Demand {
	out := make([]Demand, len(m))
	for i, d := range m {
		d.Rate *= load
		out[i] = d
	}
	return out
}

// MatrixPattern adapts a traffic matrix to the packet Pattern interface so
// the cycle-accurate backend can consume the same generated matrices: each
// packet from source s picks a destination among s's flows with probability
// proportional to the flow rates.
type MatrixPattern struct {
	name  string
	start []int32   // CSR offsets: flows of source s are [start[s], start[s+1])
	dst   []int32   // destination per flow, grouped by source
	cum   []float64 // per-source cumulative rates, grouped like dst
}

// NewMatrixPattern builds the adapter over t terminals. The matrix need not
// be sorted; flows are grouped by source with a counting pass, preserving
// per-source matrix order.
func NewMatrixPattern(name string, t int, m []Demand) *MatrixPattern {
	p := &MatrixPattern{name: name, start: make([]int32, t+1),
		dst: make([]int32, len(m)), cum: make([]float64, len(m))}
	for _, d := range m {
		p.start[d.Src+1]++
	}
	for s := 0; s < t; s++ {
		p.start[s+1] += p.start[s]
	}
	next := append([]int32(nil), p.start[:t]...)
	for _, d := range m {
		i := next[d.Src]
		next[d.Src]++
		p.dst[i] = d.Dst
		p.cum[i] = d.Rate
	}
	for s := 0; s < t; s++ {
		for i := p.start[s] + 1; i < p.start[s+1]; i++ {
			p.cum[i] += p.cum[i-1]
		}
	}
	return p
}

// Name implements Pattern.
func (p *MatrixPattern) Name() string { return p.name }

// Dest implements Pattern: a rate-weighted choice among src's flows, or -1
// when src has none.
func (p *MatrixPattern) Dest(src int, r *rng.Rand) int {
	lo, hi := p.start[src], p.start[src+1]
	if lo == hi {
		return -1
	}
	total := p.cum[hi-1]
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	for i := lo; i < hi; i++ {
		if x < p.cum[i] {
			return int(p.dst[i])
		}
	}
	return int(p.dst[hi-1])
}
