package traffic

import (
	"math"
	"testing"

	"rfclos/internal/rng"
)

func TestUniformExcludesSelfAndCovers(t *testing.T) {
	r := rng.New(1)
	u := NewUniform(10)
	counts := make([]int, 10)
	const draws = 20000
	for i := 0; i < draws; i++ {
		d := u.Dest(3, r)
		if d == 3 {
			t.Fatal("uniform chose self")
		}
		if d < 0 || d >= 10 {
			t.Fatalf("destination %d out of range", d)
		}
		counts[d]++
	}
	want := float64(draws) / 9
	for i, c := range counts {
		if i == 3 {
			continue
		}
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("dest %d: %d draws, want ~%.0f", i, c, want)
		}
	}
	if NewUniform(1).Dest(0, r) != -1 {
		t.Error("single-terminal uniform should return -1")
	}
}

func TestPairingIsInvolution(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{2, 10, 100, 101} {
		p := NewPairing(n, r)
		silent := 0
		for i := 0; i < n; i++ {
			d := p.Dest(i, r)
			if d == -1 {
				silent++
				continue
			}
			if d == i {
				t.Fatalf("n=%d: terminal %d paired with itself", n, i)
			}
			if back := p.Dest(d, r); back != i {
				t.Fatalf("n=%d: pairing not symmetric: %d->%d->%d", n, i, d, back)
			}
		}
		wantSilent := n % 2
		if silent != wantSilent {
			t.Errorf("n=%d: %d silent terminals, want %d", n, silent, wantSilent)
		}
	}
}

func TestPairingIsRandom(t *testing.T) {
	// Over many pairings, terminal 0's partner should be roughly uniform.
	const n, trials = 8, 7000
	counts := make([]int, n)
	r := rng.New(3)
	for i := 0; i < trials; i++ {
		counts[NewPairing(n, r).Partner(0)]++
	}
	want := float64(trials) / (n - 1)
	for i := 1; i < n; i++ {
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("partner %d chosen %d times, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestFixedRandomStableAndHotspots(t *testing.T) {
	r := rng.New(4)
	f := NewFixedRandom(100, r)
	for i := 0; i < 100; i++ {
		d := f.Dest(i, r)
		if d == i || d < 0 || d >= 100 {
			t.Fatalf("bad fixed destination %d for %d", d, i)
		}
		for k := 0; k < 3; k++ {
			if f.Dest(i, r) != d {
				t.Fatal("fixed-random destination changed between calls")
			}
		}
	}
	// Fixed-random should produce at least one hot spot (two sources with
	// the same destination) with overwhelming probability at n=100
	// (birthday bound), unlike a permutation.
	seen := map[int]int{}
	collision := false
	for i := 0; i < 100; i++ {
		d := f.Dest(i, r)
		seen[d]++
		if seen[d] > 1 {
			collision = true
		}
	}
	if !collision {
		t.Error("fixed-random produced a perfect permutation (astronomically unlikely)")
	}
}

func TestNewByName(t *testing.T) {
	r := rng.New(5)
	for _, name := range Names() {
		p, err := New(name, 16, r)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("pattern name = %q, want %q", p.Name(), name)
		}
	}
	if _, err := New("transpose", 16, r); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestShiftPattern(t *testing.T) {
	r := rng.New(6)
	s := NewShift(10, 0)
	if s.Offset != 5 {
		t.Errorf("default offset = %d, want T/2 = 5", s.Offset)
	}
	for i := 0; i < 10; i++ {
		if d := s.Dest(i, r); d != (i+5)%10 {
			t.Errorf("shift dest(%d) = %d, want %d", i, d, (i+5)%10)
		}
	}
	s3 := NewShift(10, 3)
	if d := s3.Dest(9, r); d != 2 {
		t.Errorf("shift-3 dest(9) = %d, want 2", d)
	}
	// A shift is a permutation: destinations all distinct.
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		d := s3.Dest(i, r)
		if seen[d] {
			t.Fatalf("shift not a permutation: %d repeated", d)
		}
		seen[d] = true
	}
	// Degenerate cases.
	if NewShift(1, 0).Dest(0, r) != -1 {
		t.Error("single-terminal shift should be silent")
	}
	p, err := New("shift", 8, r)
	if err != nil || p.Name() != "shift" {
		t.Errorf("New(shift): %v %v", p, err)
	}
}
