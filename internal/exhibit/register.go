package exhibit

import (
	"fmt"

	"rfclos/internal/analysis"
)

// paperRadix is the paper's commodity radix for the analytic exhibits.
const paperRadix = 36

// simOptions reproduces the pre-registry CLI's SimOptions wiring for the
// Figure 8-10 sweeps (the only exhibits the InfiniteSink knob reaches).
func simOptions(p Params) analysis.SimOptions {
	opts := analysis.SimOptions{
		Seed: p.Seed, Reps: p.Reps, Workers: p.Workers, Progress: p.Progress,
		Loads: p.Loads, Patterns: p.Patterns, Shard: p.Shard,
	}
	opts.Sim.InfiniteSink = p.InfiniteSink
	applyCycles(&opts.Sim.MeasureCycles, &opts.Sim.WarmupCycles, p)
	return opts
}

// applyCycles applies the -cycles override: Cycles measured, Cycles/4
// warmup, untouched when unset.
func applyCycles(measure, warmup *int, p Params) {
	if p.Cycles > 0 {
		*measure = p.Cycles
		*warmup = p.Cycles / 4
	}
}

// flowOptions maps the shared Params onto the flow backend's options.
func flowOptions(p Params) analysis.FlowOptions {
	return analysis.FlowOptions{
		Seed: p.Seed, Reps: p.Reps, Workers: p.Workers, Progress: p.Progress,
		Loads: p.Loads, Patterns: p.Patterns, Shard: p.Shard,
	}
}

// scenarioSweep builds the fig8/9/10 runner for one §6 scenario index,
// dispatching on Params.Backend between the cycle engine and the flow-level
// solver.
func scenarioSweep(scenario int) func(Params) (*Result, error) {
	return func(p Params) (*Result, error) {
		scs := analysis.Scenarios(p.Scale)
		sc := scs[0]
		if scenario >= 0 && scenario < len(scs) {
			sc = scs[scenario]
		}
		switch p.Backend {
		case "", "cycle":
			return analysis.ScenarioSweep(sc, simOptions(p))
		case "flow":
			return analysis.FlowScenarioSweep(sc, flowOptions(p))
		default:
			return nil, fmt.Errorf("exhibit: unknown backend %q (cycle|flow)", p.Backend)
		}
	}
}

// flowWorkload builds a flow-only exhibit runner: the equal-resources
// scenario's networks under one pinned traffic matrix. The matrix is the
// exhibit's identity, so Params.Patterns is deliberately ignored.
func flowWorkload(matrix string) func(Params) (*Result, error) {
	return func(p Params) (*Result, error) {
		opts := flowOptions(p)
		opts.Patterns = []string{matrix}
		return analysis.FlowScenarioSweep(analysis.Scenarios(p.Scale)[0], opts)
	}
}

func init() {
	register(Exhibit{
		ID: "fig5", Kind: Analytic, Defaults: "radix=36",
		Title: "Figure 5: diameter each topology needs as terminals grow",
		Run: func(p Params) (*Result, error) {
			return analysis.Fig5Diameter(paperRadix), nil
		},
	})
	register(Exhibit{
		ID: "fig6", Kind: Analytic, Defaults: "radices=8..64",
		Title: "Figure 6: scalability, terminals vs radix for 2-4 levels",
		Run: func(p Params) (*Result, error) {
			return analysis.Fig6Scalability(nil), nil
		},
	})
	register(Exhibit{
		ID: "fig7", Kind: Analytic, Defaults: "radix=36 points=40",
		Title: "Figure 7: expandability, total ports vs terminals",
		Run: func(p Params) (*Result, error) {
			return analysis.Fig7Expandability(paperRadix, 0, 40), nil
		},
	})
	register(Exhibit{
		ID: "costs", Kind: Analytic, Defaults: "radix=36, paper scale",
		Title: "§5 cost comparison: switches and wires vs the CFT",
		Run: func(p Params) (*Result, error) {
			return analysis.Costs(), nil
		},
	})
	register(Exhibit{
		ID: "thm42", Kind: Analytic, Defaults: "n1=300 trials=100",
		Title: "Theorem 4.2 Monte-Carlo routability check",
		Run: func(p Params) (*Result, error) {
			return analysis.Thm42Sharded(analysis.Thm42Options{
				N1: 300, Trials: p.Trials, Workers: p.Workers, Seed: p.Seed, Shard: p.Shard,
			})
		},
	})
	register(Exhibit{
		ID: "fig8", Kind: Sim, Defaults: "scale=small loads=0.1..1.0 reps=3",
		Title: "Figure 8: latency & throughput, equal-resources scenario",
		Run:   scenarioSweep(0),
	})
	register(Exhibit{
		ID: "fig9", Kind: Sim, Defaults: "scale=small loads=0.1..1.0 reps=3",
		Title: "Figure 9: latency & throughput, 100K-terminal scenario",
		Run:   scenarioSweep(1),
	})
	register(Exhibit{
		ID: "fig10", Kind: Sim, Defaults: "scale=small loads=0.1..1.0 reps=3",
		Title: "Figure 10: latency & throughput, maximum-size scenario",
		Run:   scenarioSweep(2),
	})
	register(Exhibit{
		ID: "fig11", Kind: Resiliency, Defaults: "radix=12 trials=5",
		Title: "Figure 11: up/down fault tolerance across sizes",
		Run: func(p Params) (*Result, error) {
			opts := analysis.Fig11Options{Radix: 12, Seed: p.Seed, Workers: p.Workers, Shard: p.Shard}
			if p.Trials > 0 {
				opts.Trials = p.Trials
			}
			return analysis.Fig11UpDownFaults(opts)
		},
	})
	register(Exhibit{
		ID: "fig12", Kind: Resiliency, Defaults: "scale=small steps=10 reps=2",
		Title: "Figure 12: max throughput as links fail",
		Run: func(p Params) (*Result, error) {
			opts := analysis.Fig12Options{Scale: p.Scale, Seed: p.Seed, Reps: p.Reps,
				Workers: p.Workers, Progress: p.Progress, Shard: p.Shard}
			applyCycles(&opts.Sim.MeasureCycles, &opts.Sim.WarmupCycles, p)
			return analysis.Fig12FaultThroughput(opts)
		},
	})
	register(Exhibit{
		ID: "ablation", Kind: Sim, Defaults: "scale=small load=0.9 reps=2",
		Title: "Ablations: simulator design knobs on the RFC",
		Run: func(p Params) (*Result, error) {
			opts := analysis.AblationOptions{Scale: p.Scale, Seed: p.Seed, Reps: p.Reps,
				Workers: p.Workers, Shard: p.Shard}
			applyCycles(&opts.Sim.MeasureCycles, &opts.Sim.WarmupCycles, p)
			return analysis.Ablations(opts)
		},
	})
	register(Exhibit{
		ID: "structure", Kind: Analytic, Defaults: "target=1024 samples=200",
		Title: "Structural comparison: diameter, bisection, path diversity",
		Run: func(p Params) (*Result, error) {
			return analysis.Structure(analysis.StructureOptions{Seed: p.Seed})
		},
	})
	register(Exhibit{
		ID: "adversarial", Kind: Sim, Defaults: "scale=small reps=2",
		Title: "Adversarial shift permutation at full load",
		Run: func(p Params) (*Result, error) {
			opts := analysis.AdversarialOptions{Scale: p.Scale, Seed: p.Seed, Reps: p.Reps,
				Workers: p.Workers, Shard: p.Shard}
			applyCycles(&opts.Sim.MeasureCycles, &opts.Sim.WarmupCycles, p)
			return analysis.Adversarial(opts)
		},
	})
	register(Exhibit{
		ID: "tables", Kind: Analytic, Defaults: "scale=small k=8",
		Title: "Forwarding-state comparison vs Jellyfish k-paths",
		Run: func(p Params) (*Result, error) {
			return analysis.TablesReport(p.Scale, 8, p.Seed)
		},
	})
	register(Exhibit{
		ID: "jellyfish", Kind: Sim, Defaults: "scale=small loads=0.3,0.6,0.9,1.0 reps=2",
		Title: "Extension: RFC vs Jellyfish-style RRNs, uniform traffic",
		Run: func(p Params) (*Result, error) {
			opts := analysis.JellyfishOptions{Scale: p.Scale, Seed: p.Seed, Reps: p.Reps,
				Workers: p.Workers, Loads: p.Loads, Shard: p.Shard}
			applyCycles(&opts.Sim.MeasureCycles, &opts.Sim.WarmupCycles, p)
			return analysis.Jellyfish(opts)
		},
	})
	register(Exhibit{
		ID: "rrnfaults", Kind: Resiliency, Defaults: "scale=small steps=10 reps=2",
		Title: "Extension: throughput under faults, RFC vs RRN",
		Run: func(p Params) (*Result, error) {
			opts := analysis.RRNFaultsOptions{Scale: p.Scale, Seed: p.Seed, Reps: p.Reps,
				Workers: p.Workers, Progress: p.Progress, Shard: p.Shard}
			applyCycles(&opts.Sim.MeasureCycles, &opts.Sim.WarmupCycles, p)
			return analysis.RRNFaults(opts)
		},
	})
	register(Exhibit{
		ID: "hotspot", Kind: Flow, Defaults: "scale=small loads=0.1..1.0 reps=3",
		Title: "Flow backend: hotspot traffic, equal-resources scenario",
		Run:   flowWorkload("hotspot"),
	})
	register(Exhibit{
		ID: "incast", Kind: Flow, Defaults: "scale=small loads=0.1..1.0 reps=3",
		Title: "Flow backend: incast fan-in traffic, equal-resources scenario",
		Run:   flowWorkload("incast"),
	})
	register(Exhibit{
		ID: "elephants", Kind: Flow, Defaults: "scale=small loads=0.1..1.0 reps=3",
		Title: "Flow backend: elephant-and-mice traffic, equal-resources scenario",
		Run:   flowWorkload("elephant-mice"),
	})
	register(Exhibit{
		ID: "storm", Kind: Flow, Defaults: "scale=small loads=0.1..1.0 reps=3",
		Title: "Flow backend: permutation storms, equal-resources scenario",
		Run:   flowWorkload("storm"),
	})
	register(Exhibit{
		ID: "flowscale", Kind: Flow, Defaults: "scale=small loads=0.1..1.0 reps=3 patterns=uniform,storm",
		Title: "Flow backend: RFC vs RRN vs XGFT at 10× scenario scale",
		Run: func(p Params) (*Result, error) {
			return analysis.FlowScale(p.Scale, flowOptions(p))
		},
	})
	register(Exhibit{
		ID: "table3", Kind: Resiliency, Defaults: "targets=512..8192 trials=100",
		Title: "Table 3: % of links removed to disconnect each topology",
		Run: func(p Params) (*Result, error) {
			opts := analysis.Table3Options{Seed: p.Seed, Workers: p.Workers, Shard: p.Shard}
			if p.Trials > 0 {
				opts.Trials = p.Trials
			}
			return analysis.Table3Disconnect(opts)
		},
	})
}
