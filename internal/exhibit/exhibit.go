// Package exhibit is the registry of the paper's exhibits: one descriptor
// per figure/table/extension, each knowing how to produce its Report from a
// shared parameter set. The registry is the single source of truth for the
// exhibit ids, their "all" execution order, the per-exhibit defaults the CLI
// help prints, and the shard-aware entry point rfcpaper and rfcmerge share.
package exhibit

import (
	"fmt"
	"sort"
	"strings"

	"rfclos/internal/analysis"
	"rfclos/internal/engine"
)

// Kind classifies an exhibit by how it computes: closed-form or sampled
// arithmetic (analytic), cycle-accurate simulation sweeps (sim), or
// fault-injection experiments (resiliency).
type Kind string

const (
	Analytic   Kind = "analytic"
	Sim        Kind = "sim"
	Resiliency Kind = "resiliency"
	// Flow marks exhibits computed by the flow-level max-min-fair backend
	// (internal/flow): exact per-flow rates from water-filling, no cycle
	// simulation, reaching scales the cycle engine cannot.
	Flow Kind = "flow"
)

// Result is the structured report an exhibit produces.
type Result = analysis.Report

// Params carries every run-time knob rfcpaper exposes; each exhibit reads
// the subset it understands and applies its own defaults for the rest, so
// one Params value can drive the whole registry ("-exhibit all").
type Params struct {
	Scale analysis.Scale // small | paper (sim exhibits)
	Seed  uint64
	// Trials overrides the trials/repetitions default of thm42, fig11 and
	// table3 when > 0.
	Trials int
	// Cycles overrides MeasureCycles when > 0 (warmup becomes Cycles/4).
	Cycles int
	// Reps is the per-point repetition count for simulation sweeps (0 =
	// exhibit default).
	Reps int
	// Workers sizes the worker pools; 0 means one per CPU. Reports are
	// byte-identical for any value.
	Workers int
	// Loads and Patterns override the sweep grids of the sim exhibits.
	Loads    []float64
	Patterns []string
	// InfiniteSink models infinite reception bandwidth (fig8-10 only, as in
	// the pre-registry CLI).
	InfiniteSink bool
	// Backend selects the throughput engine of the scenario sweeps
	// (fig8-10): "" or "cycle" runs the cycle-accurate simulator, "flow"
	// the flow-level max-min-fair solver. Flow-kind exhibits always use the
	// flow backend; other exhibits ignore the knob.
	Backend string
	// Progress, when non-nil, receives one line per completed job of the
	// exhibits that report progress.
	Progress func(string)
	// Shard restricts the job grids to the slice this process owns; the
	// zero value runs everything (see engine.Shard).
	Shard engine.Shard
}

// Exhibit describes one registered exhibit.
type Exhibit struct {
	// ID is the CLI name ("fig5", "table3", ...).
	ID string
	// Title is a one-line description of what the exhibit reproduces.
	Title string
	Kind  Kind
	// Defaults summarises the parameter defaults this exhibit applies when
	// the corresponding Params fields are zero.
	Defaults string
	// Run produces the exhibit's report for the given parameters.
	Run func(Params) (*Result, error)
}

var (
	ordered []*Exhibit
	byID    = map[string]*Exhibit{}
)

// register adds an exhibit; registration order defines the "all" execution
// order. Duplicate ids are a programming error.
func register(e Exhibit) {
	if _, dup := byID[e.ID]; dup {
		panic("exhibit: duplicate id " + e.ID)
	}
	if e.ID == "all" {
		panic(`exhibit: "all" is reserved`)
	}
	c := e
	inner := c.Run
	// Stamp provenance on every report so the JSON form and rfcmerge can
	// group partials without side channels.
	c.Run = func(p Params) (*Result, error) {
		rep, err := inner(p)
		if rep != nil {
			rep.Exhibit = c.ID
			rep.Shard = p.Shard
		}
		return rep, err
	}
	ordered = append(ordered, &c)
	byID[c.ID] = &c
}

// All returns the registered exhibits in registration ("all") order.
func All() []*Exhibit {
	return append([]*Exhibit(nil), ordered...)
}

// IDs returns the exhibit ids in registration order.
func IDs() []string {
	ids := make([]string, len(ordered))
	for i, e := range ordered {
		ids[i] = e.ID
	}
	return ids
}

// Lookup finds an exhibit by id.
func Lookup(id string) (*Exhibit, bool) {
	e, ok := byID[id]
	return e, ok
}

// Usage renders the -exhibit flag's value set, derived from the registry.
func Usage() string {
	return strings.Join(append(IDs(), "all"), "|")
}

// Help renders one line per exhibit (id, kind, title, defaults) for the
// CLI's extended help, in registration order with aligned columns.
func Help() string {
	w := 0
	for _, e := range ordered {
		if len(e.ID) > w {
			w = len(e.ID)
		}
	}
	var b strings.Builder
	for _, e := range ordered {
		fmt.Fprintf(&b, "  %-*s  %-10s  %s", w, e.ID, e.Kind, e.Title)
		if e.Defaults != "" {
			fmt.Fprintf(&b, " (defaults: %s)", e.Defaults)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Resolve maps an -exhibit argument to the exhibits to run: a single id, or
// every registered exhibit for "all". Unknown ids list the valid ones.
func Resolve(arg string) ([]*Exhibit, error) {
	if arg == "all" {
		return All(), nil
	}
	if e, ok := Lookup(arg); ok {
		return []*Exhibit{e}, nil
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("unknown exhibit %q (known: %s, all)", arg, strings.Join(known, ", "))
}
