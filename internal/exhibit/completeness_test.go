package exhibit

import (
	"os"
	"strings"
	"testing"
)

// TestGoldenCompleteness keeps the registry and testdata/golden in
// lock-step: every registered exhibit must have a pinned golden file, and
// every golden file must correspond to a registered exhibit — an orphaned
// golden means an exhibit was renamed or dropped without its regression
// anchor, a missing one means a new exhibit shipped unpinned.
func TestGoldenCompleteness(t *testing.T) {
	entries, err := os.ReadDir("testdata/golden")
	if err != nil {
		t.Fatal(err)
	}
	goldens := map[string]bool{}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".txt")
		if !ok {
			t.Errorf("unexpected non-golden file testdata/golden/%s", e.Name())
			continue
		}
		goldens[name] = true
	}
	// "all" pins the concatenated -exhibit all replay (TestGoldenAll), not a
	// single registered exhibit.
	registered := map[string]bool{"all": true}
	for _, id := range IDs() {
		registered[id] = true
	}
	for id := range registered {
		if !goldens[id] {
			t.Errorf("registered exhibit %q has no golden file under testdata/golden", id)
		}
	}
	for name := range goldens {
		if !registered[name] {
			t.Errorf("golden file %s.txt corresponds to no registered exhibit", name)
		}
	}
}
