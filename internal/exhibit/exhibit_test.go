package exhibit

import (
	"strings"
	"testing"

	"rfclos/internal/engine"
)

// wantOrder is the published "all" execution order; a registry reshuffle is
// an observable CLI change and must be deliberate.
var wantOrder = []string{
	"fig5", "fig6", "fig7", "costs", "thm42", "fig8", "fig9", "fig10",
	"fig11", "fig12", "ablation", "structure", "adversarial", "tables",
	"jellyfish", "rrnfaults", "hotspot", "incast", "elephants", "storm",
	"flowscale", "table3",
}

func TestRegistryOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != len(wantOrder) {
		t.Fatalf("registry has %d exhibits, want %d: %v", len(ids), len(wantOrder), ids)
	}
	for i, id := range wantOrder {
		if ids[i] != id {
			t.Errorf("IDs()[%d] = %q, want %q", i, ids[i], id)
		}
	}
}

func TestResolveRoundTrip(t *testing.T) {
	// Every registered id resolves to exactly itself...
	for _, e := range All() {
		got, err := Resolve(e.ID)
		if err != nil || len(got) != 1 || got[0].ID != e.ID {
			t.Errorf("Resolve(%q) = %v, %v", e.ID, got, err)
		}
		if e.Title == "" || e.Kind == "" {
			t.Errorf("exhibit %q missing title or kind", e.ID)
		}
	}
	// ..."all" resolves to the whole registry in order...
	all, err := Resolve("all")
	if err != nil || len(all) != len(wantOrder) {
		t.Fatalf("Resolve(all) = %d exhibits, %v", len(all), err)
	}
	for i, e := range all {
		if e.ID != wantOrder[i] {
			t.Errorf("Resolve(all)[%d] = %q, want %q", i, e.ID, wantOrder[i])
		}
	}
	// ...and unknown ids fail with the candidates listed.
	if _, err := Resolve("fig99"); err == nil || !strings.Contains(err.Error(), "fig5") {
		t.Errorf("Resolve(fig99) = %v, want error listing known ids", err)
	}
}

func TestUsageListsEveryID(t *testing.T) {
	u := Usage()
	for _, id := range wantOrder {
		if !strings.Contains(u, id) {
			t.Errorf("Usage() missing %q: %s", id, u)
		}
	}
	if !strings.HasSuffix(u, "|all") {
		t.Errorf("Usage() must end with |all: %s", u)
	}
	help := Help()
	for _, id := range wantOrder {
		if !strings.Contains(help, id) {
			t.Errorf("Help() missing %q", id)
		}
	}
}

func TestRunStampsProvenance(t *testing.T) {
	e, ok := Lookup("fig5")
	if !ok {
		t.Fatal("fig5 not registered")
	}
	sh := engine.Shard{K: 1, N: 2}
	rep, err := e.Run(Params{Seed: 1, Shard: sh})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhibit != "fig5" {
		t.Errorf("Exhibit = %q, want fig5", rep.Exhibit)
	}
	if rep.Shard != sh {
		t.Errorf("Shard = %v, want %v", rep.Shard, sh)
	}
}
