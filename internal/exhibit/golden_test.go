package exhibit

import (
	"os"
	"path/filepath"
	"testing"
)

// The golden files under testdata/golden were captured from the pre-registry
// CLI (string-rendered reports, if/else dispatch) at the parameters below.
// They pin the byte-compatibility contract of the whole refactor: typed
// cells, the registry dispatch and shard-aware aggregation must reproduce
// the old output exactly.

// goldenParams returns the capture parameters for one exhibit (all were
// captured with -seed 7 -quiet).
func goldenParams(id string) Params {
	p := Params{Scale: "small", Seed: 7} // the CLI's flag defaults
	switch id {
	case "thm42":
		p.Trials = 6
	case "table3":
		p.Trials = 2
	case "fig11":
		p.Trials = 1
	case "fig8", "fig9", "fig10":
		p.Cycles, p.Reps = 400, 2
		p.Loads = []float64{0.3, 0.8}
		p.Patterns = []string{"uniform"}
	case "fig12", "ablation", "adversarial", "rrnfaults":
		p.Cycles, p.Reps = 400, 2
	case "jellyfish":
		p.Cycles, p.Reps = 400, 2
		p.Loads = []float64{0.3, 0.8}
	case "hotspot", "incast", "elephants", "storm":
		p.Reps = 2
		p.Loads = []float64{0.3, 0.8}
	case "flowscale":
		p.Reps = 1
		p.Loads = []float64{0.5, 1.0}
	}
	return p
}

// slowGolden marks the exhibits worth skipping under -short.
var slowGolden = map[string]bool{"fig10": true, "fig12": true, "rrnfaults": true, "flowscale": true}

func readGolden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	return string(data)
}

func TestGoldenOutputs(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && slowGolden[e.ID] {
				t.Skip("slow exhibit skipped under -short")
			}
			rep, err := e.Run(goldenParams(e.ID))
			if err != nil {
				t.Fatal(err)
			}
			// The CLI prints Format() through Println, hence the newline.
			got := rep.Format() + "\n"
			if want := readGolden(t, e.ID); got != want {
				t.Errorf("%s output differs from pre-registry golden\n--- got ---\n%s--- want ---\n%s", e.ID, got, want)
			}
		})
	}
}

// TestGoldenAll replays "-exhibit all -trials 2 -cycles 300 -reps 1
// -loads 0.5 -patterns uniform": the registry's iteration order and every
// exhibit's wiring, concatenated exactly as the CLI prints them.
func TestGoldenAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full -exhibit all replay skipped under -short")
	}
	var got string
	for _, e := range All() {
		rep, err := e.Run(Params{
			Scale: "small", Seed: 7, Trials: 2, Cycles: 300, Reps: 1,
			Loads: []float64{0.5}, Patterns: []string{"uniform"},
		})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		got += rep.Format() + "\n"
	}
	if want := readGolden(t, "all"); got != want {
		t.Errorf("-exhibit all output differs from pre-registry golden (%d vs %d bytes)", len(got), len(want))
	}
}

// TestUpdateGoldens regenerates every golden file (per-exhibit and the
// concatenated all.txt) when UPDATE_EXHIBIT_GOLDEN is set; it is a no-op
// otherwise. Pre-existing goldens must come out byte-identical — check with
// git diff after running. Refresh with:
//
//	UPDATE_EXHIBIT_GOLDEN=1 go test ./internal/exhibit/ -run TestUpdateGoldens
func TestUpdateGoldens(t *testing.T) {
	if os.Getenv("UPDATE_EXHIBIT_GOLDEN") == "" {
		t.Skip("set UPDATE_EXHIBIT_GOLDEN=1 to regenerate goldens")
	}
	var all string
	for _, e := range All() {
		rep, err := e.Run(goldenParams(e.ID))
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		path := filepath.Join("testdata", "golden", e.ID+".txt")
		if err := os.WriteFile(path, []byte(rep.Format()+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		allRep, err := e.Run(Params{
			Scale: "small", Seed: 7, Trials: 2, Cycles: 300, Reps: 1,
			Loads: []float64{0.5}, Patterns: []string{"uniform"},
		})
		if err != nil {
			t.Fatalf("%s (all params): %v", e.ID, err)
		}
		all += allRep.Format() + "\n"
	}
	if err := os.WriteFile(filepath.Join("testdata", "golden", "all.txt"), []byte(all), 0o644); err != nil {
		t.Fatal(err)
	}
}
