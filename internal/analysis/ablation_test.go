package analysis

import (
	"testing"

	"rfclos/internal/simnet"
)

func TestAblations(t *testing.T) {
	rep, err := Ablations(AblationOptions{
		Scale: ScaleSmall,
		Load:  0.9,
		Reps:  1,
		Sim:   simnet.Config{WarmupCycles: 200, MeasureCycles: 600},
		Seed:  21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 VC values + 4 buffer values + 3 refresh values + 2 routing
	// policies + 2 sink models.
	if len(rep.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rep.Rows))
	}
	vals := map[string]float64{}
	for _, row := range rep.Strings() {
		a := atofOrZero(row[2])
		if a <= 0 || a > 1.05 {
			t.Errorf("accepted %v out of range for %v=%v", a, row[0], row[1])
		}
		vals[row[0]+"="+row[1]] = a
	}
	// More virtual channels must not hurt throughput materially (HoL
	// relief is the whole point of VCs in Table 2).
	if vals["virtual-channels=4"] < vals["virtual-channels=1"]-0.05 {
		t.Errorf("4 VCs (%v) should not underperform 1 VC (%v)",
			vals["virtual-channels=4"], vals["virtual-channels=1"])
	}
	// Deeper buffers must not hurt either.
	if vals["buffer-packets=4"] < vals["buffer-packets=1"]-0.05 {
		t.Errorf("4-packet buffers (%v) should not underperform 1-packet (%v)",
			vals["buffer-packets=4"], vals["buffer-packets=1"])
	}
}
