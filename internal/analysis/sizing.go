package analysis

import (
	"math"

	"rfclos/internal/core"
	"rfclos/internal/gf"
	"rfclos/internal/topology"
)

// This file holds the per-topology sizing rules the paper applies when
// comparing networks "of the same size": given a target terminal count and
// a diameter (level count), pick each topology's natural parameters.

// cftRadixFor returns the even radix whose l-level CFT terminal count
// 2(R/2)^l is closest to target.
func cftRadixFor(target, levels int) int {
	best, bestDiff := 4, math.MaxFloat64
	for r := 4; r <= 256; r += 2 {
		t := 2 * math.Pow(float64(r)/2, float64(levels))
		diff := math.Abs(t - float64(target))
		if diff < bestDiff {
			best, bestDiff = r, diff
		}
		if t > 4*float64(target) {
			break
		}
	}
	return best
}

// rfcParamsFor returns the smallest even radix (and matching leaf count)
// whose l-level RFC can hold target terminals within the Theorem 4.2
// threshold, mirroring the paper's "RFCs use R=14 where the CFT needs R=20"
// sizing.
func rfcParamsFor(target, levels int) core.Params {
	for r := 4; r <= 256; r += 2 {
		if core.MaxTerminals(r, levels) < target {
			continue
		}
		p := core.ParamsForTerminals(r, levels, target)
		if p.Leaves > core.MaxLeaves(r, levels) {
			continue
		}
		if p.Validate() == nil {
			return p
		}
	}
	return core.Params{}
}

// rrnSpec is a sized random regular network.
type rrnSpec struct {
	N, Degree, TermsPerSwitch int
}

func (s rrnSpec) Radix() int     { return s.Degree + s.TermsPerSwitch }
func (s rrnSpec) Terminals() int { return s.N * s.TermsPerSwitch }

// rrnSpecFor returns the smallest-radix RRN reaching the target terminal
// count at the given diameter, using the paper's rules: ~Δ/D terminals per
// switch and Δ^D >= 2 N ln N.
func rrnSpecFor(target, diameter int) rrnSpec {
	for radix := 4; radix <= 256; radix++ {
		for tps := 1; tps < radix; tps++ {
			deg := radix - tps
			if deg < 3 {
				break
			}
			// Keep terminals per switch near Δ/D as §4.3 prescribes.
			if tps > deg/2 {
				break
			}
			n := (target + tps - 1) / tps
			if n%2 == 1 && deg%2 == 1 {
				n++ // the pairing model needs n*deg even
			}
			if n <= deg {
				continue
			}
			if 2*float64(n)*math.Log(float64(n)) <= math.Pow(float64(deg), float64(diameter)) {
				return rrnSpec{N: n, Degree: deg, TermsPerSwitch: tps}
			}
		}
	}
	return rrnSpec{}
}

// oftOrderFor returns the prime-power order q whose l-level OFT terminal
// count is closest to target, and whether it is within a factor of 2.
func oftOrderFor(target, levels int) (int, bool) {
	bestQ, bestDiff := 0, math.MaxFloat64
	for q := 2; q <= 64; q++ {
		if !gf.IsPrimePower(q) {
			continue
		}
		t := float64(topology.OFTTerminals(q, levels))
		diff := math.Abs(t - float64(target))
		if diff < bestDiff {
			bestQ, bestDiff = q, diff
		}
		if t > 4*float64(target) {
			break
		}
	}
	if bestQ == 0 {
		return 0, false
	}
	t := float64(topology.OFTTerminals(bestQ, levels))
	ok := t >= float64(target)/2 && t <= float64(target)*2
	return bestQ, ok
}
