package analysis

import (
	"fmt"
	"math"

	"rfclos/internal/core"
	"rfclos/internal/engine"
	"rfclos/internal/flow"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// FlowOptions controls the flow-level (max-min-fair) backend sweeps: the
// backend=flow variant of the scenario exhibits, the flow-only workload
// exhibits (hotspot, incast, elephant-and-mice, storm) and the 10×-scale
// comparison. Loads scale the matrix rates; there is no cycle count — each
// grid point is one exact water-filling solve.
type FlowOptions struct {
	// Loads is the offered-load sweep (fraction of a terminal's injection
	// bandwidth each matrix offers per source).
	Loads []float64
	// Reps is the number of independent matrix+path draws averaged per
	// point.
	Reps int
	// Patterns selects traffic matrices by canonical name (see
	// traffic.MatrixNames); default: the three §6 packet patterns.
	Patterns []string
	// Seed drives every random choice. Each job derives its stream from
	// its coordinates — rng.At(Seed, StringCoord(network),
	// StringCoord(pattern), Float64bits(load), rep) — so reports are
	// byte-identical for any Workers setting.
	Seed uint64
	// Workers sizes the worker pool for the (network × pattern × load ×
	// rep) grid; 0 means one per CPU.
	Workers int
	// Shard restricts execution to the jobs this process owns (see
	// engine.Shard); partial reports merge byte-identically.
	Shard engine.Shard
	// Progress, when non-nil, receives one line per completed job.
	Progress func(string)
}

func (o FlowOptions) withDefaults() FlowOptions {
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.Patterns) == 0 {
		o.Patterns = traffic.Names()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// flowNet couples a named network with its flow-level routing adapter.
type flowNet struct {
	name  string
	net   flow.Network
	terms int
}

// flowPoint is the measured outcome of one flow grid job.
type flowPoint struct{ acc, min, jain float64 }

// runFlowGrid executes the (network × pattern × load × rep) grid on the
// worker pool and aggregates it into a (series, load, value, stddev) report
// with three series per (network, pattern) group: accepted throughput per
// terminal, the minimum flow rate (the starved-flow floor the mean hides)
// and Jain's fairness index — the flow backend's new report columns.
func runFlowGrid(title string, notes []string, nets []flowNet, opts FlowOptions) (*Report, error) {
	type flowJob struct {
		net     int
		pattern string
		load    float64
		rep     int
	}
	var jobs []flowJob
	for ni := range nets {
		for _, pat := range opts.Patterns {
			for _, load := range opts.Loads {
				for rep := 0; rep < opts.Reps; rep++ {
					jobs = append(jobs, flowJob{net: ni, pattern: pat, load: load, rep: rep})
				}
			}
		}
	}
	points, err := engine.RunShard(len(jobs), opts.Workers, opts.Shard, func(i int) (flowPoint, error) {
		j := jobs[i]
		n := nets[j.net]
		stream := rng.At(opts.Seed, rng.StringCoord("flow/"+n.name), rng.StringCoord(j.pattern),
			math.Float64bits(j.load), uint64(j.rep))
		m, err := traffic.NewMatrix(j.pattern, n.terms, stream)
		if err != nil {
			return flowPoint{}, err
		}
		m = traffic.ScaleMatrix(m, j.load)
		res, err := flow.Solve(n.net, m, flow.Options{Seed: stream.Uint64(), Workers: 1})
		if err != nil {
			return flowPoint{}, err
		}
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%s/%s load=%.2f rep=%d accepted=%.3f min=%.3f jain=%.3f",
				n.name, j.pattern, j.load, j.rep, res.Accepted, res.MinRate, res.Jain))
		}
		return flowPoint{acc: res.Accepted, min: res.MinRate, jain: res.Jain}, nil
	})
	if err != nil {
		return nil, err
	}

	per := len(opts.Loads) * opts.Reps
	groups := len(nets) * len(opts.Patterns)
	var sset seriesSet
	type groupCols struct{ acc, min, jain *metrics.JobCollector }
	cols := make([]groupCols, groups)
	for g := 0; g < groups; g++ {
		j := jobs[g*per]
		name := nets[j.net].name + "/" + j.pattern
		cols[g] = groupCols{acc: sset.col(name + "/accepted"),
			min: sset.col(name + "/minrate"), jain: sset.col(name + "/jain")}
	}
	for i := range jobs {
		g := i / per
		cols[g].acc.Expect(jobs[i].load)
		cols[g].min.Expect(jobs[i].load)
		cols[g].jain.Expect(jobs[i].load)
		if opts.Shard.Owns(i) {
			cols[g].acc.Observe(jobs[i].load, i, points[i].acc)
			cols[g].min.Observe(jobs[i].load, i, points[i].min)
			cols[g].jain.Observe(jobs[i].load, i, points[i].jain)
		}
	}
	notes = append(notes,
		"flow-level backend: max-min-fair water-filling over unit-capacity links, one random shortest path per flow",
		"accepted in delivered rate per terminal; minrate is the worst flow's rate; jain is Jain's fairness index")
	return sset.report(title, notes, "offered load", "value"), nil
}

// FlowScenarioSweep is ScenarioSweep on the flow-level backend: the same
// scenario networks (identical generation streams, so the topologies match
// the cycle backend's run for run), each matrix pattern swept across
// offered loads with per-flow max-min rates instead of cycle simulation.
func FlowScenarioSweep(sc Scenario, opts FlowOptions) (*Report, error) {
	opts = opts.withDefaults()
	nets, err := buildScenarioNets(sc, opts.Seed)
	if err != nil {
		return nil, err
	}
	fnets := make([]flowNet, len(nets))
	for i, n := range nets {
		fnets[i] = flowNet{name: n.name, net: flow.NewClos(n.c, n.ud, nil), terms: n.c.Terminals()}
	}
	notes := []string{
		fmt.Sprintf("scenario %s: CFT T=%d, RFC T=%d", sc.Name, sc.CFT.Terminals(), sc.RFC.Terminals()),
	}
	return runFlowGrid("Flow backend: max-min throughput, scenario "+sc.Name, notes, fnets, opts)
}

// flowScaleSpec sizes the 10× comparison: the equal-resources scenario's
// terminal count scaled ~10× at the same radix, carried by an XGFT (a
// 4-level CFT with spare leaf ports), a 3-level (paper scale; 4-level at
// the reduced radix) RFC and an equal-terminal RRN with a Jellyfish-style
// Δ:tps ≈ 3:1 port split.
type flowScaleSpec struct {
	xgft                 CFTSpec
	rfc                  core.Params
	rrnN, rrnDeg, rrnTps int
}

func flowScaleFor(scale Scale) flowScaleSpec {
	if scale == ScalePaper {
		// 116,640 terminals: 10× the 11K-equal-resources scenario.
		return flowScaleSpec{
			xgft: CFTSpec{Radix: 36, Levels: 4, TermsPerLeaf: 10},
			rfc:  core.Params{Radix: 36, Levels: 3, Leaves: 6480},
			rrnN: 12960, rrnDeg: 27, rrnTps: 9,
		}
	}
	// 8,192 terminals: 8× the 1K scenario (radix 16 caps the leaf at 8
	// terminals, so the small analogue lands at 8× rather than 10×).
	return flowScaleSpec{
		xgft: CFTSpec{Radix: 16, Levels: 4, TermsPerLeaf: 8},
		rfc:  core.Params{Radix: 16, Levels: 4, Leaves: 1024},
		rrnN: 2048, rrnDeg: 12, rrnTps: 4,
	}
}

// FlowScale runs the flow-only headline comparison the cycle engine cannot
// reach: RFC vs RRN vs XGFT at ~10× the equal-resources scenario's size
// (116,640 terminals at paper scale). All three networks carry identical
// terminal counts.
func FlowScale(scale Scale, opts FlowOptions) (*Report, error) {
	if scale == "" {
		scale = ScaleSmall
	}
	if len(opts.Patterns) == 0 {
		// At 10× scale the default is the cheap pair that separates the
		// topologies; callers can still ask for any matrix by name.
		opts.Patterns = []string{"uniform", "storm"}
	}
	opts = opts.withDefaults()
	spec := flowScaleFor(scale)

	xgft, err := spec.xgft.Build()
	if err != nil {
		return nil, err
	}
	rfc, rud, err := buildRoutableRFC(spec.rfc, rng.At(opts.Seed, rng.StringCoord("flowscale/topology/RFC")))
	if err != nil {
		return nil, err
	}
	rrn, err := topology.NewRRN(spec.rrnN, spec.rrnDeg, spec.rrnTps,
		rng.At(opts.Seed, rng.StringCoord("flowscale/topology/RRN")))
	if err != nil {
		return nil, err
	}
	rrnNet, err := flow.NewRRN(rrn, opts.Workers)
	if err != nil {
		return nil, err
	}
	nets := []flowNet{
		{fmt.Sprintf("XGFT-%dL-R%d", spec.xgft.Levels, spec.xgft.Radix),
			flow.NewClos(xgft, routing.New(xgft), nil), xgft.Terminals()},
		{fmt.Sprintf("RFC-%dL-R%d", spec.rfc.Levels, spec.rfc.Radix),
			flow.NewClos(rfc, rud, nil), rfc.Terminals()},
		{fmt.Sprintf("RRN-R%d", spec.rrnDeg+spec.rrnTps), rrnNet, rrn.Terminals()},
	}
	notes := []string{
		fmt.Sprintf("XGFT %s, RFC %v, RRN %d switches × Δ%d+%d terminals — T=%d each (~10× the equal-resources scenario)",
			netShape(spec.xgft), spec.rfc, spec.rrnN, spec.rrnDeg, spec.rrnTps, xgft.Terminals()),
	}
	title := fmt.Sprintf("Flow backend: RFC vs RRN vs XGFT at 10× scale (%s)", scale)
	return runFlowGrid(title, notes, nets, opts)
}

// netShape renders a CFTSpec compactly for report notes.
func netShape(s CFTSpec) string {
	return fmt.Sprintf("R%d %dL ×%d/leaf", s.Radix, s.Levels, s.TermsPerLeaf)
}
