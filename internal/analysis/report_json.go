package analysis

import (
	"encoding/json"
	"fmt"

	"rfclos/internal/engine"
	"rfclos/internal/metrics"
)

// SchemaVersion identifies the JSON report schema. Consumers must reject
// documents whose schema field does not match; bump the suffix on any
// incompatible change (see DESIGN.md "Structured reports").
const SchemaVersion = "rfclos.report/1"

// The DTO layer keeps the wire format explicit and stable, decoupled from
// the in-memory Report/Cell structs. Aggregate cells carry both the derived
// moments (n/sum/sumsq — convenient for external tooling) and the raw
// job-indexed observations; only the observations take part in merging, so
// merged means are re-summed in job order and stay bit-identical to an
// unsharded run.
type reportJSON struct {
	Schema  string    `json:"schema"`
	Exhibit string    `json:"exhibit,omitempty"`
	ShardK  int       `json:"shard_k,omitempty"`
	ShardN  int       `json:"shard_n,omitempty"`
	Title   string    `json:"title"`
	Notes   []string  `json:"notes,omitempty"`
	Header  []string  `json:"header"`
	Rows    []rowJSON `json:"rows"`
}

type rowJSON struct {
	Key   string     `json:"key"`
	Cells []cellJSON `json:"cells"`
}

type cellJSON struct {
	Kind   string    `json:"kind"`
	S      string    `json:"s,omitempty"`
	I      int64     `json:"i,omitempty"`
	F      float64   `json:"f,omitempty"`
	Fmt    string    `json:"fmt,omitempty"`
	Prefix string    `json:"prefix,omitempty"`
	Suffix string    `json:"suffix,omitempty"`
	Div    float64   `json:"div,omitempty"`
	Mul    float64   `json:"mul,omitempty"`
	Want   int       `json:"want,omitempty"`
	N      int       `json:"n,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	SumSq  float64   `json:"sumsq,omitempty"`
	Obs    []obsJSON `json:"obs,omitempty"`
}

type obsJSON struct {
	J int     `json:"j"`
	V float64 `json:"v"`
}

var kindNames = map[CellKind]string{
	CellString: "str",
	CellInt:    "int",
	CellFloat:  "float",
	CellMean:   "mean",
	CellStd:    "std",
}

var kindsByName = func() map[string]CellKind {
	m := make(map[string]CellKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// JSON renders the report as a versioned, mergeable document.
func (r *Report) JSON() ([]byte, error) {
	doc := reportJSON{
		Schema:  SchemaVersion,
		Exhibit: r.Exhibit,
		ShardK:  r.Shard.K,
		ShardN:  r.Shard.N,
		Title:   r.Title,
		Notes:   r.Notes,
		Header:  r.Header,
		Rows:    make([]rowJSON, len(r.Rows)),
	}
	for i, row := range r.Rows {
		rj := rowJSON{Key: row.Key, Cells: make([]cellJSON, len(row.Cells))}
		for j := range row.Cells {
			c := &row.Cells[j]
			cj := cellJSON{
				Kind:   kindNames[c.Kind],
				S:      c.S,
				I:      c.I,
				F:      c.F,
				Fmt:    c.Fmt,
				Prefix: c.Prefix,
				Suffix: c.Suffix,
				Div:    c.Div,
				Mul:    c.Mul,
				Want:   c.Want,
			}
			if c.isAggregate() {
				sum := metrics.SummarizeObs(c.Obs)
				cj.N, cj.Sum, cj.SumSq = sum.N, sum.Sum, sum.SumSq
				cj.Obs = make([]obsJSON, len(c.Obs))
				for k, o := range c.Obs {
					cj.Obs[k] = obsJSON{J: o.Job, V: o.V}
				}
			}
			rj.Cells[j] = cj
		}
		doc.Rows[i] = rj
	}
	return json.MarshalIndent(doc, "", " ")
}

// ParseReport decodes a document produced by JSON, verifying the schema
// version.
func ParseReport(data []byte) (*Report, error) {
	var doc reportJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("analysis: bad report JSON: %w", err)
	}
	if doc.Schema != SchemaVersion {
		return nil, fmt.Errorf("analysis: report schema %q, this build reads %q", doc.Schema, SchemaVersion)
	}
	rep := &Report{
		Exhibit: doc.Exhibit,
		Shard:   engine.Shard{K: doc.ShardK, N: doc.ShardN},
		Title:   doc.Title,
		Notes:   doc.Notes,
		Header:  doc.Header,
		Rows:    make([]Row, len(doc.Rows)),
	}
	for i, rj := range doc.Rows {
		row := Row{Key: rj.Key, Cells: make([]Cell, len(rj.Cells))}
		for j, cj := range rj.Cells {
			kind, ok := kindsByName[cj.Kind]
			if !ok {
				return nil, fmt.Errorf("analysis: unknown cell kind %q", cj.Kind)
			}
			c := Cell{
				Kind:   kind,
				S:      cj.S,
				I:      cj.I,
				F:      cj.F,
				Fmt:    cj.Fmt,
				Prefix: cj.Prefix,
				Suffix: cj.Suffix,
				Div:    cj.Div,
				Mul:    cj.Mul,
				Want:   cj.Want,
			}
			if len(cj.Obs) > 0 {
				c.Obs = make([]metrics.Obs, len(cj.Obs))
				for k, o := range cj.Obs {
					c.Obs[k] = metrics.Obs{Job: o.J, V: o.V}
				}
			}
			row.Cells[j] = c
		}
		rep.Rows[i] = row
	}
	return rep, nil
}

// MergeReports folds any number of shard partials (or complete reports) of
// the same exhibit into one report. Static structure — exhibit id, title,
// notes, header, row keys and static cells — must agree exactly; aggregate
// cells merge by union of their job-indexed observations, so the merged
// report renders byte-identically to an unsharded run once every shard of a
// partition is included.
func MergeReports(parts ...*Report) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("analysis: nothing to merge")
	}
	first := parts[0]
	out := &Report{
		Exhibit: first.Exhibit,
		Title:   first.Title,
		Notes:   append([]string(nil), first.Notes...),
		Header:  append([]string(nil), first.Header...),
		Rows:    make([]Row, len(first.Rows)),
	}
	for i, row := range first.Rows {
		out.Rows[i] = Row{Key: row.Key, Cells: append([]Cell(nil), row.Cells...)}
		for j := range out.Rows[i].Cells {
			c := &out.Rows[i].Cells[j]
			c.Obs = append([]metrics.Obs(nil), c.Obs...)
		}
	}
	for _, p := range parts[1:] {
		if err := mergeInto(out, p); err != nil {
			return nil, err
		}
	}
	for i := range out.Rows {
		for j := range out.Rows[i].Cells {
			c := &out.Rows[i].Cells[j]
			if c.isAggregate() {
				c.Obs = metrics.MergeObs(c.Obs)
			}
		}
	}
	return out, nil
}

func mergeInto(dst, src *Report) error {
	if src.Exhibit != dst.Exhibit {
		return fmt.Errorf("analysis: merging different exhibits %q and %q", dst.Exhibit, src.Exhibit)
	}
	if src.Title != dst.Title {
		return fmt.Errorf("analysis: %s: title mismatch:\n  %q\n  %q", dst.Exhibit, dst.Title, src.Title)
	}
	if !equalStrings(src.Notes, dst.Notes) || !equalStrings(src.Header, dst.Header) {
		return fmt.Errorf("analysis: %s: notes/header mismatch between shards (different seeds or parameters?)", dst.Exhibit)
	}
	if len(src.Rows) != len(dst.Rows) {
		return fmt.Errorf("analysis: %s: row count mismatch: %d vs %d", dst.Exhibit, len(dst.Rows), len(src.Rows))
	}
	for i := range src.Rows {
		sr, dr := &src.Rows[i], &dst.Rows[i]
		if sr.Key != dr.Key {
			return fmt.Errorf("analysis: %s: row %d key mismatch: %q vs %q", dst.Exhibit, i, dr.Key, sr.Key)
		}
		if len(sr.Cells) != len(dr.Cells) {
			return fmt.Errorf("analysis: %s: row %q cell count mismatch", dst.Exhibit, sr.Key)
		}
		for j := range sr.Cells {
			sc, dc := &sr.Cells[j], &dr.Cells[j]
			if sc.Kind != dc.Kind || sc.Fmt != dc.Fmt || sc.Prefix != dc.Prefix || sc.Suffix != dc.Suffix ||
				sc.Div != dc.Div || sc.Mul != dc.Mul {
				return fmt.Errorf("analysis: %s: row %q cell %d shape mismatch", dst.Exhibit, sr.Key, j)
			}
			if !sc.isAggregate() {
				if sc.S != dc.S || sc.I != dc.I || sc.F != dc.F {
					return fmt.Errorf("analysis: %s: row %q cell %d static value mismatch (%q vs %q)",
						dst.Exhibit, sr.Key, j, dc.Text(), sc.Text())
				}
				continue
			}
			if sc.Want != dc.Want {
				return fmt.Errorf("analysis: %s: row %q cell %d want mismatch: %d vs %d",
					dst.Exhibit, sr.Key, j, dc.Want, sc.Want)
			}
			dc.Obs = append(dc.Obs, sc.Obs...)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
