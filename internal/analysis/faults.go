package analysis

import (
	"rfclos/internal/engine"
	"rfclos/internal/graph"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// FaultsToDisconnect returns how many link removals, in the given uniformly
// random order, it takes to disconnect g (the Table 3 / Slim Fly §39
// measure). Rather than re-checking connectivity after every removal, it
// adds edges back in reverse order with a union-find and reports the first
// prefix of removals whose complement is disconnected.
func FaultsToDisconnect(g *graph.Graph, r *rng.Rand) int {
	edges := g.Edges()
	m := len(edges)
	r.Shuffle(m, func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	uf := graph.NewUnionFind(g.N())
	// Walk backwards: after adding edges[j..m-1], the graph equals the
	// network with the first j removals applied. Scanning j downward finds
	// the largest j whose suffix is connected, so j removals leave the
	// network connected and removal j+1 disconnects it.
	for j := m - 1; j >= 0; j-- {
		uf.Union(int(edges[j].U), int(edges[j].V))
		if uf.Count() == 1 {
			return j + 1
		}
	}
	return 0
}

// AverageFaultsToDisconnect averages FaultsToDisconnect over trials and
// returns the mean fraction of links whose removal disconnects the network.
// The trials draw from the shared generator in sequence; parallel callers
// use AverageFaultsToDisconnectSeeded instead.
func AverageFaultsToDisconnect(g *graph.Graph, trials int, r *rng.Rand) float64 {
	if g.M() == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(FaultsToDisconnect(g, r))
	}
	return sum / float64(trials) / float64(g.M())
}

// AverageFaultsToDisconnectSeeded is AverageFaultsToDisconnect with the
// removal trials fanned out over a worker pool: trial i draws its removal
// order from rng.At(seed, i), so the mean is a pure function of (g, trials,
// seed), identical for every worker count. workers <= 0 means one per CPU.
func AverageFaultsToDisconnectSeeded(g *graph.Graph, trials, workers int, seed uint64) float64 {
	if g.M() == 0 || trials <= 0 {
		return 0
	}
	counts, _ := engine.Run(trials, workers, func(i int) (int, error) {
		return FaultsToDisconnect(g, rng.At(seed, uint64(i))), nil
	})
	sum := 0.0
	for _, n := range counts {
		sum += float64(n)
	}
	return sum / float64(trials) / float64(g.M())
}

// disconnectObs fans this shard's FaultsToDisconnect trials out over the
// worker pool and returns the per-trial removal counts as job-indexed
// observations (trial i drawing from rng.At(seed, i)), ready for a mergeable
// Mean cell. Unowned trials never run.
func disconnectObs(g *graph.Graph, trials, workers int, seed uint64, sh engine.Shard) []metrics.Obs {
	counts, _ := engine.RunShard(trials, workers, sh, func(i int) (int, error) {
		return FaultsToDisconnect(g, rng.At(seed, uint64(i))), nil
	})
	return ownedObs(counts, sh)
}

// upDownFaultObs is disconnectObs for the Figure 11 measure: this shard's
// FaultsUntilUpDownLost trials as job-indexed observations.
func upDownFaultObs(c *topology.Clos, trials, workers int, seed uint64, sh engine.Shard) []metrics.Obs {
	counts, _ := engine.RunShard(trials, workers, sh, func(i int) (int, error) {
		return FaultsUntilUpDownLost(c, rng.At(seed, uint64(i))), nil
	})
	return ownedObs(counts, sh)
}

// ownedObs converts a RunShard result (full-length, zero where unowned) to
// the owned observations in trial order.
func ownedObs(counts []int, sh engine.Shard) []metrics.Obs {
	obs := make([]metrics.Obs, 0, len(counts))
	for i, n := range counts {
		if sh.Owns(i) {
			obs = append(obs, metrics.Obs{Job: i, V: float64(n)})
		}
	}
	return obs
}

// FaultsUntilUpDownLost returns the number of random link removals a folded
// Clos tolerates before some leaf pair loses its up/down path (the Figure 11
// measure), for one random removal order. It binary-searches the removal
// prefix, rebuilding routing state per probe.
func FaultsUntilUpDownLost(c *topology.Clos, r *rng.Rand) int {
	links := c.Links()
	m := len(links)
	r.Shuffle(m, func(i, j int) { links[i], links[j] = links[j], links[i] })
	routableAfter := func(k int) bool {
		probe := c.Clone()
		for _, l := range links[:k] {
			probe.RemoveLink(l.A, l.B)
		}
		return routing.New(probe).Routable()
	}
	// Invariant: routable after lo removals, not routable after hi.
	lo, hi := 0, m
	if routableAfter(m) {
		return m
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if routableAfter(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// AverageUpDownFaultTolerance averages FaultsUntilUpDownLost over trials and
// returns the mean tolerated fraction of links. The trials draw from the
// shared generator in sequence; parallel callers use
// AverageUpDownFaultToleranceSeeded instead.
func AverageUpDownFaultTolerance(c *topology.Clos, trials int, r *rng.Rand) float64 {
	if c.Wires() == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(FaultsUntilUpDownLost(c, r))
	}
	return sum / float64(trials) / float64(c.Wires())
}

// AverageUpDownFaultToleranceSeeded is AverageUpDownFaultTolerance with the
// removal trials fanned out over a worker pool: trial i draws its removal
// order from rng.At(seed, i), so the mean is a pure function of (c, trials,
// seed), identical for every worker count. Each trial clones the topology
// per probe and only reads c, so concurrent trials are safe.
func AverageUpDownFaultToleranceSeeded(c *topology.Clos, trials, workers int, seed uint64) float64 {
	if c.Wires() == 0 || trials <= 0 {
		return 0
	}
	counts, _ := engine.Run(trials, workers, func(i int) (int, error) {
		return FaultsUntilUpDownLost(c, rng.At(seed, uint64(i))), nil
	})
	sum := 0.0
	for _, n := range counts {
		sum += float64(n)
	}
	return sum / float64(trials) / float64(c.Wires())
}

// RemoveRandomLinks deletes n uniformly random links from c (in place) and
// returns the removed links.
func RemoveRandomLinks(c *topology.Clos, n int, r *rng.Rand) []topology.Link {
	links := c.Links()
	r.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	if n > len(links) {
		n = len(links)
	}
	for _, l := range links[:n] {
		c.RemoveLink(l.A, l.B)
	}
	return links[:n]
}
