package analysis

import (
	"fmt"

	"rfclos/internal/metrics"
	"rfclos/internal/simdirect"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// JellyfishOptions configures the RFC-vs-RRN simulated comparison.
type JellyfishOptions struct {
	Scale Scale
	Loads []float64
	Reps  int
	Sim   simnet.Config // Table 2 parameters, shared by both simulators
	Seed  uint64
}

// Jellyfish runs the comparison the paper declines to simulate (§6): the
// equal-resources RFC against Jellyfish-style random regular networks,
// under uniform traffic. Two RRNs are simulated:
//
//   - "equal-T": the minimal-radix RRN carrying the same terminal count
//     (the §7 sizing rule), and
//   - "equal-equipment": an RRN built from the same switch count and radix
//     as the RFC, carrying more terminals (the Jellyfish paper's "more
//     servers with the same equipment" configuration).
//
// The direct networks route ECMP-shortest with hop-indexed virtual
// channels for deadlock freedom — the extra mechanism (VCs >= diameter)
// that the paper's §1/§6 cost argument is about; the report records the VC
// requirement next to the throughput.
func Jellyfish(opts JellyfishOptions) (*Report, error) {
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	if len(opts.Loads) == 0 {
		opts.Loads = []float64{0.3, 0.6, 0.9, 1.0}
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	sc := Scenarios(opts.Scale)[0]
	master := newSeeded(opts.Seed + 31)

	rfc, rud, err := buildRoutableRFC(sc.RFC, master)
	if err != nil {
		return nil, err
	}
	// Equal-T RRN (minimal radix for the same terminals at diameter 4).
	spec := rrnSpecFor(sc.RFC.Terminals(), 4)
	eqT, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch, master)
	if err != nil {
		return nil, err
	}
	// Equal-equipment RRN: same switch count and radix as the RFC, ports
	// split ~Δ:tps = 3:1 like a diameter-4 RRN.
	eqSwitches := sc.RFC.Switches()
	eqRadix := sc.RFC.Radix
	tps := eqRadix / 4
	deg := eqRadix - tps
	if (eqSwitches*deg)%2 != 0 {
		eqSwitches++
	}
	eqEquip, err := topology.NewRRN(eqSwitches, deg, tps, master)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title: fmt.Sprintf("Extension: RFC vs Jellyfish (RRN), uniform traffic (%s scale)", opts.Scale),
		Notes: []string{
			fmt.Sprintf("RFC: %v — deadlock-free with 0 required VCs", sc.RFC),
			fmt.Sprintf("RRN equal-T: %d switches × R%d, T=%d", eqT.N(), spec.Radix(), eqT.Terminals()),
			fmt.Sprintf("RRN equal-equipment: %d switches × R%d, T=%d (%.0f%% more terminals than the RFC)",
				eqEquip.N(), eqRadix, eqEquip.Terminals(),
				100*(float64(eqEquip.Terminals())/float64(sc.RFC.Terminals())-1)),
			"RRN rows need VCs >= diameter for deadlock freedom (hop-indexed scheme)",
		},
		Header: []string{"network", "load", "accepted", "latency"},
	}

	for _, load := range opts.Loads {
		var acc, lat metrics.Summary
		for i := 0; i < opts.Reps; i++ {
			stream := master.Split()
			cfg := opts.Sim
			cfg.Seed = stream.Uint64()
			res := simnet.New(rfc, rud, traffic.NewUniform(rfc.Terminals()), cfg).Run(load)
			acc.Add(res.AcceptedLoad)
			lat.Add(res.AvgLatency)
		}
		rep.AddRow(fmt.Sprintf("RFC-R%d", sc.RFC.Radix), ftoa(load),
			fmt.Sprintf("%.4f", acc.Mean()), fmt.Sprintf("%.1f", lat.Mean()))
	}
	for _, rr := range []struct {
		name string
		net  *topology.RRN
	}{
		{fmt.Sprintf("RRN-eqT-R%d", spec.Radix()), eqT},
		{fmt.Sprintf("RRN-eqEquip-R%d", eqRadix), eqEquip},
	} {
		for _, load := range opts.Loads {
			var acc, lat metrics.Summary
			for i := 0; i < opts.Reps; i++ {
				stream := master.Split()
				cfg := simdirect.Config{
					VCs:            16, // covers any small-network diameter
					BufferPackets:  opts.Sim.BufferPackets,
					PacketLength:   opts.Sim.PacketLength,
					LinkLatency:    opts.Sim.LinkLatency,
					WarmupCycles:   opts.Sim.WarmupCycles,
					MeasureCycles:  opts.Sim.MeasureCycles,
					SourceQueueCap: opts.Sim.SourceQueueCap,
					Seed:           stream.Uint64(),
				}
				sim, err := simdirect.New(rr.net, traffic.NewUniform(rr.net.Terminals()), cfg)
				if err != nil {
					return nil, err
				}
				res := sim.Run(load)
				acc.Add(res.AcceptedLoad)
				lat.Add(res.AvgLatency)
			}
			rep.AddRow(rr.name, ftoa(load),
				fmt.Sprintf("%.4f", acc.Mean()), fmt.Sprintf("%.1f", lat.Mean()))
		}
	}
	return rep, nil
}
