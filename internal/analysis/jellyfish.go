package analysis

import (
	"fmt"
	"math"

	"rfclos/internal/engine"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/simdirect"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// JellyfishOptions configures the RFC-vs-RRN simulated comparison.
type JellyfishOptions struct {
	Scale Scale
	Loads []float64
	Reps  int
	Sim   simnet.Config // Table 2 parameters, shared by both simulators
	// Workers sizes the worker pool the (network × load × rep) grid fans
	// out on; 0 means one per CPU. The report is identical for any count.
	Workers int
	Seed    uint64
	// Shard restricts execution to the grid jobs this process owns;
	// partial reports merge byte-identically (see engine.Shard).
	Shard engine.Shard
}

// Jellyfish runs the comparison the paper declines to simulate (§6): the
// equal-resources RFC against Jellyfish-style random regular networks,
// under uniform traffic. Two RRNs are simulated:
//
//   - "equal-T": the minimal-radix RRN carrying the same terminal count
//     (the §7 sizing rule), and
//   - "equal-equipment": an RRN built from the same switch count and radix
//     as the RFC, carrying more terminals (the Jellyfish paper's "more
//     servers with the same equipment" configuration).
//
// The direct networks route ECMP-shortest with hop-indexed virtual
// channels for deadlock freedom — the extra mechanism (VCs >= diameter)
// that the paper's §1/§6 cost argument is about; the report records the VC
// requirement next to the throughput. The (network × load × rep) grid runs
// on the worker pool with coordinate-derived per-job streams, so the report
// is byte-identical for any opts.Workers.
func Jellyfish(opts JellyfishOptions) (*Report, error) {
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	if len(opts.Loads) == 0 {
		opts.Loads = []float64{0.3, 0.6, 0.9, 1.0}
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	sc := Scenarios(opts.Scale)[0]

	rfc, rud, err := buildRoutableRFC(sc.RFC, rng.At(opts.Seed, rng.StringCoord("jellyfish/topology/RFC")))
	if err != nil {
		return nil, err
	}
	// Equal-T RRN (minimal radix for the same terminals at diameter 4).
	spec := rrnSpecFor(sc.RFC.Terminals(), 4)
	eqT, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch,
		rng.At(opts.Seed, rng.StringCoord("jellyfish/topology/RRN-eqT")))
	if err != nil {
		return nil, err
	}
	// Equal-equipment RRN: same switch count and radix as the RFC, ports
	// split ~Δ:tps = 3:1 like a diameter-4 RRN.
	eqSwitches := sc.RFC.Switches()
	eqRadix := sc.RFC.Radix
	tps := eqRadix / 4
	deg := eqRadix - tps
	if (eqSwitches*deg)%2 != 0 {
		eqSwitches++
	}
	eqEquip, err := topology.NewRRN(eqSwitches, deg, tps,
		rng.At(opts.Seed, rng.StringCoord("jellyfish/topology/RRN-eqEquip")))
	if err != nil {
		return nil, err
	}

	// The three rows of the comparison; rrn == nil marks the RFC row,
	// which runs on the indirect-network simulator.
	rows := []struct {
		name string
		rrn  *topology.RRN
	}{
		{fmt.Sprintf("RFC-R%d", sc.RFC.Radix), nil},
		{fmt.Sprintf("RRN-eqT-R%d", spec.Radix()), eqT},
		{fmt.Sprintf("RRN-eqEquip-R%d", eqRadix), eqEquip},
	}

	type outcome struct{ acc, lat float64 }
	perRow := len(opts.Loads) * opts.Reps
	results, err := engine.RunShard(len(rows)*perRow, opts.Workers, opts.Shard, func(i int) (outcome, error) {
		row := rows[i/perRow]
		load := opts.Loads[(i%perRow)/opts.Reps]
		rep := i % opts.Reps
		stream := rng.At(opts.Seed, rng.StringCoord("jellyfish/"+row.name),
			math.Float64bits(load), uint64(rep))
		if row.rrn == nil {
			cfg := opts.Sim
			cfg.Seed = stream.Uint64()
			res := simnet.New(rfc, rud, traffic.NewUniform(rfc.Terminals()), cfg).Run(load)
			return outcome{res.AcceptedLoad, res.AvgLatency}, nil
		}
		cfg := simdirect.Config{
			VCs:            16, // covers any small-network diameter
			BufferPackets:  opts.Sim.BufferPackets,
			PacketLength:   opts.Sim.PacketLength,
			LinkLatency:    opts.Sim.LinkLatency,
			WarmupCycles:   opts.Sim.WarmupCycles,
			MeasureCycles:  opts.Sim.MeasureCycles,
			SourceQueueCap: opts.Sim.SourceQueueCap,
			Seed:           stream.Uint64(),
		}
		sim, err := simdirect.New(row.rrn, traffic.NewUniform(row.rrn.Terminals()), cfg)
		if err != nil {
			return outcome{}, err
		}
		res := sim.Run(load)
		return outcome{res.AcceptedLoad, res.AvgLatency}, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title: fmt.Sprintf("Extension: RFC vs Jellyfish (RRN), uniform traffic (%s scale)", opts.Scale),
		Notes: []string{
			fmt.Sprintf("RFC: %v — deadlock-free with 0 required VCs", sc.RFC),
			fmt.Sprintf("RRN equal-T: %d switches × R%d, T=%d", eqT.N(), spec.Radix(), eqT.Terminals()),
			fmt.Sprintf("RRN equal-equipment: %d switches × R%d, T=%d (%.0f%% more terminals than the RFC)",
				eqEquip.N(), eqRadix, eqEquip.Terminals(),
				100*(float64(eqEquip.Terminals())/float64(sc.RFC.Terminals())-1)),
			"RRN rows need VCs >= diameter for deadlock freedom (hop-indexed scheme)",
		},
		Header: []string{"network", "load", "accepted", "latency"},
	}
	for ri, row := range rows {
		for li, load := range opts.Loads {
			var accObs, latObs []metrics.Obs
			for r := 0; r < opts.Reps; r++ {
				i := ri*perRow + li*opts.Reps + r
				if opts.Shard.Owns(i) {
					accObs = append(accObs, metrics.Obs{Job: i, V: results[i].acc})
					latObs = append(latObs, metrics.Obs{Job: i, V: results[i].lat})
				}
			}
			rep.AddKeyed(fmt.Sprintf("%s@%g", row.name, load), Str(row.name), Float(load, "%.4g"),
				Mean(accObs, opts.Reps, "%.4f"), Mean(latObs, opts.Reps, "%.1f"))
		}
	}
	return rep, nil
}
