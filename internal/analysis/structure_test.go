package analysis

import (
	"strings"
	"testing"

	"rfclos/internal/simnet"
)

func TestStructureReport(t *testing.T) {
	rep, err := Structure(StructureOptions{Target: 256, PairSamples: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	byName := map[string][]string{}
	for _, row := range rep.Strings() {
		byName[row[0]] = row
	}
	for _, name := range []string{"CFT", "RFC", "RRN"} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s row", name)
		}
		if d := atofOrZero(row[3]); d < 2 || d > 8 {
			t.Errorf("%s leaf diameter %v implausible", name, d)
		}
		if pd := atofOrZero(row[5]); pd <= 0 {
			t.Errorf("%s path diversity %v should be positive", name, pd)
		}
	}
	// §7: OFT has the lowest path diversity of the indirect networks.
	if oft, ok := byName["OFT"]; ok {
		if atofOrZero(oft[5]) > atofOrZero(byName["CFT"][5]) {
			t.Errorf("OFT path diversity %v above CFT %v", oft[5], byName["CFT"][5])
		}
	}
}

func TestAdversarialReport(t *testing.T) {
	rep, err := Adversarial(AdversarialOptions{
		Scale: ScaleSmall,
		Reps:  1,
		Sim:   simnet.Config{WarmupCycles: 300, MeasureCycles: 1200},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (CFT, RFC, RRN)", len(rep.Rows))
	}
	for _, row := range rep.Strings() {
		acc := atofOrZero(row[1])
		// The rearrangeably non-blocking CFT routes a permutation at high
		// rate; the RFC sustains a large fraction too (§4.2's normalized
		// bisection is ~0.8 at this scale, minus head-of-line losses); the
		// equal-T RRN's minimal routing lands near the 50% bisection mark.
		min := 0.35
		if strings.HasPrefix(row[0], "CFT") {
			min = 0.55
		}
		if strings.HasPrefix(row[0], "RRN") {
			min = 0.30
		}
		if acc < min {
			t.Errorf("%s: adversarial accepted %v, want > %v", row[0], acc, min)
		}
		if acc > 1.05 {
			t.Errorf("%s: accepted %v above full rate", row[0], acc)
		}
	}
}

func TestTablesReport(t *testing.T) {
	rep, err := TablesReport(ScaleSmall, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	text := rep.Format()
	if !strings.Contains(text, "CFT") || !strings.Contains(text, "RFC") || !strings.Contains(text, "RRN") {
		t.Errorf("missing networks in:\n%s", text)
	}
	// The router's bitset state must be far smaller than explicit tables.
	for _, row := range rep.Strings()[:2] {
		explicit, bitset := atofOrZero(row[4]), atofOrZero(row[5])
		if bitset <= 0 || explicit <= 0 {
			t.Errorf("%s: missing size accounting", row[0])
		}
	}
}

func TestJellyfishReport(t *testing.T) {
	rep, err := Jellyfish(JellyfishOptions{
		Scale: ScaleSmall,
		Loads: []float64{0.4},
		Reps:  1,
		Sim:   simnet.Config{WarmupCycles: 300, MeasureCycles: 1000},
		Seed:  17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 networks × 1 load.
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	for _, row := range rep.Strings() {
		acc := atofOrZero(row[2])
		if acc < 0.3 || acc > 0.45 {
			t.Errorf("%s at 0.4 offered accepted %v", row[0], acc)
		}
	}
}
