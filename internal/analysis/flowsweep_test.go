package analysis

import (
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/engine"
)

func tinyFlowScenario() Scenario {
	return Scenario{
		Name: "tiny",
		CFT:  CFTSpec{Radix: 8, Levels: 3, TermsPerLeaf: 4},
		RFC:  core.Params{Radix: 8, Levels: 3, Leaves: 32},
	}
}

func tinyFlowOpts(sh engine.Shard) FlowOptions {
	return FlowOptions{
		Loads:    []float64{0.3, 0.9},
		Reps:     2,
		Patterns: []string{"uniform", "hotspot"},
		Seed:     23,
		Shard:    sh,
	}
}

func TestFlowScenarioSweepWorkerInvariance(t *testing.T) {
	serial := reportText(t, func() (*Report, error) {
		o := tinyFlowOpts(engine.Shard{})
		o.Workers = 1
		return FlowScenarioSweep(tinyFlowScenario(), o)
	})
	parallel := reportText(t, func() (*Report, error) {
		o := tinyFlowOpts(engine.Shard{})
		o.Workers = 8
		return FlowScenarioSweep(tinyFlowScenario(), o)
	})
	if serial != parallel {
		t.Errorf("FlowScenarioSweep differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, parallel)
	}
}

func TestFlowScenarioSweepShardMerge(t *testing.T) {
	assertShardMerge(t, "FlowScenarioSweep", func(sh engine.Shard) (*Report, error) {
		return FlowScenarioSweep(tinyFlowScenario(), tinyFlowOpts(sh))
	})
}

func TestFlowScaleShardMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("10×-scale flow sweep skipped under -short")
	}
	assertShardMerge(t, "FlowScale", func(sh engine.Shard) (*Report, error) {
		return FlowScale(ScaleSmall, FlowOptions{
			Loads:    []float64{1.0},
			Reps:     1,
			Patterns: []string{"uniform"},
			Seed:     23,
			Shard:    sh,
		})
	})
}
