package analysis

import (
	"fmt"

	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// TablesReport quantifies the §1/§6 simplicity argument: the forwarding
// state a deployment needs. For the equal-resources CFT and RFC it builds
// the explicit per-switch ECMP tables and reports entry counts, total ECMP
// port references and memory, next to the compressed cover state the router
// actually uses. The RRN column estimates the k-shortest-path state Jellyfish
// requires (k paths × average path length per switch pair), which grows
// faster and must be recomputed globally on every expansion or fault.
func TablesReport(scale Scale, kPaths int, seed uint64) (*Report, error) {
	if kPaths <= 0 {
		kPaths = 8 // the Jellyfish paper's k
	}
	if seed == 0 {
		seed = 1
	}
	sc := Scenarios(scale)[0]
	r := rng.At(seed, rng.StringCoord("tables"))
	rep := &Report{
		Title: fmt.Sprintf("Forwarding state comparison (%s equal-resources scenario)", scale),
		Notes: []string{
			"CFT/RFC: explicit shortest up/down ECMP tables (entries × destinations)",
			fmt.Sprintf("RRN: estimated %d-shortest-paths state (Jellyfish routing), hops stored per path", kPaths),
		},
		Header: []string{"network", "switches", "entries", "port refs", "explicit bytes", "cover bytes"},
	}
	cft, err := sc.CFT.Build()
	if err != nil {
		return nil, err
	}
	cud := routing.New(cft)
	cst := cud.Stats(cud.BuildTables())
	rep.AddRow(Str(fmt.Sprintf("CFT-R%d", sc.CFT.Radix)), Int(cst.Switches), Int(cst.TotalEntries),
		Int(cst.TotalPortRefs), Int(cst.ApproxBytes), Int(cst.CoverBytes))

	_, rud, err := buildRoutableRFC(sc.RFC, r)
	if err != nil {
		return nil, err
	}
	rst := rud.Stats(rud.BuildTables())
	rep.AddRow(Str(fmt.Sprintf("RFC-R%d", sc.RFC.Radix)), Int(rst.Switches), Int(rst.TotalEntries),
		Int(rst.TotalPortRefs), Int(rst.ApproxBytes), Int(rst.CoverBytes))

	// RRN estimate: size an RRN for the same terminal count, sample pairs
	// to get the average k-shortest path length, extrapolate state size.
	spec := rrnSpecFor(sc.CFT.Terminals(), 4)
	rrn, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch, r)
	if err != nil {
		return nil, err
	}
	const pairSamples = 30
	totalHops := 0.0
	counted := 0
	for i := 0; i < pairSamples; i++ {
		a, b := r.Intn(rrn.N()), r.Intn(rrn.N())
		if a == b {
			continue
		}
		for _, p := range rrn.G.KShortestPaths(a, b, kPaths) {
			totalHops += float64(len(p) - 1)
			counted++
		}
	}
	avgHops := 0.0
	if counted > 0 {
		avgHops = totalHops / float64(counted)
	}
	pairs := rrn.N() * (rrn.N() - 1)
	totalRefs := int(float64(pairs*kPaths) * avgHops)
	rep.AddRow(Str(fmt.Sprintf("RRN-R%d (k=%d est.)", spec.Radix(), kPaths)),
		Int(rrn.N()), Int(pairs*kPaths), Int(totalRefs), Int(totalRefs+2*pairs*kPaths), Str("-"))
	return rep, nil
}
