package analysis

// Regression tests for the engine's central contract: every sweep is a pure
// function of (seed, job coordinates), so running the same experiment on 1
// worker or many produces byte-identical reports. A failure here means some
// job is drawing randomness from a shared or order-dependent stream.

import (
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/simnet"
)

// reportText renders a report the way cmd/rfcpaper prints it; comparing the
// formatted text catches any divergence, including row order.
func reportText(t *testing.T, run func() (*Report, error)) string {
	t.Helper()
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}
	return rep.Format()
}

func TestScenarioSweepWorkerInvariance(t *testing.T) {
	sc := Scenario{
		Name: "tiny",
		CFT:  CFTSpec{Radix: 8, Levels: 3, TermsPerLeaf: 4},
		RFC:  core.Params{Radix: 8, Levels: 3, Leaves: 32},
	}
	opts := SimOptions{
		Loads:    []float64{0.2, 0.6},
		Reps:     2,
		Patterns: []string{"uniform"},
		Sim:      simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
		Seed:     21,
	}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return ScenarioSweep(sc, opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return ScenarioSweep(sc, opts) })
	if serial != parallel {
		t.Errorf("ScenarioSweep differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestFig12WorkerInvariance(t *testing.T) {
	opts := Fig12Options{
		Scale:      ScaleSmall,
		FaultSteps: 1,
		Reps:       2,
		Sim:        simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
		Seed:       23,
	}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return Fig12FaultThroughput(opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return Fig12FaultThroughput(opts) })
	if serial != parallel {
		t.Errorf("Fig12FaultThroughput differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestRRNFaultsWorkerInvariance(t *testing.T) {
	opts := RRNFaultsOptions{
		Scale:      ScaleSmall,
		FaultSteps: 1,
		Reps:       2,
		Sim:        simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
		Seed:       23,
	}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return RRNFaults(opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return RRNFaults(opts) })
	if serial != parallel {
		t.Errorf("RRNFaults differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestTable3WorkerInvariance(t *testing.T) {
	opts := Table3Options{Targets: []int{256}, Trials: 8, Seed: 25}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return Table3Disconnect(opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return Table3Disconnect(opts) })
	if serial != parallel {
		t.Errorf("Table3Disconnect differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestThm42WorkerInvariance(t *testing.T) {
	serial := reportText(t, func() (*Report, error) { return Thm42(60, 12, 1, 27) })
	parallel := reportText(t, func() (*Report, error) { return Thm42(60, 12, 8, 27) })
	if serial != parallel {
		t.Errorf("Thm42 differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}
