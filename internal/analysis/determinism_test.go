package analysis

// Regression tests for the engine's central contract: every sweep is a pure
// function of (seed, job coordinates), so running the same experiment on 1
// worker or many produces byte-identical reports. A failure here means some
// job is drawing randomness from a shared or order-dependent stream.

import (
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/engine"
	"rfclos/internal/simnet"
)

// reportText renders a report the way cmd/rfcpaper prints it; comparing the
// formatted text catches any divergence, including row order.
func reportText(t *testing.T, run func() (*Report, error)) string {
	t.Helper()
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}
	return rep.Format()
}

func TestScenarioSweepWorkerInvariance(t *testing.T) {
	sc := Scenario{
		Name: "tiny",
		CFT:  CFTSpec{Radix: 8, Levels: 3, TermsPerLeaf: 4},
		RFC:  core.Params{Radix: 8, Levels: 3, Leaves: 32},
	}
	opts := SimOptions{
		Loads:    []float64{0.2, 0.6},
		Reps:     2,
		Patterns: []string{"uniform"},
		Sim:      simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
		Seed:     21,
	}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return ScenarioSweep(sc, opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return ScenarioSweep(sc, opts) })
	if serial != parallel {
		t.Errorf("ScenarioSweep differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestFig12WorkerInvariance(t *testing.T) {
	opts := Fig12Options{
		Scale:      ScaleSmall,
		FaultSteps: 1,
		Reps:       2,
		Sim:        simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
		Seed:       23,
	}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return Fig12FaultThroughput(opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return Fig12FaultThroughput(opts) })
	if serial != parallel {
		t.Errorf("Fig12FaultThroughput differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestRRNFaultsWorkerInvariance(t *testing.T) {
	opts := RRNFaultsOptions{
		Scale:      ScaleSmall,
		FaultSteps: 1,
		Reps:       2,
		Sim:        simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
		Seed:       23,
	}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return RRNFaults(opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return RRNFaults(opts) })
	if serial != parallel {
		t.Errorf("RRNFaults differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestTable3WorkerInvariance(t *testing.T) {
	opts := Table3Options{Targets: []int{256}, Trials: 8, Seed: 25}
	opts.Workers = 1
	serial := reportText(t, func() (*Report, error) { return Table3Disconnect(opts) })
	opts.Workers = 8
	parallel := reportText(t, func() (*Report, error) { return Table3Disconnect(opts) })
	if serial != parallel {
		t.Errorf("Table3Disconnect differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

func TestThm42WorkerInvariance(t *testing.T) {
	serial := reportText(t, func() (*Report, error) { return Thm42(60, 12, 1, 27) })
	parallel := reportText(t, func() (*Report, error) { return Thm42(60, 12, 8, 27) })
	if serial != parallel {
		t.Errorf("Thm42 differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

// assertShardMerge checks the sharding contract end-to-end for one exhibit
// runner: for 2-way and 3-way partitions, running every shard, serializing
// each partial through the JSON wire format (the rfcmerge path) and merging
// reproduces the unsharded run's Format() byte-for-byte.
func assertShardMerge(t *testing.T, name string, run func(engine.Shard) (*Report, error)) {
	t.Helper()
	full, err := run(engine.Shard{})
	if err != nil {
		t.Fatalf("%s unsharded: %v", name, err)
	}
	want := full.Format()
	for _, n := range []int{2, 3} {
		var parts []*Report
		for k := 0; k < n; k++ {
			p, err := run(engine.Shard{K: k, N: n})
			if err != nil {
				t.Fatalf("%s shard %d/%d: %v", name, k, n, err)
			}
			data, err := p.JSON()
			if err != nil {
				t.Fatalf("%s shard %d/%d JSON: %v", name, k, n, err)
			}
			back, err := ParseReport(data)
			if err != nil {
				t.Fatalf("%s shard %d/%d parse: %v", name, k, n, err)
			}
			parts = append(parts, back)
		}
		merged, err := MergeReports(parts...)
		if err != nil {
			t.Fatalf("%s merge %d shards: %v", name, n, err)
		}
		if missing := merged.MissingObs(); missing != 0 {
			t.Errorf("%s merge %d shards: %d observations missing", name, n, missing)
		}
		if got := merged.Format(); got != want {
			t.Errorf("%s: %d-shard merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
				name, n, want, got)
		}
	}
}

func TestScenarioSweepShardMerge(t *testing.T) {
	sc := Scenario{
		Name: "tiny",
		CFT:  CFTSpec{Radix: 8, Levels: 3, TermsPerLeaf: 4},
		RFC:  core.Params{Radix: 8, Levels: 3, Leaves: 32},
	}
	assertShardMerge(t, "ScenarioSweep", func(sh engine.Shard) (*Report, error) {
		return ScenarioSweep(sc, SimOptions{
			Loads:    []float64{0.2, 0.6},
			Reps:     2,
			Patterns: []string{"uniform"},
			Sim:      simnet.Config{WarmupCycles: 100, MeasureCycles: 300},
			Seed:     21,
			Shard:    sh,
		})
	})
}

func TestTable3ShardMerge(t *testing.T) {
	assertShardMerge(t, "Table3Disconnect", func(sh engine.Shard) (*Report, error) {
		return Table3Disconnect(Table3Options{Targets: []int{256}, Trials: 8, Seed: 25, Shard: sh})
	})
}

func TestThm42ShardMerge(t *testing.T) {
	assertShardMerge(t, "Thm42", func(sh engine.Shard) (*Report, error) {
		return Thm42Sharded(Thm42Options{N1: 60, Trials: 12, Seed: 27, Shard: sh})
	})
}

func TestFig11ShardMerge(t *testing.T) {
	assertShardMerge(t, "Fig11UpDownFaults", func(sh engine.Shard) (*Report, error) {
		return Fig11UpDownFaults(Fig11Options{Radix: 8, Trials: 2, MaxLeavesCap: 40, Seed: 29, Shard: sh})
	})
}

func TestAdversarialShardMerge(t *testing.T) {
	assertShardMerge(t, "Adversarial", func(sh engine.Shard) (*Report, error) {
		return Adversarial(AdversarialOptions{
			Reps: 2, Sim: simnet.Config{WarmupCycles: 100, MeasureCycles: 300}, Seed: 31, Shard: sh,
		})
	})
}

// TestStaticReportMerge checks the all-static case: every shard of an
// analytic exhibit computes the identical complete report, and merging the
// copies must reproduce it unchanged.
func TestStaticReportMerge(t *testing.T) {
	a, b := Fig5Diameter(36), Fig5Diameter(36)
	merged, err := MergeReports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Format() != a.Format() {
		t.Errorf("merging two identical static reports changed the bytes")
	}
}
