package analysis

import (
	"fmt"

	"rfclos/internal/core"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// Scale selects experiment sizing. ScalePaper reproduces the paper's exact
// parameters (radix 36, 11K–200K terminals) and is expensive on one
// machine; ScaleSmall is a radix-16 analogue that preserves every
// qualitative relation (equal-resources scenario, expanded scenarios with a
// level advantage for the RFC, a smaller-radix RFC matching the CFT's
// terminal count).
type Scale string

const (
	ScaleSmall Scale = "small"
	ScalePaper Scale = "paper"
)

// CFTSpec sizes a commodity fat-tree, possibly partially populated.
type CFTSpec struct {
	Radix, Levels, TermsPerLeaf int
}

// Build constructs the CFT.
func (s CFTSpec) Build() (*topology.Clos, error) {
	return topology.NewCFTWithTerminals(s.Radix, s.Levels, s.TermsPerLeaf)
}

// Terminals returns the spec's terminal count.
func (s CFTSpec) Terminals() int {
	n1 := 2
	for i := 0; i < s.Levels-1; i++ {
		n1 *= s.Radix / 2
	}
	return n1 * s.TermsPerLeaf
}

// Scenario is one of the three §6 comparison scenarios.
type Scenario struct {
	// Name is "11K" / "100K" / "200K" at paper scale, or the scaled
	// terminal count otherwise.
	Name string
	CFT  CFTSpec
	RFC  core.Params
	// AltRFC, when set, is the smaller-radix RFC matching the CFT's
	// terminal count (the radix-20 network of Figure 8).
	AltRFC *core.Params
}

// Scenarios returns the three comparison scenarios at the given scale.
func Scenarios(scale Scale) []Scenario {
	if scale == ScalePaper {
		alt := core.Params{Radix: 20, Levels: 3, Leaves: 1166}
		return []Scenario{
			{
				Name:   "11K-equal-resources",
				CFT:    CFTSpec{Radix: 36, Levels: 3, TermsPerLeaf: 18},
				RFC:    core.Params{Radix: 36, Levels: 3, Leaves: 648},
				AltRFC: &alt,
			},
			{
				// The paper's 100,008-terminal case needs 8.57
				// terminals/leaf on the 4-level CFT; we use 9 per leaf
				// (104,976 terminals) to keep attachment uniform, and size
				// the 3-level RFC to the identical terminal count.
				Name: "100K-intermediate",
				CFT:  CFTSpec{Radix: 36, Levels: 4, TermsPerLeaf: 9},
				RFC:  core.Params{Radix: 36, Levels: 3, Leaves: 5832},
			},
			{
				Name: "200K-maximum",
				CFT:  CFTSpec{Radix: 36, Levels: 4, TermsPerLeaf: 18},
				RFC:  core.Params{Radix: 36, Levels: 3, Leaves: 11254},
			},
		}
	}
	alt := core.Params{Radix: 12, Levels: 3, Leaves: 170}
	return []Scenario{
		{
			Name:   "1K-equal-resources",
			CFT:    CFTSpec{Radix: 16, Levels: 3, TermsPerLeaf: 8},
			RFC:    core.Params{Radix: 16, Levels: 3, Leaves: 128},
			AltRFC: &alt,
		},
		{
			// Like the paper's 100K case, the RFC sits at ~half its
			// Theorem 4.2 capacity (256 of 634 leaves) while the 4-level
			// CFT runs one quarter populated with free ports.
			Name: "2K-intermediate",
			CFT:  CFTSpec{Radix: 16, Levels: 4, TermsPerLeaf: 2},
			RFC:  core.Params{Radix: 16, Levels: 3, Leaves: 256},
		},
		{
			Name: "5K-maximum",
			CFT:  CFTSpec{Radix: 16, Levels: 4, TermsPerLeaf: 5},
			RFC:  core.Params{Radix: 16, Levels: 3, Leaves: 632},
		},
	}
}

// buildRoutableRFC generates an up/down-routable RFC for p.
func buildRoutableRFC(p core.Params, r *rng.Rand) (*topology.Clos, *routing.UpDown, error) {
	c, ud, _, err := core.GenerateRoutable(p, 50, r)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: %v: %w", p, err)
	}
	return c, ud, nil
}
