package analysis

import (
	"strconv"
	"strings"
	"testing"

	"rfclos/internal/core"
	"rfclos/internal/graph"
	"rfclos/internal/rng"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
)

func TestFaultsToDisconnectKnownGraphs(t *testing.T) {
	r := rng.New(1)
	// A cycle survives exactly one removal: the second always disconnects.
	cyc := graph.New(8)
	for i := 0; i < 8; i++ {
		cyc.AddEdge(i, (i+1)%8)
	}
	for trial := 0; trial < 10; trial++ {
		if got := FaultsToDisconnect(cyc, r); got != 2 {
			t.Fatalf("cycle disconnects at removal %d, want 2", got)
		}
	}
	// A path disconnects on the first removal.
	path := graph.New(5)
	for i := 0; i < 4; i++ {
		path.AddEdge(i, i+1)
	}
	if got := FaultsToDisconnect(path, r); got != 1 {
		t.Errorf("path disconnects at removal %d, want 1", got)
	}
	// K5 needs at least its min degree (4) removals.
	k5 := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			k5.AddEdge(i, j)
		}
	}
	if got := FaultsToDisconnect(k5, r); got < 4 {
		t.Errorf("K5 disconnected after %d removals, want >= 4", got)
	}
	if avg := AverageFaultsToDisconnect(cyc, 20, r); avg != 2.0/8.0 {
		t.Errorf("average fraction = %v, want 0.25", avg)
	}
}

func TestUpDownFaultToleranceOFTIsZero(t *testing.T) {
	// §7: in the 2-level OFT minimal up/down paths between leaves with
	// different points are unique, so any single link loss breaks some
	// pair.
	c, err := topology.NewOFT(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for trial := 0; trial < 3; trial++ {
		if got := FaultsUntilUpDownLost(c, r); got != 0 {
			t.Fatalf("2-level OFT tolerated %d faults, want 0", got)
		}
	}
}

func TestUpDownFaultToleranceCFTPositive(t *testing.T) {
	// A 3-level CFT has many redundant up/down paths; it must tolerate a
	// positive fraction of faults.
	c, err := topology.NewCFT(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	tol := AverageUpDownFaultTolerance(c, 3, r)
	if tol <= 0 || tol >= 1 {
		t.Errorf("CFT tolerance = %v, want in (0,1)", tol)
	}
}

func TestRFCToleratesMoreThanCFTAtEqualRadix(t *testing.T) {
	// Figure 11's headline: at the same radix and comparable size, the RFC
	// preserves up/down routing through more faults than the CFT.
	r := rng.New(4)
	cft, err := topology.NewCFT(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{Radix: 12, Levels: 3, Leaves: cft.LevelSize(1)}
	rfc, _, _, err := core.GenerateRoutable(p, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	cftTol := AverageUpDownFaultTolerance(cft, 4, r)
	rfcTol := AverageUpDownFaultTolerance(rfc, 4, r)
	if rfcTol <= cftTol {
		t.Errorf("RFC tolerance %v not above CFT tolerance %v", rfcTol, cftTol)
	}
}

func TestRemoveRandomLinks(t *testing.T) {
	c, err := topology.NewCFT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Wires()
	removed := RemoveRandomLinks(c, 3, rng.New(5))
	if len(removed) != 3 || c.Wires() != before-3 {
		t.Errorf("removed %d links, wires %d -> %d", len(removed), before, c.Wires())
	}
	// Removing more than exist clamps.
	c2, _ := topology.NewCFT(4, 2)
	if got := RemoveRandomLinks(c2, 10000, rng.New(6)); len(got) != before {
		t.Errorf("clamped removal = %d, want %d", len(got), before)
	}
}

func TestSizingRules(t *testing.T) {
	// §7's quoted radices: T≈2048 → CFT R=20, RFC R=14, RRN R=13.
	if r := cftRadixFor(2048, 3); r != 20 {
		t.Errorf("CFT radix for 2048 = %d, want 20", r)
	}
	if p := rfcParamsFor(2048, 3); p.Radix != 14 {
		t.Errorf("RFC radix for 2048 = %d, want 14", p.Radix)
	}
	if s := rrnSpecFor(2048, 4); s.Radix() != 13 {
		t.Errorf("RRN radix for 2048 = %d, want 13", s.Radix())
	}
	// T≈1024 → OFT R=8 (q=3).
	if q, ok := oftOrderFor(1024, 3); !ok || q != 3 {
		t.Errorf("OFT order for 1024 = %d (ok=%v), want 3", q, ok)
	}
}

func TestFig5Report(t *testing.T) {
	rep := Fig5Diameter(36)
	if len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}
	found := map[string]string{}
	for _, row := range rep.Strings() {
		found[row[0]+"/"+row[1]] = row[2]
	}
	if found["CFT/4"] != "11664" {
		t.Errorf("CFT diameter-4 capacity = %s, want 11664", found["CFT/4"])
	}
	// §4.2: RFC diameter-4 limit ≈ 202,554 terminals.
	if v := atofOrZero(found["RFC/4"]); v < 202000 || v > 203100 {
		t.Errorf("RFC diameter-4 capacity = %v, want ≈202.5K", v)
	}
}

func TestFig6Report(t *testing.T) {
	rep := Fig6Scalability([]int{36})
	vals := map[string]float64{}
	for _, row := range rep.Strings() {
		vals[row[0]+"/l"+row[1]] = atofOrZero(row[3])
	}
	// Scalability ordering at radix 36, 3 levels: OFT > RFC > CFT.
	if !(vals["OFT/l3"] > vals["RFC/l3"] && vals["RFC/l3"] > vals["CFT/l3"]) {
		t.Errorf("scalability ordering violated: OFT=%v RFC=%v CFT=%v",
			vals["OFT/l3"], vals["RFC/l3"], vals["CFT/l3"])
	}
	// RFC within the same order of magnitude as the RRN (paper: "really
	// close").
	if vals["RRN/l3"] < vals["RFC/l3"] || vals["RRN/l3"] > 3*vals["RFC/l3"] {
		t.Errorf("RRN/RFC scalability gap unexpected: %v vs %v", vals["RRN/l3"], vals["RFC/l3"])
	}
}

func atofOrZero(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0
	}
	return v
}

func TestFig7Report(t *testing.T) {
	rep := Fig7Expandability(36, 50000, 20)
	var cftCosts, rfcCosts []float64
	var rfcTs []float64
	for _, row := range rep.Strings() {
		switch row[0] {
		case "CFT":
			cftCosts = append(cftCosts, atofOrZero(row[2]))
		case "RFC":
			rfcCosts = append(rfcCosts, atofOrZero(row[2]))
			rfcTs = append(rfcTs, atofOrZero(row[1]))
		}
	}
	if len(cftCosts) == 0 || len(rfcCosts) == 0 {
		t.Fatal("missing series")
	}
	// RFC cost is never above CFT cost at the same terminal count, and the
	// RFC curve is monotone (near-linear), while the CFT curve has steps.
	for i := range rfcCosts {
		if rfcCosts[i] > cftCosts[i] {
			t.Errorf("RFC cost %v above CFT cost %v at T=%v", rfcCosts[i], cftCosts[i], rfcTs[i])
		}
		if i > 0 && rfcCosts[i] < rfcCosts[i-1] {
			t.Errorf("RFC cost not monotone at index %d", i)
		}
	}
}

func TestCostsReport(t *testing.T) {
	rep := Costs()
	text := rep.Format()
	// §5's quoted savings at maximum expansion.
	if !strings.Contains(text, "31% switches") || !strings.Contains(text, "36% wires") {
		t.Errorf("expected 31%%/36%% savings in:\n%s", text)
	}
	if !strings.Contains(text, "28135") || !strings.Contains(text, "405144") {
		t.Errorf("expected paper's RFC counts in:\n%s", text)
	}
}

func TestThm42Report(t *testing.T) {
	rep, err := Thm42(120, 30, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(rep.Rows))
	}
	for _, row := range rep.Strings() {
		emp := atofOrZero(row[2])
		if emp < 0 || emp > 1 {
			t.Errorf("empirical probability %v out of range", emp)
		}
	}
	// Probabilities at the extremes of the sweep behave as the theorem
	// dictates.
	first := atofOrZero(rep.Strings()[0][2])
	last := atofOrZero(rep.Strings()[len(rep.Rows)-1][2])
	if first > 0.4 {
		t.Errorf("lowest radix empirical = %v, want near 0", first)
	}
	if last < 0.6 {
		t.Errorf("highest radix empirical = %v, want near 1", last)
	}
}

func TestTable3Small(t *testing.T) {
	rep, err := Table3Disconnect(Table3Options{Targets: []int{512, 1024}, Trials: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Row for 1024 has all four topologies; percentages in (0, 100).
	row := rep.Strings()[1]
	for i := 1; i < len(row); i++ {
		v := atofOrZero(strings.Split(row[i], "%")[0])
		if v <= 0 || v >= 100 {
			t.Errorf("cell %q out of range", row[i])
		}
	}
	// Paper shape at T≈1024: OFT is by far the least fault tolerant; the
	// RFC tolerates fewer removals than CFT/RRN (it uses a smaller radix).
	get := func(i int) float64 { return atofOrZero(strings.Split(row[i], "%")[0]) }
	cft, rrn, rfc, oft := get(1), get(2), get(3), get(4)
	if !(oft < rfc && oft < cft && oft < rrn) {
		t.Errorf("OFT should be least tolerant: cft=%v rrn=%v rfc=%v oft=%v", cft, rrn, rfc, oft)
	}
	if rfc >= cft {
		t.Errorf("RFC (smaller radix) should tolerate less than CFT: %v vs %v", rfc, cft)
	}
}

func TestFig11Small(t *testing.T) {
	rep, err := Fig11UpDownFaults(Fig11Options{Radix: 8, Trials: 2, MaxLeavesCap: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}
	sawRFC3 := false
	for _, row := range rep.Strings() {
		y := atofOrZero(row[2])
		if y < 0 || y > 1 {
			t.Errorf("tolerated fraction %v out of range (%v)", y, row)
		}
		if row[0] == "RFC-3L" && y > 0 {
			sawRFC3 = true
		}
	}
	if !sawRFC3 {
		t.Error("no positive-tolerance RFC-3L point")
	}
}

func TestScenarioSweepTiny(t *testing.T) {
	sc := Scenario{
		Name: "tiny",
		CFT:  CFTSpec{Radix: 8, Levels: 3, TermsPerLeaf: 4},
		RFC:  core.Params{Radix: 8, Levels: 3, Leaves: 32},
	}
	opts := SimOptions{
		Loads: []float64{0.2, 0.6},
		Reps:  1,
		Sim:   simnet.Config{WarmupCycles: 300, MeasureCycles: 1000},
		Seed:  11,
	}
	rep, err := ScenarioSweep(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 networks × 3 patterns × 2 loads × 2 series (thr+lat) = 24 rows.
	if len(rep.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(rep.Rows))
	}
	// At 20% offered load, uniform throughput should track the offer.
	for _, row := range rep.Strings() {
		if strings.Contains(row[0], "uniform/throughput") && row[1] == "0.2" {
			if y := atofOrZero(row[2]); y < 0.17 || y > 0.22 {
				t.Errorf("%s at 0.2 offered: accepted %v", row[0], y)
			}
		}
	}
}

func TestFig12Tiny(t *testing.T) {
	rep, err := Fig12FaultThroughput(Fig12Options{
		Scale:      ScaleSmall,
		FaultSteps: 2,
		Reps:       1,
		Sim:        simnet.Config{WarmupCycles: 200, MeasureCycles: 500},
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2*3*3 { // 2 nets × 3 patterns × 3 fault points
		t.Fatalf("rows = %d, want 18", len(rep.Rows))
	}
	for _, row := range rep.Strings() {
		y := atofOrZero(row[2])
		if y < 0 || y > 1.1 {
			t.Errorf("accepted load %v out of range", y)
		}
	}
}

func TestRRNFaultsTiny(t *testing.T) {
	rep, err := RRNFaults(RRNFaultsOptions{
		Scale:      ScaleSmall,
		FaultSteps: 2,
		Reps:       1,
		Sim:        simnet.Config{WarmupCycles: 200, MeasureCycles: 500},
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2*2*3 { // 2 nets × 2 patterns × 3 fault points
		t.Fatalf("rows = %d, want 12", len(rep.Rows))
	}
	seenRRN := false
	for _, row := range rep.Strings() {
		y := atofOrZero(row[2])
		if y < 0 || y > 1.1 {
			t.Errorf("accepted load %v out of range", y)
		}
		if strings.HasPrefix(row[0], "RRN") {
			seenRRN = true
			// The fault-free direct network must actually route (not every
			// point scores 0 through the unified engine).
			if row[1] == "0" && y <= 0 {
				t.Errorf("fault-free RRN point accepted %v, want > 0", y)
			}
		}
	}
	if !seenRRN {
		t.Error("no RRN series in the report")
	}
}

func TestScenariosWellFormed(t *testing.T) {
	for _, scale := range []Scale{ScaleSmall, ScalePaper} {
		for _, sc := range Scenarios(scale) {
			if err := sc.RFC.Validate(); err != nil {
				t.Errorf("%s/%s RFC params: %v", scale, sc.Name, err)
			}
			if sc.AltRFC != nil {
				if err := sc.AltRFC.Validate(); err != nil {
					t.Errorf("%s/%s alt RFC params: %v", scale, sc.Name, err)
				}
			}
			// Equal-terminal scenarios: RFC within 2% of the CFT.
			cftT, rfcT := float64(sc.CFT.Terminals()), float64(sc.RFC.Terminals())
			if rfcT < cftT*0.95 || rfcT > cftT*1.05 {
				t.Errorf("%s/%s terminal mismatch: CFT %v vs RFC %v", scale, sc.Name, cftT, rfcT)
			}
		}
	}
	// The paper-scale scenarios carry the exact §6 sizes.
	paper := Scenarios(ScalePaper)
	if paper[0].CFT.Terminals() != 11664 || paper[0].RFC.Terminals() != 11664 {
		t.Error("paper 11K scenario sizes wrong")
	}
	if paper[2].RFC.Terminals() != 202572 {
		t.Error("paper 200K RFC size wrong")
	}
}

func TestFig7MatchesConstructedNetworks(t *testing.T) {
	// Cross-validate the analytic Figure 7 port counts against networks
	// actually built at the same sizes.
	rep := Fig7Expandability(8, 500, 10)
	r := rng.New(9)
	for _, row := range rep.Strings() {
		tcount := int(atofOrZero(row[1]))
		ports := int(atofOrZero(row[2]))
		switch row[0] {
		case "CFT":
			// Find the level count the analytic row used.
			for l := 2; l <= 6; l++ {
				if cftTerminals(8, l) >= tcount {
					c, err := topology.NewCFT(8, l)
					if err != nil {
						t.Fatal(err)
					}
					want := 2*c.Wires() + tcount
					if ports != want {
						t.Errorf("CFT T=%d: analytic %d ports, constructed %d", tcount, ports, want)
					}
					break
				}
			}
		case "RFC":
			for l := 2; l <= 6; l++ {
				if core.MaxTerminals(8, l) >= tcount {
					p := core.ParamsForTerminals(8, l, tcount)
					c, err := core.Generate(p, r)
					if err != nil {
						t.Fatal(err)
					}
					want := 2*c.Wires() + tcount
					if ports != want {
						t.Errorf("RFC T=%d: analytic %d ports, constructed %d", tcount, ports, want)
					}
					break
				}
			}
		}
	}
}

func TestReportCSV(t *testing.T) {
	rep := &Report{Header: []string{"a", "b"}}
	rep.AddRow(Str("1"), Str("x,y"))
	rep.AddRow(Str("2"), Str(`q"z`))
	csv := rep.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"q\"\"z\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
