package analysis

import (
	"fmt"

	"rfclos/internal/core"
	"rfclos/internal/metrics"
	"rfclos/internal/routing"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Table3Options parameterises the disconnection experiment.
type Table3Options struct {
	Targets []int // terminal counts; default the paper's 512..8192
	Trials  int   // removal orders averaged per cell (paper: 100)
	Seed    uint64
}

// Table3Disconnect reproduces Table 3: the average percentage of links that
// must be randomly removed to disconnect a diameter-4 (3-level) network of
// each topology, sized per the paper's rules for each terminal target.
func Table3Disconnect(opts Table3Options) (*Report, error) {
	if len(opts.Targets) == 0 {
		opts.Targets = []int{512, 1024, 2048, 4096, 8192}
	}
	if opts.Trials <= 0 {
		opts.Trials = 100
	}
	r := newSeeded(opts.Seed)
	rep := &Report{
		Title: "Table 3: % of links removed to disconnect a diameter-4 network",
		Notes: []string{
			fmt.Sprintf("%d random removal orders per cell; radix chosen per topology as in §7", opts.Trials),
		},
		Header: []string{"~T", "CFT", "RRN", "RFC", "OFT"},
	}
	for _, target := range opts.Targets {
		row := []string{itoa(target)}

		cftR := cftRadixFor(target, 3)
		cft, err := topology.NewCFT(cftR, 3)
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.1f%% (R=%d)",
			100*AverageFaultsToDisconnect(cft.SwitchGraph(), opts.Trials, r), cftR))

		spec := rrnSpecFor(target, 4)
		rrn, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch, r)
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.1f%% (R=%d)",
			100*AverageFaultsToDisconnect(rrn.G, opts.Trials, r), spec.Radix()))

		p := rfcParamsFor(target, 3)
		rfc, err := core.Generate(p, r)
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.1f%% (R=%d)",
			100*AverageFaultsToDisconnect(rfc.SwitchGraph(), opts.Trials, r), p.Radix))

		if q, ok := oftOrderFor(target, 3); ok {
			oft, err := topology.NewOFT(q, 3)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f%% (R=%d)",
				100*AverageFaultsToDisconnect(oft.SwitchGraph(), opts.Trials, r), 2*(q+1)))
		} else {
			row = append(row, "-")
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Fig11Options parameterises the up/down fault-tolerance experiment.
type Fig11Options struct {
	Radix  int // paper: 12
	Trials int // removal orders per point
	// MaxLeavesCap bounds the largest RFC per level (the level-4 maximum
	// is ~5,000 leaves at radix 12, heavy for one machine). 0 = default.
	MaxLeavesCap int
	Seed         uint64
}

// Fig11UpDownFaults reproduces Figure 11: the fraction of random link
// failures tolerated while preserving up/down routing, for RFCs of 2, 3 and
// 4 levels across sizes, with the CFT and OFT single points of the same
// radix.
func Fig11UpDownFaults(opts Fig11Options) (*Report, error) {
	if opts.Radix <= 0 {
		opts.Radix = 12
	}
	if opts.Trials <= 0 {
		opts.Trials = 5
	}
	if opts.MaxLeavesCap <= 0 {
		opts.MaxLeavesCap = 1200
	}
	r := newSeeded(opts.Seed)
	var series []metrics.Series

	for _, levels := range []int{2, 3, 4} {
		s := metrics.Series{Name: fmt.Sprintf("RFC-%dL", levels)}
		maxN1 := core.MaxLeaves(opts.Radix, levels)
		if maxN1 > opts.MaxLeavesCap {
			maxN1 = opts.MaxLeavesCap
		}
		for _, frac := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
			n1 := int(float64(maxN1)*frac) &^ 1
			if n1 < opts.Radix {
				continue
			}
			p := core.Params{Radix: opts.Radix, Levels: levels, Leaves: n1}
			if p.Validate() != nil {
				continue
			}
			c, _, _, err := core.GenerateRoutable(p, 50, r)
			if err != nil {
				continue // near/below threshold: 0 tolerance by definition
			}
			tol := AverageUpDownFaultTolerance(c, opts.Trials, r)
			s.Add(float64(p.Terminals()), tol, 0)
		}
		series = append(series, s)
	}
	// CFT points.
	cftSeries := metrics.Series{Name: "CFT"}
	for _, levels := range []int{2, 3, 4} {
		c, err := topology.NewCFT(opts.Radix, levels)
		if err != nil {
			return nil, err
		}
		cftSeries.Add(float64(c.Terminals()), AverageUpDownFaultTolerance(c, opts.Trials, r), 0)
	}
	series = append(series, cftSeries)
	// OFT points (radix 2(q+1) == opts.Radix requires q = R/2-1 prime power).
	if q := opts.Radix/2 - 1; q >= 2 {
		oftSeries := metrics.Series{Name: "OFT"}
		for _, levels := range []int{2, 3} {
			c, err := topology.NewOFT(q, levels)
			if err != nil {
				break
			}
			if c.Terminals() > 50000 {
				break
			}
			oftSeries.Add(float64(c.Terminals()), AverageUpDownFaultTolerance(c, opts.Trials, r), 0)
		}
		series = append(series, oftSeries)
	}
	return seriesReport(fmt.Sprintf("Figure 11: up/down fault tolerance, radix %d", opts.Radix),
		[]string{"y = fraction of links removable before some leaf pair loses every up/down path"},
		"terminals", "tolerated fraction", series), nil
}

// Fig12Options parameterises the throughput-under-faults experiment.
type Fig12Options struct {
	Scale      Scale
	FaultSteps int // number of fault increments (paper: 10 steps of 300)
	Reps       int
	Sim        simnet.Config
	Seed       uint64
	Progress   func(string)
}

// Fig12FaultThroughput reproduces Figure 12: maximum throughput (accepted
// load at offered 1.0) of the equal-resources CFT and RFC as links fail, for
// the three traffic patterns. Faults are injected in equal increments up to
// ~13% of the wires, the paper's range.
func Fig12FaultThroughput(opts Fig12Options) (*Report, error) {
	if opts.FaultSteps <= 0 {
		opts.FaultSteps = 10
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	sc := Scenarios(opts.Scale)[0]
	master := newSeeded(opts.Seed + 12)

	cft, err := sc.CFT.Build()
	if err != nil {
		return nil, err
	}
	rfc, _, err := buildRoutableRFC(sc.RFC, master)
	if err != nil {
		return nil, err
	}
	nets := []netUnderTest{
		{fmt.Sprintf("CFT-R%d", sc.CFT.Radix), cft, nil},
		{fmt.Sprintf("RFC-R%d", sc.RFC.Radix), rfc, nil},
	}

	var series []metrics.Series
	for _, n := range nets {
		wires := n.c.Wires()
		step := wires * 13 / 100 / opts.FaultSteps
		if step == 0 {
			step = 1
		}
		for _, patName := range traffic.Names() {
			s := metrics.Series{Name: n.name + "/" + patName}
			for f := 0; f <= opts.FaultSteps; f++ {
				faults := f * step
				var acc metrics.Summary
				for rep := 0; rep < opts.Reps; rep++ {
					stream := master.Split()
					faulty := n.c.Clone()
					RemoveRandomLinks(faulty, faults, stream)
					ud := routing.New(faulty)
					pat, perr := traffic.New(patName, faulty.Terminals(), stream)
					if perr != nil {
						return nil, perr
					}
					cfg := opts.Sim
					cfg.Seed = stream.Uint64()
					res := simnet.New(faulty, ud, pat, cfg).Run(1.0)
					acc.Add(res.AcceptedLoad)
				}
				s.Add(float64(faults), acc.Mean(), acc.StdDev())
				if opts.Progress != nil {
					opts.Progress(fmt.Sprintf("%s/%s faults=%d accepted=%.3f",
						n.name, patName, faults, acc.Mean()))
				}
			}
			series = append(series, s)
		}
	}
	return seriesReport("Figure 12: max throughput under link faults (equal-resources scenario)",
		[]string{fmt.Sprintf("scale=%s; offered load 1.0; faults up to ~13%% of wires", opts.Scale)},
		"faulty links", "accepted load", series), nil
}
