package analysis

import (
	"fmt"

	"rfclos/internal/core"
	"rfclos/internal/engine"
	"rfclos/internal/graph"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// Table3Options parameterises the disconnection experiment.
type Table3Options struct {
	Targets []int // terminal counts; default the paper's 512..8192
	Trials  int   // removal orders averaged per cell (paper: 100)
	// Workers sizes the worker pool the removal trials fan out on; 0 means
	// one per CPU. The table is identical for any worker count.
	Workers int
	Seed    uint64
	// Shard restricts each cell's removal trials to the ones this process
	// owns; partial reports merge byte-identically (see engine.Shard).
	Shard engine.Shard
}

// Table3Disconnect reproduces Table 3: the average percentage of links that
// must be randomly removed to disconnect a diameter-4 (3-level) network of
// each topology, sized per the paper's rules for each terminal target. Each
// cell's removal trials run on the worker pool with per-trial seeds derived
// from the cell coordinates (topology name, terminal target), so the report
// is byte-identical for any opts.Workers.
func Table3Disconnect(opts Table3Options) (*Report, error) {
	if len(opts.Targets) == 0 {
		opts.Targets = []int{512, 1024, 2048, 4096, 8192}
	}
	if opts.Trials <= 0 {
		opts.Trials = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rep := &Report{
		Title: "Table 3: % of links removed to disconnect a diameter-4 network",
		Notes: []string{
			fmt.Sprintf("%d random removal orders per cell; radix chosen per topology as in §7", opts.Trials),
		},
		Header: []string{"~T", "CFT", "RRN", "RFC", "OFT"},
	}
	// cellSeed keys a cell's trial streams by topology name and target, so
	// no two cells can share a removal order and the table is invariant to
	// row or column reordering.
	cellSeed := func(topo string, target int) uint64 {
		return rng.DeriveSeed(opts.Seed, rng.StringCoord("table3/trials/"+topo), uint64(target))
	}
	genStream := func(topo string, target int) *rng.Rand {
		return rng.At(opts.Seed, rng.StringCoord("table3/gen/"+topo), uint64(target))
	}
	// disconnectCell renders mean(count)/links*100 with the radix suffix,
	// from this shard's trials of the cell.
	disconnectCell := func(g *graph.Graph, topo string, target, radix int) Cell {
		obs := disconnectObs(g, opts.Trials, opts.Workers, cellSeed(topo, target), opts.Shard)
		c := Mean(obs, opts.Trials, "%.1f")
		c.Div = float64(g.M())
		c.Mul = 100
		c.Suffix = fmt.Sprintf("%% (R=%d)", radix)
		return c
	}
	for _, target := range opts.Targets {
		cells := []Cell{Int(target)}

		cftR := cftRadixFor(target, 3)
		cft, err := topology.NewCFT(cftR, 3)
		if err != nil {
			return nil, err
		}
		cells = append(cells, disconnectCell(cft.SwitchGraph(), "CFT", target, cftR))

		spec := rrnSpecFor(target, 4)
		rrn, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch, genStream("RRN", target))
		if err != nil {
			return nil, err
		}
		cells = append(cells, disconnectCell(rrn.G, "RRN", target, spec.Radix()))

		p := rfcParamsFor(target, 3)
		rfc, err := core.Generate(p, genStream("RFC", target))
		if err != nil {
			return nil, err
		}
		cells = append(cells, disconnectCell(rfc.SwitchGraph(), "RFC", target, p.Radix))

		if q, ok := oftOrderFor(target, 3); ok {
			oft, err := topology.NewOFT(q, 3)
			if err != nil {
				return nil, err
			}
			cells = append(cells, disconnectCell(oft.SwitchGraph(), "OFT", target, 2*(q+1)))
		} else {
			cells = append(cells, Str("-"))
		}
		rep.AddKeyed(fmt.Sprintf("T=%d", target), cells...)
	}
	return rep, nil
}

// Fig11Options parameterises the up/down fault-tolerance experiment.
type Fig11Options struct {
	Radix  int // paper: 12
	Trials int // removal orders per point
	// MaxLeavesCap bounds the largest RFC per level (the level-4 maximum
	// is ~5,000 leaves at radix 12, heavy for one machine). 0 = default.
	MaxLeavesCap int
	// Workers sizes the worker pool for RFC generation and removal trials;
	// 0 means one per CPU. The report is identical for any worker count.
	Workers int
	Seed    uint64
	// Shard restricts each point's removal trials to the ones this process
	// owns (networks are still generated everywhere — they fix the row
	// structure); partial reports merge byte-identically.
	Shard engine.Shard
}

// fig11Point is one network point of the Figure 11 sweep: a series label,
// its x coordinate (terminal count) and the network, nil when generation
// failed (near/below threshold: 0 tolerance by definition, point skipped).
type fig11Point struct {
	series string
	x      float64
	c      *topology.Clos
}

// Fig11UpDownFaults reproduces Figure 11: the fraction of random link
// failures tolerated while preserving up/down routing, for RFCs of 2, 3 and
// 4 levels across sizes, with the CFT and OFT single points of the same
// radix. The expensive RFC generations fan out over the worker pool, as do
// each point's removal trials; generation and trial streams are derived
// from the point coordinates, so the report is byte-identical for any
// opts.Workers.
func Fig11UpDownFaults(opts Fig11Options) (*Report, error) {
	if opts.Radix <= 0 {
		opts.Radix = 12
	}
	if opts.Trials <= 0 {
		opts.Trials = 5
	}
	if opts.MaxLeavesCap <= 0 {
		opts.MaxLeavesCap = 1200
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	// RFC points: fix the parameter grid first (pure arithmetic), then
	// generate every network on the worker pool with per-point streams.
	type rfcSpec struct {
		series string
		p      core.Params
	}
	var specs []rfcSpec
	for _, levels := range []int{2, 3, 4} {
		maxN1 := core.MaxLeaves(opts.Radix, levels)
		if maxN1 > opts.MaxLeavesCap {
			maxN1 = opts.MaxLeavesCap
		}
		for _, frac := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
			n1 := int(float64(maxN1)*frac) &^ 1
			if n1 < opts.Radix {
				continue
			}
			p := core.Params{Radix: opts.Radix, Levels: levels, Leaves: n1}
			if p.Validate() != nil {
				continue
			}
			specs = append(specs, rfcSpec{fmt.Sprintf("RFC-%dL", levels), p})
		}
	}
	points, err := engine.Run(len(specs), opts.Workers, func(i int) (fig11Point, error) {
		s := specs[i]
		gen := rng.At(opts.Seed, rng.StringCoord("fig11/gen/"+s.series), uint64(s.p.Leaves))
		c, _, _, err := core.GenerateRoutable(s.p, 50, gen)
		if err != nil {
			return fig11Point{series: s.series}, nil // skipped point, not an error
		}
		return fig11Point{series: s.series, x: float64(s.p.Terminals()), c: c}, nil
	})
	if err != nil {
		return nil, err
	}

	// CFT and OFT reference points are deterministic builds.
	for _, levels := range []int{2, 3, 4} {
		c, err := topology.NewCFT(opts.Radix, levels)
		if err != nil {
			return nil, err
		}
		points = append(points, fig11Point{"CFT", float64(c.Terminals()), c})
	}
	if q := opts.Radix/2 - 1; q >= 2 {
		for _, levels := range []int{2, 3} {
			c, err := topology.NewOFT(q, levels)
			if err != nil {
				break
			}
			if c.Terminals() > 50000 {
				break
			}
			points = append(points, fig11Point{"OFT", float64(c.Terminals()), c})
		}
	}

	// Measure tolerance per point; the trials within a point fan out with
	// seeds keyed by (series, terminal count, trial), this shard running
	// only the trials it owns. Rows are grouped by series in first-seen
	// order, exactly as the old Series-based path emitted them.
	type f11row struct {
		x     float64
		wires int
		obs   []metrics.Obs
	}
	var order []string
	rowsBySeries := map[string][]f11row{}
	for _, pt := range points {
		if pt.c == nil {
			continue
		}
		if _, ok := rowsBySeries[pt.series]; !ok {
			order = append(order, pt.series)
		}
		trialSeed := rng.DeriveSeed(opts.Seed, rng.StringCoord("fig11/trial/"+pt.series), uint64(pt.x))
		obs := upDownFaultObs(pt.c, opts.Trials, opts.Workers, trialSeed, opts.Shard)
		rowsBySeries[pt.series] = append(rowsBySeries[pt.series], f11row{pt.x, pt.c.Wires(), obs})
	}
	rep := &Report{
		Title:  fmt.Sprintf("Figure 11: up/down fault tolerance, radix %d", opts.Radix),
		Notes:  []string{"y = fraction of links removable before some leaf pair loses every up/down path"},
		Header: []string{"series", "terminals", "tolerated fraction", "stddev"},
	}
	for _, name := range order {
		for _, row := range rowsBySeries[name] {
			tol := Mean(row.obs, opts.Trials, "%.4f")
			tol.Div = float64(row.wires)
			rep.AddKeyed(fmt.Sprintf("%s@%g", name, row.x),
				Str(name), Float(row.x, "%g"), tol, Float(0, "%.4f"))
		}
	}
	return rep, nil
}

// Fig12Options parameterises the throughput-under-faults experiment.
type Fig12Options struct {
	Scale      Scale
	FaultSteps int // number of fault increments (paper: 10 steps of 300)
	Reps       int
	Sim        simnet.Config
	// Workers sizes the worker pool the (network × pattern × fault step ×
	// rep) grid fans out on; 0 means one per CPU.
	Workers  int
	Seed     uint64
	Progress func(string)
	// Shard restricts execution to the grid jobs this process owns;
	// partial reports merge byte-identically.
	Shard engine.Shard
}

// fig12Job is one (network, pattern, fault count, repetition) grid point.
type fig12Job struct {
	net     netUnderTest
	pattern string
	faults  int
	rep     int
}

// Fig12FaultThroughput reproduces Figure 12: maximum throughput (accepted
// load at offered 1.0) of the equal-resources CFT and RFC as links fail, for
// the three traffic patterns. Faults are injected in equal increments up to
// ~13% of the wires, the paper's range. Every grid point is an independent
// job — clone the topology, remove the links, rebuild routing, simulate —
// with streams derived from its (network, pattern, faults, rep) coordinates,
// so the report is byte-identical for any opts.Workers.
func Fig12FaultThroughput(opts Fig12Options) (*Report, error) {
	if opts.FaultSteps <= 0 {
		opts.FaultSteps = 10
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	sc := Scenarios(opts.Scale)[0]

	cft, err := sc.CFT.Build()
	if err != nil {
		return nil, err
	}
	rfc, _, err := buildRoutableRFC(sc.RFC, rng.At(opts.Seed, rng.StringCoord("fig12/topology/RFC")))
	if err != nil {
		return nil, err
	}
	nets := []netUnderTest{
		{fmt.Sprintf("CFT-R%d", sc.CFT.Radix), cft, nil},
		{fmt.Sprintf("RFC-R%d", sc.RFC.Radix), rfc, nil},
	}

	var jobs []fig12Job
	for _, n := range nets {
		wires := n.c.Wires()
		step := wires * 13 / 100 / opts.FaultSteps
		if step == 0 {
			step = 1
		}
		for _, patName := range traffic.Names() {
			for f := 0; f <= opts.FaultSteps; f++ {
				for rep := 0; rep < opts.Reps; rep++ {
					jobs = append(jobs, fig12Job{n, patName, f * step, rep})
				}
			}
		}
	}
	accepted, err := engine.RunShard(len(jobs), opts.Workers, opts.Shard, func(i int) (float64, error) {
		j := jobs[i]
		stream := rng.At(opts.Seed, rng.StringCoord("fig12/"+j.net.name), rng.StringCoord(j.pattern),
			uint64(j.faults), uint64(j.rep))
		faulty := j.net.c.Clone()
		RemoveRandomLinks(faulty, j.faults, stream)
		ud := routing.New(faulty)
		pat, err := traffic.New(j.pattern, faulty.Terminals(), stream)
		if err != nil {
			return 0, err
		}
		cfg := opts.Sim
		cfg.Seed = stream.Uint64()
		res := simnet.New(faulty, ud, pat, cfg).Run(1.0)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%s/%s faults=%d rep=%d accepted=%.3f",
				j.net.name, j.pattern, j.faults, j.rep, res.AcceptedLoad))
		}
		return res.AcceptedLoad, nil
	})
	if err != nil {
		return nil, err
	}

	// Merge per-job accepted loads into one collector per (network,
	// pattern) group; the grid is jobs-ordered, so the block arithmetic
	// mirrors the construction loop above.
	per := (opts.FaultSteps + 1) * opts.Reps
	groups := len(nets) * len(traffic.Names())
	var sset seriesSet
	cols := make([]*metrics.JobCollector, groups)
	for g := 0; g < groups; g++ {
		first := jobs[g*per]
		cols[g] = sset.col(first.net.name + "/" + first.pattern)
	}
	for i := range jobs {
		g := i / per
		cols[g].Expect(float64(jobs[i].faults))
		if opts.Shard.Owns(i) {
			cols[g].Observe(float64(jobs[i].faults), i, accepted[i])
		}
	}
	return sset.report("Figure 12: max throughput under link faults (equal-resources scenario)",
		[]string{fmt.Sprintf("scale=%s; offered load 1.0; faults up to ~13%% of wires", opts.Scale)},
		"faulty links", "accepted load"), nil
}
