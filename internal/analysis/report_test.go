package analysis

import (
	"strings"
	"testing"

	"rfclos/internal/metrics"
)

// TestFormatWidthsCoverAllRows is the regression test for the width bug the
// pre-typed Format carried: rows with more cells than the header reused the
// last header width instead of sizing the extra columns, and cell widths
// beyond the header never widened their column.
func TestFormatWidthsCoverAllRows(t *testing.T) {
	rep := &Report{
		Title:  "widths",
		Header: []string{"a", "b"},
	}
	rep.AddRow(Str("x"), Str("longer-than-header"), Str("extra-col"))
	rep.AddRow(Str("wide-first-cell"), Str("y"), Str("z"))
	out := rep.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Every data row must be padded to the same rendered width per column:
	// the second column of both rows starts at the same offset, as does the
	// third (which has no header at all).
	row1, row2 := lines[2], lines[3]
	if got, want := strings.Index(row1, "longer-than-header"), strings.Index(row2, "y"); got != want {
		t.Errorf("column 2 misaligned: offset %d vs %d\n%s", got, want, out)
	}
	if got, want := strings.Index(row1, "extra-col"), strings.Index(row2, "z"); got != want {
		t.Errorf("column 3 (beyond header) misaligned: offset %d vs %d\n%s", got, want, out)
	}
}

func TestCellText(t *testing.T) {
	obs := []metrics.Obs{{Job: 0, V: 2}, {Job: 1, V: 4}}
	for _, tc := range []struct {
		cell Cell
		want string
	}{
		{Str("hi"), "hi"},
		{Int(42), "42"},
		{Float(0.5, "%.2f"), "0.50"},
		{Float(12.0, "%g"), "12"},
		{Mean(obs, 2, "%.1f"), "3.0"},
		{Std(obs, 2, "%.3f"), "1.414"},
	} {
		c := tc.cell
		if got := c.Text(); got != tc.want {
			t.Errorf("Text() = %q, want %q", got, tc.want)
		}
	}
	// Div-then-Mul transform order, with prefix/suffix.
	c := Mean(obs, 2, "%.1f")
	c.Div = 2
	c.Mul = 100
	c.Suffix = "%"
	if got := c.Text(); got != "150.0%" {
		t.Errorf("transformed Text() = %q, want 150.0%%", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Exhibit: "demo",
		Title:   "round trip",
		Notes:   []string{"a note"},
		Header:  []string{"k", "v"},
	}
	m := Mean([]metrics.Obs{{Job: 1, V: 0.123456789012345}}, 3, "%.4f")
	m.Div = 7
	m.Suffix = "!"
	rep.AddKeyed("r1", Str("s"), m)
	rep.AddKeyed("r2", Int(-5), Float(2.5, "%g"))

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), SchemaVersion) {
		t.Errorf("JSON missing schema version %q", SchemaVersion)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Exhibit != "demo" || back.Format() != rep.Format() || back.CSV() != rep.CSV() {
		t.Errorf("round trip changed output:\n%s\nvs\n%s", rep.Format(), back.Format())
	}
	if back.Rows[0].Cells[1].Want != 3 {
		t.Errorf("Want not preserved: %d", back.Rows[0].Cells[1].Want)
	}
	if back.MissingObs() != 2 {
		t.Errorf("MissingObs = %d, want 2", back.MissingObs())
	}

	if _, err := ParseReport([]byte(`{"schema":"rfclos.report/999","title":"x"}`)); err == nil {
		t.Error("foreign schema version accepted")
	}
	if _, err := ParseReport([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMergeReportsValidation(t *testing.T) {
	mk := func(mut func(*Report)) *Report {
		r := &Report{Exhibit: "e", Title: "t", Header: []string{"h"}}
		r.AddKeyed("k", Str("s"), Mean([]metrics.Obs{{Job: 0, V: 1}}, 2, "%.1f"))
		if mut != nil {
			mut(r)
		}
		return r
	}
	if _, err := MergeReports(); err == nil {
		t.Error("empty merge accepted")
	}
	for name, mut := range map[string]func(*Report){
		"exhibit":  func(r *Report) { r.Exhibit = "other" },
		"title":    func(r *Report) { r.Title = "other" },
		"header":   func(r *Report) { r.Header = []string{"x"} },
		"row key":  func(r *Report) { r.Rows[0].Key = "other" },
		"static":   func(r *Report) { r.Rows[0].Cells[0].S = "other" },
		"want":     func(r *Report) { r.Rows[0].Cells[1].Want = 9 },
		"cell fmt": func(r *Report) { r.Rows[0].Cells[1].Fmt = "%.9f" },
		"rows":     func(r *Report) { r.AddKeyed("k2", Str("s")) },
	} {
		if _, err := MergeReports(mk(nil), mk(mut)); err == nil {
			t.Errorf("%s mismatch accepted", name)
		}
	}
	// A valid merge unions observations and fills the Want contract.
	a := mk(nil)
	b := mk(func(r *Report) { r.Rows[0].Cells[1].Obs = []metrics.Obs{{Job: 1, V: 3}} })
	merged, err := MergeReports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.MissingObs() != 0 {
		t.Errorf("MissingObs = %d after full merge", merged.MissingObs())
	}
	if got := merged.Rows[0].Cells[1].Text(); got != "2.0" {
		t.Errorf("merged mean = %q, want 2.0", got)
	}
	// Merging must not mutate its inputs.
	if len(a.Rows[0].Cells[1].Obs) != 1 {
		t.Errorf("merge mutated input: %v", a.Rows[0].Cells[1].Obs)
	}
}
