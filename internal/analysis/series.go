package analysis

import (
	"fmt"

	"rfclos/internal/metrics"
)

// seriesSet assembles the (series, x, value, stddev) reports the sweep
// exhibits emit, from job-indexed observations, replacing the old
// pre-rendered seriesReport helper. Series keep first-col order and
// coordinates first-Expect order, so rows come out in exactly the order the
// unsharded accumulation produced them; each (series, x) row carries
// mergeable mean/std aggregate cells keyed "series@x".
type seriesSet struct {
	names []string
	cols  map[string]*metrics.JobCollector
}

// col returns (creating on first use) the collector for one series.
func (s *seriesSet) col(name string) *metrics.JobCollector {
	if s.cols == nil {
		s.cols = make(map[string]*metrics.JobCollector)
	}
	c, ok := s.cols[name]
	if !ok {
		c = &metrics.JobCollector{}
		s.cols[name] = c
		s.names = append(s.names, name)
	}
	return c
}

// report renders the set with columns (series, x, y, stddev).
func (s *seriesSet) report(title string, notes []string, xName, yName string) *Report {
	r := &Report{
		Title:  title,
		Notes:  notes,
		Header: []string{"series", xName, yName, "stddev"},
	}
	for _, name := range s.names {
		c := s.cols[name]
		for _, x := range c.Coords() {
			obs, want := c.At(x)
			r.AddKeyed(fmt.Sprintf("%s@%g", name, x),
				Str(name), Float(x, "%g"), Mean(obs, want, "%.4f"), Std(obs, want, "%.4f"))
		}
	}
	return r
}
