package analysis

import (
	"fmt"

	"rfclos/internal/core"
	"rfclos/internal/engine"
	"rfclos/internal/graph"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simdirect"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// StructureOptions configures the topological-metrics comparison.
type StructureOptions struct {
	// Target terminal count for sizing each topology (diameter-4 rules,
	// same as Table 3). Default 1024.
	Target int
	// PairSamples is how many random leaf pairs to sample for distance
	// and path-diversity statistics. Default 200.
	PairSamples int
	Seed        uint64
}

// structureStream derives the experiment's generator from the root seed;
// the label keeps it disjoint from every other experiment's streams.
func structureStream(seed uint64) *rng.Rand {
	if seed == 0 {
		seed = 1
	}
	return rng.At(seed, rng.StringCoord("structure"))
}

// Structure compares the diameter-4 networks on the structural metrics the
// paper discusses outside the big exhibits: exact/sampled diameter, mean
// leaf distance, empirical bisection (heuristic upper bound) against the
// §4.2 Bollobás-style lower bounds, and path diversity (mean leaf-to-leaf
// edge connectivity), which §7 ties to fault tolerance.
func Structure(opts StructureOptions) (*Report, error) {
	if opts.Target <= 0 {
		opts.Target = 1024
	}
	if opts.PairSamples <= 0 {
		opts.PairSamples = 200
	}
	r := structureStream(opts.Seed)
	rep := &Report{
		Title: fmt.Sprintf("Structural comparison at diameter 4, T ≈ %d", opts.Target),
		Notes: []string{
			"sw-bisection = heuristic min cut over equal halves of *switches* (upper bound)",
			"§4.2 bound = the paper's Bollobás-style lower bound on the *terminal-halving* cut;",
			"  the two measure different partitions (only for the RRN are they directly comparable)",
			"path diversity = mean max edge-disjoint leaf-to-leaf paths over sampled pairs",
		},
		Header: []string{"topology", "radix", "terminals", "leaf diameter", "mean leaf dist", "path diversity", "sw-bisection", "§4.2 bound"},
	}

	addClos := func(name string, c *topology.Clos, radix int, lb float64) {
		g := c.SwitchGraph()
		n1 := c.LevelSize(1)
		diam, mean := leafDistanceStats(c, g, opts.PairSamples, r)
		div := pathDiversity(g, n1, opts.PairSamples/4, r)
		ub := g.BisectionUpperBound(3, r)
		lbs := "-"
		if lb > 0 {
			lbs = fmt.Sprintf("%.0f", lb)
		}
		rep.AddKeyed(name, Str(name), Int(radix), Int(c.Terminals()), Int(diam),
			Float(mean, "%.2f"), Float(div, "%.2f"), Int(ub), Str(lbs))
	}

	cftR := cftRadixFor(opts.Target, 3)
	cft, err := topology.NewCFT(cftR, 3)
	if err != nil {
		return nil, err
	}
	addClos("CFT", cft, cftR, 0)

	p := rfcParamsFor(opts.Target, 3)
	rfc, _, _, err := core.GenerateRoutable(p, 50, r)
	if err != nil {
		return nil, err
	}
	addClos("RFC", rfc, p.Radix, core.BisectionLowerBoundRFC(p.Leaves, p.Radix, p.Levels))

	if q, ok := oftOrderFor(opts.Target, 3); ok {
		oft, err := topology.NewOFT(q, 3)
		if err != nil {
			return nil, err
		}
		addClos("OFT", oft, 2*(q+1), 0)
	}

	spec := rrnSpecFor(opts.Target, 4)
	rrn, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch, r)
	if err != nil {
		return nil, err
	}
	g := rrn.G
	diam := g.DiameterSampled(8, r)
	mean := g.AverageDistance(minInt(g.N(), 50), r)
	div := pathDiversity(g, g.N(), opts.PairSamples/4, r)
	ub := g.BisectionUpperBound(3, r)
	rep.AddKeyed("RRN", Str("RRN"), Int(spec.Radix()), Int(rrn.Terminals()), Int(diam),
		Float(mean, "%.2f"), Float(div, "%.2f"), Int(ub),
		Float(core.BisectionLowerBoundRRN(g.N(), spec.Degree), "%.0f"))
	// Expander certificate for the random baseline (§2/§4.2): |λ₂| vs the
	// Ramanujan bound 2√(d−1).
	lambda2 := g.SecondEigenvalue(300, r)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"RRN spectral check: |λ₂| = %.3f vs Ramanujan bound %.3f (degree %d)",
		lambda2, graph.RamanujanBound(spec.Degree), spec.Degree))
	return rep, nil
}

// leafDistanceStats samples leaf pairs and returns the max and mean
// switch-graph distance between leaves.
func leafDistanceStats(c *topology.Clos, g *graph.Graph, samples int, r *rng.Rand) (int, float64) {
	n1 := c.LevelSize(1)
	scratch := make([]int32, g.N())
	maxD, sum, count := 0, 0.0, 0
	// BFS from a handful of random leaves, read distances to all leaves.
	sources := minInt(n1, maxInt(4, samples/8))
	for i := 0; i < sources; i++ {
		src := c.SwitchID(1, r.Intn(n1))
		dist := g.BFS(int(src), scratch)
		for leaf := 0; leaf < n1; leaf++ {
			d := int(dist[c.SwitchID(1, leaf)])
			if d < 0 {
				continue
			}
			if d > maxD {
				maxD = d
			}
			if int32(leaf) != src {
				sum += float64(d)
				count++
			}
		}
	}
	if count == 0 {
		return maxD, 0
	}
	return maxD, sum / float64(count)
}

// pathDiversity samples vertex pairs among the first n1 vertices (the
// leaves for a Clos, everything for an RRN) and averages their edge
// connectivity.
func pathDiversity(g *graph.Graph, n1, samples int, r *rng.Rand) float64 {
	if samples <= 0 {
		samples = 20
	}
	sum, count := 0.0, 0
	for i := 0; i < samples; i++ {
		a, b := r.Intn(n1), r.Intn(n1)
		if a == b {
			continue
		}
		sum += float64(g.EdgeConnectivity(a, b))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AdversarialOptions configures the adversarial-permutation experiment.
type AdversarialOptions struct {
	Scale Scale
	Reps  int
	Sim   simnet.Config
	// Workers sizes the worker pool the (network × rep) jobs fan out on;
	// 0 means one per CPU. The report is identical for any worker count.
	Workers int
	Seed    uint64
	// Shard restricts execution to the (network × rep) jobs this process
	// owns; partial reports merge byte-identically (see engine.Shard).
	Shard engine.Shard
}

// Adversarial measures the §4.2/§3 claim that RFCs route adversarial
// permutations at much better than 50% of full rate without Valiant
// randomization: it drives the equal-resources CFT and RFC with the shift
// permutation (every packet crosses the bisection) at full offered load and
// reports accepted throughput next to the normalized-bisection prediction.
// An equal-T RRN row (minimal routing, hop-indexed VCs, on the same unified
// engine) extends the comparison to the random baseline.
func Adversarial(opts AdversarialOptions) (*Report, error) {
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	sc := Scenarios(opts.Scale)[0]
	cft, err := sc.CFT.Build()
	if err != nil {
		return nil, err
	}
	rfc, rud, err := buildRoutableRFC(sc.RFC, rng.At(opts.Seed, rng.StringCoord("adversarial/topology/RFC")))
	if err != nil {
		return nil, err
	}
	spec := rrnSpecFor(sc.RFC.Terminals(), 4)
	rrn, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch,
		rng.At(opts.Seed, rng.StringCoord("adversarial/topology/RRN")))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title: fmt.Sprintf("Adversarial shift permutation at full load (%s equal-resources scenario)", opts.Scale),
		Notes: []string{
			"shift by T/2: every packet crosses the bisection",
			fmt.Sprintf("§4.2 normalized bisection prediction for this RFC: %.2f",
				core.NormalizedBisectionRFC(sc.RFC.Leaves, sc.RFC.Radix, sc.RFC.Levels)),
			"a dragonfly with Valiant routing would cap at 0.50 (§3); simulated values include head-of-line losses",
			"RRN: equal-T random regular network, minimal routing with 16 hop-indexed VCs",
		},
		Header: []string{"network", "accepted", "latency"},
	}
	rows := []struct {
		name string
		c    *topology.Clos
		ud   *routing.UpDown
		rrn  *topology.RRN
	}{
		{fmt.Sprintf("CFT-R%d", sc.CFT.Radix), cft, routing.New(cft), nil},
		{fmt.Sprintf("RFC-R%d", sc.RFC.Radix), rfc, rud, nil},
		{fmt.Sprintf("RRN-R%d", spec.Radix()), nil, nil, rrn},
	}
	type outcome struct{ acc, lat float64 }
	results, err := engine.RunShard(len(rows)*opts.Reps, opts.Workers, opts.Shard, func(i int) (outcome, error) {
		row, repIdx := rows[i/opts.Reps], i%opts.Reps
		stream := rng.At(opts.Seed, rng.StringCoord("adversarial/"+row.name), uint64(repIdx))
		if row.rrn != nil {
			cfg := simdirect.Config{
				VCs:            16, // covers any small-network diameter
				BufferPackets:  opts.Sim.BufferPackets,
				PacketLength:   opts.Sim.PacketLength,
				LinkLatency:    opts.Sim.LinkLatency,
				WarmupCycles:   opts.Sim.WarmupCycles,
				MeasureCycles:  opts.Sim.MeasureCycles,
				SourceQueueCap: opts.Sim.SourceQueueCap,
				Seed:           stream.Uint64(),
			}
			sim, err := simdirect.New(row.rrn, traffic.NewShift(row.rrn.Terminals(), 0), cfg)
			if err != nil {
				return outcome{}, err
			}
			res := sim.Run(1.0)
			return outcome{res.AcceptedLoad, res.AvgLatency}, nil
		}
		cfg := opts.Sim
		cfg.Seed = stream.Uint64()
		res := simnet.New(row.c, row.ud, traffic.NewShift(row.c.Terminals(), 0), cfg).Run(1.0)
		return outcome{res.AcceptedLoad, res.AvgLatency}, nil
	})
	if err != nil {
		return nil, err
	}
	for ri, row := range rows {
		var accObs, latObs []metrics.Obs
		for r := 0; r < opts.Reps; r++ {
			i := ri*opts.Reps + r
			if opts.Shard.Owns(i) {
				accObs = append(accObs, metrics.Obs{Job: i, V: results[i].acc})
				latObs = append(latObs, metrics.Obs{Job: i, V: results[i].lat})
			}
		}
		rep.AddKeyed(row.name, Str(row.name),
			Mean(accObs, opts.Reps, "%.4f"), Mean(latObs, opts.Reps, "%.1f"))
	}
	return rep, nil
}
