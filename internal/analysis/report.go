// Package analysis implements one runner per exhibit of the paper's
// evaluation — Figures 5 through 12 and Table 3, plus the §5 cost
// comparisons and a Theorem 4.2 Monte-Carlo check. Each runner returns a
// Report whose rows mirror what the paper plots or tabulates, at either the
// paper's exact parameters or a laptop-friendly scaled configuration that
// preserves the comparison's shape (see DESIGN.md).
package analysis

import (
	"fmt"
	"strings"

	"rfclos/internal/engine"
	"rfclos/internal/metrics"
)

// CellKind discriminates the typed cell variants.
type CellKind uint8

const (
	// CellString is opaque pre-rendered text.
	CellString CellKind = iota
	// CellInt renders an integer through Fmt (default %d).
	CellInt
	// CellFloat renders a float through Fmt (default %g).
	CellFloat
	// CellMean renders the mean of job-indexed observations: the mergeable
	// aggregate behind sharded sweeps. The rendered value is
	// mean(Obs)/Div*Mul (Div and Mul applied only when non-zero), wrapped in
	// Prefix/Suffix.
	CellMean
	// CellStd renders the sample standard deviation of the observations,
	// with the same Div/Mul/Prefix/Suffix treatment as CellMean.
	CellStd
)

// Cell is one typed table cell. Static kinds (string/int/float) must agree
// across shards; aggregate kinds (mean/std) carry the observations this
// process produced plus the count the full grid will produce, and merge by
// taking the union of observations.
type Cell struct {
	Kind CellKind
	// S is the text of a CellString.
	S string
	// I is the value of a CellInt.
	I int64
	// F is the value of a CellFloat.
	F float64
	// Fmt is the fmt verb for Int/Float/Mean/Std values.
	Fmt string
	// Prefix and Suffix wrap the formatted aggregate value ("52.6" ->
	// "52.6% (R=12)").
	Prefix, Suffix string
	// Div and Mul transform the aggregate statistic before formatting:
	// v = stat(obs); if Div != 0 { v /= Div }; if Mul != 0 { v *= Mul }.
	// The order (divide, then multiply) is part of the byte-compatibility
	// contract with the pre-registry report code.
	Div, Mul float64
	// Want is the observation count the full (unsharded) grid produces for
	// this cell; merged reports are complete when len(Obs) == Want.
	Want int
	// Obs are the job-indexed observations recorded by this process.
	Obs []metrics.Obs
}

// Str returns a static text cell.
func Str(s string) Cell { return Cell{Kind: CellString, S: s} }

// Int returns an integer cell rendered with %d.
func Int(v int) Cell { return Cell{Kind: CellInt, I: int64(v)} }

// Float returns a float cell rendered with the given fmt verb.
func Float(v float64, format string) Cell { return Cell{Kind: CellFloat, F: v, Fmt: format} }

// Mean returns an aggregate cell rendering the observation mean.
func Mean(obs []metrics.Obs, want int, format string) Cell {
	return Cell{Kind: CellMean, Obs: obs, Want: want, Fmt: format}
}

// Std returns an aggregate cell rendering the observation sample stddev.
func Std(obs []metrics.Obs, want int, format string) Cell {
	return Cell{Kind: CellStd, Obs: obs, Want: want, Fmt: format}
}

func (c *Cell) format() string {
	if c.Fmt != "" {
		return c.Fmt
	}
	if c.Kind == CellInt {
		return "%d"
	}
	return "%g"
}

// Value returns the cell's numeric value: the stored number for int/float
// cells, the transformed statistic for aggregates, 0 for strings.
func (c *Cell) Value() float64 {
	switch c.Kind {
	case CellInt:
		return float64(c.I)
	case CellFloat:
		return c.F
	case CellMean, CellStd:
		s := metrics.SummarizeObs(c.Obs)
		v := s.Mean()
		if c.Kind == CellStd {
			v = s.StdDev()
		}
		if c.Div != 0 {
			v /= c.Div
		}
		if c.Mul != 0 {
			v *= c.Mul
		}
		return v
	}
	return 0
}

// Text renders the cell exactly as Format and CSV print it.
func (c *Cell) Text() string {
	switch c.Kind {
	case CellString:
		return c.S
	case CellInt:
		return fmt.Sprintf(c.format(), c.I)
	case CellFloat:
		return fmt.Sprintf(c.format(), c.F)
	case CellMean, CellStd:
		return c.Prefix + fmt.Sprintf(c.format(), c.Value()) + c.Suffix
	}
	return ""
}

// isAggregate reports whether the cell merges by observation union.
func (c *Cell) isAggregate() bool { return c.Kind == CellMean || c.Kind == CellStd }

// Row is one report row: a coordinate key identifying the row across shards
// plus its typed cells.
type Row struct {
	Key   string
	Cells []Cell
}

// Report is an experiment result: a title, column headers and typed rows.
// Exhibit and Shard are provenance for the JSON form; they do not print.
type Report struct {
	Exhibit string
	Shard   engine.Shard
	Title   string
	Notes   []string
	Header  []string
	Rows    []Row
}

// AddRow appends a row keyed by its position ("#0", "#1", ...). Exhibits
// whose rows carry natural sweep coordinates should use AddKeyed instead.
func (r *Report) AddRow(cells ...Cell) {
	r.AddKeyed(fmt.Sprintf("#%d", len(r.Rows)), cells...)
}

// AddKeyed appends a row under an explicit coordinate key. Keys must be
// unique within a report and identical across shards of the same run.
func (r *Report) AddKeyed(key string, cells ...Cell) {
	r.Rows = append(r.Rows, Row{Key: key, Cells: cells})
}

// Strings renders every row's cells to text, the shape tests and plotting
// glue consume.
func (r *Report) Strings() [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row.Cells))
		for j := range row.Cells {
			cells[j] = row.Cells[j].Text()
		}
		out[i] = cells
	}
	return out
}

// Format renders the report as aligned text. Columns are sized over the
// header and every row, including columns beyond the header's width.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	rows := r.Strings()
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for len(row) > len(widths) {
			widths = append(widths, 0)
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the report as comma-separated values (header row first),
// ready for any plotting tool. Cells containing commas or quotes are
// quoted per RFC 4180.
func (r *Report) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Header)
	for _, row := range r.Strings() {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// MissingObs returns how many observations the report still lacks relative
// to its aggregate cells' Want counts: 0 means the report is complete (all
// shards merged in).
func (r *Report) MissingObs() int {
	missing := 0
	for _, row := range r.Rows {
		for i := range row.Cells {
			c := &row.Cells[i]
			if c.isAggregate() && len(c.Obs) < c.Want {
				missing += c.Want - len(c.Obs)
			}
		}
	}
	return missing
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func ftoa(v float64) string { return fmt.Sprintf("%.4g", v) }
