// Package analysis implements one runner per exhibit of the paper's
// evaluation — Figures 5 through 12 and Table 3, plus the §5 cost
// comparisons and a Theorem 4.2 Monte-Carlo check. Each runner returns a
// Report whose rows mirror what the paper plots or tabulates, at either the
// paper's exact parameters or a laptop-friendly scaled configuration that
// preserves the comparison's shape (see DESIGN.md).
package analysis

import (
	"fmt"
	"strings"

	"rfclos/internal/metrics"
)

// Report is a rendered experiment result: a title, column headers and rows.
type Report struct {
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Format renders the report as aligned text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CSV renders the report as comma-separated values (header row first),
// ready for any plotting tool. Cells containing commas or quotes are
// quoted per RFC 4180.
func (r *Report) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Header)
	for _, row := range r.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// seriesReport converts labelled series into a single report with columns
// (series, x, y, yerr).
func seriesReport(title string, notes []string, xName, yName string, series []metrics.Series) *Report {
	r := &Report{
		Title:  title,
		Notes:  notes,
		Header: []string{"series", xName, yName, "stddev"},
	}
	for _, s := range series {
		for _, p := range s.Points {
			r.AddRow(s.Name, fmt.Sprintf("%g", p.X), fmt.Sprintf("%.4f", p.Y), fmt.Sprintf("%.4f", p.YErr))
		}
	}
	return r
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func ftoa(v float64) string { return fmt.Sprintf("%.4g", v) }
