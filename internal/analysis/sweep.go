package analysis

import (
	"fmt"

	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

func newSeeded(seed uint64) *rng.Rand {
	if seed == 0 {
		seed = 1
	}
	return rng.New(seed)
}

// SimOptions controls the simulation-based experiments (Figures 8-10, 12).
type SimOptions struct {
	// Loads is the offered-load sweep (phits/node/cycle).
	Loads []float64
	// Reps is the number of independent repetitions averaged per point
	// (the paper averages at least 5).
	Reps int
	// Sim carries the Table 2 parameters; zero fields take defaults.
	Sim simnet.Config
	// Patterns restricts the traffic patterns (default: all three).
	Patterns []string
	// Seed drives every random choice (topology generation aside).
	Seed uint64
	// Progress, when non-nil, receives one line per completed point.
	Progress func(string)
}

func (o SimOptions) withDefaults() SimOptions {
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.Patterns) == 0 {
		o.Patterns = traffic.Names()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// netUnderTest couples a named network with its routing state.
type netUnderTest struct {
	name string
	c    *topology.Clos
	ud   *routing.UpDown
}

// LoadSweep measures latency and accepted throughput across offered loads
// for one network and one traffic pattern. It returns one latency series
// and one throughput series, each point averaged over opts.Reps runs with
// distinct seeds (and distinct pattern instances for the fixed patterns).
func LoadSweep(c *topology.Clos, ud *routing.UpDown, netName, patName string, opts SimOptions) (lat, thr metrics.Series, err error) {
	opts = opts.withDefaults()
	lat = metrics.Series{Name: netName + "/" + patName + "/latency"}
	thr = metrics.Series{Name: netName + "/" + patName + "/throughput"}
	master := newSeeded(opts.Seed)
	for _, load := range opts.Loads {
		var latSum, thrSum metrics.Summary
		for rep := 0; rep < opts.Reps; rep++ {
			stream := master.Split()
			pat, perr := traffic.New(patName, c.Terminals(), stream)
			if perr != nil {
				return lat, thr, perr
			}
			cfg := opts.Sim
			cfg.Seed = stream.Uint64()
			res := simnet.New(c, ud, pat, cfg).Run(load)
			latSum.Add(res.AvgLatency)
			thrSum.Add(res.AcceptedLoad)
		}
		lat.Add(load, latSum.Mean(), latSum.StdDev())
		thr.Add(load, thrSum.Mean(), thrSum.StdDev())
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%s/%s load=%.2f accepted=%.3f latency=%.1f",
				netName, patName, load, thrSum.Mean(), latSum.Mean()))
		}
	}
	return lat, thr, nil
}

// ScenarioSweep runs the full Figure 8/9/10 experiment for one scenario:
// every network in the scenario × every traffic pattern × the load sweep.
func ScenarioSweep(sc Scenario, opts SimOptions) (*Report, error) {
	opts = opts.withDefaults()
	master := newSeeded(opts.Seed + 1000)

	var nets []netUnderTest
	cft, err := sc.CFT.Build()
	if err != nil {
		return nil, err
	}
	nets = append(nets, netUnderTest{
		fmt.Sprintf("CFT-%dL-R%d", sc.CFT.Levels, sc.CFT.Radix), cft, routing.New(cft)})
	rfc, rud, err := buildRoutableRFC(sc.RFC, master)
	if err != nil {
		return nil, err
	}
	nets = append(nets, netUnderTest{
		fmt.Sprintf("RFC-%dL-R%d", sc.RFC.Levels, sc.RFC.Radix), rfc, rud})
	if sc.AltRFC != nil {
		alt, aud, err := buildRoutableRFC(*sc.AltRFC, master)
		if err != nil {
			return nil, err
		}
		nets = append(nets, netUnderTest{
			fmt.Sprintf("RFC-%dL-R%d", sc.AltRFC.Levels, sc.AltRFC.Radix), alt, aud})
	}

	var series []metrics.Series
	for _, n := range nets {
		for _, pat := range opts.Patterns {
			lat, thr, err := LoadSweep(n.c, n.ud, n.name, pat, opts)
			if err != nil {
				return nil, err
			}
			series = append(series, thr, lat)
		}
	}
	notes := []string{
		fmt.Sprintf("scenario %s: CFT T=%d, RFC T=%d", sc.Name, sc.CFT.Terminals(), sc.RFC.Terminals()),
		"throughput in accepted phits/node/cycle; latency in cycles (generation to tail delivery)",
	}
	return seriesReport("Figures 8-10: latency & throughput, scenario "+sc.Name,
		notes, "offered load", "value", series), nil
}
