package analysis

import (
	"fmt"
	"math"

	"rfclos/internal/engine"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// SimOptions controls the simulation-based experiments (Figures 8-10, 12).
type SimOptions struct {
	// Loads is the offered-load sweep (phits/node/cycle).
	Loads []float64
	// Reps is the number of independent repetitions averaged per point
	// (the paper averages at least 5).
	Reps int
	// Sim carries the Table 2 parameters; zero fields take defaults.
	Sim simnet.Config
	// Patterns restricts the traffic patterns (default: all three).
	Patterns []string
	// Seed drives every random choice. Each simulation job derives its
	// stream from its coordinates — rng.At(Seed, StringCoord(network),
	// StringCoord(pattern), Float64bits(load), rep) — so reports are
	// byte-identical for any Workers setting.
	Seed uint64
	// Workers is the worker-pool size for the (load × rep × pattern ×
	// network) job grid; 0 means one worker per CPU (engine.Workers).
	Workers int
	// Shard restricts execution to the jobs this process owns (see
	// engine.Shard); the zero value runs the whole grid. Sharded runs emit
	// partial aggregates that MergeReports combines byte-identically.
	Shard engine.Shard
	// Progress, when non-nil, receives one line per completed job. It is
	// called from worker goroutines, so it must be safe for concurrent use
	// when Workers != 1 (engine.Progress builds a safe, counting sink).
	Progress func(string)
}

func (o SimOptions) withDefaults() SimOptions {
	if len(o.Loads) == 0 {
		o.Loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.Patterns) == 0 {
		o.Patterns = traffic.Names()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// netUnderTest couples a named network with its routing state.
type netUnderTest struct {
	name string
	c    *topology.Clos
	ud   *routing.UpDown
}

// simJob is one (network, pattern, load, repetition) simulation point of a
// sweep grid. Jobs are independent: they read the shared topology and
// routing state (immutable during a sweep) and derive all randomness from
// their own coordinates, so the engine may run them in any order on any
// number of workers.
type simJob struct {
	c       *topology.Clos
	ud      *routing.UpDown
	net     string
	pattern string
	load    float64
	rep     int
}

// simPoint is the measured outcome of one simJob.
type simPoint struct{ lat, thr float64 }

// stream returns the job's deterministic RNG, a pure function of the root
// seed and the job coordinates (network name, pattern name, load, rep).
// Using names rather than positional indices keeps a network/pattern's
// streams stable under sweep-grid reshuffles, and makes a stand-alone
// LoadSweep reproduce the corresponding slice of a ScenarioSweep.
func (j simJob) stream(seed uint64) *rng.Rand {
	return rng.At(seed, rng.StringCoord(j.net), rng.StringCoord(j.pattern),
		math.Float64bits(j.load), uint64(j.rep))
}

// run executes the simulation for one job.
func (j simJob) run(opts SimOptions) (simPoint, error) {
	stream := j.stream(opts.Seed)
	pat, err := traffic.New(j.pattern, j.c.Terminals(), stream)
	if err != nil {
		return simPoint{}, err
	}
	cfg := opts.Sim
	cfg.Seed = stream.Uint64()
	res := simnet.New(j.c, j.ud, pat, cfg).Run(j.load)
	if opts.Progress != nil {
		opts.Progress(fmt.Sprintf("%s/%s load=%.2f rep=%d accepted=%.3f latency=%.1f",
			j.net, j.pattern, j.load, j.rep, res.AcceptedLoad, res.AvgLatency))
	}
	return simPoint{lat: res.AvgLatency, thr: res.AcceptedLoad}, nil
}

// runSimJobs fans the owned slice of a job grid out over the worker pool
// and returns per-job results in job order (zero-valued where another shard
// owns the job).
func runSimJobs(jobs []simJob, opts SimOptions) ([]simPoint, error) {
	return engine.RunShard(len(jobs), opts.Workers, opts.Shard, func(i int) (simPoint, error) {
		return jobs[i].run(opts)
	})
}

// loadRepJobs builds the (load × rep) grid for one network and pattern, in
// the deterministic job order loads-major, reps-minor.
func loadRepJobs(n netUnderTest, pattern string, opts SimOptions) []simJob {
	jobs := make([]simJob, 0, len(opts.Loads)*opts.Reps)
	for _, load := range opts.Loads {
		for rep := 0; rep < opts.Reps; rep++ {
			jobs = append(jobs, simJob{c: n.c, ud: n.ud, net: n.name, pattern: pattern, load: load, rep: rep})
		}
	}
	return jobs
}

// LoadSweep measures latency and accepted throughput across offered loads
// for one network and one traffic pattern. It returns one latency series
// and one throughput series, each point averaged over opts.Reps runs with
// distinct coordinate-derived seeds (and distinct pattern instances for the
// fixed patterns). The (load × rep) grid runs on opts.Workers workers; the
// returned series are identical for any worker count.
func LoadSweep(c *topology.Clos, ud *routing.UpDown, netName, patName string, opts SimOptions) (lat, thr metrics.Series, err error) {
	opts = opts.withDefaults()
	jobs := loadRepJobs(netUnderTest{netName, c, ud}, patName, opts)
	points, err := runSimJobs(jobs, opts)
	if err != nil {
		return metrics.Series{}, metrics.Series{}, err
	}
	var latC, thrC metrics.Collector
	for i, p := range points {
		latC.Add(jobs[i].load, p.lat)
		thrC.Add(jobs[i].load, p.thr)
	}
	return latC.Series(netName + "/" + patName + "/latency"),
		thrC.Series(netName + "/" + patName + "/throughput"), nil
}

// buildScenarioNets constructs a scenario's networks with per-network
// coordinate-derived generation streams.
func buildScenarioNets(sc Scenario, seed uint64) ([]netUnderTest, error) {
	cft, err := sc.CFT.Build()
	if err != nil {
		return nil, err
	}
	nets := []netUnderTest{{
		fmt.Sprintf("CFT-%dL-R%d", sc.CFT.Levels, sc.CFT.Radix), cft, routing.New(cft)}}
	rfc, rud, err := buildRoutableRFC(sc.RFC, rng.At(seed, rng.StringCoord("scenario/topology/RFC")))
	if err != nil {
		return nil, err
	}
	nets = append(nets, netUnderTest{
		fmt.Sprintf("RFC-%dL-R%d", sc.RFC.Levels, sc.RFC.Radix), rfc, rud})
	if sc.AltRFC != nil {
		alt, aud, err := buildRoutableRFC(*sc.AltRFC, rng.At(seed, rng.StringCoord("scenario/topology/AltRFC")))
		if err != nil {
			return nil, err
		}
		nets = append(nets, netUnderTest{
			fmt.Sprintf("RFC-%dL-R%d", sc.AltRFC.Levels, sc.AltRFC.Radix), alt, aud})
	}
	return nets, nil
}

// ScenarioSweep runs the full Figure 8/9/10 experiment for one scenario:
// every network in the scenario × every traffic pattern × the load sweep,
// flattened into one (network × pattern × load × rep) job grid on the
// worker pool. Per-job seeds are derived from the job coordinates, so the
// report is byte-identical for any opts.Workers.
func ScenarioSweep(sc Scenario, opts SimOptions) (*Report, error) {
	opts = opts.withDefaults()
	nets, err := buildScenarioNets(sc, opts.Seed)
	if err != nil {
		return nil, err
	}

	var jobs []simJob
	for _, n := range nets {
		for _, pat := range opts.Patterns {
			jobs = append(jobs, loadRepJobs(n, pat, opts)...)
		}
	}
	points, err := runSimJobs(jobs, opts)
	if err != nil {
		return nil, err
	}

	// Merge per-job results into one latency and one throughput collector
	// per (network, pattern) group. Jobs are grid-ordered, so group g owns
	// the contiguous block of len(Loads)*Reps jobs starting at g*per. Every
	// job is Expected (fixing row structure and completeness counts) but
	// only jobs this shard owns contribute observations.
	per := len(opts.Loads) * opts.Reps
	groups := len(nets) * len(opts.Patterns)
	var sset seriesSet
	type groupCols struct{ thr, lat *metrics.JobCollector }
	cols := make([]groupCols, groups)
	for g := 0; g < groups; g++ {
		name := jobs[g*per].net + "/" + jobs[g*per].pattern
		cols[g] = groupCols{thr: sset.col(name + "/throughput"), lat: sset.col(name + "/latency")}
	}
	for i := range jobs {
		g := i / per
		cols[g].thr.Expect(jobs[i].load)
		cols[g].lat.Expect(jobs[i].load)
		if opts.Shard.Owns(i) {
			cols[g].thr.Observe(jobs[i].load, i, points[i].thr)
			cols[g].lat.Observe(jobs[i].load, i, points[i].lat)
		}
	}
	notes := []string{
		fmt.Sprintf("scenario %s: CFT T=%d, RFC T=%d", sc.Name, sc.CFT.Terminals(), sc.RFC.Terminals()),
		"throughput in accepted phits/node/cycle; latency in cycles (generation to tail delivery)",
	}
	return sset.report("Figures 8-10: latency & throughput, scenario "+sc.Name,
		notes, "offered load", "value"), nil
}
