package analysis

import (
	"fmt"

	"rfclos/internal/engine"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/simnet"
	"rfclos/internal/traffic"
)

// AblationOptions configures the design-choice ablations.
type AblationOptions struct {
	Scale Scale
	Load  float64 // offered load, default 0.9 (near saturation, where the knobs matter)
	Reps  int
	Sim   simnet.Config
	// Workers sizes the worker pool the (knob × value × rep) grid fans out
	// on; 0 means one per CPU. The report is identical for any worker count.
	Workers int
	Seed    uint64
	// Shard restricts execution to the grid jobs this process owns;
	// partial reports merge byte-identically (see engine.Shard).
	Shard engine.Shard
}

// ablationSpec is one knob setting of the ablation grid.
type ablationSpec struct {
	knob   string
	value  int
	mutate func(*simnet.Config)
}

// Ablations quantifies the simulator/routing design choices DESIGN.md calls
// out, on the equal-resources RFC:
//
//   - virtual-channel count (Table 2 uses 4): HoL-blocking relief;
//   - per-VC buffer depth (Table 2 uses 4 packets);
//   - request-refresh period (1 = INSEE's re-randomized request per cycle;
//     larger trades adaptivity for simulation speed).
//
// Each row reports accepted load and latency at the configured offered
// load under uniform traffic. The whole (knob, value, rep) grid runs as
// independent jobs on the worker pool, each drawing its stream from its own
// coordinates, so the report is byte-identical for any opts.Workers.
func Ablations(opts AblationOptions) (*Report, error) {
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	if opts.Load <= 0 {
		opts.Load = 0.9
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	sc := Scenarios(opts.Scale)[0]
	rfc, ud, err := buildRoutableRFC(sc.RFC, rng.At(opts.Seed, rng.StringCoord("ablation/topology/RFC")))
	if err != nil {
		return nil, err
	}

	var specs []ablationSpec
	for _, vcs := range []int{1, 2, 4, 8} {
		vcs := vcs
		specs = append(specs, ablationSpec{"virtual-channels", vcs, func(c *simnet.Config) { c.VCs = vcs }})
	}
	for _, buf := range []int{1, 2, 4, 8} {
		buf := buf
		specs = append(specs, ablationSpec{"buffer-packets", buf, func(c *simnet.Config) { c.BufferPackets = buf }})
	}
	for _, rr := range []int{1, 4, 16} {
		rr := rr
		specs = append(specs, ablationSpec{"request-refresh", rr, func(c *simnet.Config) { c.RequestRefresh = rr }})
	}
	// Routing policy: 0 = random per-request (Table 2), 1 = deterministic
	// D-mod-K flow hashing.
	specs = append(specs,
		ablationSpec{"hash-routing", 0, func(c *simnet.Config) { c.HashRouting = false }},
		ablationSpec{"hash-routing", 1, func(c *simnet.Config) { c.HashRouting = true }})
	// Reception model: 0 = 1 phit/cycle NIC, 1 = infinite sink.
	specs = append(specs,
		ablationSpec{"infinite-sink", 0, func(c *simnet.Config) { c.InfiniteSink = false }},
		ablationSpec{"infinite-sink", 1, func(c *simnet.Config) { c.InfiniteSink = true }})

	type outcome struct{ acc, lat float64 }
	results, err := engine.RunShard(len(specs)*opts.Reps, opts.Workers, opts.Shard, func(i int) (outcome, error) {
		spec, rep := specs[i/opts.Reps], i%opts.Reps
		stream := rng.At(opts.Seed, rng.StringCoord("ablation/"+spec.knob), uint64(spec.value), uint64(rep))
		cfg := opts.Sim
		spec.mutate(&cfg)
		cfg.Seed = stream.Uint64()
		res := simnet.New(rfc, ud, traffic.NewUniform(rfc.Terminals()), cfg).Run(opts.Load)
		return outcome{acc: res.AcceptedLoad, lat: res.AvgLatency}, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title: fmt.Sprintf("Ablations: simulator design knobs (%s equal-resources RFC, uniform @ %.2f)",
			opts.Scale, opts.Load),
		Header: []string{"knob", "value", "accepted", "latency"},
	}
	for si, spec := range specs {
		var accObs, latObs []metrics.Obs
		for r := 0; r < opts.Reps; r++ {
			i := si*opts.Reps + r
			if opts.Shard.Owns(i) {
				accObs = append(accObs, metrics.Obs{Job: i, V: results[i].acc})
				latObs = append(latObs, metrics.Obs{Job: i, V: results[i].lat})
			}
		}
		rep.AddKeyed(fmt.Sprintf("%s=%d", spec.knob, spec.value), Str(spec.knob), Int(spec.value),
			Mean(accObs, opts.Reps, "%.4f"), Mean(latObs, opts.Reps, "%.1f"))
	}
	return rep, nil
}
