package analysis

import (
	"fmt"

	"rfclos/internal/metrics"
	"rfclos/internal/simnet"
	"rfclos/internal/traffic"
)

// AblationOptions configures the design-choice ablations.
type AblationOptions struct {
	Scale Scale
	Load  float64 // offered load, default 0.9 (near saturation, where the knobs matter)
	Reps  int
	Sim   simnet.Config
	Seed  uint64
}

// Ablations quantifies the simulator/routing design choices DESIGN.md calls
// out, on the equal-resources RFC:
//
//   - virtual-channel count (Table 2 uses 4): HoL-blocking relief;
//   - per-VC buffer depth (Table 2 uses 4 packets);
//   - request-refresh period (1 = INSEE's re-randomized request per cycle;
//     larger trades adaptivity for simulation speed).
//
// Each row reports accepted load and latency at the configured offered
// load under uniform traffic.
func Ablations(opts AblationOptions) (*Report, error) {
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	if opts.Load <= 0 {
		opts.Load = 0.9
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	sc := Scenarios(opts.Scale)[0]
	master := newSeeded(opts.Seed + 77)
	rfc, ud, err := buildRoutableRFC(sc.RFC, master)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Title: fmt.Sprintf("Ablations: simulator design knobs (%s equal-resources RFC, uniform @ %.2f)",
			opts.Scale, opts.Load),
		Header: []string{"knob", "value", "accepted", "latency"},
	}
	run := func(knob string, value int, mutate func(*simnet.Config)) {
		var acc, lat metrics.Summary
		for i := 0; i < opts.Reps; i++ {
			stream := master.Split()
			cfg := opts.Sim
			mutate(&cfg)
			cfg.Seed = stream.Uint64()
			res := simnet.New(rfc, ud, traffic.NewUniform(rfc.Terminals()), cfg).Run(opts.Load)
			acc.Add(res.AcceptedLoad)
			lat.Add(res.AvgLatency)
		}
		rep.AddRow(knob, itoa(value), fmt.Sprintf("%.4f", acc.Mean()), fmt.Sprintf("%.1f", lat.Mean()))
	}
	for _, vcs := range []int{1, 2, 4, 8} {
		run("virtual-channels", vcs, func(c *simnet.Config) { c.VCs = vcs })
	}
	for _, buf := range []int{1, 2, 4, 8} {
		run("buffer-packets", buf, func(c *simnet.Config) { c.BufferPackets = buf })
	}
	for _, rr := range []int{1, 4, 16} {
		run("request-refresh", rr, func(c *simnet.Config) { c.RequestRefresh = rr })
	}
	// Routing policy: 0 = random per-request (Table 2), 1 = deterministic
	// D-mod-K flow hashing.
	run("hash-routing", 0, func(c *simnet.Config) { c.HashRouting = false })
	run("hash-routing", 1, func(c *simnet.Config) { c.HashRouting = true })
	// Reception model: 0 = 1 phit/cycle NIC, 1 = infinite sink.
	run("infinite-sink", 0, func(c *simnet.Config) { c.InfiniteSink = false })
	run("infinite-sink", 1, func(c *simnet.Config) { c.InfiniteSink = true })
	return rep, nil
}
