package analysis

import (
	"fmt"
	"math"

	"rfclos/internal/core"
	"rfclos/internal/engine"
	"rfclos/internal/gf"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/topology"
)

// Fig5Diameter reproduces Figure 5: for a fixed radix, the diameter each
// topology needs as the terminal count grows. For the step-function
// topologies (CFT, OFT) each row is the capacity of one level count; for
// the random topologies (RRN, RFC) each row is the maximum size before the
// diameter increases.
func Fig5Diameter(radix int) *Report {
	rep := &Report{
		Title: fmt.Sprintf("Figure 5: diameter evolution, radix %d", radix),
		Notes: []string{
			"each row: the largest terminal count the topology supports at that diameter",
			"RFC/RRN capacities from the Theorem 4.2 / 2NlnN thresholds; CFT/OFT from closed forms",
		},
		Header: []string{"topology", "diameter", "max terminals"},
	}
	for l := 2; l <= 5; l++ {
		d := 2 * (l - 1)
		rep.AddRow(Str("CFT"), Int(d), Int(cftTerminals(radix, l)))
	}
	// Largest prime power q with 2(q+1) <= radix.
	q := largestPrimePowerOrder(radix)
	for l := 2; l <= 4; l++ {
		d := 2 * (l - 1)
		if q > 0 {
			rep.AddRow(Str("OFT"), Int(d), Int(topology.OFTTerminals(q, l)))
		}
	}
	for l := 2; l <= 5; l++ {
		d := 2 * (l - 1)
		rep.AddRow(Str("RFC"), Int(d), Int(core.MaxTerminals(radix, l)))
	}
	for d := 2; d <= 8; d++ {
		// RRN at fixed radix: Δ = R·D/(D+1) network ports, Δ/D terminals.
		deg := int(float64(radix) * float64(d) / float64(d+1))
		tps := radix - deg
		if deg < 3 || tps < 1 {
			continue
		}
		n := core.RRNMaxSwitches(deg, d)
		rep.AddRow(Str("RRN"), Int(d), Int(n*tps))
	}
	return rep
}

func cftTerminals(radix, levels int) int {
	t := 2
	for i := 0; i < levels; i++ {
		t *= radix / 2
	}
	return t
}

func largestPrimePowerOrder(radix int) int {
	for q := radix/2 - 1; q >= 2; q-- {
		if gf.IsPrimePower(q) {
			return q
		}
	}
	return 0
}

// Fig6Scalability reproduces Figure 6: terminals versus switch radix for 2,
// 3 and 4 levels per topology.
func Fig6Scalability(radices []int) *Report {
	if len(radices) == 0 {
		radices = []int{8, 12, 16, 24, 36, 48, 64}
	}
	rep := &Report{
		Title:  "Figure 6: scalability (terminals vs radix, levels 2-4)",
		Header: []string{"topology", "levels", "radix", "terminals"},
	}
	for _, l := range []int{2, 3, 4} {
		for _, r := range radices {
			rep.AddRow(Str("CFT"), Int(l), Int(r), Int(cftTerminals(r, l)))
			rep.AddRow(Str("RFC"), Int(l), Int(r), Int(core.MaxTerminals(r, l)))
			if q := largestPrimePowerOrder(r); q > 0 {
				rep.AddRow(Str("OFT"), Int(l), Int(2*(q+1)), Int(topology.OFTTerminals(q, l)))
			}
			d := 2 * (l - 1)
			deg := int(float64(r) * float64(d) / float64(d+1))
			tps := r - deg
			if deg >= 3 && tps >= 1 {
				rep.AddRow(Str("RRN"), Int(l), Int(r), Int(core.RRNMaxSwitches(deg, d)*tps))
			}
		}
	}
	return rep
}

// Fig7Expandability reproduces Figure 7: total port count (the raw cost
// measure) versus terminal count as each topology expands, radix fixed.
// CFT and OFT are step functions (each level jump deploys a full new
// structure); RFC and RRN grow almost linearly.
func Fig7Expandability(radix int, maxTerminals int, points int) *Report {
	if points <= 1 {
		points = 40
	}
	if maxTerminals <= 0 {
		maxTerminals = core.MaxTerminals(radix, 3)
	}
	rep := &Report{
		Title: fmt.Sprintf("Figure 7: expandability, radix %d (total ports vs terminals)", radix),
		Notes: []string{
			"ports = 2*wires + terminals; CFT/OFT deploy whole levels (step cost), RFC/RRN grow smoothly",
		},
		Header: []string{"topology", "terminals", "total ports"},
	}
	q := largestPrimePowerOrder(radix)
	for i := 1; i <= points; i++ {
		t := maxTerminals * i / points
		if t < radix {
			continue
		}
		// CFT: smallest level count whose capacity holds t.
		for l := 2; l <= 6; l++ {
			if cftTerminals(radix, l) >= t {
				n1 := cftTerminals(radix, l) / (radix / 2)
				wires := (l - 1) * n1 * radix / 2
				rep.AddRow(Str("CFT"), Int(t), Int(2*wires+t))
				break
			}
		}
		// OFT: same stepping on its own capacities.
		if q > 0 {
			for l := 2; l <= 5; l++ {
				if topology.OFTTerminals(q, l) >= t {
					n := q*q + q + 1
					n1 := 2 * pow(n, l-1)
					wires := (l - 1) * n1 * (q + 1)
					rep.AddRow(Str("OFT"), Int(t), Int(2*wires+t))
					break
				}
			}
		}
		// RFC: minimum levels subject to the Theorem 4.2 threshold.
		for l := 2; l <= 6; l++ {
			if core.MaxTerminals(radix, l) >= t {
				p := core.ParamsForTerminals(radix, l, t)
				rep.AddRow(Str("RFC"), Int(t), Int(2*p.Wires()+t))
				break
			}
		}
		// RRN: fixed split Δ/terminals-per-switch, linear growth, stepping
		// only when the diameter bound forces a re-split.
		for d := 2; d <= 8; d++ {
			deg := int(float64(radix) * float64(d) / float64(d+1))
			tps := radix - deg
			if deg < 3 || tps < 1 {
				continue
			}
			if core.RRNMaxSwitches(deg, d)*tps >= t {
				n := (t + tps - 1) / tps
				rep.AddRow(Str("RRN"), Int(t), Int(n*deg+t))
				break
			}
		}
	}
	return rep
}

func pow(b, e int) int {
	v := 1
	for i := 0; i < e; i++ {
		v *= b
	}
	return v
}

// Costs reproduces the §5 cost comparisons: switch and wire counts for the
// three scenarios plus the radix-20 equal-size RFC, with the savings the
// paper quotes (31% switches / 36% wires at maximum expansion).
func Costs() *Report {
	rep := &Report{
		Title:  "§5 cost comparison (paper scale, radix 36)",
		Header: []string{"network", "terminals", "switches", "wires", "radix"},
	}
	type row struct {
		name                      string
		t, switches, wires, radix int
	}
	cft3 := row{"CFT 3-level", 11664, 1620, 23328, 36}
	rfc3 := core.Params{Radix: 36, Levels: 3, Leaves: 648}
	rfc20 := core.Params{Radix: 20, Levels: 3, Leaves: 1166}
	cft4 := row{"CFT 4-level", 209952, 40824, 629856, 36}
	rfcMax := core.Params{Radix: 36, Levels: 3, Leaves: 11254}
	rfc100 := core.Params{Radix: 36, Levels: 3, Leaves: 5556}
	rows := []row{
		cft3,
		{"RFC 3-level equal", rfc3.Terminals(), rfc3.Switches(), rfc3.Wires(), 36},
		{"RFC 3-level radix-20", rfc20.Terminals(), rfc20.Switches(), rfc20.Wires(), 20},
		{"RFC 3-level 100K", rfc100.Terminals(), rfc100.Switches(), rfc100.Wires(), 36},
		{"RFC 3-level max (200K)", rfcMax.Terminals(), rfcMax.Switches(), rfcMax.Wires(), 36},
		cft4,
	}
	for _, r := range rows {
		rep.AddRow(Str(r.name), Int(r.t), Int(r.switches), Int(r.wires), Int(r.radix))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("200K savings vs 4-level CFT: %.0f%% switches, %.0f%% wires",
			100*(1-float64(rfcMax.Switches())/float64(cft4.switches)),
			100*(1-float64(rfcMax.Wires())/float64(cft4.wires))))
	return rep
}

// Thm42Options parameterises the Theorem 4.2 Monte-Carlo check.
type Thm42Options struct {
	N1      int // leaves of the 2-level RFC (default 200)
	Trials  int // generations per radix row (default 100)
	Workers int // worker pool size; 0 means one per CPU
	Seed    uint64
	// Shard restricts each row's generation trials to the ones this process
	// owns; partial reports merge byte-identically (see engine.Shard).
	Shard engine.Shard
}

// Thm42Sharded reproduces the Theorem 4.2 probability curve empirically: for
// a 2-level RFC of N1 leaves, it sweeps the radix across the threshold and
// reports empirical routability frequency against the asymptotic e^{-e^{-x}}
// and the exact finite-size Poisson prediction. The Monte-Carlo trials of
// every radix row fan out on a worker pool; each trial's generator is
// derived from (seed, radix, trial), so the report is byte-identical for any
// worker count, and each row's empirical frequency is a mergeable aggregate
// over per-trial 0/1 outcomes (exact under sharding: sums of 0/1 floats
// carry no rounding).
func Thm42Sharded(opts Thm42Options) (*Report, error) {
	if opts.N1 <= 0 {
		opts.N1 = 200
	}
	if opts.Trials <= 0 {
		opts.Trials = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	n1 := opts.N1
	rep := &Report{
		Title: fmt.Sprintf("Theorem 4.2 Monte-Carlo (2-level RFC, N1=%d, %d trials/row)", n1, opts.Trials),
		Notes: []string{
			"empirical = fraction of generated RFCs with the common-ancestor property",
			"asymptotic = e^{-e^{-x}}; exact = e^{-λ} with hypergeometric λ",
		},
		Header: []string{"radix", "x", "empirical", "asymptotic", "exact"},
	}
	thr := core.ThresholdRadix(n1, 2)
	lo := int(thr*0.8) &^ 1
	hi := int(thr*1.25) &^ 1
	for radix := lo; radix <= hi; radix += 2 {
		p := core.Params{Radix: radix, Levels: 2, Leaves: n1}
		if p.Validate() != nil {
			continue
		}
		rowSeed := rng.DeriveSeed(opts.Seed, rng.StringCoord("thm42"), uint64(radix))
		obs, err := routableTrialObs(p, opts.Trials, opts.Workers, rowSeed, opts.Shard)
		if err != nil {
			return nil, err
		}
		x := core.XParam(radix, n1, 2)
		rep.AddKeyed(fmt.Sprintf("R=%d", radix),
			Int(radix), Float(x, "%.4g"), Mean(obs, opts.Trials, "%.4g"),
			Float(core.SuccessProbability(x), "%.4g"), Float(exactRoutableProb(n1, radix), "%.4g"))
	}
	return rep, nil
}

// Thm42 is Thm42Sharded over the whole trial grid, the pre-shard signature
// the facade keeps exporting.
func Thm42(n1, trials, workers int, seed uint64) (*Report, error) {
	return Thm42Sharded(Thm42Options{N1: n1, Trials: trials, Workers: workers, Seed: seed})
}

// routableTrialObs runs this shard's generation trials for one Theorem 4.2
// row (trial i generating from rng.At(seed, i)) and returns the 0/1
// routability outcomes as job-indexed observations.
func routableTrialObs(p core.Params, trials, workers int, seed uint64, sh engine.Shard) ([]metrics.Obs, error) {
	oks, err := engine.RunShard(trials, workers, sh, func(i int) (bool, error) {
		c, err := core.Generate(p, rng.At(seed, uint64(i)))
		if err != nil {
			return false, err
		}
		return routing.New(c).Routable(), nil
	})
	if err != nil {
		return nil, err
	}
	obs := make([]metrics.Obs, 0, len(oks))
	for i, ok := range oks {
		if !sh.Owns(i) {
			continue
		}
		v := 0.0
		if ok {
			v = 1
		}
		obs = append(obs, metrics.Obs{Job: i, V: v})
	}
	return obs, nil
}

// exactRoutableProb computes e^{-λ} with the exact hypergeometric pair
// disjointness probability for a 2-level RFC.
func exactRoutableProb(n1, radix int) float64 {
	n2 := n1 / 2
	delta := radix / 2
	if delta > n2 {
		return 1
	}
	logP := 0.0
	for i := 0; i < delta; i++ {
		num := float64(n2 - delta - i)
		if num <= 0 {
			return 1
		}
		logP += math.Log(num) - math.Log(float64(n2-i))
	}
	lambda := float64(n1) * float64(n1-1) / 2 * math.Exp(logP)
	return math.Exp(-lambda)
}
