package analysis

import (
	"fmt"

	"rfclos/internal/engine"
	"rfclos/internal/graph"
	"rfclos/internal/metrics"
	"rfclos/internal/rng"
	"rfclos/internal/routing"
	"rfclos/internal/simdirect"
	"rfclos/internal/simnet"
	"rfclos/internal/topology"
	"rfclos/internal/traffic"
)

// RRNFaultsOptions parameterises the direct-network fault-throughput
// extension.
type RRNFaultsOptions struct {
	Scale      Scale
	FaultSteps int // fault increments up to ~13% of each network's wires
	Reps       int
	Sim        simnet.Config // Table 2 parameters, shared by both simulators
	// Workers sizes the worker pool the (network × pattern × fault step ×
	// rep) grid fans out on; 0 means one per CPU.
	Workers  int
	Seed     uint64
	Progress func(string)
	// Shard restricts execution to the grid jobs this process owns;
	// partial reports merge byte-identically (see engine.Shard).
	Shard engine.Shard
}

// rrnFaultsJob is one (network, pattern, fault count, repetition) point.
type rrnFaultsJob struct {
	net     string
	pattern string
	faults  int
	rep     int
}

// RRNFaults extends the Figure 12 fault methodology to the random baseline
// the paper leaves unsimulated: maximum throughput (accepted load at offered
// 1.0) of the equal-resources RFC and the equal-T RRN as links fail, under
// uniform and adversarial shift traffic. Both network classes run on the
// unified cycle engine, differing only in routing policy, so the degradation
// curves are directly comparable. RFC points route up/down around faults
// (unroutable pairs are counted, the network keeps working); RRN points
// recompute shortest paths on the faulted graph and score 0 when the faults
// disconnect it or push its diameter past the hop-indexed VC budget — the
// deadlock-freedom fragility §1/§6 attribute to direct random networks.
// Every grid point is an independent job with streams derived from its
// coordinates, so the report is byte-identical for any opts.Workers.
func RRNFaults(opts RRNFaultsOptions) (*Report, error) {
	if opts.FaultSteps <= 0 {
		opts.FaultSteps = 10
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}
	if opts.Scale == "" {
		opts.Scale = ScaleSmall
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	const rrnVCs = 16 // covers any small-network diameter, as in Jellyfish()
	sc := Scenarios(opts.Scale)[0]

	rfc, _, err := buildRoutableRFC(sc.RFC, rng.At(opts.Seed, rng.StringCoord("rrnfaults/topology/RFC")))
	if err != nil {
		return nil, err
	}
	spec := rrnSpecFor(sc.RFC.Terminals(), 4)
	rrn, err := topology.NewRRN(spec.N, spec.Degree, spec.TermsPerSwitch,
		rng.At(opts.Seed, rng.StringCoord("rrnfaults/topology/RRN")))
	if err != nil {
		return nil, err
	}
	rfcName := fmt.Sprintf("RFC-R%d", sc.RFC.Radix)
	rrnName := fmt.Sprintf("RRN-R%d", spec.Radix())
	wires := map[string]int{rfcName: rfc.Wires(), rrnName: rrn.Wires()}

	patterns := []string{"uniform", "shift"}
	var jobs []rrnFaultsJob
	for _, name := range []string{rfcName, rrnName} {
		step := wires[name] * 13 / 100 / opts.FaultSteps
		if step == 0 {
			step = 1
		}
		for _, pat := range patterns {
			for f := 0; f <= opts.FaultSteps; f++ {
				for rep := 0; rep < opts.Reps; rep++ {
					jobs = append(jobs, rrnFaultsJob{name, pat, f * step, rep})
				}
			}
		}
	}

	pattern := func(name string, terms int) traffic.Pattern {
		if name == "shift" {
			return traffic.NewShift(terms, 0)
		}
		return traffic.NewUniform(terms)
	}
	accepted, err := engine.RunShard(len(jobs), opts.Workers, opts.Shard, func(i int) (float64, error) {
		j := jobs[i]
		stream := rng.At(opts.Seed, rng.StringCoord("rrnfaults/"+j.net), rng.StringCoord(j.pattern),
			uint64(j.faults), uint64(j.rep))
		var acc float64
		if j.net == rfcName {
			faulty := rfc.Clone()
			RemoveRandomLinks(faulty, j.faults, stream)
			ud := routing.New(faulty)
			cfg := opts.Sim
			cfg.Seed = stream.Uint64()
			acc = simnet.New(faulty, ud, pattern(j.pattern, faulty.Terminals()), cfg).Run(1.0).AcceptedLoad
		} else {
			faulty := &topology.RRN{G: rrn.G.Clone(), Degree: rrn.Degree, TermsPerSwitch: rrn.TermsPerSwitch}
			removeRandomGraphLinks(faulty.G, j.faults, stream)
			cfg := simdirect.Config{
				VCs:            rrnVCs,
				BufferPackets:  opts.Sim.BufferPackets,
				PacketLength:   opts.Sim.PacketLength,
				LinkLatency:    opts.Sim.LinkLatency,
				WarmupCycles:   opts.Sim.WarmupCycles,
				MeasureCycles:  opts.Sim.MeasureCycles,
				SourceQueueCap: opts.Sim.SourceQueueCap,
				Seed:           stream.Uint64(),
			}
			sim, err := simdirect.New(faulty, pattern(j.pattern, faulty.Terminals()), cfg)
			if err != nil {
				// Disconnected, or diameter grew past the VC budget: the
				// direct network cannot route deadlock-free any more.
				acc = 0
			} else {
				acc = sim.Run(1.0).AcceptedLoad
			}
		}
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%s/%s faults=%d rep=%d accepted=%.3f",
				j.net, j.pattern, j.faults, j.rep, acc))
		}
		return acc, nil
	})
	if err != nil {
		return nil, err
	}

	// Merge per-job accepted loads into one collector per (network, pattern)
	// group; the grid is jobs-ordered, mirroring the construction loop.
	per := (opts.FaultSteps + 1) * opts.Reps
	groups := 2 * len(patterns)
	var sset seriesSet
	cols := make([]*metrics.JobCollector, groups)
	for g := 0; g < groups; g++ {
		first := jobs[g*per]
		cols[g] = sset.col(first.net + "/" + first.pattern)
	}
	for i := range jobs {
		g := i / per
		cols[g].Expect(float64(jobs[i].faults))
		if opts.Shard.Owns(i) {
			cols[g].Observe(float64(jobs[i].faults), i, accepted[i])
		}
	}
	return sset.report("Extension: max throughput under link faults, RFC vs RRN (unified engine)",
		[]string{
			fmt.Sprintf("scale=%s; offered load 1.0; faults up to ~13%% of each network's wires", opts.Scale),
			fmt.Sprintf("RFC: %v, up/down routing around faults; RRN: %d switches × R%d, minimal routing with %d hop-indexed VCs",
				sc.RFC, rrn.N(), spec.Radix(), rrnVCs),
			"RRN points score 0 when faults disconnect the graph or push its diameter past the VC budget",
		},
		"faulty links", "accepted load"), nil
}

// removeRandomGraphLinks deletes n uniformly random edges from g (fewer when
// g runs out).
func removeRandomGraphLinks(g *graph.Graph, n int, r *rng.Rand) {
	for i := 0; i < n; i++ {
		edges := g.Edges()
		if len(edges) == 0 {
			return
		}
		e := edges[r.Intn(len(edges))]
		g.RemoveEdge(int(e.U), int(e.V))
	}
}
