module rfclos

go 1.22
