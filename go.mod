module rfclos

go 1.23
