// Quickstart: build a Random Folded Clos network, check the Theorem 4.2
// threshold, route a few pairs, and run a short simulation.
package main

import (
	"fmt"
	"log"

	"rfclos"
)

func main() {
	// Size a 3-level RFC with radix-16 switches for at least 1,000 compute
	// nodes.
	p := rfclos.ParamsForTerminals(16, 3, 1000)
	fmt.Printf("parameters: %v\n", p)
	fmt.Printf("threshold radix for %d leaves: %.2f (we use %d, x = %.1f, predicted routability %.3f)\n",
		p.Leaves, rfclos.ThresholdRadix(p.Leaves, p.Levels), p.Radix,
		rfclos.XParam(p.Radix, p.Leaves, p.Levels),
		rfclos.SuccessProbability(rfclos.XParam(p.Radix, p.Leaves, p.Levels)))

	// Generate: retries internally until the common-ancestor property
	// holds (certain here, since we are far above the threshold).
	net, router, err := rfclos.NewRFC(p, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: %v\n", net)
	fmt.Printf("up/down routable: %v\n", router.Routable())

	// The up/down diameter is 2(l-1); look at a few shortest routes.
	mean, _ := router.AverageShortestUpDown(5000, nil)
	fmt.Printf("average shortest up/down distance: %.2f switch hops (diameter bound %d)\n",
		mean, p.Diameter())

	// Simulate uniform traffic at 70% load with the paper's Table 2
	// parameters (shortened windows for a demo).
	cfg := rfclos.DefaultSimConfig()
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 4000
	pat, err := rfclos.NewTraffic("uniform", net.Terminals(), 7)
	if err != nil {
		log.Fatal(err)
	}
	res := rfclos.Simulate(net, router, pat, 0.7, cfg)
	fmt.Printf("uniform @ 0.7 offered: accepted %.3f phits/node/cycle, mean latency %.1f cycles\n",
		res.AcceptedLoad, res.AvgLatency)
}
