// Faulttolerance reproduces the §7 story at laptop scale: equal-resources
// CFT and RFC networks lose random links, and we watch (a) how long up/down
// routing survives and (b) what happens to peak throughput — the Figure
// 11/12 behaviour.
package main

import (
	"fmt"
	"log"

	"rfclos"
)

func main() {
	const radix = 12
	cft, err := rfclos.NewCFT(radix, 3)
	if err != nil {
		log.Fatal(err)
	}
	p := rfclos.Params{Radix: radix, Levels: 3, Leaves: cft.LevelSize(1)}
	rfc, _, err := rfclos.NewRFC(p, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CFT: %v\nRFC: %v\n\n", cft, rfc)

	// Remove links in 2% steps and report routability + peak throughput.
	cfg := rfclos.DefaultSimConfig()
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2000

	fmt.Printf("%-8s %-22s %-22s\n", "faults", "CFT (routable, thrpt)", "RFC (routable, thrpt)")
	wires := cft.Wires()
	for pct := 0; pct <= 14; pct += 2 {
		faults := wires * pct / 100
		row := fmt.Sprintf("%-8s", fmt.Sprintf("%d%%", pct))
		for i, base := range []*rfclos.Clos{cft, rfc} {
			net := base.Clone()
			seed := uint64(1000*pct + i)
			removeRandom(net, faults, seed)
			router := rfclos.NewRouter(net)
			pat, err := rfclos.NewTraffic("uniform", net.Terminals(), seed)
			if err != nil {
				log.Fatal(err)
			}
			res := rfclos.Simulate(net, router, pat, 1.0, cfg)
			row += fmt.Sprintf(" %-22s", fmt.Sprintf("%v, %.3f", router.Routable(), res.AcceptedLoad))
		}
		fmt.Println(row)
	}
	fmt.Println("\nNote the paper's observation: the CFT loses full up/down routability")
	fmt.Println("quickly, while the RFC of equal radix and size tolerates more failures,")
	fmt.Println("and the throughput gap between the two vanishes as faults accumulate.")
}

// removeRandom deletes n uniformly random links using a simple
// deterministic shuffle seeded by seed.
func removeRandom(c *rfclos.Clos, n int, seed uint64) {
	links := c.Links()
	// xorshift-style index shuffle; good enough for a demo.
	state := seed*2862933555777941757 + 3037000493
	for i := len(links) - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		links[i], links[j] = links[j], links[i]
	}
	if n > len(links) {
		n = len(links)
	}
	for _, l := range links[:n] {
		c.RemoveLink(l.A, l.B)
	}
}
