// Expansion walks the §5 story: a datacenter operator starts with a small
// Random Folded Clos network and grows it in minimal increments (two
// switches per level, one at the top, R new servers each time), watching
// the rewiring cost stay tiny and the network stay routable — in contrast
// with a fat-tree, which must add a whole level and rewire half its top
// links to grow at all.
package main

import (
	"fmt"
	"log"

	"rfclos"
)

func main() {
	const radix = 16
	p := rfclos.ParamsForTerminals(radix, 3, 800)
	net, router, err := rfclos.NewRFC(p, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: %v\n", net)
	fmt.Printf("strong-expansion headroom at this radix/levels: up to %d terminals\n\n",
		rfclos.MaxTerminals(radix, 3))

	fmt.Printf("%-6s %-10s %-10s %-12s %-14s %s\n",
		"step", "terminals", "switches", "wires", "rewired", "routable")
	fmt.Printf("%-6d %-10d %-10d %-12d %-14s %v\n",
		0, net.Terminals(), net.NumSwitches(), net.Wires(), "-", router.Routable())

	totalRewired := 0
	for step := 1; step <= 8; step++ {
		// Each call performs one minimal increment: +R terminals.
		bigger, rewired, err := rfclos.Expand(net, 1, uint64(100+step))
		if err != nil {
			log.Fatal(err)
		}
		totalRewired += rewired
		net = bigger
		router = rfclos.NewRouter(net)
		fmt.Printf("%-6d %-10d %-10d %-12d %-14s %v\n",
			step, net.Terminals(), net.NumSwitches(), net.Wires(),
			fmt.Sprintf("%d (%.2f%%)", rewired, 100*float64(rewired)/float64(net.Wires())),
			router.Routable())
	}

	fmt.Printf("\ntotal links rewired over 8 increments: %d of %d (%.1f%%)\n",
		totalRewired, net.Wires(), 100*float64(totalRewired)/float64(net.Wires()))

	// A CFT of the same radix cannot grow beyond 2(R/2)^3 terminals
	// without a fourth level; compare the step cost.
	cft3, _ := rfclos.NewCFT(radix, 3)
	cft4, _ := rfclos.NewCFT(radix, 4)
	fmt.Printf("\nfat-tree alternative: 3-level CFT caps at %d terminals;\n", cft3.Terminals())
	fmt.Printf("the next step is a 4-level CFT with %d switches and %d wires (vs %d/%d for the expanded RFC)\n",
		cft4.NumSwitches(), cft4.Wires(), net.NumSwitches(), net.Wires())
}
