// Simulate compares the equal-resources CFT and RFC under the paper's
// three datacenter traffic patterns across offered loads — a laptop-scale
// Figure 8.
package main

import (
	"fmt"
	"log"

	"rfclos"
)

func main() {
	const radix = 12
	cft, err := rfclos.NewCFT(radix, 3)
	if err != nil {
		log.Fatal(err)
	}
	cftRouter := rfclos.NewRouter(cft)
	p := rfclos.Params{Radix: radix, Levels: 3, Leaves: cft.LevelSize(1)}
	rfc, rfcRouter, err := rfclos.NewRFC(p, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comparing %v\n   versus %v\n\n", cft, rfc)

	cfg := rfclos.DefaultSimConfig()
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2500

	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, pattern := range rfclos.TrafficNames() {
		fmt.Printf("--- %s ---\n", pattern)
		fmt.Printf("%-8s %-24s %-24s\n", "load", "CFT (accepted, latency)", "RFC (accepted, latency)")
		for _, load := range loads {
			row := fmt.Sprintf("%-8.2f", load)
			for i, nu := range []struct {
				c *rfclos.Clos
				r *rfclos.Router
			}{{cft, cftRouter}, {rfc, rfcRouter}} {
				pat, err := rfclos.NewTraffic(pattern, nu.c.Terminals(), uint64(13+i))
				if err != nil {
					log.Fatal(err)
				}
				res := rfclos.Simulate(nu.c, nu.r, pat, load, cfg)
				row += fmt.Sprintf(" %-24s", fmt.Sprintf("%.3f, %.1f cyc", res.AcceptedLoad, res.AvgLatency))
			}
			fmt.Println(row)
		}
		fmt.Println()
	}
	fmt.Println("Paper shape to look for: identical curves under uniform and fixed-random;")
	fmt.Println("under random-pairing the CFT (rearrangeably non-blocking) keeps a modest edge.")
}
