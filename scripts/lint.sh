#!/bin/sh
# The repository's static-check gate, run identically by CI and locally:
#   1. gofmt       — formatting, whole tree
#   2. go vet      — the standard suspicious-construct checks
#   3. rfclint     — the determinism invariants (see DESIGN.md,
#                    "Determinism invariants"): no wall-clock/math-rand in
#                    deterministic packages, no order-sensitive map ranges,
#                    no rng.Split in parallel workers, no duplicated
#                    StringCoord coordinates.
#
# Usage: scripts/lint.sh
# Exits non-zero on the first failing check.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "lint.sh: gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...

go run ./cmd/rfclint ./...
